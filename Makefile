GO ?= go

# Benchmark time per benchmark; 1x records one iteration (the smoke /
# baseline default), bump to e.g. 3s for stable timing comparisons.
BENCHTIME ?= 1x

.PHONY: all build test race vet fmt bench bench-smoke bench-diff bench-gate fuzz-smoke chaos-smoke metrics-lint scenario-smoke scorecards load-smoke campaign-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Record a benchmark baseline: every benchmark (including the workers=1 vs
# workers=all scaling pairs) with memory stats, converted to JSON keyed by
# benchmark name. Compare BENCH_baseline.json across commits / machines.
# The headline benchmarks are then re-recorded exactly as bench-gate will
# measure them — same benchtime, one test binary at a time — and merged over
# the 1x numbers, so gate comparisons are like-for-like.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson > BENCH_baseline.json
	$(GO) test -run '^$$' -bench '$(GATE_BENCH_RE)' -benchmem -benchtime=$(GATE_BENCHTIME) -p 1 $(GATE_PKGS) \
		> /tmp/bench_headline.txt
	$(GO) run ./cmd/benchjson -merge BENCH_baseline.json < /tmp/bench_headline.txt > BENCH_baseline.json.tmp
	mv BENCH_baseline.json.tmp BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# One-iteration pass over every benchmark: catches bit-rot in the bench
# harness without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./... > /dev/null

# Compare a fresh benchmark run against the committed baseline, flagging
# regressions worse than 20%. Non-fatal in ci (leading '-'): timings on
# shared/CI hosts are too noisy to block on, but the delta table stays
# visible in the log.
bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson > /tmp/bench_current.json
	$(GO) run ./cmd/benchjson -diff BENCH_baseline.json /tmp/bench_current.json

# Fatal headline-metric gate: re-run only the benchmarks behind the headline
# numbers (scan throughput, streaming fold, codec round-trip) with enough
# iterations to be stable — one test binary at a time (-p 1), so package
# runs never contend for CPU — then fail on a >20% regression against the
# committed baseline. Complements bench-diff, which surveys everything but
# only advises.
GATE_BENCHTIME ?= 0.5s
GATE_BENCH_RE = ^(BenchmarkScanRound|BenchmarkFoldRound|BenchmarkStoreWriteTo|BenchmarkStoreReadFrom|BenchmarkServeCachedQuery|BenchmarkCampaignTwoCountry)$$
GATE_PKGS = . ./internal/dataset ./internal/signals ./internal/serve ./internal/campaign
GATE_HEADLINES = probes_per_sec,rounds_per_sec,BenchmarkStoreWriteTo:ns_per_op,BenchmarkStoreReadFrom:ns_per_op,BenchmarkServeCachedQuery:ns_per_op,BenchmarkServeCachedQuery:req_per_sec
bench-gate:
	$(GO) test -run '^$$' -bench '$(GATE_BENCH_RE)' -benchmem -benchtime=$(GATE_BENCHTIME) -p 1 $(GATE_PKGS) \
		> /tmp/bench_gate.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_gate.txt > /tmp/bench_gate.json
	$(GO) run ./cmd/benchjson -gate -headline '$(GATE_HEADLINES)' BENCH_baseline.json /tmp/bench_gate.json

# Seeded chaos soak: a three-vantage fleet campaign with scripted blackout,
# stall and flap windows against individual vantages, asserting zero false
# block-outage declarations against the sim ground truth plus determinism
# across worker counts and kill/resume.
chaos-smoke:
	$(GO) test -run '^TestChaos' -count=1 -v .

# Check that every metric registered in code appears in the README's
# catalogue table and vice versa.
metrics-lint:
	$(GO) run ./cmd/metricslint

# Short native-fuzz smoke over the packet parsers and the columnar codecs:
# a few seconds each is enough to exercise the mutator beyond the seed
# corpus in CI.
fuzz-smoke:
	$(GO) test ./internal/icmp -fuzz '^FuzzParseIPv4$$' -fuzztime 5s -run '^$$'
	$(GO) test ./internal/icmp -fuzz '^FuzzParseICMP$$' -fuzztime 5s -run '^$$'
	$(GO) test ./internal/dataset -fuzz '^FuzzRLE$$' -fuzztime 5s -run '^$$'
	$(GO) test ./internal/dataset -fuzz '^FuzzColumnV4$$' -fuzztime 5s -run '^$$'
	$(GO) test ./internal/scenario -fuzz '^FuzzScenarioParse$$' -fuzztime 5s -run '^$$'

# Scaled-down serving load test: 2k mixed poll/SSE/range clients against an
# in-process serve stack for a few seconds, failing when the query p99
# exceeds 5 ms. The full-size run (10k clients, the paper-facing capacity
# number) is `go run ./cmd/loadgen` with defaults.
load-smoke:
	$(GO) run ./cmd/loadgen -clients 2000 -duration 3s -max-p99 5

# Run the labeled scenario library through the full detection stack and fail
# on any divergence from the committed golden scorecards.
scenario-smoke:
	$(GO) run ./cmd/scencheck

# Multi-country coordinator smoke: the two-country campaign must produce
# per-country stores byte-identical to solo runs and to itself at
# COUNTRYMON_WORKERS=1/8, and the legacy /v1/* routes must be byte-for-byte
# (body and ETag) aliases of /v1/countries/{default}/*.
campaign-smoke:
	$(GO) test -run '^TestCampaign' -count=1 -v ./internal/campaign/

# Regenerate the golden scorecards after an intended engine change. Refuses
# to run on a dirty tree so a regeneration can never silently absorb
# unrelated edits — commit (or stash) first, then regenerate and review the
# scorecard diff on its own.
scorecards:
	@if ! git diff --quiet || ! git diff --cached --quiet; then \
		echo "scorecards: working tree is dirty; commit or stash first"; exit 1; \
	fi
	$(GO) run ./cmd/scencheck -write

# The full gate: formatting, static analysis, the metric-catalogue check,
# tests, the race detector, the benchmark smoke run, the fuzz smoke, the
# chaos soak, the scenario scorecard check, the multi-country campaign
# smoke, the serving load smoke, the fatal headline-metric gate, and the
# (non-fatal) bench diff.
ci: fmt vet metrics-lint test race bench-smoke fuzz-smoke chaos-smoke scenario-smoke campaign-smoke load-smoke bench-gate
	-$(MAKE) bench-diff
