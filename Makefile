GO ?= go

# Benchmark time per benchmark; 1x records one iteration (the smoke /
# baseline default), bump to e.g. 3s for stable timing comparisons.
BENCHTIME ?= 1x

.PHONY: all build test race vet fmt bench bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Record a benchmark baseline: every benchmark (including the workers=1 vs
# workers=all scaling pairs) with memory stats, converted to JSON keyed by
# benchmark name. Compare BENCH_baseline.json across commits / machines.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson > BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# One-iteration pass over every benchmark: catches bit-rot in the bench
# harness without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./... > /dev/null

# The full gate: formatting, static analysis, tests, the race detector, and
# the benchmark smoke run.
ci: fmt vet test race bench-smoke
