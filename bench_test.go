package countrymon

// The benchmark harness regenerates every table and figure of the paper
// (DESIGN.md §4). Each benchmark warms the shared experiment environment
// once (scenario, store, classification, signals, baselines), then times the
// experiment's own computation and reports its headline metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers.

import (
	"context"
	"sync"
	"testing"
	"time"

	"countrymon/internal/experiments"
	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/par"
	"countrymon/internal/scanner"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/simnet"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func benchEnvWarm(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		env := experiments.Default()
		// Materialize the heavyweight shared state outside the timer.
		env.Warm()
		benchEnv = env
	})
	return benchEnv
}

func benchExperiment(b *testing.B, id string) {
	env := benchEnvWarm(b)
	ex, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = ex.Run(env)
	}
	b.StopTimer()
	if rep == nil || len(rep.Lines) == 0 {
		b.Fatalf("%s produced no output", id)
	}
	for name, v := range rep.Metrics {
		b.ReportMetric(v, name)
	}
}

// benchWorkersExperiment re-times an experiment at one worker versus the
// default pool, so multi-core speedups show up as workers=1 / workers=all
// ratios in the recorded baseline.
func benchWorkersExperiment(b *testing.B, id string) {
	benchEnvWarm(b)
	b.Run("workers=1", func(b *testing.B) {
		b.Setenv(par.EnvWorkers, "1")
		benchExperiment(b, id)
	})
	b.Run("workers=all", func(b *testing.B) {
		b.Setenv(par.EnvWorkers, "")
		benchExperiment(b, id)
	})
}

// BenchmarkEnvWarm times the full pipeline materialization (store →
// classification/signals/baselines → detections) on a fresh Env, the main
// beneficiary of the concurrent warm-up.
func BenchmarkEnvWarm(b *testing.B) {
	cfg := sim.Config{Seed: 1, Scale: 0.04}
	for _, w := range []struct{ name, val string }{{"workers=1", "1"}, {"workers=all", ""}} {
		b.Run(w.name, func(b *testing.B) {
			b.Setenv(par.EnvWorkers, w.val)
			for i := 0; i < b.N; i++ {
				experiments.New(cfg).Warm()
			}
		})
	}
}

// The two sweep benchmarks the ISSUE's acceptance criteria name: the F22
// classification sensitivity grid and the F24 severity-threshold sweep.

func BenchmarkSweepSensitivityASes(b *testing.B) { benchWorkersExperiment(b, "F22") }
func BenchmarkSweepSeverity(b *testing.B)        { benchWorkersExperiment(b, "F24") }

// --- Tables ---

func BenchmarkTable1MethodComparison(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkTable2Thresholds(b *testing.B)       { benchExperiment(b, "T2") }
func BenchmarkTable3Classification(b *testing.B)   { benchExperiment(b, "T3") }
func BenchmarkTable4Eligibility(b *testing.B)      { benchExperiment(b, "T4") }
func BenchmarkTable5KhersonASes(b *testing.B)      { benchExperiment(b, "T5") }

// --- Figures ---

func BenchmarkFigure1Churn(b *testing.B)              { benchExperiment(b, "F1") }
func BenchmarkFigure2BlockShare(b *testing.B)         { benchExperiment(b, "F2") }
func BenchmarkFigure3RegionalASes(b *testing.B)       { benchExperiment(b, "F3") }
func BenchmarkFigure4RegionalBlocks(b *testing.B)     { benchExperiment(b, "F4") }
func BenchmarkFigure5KhersonShares(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkFigure6Responsiveness(b *testing.B)     { benchExperiment(b, "F6") }
func BenchmarkFigure7BlockChange(b *testing.B)        { benchExperiment(b, "F7") }
func BenchmarkFigure8RegionalOutages(b *testing.B)    { benchExperiment(b, "F8") }
func BenchmarkFigure9OutageHours(b *testing.B)        { benchExperiment(b, "F9") }
func BenchmarkFigure10PowerCorrelation(b *testing.B)  { benchExperiment(b, "F10") }
func BenchmarkFigure11KhersonEvents(b *testing.B)     { benchExperiment(b, "F11") }
func BenchmarkFigure12RTT(b *testing.B)               { benchExperiment(b, "F12") }
func BenchmarkFigure13StatusSeizure(b *testing.B)     { benchExperiment(b, "F13") }
func BenchmarkFigure14StatusBlocks(b *testing.B)      { benchExperiment(b, "F14") }
func BenchmarkFigure15CoverageCDF(b *testing.B)       { benchExperiment(b, "F15") }
func BenchmarkFigure16CommonOutages(b *testing.B)     { benchExperiment(b, "F16") }
func BenchmarkFigure17SignalShares(b *testing.B)      { benchExperiment(b, "F17") }
func BenchmarkFigure18Delegations(b *testing.B)       { benchExperiment(b, "F18") }
func BenchmarkFigure19ChurnAll(b *testing.B)          { benchExperiment(b, "F19") }
func BenchmarkFigure20ChurnV6(b *testing.B)           { benchExperiment(b, "F20") }
func BenchmarkFigure21DominantShare(b *testing.B)     { benchExperiment(b, "F21") }
func BenchmarkFigure22SensitivityASes(b *testing.B)   { benchExperiment(b, "F22") }
func BenchmarkFigure23SensitivityBlocks(b *testing.B) { benchExperiment(b, "F23") }
func BenchmarkFigure24SeveritySweep(b *testing.B)     { benchExperiment(b, "F24") }
func BenchmarkFigure25IODARegional(b *testing.B)      { benchExperiment(b, "F25") }
func BenchmarkFigure26IODAPower(b *testing.B)         { benchExperiment(b, "F26") }
func BenchmarkFigure27SignalStability(b *testing.B)   { benchExperiment(b, "F27") }
func BenchmarkFigure28KhersonFull(b *testing.B)       { benchExperiment(b, "F28") }
func BenchmarkHeadlineIntervalMiss(b *testing.B)      { benchExperiment(b, "H1") }
func BenchmarkHeadlineChurnByAS(b *testing.B)         { benchExperiment(b, "H2") }
func BenchmarkHeadlineRadiusPrecision(b *testing.B)   { benchExperiment(b, "H3") }
func BenchmarkHeadlinePassiveVsActive(b *testing.B)   { benchExperiment(b, "H4") }
func BenchmarkHeadlineIPv6Feasibility(b *testing.B)   { benchExperiment(b, "H5") }

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationProbePolicy(b *testing.B)         { benchExperiment(b, "A1") }
func BenchmarkAblationRegionalOff(b *testing.B)         { benchExperiment(b, "A2") }
func BenchmarkAblationEligibility(b *testing.B)         { benchExperiment(b, "A3") }
func BenchmarkAblationInterval(b *testing.B)            { benchExperiment(b, "A4") }
func BenchmarkAblationAvailabilitySensing(b *testing.B) { benchExperiment(b, "A5") }
func BenchmarkAblationWindow(b *testing.B)              { benchExperiment(b, "A6") }

// --- Core primitive micro-benchmarks ---

func BenchmarkScannerRound(b *testing.B) {
	// One full-block scan round of a /20 (16 blocks, 4096 probes) over the
	// simulated wire in virtual time.
	resp := simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		if dst.HostByte() < 64 {
			return simnet.Reply{Kind: simnet.EchoReply, RTT: 35 * time.Millisecond}
		}
		return simnet.Reply{Kind: simnet.NoReply}
	})
	ts, err := scanner.NewTargetSet([]netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/20")}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), resp, time.Unix(0, 0))
		sc := scanner.New(net, scanner.Config{Rate: 0, Seed: uint64(i), Epoch: uint32(i), Clock: net, Cooldown: time.Second})
		rd, err := sc.Run(ts)
		if err != nil {
			b.Fatal(err)
		}
		if rd.Stats.Valid != 16*64 {
			b.Fatalf("valid = %d", rd.Stats.Valid)
		}
	}
	b.ReportMetric(4096, "probes/op")
}

// benchScanRound runs full scan rounds of a /18 (64 blocks, 16384 probes)
// over the simulated wire, serially or fanned across in-process shards, and
// reports wall-clock probe throughput. The parallel variant pins 8 workers
// (COUNTRYMON_WORKERS), so recorded baselines compare the same shard count;
// on a single-core host the two converge — the speedup needs real cores.
func benchScanRound(b *testing.B, shards int, metrics *scanner.Metrics) {
	resp := simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		if dst.HostByte() < 64 {
			return simnet.Reply{Kind: simnet.EchoReply, RTT: 35 * time.Millisecond}
		}
		return simnet.Reply{Kind: simnet.NoReply}
	})
	ts, err := scanner.NewTargetSet([]netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/18")}, nil)
	if err != nil {
		b.Fatal(err)
	}
	local := netmodel.MustParseAddr("198.51.100.1")
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var probes uint64
	for i := 0; i < b.N; i++ {
		cfg := scanner.Config{Rate: -1, Seed: uint64(i) + 1, Epoch: uint32(i), Cooldown: time.Second,
			Metrics: metrics}
		var rd *scanner.RoundData
		if shards > 1 {
			rd, err = scanner.ScanParallel(context.Background(), ts, shards, cfg,
				func(shard, total int) (scanner.Transport, scanner.Clock, error) {
					net := simnet.New(local, resp, time.Unix(0, 0))
					return net, net, nil
				})
		} else {
			net := simnet.New(local, resp, time.Unix(0, 0))
			cfg.Clock = net
			rd, err = scanner.New(net, cfg).Run(ts)
		}
		if err != nil {
			b.Fatal(err)
		}
		if rd.Stats.Valid != 64*64 {
			b.Fatalf("valid = %d", rd.Stats.Valid)
		}
		probes += rd.Stats.Sent
	}
	b.StopTimer()
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(float64(probes)/wall, "probes_per_sec")
	}
}

// BenchmarkScanRound is the registry-detached baseline: the instrumentation
// sites are compiled in but every instrument is nil, so the pair with
// BenchmarkScanRoundMetrics pins the disabled-path overhead (<3% budget).
func BenchmarkScanRound(b *testing.B) { benchScanRound(b, 1, nil) }

func BenchmarkScanRoundParallel(b *testing.B) {
	b.Setenv(par.EnvWorkers, "8")
	benchScanRound(b, 8, nil)
}

// BenchmarkScanRoundMetrics runs the same round with a live registry
// attached — what a campaign under -metrics pays.
func BenchmarkScanRoundMetrics(b *testing.B) {
	benchScanRound(b, 1, scanner.NewMetrics(obs.NewRegistry()))
}

func BenchmarkICMPEncodeDecode(b *testing.B) {
	src := netmodel.MustParseAddr("198.51.100.1")
	dst := netmodel.MustParseAddr("91.198.4.7")
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := icmp.MarshalIPv4(icmp.IPv4Header{TTL: 64, Protocol: icmp.ProtoICMP, Src: src, Dst: dst},
			icmp.EchoRequest(uint16(i), uint16(i>>16), payload))
		if _, _, err := icmp.ParseIPv4(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPermutation(b *testing.B) {
	pm, err := scanner.NewPermutation(1<<20, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	c := pm.Iterate()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Next(); !ok {
			c = pm.Iterate()
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	env := benchEnvWarm(b)
	es := env.Signals().AS(25482)
	cfg := signals.ASConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := signals.Detect(es, cfg)
		if len(d.Flags) == 0 {
			b.Fatal("no flags")
		}
	}
}

func BenchmarkSimStateGeneration(b *testing.B) {
	// Per-round, per-block ground-truth evaluation throughput.
	sc := sim.MustBuild(sim.Config{Seed: 3, Scale: 0.02})
	at := sc.TL.Time(sc.TL.NumRounds() / 2)
	n := sc.Space.NumBlocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := sc.BlockStateAt(i%n, at)
		_ = st
	}
}
