package countrymon_test

import (
	"bytes"
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	countrymon "countrymon"
	"countrymon/internal/campaign"
	"countrymon/internal/faults"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/simnet"
)

// Cross-country chaos: a scripted vantage blackout that hits only country
// A's view of vantage v0 must (a) never delay or degrade country B's rounds
// — B's scans route around the open breaker the moment A's scans trip it,
// the cross-country analogue of in-round shard stealing — and (b) leave A's
// missing-round accounting and outage detection identical to the same
// country run solo through the same faults. This is the multi-campaign
// extension of chaos_test.go's single-country soak.

const xcRounds = 60

var xcStart = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func xcSpec(t *testing.T) *campaign.Spec {
	t.Helper()
	s := &campaign.Spec{
		Countries: []campaign.CountrySpec{
			{Code: "UA", Name: "Ukraine"},
			{Code: "RO", Name: "Romania"},
		},
		Vantages: 3,
		Rounds:   xcRounds,
		Interval: 2 * time.Hour,
		Start:    xcStart,
		Rate:     2000,
		Seed:     9,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// xcBlackout covers the scans of rounds [10, 16] with slack, like
// chaosWindow does.
func xcBlackout() []faults.Window {
	return []faults.Window{{
		From: xcStart.Add(10*2*time.Hour - 30*time.Minute),
		To:   xcStart.Add(16*2*time.Hour + 90*time.Minute),
		Kind: faults.Blackout,
	}}
}

// xcWrap injects the blackout into every campaign's view of v0: a vantage
// blackout is a fault of the vantage, not of one country's path, so both
// countries' scans through v0 fail during the window. (A fault scoped to a
// single country's transports would never trip the shared breaker — the
// other country's successes on the same vantage reset it every round.)
func xcWrap(country, vantage string, tr scanner.Transport) scanner.Transport {
	if vantage == "v0" {
		return faults.NewTransport(tr, nil, faults.Profile{Seed: 1, Windows: xcBlackout()})
	}
	return tr
}

// xcClock is chaos_test's testClock for the external test package.
type xcClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *xcClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *xcClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// xcSoloUA runs country UA alone on its own three-vantage fleet through the
// identical faults — the single-country chaos baseline the coordinated run
// is held to.
func xcSoloUA(t *testing.T, spec *campaign.Spec) *countrymon.Monitor {
	t.Helper()
	cs := &spec.Countries[0]
	world, err := spec.World(cs)
	if err != nil {
		t.Fatal(err)
	}
	space := world.Space
	var targets []countrymon.Prefix
	for _, as := range space.ASes() {
		targets = append(targets, as.Prefixes...)
	}
	origins := make(map[countrymon.BlockID]countrymon.ASN)
	for _, blk := range space.Blocks() {
		origins[blk] = space.OriginOf(blk)
	}
	local := netmodel.MustParseAddr("203.0.113.1")
	var vantages []countrymon.VantageSpec
	for i := 0; i < spec.Vantages; i++ {
		vn := "v" + strconv.Itoa(i)
		vantages = append(vantages, countrymon.VantageSpec{
			Name: vn,
			Transport: func(round int, at time.Time) (countrymon.Transport, countrymon.Clock, error) {
				net := simnet.New(local, world.Responder(), at)
				return xcWrap("UA", vn, net), net, nil
			},
		})
	}
	mon, err := countrymon.New(countrymon.Options{
		Vantages:      vantages,
		Clock:         &xcClock{now: spec.Start},
		Targets:       targets,
		Start:         spec.Start,
		Interval:      spec.Interval,
		Rounds:        spec.Rounds,
		Rate:          spec.CountryRate("UA"),
		Seed:          cs.Seed,
		Origins:       origins,
		Country:       "UA",
		StreamSignals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := space.Blocks()
	for mon.NextRound() {
		r := mon.Round()
		at := world.TL.Time(r)
		for bi, blk := range blocks {
			mon.SetRouted(blk, r, world.BlockStateAt(bi, at).Routed, origins[blk])
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatalf("solo UA round %d: %v", r, err)
		}
	}
	return mon
}

func xcMissing(mon *countrymon.Monitor) []int {
	var out []int
	for r := 0; r < xcRounds; r++ {
		if mon.Store().Missing(r) {
			out = append(out, r)
		}
	}
	return out
}

func TestChaosCrossCountryBlackout(t *testing.T) {
	spec := xcSpec(t)
	co, err := campaign.New(spec, campaign.Options{WrapTransport: xcWrap})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ua, ro := co.Country("UA"), co.Country("RO")

	// (a) Country B rode through the blackout untouched: every RO round
	// scanned, none missing, full coverage — v0's shards are donated to the
	// healthy vantages in B's rounds just as they are in A's.
	for r := 0; r < xcRounds; r++ {
		if ro.Monitor.Store().Missing(r) {
			t.Errorf("RO round %d missing despite two healthy vantages", r)
		}
		if cov := ro.Monitor.Store().Coverage(r); cov < 1 {
			t.Errorf("RO round %d coverage %v, want 1", r, cov)
		}
	}

	// (b) Country A's missing-round accounting matches the single-country
	// chaos baseline exactly.
	solo := xcSoloUA(t, spec)
	gotMissing, wantMissing := xcMissing(ua.Monitor), xcMissing(solo)
	if len(gotMissing) != len(wantMissing) {
		t.Errorf("UA missing rounds %v, solo baseline %v", gotMissing, wantMissing)
	} else {
		for i := range gotMissing {
			if gotMissing[i] != wantMissing[i] {
				t.Errorf("UA missing rounds %v, solo baseline %v", gotMissing, wantMissing)
				break
			}
		}
	}

	// ... and detects the synthetic model's scripted outage in the same
	// rounds the baseline does (the outage AS is the model's second).
	outAS := ua.World.Space.ASes()[1].ASN
	gotDet, wantDet := ua.Monitor.DetectAS(outAS), solo.DetectAS(outAS)
	if len(wantDet.Outages) == 0 {
		t.Fatal("solo baseline detected no outage for the scripted event")
	}
	if len(gotDet.Outages) != len(wantDet.Outages) {
		t.Fatalf("UA outages %+v, baseline %+v", gotDet.Outages, wantDet.Outages)
	}
	for i := range gotDet.Outages {
		if gotDet.Outages[i].Start != wantDet.Outages[i].Start ||
			gotDet.Outages[i].End != wantDet.Outages[i].End {
			t.Errorf("UA outage %d = [%d, %d), baseline [%d, %d)", i,
				gotDet.Outages[i].Start, gotDet.Outages[i].End,
				wantDet.Outages[i].Start, wantDet.Outages[i].End)
		}
	}

	// (c) Per-campaign attribution: the steals and the quarantine sighting
	// belong to UA's report; the fleet total is the per-campaign sum, so
	// nothing is double-counted when two monitors share the supervisor.
	uaRep, roRep := ua.FleetReport(), ro.FleetReport()
	if uaRep.Steals == 0 {
		t.Error("UA campaign recorded no steals despite the v0 blackout")
	}
	if len(uaRep.Quarantined) == 0 {
		t.Error("UA campaign never observed v0 quarantined")
	}
	total := co.Supervisor().Report()
	if total.Steals != uaRep.Steals+roRep.Steals {
		t.Errorf("fleet steals %d != UA %d + RO %d", total.Steals, uaRep.Steals, roRep.Steals)
	}
	if total.SelfOutages != uaRep.SelfOutages+roRep.SelfOutages {
		t.Errorf("fleet self-outages %d != UA %d + RO %d", total.SelfOutages, uaRep.SelfOutages, roRep.SelfOutages)
	}
	// The fleet-level quarantine list is deduplicated per vantage even when
	// both campaigns observed the same open breaker.
	n := 0
	for _, v := range total.Quarantined {
		if v == "v0" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("fleet quarantine list %v, want v0 exactly once", total.Quarantined)
	}

	// The coordinated UA store need not be byte-identical to the solo one
	// here — under faults the shared breaker history differs — but both
	// must carry every round.
	var cb, sb bytes.Buffer
	if _, err := ua.Monitor.Store().WriteTo(&cb); err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Store().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if cb.Len() == 0 || sb.Len() == 0 {
		t.Fatal("empty store serialization")
	}
}
