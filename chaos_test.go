package countrymon

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"countrymon/internal/faults"
	"countrymon/internal/netmodel"
	"countrymon/internal/simnet"
)

// The chaos soak (also `make chaos-smoke`): a three-vantage fleet campaign
// with scripted single-vantage blackouts, a wedged receive path and
// connectivity flaps, over ground truth containing one genuine outage. The
// fleet must (a) declare zero block outages the fault-free single-vantage
// baseline does not also declare, (b) still detect the genuine outage in
// the same rounds, and (c) produce byte-identical output regardless of
// COUNTRYMON_WORKERS and across kill/resume.

// testClock is a standalone virtual clock for fleet campaigns, where no
// single transport owns time (each vantage builds fresh per-round networks).
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

const chaosRounds = 120

var (
	chaosStart   = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	chaosOutFrom = chaosStart.Add(60 * 2 * time.Hour) // genuine outage: rounds [60, 75)
	chaosOutTo   = chaosStart.Add(75 * 2 * time.Hour)
)

// chaosWindow covers the scans of rounds [from, to] (2h cadence) with some
// slack either side.
func chaosWindow(from, to int, kind faults.Kind, period time.Duration) faults.Window {
	return faults.Window{
		From:   chaosStart.Add(time.Duration(from)*2*time.Hour - 30*time.Minute),
		To:     chaosStart.Add(time.Duration(to)*2*time.Hour + 90*time.Minute),
		Kind:   kind,
		Period: period,
	}
}

// chaosVantage builds a fleet vantage over the shared ground truth,
// optionally fault-wrapped.
func chaosVantage(name string, windows ...faults.Window) VantageSpec {
	local := netmodel.MustParseAddr("198.51.100.1")
	return VantageSpec{
		Name: name,
		Transport: func(round int, at time.Time) (Transport, Clock, error) {
			net := simnet.New(local, outageResponder(40, chaosOutFrom, chaosOutTo), at)
			if len(windows) == 0 {
				return net, net, nil
			}
			return faults.NewTransport(net, nil, faults.Profile{Seed: 1, Windows: windows}), net, nil
		},
	}
}

// chaosOpts is the shared fleet campaign configuration: v0 suffers a
// blackout and later a receive-path stall, v1 flaps, v2 stays healthy.
func chaosOpts(ckpt string) Options {
	return Options{
		Vantages: []VantageSpec{
			chaosVantage("v0",
				chaosWindow(10, 16, faults.Blackout, 0),
				chaosWindow(30, 36, faults.Stall, 0)),
			chaosVantage("v1",
				chaosWindow(45, 50, faults.Flap, 45*time.Minute)),
			chaosVantage("v2"),
		},
		Quorum:  2,
		Clock:   &testClock{now: chaosStart},
		Targets: []Prefix{netmodel.MustParsePrefix("91.198.4.0/23")},
		Start:   chaosStart, Rounds: chaosRounds, Interval: 2 * time.Hour,
		Seed: 7,
		Origins: map[BlockID]ASN{
			netmodel.MustParseBlock("91.198.4.0/24"): 25482,
			netmodel.MustParseBlock("91.198.5.0/24"): 25482,
		},
		CheckpointPath: ckpt, CheckpointEvery: 25,
	}
}

// chaosBaseline runs the same campaign through a single fault-free vantage:
// the reference for which outages are real and when they are detected.
func chaosBaseline(t *testing.T) *Monitor {
	t.Helper()
	opts := chaosOpts("")
	opts.Vantages, opts.Quorum = nil, 0
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"),
		outageResponder(40, chaosOutFrom, chaosOutTo), chaosStart)
	opts.Transport, opts.Clock = net, nil
	return runChaosCampaign(t, opts, -1)
}

func runChaosCampaign(t *testing.T, opts Options, stopAt int) *Monitor {
	t.Helper()
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, mon, stopAt)
	return mon
}

func storeBytes(t *testing.T, mon *Monitor) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := mon.Store().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestChaosSoak(t *testing.T) {
	// Fault-free single-vantage baseline: the ground truth of what outages
	// exist and when they are detected.
	baseline := chaosBaseline(t)
	baseAS := baseline.DetectAS(25482)
	if len(baseAS.Outages) != 1 || baseAS.Outages[0].Start != 60 {
		t.Fatalf("baseline campaign: outages %+v, want one starting at round 60", baseAS.Outages)
	}

	chaos := runChaosCampaign(t, chaosOpts(""), -1)

	// (a) + (b): identical outage sets — zero false block-outage
	// declarations AND the genuine outage detected in the same rounds (well
	// within one round of the single-healthy-vantage baseline).
	chaosAS := chaos.DetectAS(25482)
	sameOutages(t, "chaos DetectAS", chaosAS.Outages, baseAS.Outages)

	// Every round carried usable data: scripted single-vantage faults never
	// cost the campaign a round (the remaining vantages cover the shards).
	for r := 0; r < chaosRounds; r++ {
		if chaos.Store().Missing(r) {
			t.Errorf("round %d recorded missing despite two healthy vantages", r)
		}
		if cov := chaos.Store().Coverage(r); cov < 1 {
			t.Errorf("round %d coverage %v, want 1", r, cov)
		}
	}

	// The chaos was real: the sick vantage was quarantined at least once
	// and shards were stolen mid-round.
	rep, ok := chaos.FleetReport()
	if !ok {
		t.Fatal("fleet campaign has no fleet report")
	}
	if len(rep.Quarantined) == 0 {
		t.Error("no vantage was ever quarantined by the scripted faults")
	}
	if rep.Steals == 0 {
		t.Error("no shard was ever stolen despite blackout windows")
	}
	if rep.FusedDown == 0 {
		t.Error("the genuine outage produced no corroborated down transition")
	}
	if !rep.Degraded() {
		t.Error("a campaign with quarantines must report degraded")
	}
}

func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	t.Setenv("COUNTRYMON_WORKERS", "1")
	serial := storeBytes(t, runChaosCampaign(t, chaosOpts(""), -1))
	t.Setenv("COUNTRYMON_WORKERS", "8")
	wide := storeBytes(t, runChaosCampaign(t, chaosOpts(""), -1))
	if !bytes.Equal(serial, wide) {
		t.Fatal("fleet campaign output depends on COUNTRYMON_WORKERS")
	}
}

func TestChaosKillResume(t *testing.T) {
	full := storeBytes(t, runChaosCampaign(t, chaosOpts(""), -1))

	// Kill at round 100 — past every fault window, with the fleet settled
	// back to steady state — then resume from the checkpoint in a fresh
	// monitor (fresh breakers) and finish.
	ckpt := t.TempDir() + "/chaos.ckpt"
	killed, err := New(chaosOpts(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, killed, 100)
	if err := killed.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	opts := chaosOpts(ckpt)
	opts.ResumeFrom = ckpt
	opts.Clock = &testClock{now: chaosStart.Add(100 * 2 * time.Hour)}
	resumed := runChaosCampaign(t, opts, -1)
	if got := storeBytes(t, resumed); !bytes.Equal(got, full) {
		t.Fatalf("resumed chaos campaign diverged from uninterrupted run (%d vs %d bytes)", len(got), len(full))
	}
}

// Guards the README exit-code table: fleet degradation is a distinct,
// scriptable outcome.
func ExampleFleetReport() {
	rep := FleetReport{Quarantined: []string{"v0"}, DegradedRounds: 2, Steals: 5}
	fmt.Println(rep.Degraded())
	// Output: true
}
