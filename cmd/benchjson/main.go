// Command benchjson converts `go test -bench` output on stdin into a JSON
// baseline written to stdout, keyed by benchmark name:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_baseline.json
//
// Each entry records ns/op, B/op and allocs/op when present, plus any custom
// metrics reported via b.ReportMetric (e.g. the experiment metrics the
// benchmark harness re-exports). Non-benchmark lines (goos/pkg banners,
// PASS/ok) are echoed to stderr so they stay visible when stdout is a file.
// With -merge base.json the parsed entries overlay the existing baseline
// instead of replacing it — how `make bench` re-records the headline
// benchmarks at the gate's (longer) benchtime so gate comparisons are
// like-for-like.
//
// With -diff old.json new.json it instead compares two baselines: per
// benchmark, the ns/op and allocs/op deltas are printed, regressions worse
// than -threshold (default 20%) are flagged, and the exit status is 1 when
// any benchmark regressed — wired as a non-fatal CI step so the perf
// trajectory stays visible per PR without blocking on noisy hosts.
//
// With -gate old.json new.json only the named -headline metrics are
// checked, and the check is meant to be fatal in CI: a headline metric that
// regressed beyond -threshold — or disappeared from the new baseline —
// exits 1. Each comma-separated headline is either a bare custom-metric
// name ("probes_per_sec", matched in every benchmark that reports it;
// metrics ending in _per_sec are higher-is-better, all others
// lower-is-better) or "Benchmark:metric" pinning one benchmark's metric,
// where metric may also be ns_per_op or allocs_per_op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's recorded baseline.
type entry struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two baseline files (old.json new.json) instead of converting stdin")
	gate := flag.Bool("gate", false, "fail (exit 1) when a -headline metric regressed beyond -threshold between old.json and new.json")
	headline := flag.String("headline", "probes_per_sec,rounds_per_sec",
		"comma-separated headline metrics for -gate: bare metric name or Benchmark:metric")
	threshold := flag.Float64("threshold", 0.20, "regression fraction that fails the diff (0.20 = 20% worse)")
	mergePath := flag.String("merge", "", "overlay the parsed entries onto this existing baseline before emitting")
	flag.Parse()

	if *diff || *gate {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff|-gate old.json new.json")
			os.Exit(2)
		}
		if *gate {
			os.Exit(runGate(flag.Arg(0), flag.Arg(1), *headline, *threshold))
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold))
	}

	results := make(map[string]*entry)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		name, e, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *mergePath != "" {
		base, err := loadBaseline(*mergePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		for n, e := range results {
			base[n] = e
		}
		results = base
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	// Emit in sorted order via an ordered re-marshal.
	out := make(map[string]*entry, len(results))
	for _, n := range names {
		out[n] = results[n]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// loadBaseline reads a benchjson-produced JSON file.
func loadBaseline(path string) (map[string]*entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m map[string]*entry
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// runDiff compares two baselines and returns the process exit code: 0 when
// no benchmark regressed beyond the threshold, 1 otherwise.
func runDiff(oldPath, newPath string, threshold float64) int {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(newB))
	for n := range newB {
		names = append(names, n)
	}
	sort.Strings(names)

	regressions, added := 0, 0
	fmt.Printf("%-55s %12s %12s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs")
	for _, n := range names {
		ne := newB[n]
		oe, ok := oldB[n]
		if !ok {
			added++
			fmt.Printf("%-55s %12s %12.0f %8s %10s  [new]\n", n, "-", ne.NsPerOp, "-", "-")
			continue
		}
		flags := ""
		nsD := delta(oe.NsPerOp, ne.NsPerOp)
		alD := delta(oe.AllocsPerOp, ne.AllocsPerOp)
		if nsD > threshold || alD > threshold {
			flags = fmt.Sprintf("  [REGRESSED >%d%%]", int(threshold*100))
			regressions++
		} else if nsD < -threshold {
			flags = "  [improved]"
		}
		fmt.Printf("%-55s %12.0f %12.0f %7.1f%% %9.1f%%%s\n",
			n, oe.NsPerOp, ne.NsPerOp, 100*nsD, 100*alD, flags)
	}
	removed := 0
	for n := range oldB {
		if _, ok := newB[n]; !ok {
			removed++
			fmt.Printf("%-55s  [removed]\n", n)
		}
	}
	fmt.Printf("\n%d benchmarks compared, %d regressed, %d added, %d removed\n",
		len(names)-added, regressions, added, removed)
	if regressions > 0 {
		return 1
	}
	return 0
}

// runGate checks only the named headline metrics, fatally: exit 1 when any
// regressed beyond the threshold or vanished from the new baseline, exit 0
// otherwise. Unlike runDiff, which surveys everything advisorily, the gate
// is the small set of numbers the project refuses to lose.
func runGate(oldPath, newPath, headlines string, threshold float64) int {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	names := make([]string, 0, len(newB))
	for n := range newB {
		names = append(names, n)
	}
	sort.Strings(names)

	failures, checked := 0, 0
	fmt.Printf("%-72s %14s %14s %8s\n", "headline", "old", "new", "change")
	for _, spec := range strings.Split(headlines, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		bench, metric := "", spec
		if i := strings.Index(spec, ":"); i >= 0 {
			bench, metric = spec[:i], spec[i+1:]
		}
		higherBetter := strings.HasSuffix(metric, "_per_sec")
		matched := 0
		for _, n := range names {
			if bench != "" && n != bench {
				continue
			}
			nv, ok := metricValue(newB[n], metric)
			if !ok {
				continue
			}
			matched++
			label := n + ":" + metric
			ov, ok := float64(0), false
			if oe := oldB[n]; oe != nil {
				ov, ok = metricValue(oe, metric)
			}
			if !ok {
				fmt.Printf("%-72s %14s %14.1f %8s  [new]\n", label, "-", nv, "-")
				continue
			}
			reg := delta(ov, nv)
			if higherBetter {
				reg = -reg
			}
			checked++
			flag := ""
			if reg > threshold {
				flag = fmt.Sprintf("  [FAIL >%d%%]", int(threshold*100))
				failures++
			}
			fmt.Printf("%-72s %14.1f %14.1f %+7.1f%%%s\n", label, ov, nv, 100*delta(ov, nv), flag)
		}
		if matched == 0 {
			fmt.Printf("%-72s  [FAIL: missing from %s]\n", spec, newPath)
			failures++
		}
	}
	fmt.Printf("\n%d headline metrics checked, %d failed\n", checked, failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// metricValue resolves a headline metric name against one entry: the
// built-in ns_per_op / allocs_per_op fields or a custom b.ReportMetric unit.
func metricValue(e *entry, metric string) (float64, bool) {
	switch metric {
	case "ns_per_op":
		return e.NsPerOp, e.NsPerOp != 0
	case "allocs_per_op":
		return e.AllocsPerOp, true
	default:
		v, ok := e.Metrics[metric]
		return v, ok
	}
}

// delta returns (new-old)/old, treating a missing (zero) old value as "no
// signal" rather than an infinite regression.
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// parseLine decodes one `Benchmark...` result line: the name (with the
// -GOMAXPROCS suffix stripped), the iteration count, then "value unit"
// pairs.
func parseLine(line string) (string, *entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", nil, false
	}
	name := fields[0]
	// Strip the trailing -N GOMAXPROCS suffix, if any.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return "", nil, false
	}
	e := &entry{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
	}
	return name, e, true
}
