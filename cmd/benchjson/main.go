// Command benchjson converts `go test -bench` output on stdin into a JSON
// baseline written to stdout, keyed by benchmark name:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_baseline.json
//
// Each entry records ns/op, B/op and allocs/op when present, plus any custom
// metrics reported via b.ReportMetric (e.g. the experiment metrics the
// benchmark harness re-exports). Non-benchmark lines (goos/pkg banners,
// PASS/ok) are echoed to stderr so they stay visible when stdout is a file.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's recorded baseline.
type entry struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results := make(map[string]*entry)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		name, e, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	// Emit in sorted order via an ordered re-marshal.
	out := make(map[string]*entry, len(results))
	for _, n := range names {
		out[n] = results[n]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes one `Benchmark...` result line: the name (with the
// -GOMAXPROCS suffix stripped), the iteration count, then "value unit"
// pairs.
func parseLine(line string) (string, *entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", nil, false
	}
	name := fields[0]
	// Strip the trailing -N GOMAXPROCS suffix, if any.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return "", nil, false
	}
	e := &entry{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
	}
	return name, e, true
}
