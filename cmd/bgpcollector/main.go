// Command bgpcollector runs the BGP route collector that feeds the BGP★
// signal. In -demo mode it also spawns simulated peers that announce the
// Kherson Table-5 prefixes, withdraw them during the Mykolaiv cable-cut
// window, and re-announce them afterwards, printing RIB snapshots as the
// event unfolds.
//
// Usage:
//
//	bgpcollector [-listen 127.0.0.1:1790] [-demo] [-snapshots 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"countrymon/internal/bgp"
	"countrymon/internal/netmodel"
	"countrymon/internal/sim"
)

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:0", "collector listen address")
	demo := flag.Bool("demo", true, "run the cable-cut demo with simulated peers")
	snapshots := flag.Int("snapshots", 3, "demo RIB snapshots to print")
	flag.Parse()

	col, err := bgp.NewCollector(*listen, 65000, netmodel.MustParseAddr("192.0.2.100"))
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	log.Printf("collector listening on %v (AS65000)", col.Addr())

	if !*demo {
		select {} // serve until killed
	}

	sc := sim.MustBuild(sim.Config{Seed: 1, Scale: 0.02})
	const russianUpstream = netmodel.ASN(12389) // Rostelecom
	suspects := map[netmodel.ASN]bool{russianUpstream: true}

	// One speaker per Kherson AS, announcing via a Ukrainian upstream.
	var speakers []*bgp.Speaker
	for i, asn := range sim.KhersonASNs() {
		as := sc.Space.Lookup(asn)
		if as == nil {
			continue
		}
		sp, err := bgp.Dial(col.Addr().String(), netmodel.ASN(64512+i), netmodel.MustParseAddr("192.0.2.1"))
		if err != nil {
			log.Fatal(err)
		}
		defer sp.Close()
		if err := sp.Announce(asn, nil, netmodel.MustParseAddr("192.0.2.1"), as.Prefixes...); err != nil {
			log.Fatal(err)
		}
		speakers = append(speakers, sp)
	}
	waitRIB(col, len(speakers))
	printSnapshot(col, suspects, "initial table")

	// Cable cut: regional ASes withdraw.
	log.Printf("\n== simulating the 2022-04-30 cable cut: withdrawing regional prefixes ==")
	for i, asn := range sim.KhersonRegionalASNs() {
		as := sc.Space.Lookup(asn)
		if as == nil || i >= len(speakers) {
			continue
		}
		if err := speakers[i].Withdraw(as.Prefixes...); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	printSnapshot(col, suspects, "during cable cut")

	if *snapshots > 2 {
		// Restoration via Russian upstream (the occupation rerouting).
		log.Printf("\n== restoration via Russian upstream (occupation rerouting) ==")
		for i, asn := range sim.KhersonRegionalASNs() {
			as := sc.Space.Lookup(asn)
			if as == nil || i >= len(speakers) {
				continue
			}
			if err := speakers[i].Announce(asn, []netmodel.ASN{russianUpstream},
				netmodel.MustParseAddr("192.0.2.9"), as.Prefixes...); err != nil {
				log.Fatal(err)
			}
		}
		waitRIB(col, len(speakers))
		printSnapshot(col, suspects, "after rerouted restoration")
	}
}

func waitRIB(col *bgp.Collector, minRoutes int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if col.RIB().Len() >= minRoutes {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func printSnapshot(col *bgp.Collector, suspects map[netmodel.ASN]bool, label string) {
	snap := col.RIB().Snapshot(suspects)
	type row struct {
		asn    netmodel.ASN
		blocks int
		rer    bool
	}
	var rows []row
	for asn, n := range snap.PerAS {
		rer := false
		for blk, origin := range snap.BlockOrigin {
			if origin == asn && snap.Rerouted[blk] {
				rer = true
				break
			}
		}
		rows = append(rows, row{asn, n, rer})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].asn < rows[j].asn })
	fmt.Printf("\n-- %s: %d routes, %d origin ASes --\n", label, col.RIB().Len(), len(rows))
	for _, r := range rows {
		flag := ""
		if r.rer {
			flag = "  [via Russian upstream]"
		}
		fmt.Printf("%-10v %3d routed /24s%s\n", r.asn, r.blocks, flag)
	}
}
