package main

import (
	"context"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"countrymon/internal/campaign"
	"countrymon/internal/obs"
)

// runCoordinated is the multi-country entry point behind -countries and
// -config: compile the campaign spec into a coordinator over one shared
// vantage fleet, drive every country's rounds in lockstep, print a
// per-country summary, and optionally serve the country-scoped API.
func runCoordinated(countries, config, serveAddr string, reg *obs.Registry, bus *obs.Bus) {
	var (
		spec *campaign.Spec
		err  error
	)
	switch {
	case config != "" && countries != "":
		log.Fatal("-countries and -config are mutually exclusive")
	case config != "":
		spec, err = campaign.Load(config)
	default:
		spec, err = campaign.Quick(strings.Split(countries, ","))
	}
	if err != nil {
		log.Fatal(err)
	}

	co, err := campaign.New(spec, campaign.Options{Registry: reg, Bus: bus})
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()

	log.Printf("coordinated campaign: %d countries over %d shared vantages, %d rounds every %v",
		len(spec.Countries), spec.Vantages, spec.Rounds, spec.Interval)
	for _, c := range co.Countries() {
		log.Printf("  %s (%s): share %.2f → %d pps, %d ASes, %d /24 blocks",
			c.Code, c.Name, c.Share, spec.CountryRate(c.Code),
			c.World.Space.NumASes(), c.World.Space.NumBlocks())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for co.NextRound() {
		if err := co.StepRound(ctx); err != nil {
			log.Fatalf("campaign: %v", err)
		}
	}

	for _, c := range co.Countries() {
		store := c.Monitor.Store()
		missing := 0
		for r := 0; r < spec.Rounds; r++ {
			if store.Missing(r) {
				missing++
			}
		}
		outages := 0
		for _, as := range c.World.Space.ASes() {
			outages += len(c.Monitor.DetectAS(as.ASN).Outages)
		}
		rep := c.FleetReport()
		log.Printf("%s: %d rounds (%d missing), %d AS outage events, fleet steals %d, quarantined %v",
			c.Code, spec.Rounds, missing, outages, rep.Steals, rep.Quarantined)

		for _, as := range c.World.Space.ASes() {
			d := c.Monitor.DetectAS(as.ASN)
			if len(d.Outages) > 0 {
				log.Printf("%s: %v (%s) outage events:", c.Code, as.ASN, as.Name)
				printOutages(d, spec.Interval, store, 5)
			}
		}
	}

	if serveAddr != "" {
		for _, c := range co.Countries() {
			if err := c.Store.AdvanceTo(spec.Rounds); err != nil {
				log.Fatalf("campaign: seal %s: %v", c.Code, err)
			}
		}
		log.Printf("serving /v1/countries and per-country /v1/countries/{cc}/... on http://%s (legacy /v1/* aliases country %s)",
			serveAddr, co.Countries()[0].Code)
		if err := http.ListenAndServe(serveAddr, co.Router()); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
}
