// Command countrymon runs the end-to-end measurement pipeline on the
// simulated war scenario: generate (or load) a three-year campaign, classify
// ASes and blocks regionally, compute the three outage signals, and print a
// per-region and Kherson summary.
//
// Usage:
//
//	countrymon [-scale 0.12] [-interval 6] [-seed 1]
//	           [-save data.cmds] [-load data.cmds]
//	           [-packet-rounds N] [-vantages N] [-quorum k]
//	           [-region Kherson] [-as 25482]
//	           [-metrics :9090]
//	countrymon -countries UA,RO [-serve :8080] [-metrics :9090]
//	countrymon -config spec.json [-serve :8080]
//
// With -vantages N the packet-level rounds run through a supervised
// multi-vantage fleet (internal/fleet) instead of a single scanner, with
// -quorum controlling the k-of-n corroboration of suspect block outages.
//
// With -countries (synthetic per-country models, equal budget shares) or
// -config (a full campaign.Spec document) the command instead runs a
// coordinated multi-country campaign: per-country Monitors sharing one
// vantage fleet, and -serve exposes the country-scoped query API
// (/v1/countries, /v1/countries/{cc}/series|outages|entities|events; the
// unprefixed legacy /v1/* routes alias the first country).
//
// With -metrics, live pipeline instrumentation — scanner counters, signal
// build/detect timings, outage counts — is served on /metrics (Prometheus
// text, ?format=json) and /events (SSE).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"countrymon/internal/analysis"
	"countrymon/internal/dataset"
	"countrymon/internal/fleet"
	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/regional"
	"countrymon/internal/render"
	"countrymon/internal/scanner"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/simnet"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.12, "scenario scale (1.0 = paper scale)")
	interval := flag.Int("interval", 6, "probing interval in hours (paper: 2)")
	seed := flag.Uint64("seed", 1, "scenario seed")
	save := flag.String("save", "", "write the generated dataset to this file")
	load := flag.String("load", "", "load a dataset instead of generating")
	lazy := flag.Bool("lazy", false, "open -load lazily: v4 resp columns decode on first touch")
	packetRounds := flag.Int("packet-rounds", 0, "additionally run N packet-level scan rounds through the real scanner")
	parallel := flag.Int("parallel", 1, "in-process scan shards per packet-level round (COUNTRYMON_WORKERS caps workers)")
	vantages := flag.Int("vantages", 0, "run packet-level rounds over a supervised fleet of N vantages")
	quorum := flag.Int("quorum", 0, "k of the fleet's k-of-n outage corroboration (0 = min(2, vantages))")
	region := flag.String("region", "Kherson", "region to detail")
	asn := flag.Uint("as", 25482, "AS to detail")
	minCov := flag.Float64("min-coverage", signals.DefaultMinCoverage,
		"treat rounds below this probed-target fraction as missing")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /events on this address (e.g. :9090)")
	countries := flag.String("countries", "", "run a coordinated multi-country campaign over these codes (e.g. UA,RO) on synthetic models")
	config := flag.String("config", "", "run a coordinated campaign from this campaign.Spec JSON file")
	serveAddr := flag.String("serve", "", "after a coordinated campaign, serve the country-scoped API on this address (e.g. :8080)")
	flag.Parse()

	var (
		reg *obs.Registry
		bus *obs.Bus
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		bus = obs.NewBus(0)
		go func() {
			log.Printf("observability on http://%s/metrics and /events", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, obs.Handler(reg, bus)); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	if *countries != "" || *config != "" {
		runCoordinated(*countries, *config, *serveAddr, reg, bus)
		return
	}
	if *serveAddr != "" {
		log.Fatal("-serve needs a coordinated campaign (-countries or -config)")
	}

	cfg := sim.Config{Seed: *seed, Scale: *scale, Interval: time.Duration(*interval) * time.Hour}
	log.Printf("building scenario (scale %.2f, %dh rounds)...", *scale, *interval)
	sc := sim.MustBuild(cfg)
	log.Printf("  %d ASes, %d /24 blocks, %d rounds over %s → %s",
		sc.Space.NumASes(), sc.Space.NumBlocks(), sc.TL.NumRounds(),
		sc.TL.Start().Format("2006-01-02"), sc.TL.End().Format("2006-01-02"))

	var store *dataset.Store
	if *load != "" {
		var err error
		if *lazy {
			store, err = dataset.OpenLazy(*load)
		} else {
			store, err = dataset.Load(*load)
		}
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		log.Printf("loaded %s: %d blocks × %d rounds", *load, store.NumBlocks(), store.Timeline().NumRounds())
	} else {
		log.Printf("generating three-year campaign...")
		t0 := time.Now()
		store = sc.GenerateStore(nil)
		log.Printf("  done in %v", time.Since(t0).Round(time.Millisecond))
	}
	if *save != "" {
		if err := store.Save(*save); err != nil {
			log.Fatalf("save: %v", err)
		}
		fi, _ := os.Stat(*save)
		log.Printf("saved %s (%d bytes)", *save, fi.Size())
	}

	if *packetRounds > 0 {
		runPacketRounds(sc, store, *packetRounds, *parallel, *vantages, *quorum, reg, bus)
	}

	log.Printf("classifying %d regions across %d months...", netmodel.NumRegions, store.Timeline().NumMonths())
	cl := regional.NewClassifier(sc.Space, sc.GeoDB(), store)
	res := cl.ClassifyAll(regional.DefaultParams())
	counts := res.NationalCounts()
	log.Printf("  regional %d / non-regional %d / temporal %d ASes",
		counts[regional.ASRegional], counts[regional.ASNonRegional], counts[regional.ASTemporal])

	b := signals.NewBuilderMinCoverage(store, sc.Space, *minCov)
	sigM := signals.NewMetrics(reg)
	b.Observe(sigM)
	tl := store.Timeline()

	// Data-quality summary: rounds without usable observations.
	outages, partial := 0, 0
	for r := 0; r < tl.NumRounds(); r++ {
		switch {
		case store.Missing(r):
			outages++
		case store.Coverage(r) < *minCov:
			partial++
		}
	}
	effMissing := store.EffectiveMissing(*minCov)
	log.Printf("data quality: %d vantage-outage rounds, %d partial rounds below %.0f%% coverage (both gated from signals)",
		outages, partial, 100**minCov)

	fmt.Printf("\n%-16s %8s %8s %10s\n", "region", "events", "rounds", "hours")
	var rows []render.LabeledDetection
	for _, r := range netmodel.Regions() {
		d := signals.DetectObs(b.Region(res.Regions[r], cl), signals.RegionConfig(), sigM)
		hours := float64(d.TotalRounds()) * tl.Interval().Hours()
		fl := ""
		if r.Frontline() {
			fl = "  [frontline]"
		}
		fmt.Printf("%-16s %8d %8d %10.0f%s\n", r, len(d.Outages), d.TotalRounds(), hours, fl)
		rows = append(rows, render.LabeledDetection{Label: r.String(), Detection: d, Missing: effMissing})
	}
	fmt.Println()
	fmt.Print(render.Timeline(tl, rows, 100))

	target, _ := netmodel.RegionByName(*region)
	if target.Valid() {
		fmt.Printf("\n-- %s outage events (regional signal) --\n", target)
		d := signals.DetectObs(b.Region(res.Regions[target], cl), signals.RegionConfig(), sigM)
		printOutages(d, tl.Interval(), store, 15)
	}

	a := netmodel.ASN(*asn)
	if sc.Space.Lookup(a) != nil {
		fmt.Printf("\n-- %v (%s) outage events --\n", a, sc.Space.Lookup(a).Name)
		d := signals.DetectObs(b.AS(a), signals.ASConfig(), sigM)
		printOutages(d, tl.Interval(), store, 15)
		daily := analysis.OutageHoursPerDay(d, tl)
		total := 0.0
		for _, v := range daily {
			total += v
		}
		fmt.Printf("total outage hours: %.0f over %d events\n", total, len(d.Outages))
	}
}

func printOutages(d *signals.Detection, interval time.Duration, store *dataset.Store, limit int) {
	tl := store.Timeline()
	for i, o := range d.Outages {
		if i >= limit {
			fmt.Printf("... and %d more\n", len(d.Outages)-limit)
			return
		}
		ongoing := ""
		if o.Ongoing {
			ongoing = " [ongoing/zero-BGP]"
		}
		fmt.Printf("%s → %s  %-14s %v%s\n",
			tl.Time(o.Start).Format("2006-01-02 15:04"),
			tl.Time(o.End).Format("2006-01-02 15:04"),
			o.Duration(interval).Round(time.Hour), o.Signals, ongoing)
	}
}

// runPacketRounds replays the first N rounds through the real scanner over
// the simulated wire and cross-checks the fast generator's counts. With
// parallel > 1 each round fans out over in-process shards via ScanParallel,
// which must agree with the serial scan bit-for-bit; with vantages > 0 the
// rounds run through a supervised multi-vantage fleet instead, whose fused
// output must agree just the same.
func runPacketRounds(sc *sim.Scenario, store *dataset.Store, n, parallel, vantages, quorum int, reg *obs.Registry, bus *obs.Bus) {
	log.Printf("packet-level validation: scanning %d rounds through the real scanner (parallel=%d, vantages=%d)...", n, parallel, vantages)
	scanM := scanner.NewMetrics(reg)
	// Scan a tractable subset: the Kherson Table-5 ASes.
	var prefixes []netmodel.Prefix
	for _, asn := range sim.KhersonASNs() {
		if as := sc.Space.Lookup(asn); as != nil {
			prefixes = append(prefixes, as.Prefixes...)
		}
	}
	ts, err := scanner.NewTargetSet(prefixes, nil)
	if err != nil {
		log.Fatalf("targets: %v", err)
	}
	local := netmodel.MustParseAddr("198.51.100.1")
	baseCfg := scanner.Config{
		Rate: scanner.DefaultRate * 10, Seed: 99,
		Cooldown: 2 * time.Second,
		Metrics:  scanM, Events: bus,
	}
	var sup *fleet.Supervisor
	if vantages > 0 {
		specs := make([]fleet.Spec, vantages)
		for i := range specs {
			specs[i] = fleet.Spec{
				Name: fmt.Sprintf("v%d", i),
				Transport: func(round int, at time.Time) (scanner.Transport, scanner.Clock, error) {
					net := simnet.New(local, sc.Responder(), at)
					return net, net, nil
				},
			}
		}
		sup, err = fleet.New(specs, fleet.Config{
			Targets: ts, Scan: baseCfg, Quorum: quorum,
			Registry: reg, Bus: bus,
		})
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
	}
	mismatches, checked := 0, 0
	for round := 0; round < n && round < sc.TL.NumRounds(); round++ {
		if sc.Missing[round] {
			continue
		}
		at := sc.TL.Time(round)
		cfg := baseCfg
		cfg.Epoch = uint32(round + 1)
		var rd *scanner.RoundData
		if sup != nil {
			var rep *fleet.RoundReport
			rd, rep, err = sup.ScanRound(context.Background(), round, at, nil)
			if err == nil && rep.SelfOutage {
				log.Fatalf("fleet: self-outage in round %d with healthy sim vantages", round)
			}
		} else if parallel > 1 {
			rd, err = scanner.ScanParallel(context.Background(), ts, parallel, cfg,
				func(shard, shards int) (scanner.Transport, scanner.Clock, error) {
					net := simnet.New(local, sc.Responder(), at)
					return net, net, nil
				})
		} else {
			net := simnet.New(local, sc.Responder(), at)
			cfg.Clock = net
			rd, err = scanner.New(net, cfg).Run(ts)
		}
		if err != nil {
			log.Fatalf("scan: %v", err)
		}
		for i := range rd.Blocks {
			bi := store.BlockIndex(rd.Blocks[i].Block)
			if bi < 0 {
				continue
			}
			checked++
			if int(rd.Blocks[i].RespCount) != store.Resp(bi, round) {
				mismatches++
			}
		}
	}
	log.Printf("  %d block-rounds cross-checked, %d mismatches (scanner vs fast generator)", checked, mismatches)
}
