// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale 0.12] [-interval 6] [-seed 1] [-markdown] [ids...]
//
// With no ids, every registered experiment runs in order. -markdown emits
// the EXPERIMENTS.md paper-vs-measured record instead of full reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"countrymon/internal/experiments"
	"countrymon/internal/sim"
)

func main() {
	scale := flag.Float64("scale", 0.12, "scenario scale (1.0 = paper scale)")
	interval := flag.Int("interval", 6, "probing interval in hours (paper: 2)")
	seed := flag.Uint64("seed", 1, "scenario seed")
	markdown := flag.Bool("markdown", false, "emit EXPERIMENTS.md content")
	flag.Parse()

	env := experiments.New(sim.Config{
		Seed:     *seed,
		Scale:    *scale,
		Interval: time.Duration(*interval) * time.Hour,
	})

	var list []experiments.Experiment
	if flag.NArg() == 0 {
		list = experiments.All()
		// Running everything: materialize the pipeline up front so the
		// independent stages build concurrently instead of on first use.
		env.Warm()
	} else {
		for _, id := range flag.Args() {
			ex, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			list = append(list, ex)
		}
	}

	if *markdown {
		emitMarkdown(env, list, *scale, *interval, *seed)
		return
	}
	for _, ex := range list {
		start := time.Now()
		rep := ex.Run(env)
		fmt.Print(rep.String())
		fmt.Printf("(%s in %v)\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
}

func emitMarkdown(env *experiments.Env, list []experiments.Experiment, scale float64, interval int, seed uint64) {
	fmt.Println("# EXPERIMENTS — paper vs measured")
	fmt.Println()
	fmt.Printf("Configuration: scale=%.2f, interval=%dh, seed=%d (paper scale is 1.0 at 2h).\n", scale, interval, seed)
	fmt.Println("Absolute counts scale with the simulated address space; *shape* (who wins,")
	fmt.Println("ratios, correlations, crossovers) is the reproduction target. Regenerate with")
	fmt.Println("`go run ./cmd/experiments -markdown`; individual reports (with the rendered")
	fmt.Println("timelines) with `go run ./cmd/experiments <ID>`.")
	fmt.Println()
	fmt.Println("Reading guide — the paper's headline findings and where they reproduce:")
	fmt.Println()
	fmt.Println("- **Regional classification works** (T3/T5/F5): Kherson's 13 regional ASes and")
	fmt.Println("  Status's 3-Kherson/1-Kyiv block split are recovered; ceased providers are")
	fmt.Println("  detected from lost BGP presence.")
	fmt.Println("- **Power drives non-frontline outages** (F10 vs F26/A2): strong Pearson r for")
	fmt.Println("  our regional signal, weak for the frontline and for IODA-style attribution.")
	fmt.Println("- **Full-block scans widen coverage** (T1/F15/F17): several-fold more ASes with")
	fmt.Println("  detected outages than the Trinocular baseline; IPS▲ dominates FBS■ events.")
	fmt.Println("- **Full-block scans are stabler** (F27/T4): higher SNR than single-probe")
	fmt.Println("  Bayesian inference; E(b) ≥ 3 keeps more blocks measurable than E(b) ≥ 15.")
	fmt.Println("- **The case studies hold** (F11-F14/H4): cable cut (24 ASes), occupation RTT")
	fmt.Println("  detour (+75 ms), dam flood, the seizure's IPS▲-only dip, and the ten-day")
	fmt.Println("  liberation gap with diurnal recovery.")
	fmt.Println()
	for _, ex := range list {
		rep := ex.Run(env)
		fmt.Printf("## %s — %s\n\n", rep.ID, rep.Title)
		keys := make([]string, 0, len(rep.Metrics))
		for k := range rep.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("| metric | measured | paper |")
		fmt.Println("|---|---|---|")
		for _, k := range keys {
			paper := "—"
			if p, ok := rep.PaperValues[k]; ok {
				paper = fmt.Sprintf("%.4g", p)
			}
			fmt.Printf("| %s | %.4g | %s |\n", k, rep.Metrics[k], paper)
		}
		fmt.Println()
	}
}
