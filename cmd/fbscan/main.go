// Command fbscan is the standalone full-block scanner: probe a set of CIDR
// targets once and print per-block responsiveness, ZMap-style.
//
// Two transports are available without privileges:
//
//	-mode sim   probe the simulated Ukraine scenario (default)
//	-mode udp   probe through a UDP tunnel wire-server started in-process
//	            (real sockets, real timing)
//
// Usage:
//
//	fbscan [-mode sim|udp] [-rate 8000] [-at 2022-05-01T12:00:00Z]
//	       [-seed 1] [-scale 0.05] [cidr ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/sim"
	"countrymon/internal/simnet"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "sim", "transport: sim or udp")
	rate := flag.Int("rate", scanner.DefaultRate, "probe rate (packets/second)")
	atStr := flag.String("at", "2022-05-01T12:00:00Z", "simulated scan time (RFC 3339)")
	seed := flag.Uint64("seed", 1, "scan + scenario seed")
	scale := flag.Float64("scale", 0.05, "scenario scale")
	blocklist := flag.String("blocklist", "", "ZMap-style exclusion file")
	shard := flag.Int("shard", 0, "this vantage's shard index")
	shards := flag.Int("shards", 1, "total shards")
	probes := flag.Int("probes", 1, "probes per address (retransmissions)")
	flag.Parse()

	var exclude []netmodel.Prefix
	if *blocklist != "" {
		f, err := os.Open(*blocklist)
		if err != nil {
			log.Fatal(err)
		}
		exclude, err = scanner.ParseBlocklist(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("excluding %d ranges from %s", len(exclude), *blocklist)
	}

	at, err := time.Parse(time.RFC3339, *atStr)
	if err != nil {
		log.Fatalf("bad -at: %v", err)
	}

	sc := sim.MustBuild(sim.Config{Seed: *seed, Scale: *scale})
	var prefixes []netmodel.Prefix
	if flag.NArg() > 0 {
		for _, arg := range flag.Args() {
			p, err := netmodel.ParsePrefix(arg)
			if err != nil {
				log.Fatalf("bad target %q: %v", arg, err)
			}
			prefixes = append(prefixes, p)
		}
	} else {
		// Default: the Kherson Table-5 address space.
		for _, asn := range sim.KhersonASNs() {
			if as := sc.Space.Lookup(asn); as != nil {
				prefixes = append(prefixes, as.Prefixes...)
			}
		}
	}
	targets, err := scanner.NewTargetSet(prefixes, exclude)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scanning %d /24 blocks (%d addresses) at %v, %d pps, mode=%s",
		targets.NumBlocks(), targets.Len(), at, *rate, *mode)

	var rd *scanner.RoundData
	switch *mode {
	case "sim":
		net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), sc.Responder(), at)
		s := scanner.New(net, scanner.Config{
			Rate: *rate, Seed: *seed, Epoch: 1, Clock: net, Cooldown: 4 * time.Second,
			Shard: *shard, Shards: *shards, ProbesPerAddr: *probes,
		})
		rd, err = s.Run(targets)
	case "udp":
		srv, serr := simnet.NewWireServer("127.0.0.1:0", sc.Responder())
		if serr != nil {
			log.Fatal(serr)
		}
		defer srv.Close()
		tr, derr := simnet.DialUDP(srv.Addr(), netmodel.MustParseAddr("198.51.100.1"))
		if derr != nil {
			log.Fatal(derr)
		}
		defer tr.Close()
		s := scanner.New(tr, scanner.Config{
			Rate: *rate, Seed: *seed, Epoch: 1, Cooldown: 2 * time.Second,
			Shard: *shard, Shards: *shards, ProbesPerAddr: *probes,
		})
		rd, err = s.Run(targets)
	default:
		log.Fatalf("unknown mode %q", *mode)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-20s %6s %9s\n", "block", "resp", "mean RTT")
	for i := range rd.Blocks {
		br := &rd.Blocks[i]
		if br.RespCount == 0 {
			continue
		}
		fmt.Printf("%-20s %6d %9v\n", br.Block, br.RespCount, br.MeanRTT().Round(time.Millisecond))
	}
	st := rd.Stats
	fmt.Printf("\nsent %d, valid %d (%.1f%%), dup %d, invalid %d, non-echo %d, elapsed %v\n",
		st.Sent, st.Valid, 100*float64(st.Valid)/float64(st.Sent), st.Duplicates, st.Invalid, st.NonEcho,
		st.Elapsed.Round(time.Millisecond))
}
