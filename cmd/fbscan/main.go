// Command fbscan is the standalone full-block scanner: probe a set of CIDR
// targets once and print per-block responsiveness, ZMap-style.
//
// Two transports are available without privileges:
//
//	-mode sim   probe the simulated Ukraine scenario (default)
//	-mode udp   probe through a UDP tunnel wire-server started in-process
//	            (real sockets, real timing)
//
// With -rounds N (N > 1, sim mode) fbscan runs a multi-round campaign
// through Monitor.Run, optionally checkpointing to -checkpoint and resuming
// a killed campaign with -resume; Ctrl-C stops the campaign at the next
// round boundary after writing a final checkpoint. -faults injects scripted
// and probabilistic transport faults (see internal/faults) to exercise the
// recovery machinery. -metrics serves the live observability endpoints
// (/metrics Prometheus text or JSON, /events SSE or long-poll) while the
// scan runs.
//
// With -vantages N (campaign mode) the rounds run over a supervised
// multi-vantage fleet: per-vantage circuit breakers, same-round shard
// failover and k-of-n (-quorum) corroboration of suspect block outages.
// -vantage-faults scripts a distinct fault profile per vantage
// (semicolon-separated, in vantage order) so individual vantages can be
// blacked out, stalled or flapped while the rest of the fleet keeps the
// measurement honest.
//
// Usage:
//
//	fbscan [-mode sim|udp] [-rate 8000] [-at 2022-05-01T12:00:00Z]
//	       [-seed 1] [-scale 0.05] [-faults spec] [-rounds N]
//	       [-vantages N] [-quorum k] [-vantage-faults "spec;spec;..."]
//	       [-checkpoint file] [-resume file] [-roundlog file]
//	       [-stream-signals] [-min-coverage 0.8]
//	       [-metrics :9090] [cidr ...]
//
// Exit codes:
//
//	0   success — every round at full coverage, fleet (if any) healthy
//	1   a round (or the scan) ended below -min-coverage, or a hard failure
//	3   -resume named a checkpoint of a different campaign
//	    (countrymon.ResumeMismatchError)
//	4   campaign completed degraded: a vantage was quarantined, a round ran
//	    below -quorum, or the fleet itself went dark for a round
//	130 interrupted by signal
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"countrymon"
	"countrymon/internal/faults"
	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/scanner"
	"countrymon/internal/sim"
	"countrymon/internal/simnet"
)

// serveObs serves live observability — /metrics (Prometheus text or JSON)
// and /events (SSE or long-poll) — on addr for the lifetime of the process.
func serveObs(addr string, reg *obs.Registry, bus *obs.Bus) {
	log.Printf("observability on http://%s/metrics and /events", addr)
	if err := http.ListenAndServe(addr, obs.Handler(reg, bus)); err != nil {
		log.Printf("metrics server: %v", err)
	}
}

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "sim", "transport: sim or udp")
	rate := flag.Int("rate", scanner.DefaultRate, "probe rate (packets/second)")
	atStr := flag.String("at", "2022-05-01T12:00:00Z", "simulated scan time (RFC 3339)")
	seed := flag.Uint64("seed", 1, "scan + scenario seed")
	scale := flag.Float64("scale", 0.05, "scenario scale")
	blocklist := flag.String("blocklist", "", "ZMap-style exclusion file")
	shard := flag.Int("shard", 0, "this vantage's shard index")
	shards := flag.Int("shards", 1, "total shards")
	probes := flag.Int("probes", 1, "probes per address (retransmissions)")
	parallel := flag.Int("parallel", 1, "in-process scan shards run concurrently (COUNTRYMON_WORKERS caps workers)")
	batch := flag.Int("batch", 0, "transport batch size (0 = engine default)")
	pipeline := flag.Bool("pipeline", false, "run sender and receiver as separate goroutines")
	faultSpec := flag.String("faults", "", "fault-injection profile, e.g. \"seed=7,senderr=0.01,blackout=24h+8h\"")
	vantages := flag.Int("vantages", 0, "run the campaign over a supervised fleet of N vantages (campaign mode only)")
	quorum := flag.Int("quorum", 0, "k of the fleet's k-of-n outage corroboration (0 = min(2, vantages))")
	vantageFaults := flag.String("vantage-faults", "", "per-vantage fault profiles, semicolon-separated in vantage order (overrides -faults for the fleet)")
	rounds := flag.Int("rounds", 1, "campaign length in rounds (>1 runs the monitor, sim mode only)")
	interval := flag.Duration("interval", 2*time.Hour, "campaign probing interval")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint file (atomic, written periodically)")
	resume := flag.String("resume", "", "resume a killed campaign from this checkpoint file")
	roundLog := flag.String("roundlog", "", "append-only per-round journal (replayed over the checkpoint on restart)")
	streamSignals := flag.Bool("stream-signals", false, "fold each round into warm signal series instead of rebuilding on every query")
	country := flag.String("country", "", "ISO country code for the campaign's classifier and labels (default: the scenario's)")
	minCov := flag.Float64("min-coverage", 0.8, "round coverage below this fraction is a failure")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /events on this address (e.g. :9090)")
	flag.Parse()

	var (
		reg *obs.Registry
		bus *obs.Bus
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		bus = obs.NewBus(0)
		go serveObs(*metricsAddr, reg, bus)
	}

	var exclude []netmodel.Prefix
	if *blocklist != "" {
		f, err := os.Open(*blocklist)
		if err != nil {
			log.Fatal(err)
		}
		exclude, err = scanner.ParseBlocklist(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("excluding %d ranges from %s", len(exclude), *blocklist)
	}

	at, err := time.Parse(time.RFC3339, *atStr)
	if err != nil {
		log.Fatalf("bad -at: %v", err)
	}
	prof, err := faults.ParseProfile(*faultSpec, at)
	if err != nil {
		log.Fatal(err)
	}
	injecting := *faultSpec != ""

	sc := sim.MustBuild(sim.Config{Seed: *seed, Scale: *scale})
	var prefixes []netmodel.Prefix
	if flag.NArg() > 0 {
		for _, arg := range flag.Args() {
			p, err := netmodel.ParsePrefix(arg)
			if err != nil {
				log.Fatalf("bad target %q: %v", arg, err)
			}
			prefixes = append(prefixes, p)
		}
	} else {
		// Default: the Kherson Table-5 address space.
		for _, asn := range sim.KhersonASNs() {
			if as := sc.Space.Lookup(asn); as != nil {
				prefixes = append(prefixes, as.Prefixes...)
			}
		}
	}

	if *parallel > 1 && *shards > 1 {
		log.Fatal("-parallel (in-process shards) and -shards (multi-vantage sharding) are mutually exclusive")
	}
	if *vantages > 0 && *shards > 1 {
		log.Fatal("-vantages (supervised fleet) and -shards (manual sharding) are mutually exclusive")
	}
	if *vantageFaults != "" && *vantages <= 0 {
		log.Fatal("-vantage-faults needs -vantages")
	}

	if *rounds > 1 {
		if *mode != "sim" {
			log.Fatal("campaign mode (-rounds > 1) requires -mode sim")
		}
		cc := *country
		if cc == "" {
			cc = sc.Country
		}
		runCampaign(sc, prefixes, exclude, at, prof, injecting,
			*rounds, *interval, *rate, *seed, cc, *checkpoint, *resume, *roundLog,
			*streamSignals, *minCov,
			*parallel, *batch, *pipeline, *vantages, *quorum, *vantageFaults, reg, bus)
		return
	}
	if *country != "" {
		log.Fatal("-country needs campaign mode (-rounds > 1)")
	}
	if *checkpoint != "" || *resume != "" || *roundLog != "" {
		log.Fatal("-checkpoint/-resume/-roundlog need campaign mode (-rounds > 1)")
	}
	if *vantages > 0 {
		log.Fatal("-vantages needs campaign mode (-rounds > 1)")
	}

	targets, err := scanner.NewTargetSet(prefixes, exclude)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scanning %d /24 blocks (%d addresses) at %v, %d pps, mode=%s, parallel=%d",
		targets.NumBlocks(), targets.Len(), at, *rate, *mode, *parallel)

	local := netmodel.MustParseAddr("198.51.100.1")
	cfg := scanner.Config{
		Rate: *rate, Seed: *seed, Epoch: 1, Cooldown: 4 * time.Second,
		Shard: *shard, Shards: *shards, ProbesPerAddr: *probes,
		Batch: *batch, Pipelined: *pipeline,
		Metrics: scanner.NewMetrics(reg), Events: bus,
	}
	// wrap layers fault injection over a shard's transport; each shard gets
	// its own RNG stream so concurrent shards never contend on one RNG.
	var (
		fmu      sync.Mutex
		faultTrs []*faults.Transport
	)
	wrap := func(tr scanner.Transport, clock scanner.Clock, shard int) (scanner.Transport, scanner.Clock) {
		if !injecting {
			return tr, clock
		}
		p := prof
		p.Seed = prof.Seed + uint64(shard)*0x9e3779b9
		ftr := faults.NewTransport(tr, clock, p)
		ftr.Observe(faults.NewMetrics(reg))
		fmu.Lock()
		faultTrs = append(faultTrs, ftr)
		fmu.Unlock()
		return ftr, ftr
	}

	var rd *scanner.RoundData
	switch *mode {
	case "sim":
		if *parallel > 1 {
			rd, err = scanner.ScanParallel(context.Background(), targets, *parallel, cfg,
				func(shard, shards int) (scanner.Transport, scanner.Clock, error) {
					net := simnet.New(local, sc.Responder(), at)
					tr, clock := wrap(net, net, shard)
					return tr, clock, nil
				})
		} else {
			net := simnet.New(local, sc.Responder(), at)
			tr, clock := wrap(net, net, 0)
			cfg.Clock = clock
			rd, err = scanner.New(tr, cfg).Run(targets)
		}
	case "udp":
		srv, serr := simnet.NewWireServer("127.0.0.1:0", sc.Responder())
		if serr != nil {
			log.Fatal(serr)
		}
		defer srv.Close()
		cfg.Cooldown = 2 * time.Second
		if *parallel > 1 {
			rd, err = scanner.ScanParallel(context.Background(), targets, *parallel, cfg,
				func(shard, shards int) (scanner.Transport, scanner.Clock, error) {
					tun, derr := simnet.DialUDP(srv.Addr(), local)
					if derr != nil {
						return nil, nil, derr
					}
					tr, clock := wrap(tun, nil, shard)
					return tr, clock, nil
				})
		} else {
			tun, derr := simnet.DialUDP(srv.Addr(), local)
			if derr != nil {
				log.Fatal(derr)
			}
			defer tun.Close()
			tr, _ := wrap(tun, nil, 0)
			rd, err = scanner.New(tr, cfg).Run(targets)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	if c := sumCounters(faultTrs); injecting {
		log.Printf("injected faults: %d send errors, %d drops, %d recv errors, %d truncated, %d silenced reads",
			c.SendErrors, c.Drops, c.RecvErrors, c.Truncated, c.Blackouts)
	}

	fmt.Printf("%-20s %6s %9s\n", "block", "resp", "mean RTT")
	for i := range rd.Blocks {
		br := &rd.Blocks[i]
		if br.RespCount == 0 {
			continue
		}
		fmt.Printf("%-20s %6d %9v\n", br.Block, br.RespCount, br.MeanRTT().Round(time.Millisecond))
	}
	st := rd.Stats
	fmt.Printf("\nsent %d, valid %d (%.1f%%), dup %d, invalid %d, non-echo %d, elapsed %v\n",
		st.Sent, st.Valid, 100*float64(st.Valid)/float64(st.Sent), st.Duplicates, st.Invalid, st.NonEcho,
		st.Elapsed.Round(time.Millisecond))
	if st.SendErrors > 0 || st.Retries > 0 || st.RecvErrors > 0 {
		fmt.Printf("resilience: %d retries, %d probes abandoned, %d receive errors\n",
			st.Retries, st.SendErrors, st.RecvErrors)
	}
	if cov := rd.Coverage(); rd.Partial || cov < *minCov {
		fmt.Fprintf(os.Stderr, "fbscan: round covered %.1f%% of %d targets (threshold %.0f%%)\n",
			100*cov, rd.ShardTargets, 100**minCov)
		if cov < *minCov {
			os.Exit(1)
		}
	}
}

// sumCounters aggregates injected-fault tallies across per-shard transports.
func sumCounters(trs []*faults.Transport) faults.Counters {
	var sum faults.Counters
	for _, t := range trs {
		c := t.Counters()
		sum.SendErrors += c.SendErrors
		sum.Drops += c.Drops
		sum.RecvErrors += c.RecvErrors
		sum.Truncated += c.Truncated
		sum.Blackouts += c.Blackouts
	}
	return sum
}

// vclock is a standalone virtual clock for parallel campaigns, where no
// single shard transport owns the monitor's timeline.
type vclock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *vclock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// runCampaign drives a multi-round scan through Monitor.Run, with optional
// checkpointing, resume, fault injection, in-process shard parallelism and
// live observability. SIGINT/SIGTERM stop the campaign at the next round
// boundary after a final checkpoint.
func runCampaign(sc *sim.Scenario, prefixes, exclude []netmodel.Prefix, at time.Time,
	prof faults.Profile, injecting bool, rounds int, interval time.Duration,
	rate int, seed uint64, country, checkpoint, resume, roundLog string,
	streamSignals bool, minCov float64,
	parallel, batch int, pipeline bool, vantages, quorum int, vantageFaults string,
	reg *obs.Registry, bus *obs.Bus) {

	local := netmodel.MustParseAddr("198.51.100.1")
	opts := countrymon.Options{
		Targets: prefixes, Exclude: exclude,
		Start: at, Rounds: rounds, Interval: interval,
		Rate: rate, Seed: seed, Country: country,
		CheckpointPath: checkpoint, ResumeFrom: resume,
		RoundLogPath: roundLog, StreamSignals: streamSignals,
		MinCoverage: minCov,
		Batch:       batch, Pipelined: pipeline,
		Registry: reg, Bus: bus,
	}
	var (
		fmu      sync.Mutex
		faultTrs []*faults.Transport
	)
	var tr countrymon.Transport
	if vantages > 0 {
		// Supervised fleet: every vantage builds fresh per-round networks
		// anchored at the round's scheduled time; the monitor advances a
		// standalone virtual clock between rounds.
		profs := vantageProfiles(vantages, vantageFaults, prof, injecting, at)
		injecting = injecting || vantageFaults != ""
		opts.Clock = &vclock{now: at}
		opts.ScanShards = parallel
		opts.Quorum = quorum
		for i := 0; i < vantages; i++ {
			vp := profs[i]
			vi := i
			opts.Vantages = append(opts.Vantages, countrymon.VantageSpec{
				Name: fmt.Sprintf("v%d", i),
				Transport: func(round int, rat time.Time) (countrymon.Transport, countrymon.Clock, error) {
					net := simnet.New(local, sc.Responder(), rat)
					if vp == nil {
						return net, net, nil
					}
					p := *vp
					p.Seed += uint64(vi) * 0x9e3779b9
					ftr := faults.NewTransport(net, nil, p)
					ftr.Observe(faults.NewMetrics(reg))
					fmu.Lock()
					faultTrs = append(faultTrs, ftr)
					fmu.Unlock()
					return ftr, ftr, nil
				},
			})
		}
	} else if parallel > 1 {
		// Each round builds fresh per-shard networks anchored at the round's
		// scheduled time; the monitor itself advances a standalone virtual
		// clock between rounds.
		opts.Clock = &vclock{now: at}
		opts.ScanShards = parallel
		opts.ShardTransport = func(round int, rat time.Time, shard, shards int) (countrymon.Transport, countrymon.Clock, error) {
			net := simnet.New(local, sc.Responder(), rat)
			var str countrymon.Transport = net
			var clock countrymon.Clock = net
			if injecting {
				p := prof
				p.Seed = prof.Seed + uint64(shard)*0x9e3779b9
				ftr := faults.NewTransport(net, nil, p)
				ftr.Observe(faults.NewMetrics(reg))
				fmu.Lock()
				faultTrs = append(faultTrs, ftr)
				fmu.Unlock()
				str, clock = ftr, ftr
			}
			return str, clock, nil
		}
	} else {
		net := simnet.New(local, sc.Responder(), at)
		tr = net
		if injecting {
			ftr := faults.NewTransport(net, nil, prof)
			ftr.Observe(faults.NewMetrics(reg))
			faultTrs = append(faultTrs, ftr)
			tr = ftr
		}
		opts.Transport = tr
	}
	mon, err := countrymon.New(opts)
	if err == nil {
		defer mon.Close()
	}
	if err != nil {
		var mm *countrymon.ResumeMismatchError
		if errors.As(err, &mm) {
			log.Printf("fbscan: %v", mm)
			log.Printf("fbscan: campaign wants %s with %d blocks; start a fresh checkpoint or fix the options",
				mm.WantTimeline, mm.WantBlocks)
			os.Exit(3)
		}
		log.Fatal(err)
	}
	if resume != "" {
		log.Printf("resumed from %s at round %d of %d", resume, mon.Round(), rounds)
	}
	fleetNote := ""
	if vantages > 0 {
		fleetNote = fmt.Sprintf(", fleet of %d vantages", vantages)
	}
	log.Printf("campaign: %d /24 blocks, %d rounds every %v, mode=sim%s", mon.Store().NumBlocks(), rounds, interval, fleetNote)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = mon.Run(ctx, countrymon.RunConfig{
		Hooks: countrymon.Hooks{
			OnRound: func(r int, stats countrymon.Stats) {
				note := ""
				switch {
				case mon.Store().Missing(r):
					note = "  [receive path dead: recorded missing]"
				case mon.Store().Coverage(r) < 1:
					note = fmt.Sprintf("  [partial: %.1f%% coverage]", 100*mon.Store().Coverage(r))
				}
				log.Printf("round %3d: sent %d valid %d%s", r, stats.Sent, stats.Valid, note)
			},
			OnCheckpoint: func(round int, path string) {
				log.Printf("checkpoint: %d rounds -> %s", round, path)
			},
		},
	})
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		msg := "no checkpoint configured"
		if checkpoint != "" {
			msg = "checkpoint written to " + checkpoint
		}
		log.Printf("fbscan: interrupted at round %d of %d (%s)", mon.Round(), rounds, msg)
		os.Exit(130)
	default:
		log.Fatalf("campaign: %v", err)
	}

	low := 0
	for r := 0; r < mon.Timeline().NumRounds(); r++ {
		if mon.Store().Missing(r) || mon.Store().Coverage(r) < minCov {
			low++
		}
	}
	if injecting {
		c := sumCounters(faultTrs)
		log.Printf("injected faults: %d send errors, %d drops, %d recv errors, %d truncated, %d silenced reads",
			c.SendErrors, c.Drops, c.RecvErrors, c.Truncated, c.Blackouts)
	}
	if low > 0 {
		fmt.Fprintf(os.Stderr, "fbscan: %d of %d rounds ended below the %.0f%% coverage threshold (gated from signals)\n",
			low, rounds, 100*minCov)
		os.Exit(1)
	}
	if rep, ok := mon.FleetReport(); ok {
		if rep.Suspects > 0 {
			log.Printf("fleet fusion: %d suspect blocks (%d alive, %d down, %d held), %d steals",
				rep.Suspects, rep.FusedAlive, rep.FusedDown, rep.FusedHeld, rep.Steals)
		}
		if rep.Degraded() {
			fmt.Fprintf(os.Stderr,
				"fbscan: campaign completed degraded: quarantined=%v degraded_rounds=%d self_outages=%d\n",
				rep.Quarantined, rep.DegradedRounds, rep.SelfOutages)
			os.Exit(4)
		}
	}
	log.Printf("campaign complete: all %d rounds at full coverage", rounds)
}

// vantageProfiles resolves the per-vantage fault profiles: -vantage-faults
// assigns profiles positionally (empty segments leave that vantage clean);
// otherwise the ambient -faults profile, if any, applies to every vantage.
func vantageProfiles(vantages int, spec string, ambient faults.Profile, injecting bool, base time.Time) []*faults.Profile {
	profs := make([]*faults.Profile, vantages)
	if spec == "" {
		if injecting {
			for i := range profs {
				p := ambient
				profs[i] = &p
			}
		}
		return profs
	}
	segs := strings.Split(spec, ";")
	if len(segs) > vantages {
		log.Fatalf("-vantage-faults has %d profiles for %d vantages", len(segs), vantages)
	}
	for i, seg := range segs {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		p, err := faults.ParseProfile(seg, base)
		if err != nil {
			log.Fatalf("-vantage-faults[%d]: %v", i, err)
		}
		profs[i] = &p
	}
	return profs
}
