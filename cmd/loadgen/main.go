// Command loadgen drives the serving read path (internal/serve) with
// thousands of concurrent simulated clients and reports latency
// percentiles. It answers the capacity question the serving rework was
// built for: can one process hold ~10k mixed poll/SSE/range-query clients
// with single-digit-millisecond tail latency?
//
// The generator is fully in-process: requests go straight into the
// server's ServeHTTP (no sockets, no TLS), so the numbers isolate the
// serving code — cache lookups, render path, SSE fan-out — from kernel
// networking. A background campaign thread keeps the store live while the
// clients hammer it: rounds advance (bumping the store epoch and
// invalidating mutable cache entries) and events are published on the bus
// (feeding every SSE subscriber), exactly the write load a monitor under
// active measurement produces.
//
// Client mix (weights via -mix poll:range:sse, default 6:3:1):
//
//	poll   repeat GET /v1/series?entity=E&since=W — the live-edge path a
//	       dashboard polls; cache-hit except right after a round lands
//	range  GET /v1/series with random historical from/until windows plus
//	       pagination — mostly immutable cache hits across clients
//	sse    GET /v1/events held open for the whole run; the recorded
//	       latency is time-to-first-byte
//
// Output is one `go test -bench`-shaped line per run plus a summary, so
// `loadgen | benchjson` folds the numbers into the benchmark baseline:
//
//	BenchmarkLoadgen/clients=10000 <reqs> <ns> ns/op <p50> p50_ms <p95> p95_ms <p99> p99_ms <rps> req_per_sec
//
// With -max-p99 M the run fails (exit 1) when the non-SSE p99 exceeds M
// milliseconds — the CI smoke gate.
//
// Usage:
//
//	loadgen [-clients 10000] [-duration 10s] [-entities 200] [-rounds 360]
//	        [-mix 6:3:1] [-advance-every 250ms] [-max-p99 0] [-seed 1]
//	        [-countries UA,RO,PL]
//
// With -countries the stack is a multi-country serve.Router: the entity
// budget splits across per-country stores and every request goes through the
// country-scoped /v1/countries/{cc}/... routes, measuring the dispatch
// overhead a coordinated campaign's API adds.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"countrymon/internal/obs"
	"countrymon/internal/serve"
	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

func main() {
	clients := flag.Int("clients", 10000, "concurrent simulated clients")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	entities := flag.Int("entities", 200, "entities registered in the store")
	rounds := flag.Int("rounds", 360, "timeline rounds (sealed up to rounds/2 at start)")
	mix := flag.String("mix", "6:3:1", "poll:range:sse client weights")
	advanceEvery := flag.Duration("advance-every", 250*time.Millisecond, "background round-advance interval (0 = frozen store)")
	maxP99 := flag.Float64("max-p99", 0, "fail when non-SSE p99 exceeds this many milliseconds (0 = report only)")
	seed := flag.Int64("seed", 1, "client behaviour seed")
	think := flag.Duration("think", 10*time.Millisecond, "pause between a query client's requests (0 = hammer)")
	countries := flag.String("countries", "", "spread load across these countries' /v1/countries/{cc}/ routes (e.g. UA,RO,PL; empty = single unprefixed store)")
	flag.Parse()

	wPoll, wRange, wSSE, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	handler, stores, targets, prefixes, bus := buildStack(parseCountries(*countries), *entities, *rounds)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	// Background campaign: advance every store's live edge and publish bus
	// events (one shared bus feeds every country's SSE subscribers).
	var advWG sync.WaitGroup
	if *advanceEvery > 0 {
		advWG.Add(1)
		go func() {
			defer advWG.Done()
			tick := time.NewTicker(*advanceEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					sealed := false
					for _, store := range stores {
						if wm := store.Watermark(); wm < *rounds {
							_ = store.Advance(wm)
							bus.Publish("round_sealed", map[string]any{"round": wm})
							sealed = true
						}
					}
					if !sealed {
						bus.Publish("heartbeat", nil)
					}
				}
			}
		}()
	}

	results := make([]clientResult, *clients)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		kind := pickKind(i, wPoll, wRange, wSSE)
		wg.Add(1)
		go func(i int, kind string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			switch kind {
			case "sse":
				results[i] = runSSEClient(ctx, handler, prefixes[i%len(prefixes)])
			case "range":
				results[i] = runQueryClient(ctx, handler, rng, targets, *rounds, true, *think)
			default:
				results[i] = runQueryClient(ctx, handler, rng, targets, *rounds, false, *think)
			}
			results[i].kind = kind
		}(i, kind)
	}
	start := time.Now()
	wg.Wait()
	cancel()
	advWG.Wait()
	elapsed := time.Since(start)

	report(results, elapsed, *clients, *maxP99)
}

// target is one queryable entity plus the route prefix it is mounted under
// ("" for the legacy unprefixed routes, "/v1/countries/CC" otherwise).
type target struct{ prefix, key string }

// parseCountries splits the -countries list; nil means the single-store
// legacy layout.
func parseCountries(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.ToUpper(strings.TrimSpace(c)); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// buildStack assembles the serving stack under load: per country (or once,
// with no countries) a store over a 12h-round timeline with deterministic
// per-entity signal patterns, half sealed (immutable history) and half left
// for the live advancer. With countries the stores mount on a serve.Router
// and the entity budget splits across them, so the clients exercise the
// country-scoped routes exactly as a multi-country dashboard would.
func buildStack(codes []string, entities, rounds int) (http.Handler, []*serve.Store, []target, []string, *obs.Bus) {
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	bus := obs.NewBus(1024)
	reg := obs.NewRegistry()

	build := func(n, salt0 int) (*serve.Server, *serve.Store) {
		tl := timeline.New(start, start.Add(time.Duration(rounds-1)*12*time.Hour), 12*time.Hour)
		store := serve.NewStore(tl)
		for i := 0; i < n; i++ {
			code := "as" + strconv.Itoa(64512+salt0+i)
			_, err := store.Register("asn", code, synthSource{salt: salt0 + i}, serve.DetectWith(signals.ASConfig()))
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: register %s: %v\n", code, err)
				os.Exit(2)
			}
		}
		if err := store.AdvanceTo(rounds / 2); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: seal: %v\n", err)
			os.Exit(2)
		}
		srv := serve.NewServer(store)
		srv.Observe(reg, bus)
		return srv, store
	}

	if len(codes) == 0 {
		srv, store := build(entities, 0)
		var targets []target
		for _, e := range store.Entities() {
			targets = append(targets, target{prefix: "/v1", key: e.Key})
		}
		return srv, []*serve.Store{store}, targets, []string{"/v1"}, bus
	}

	router := serve.NewRouter()
	var (
		stores   []*serve.Store
		targets  []target
		prefixes []string
		salt     int
	)
	for i, code := range codes {
		n := entities / len(codes)
		if i < entities%len(codes) {
			n++
		}
		if n == 0 {
			n = 1
		}
		srv, store := build(n, salt)
		salt += n
		if err := router.Add(code, code, srv); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: mount %s: %v\n", code, err)
			os.Exit(2)
		}
		prefix := "/v1/countries/" + code
		prefixes = append(prefixes, prefix)
		stores = append(stores, store)
		for _, e := range store.Entities() {
			targets = append(targets, target{prefix: prefix, key: e.Key})
		}
	}
	return router, stores, targets, prefixes, bus
}

// synthSource is a deterministic signal generator: stable values per
// (entity, round) so repeated renders are byte-identical, with an outage-ish
// dip so detection has something to chew on.
type synthSource struct{ salt int }

func (s synthSource) Sample(r int) (bgp, fbs, ips float32, missing bool) {
	if (r+s.salt)%53 == 7 {
		return 0, 0, 0, true
	}
	base := float32(20 + (s.salt % 30))
	dip := float32(1)
	if d := (r + s.salt*3) % 97; d < 5 {
		dip = 0.3
	}
	return base * dip, (base - 4) * dip, base * 40 * dip, false
}

func (s synthSource) IPSValidMonth(month int) bool { return (month+s.salt)%5 != 4 }

type clientResult struct {
	kind      string
	latencies []time.Duration
	requests  int
	errors    int
	// stalled marks an SSE client that saw no event before shutdown —
	// expected for late joiners when the run ends, so reported rather
	// than fatal.
	stalled bool
}

// runQueryClient loops poll- or range-shaped GETs until ctx expires, each
// against a random target's mount point (legacy or country-prefixed).
func runQueryClient(ctx context.Context, h http.Handler, rng *rand.Rand, targets []target, rounds int, ranged bool, think time.Duration) clientResult {
	var res clientResult
	w := &nullWriter{h: make(http.Header, 4)}
	for ctx.Err() == nil {
		tg := targets[rng.Intn(len(targets))]
		var url string
		if ranged {
			lo := rng.Intn(rounds / 2)
			span := 1 + rng.Intn(rounds/4)
			url = tg.prefix + "/series?entity=" + tg.key +
				"&limit=" + strconv.Itoa(64+rng.Intn(192)) +
				"&offset=" + strconv.Itoa(rng.Intn(span)) +
				"&since=" + strconv.Itoa(lo)
		} else if rng.Intn(8) == 0 {
			url = tg.prefix + "/outages?entity=" + tg.key
		} else {
			url = tg.prefix + "/series?entity=" + tg.key + "&since=" + strconv.Itoa(rounds/2-1)
		}
		req := httptest.NewRequest("GET", url, nil)
		w.reset()
		t0 := time.Now()
		h.ServeHTTP(w, req)
		res.latencies = append(res.latencies, time.Since(t0))
		res.requests++
		if w.status >= 400 {
			res.errors++
		}
		if think > 0 {
			time.Sleep(think)
		}
	}
	return res
}

// runSSEClient opens one /v1/events stream for the whole run and records
// time-to-first-byte. The stream is served on the client's goroutine (the
// handler blocks until ctx cancels), so each SSE client costs exactly what
// a real connection costs the server: one goroutine plus one subscriber
// buffer.
func runSSEClient(ctx context.Context, h http.Handler, prefix string) clientResult {
	var res clientResult
	w := newSSEWriter()
	req := httptest.NewRequest("GET", prefix+"/events", nil).WithContext(ctx)
	t0 := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, req)
	}()
	select {
	case <-w.first:
		res.latencies = append(res.latencies, time.Since(t0))
		res.requests = 1
	case <-ctx.Done():
		res.stalled = true
	}
	<-done
	return res
}

// nullWriter is a reusable allocation-light ResponseWriter for the query
// clients: headers land in a cleared map, bodies are counted and dropped.
type nullWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nullWriter) Header() http.Header { return w.h }
func (w *nullWriter) WriteHeader(s int)   { w.status = s }
func (w *nullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = 200
	}
	w.n += len(p)
	return len(p), nil
}
func (w *nullWriter) reset() {
	clear(w.h)
	w.status, w.n = 0, 0
}

// sseWriter additionally implements http.Flusher (the SSE handler requires
// it) and signals the first body byte for TTFB measurement.
type sseWriter struct {
	nullWriter
	first     chan struct{}
	firstOnce sync.Once
}

func newSSEWriter() *sseWriter {
	return &sseWriter{nullWriter: nullWriter{h: make(http.Header, 4)}, first: make(chan struct{})}
}

func (w *sseWriter) Write(p []byte) (int, error) {
	w.firstOnce.Do(func() { close(w.first) })
	return w.nullWriter.Write(p)
}

func (w *sseWriter) Flush() {}

func parseMix(s string) (poll, rng, sse int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("mix must be poll:range:sse, got %q", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return 0, 0, 0, fmt.Errorf("bad mix weight %q", p)
		}
		vals[i] = v
	}
	if vals[0]+vals[1]+vals[2] == 0 {
		return 0, 0, 0, fmt.Errorf("mix weights sum to zero")
	}
	return vals[0], vals[1], vals[2], nil
}

// pickKind deals client i its role, interleaving kinds evenly through the
// client index space so every prefix of clients keeps the requested mix.
func pickKind(i, wPoll, wRange, wSSE int) string {
	total := wPoll + wRange + wSSE
	switch m := i % total; {
	case m < wPoll:
		return "poll"
	case m < wPoll+wRange:
		return "range"
	default:
		return "sse"
	}
}

func report(results []clientResult, elapsed time.Duration, clients int, maxP99 float64) {
	var query, sse []time.Duration
	reqs, errs, sseClients, stalled := 0, 0, 0, 0
	for _, r := range results {
		reqs += r.requests
		errs += r.errors
		if r.stalled {
			stalled++
		}
		if r.kind == "sse" {
			sseClients++
			sse = append(sse, r.latencies...)
		} else {
			query = append(query, r.latencies...)
		}
	}
	p50, p95, p99 := percentiles(query)
	sp50, _, sp99 := percentiles(sse)
	rps := float64(reqs) / elapsed.Seconds()
	nsPerOp := 0.0
	if reqs > 0 {
		nsPerOp = float64(elapsed.Nanoseconds()) / float64(reqs)
	}

	fmt.Printf("BenchmarkLoadgen/clients=%d \t%d\t%.0f ns/op\t%.3f p50_ms\t%.3f p95_ms\t%.3f p99_ms\t%.0f req_per_sec\n",
		clients, reqs, nsPerOp, ms(p50), ms(p95), ms(p99), rps)
	fmt.Fprintf(os.Stderr, "loadgen: %d clients (%d sse, %d stalled), %d requests in %v (%.0f req/s), %d errors\n",
		clients, sseClients, stalled, reqs, elapsed.Round(time.Millisecond), rps, errs)
	fmt.Fprintf(os.Stderr, "loadgen: query latency p50=%.3fms p95=%.3fms p99=%.3fms; sse ttfb p50=%.3fms p99=%.3fms\n",
		ms(p50), ms(p95), ms(p99), ms(sp50), ms(sp99))

	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL — %d request errors\n", errs)
		os.Exit(1)
	}
	if maxP99 > 0 && ms(p99) > maxP99 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL — p99 %.3fms exceeds bound %.3fms\n", ms(p99), maxP99)
		os.Exit(1)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func percentiles(lat []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return at(0.50), at(0.95), at(0.99)
}
