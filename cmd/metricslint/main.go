// Command metricslint keeps the README's metric catalogue honest: every
// metric registered in the tree must be documented, and every documented
// metric must still exist in code. It is part of `make ci`.
//
// Usage:
//
//	metricslint [-root .] [-readme README.md]
//
// Registration sites are found syntactically — calls of the form
// .Counter("name", .Gauge("name", .Histogram("name", .CounterVec("name" or
// .GaugeVec("name"
// in non-test Go files (the internal/obs framework itself is skipped) — and
// compared against the backticked first column of the README's catalogue
// table. Exit status 1 on any drift.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var registerRE = regexp.MustCompile(`\.(Counter|Gauge|Histogram|CounterVec|GaugeVec)\(\s*"([a-z][a-z0-9_]*)"`)

// tableRowRE matches the first backticked cell of a markdown table row.
var tableRowRE = regexp.MustCompile("^\\|\\s*`([a-z][a-z0-9_]*)`\\s*\\|")

func main() {
	root := flag.String("root", ".", "module root to scan")
	readme := flag.String("readme", "README.md", "catalogue file, relative to -root")
	flag.Parse()

	code, err := codeMetrics(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}
	doc, err := docMetrics(filepath.Join(*root, *readme))
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}

	bad := false
	for _, name := range sortedKeys(code) {
		if _, ok := doc[name]; !ok {
			fmt.Printf("metricslint: %s registered at %s but missing from %s\n",
				name, code[name], *readme)
			bad = true
		}
	}
	for _, name := range sortedKeys(doc) {
		if _, ok := code[name]; !ok {
			fmt.Printf("metricslint: %s documented in %s but registered nowhere\n",
				name, *readme)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("metricslint: %d metrics, code and %s agree\n", len(code), *readme)
}

// codeMetrics maps metric name -> first registration site ("file:line").
func codeMetrics(root string) (map[string]string, error) {
	out := make(map[string]string)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			// The obs framework defines the instrument types; its doc
			// examples are not registrations.
			if rel, _ := filepath.Rel(root, path); rel == filepath.Join("internal", "obs") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if rel, _ := filepath.Rel(root, path); strings.HasPrefix(rel, filepath.Join("cmd", "metricslint")) {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			line := strings.TrimSpace(sc.Text())
			if strings.HasPrefix(line, "//") {
				continue
			}
			for _, m := range registerRE.FindAllStringSubmatch(line, -1) {
				name := m[2]
				if _, seen := out[name]; !seen {
					rel, _ := filepath.Rel(root, path)
					out[name] = fmt.Sprintf("%s:%d", rel, n)
				}
			}
		}
		return sc.Err()
	})
	return out, err
}

// docMetrics reads the backticked metric names out of the README's
// catalogue table rows.
func docMetrics(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if m := tableRowRE.FindStringSubmatch(sc.Text()); m != nil {
			out[m[1]] = true
		}
	}
	return out, sc.Err()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
