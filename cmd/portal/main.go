// Command portal serves the campaign's public web presence: the measurement
// information page, the self-service opt-out endpoint, and token-gated
// access to block-level availability data and anonymized responsiveness
// (Appendix A's ethics posture).
//
// Usage:
//
//	portal [-listen 127.0.0.1:8080] [-data data.cmds] [-token t1 -token t2]
//	       [-scale 0.05]
//
// Without -data, a fresh simulated campaign provides the dataset.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"countrymon/internal/dataset"
	"countrymon/internal/obs"
	"countrymon/internal/portal"
	"countrymon/internal/sim"
)

type tokenList []string

func (t *tokenList) String() string     { return strings.Join(*t, ",") }
func (t *tokenList) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	data := flag.String("data", "", "dataset file (default: generate a simulated campaign)")
	scale := flag.Float64("scale", 0.05, "scenario scale when generating")
	var tokens tokenList
	flag.Var(&tokens, "token", "approved research-access token (repeatable)")
	flag.Parse()

	var store *dataset.Store
	if *data != "" {
		var err error
		store, err = dataset.Load(*data)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		log.Printf("serving %s: %d blocks × %d rounds", *data, store.NumBlocks(), store.Timeline().NumRounds())
	} else {
		log.Printf("generating simulated campaign (scale %.2f)...", *scale)
		sc := sim.MustBuild(sim.Config{Seed: 1, Scale: *scale})
		store = sc.GenerateStore(nil)
	}

	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		log.Fatal(err)
	}
	if len(tokens) == 0 {
		t := make([]byte, 12)
		if _, err := rand.Read(t); err != nil {
			log.Fatal(err)
		}
		tokens = append(tokens, hex.EncodeToString(t))
		log.Printf("generated research-access token: %s", tokens[0])
	}

	p := portal.New(store, key, tokens...)
	p.Observe(obs.NewRegistry(), obs.NewBus(0))
	log.Printf("portal listening on http://%s/", *listen)
	fmt.Println("endpoints: /  /opt-out  /data/blocks?token=&month=  /data/responsiveness?token=&block=&month=")
	fmt.Println("observability: /metrics (Prometheus text, ?format=json)  /events (SSE, ?format=json&since=N&wait=30s)")
	log.Fatal(http.ListenAndServe(*listen, p))
}
