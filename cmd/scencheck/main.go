// Command scencheck runs the labeled scenario library through the full
// detection stack and compares the resulting scorecards against the
// committed goldens — the regression tripwire behind `make scenario-smoke`.
//
//	scencheck                  check every library scenario against testdata/
//	scencheck -list            list library scenarios
//	scencheck -f day66.json    score one scenario file (no golden comparison)
//	scencheck -write           regenerate the goldens (use `make scorecards`)
//
// Exit status: 0 all scorecards match, 1 a scorecard diverged from its
// golden, 2 an execution error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"countrymon/internal/scenario"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list library scenarios and exit")
		write  = flag.Bool("write", false, "rewrite the golden scorecards")
		golden = flag.String("golden", "internal/scenario/testdata", "golden scorecard directory")
		file   = flag.String("f", "", "score a single scenario file instead of the library")
	)
	flag.Parse()

	if *list {
		for _, name := range scenario.Names() {
			spec, err := scenario.Load(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-20s %3dd %4d rounds  %s\n", name, spec.Days, spec.Rounds(), spec.Description)
		}
		return
	}

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		spec, err := scenario.Parse(data)
		if err != nil {
			fatal(err)
		}
		card, err := run(spec)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(card.Encode())
		return
	}

	mismatched := false
	for _, name := range scenario.Names() {
		spec, err := scenario.Load(name)
		if err != nil {
			fatal(err)
		}
		card, err := run(spec)
		if err != nil {
			fatal(err)
		}
		report(card)
		got := card.Encode()
		path := filepath.Join(*golden, name+".golden.json")
		if *write {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			fatal(fmt.Errorf("missing golden (run `make scorecards`): %w", err))
		}
		if !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr, "FAIL %s: scorecard diverged from %s (run `make scorecards` if intended)\n", name, path)
			mismatched = true
			continue
		}
		fmt.Printf("ok   %s\n", name)
	}
	if mismatched {
		os.Exit(1)
	}
}

func run(spec *scenario.Spec) (*scenario.Scorecard, error) {
	compiled, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return compiled.RunScorecard()
}

// report prints the human-readable scorecard table: the signal pipeline and
// the Trinocular baseline side by side per entity.
func report(card *scenario.Scorecard) {
	fmt.Printf("%s: %d rounds, %d blocks, %d missing, %d degraded, trinocular tracks %d\n",
		card.Scenario, card.Rounds, card.Blocks, card.MissingRounds, card.DegradedRounds,
		card.TrinocularTracked)
	fmt.Printf("  %-22s %28s   %28s\n", "", "signals P/R/latency", "trinocular P/R/latency")
	for i, s := range card.Signals {
		t := card.Trinocular[i]
		fmt.Printf("  %-22s %10.3f /%6.3f /%6.1f   %10.3f /%6.3f /%6.1f\n",
			s.Entity, s.Precision, s.Recall, s.MeanLatencyRounds,
			t.Precision, t.Recall, t.MeanLatencyRounds)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scencheck:", err)
	os.Exit(2)
}
