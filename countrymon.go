// Package countrymon is a country-scale Internet outage monitor built on
// active full-block ICMP scans, reproducing the measurement system of
// "Tracking Internet Disruptions in Ukraine: Insights from Three Years of
// Active Full Block Scans" (IMC 2025).
//
// The Monitor orchestrates the full pipeline: a ZMap-style scanner probes
// every address of the target /24 blocks over a pluggable transport (the
// simulated war scenario, a UDP tunnel, or a raw socket), observations
// accumulate in a round-indexed store, BGP snapshots mark routedness, and
// the three availability signals — BGP★ routed blocks, FBS■ active full
// blocks, IPS▲ responsive addresses — are compared against a seven-day
// moving average to detect outages per AS or per region.
//
//	mon, _ := countrymon.New(countrymon.Options{
//	    Transport: transport,          // e.g. simnet.Network or UDP tunnel
//	    Clock:     clock,
//	    Targets:   prefixes,           // e.g. from a RIPE delegation file
//	    Start:     start, End: end, Interval: 2 * time.Hour,
//	})
//	for mon.NextRound() { mon.ScanRound() }
//	det := mon.DetectAS(25482)
//
// # Running a campaign
//
// Run drives the whole campaign under a context, with per-round hooks:
//
//	err := mon.Run(ctx, countrymon.RunConfig{
//	    Hooks: countrymon.Hooks{
//	        OnRound:      func(round int, st countrymon.Stats) { ... },
//	        OnCheckpoint: func(round int, path string) { ... },
//	        OnEvent:      func(ev obs.Event) { ... },
//	    },
//	})
//
// Cancelling ctx stops the campaign at the next round boundary; when a
// CheckpointPath is configured, a final checkpoint is written before Run
// returns, so the campaign resumes exactly where it stopped. The classic
// zero-argument loop above keeps working: ScanRound is a thin wrapper over
// ScanRoundContext(context.Background()).
//
// # Observability
//
// Options.Registry and Options.Bus attach the monitor (and the scanner
// under it) to an internal/obs metrics registry and event bus. Every round,
// checkpoint, retry and detection then shows up live on /metrics and
// /events (see internal/obs and the README's Observability section); with
// both nil the instrumentation reduces to nil checks.
//
// # Errors
//
// Sentinels and types replace string matching: ErrCampaignComplete (the
// timeline is exhausted), ErrNoCheckpoint (Checkpoint without a configured
// path), and ResumeMismatchError (ResumeFrom names a checkpoint of a
// different campaign, carrying both conflicting timelines/blocks). Use
// errors.Is / errors.As.
package countrymon

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"countrymon/internal/bgp"
	"countrymon/internal/dataset"
	"countrymon/internal/fleet"
	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/regional"
	"countrymon/internal/scanner"
	"countrymon/internal/serve"
	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

// Re-exported building blocks, so downstream code works with one import.
type (
	// Addr is an IPv4 address.
	Addr = netmodel.Addr
	// Prefix is a CIDR prefix.
	Prefix = netmodel.Prefix
	// BlockID identifies a /24 block.
	BlockID = netmodel.BlockID
	// ASN is an autonomous-system number.
	ASN = netmodel.ASN
	// Region is one of Ukraine's 26 analysed regions.
	Region = netmodel.Region
	// Outage is a detected disruption event.
	Outage = signals.Outage
	// Detection is a per-round and per-event outage verdict.
	Detection = signals.Detection
	// Transport carries raw IPv4 datagrams.
	Transport = scanner.Transport
	// Clock abstracts time for virtual-time scanning.
	Clock = scanner.Clock
	// Stats summarizes one scan round.
	Stats = scanner.Stats
	// VantageSpec describes one vantage of a supervised fleet (see
	// Options.Vantages and internal/fleet).
	VantageSpec = fleet.Spec
	// FleetReport aggregates a fleet campaign's resilience outcome:
	// quarantined vantages, degraded rounds, steals and fusion tallies.
	FleetReport = fleet.CampaignReport
)

// Signal kind bits of a Detection.
const (
	SignalBGP = signals.SignalBGP
	SignalFBS = signals.SignalFBS
	SignalIPS = signals.SignalIPS
)

// ParsePrefix parses "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) { return netmodel.ParsePrefix(s) }

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) { return netmodel.ParseAddr(s) }

// Options configures a Monitor.
type Options struct {
	// Transport carries probes; Clock drives pacing (defaults to the wall
	// clock). When Transport implements Clock (the simulated network
	// does), it is used as the clock automatically.
	Transport Transport
	Clock     Clock

	// Targets are the probed prefixes (de-aggregated to /24 blocks);
	// Exclude removes ranges, ZMap-blocklist style.
	Targets []Prefix
	Exclude []Prefix

	// Start, End and Interval define the measurement timeline. End may be
	// zero for open-ended campaigns sized by Rounds.
	Start    time.Time
	End      time.Time
	Interval time.Duration
	Rounds   int

	// Rate is the probing rate in packets/second (default 8000, the
	// campaign's ethical budget); Seed makes probe order and validation
	// deterministic.
	Rate int
	Seed uint64

	// ScanShards splits every scan round across this many in-process shards
	// running concurrently (fanned over the par worker pool, capped by
	// COUNTRYMON_WORKERS) and merges the per-shard results deterministically.
	// Requires ShardTransport; values ≤ 1 scan serially over Transport.
	ScanShards int
	// ShardTransport builds the transport (and clock) one shard of round
	// `round` (scheduled at `at`) scans over. Each shard needs its own
	// transport so per-shard state never races; transports implementing
	// io.Closer are closed when their shard finishes. When set alongside
	// ScanShards > 1, Transport may be nil.
	ShardTransport func(round int, at time.Time, shard, shards int) (Transport, Clock, error)
	// Pipelined and Batch tune the scan engine: Pipelined splits sending and
	// receiving onto separate goroutines, Batch sets the transport batch
	// size (0 = scanner default). Both pass through to scanner.Config.
	Pipelined bool
	Batch     int

	// Vantages runs every round over a supervised multi-vantage fleet
	// (internal/fleet): each vantage scans its share of the round over its
	// own transports, circuit breakers quarantine flapping vantages, failed
	// shards fail over to healthy vantages within the round, and suspect
	// block transitions need k-of-n corroboration before they count as
	// down. When set, Transport may be nil and is ignored, as is
	// ShardTransport (the fleet manages its own sharding; ScanShards > 1
	// sets the fleet's shard count). A round on which no vantage produced
	// usable data is recorded missing — a self-outage, not a target outage.
	Vantages []VantageSpec
	// Quorum is k of the fleet's k-of-n corroboration: the coverage-weighted
	// dark votes needed before a suspect block transitions to down (default
	// min(2, len(Vantages))). Only meaningful with Vantages.
	Quorum int

	// Fleet attaches the monitor to an already-joined campaign of a shared
	// fleet supervisor (fleet.NewShared + Join): multi-country coordinators
	// use this so several monitors draw on one vantage pool with one global
	// rate budget. The campaign must have been joined with this monitor's
	// target set. Mutually exclusive with Vantages and ShardTransport; when
	// set, Transport may be nil and is ignored.
	Fleet *fleet.Campaign

	// Country is the ISO code of the monitored country — the home country
	// regional classification counts shares against. Empty means Ukraine
	// (geodb.CountryUA), the paper's campaign.
	Country string

	// Origins maps each /24 block's origin AS. When nil, AS-level queries
	// need ApplyBGPSnapshot to have been called (origins are learned from
	// routing).
	Origins map[BlockID]ASN

	// CheckpointPath enables durability: the store is written there (via an
	// atomic temp-file rename) every CheckpointEvery completed rounds and at
	// campaign end, so a killed campaign loses at most CheckpointEvery
	// rounds of work.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in rounds (default 16 when
	// CheckpointPath is set).
	CheckpointEvery int
	// ResumeFrom restarts a killed campaign from a checkpoint file: the
	// store is loaded, validated against the options, and scanning resumes
	// at the first round not yet handled.
	ResumeFrom string

	// MinCoverage is the probed-target fraction below which a salvaged
	// partial round is treated like a vantage outage in signal derivation.
	// Zero means signals.DefaultMinCoverage; negative disables the gate.
	MinCoverage float64

	// StreamSignals keeps derived signal series warm across the campaign:
	// instead of rebuilding every queried series from scratch after each
	// round, the monitor folds the new round into the already-built series
	// at O(blocks) per round (signals.NewStreamingBuilder). Per-query
	// results are byte-identical to the batch path.
	StreamSignals bool
	// RoundLogPath enables the append-only per-round journal: each handled
	// round is appended (one durable O(blocks) write) as it lands, and on
	// startup any rounds in an existing journal that the checkpoint missed
	// are replayed into the store before scanning resumes. Complements —
	// does not replace — CheckpointPath snapshots.
	RoundLogPath string

	// Registry, when non-nil, receives the monitor's, scanner's and signal
	// pipeline's live metrics (round outcomes, durations, coverage,
	// checkpoint latency, probe/reply counters — see the README's metric
	// catalogue). It may be shared with other subsystems; registration is
	// idempotent.
	Registry *obs.Registry
	// Bus, when non-nil, receives the structured campaign event stream
	// (round started/scanned/salvaged/missing, checkpoint written, retry
	// taken, shard merged, detection fired) for /events streaming.
	Bus *obs.Bus
}

// Monitor is the orchestrated measurement pipeline.
type Monitor struct {
	opts    Options
	tl      *timeline.Timeline
	targets *scanner.TargetSet
	store   *dataset.Store
	origins map[BlockID]ASN
	round   int

	// sinceCkpt counts rounds handled since the last checkpoint write.
	sinceCkpt int

	// camp is the fleet campaign the monitor scans through (nil outside
	// fleet mode): the sole campaign of a supervisor this monitor owns
	// (Options.Vantages), or a joined handle on a shared supervisor
	// (Options.Fleet). lastDataRound is the most recent round with ingested
	// scan data — the fleet's previous belief for suspect detection — or -1.
	camp          *fleet.Campaign
	lastDataRound int

	// Observability: bus and hooks receive events, metrics/scanM/sigM are
	// the per-subsystem instruments (never nil; inert without a Registry),
	// campaign accumulates Stats across scanned rounds.
	bus      *obs.Bus
	hooks    Hooks // active only during Run
	metrics  *monMetrics
	scanM    *scanner.Metrics
	sigM     *signals.Metrics
	campaign Stats

	sigOnce  bool
	sigBuild *signals.Builder
	space    *netmodel.Space

	// serveStore, when attached, is the serving read path's timeline store:
	// every handled round is sealed into it as soon as it folds.
	serveStore *serve.Store

	// roundLog is the append-only per-round journal (nil without
	// Options.RoundLogPath).
	roundLog *dataset.RoundLog

	classifier     *regional.Classifier
	classification *regional.Result
}

// New validates options and builds the monitor.
func New(opts Options) (*Monitor, error) {
	parallel := opts.ScanShards > 1 && opts.ShardTransport != nil
	fleetMode := len(opts.Vantages) > 0 || opts.Fleet != nil
	if opts.Transport == nil && !parallel && !fleetMode {
		return nil, errors.New("countrymon: Transport is required (or ScanShards > 1 with ShardTransport, or Vantages, or Fleet)")
	}
	if fleetMode && opts.ShardTransport != nil {
		return nil, errors.New("countrymon: fleet mode and ShardTransport are mutually exclusive (the fleet shards its own scans)")
	}
	if len(opts.Vantages) > 0 && opts.Fleet != nil {
		return nil, errors.New("countrymon: Vantages and Fleet are mutually exclusive (Fleet is already a joined campaign)")
	}
	if opts.Interval <= 0 {
		opts.Interval = timeline.DefaultInterval
	}
	if opts.Start.IsZero() {
		opts.Start = time.Now().UTC().Truncate(opts.Interval)
	}
	if opts.End.IsZero() {
		if opts.Rounds <= 0 {
			return nil, errors.New("countrymon: either End or Rounds must be set")
		}
		opts.End = opts.Start.Add(time.Duration(opts.Rounds-1) * opts.Interval)
	}
	if opts.Clock == nil {
		if c, ok := opts.Transport.(Clock); ok {
			opts.Clock = c
		} else {
			opts.Clock = scanner.RealClock{}
		}
	}
	targets, err := scanner.NewTargetSet(opts.Targets, opts.Exclude)
	if err != nil {
		return nil, fmt.Errorf("countrymon: %w", err)
	}
	if opts.CheckpointPath != "" && opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 16
	}
	tl := timeline.New(opts.Start, opts.End, opts.Interval)
	m := &Monitor{
		opts:          opts,
		tl:            tl,
		targets:       targets,
		store:         dataset.NewStore(tl, targets.Blocks()),
		origins:       make(map[BlockID]ASN),
		bus:           opts.Bus,
		metrics:       newMonMetrics(opts.Registry),
		scanM:         scanner.NewMetrics(opts.Registry),
		sigM:          signals.NewMetrics(opts.Registry),
		lastDataRound: -1,
	}
	switch {
	case opts.Fleet != nil:
		m.camp = opts.Fleet
	case len(opts.Vantages) > 0:
		shards := opts.ScanShards
		if shards <= 1 {
			shards = 0 // fleet default: one shard per vantage
		}
		sup, err := fleet.New(opts.Vantages, fleet.Config{
			Targets: targets,
			Scan: scanner.Config{
				Rate:      opts.Rate,
				Seed:      opts.Seed,
				Batch:     opts.Batch,
				Pipelined: opts.Pipelined,
				Metrics:   m.scanM,
				Events:    opts.Bus,
			},
			Shards:   shards,
			Quorum:   opts.Quorum,
			Registry: opts.Registry,
			Bus:      opts.Bus,
		})
		if err != nil {
			return nil, fmt.Errorf("countrymon: %w", err)
		}
		m.camp = sup.Default()
	}
	if opts.ResumeFrom != "" {
		if err := m.resume(opts.ResumeFrom); err != nil {
			return nil, err
		}
	}
	if opts.RoundLogPath != "" {
		if err := m.attachRoundLog(); err != nil {
			return nil, err
		}
	}
	// Re-derive the fleet's previous belief: the latest recovered round
	// (from checkpoint and/or journal) that actually carries scan data.
	for r := m.round - 1; r >= 0; r-- {
		if m.store.Done(r) && !m.store.Missing(r) {
			m.lastDataRound = r
			break
		}
	}
	if opts.ResumeFrom != "" {
		m.metrics.resumeRound.Set(int64(m.round))
		m.emit("resume", func() map[string]any {
			return map[string]any{"round": m.round, "path": opts.ResumeFrom}
		})
	}
	for b, asn := range opts.Origins {
		m.origins[b] = asn
	}
	return m, nil
}

// attachRoundLog replays any existing journal at Options.RoundLogPath over
// the store — recovering rounds the last checkpoint missed — and opens it
// for appending.
func (m *Monitor) attachRoundLog() error {
	path := m.opts.RoundLogPath
	if _, err := os.Stat(path); err == nil {
		if _, err := dataset.ReplayRoundLog(m.store, path); err != nil {
			return fmt.Errorf("countrymon: round log replay: %w", err)
		}
		m.round = m.store.NextUndone()
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("countrymon: round log: %w", err)
	}
	rl, err := dataset.OpenRoundLog(path, m.store)
	if err != nil {
		return fmt.Errorf("countrymon: round log: %w", err)
	}
	m.roundLog = rl
	return nil
}

// Close releases campaign resources (currently the round log). The monitor
// must not be used afterwards.
func (m *Monitor) Close() error {
	if m.roundLog != nil {
		err := m.roundLog.Close()
		m.roundLog = nil
		return err
	}
	return nil
}

// journalRound appends the just-handled round to the round log, if enabled.
func (m *Monitor) journalRound(round int) error {
	if m.roundLog == nil {
		return nil
	}
	if err := m.roundLog.Append(m.store, round); err != nil {
		return fmt.Errorf("countrymon: round log: %w", err)
	}
	return nil
}

// resume replaces the fresh store with a checkpointed one and positions the
// campaign at its first unscanned round. The checkpoint must describe the
// same campaign — identical timeline and identical target blocks — or a
// *ResumeMismatchError carrying both sides of the conflict is returned.
func (m *Monitor) resume(path string) error {
	st, err := dataset.Load(path)
	if err != nil {
		return fmt.Errorf("countrymon: resume: %w", err)
	}
	ctl := st.Timeline()
	want, got := m.store.Blocks(), st.Blocks()
	mm := &ResumeMismatchError{
		Path:         path,
		WantTimeline: TimelineSpec{Start: m.tl.Start(), Interval: m.tl.Interval(), Rounds: m.tl.NumRounds()},
		GotTimeline:  TimelineSpec{Start: ctl.Start(), Interval: ctl.Interval(), Rounds: ctl.NumRounds()},
		WantBlocks:   len(want),
		GotBlocks:    len(got),
		FirstDiff:    -1,
	}
	if !mm.GotTimeline.Equal(mm.WantTimeline) || len(got) != len(want) {
		return mm
	}
	for i := range want {
		if got[i] != want[i] {
			mm.FirstDiff, mm.WantBlock, mm.GotBlock = i, want[i], got[i]
			return mm
		}
	}
	m.store = st
	m.round = st.NextUndone()
	return nil
}

// Timeline returns the campaign timeline.
func (m *Monitor) Timeline() *timeline.Timeline { return m.tl }

// Store exposes the raw observation store.
func (m *Monitor) Store() *dataset.Store { return m.store }

// Round returns the next round index to be scanned.
func (m *Monitor) Round() int { return m.round }

// NextRound reports whether another round remains.
func (m *Monitor) NextRound() bool { return m.round < m.tl.NumRounds() }

// MarkMissing records the current round as a vantage outage (zero coverage)
// and skips it. Like ScanRound it returns ErrCampaignComplete once the
// timeline is exhausted and surfaces the checkpoint error the cadence may
// produce, so skipped rounds are as durable as scanned ones.
func (m *Monitor) MarkMissing() error {
	if !m.NextRound() {
		return ErrCampaignComplete
	}
	m.store.SetCoverage(m.round, 0)
	m.store.SetMissing(m.round)
	m.metrics.roundsMissing.Inc()
	m.metrics.coverage.Observe(0)
	m.metrics.lastRound.Set(int64(m.round))
	round := m.round
	m.emit("round_missing", func() map[string]any {
		return map[string]any{"round": round, "reason": "vantage"}
	})
	if err := m.journalRound(round); err != nil {
		return err
	}
	m.foldRound(round)
	m.round++
	return m.maybeCheckpoint()
}

// ScanRound probes every target once and ingests the results at the current
// round index; it is ScanRoundContext without cancellation.
func (m *Monitor) ScanRound() (Stats, error) {
	return m.ScanRoundContext(context.Background())
}

// ScanRoundContext probes every target once and ingests the results at the
// current round index. A round salvaged by the scanner's error budget is
// recorded with its achieved coverage (signals gate it via
// Options.MinCoverage); a round whose receive path died is recorded as
// missing, like a vantage outage. Only a hard scan failure — or ctx being
// cancelled mid-round, which discards the partial round so it rescans on
// resume — returns an error.
func (m *Monitor) ScanRoundContext(ctx context.Context) (Stats, error) {
	if !m.NextRound() {
		return Stats{}, ErrCampaignComplete
	}
	// Align with the round's scheduled time (advances virtual clocks;
	// sleeps until the slot on real deployments).
	at := m.tl.Time(m.round)
	if wait := at.Sub(m.opts.Clock.Now()); wait > 0 {
		m.opts.Clock.Sleep(wait)
	}
	round := m.round
	m.emit("round_start", func() map[string]any {
		return map[string]any{"round": round, "at": roundAt(at)}
	})
	cfg := scanner.Config{
		Rate:      m.opts.Rate,
		Seed:      m.opts.Seed,
		Epoch:     uint32(m.round + 1),
		Clock:     m.opts.Clock,
		Batch:     m.opts.Batch,
		Pipelined: m.opts.Pipelined,
		Metrics:   m.scanM,
		Events:    m.bus,
	}
	var (
		rd  *scanner.RoundData
		err error
	)
	switch {
	case m.camp != nil:
		var rep *fleet.RoundReport
		rd, rep, err = m.camp.ScanRound(ctx, round, at, m.prevBelief())
		if err != nil {
			return Stats{}, err
		}
		if rep.SelfOutage {
			// The fleet, not the target, was dark: record the round missing
			// so signal derivation treats it exactly like a vantage outage
			// and no block series carries fabricated zeros.
			m.store.SetCoverage(m.round, 0)
			m.store.SetMissing(m.round)
			m.metrics.roundsMissing.Inc()
			m.metrics.coverage.Observe(0)
			m.metrics.lastRound.Set(int64(m.round))
			m.emit("round_missing", func() map[string]any {
				return map[string]any{"round": round, "reason": "fleet_self_outage"}
			})
			if err := m.journalRound(round); err != nil {
				return Stats{}, err
			}
			m.foldRound(round)
			m.round++
			if err := m.maybeCheckpoint(); err != nil {
				return Stats{}, err
			}
			if !m.NextRound() {
				m.emit("campaign_complete", func() map[string]any {
					return map[string]any{"rounds": m.tl.NumRounds()}
				})
			}
			return Stats{}, nil
		}
	case m.opts.ScanShards > 1 && m.opts.ShardTransport != nil:
		rd, err = scanner.ScanParallel(ctx, m.targets, m.opts.ScanShards, cfg,
			func(shard, shards int) (Transport, Clock, error) {
				return m.opts.ShardTransport(round, at, shard, shards)
			})
	default:
		rd, err = scanner.New(m.opts.Transport, cfg).RunContext(ctx, m.targets)
	}
	if err != nil {
		return Stats{}, err
	}
	outcome := "round_scanned"
	if rd.RecvDead {
		// Probes may have gone out, but with the receive path dead the
		// response counts are not trustworthy measurements. Record the
		// achieved send coverage (consistently with salvaged rounds) before
		// marking the round missing.
		m.store.SetCoverage(m.round, rd.Coverage())
		m.store.SetMissing(m.round)
		m.metrics.roundsMissing.Inc()
		outcome = "round_missing"
	} else {
		m.store.AddRoundData(m.round, rd)
		m.lastDataRound = m.round
		if rd.Partial {
			m.store.SetCoverage(m.round, rd.Coverage())
			m.metrics.roundsSalvaged.Inc()
			outcome = "round_salvaged"
		} else {
			m.metrics.roundsScanned.Inc()
		}
		m.store.SetDone(m.round)
	}
	m.campaign.Add(rd.Stats)
	m.metrics.roundDur.Observe(rd.Stats.Elapsed.Seconds())
	m.metrics.coverage.Observe(rd.Coverage())
	m.metrics.lastRound.Set(int64(m.round))
	m.emit(outcome, func() map[string]any {
		f := map[string]any{
			"round": round, "sent": rd.Stats.Sent, "valid": rd.Stats.Valid,
			"coverage": rd.Coverage(),
		}
		if rd.RecvDead {
			f["reason"] = "recv_dead"
		}
		return f
	})
	if err := m.journalRound(round); err != nil {
		return rd.Stats, err
	}
	m.foldRound(round)
	m.round++
	if err := m.maybeCheckpoint(); err != nil {
		return rd.Stats, err
	}
	if !m.NextRound() {
		m.emit("campaign_complete", func() map[string]any {
			return map[string]any{"rounds": m.tl.NumRounds()}
		})
	}
	return rd.Stats, nil
}

// Checkpoint writes the store to Options.CheckpointPath atomically and
// durably: the temp file is fsynced before the rename (a rename only
// atomically replaces content that has actually reached the disk) and the
// containing directory is fsynced after it, so a crash at any point leaves
// either the old checkpoint or the complete new one — never a torn or
// empty file. It returns ErrNoCheckpoint when no path is configured.
func (m *Monitor) Checkpoint() error {
	if m.opts.CheckpointPath == "" {
		return ErrNoCheckpoint
	}
	t0 := time.Now()
	tmp := m.opts.CheckpointPath + ".tmp"
	if err := m.store.SaveSync(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, m.opts.CheckpointPath); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(filepath.Dir(m.opts.CheckpointPath)); err != nil {
		return err
	}
	m.sinceCkpt = 0
	m.metrics.ckptTotal.Inc()
	m.metrics.ckptDur.ObserveSince(t0)
	m.emit("checkpoint", func() map[string]any {
		return map[string]any{"round": m.round, "path": m.opts.CheckpointPath}
	})
	if m.hooks.OnCheckpoint != nil {
		m.hooks.OnCheckpoint(m.round, m.opts.CheckpointPath)
	}
	return nil
}

// prevBelief returns the fleet's previous-belief lookup: each block's
// response count from the most recent round with ingested data, or no
// belief at all before the first such round.
func (m *Monitor) prevBelief() fleet.PrevFunc {
	last := m.lastDataRound
	if last < 0 {
		return func(int) (int, bool) { return 0, false }
	}
	return func(bi int) (int, bool) { return m.store.Resp(bi, last), true }
}

// FleetReport returns the fleet campaign report when the monitor runs a
// vantage fleet (Options.Vantages or Options.Fleet); ok is false otherwise.
// On a shared fleet the report covers this monitor's campaign only.
func (m *Monitor) FleetReport() (FleetReport, bool) {
	if m.camp == nil {
		return FleetReport{}, false
	}
	return m.camp.Report(), true
}

// Country returns the monitored country's ISO code (Options.Country,
// defaulting to Ukraine).
func (m *Monitor) Country() string {
	if m.opts.Country != "" {
		return m.opts.Country
	}
	return geodb.CountryUA
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash. Some
// filesystems do not support fsync on directories; those errors are ignored
// (the rename itself is still atomic there).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// maybeCheckpoint persists the store when the cadence is due or the
// campaign just completed.
func (m *Monitor) maybeCheckpoint() error {
	if m.opts.CheckpointPath == "" {
		return nil
	}
	m.sinceCkpt++
	if m.sinceCkpt >= m.opts.CheckpointEvery || !m.NextRound() {
		return m.Checkpoint()
	}
	return nil
}

// ApplyBGPSnapshot marks routedness for the current or given round from a
// collector snapshot (pass round < 0 for "the round about to be scanned").
// Origins are learned from the snapshot for AS-level queries.
func (m *Monitor) ApplyBGPSnapshot(snap *bgp.Snapshot, round int) {
	if round < 0 {
		round = m.round
	}
	if round >= m.tl.NumRounds() {
		return
	}
	originsChanged := false
	for bi, blk := range m.store.Blocks() {
		asn, routed := snap.BlockOrigin[blk]
		m.store.SetRound(bi, round, m.store.Resp(bi, round), routed)
		if routed && m.origins[blk] != asn {
			m.origins[blk] = asn
			originsChanged = true
		}
	}
	m.invalidateFor(round, originsChanged)
}

// SetRouted marks a block's routedness directly (for pipelines that consume
// table dumps rather than a live collector).
func (m *Monitor) SetRouted(blk BlockID, round int, routed bool, origin ASN) {
	bi := m.store.BlockIndex(blk)
	if bi < 0 {
		return
	}
	m.store.SetRound(bi, round, m.store.Resp(bi, round), routed)
	originsChanged := false
	if origin != 0 && m.origins[blk] != origin {
		m.origins[blk] = origin
		originsChanged = true
	}
	m.invalidateFor(round, originsChanged)
}

func (m *Monitor) invalidate() { m.sigOnce = false }

// foldRound advances a warm streaming builder past the just-handled round,
// falling back to a full invalidation when streaming is off, no builder is
// warm yet, or the fold fails.
func (m *Monitor) foldRound(round int) {
	defer m.advanceServe(round)
	if m.opts.StreamSignals && m.sigOnce && m.sigBuild != nil && m.sigBuild.Streaming() {
		if err := m.sigBuild.Fold(round); err == nil {
			return
		}
	}
	m.invalidate()
}

// AttachServe connects a serving read-path store to the monitor. Every round
// the monitor handles from now on (scanned or marked missing) is sealed into
// the store right after it folds into the signals builder, so attached
// queries always see a watermark that trails the campaign by zero rounds.
// Rounds already handled before the attach are sealed immediately.
func (m *Monitor) AttachServe(s *serve.Store) {
	m.serveStore = s
	if m.round > 0 {
		_ = s.AdvanceTo(m.round)
	}
}

// advanceServe seals a just-folded round into the attached serve store.
// foldRound is the single chokepoint every handled round passes through
// (ScanRoundContext, MarkMissing, and resume replay), so the watermark can
// never skip a round.
func (m *Monitor) advanceServe(round int) {
	if m.serveStore != nil {
		_ = m.serveStore.Advance(round)
	}
}

// ServeASSource adapts an AS's signal series for a serve.Store entity. The
// returned source re-resolves the builder on every sample, so it stays
// correct across builder invalidations (origin learning, routedness edits):
// sealed copies in the store were made at fold time, and post-invalidation
// reads sample the rebuilt series.
func (m *Monitor) ServeASSource(asn ASN) serve.Source {
	return serveASSource{m: m, asn: asn}
}

type serveASSource struct {
	m   *Monitor
	asn ASN
}

func (s serveASSource) Sample(r int) (bgpV, fbs, ips float32, missing bool) {
	es := s.m.builder().AS(s.asn)
	return es.BGP[r], es.FBS[r], es.IPS[r], es.Missing[r]
}

func (s serveASSource) IPSValidMonth(month int) bool {
	es := s.m.builder().AS(s.asn)
	return month < len(es.IPSValidMonth) && es.IPSValidMonth[month]
}

// invalidateFor drops the cached signals builder unless a warm streaming
// builder can absorb the change: routedness edits at or past the fold cursor
// land when that round folds, while origin changes alter the AS grouping
// itself and always force a rebuild.
func (m *Monitor) invalidateFor(round int, originsChanged bool) {
	if !originsChanged && m.opts.StreamSignals && m.sigOnce &&
		m.sigBuild != nil && m.sigBuild.Streaming() && round >= m.sigBuild.NextFold() {
		return
	}
	m.invalidate()
}

// buildSpace materializes a netmodel.Space from the learned origins.
func (m *Monitor) buildSpace() *netmodel.Space {
	byAS := make(map[ASN][]Prefix)
	for _, blk := range m.store.Blocks() {
		asn := m.origins[blk]
		if asn == 0 {
			continue
		}
		byAS[asn] = append(byAS[asn], Prefix{Base: blk.First(), Bits: 24})
	}
	var ases []*netmodel.AS
	for asn, ps := range byAS {
		ases = append(ases, &netmodel.AS{ASN: asn, Prefixes: ps})
	}
	// Origins come from our own map keyed by block, so overlaps are
	// impossible; a failure here is a programming error.
	return netmodel.MustBuildSpace(ases)
}

// minCoverage resolves the partial-round gate from the options.
func (m *Monitor) minCoverage() float64 {
	switch {
	case m.opts.MinCoverage > 0:
		return m.opts.MinCoverage
	case m.opts.MinCoverage < 0:
		return 0
	default:
		return signals.DefaultMinCoverage
	}
}

// builder returns the (cached) signals builder and its Space.
func (m *Monitor) builder() *signals.Builder {
	if m.sigOnce && m.sigBuild != nil {
		return m.sigBuild
	}
	m.space = m.buildSpace()
	if m.opts.StreamSignals {
		m.sigBuild = signals.NewStreamingBuilder(m.store, m.space, m.minCoverage())
	} else {
		m.sigBuild = signals.NewBuilderMinCoverage(m.store, m.space, m.minCoverage())
	}
	m.sigBuild.Observe(m.sigM)
	m.sigOnce = true
	return m.sigBuild
}

// DetectAS runs outage detection for one AS with the paper's AS-level
// thresholds.
func (m *Monitor) DetectAS(asn ASN) *Detection {
	d := signals.DetectObs(m.builder().AS(asn), signals.ASConfig(), m.sigM)
	if len(d.Outages) > 0 {
		m.emitDetection(asn.String(), d)
	}
	return d
}

// ASSeries exposes the raw per-round signals of an AS.
func (m *Monitor) ASSeries(asn ASN) *signals.EntitySeries { return m.builder().AS(asn) }

// ClassifyRegions runs the regional classification (§4, M = T_perc = 0.7)
// against monthly geolocation snapshots, enabling region-level detection.
// Call it after the campaign's observations (and routedness) are ingested.
func (m *Monitor) ClassifyRegions(db *geodb.DB) error {
	if db == nil || db.Months() == 0 {
		return errors.New("countrymon: geolocation database required")
	}
	m.builder() // materializes (and caches) the Space from learned origins
	cl := regional.NewClassifierCountry(m.space, db, m.store, m.Country())
	m.classifier = cl
	m.classification = cl.ClassifyAll(regional.DefaultParams())
	return nil
}

// DetectRegion runs regional outage detection with the paper's region-level
// thresholds. ClassifyRegions must have been called.
func (m *Monitor) DetectRegion(r Region) (*Detection, error) {
	if m.classification == nil {
		return nil, errors.New("countrymon: call ClassifyRegions first")
	}
	rr := m.classification.Regions[r]
	if rr == nil {
		return nil, fmt.Errorf("countrymon: no classification for %v", r)
	}
	es := m.builder().Region(rr, m.classifier)
	d := signals.DetectObs(es, signals.RegionConfig(), m.sigM)
	if len(d.Outages) > 0 {
		m.emitDetection(r.String(), d)
	}
	return d, nil
}

// RegionalASes returns the ASes classified regional for r (empty before
// ClassifyRegions).
func (m *Monitor) RegionalASes(r Region) []ASN {
	if m.classification == nil {
		return nil
	}
	rr := m.classification.Regions[r]
	if rr == nil {
		return nil
	}
	var out []ASN
	for asn, class := range rr.AS {
		if class == regional.ASRegional {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
