package countrymon

import (
	"bytes"
	"math"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/signals"
	"countrymon/internal/simnet"
)

// streamOpts builds the shared option set of the streaming-signals tests:
// the standard outage scenario plus whatever durability knobs a variant
// needs. Each call makes a fresh simnet, so independent runs see identical
// virtual wire behaviour (rounds are scheduled on the timeline).
func streamOpts(rounds int, stream bool, roundLog string) Options {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	outFrom := start.Add(120 * 2 * time.Hour)
	outTo := outFrom.Add(15 * 2 * time.Hour)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), outageResponder(40, outFrom, outTo), start)
	return Options{
		Transport: net,
		Targets:   []Prefix{netmodel.MustParsePrefix("91.198.4.0/23")},
		Start:     start, Rounds: rounds, Interval: 2 * time.Hour,
		Seed: 7,
		Origins: map[BlockID]ASN{
			netmodel.MustParseBlock("91.198.4.0/24"): 25482,
			netmodel.MustParseBlock("91.198.5.0/24"): 25482,
		},
		StreamSignals: stream,
		RoundLogPath:  roundLog,
	}
}

func sameEntitySeries(t *testing.T, label string, want, got *signals.EntitySeries) {
	t.Helper()
	if len(want.BGP) != len(got.BGP) {
		t.Fatalf("%s: %d rounds vs %d", label, len(want.BGP), len(got.BGP))
	}
	for r := range want.BGP {
		if math.Float32bits(want.BGP[r]) != math.Float32bits(got.BGP[r]) ||
			math.Float32bits(want.FBS[r]) != math.Float32bits(got.FBS[r]) ||
			math.Float32bits(want.IPS[r]) != math.Float32bits(got.IPS[r]) ||
			want.Missing[r] != got.Missing[r] {
			t.Fatalf("%s: round %d: batch (%g, %g, %g) vs stream (%g, %g, %g)", label, r,
				want.BGP[r], want.FBS[r], want.IPS[r], got.BGP[r], got.FBS[r], got.IPS[r])
		}
	}
	for m := range want.IPSValidMonth {
		if want.IPSValidMonth[m] != got.IPSValidMonth[m] {
			t.Fatalf("%s: month %d: IPS validity differs", label, m)
		}
	}
}

// TestMonitorStreamSignalsMatchesBatch runs the same campaign with and
// without StreamSignals, querying the streaming monitor's signals every
// round — so each subsequent round folds into a warm builder instead of
// invalidating it — and requires bit-identical series and detections.
func TestMonitorStreamSignalsMatchesBatch(t *testing.T) {
	const rounds = 200
	run := func(stream bool) *Monitor {
		mon, err := New(streamOpts(rounds, stream, ""))
		if err != nil {
			t.Fatal(err)
		}
		for mon.NextRound() {
			round := mon.Round()
			for _, blk := range mon.Store().Blocks() {
				mon.SetRouted(blk, round, true, 25482)
			}
			if _, err := mon.ScanRound(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if stream {
				// Query mid-campaign: this materializes the streaming
				// builder, and MarkMissing/fold keep it warm from here on.
				if es := mon.ASSeries(25482); es == nil {
					t.Fatal("nil series")
				}
			}
		}
		return mon
	}

	batch := run(false)
	streamed := run(true)

	sameEntitySeries(t, "AS25482", batch.ASSeries(25482), streamed.ASSeries(25482))
	sameOutages(t, "DetectAS", streamed.DetectAS(25482).Outages, batch.DetectAS(25482).Outages)
	if len(batch.DetectAS(25482).Outages) != 1 {
		t.Fatalf("scenario outages = %+v, want the scripted one", batch.DetectAS(25482).Outages)
	}
}

// TestMonitorStreamSignalsWithMissingRounds exercises the fold across
// MarkMissing rounds: the streaming monitor skips two rounds as vantage
// outages while keeping its builder warm, and must agree with a batch
// monitor doing the same.
func TestMonitorStreamSignalsWithMissingRounds(t *testing.T) {
	const rounds = 120
	run := func(stream bool) *Monitor {
		mon, err := New(streamOpts(rounds, stream, ""))
		if err != nil {
			t.Fatal(err)
		}
		for mon.NextRound() {
			round := mon.Round()
			if round == 50 || round == 51 {
				if err := mon.MarkMissing(); err != nil {
					t.Fatal(err)
				}
				if stream {
					mon.ASSeries(25482)
				}
				continue
			}
			for _, blk := range mon.Store().Blocks() {
				mon.SetRouted(blk, round, true, 25482)
			}
			if _, err := mon.ScanRound(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if stream {
				mon.ASSeries(25482)
			}
		}
		return mon
	}
	batch, streamed := run(false), run(true)
	sameEntitySeries(t, "AS25482", batch.ASSeries(25482), streamed.ASSeries(25482))
	if !streamed.ASSeries(25482).Missing[50] || !streamed.ASSeries(25482).Missing[51] {
		t.Fatal("marked rounds not missing in streamed series")
	}
}

// TestRoundLogCrashResume kills an un-checkpointed campaign mid-run and
// resumes it from the round log alone: the journal replay must reposition
// the cursor exactly where the kill happened (no redone rounds, unlike
// checkpoint-cadence resume) and the finished store must be byte-identical
// to an uninterrupted run.
func TestRoundLogCrashResume(t *testing.T) {
	const rounds = 60
	dir := t.TempDir()

	ref, err := New(streamOpts(rounds, true, dir+"/ref.cmrl"))
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, ref, -1)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	var refBytes bytes.Buffer
	if _, err := ref.Store().WriteTo(&refBytes); err != nil {
		t.Fatal(err)
	}

	killed, err := New(streamOpts(rounds, true, dir+"/killed.cmrl"))
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, killed, 25)
	if err := killed.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := New(streamOpts(rounds, true, dir+"/killed.cmrl"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Round() != 25 {
		t.Fatalf("resumed at round %d, want 25 (journal replays every handled round)", res.Round())
	}
	runRounds(t, res, -1)
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}

	var resBytes bytes.Buffer
	if _, err := res.Store().WriteTo(&resBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes.Bytes(), resBytes.Bytes()) {
		t.Fatalf("journal-resumed store differs from uninterrupted run (%d vs %d bytes)",
			resBytes.Len(), refBytes.Len())
	}
	sameOutages(t, "DetectAS after journal resume",
		res.DetectAS(25482).Outages, ref.DetectAS(25482).Outages)
}

// TestRoundLogRejectsMismatchedCampaign guards journal validation: a log
// from a different campaign shape must not be silently adopted.
func TestRoundLogRejectsMismatchedCampaign(t *testing.T) {
	dir := t.TempDir()
	mon, err := New(streamOpts(40, false, dir+"/a.cmrl"))
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, mon, 5)
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	opts := streamOpts(80, false, dir+"/a.cmrl") // different round count
	if _, err := New(opts); err == nil {
		t.Fatal("mismatched round log accepted")
	}
}
