package countrymon

import (
	"testing"
	"time"

	"countrymon/internal/bgp"
	"countrymon/internal/netmodel"
	"countrymon/internal/simnet"
)

// outageResponder answers all hosts < density, except during [from, to)
// where everything is silent.
func outageResponder(density uint8, from, to time.Time) simnet.Responder {
	return simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		if !at.Before(from) && at.Before(to) {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		if dst.HostByte() < density {
			return simnet.Reply{Kind: simnet.EchoReply, RTT: 30 * time.Millisecond}
		}
		return simnet.Reply{Kind: simnet.NoReply}
	})
}

func TestMonitorEndToEnd(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	const rounds = 400
	outFrom := start.Add(300 * 2 * time.Hour)
	outTo := outFrom.Add(20 * 2 * time.Hour)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), outageResponder(40, outFrom, outTo), start)

	targets := []Prefix{netmodel.MustParsePrefix("91.198.4.0/23")}
	mon, err := New(Options{
		Transport: net,
		Targets:   targets,
		Start:     start, Rounds: rounds, Interval: 2 * time.Hour,
		Rate: 0, Seed: 7,
		Origins: map[BlockID]ASN{
			netmodel.MustParseBlock("91.198.4.0/24"): 25482,
			netmodel.MustParseBlock("91.198.5.0/24"): 25482,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mon.Timeline().NumRounds() != rounds {
		t.Fatalf("rounds = %d", mon.Timeline().NumRounds())
	}
	for mon.NextRound() {
		round := mon.Round()
		// Routedness: always routed in this scenario.
		for _, blk := range mon.Store().Blocks() {
			mon.SetRouted(blk, round, true, 25482)
		}
		stats, err := mon.ScanRound()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Sent != 512 {
			t.Fatalf("round %d: sent %d", round, stats.Sent)
		}
	}
	det := mon.DetectAS(25482)
	if len(det.Outages) != 1 {
		t.Fatalf("outages = %d, want 1 (%+v)", len(det.Outages), det.Outages)
	}
	o := det.Outages[0]
	if o.Start != 300 || o.End != 320 {
		t.Errorf("outage [%d,%d), want [300,320)", o.Start, o.End)
	}
	if !o.Signals.Has(SignalIPS) {
		t.Errorf("signals = %v", o.Signals)
	}
	if o.Duration(2*time.Hour) != 40*time.Hour {
		t.Errorf("duration = %v", o.Duration(2*time.Hour))
	}
}

func TestMonitorApplyBGPSnapshot(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), outageResponder(10, start, start), start)
	mon, err := New(Options{
		Transport: net,
		Targets:   []Prefix{netmodel.MustParsePrefix("10.0.0.0/23")},
		Start:     start, Rounds: 5, Interval: 2 * time.Hour, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rib := bgp.NewRIB()
	rib.Announce(bgp.Route{Prefix: netmodel.MustParsePrefix("10.0.0.0/24"), Path: []ASN{64512, 100}, NextHop: 1})
	snap := rib.Snapshot(nil)
	mon.ApplyBGPSnapshot(snap, 0)
	st := mon.Store()
	if !st.Routed(st.BlockIndex(netmodel.MustParseBlock("10.0.0.0/24")), 0) {
		t.Error("announced block not routed")
	}
	if st.Routed(st.BlockIndex(netmodel.MustParseBlock("10.0.1.0/24")), 0) {
		t.Error("unannounced block routed")
	}
	// Origins learned: series exists for AS100.
	es := mon.ASSeries(100)
	if es.BGP[0] != 1 {
		t.Errorf("AS100 BGP[0] = %f", es.BGP[0])
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing transport accepted")
	}
	net := simnet.New(1, simnet.ResponderFunc(func(netmodel.Addr, time.Time) simnet.Reply {
		return simnet.Reply{}
	}), time.Unix(0, 0))
	if _, err := New(Options{Transport: net, Targets: []Prefix{netmodel.MustParsePrefix("10.0.0.0/24")}}); err == nil {
		t.Error("missing End/Rounds accepted")
	}
	if _, err := New(Options{Transport: net, Rounds: 1}); err == nil {
		t.Error("missing targets accepted")
	}
}

func TestMonitorMarkMissing(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	net := simnet.New(1, outageResponder(5, start, start), start)
	mon, err := New(Options{
		Transport: net,
		Targets:   []Prefix{netmodel.MustParsePrefix("10.0.0.0/24")},
		Start:     start, Rounds: 3, Interval: time.Hour, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.MarkMissing()
	if !mon.Store().Missing(0) {
		t.Error("round 0 not missing")
	}
	if mon.Round() != 1 {
		t.Error("round not advanced")
	}
}
