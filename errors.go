package countrymon

import (
	"errors"
	"fmt"
	"time"
)

// ErrCampaignComplete is returned by ScanRound/MarkMissing once every round
// of the timeline has been handled. Check with errors.Is.
var ErrCampaignComplete = errors.New("countrymon: campaign complete")

// ErrNoCheckpoint is returned by Checkpoint when no CheckpointPath is
// configured. Check with errors.Is.
var ErrNoCheckpoint = errors.New("countrymon: no CheckpointPath configured")

// TimelineSpec is the shape of a campaign timeline, as carried by
// ResumeMismatchError.
type TimelineSpec struct {
	Start    time.Time
	Interval time.Duration
	Rounds   int
}

// Equal reports whether two specs describe the same timeline.
func (t TimelineSpec) Equal(o TimelineSpec) bool {
	return t.Start.Equal(o.Start) && t.Interval == o.Interval && t.Rounds == o.Rounds
}

func (t TimelineSpec) String() string {
	return fmt.Sprintf("%s+%s×%d", t.Start.Format(time.RFC3339), t.Interval, t.Rounds)
}

// ResumeMismatchError is returned by New when Options.ResumeFrom names a
// checkpoint of a different campaign. It carries both sides of the conflict
// so callers can report (or reconcile) it instead of string-matching; check
// with errors.As.
type ResumeMismatchError struct {
	Path string

	// Want* describe the configured campaign, Got* the checkpoint.
	WantTimeline, GotTimeline TimelineSpec
	WantBlocks, GotBlocks     int

	// FirstDiff is the index of the first differing target block (-1 when
	// the mismatch is the timeline or the block count), with the two blocks
	// in WantBlock/GotBlock.
	FirstDiff           int
	WantBlock, GotBlock BlockID
}

func (e *ResumeMismatchError) Error() string {
	switch {
	case !e.GotTimeline.Equal(e.WantTimeline):
		return fmt.Sprintf("countrymon: resume %s: checkpoint timeline %s does not match campaign %s",
			e.Path, e.GotTimeline, e.WantTimeline)
	case e.GotBlocks != e.WantBlocks:
		return fmt.Sprintf("countrymon: resume %s: checkpoint has %d blocks, campaign has %d",
			e.Path, e.GotBlocks, e.WantBlocks)
	default:
		return fmt.Sprintf("countrymon: resume %s: checkpoint block %v differs from campaign block %v (index %d)",
			e.Path, e.GotBlock, e.WantBlock, e.FirstDiff)
	}
}
