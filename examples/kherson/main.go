// Kherson: replay the paper's three validated Kherson events — the Mykolaiv
// cable cut, the occupation-era rerouting, the Kakhovka dam flood — plus the
// Status ISP case studies, on the simulated three-year campaign.
//
//	go run ./examples/kherson [-scale 0.08]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"countrymon/internal/experiments"
	"countrymon/internal/sim"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.08, "scenario scale")
	flag.Parse()

	log.Printf("building the three-year campaign (scale %.2f)... this runs the", *scale)
	log.Printf("scanner-equivalent generator, classification and signal pipeline once.")
	env := experiments.New(sim.Config{Seed: 1, Scale: *scale})

	for _, id := range []string{"F11", "F12", "F13", "F14"} {
		ex, ok := experiments.ByID(id)
		if !ok {
			log.Fatalf("experiment %s missing", id)
		}
		t0 := time.Now()
		rep := ex.Run(env)
		fmt.Print(rep.String())
		fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	fmt.Println("Narrative checkpoints (§5.2/§5.3):")
	fmt.Println(" * Apr 30 2022 — backbone cable damage: BGP loss across the oblast's ASes")
	fmt.Println(" * May 13 2022 06:28 — server-room seizure at Status: IPS▲ dips, BGP/FBS stable")
	fmt.Println(" * May–Nov 2022 — RTTs rise ~75 ms while traffic detours via Russian upstreams")
	fmt.Println(" * Nov 11 2022 — liberation: Status's Kherson blocks dark 10 days, then day-only")
	fmt.Println(" * Jun 6 2023 — Kakhovka dam: OstrovNet (Korabel Island) offline ~3 months")
}
