// Powercorr: correlate Internet disruptions with the Ukrenergo-style power
// outage dataset for 2024 (Fig 10), and show that the regional
// classification is what makes the correlation visible (ablation A2).
//
//	go run ./examples/powercorr [-scale 0.08]
package main

import (
	"flag"
	"fmt"
	"log"

	"countrymon/internal/experiments"
	"countrymon/internal/sim"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.08, "scenario scale")
	flag.Parse()

	log.Printf("building campaign (scale %.2f) and both detection pipelines...", *scale)
	env := experiments.New(sim.Config{Seed: 1, Scale: *scale})

	for _, id := range []string{"F10", "F26", "A2"} {
		ex, _ := experiments.ByID(id)
		rep := ex.Run(env)
		fmt.Print(rep.String())
		fmt.Println()
	}

	fmt.Println("Reading: in non-frontline oblasts, Internet disruptions track the power")
	fmt.Println("schedule closely (the paper reports r = 0.725); with IODA's any-presence")
	fmt.Println("attribution the relationship washes out (r = 0.328), and frontline oblasts")
	fmt.Println("correlate weakly because kinetic damage, not load shedding, drives outages.")
}
