// Quickstart: monitor a small address space over the simulated wire, inject
// an outage halfway through the campaign, and detect it with the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"countrymon"
	"countrymon/internal/netmodel"
	"countrymon/internal/simnet"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	const rounds = 360 // 30 days of bi-hourly scans

	// Ground truth: a provider with two /24s whose network fully fails for
	// 24 hours on day 25, plus a permanent partial outage (half the hosts)
	// from day 27 that only the IPS▲ signal can see.
	fullFrom := start.Add(25 * 24 * time.Hour)
	fullTo := fullFrom.Add(24 * time.Hour)
	partialFrom := start.Add(27 * 24 * time.Hour)
	truth := simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		alive := dst.HostByte() < 60
		if !at.Before(fullFrom) && at.Before(fullTo) {
			alive = false
		}
		if !at.Before(partialFrom) && dst.HostByte() >= 30 {
			alive = false
		}
		if !alive {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		return simnet.Reply{Kind: simnet.EchoReply, RTT: 35 * time.Millisecond}
	})

	// The simulated network is both the transport and the (virtual) clock:
	// 30 days of scanning complete in well under a second of wall time.
	wire := simnet.New(netmodel.MustParseAddr("198.51.100.1"), truth, start)

	targets := []countrymon.Prefix{mustPrefix("91.198.4.0/23")}
	mon, err := countrymon.New(countrymon.Options{
		Transport: wire,
		Targets:   targets,
		Start:     start, Rounds: rounds, Interval: 2 * time.Hour,
		Rate: 0, Seed: 42,
		Origins: map[countrymon.BlockID]countrymon.ASN{
			mustPrefix("91.198.4.0/24").Base.Block(): 64512,
			mustPrefix("91.198.5.0/24").Base.Block(): 64512,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("scanning %d rounds of %d targets...", rounds, 512)
	var sent, valid uint64
	wallStart := time.Now()
	for mon.NextRound() {
		round := mon.Round()
		for _, blk := range mon.Store().Blocks() {
			mon.SetRouted(blk, round, true, 64512) // routes stay up throughout
		}
		st, err := mon.ScanRound()
		if err != nil {
			log.Fatal(err)
		}
		sent += st.Sent
		valid += st.Valid
	}
	wall := time.Since(wallStart).Seconds()
	log.Printf("campaign done: %d probes, %d replies in %.2fs wall (%.0f probes/s, %.0f replies/s)",
		sent, valid, wall, float64(sent)/wall, float64(valid)/wall)

	det := mon.DetectAS(64512)
	fmt.Printf("\ndetected %d outage events for AS64512:\n", len(det.Outages))
	for _, o := range det.Outages {
		fmt.Printf("  %s → %s  signals=%v\n",
			mon.Timeline().Time(o.Start).Format("Jan 02 15:04"),
			mon.Timeline().Time(o.End).Format("Jan 02 15:04"),
			o.Signals)
	}
	fmt.Println("\nthe 24h full outage and the partial (IPS▲-only) outage are both visible;")
	fmt.Println("a sampled prober would have missed the partial one (§3.1 of the paper).")
}

func mustPrefix(s string) countrymon.Prefix {
	p, err := countrymon.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}
