module countrymon

go 1.22
