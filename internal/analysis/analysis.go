// Package analysis provides the statistics the evaluation needs: Pearson
// correlation (power vs Internet outages, ours vs IODA), outage-hour
// aggregation at daily/monthly granularity, CDFs, signal-to-noise ratios
// (Fig 27), and churn accounting between geolocation snapshots (§4.1).
package analysis

import (
	"math"
	"sort"
	"time"

	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

// Pearson computes the correlation coefficient between two equal-length
// series. It returns 0 when either series is constant or empty.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// OutageHoursPerDay converts a detection into hours of outage per campaign
// day (missing rounds contribute nothing).
func OutageHoursPerDay(d *signals.Detection, tl *timeline.Timeline) []float64 {
	out := make([]float64, tl.NumDays())
	hours := tl.Interval().Hours()
	for r, f := range d.Flags {
		if f != 0 {
			out[tl.DayOfRound(r)] += hours
		}
	}
	return out
}

// OutageHoursPerMonth aggregates outage hours per campaign month.
func OutageHoursPerMonth(d *signals.Detection, tl *timeline.Timeline) []float64 {
	out := make([]float64, tl.NumMonths())
	hours := tl.Interval().Hours()
	for r, f := range d.Flags {
		if f != 0 {
			out[tl.MonthOfRound(r)] += hours
		}
	}
	return out
}

// SumSeries adds b into a (padding ignored; lengths must match).
func SumSeries(a, b []float64) []float64 {
	for i := range a {
		if i < len(b) {
			a[i] += b[i]
		}
	}
	return a
}

// MeanOf averages several same-length series element-wise.
func MeanOf(series ...[]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	out := make([]float64, len(series[0]))
	for _, s := range series {
		SumSeries(out, s)
	}
	for i := range out {
		out[i] /= float64(len(series))
	}
	return out
}

// MaxOf takes the element-wise maximum of several same-length series (the
// "worst case" daily outage hours of §5.1).
func MaxOf(series ...[]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	out := make([]float64, len(series[0]))
	for _, s := range series {
		for i, v := range s {
			if i < len(out) && v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// YearSlice extracts the sub-series of daily values falling in the given
// calendar year, along with the matching day-of-year dates.
func YearSlice(daily []float64, tl *timeline.Timeline, year int) ([]float64, []time.Time) {
	var vals []float64
	var days []time.Time
	for d, v := range daily {
		date := tl.DayStart(d)
		if date.Year() == year {
			vals = append(vals, v)
			days = append(days, date)
		}
	}
	return vals, days
}

// CDF holds an empirical distribution.
type CDF struct {
	Sorted []float64
}

// NewCDF sorts a copy of the values.
func NewCDF(vals []float64) CDF {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return CDF{Sorted: s}
}

// Quantile returns the q-quantile (0..1).
func (c CDF) Quantile(q float64) float64 {
	if len(c.Sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(c.Sorted)-1))
	return c.Sorted[i]
}

// Median returns the 0.5 quantile.
func (c CDF) Median() float64 { return c.Quantile(0.5) }

// At returns P(X ≤ v).
func (c CDF) At(v float64) float64 {
	if len(c.Sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.Sorted, v)
	for i < len(c.Sorted) && c.Sorted[i] <= v {
		i++
	}
	return float64(i) / float64(len(c.Sorted))
}

// MedianU32 returns the median of raw uint32 samples (radius metrics).
func MedianU32(vals []uint32) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]uint32(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[len(s)/2])
}

// SNR computes the signal-to-noise ratio mean/σ of a series (Fig 27);
// higher means a clearer signal. Constant nonzero series return +Inf capped
// at 1e6.
func SNR(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var varsum float64
	for _, v := range vals {
		d := v - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(len(vals)))
	if sd == 0 {
		if mean == 0 {
			return 0
		}
		return 1e6
	}
	snr := mean / sd
	if snr > 1e6 {
		return 1e6
	}
	return snr
}

// ChurnReport summarizes address movement between two geolocation
// snapshots (§4.1, Figs 1/19).
type ChurnReport struct {
	// PerRegionChange is the relative change of located addresses per
	// oblast (−1..+∞).
	PerRegionChange map[netmodel.Region]float64
	// MovedIntra counts addresses that changed Ukrainian region.
	MovedIntra int64
	// MovedAbroad counts addresses that left Ukraine, by destination.
	MovedAbroad map[string]int64
	// TotalMoved is MovedIntra plus all abroad moves.
	TotalMoved int64
}

// Churn compares two snapshots block by block. Blocks are the universe of
// /24s to account (the measurement targets).
func Churn(before, after *geodb.Snapshot, blocks []netmodel.BlockID) *ChurnReport {
	rep := &ChurnReport{
		PerRegionChange: make(map[netmodel.Region]float64),
		MovedAbroad:     make(map[string]int64),
	}
	beforeCount := make(map[netmodel.Region]int64)
	afterCount := make(map[netmodel.Region]int64)
	for _, blk := range blocks {
		b := before.BlockShares(blk)
		a := after.BlockShares(blk)
		for r := netmodel.Region(1); int(r) <= netmodel.NumRegions; r++ {
			beforeCount[r] += int64(b.PerRegion[r])
			afterCount[r] += int64(a.PerRegion[r])
		}
		// Movement accounting at block granularity: compare dominant
		// locations.
		br, bn := b.DominantRegion()
		ar, an := a.DominantRegion()
		switch {
		case br.Valid() && ar.Valid() && br != ar:
			moved := int64(bn)
			if int64(an) < moved {
				moved = int64(an)
			}
			rep.MovedIntra += moved
			rep.TotalMoved += moved
		case br.Valid() && !ar.Valid():
			// Left Ukraine: attribute to the dominant destination country.
			dest, destN := "", uint16(0)
			for cc, n := range a.Abroad {
				if n > destN {
					dest, destN = cc, n
				}
			}
			if dest != "" {
				rep.MovedAbroad[dest] += int64(bn)
				rep.TotalMoved += int64(bn)
			}
		}
	}
	for _, r := range netmodel.Regions() {
		if beforeCount[r] > 0 {
			rep.PerRegionChange[r] = float64(afterCount[r]-beforeCount[r]) / float64(beforeCount[r])
		}
	}
	return rep
}

// DailyStartCounts converts outage events into "outages starting per day"
// (Fig 16).
func DailyStartCounts(outages []signals.Outage, tl *timeline.Timeline) []float64 {
	out := make([]float64, tl.NumDays())
	for _, o := range outages {
		out[tl.DayOfRound(o.Start)]++
	}
	return out
}

// FlagDays returns the set of days with any flagged round, for the
// undetected-outage comparison of §5.4.
func FlagDays(d *signals.Detection, tl *timeline.Timeline, want signals.Kind) map[int]bool {
	days := make(map[int]bool)
	for r, f := range d.Flags {
		if f.Has(want) {
			days[tl.DayOfRound(r)] = true
		}
	}
	return days
}

// DisjointDays counts days present in a but not b, and vice versa.
func DisjointDays(a, b map[int]bool) (onlyA, onlyB int) {
	for d := range a {
		if !b[d] {
			onlyA++
		}
	}
	for d := range b {
		if !a[d] {
			onlyB++
		}
	}
	return onlyA, onlyB
}
