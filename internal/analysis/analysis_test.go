package analysis

import (
	"math"
	"testing"
	"time"

	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if r := Pearson(x, x); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %f", r)
	}
	y := []float64{5, 4, 3, 2, 1}
	if r := Pearson(x, y); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %f", r)
	}
	if r := Pearson(x, []float64{2, 2, 2, 2, 2}); r != 0 {
		t.Errorf("constant series correlation = %f", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Errorf("empty correlation = %f", r)
	}
	if r := Pearson(x, []float64{1, 2}); r != 0 {
		t.Errorf("length-mismatch correlation = %f", r)
	}
	// Noisy positive correlation.
	a := []float64{1, 3, 2, 5, 4, 7, 6, 9, 8, 11}
	b := []float64{2, 2, 3, 6, 5, 6, 7, 8, 9, 10}
	if r := Pearson(a, b); r < 0.8 {
		t.Errorf("noisy correlation = %f", r)
	}
}

func makeTL(rounds int) *timeline.Timeline {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	return timeline.New(start, start.Add(time.Duration(rounds-1)*2*time.Hour), 2*time.Hour)
}

func TestOutageHours(t *testing.T) {
	tl := makeTL(48) // 4 days
	d := &signals.Detection{Flags: make([]signals.Kind, 48)}
	// 6 rounds on day 1 = 12 hours.
	for r := 12; r < 18; r++ {
		d.Flags[r] = signals.SignalIPS
	}
	daily := OutageHoursPerDay(d, tl)
	if daily[0] != 0 || daily[1] != 12 {
		t.Errorf("daily = %v", daily[:3])
	}
	monthly := OutageHoursPerMonth(d, tl)
	if monthly[0] != 12 {
		t.Errorf("monthly = %v", monthly)
	}
}

func TestSeriesHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := MeanOf(a, b); got[0] != 2.5 || got[2] != 4.5 {
		t.Errorf("MeanOf = %v", got)
	}
	if got := MaxOf([]float64{1, 9, 2}, []float64{3, 1, 5}); got[0] != 3 || got[1] != 9 || got[2] != 5 {
		t.Errorf("MaxOf = %v", got)
	}
}

func TestYearSlice(t *testing.T) {
	start := time.Date(2023, 12, 30, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.AddDate(0, 0, 5), 24*time.Hour)
	daily := []float64{1, 2, 3, 4, 5, 6}
	vals, days := YearSlice(daily, tl, 2024)
	if len(vals) != 4 {
		t.Fatalf("2024 days = %d, want 4", len(vals))
	}
	if vals[0] != 3 || days[0].Year() != 2024 {
		t.Errorf("first 2024 value = %f at %v", vals[0], days[0])
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	if c.Median() != 3 {
		t.Errorf("median = %f", c.Median())
	}
	if got := c.At(2); got != 0.4 {
		t.Errorf("At(2) = %f", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %f", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %f", got)
	}
	empty := NewCDF(nil)
	if empty.Median() != 0 || empty.At(1) != 0 {
		t.Error("empty CDF should be zero")
	}
}

func TestMedianU32(t *testing.T) {
	if got := MedianU32([]uint32{500, 50, 100}); got != 100 {
		t.Errorf("median = %f", got)
	}
	if MedianU32(nil) != 0 {
		t.Error("empty median")
	}
}

func TestSNR(t *testing.T) {
	stable := SNR([]float64{100, 100, 101, 99, 100})
	noisy := SNR([]float64{100, 20, 150, 10, 120})
	if stable <= noisy {
		t.Errorf("stable SNR %f should beat noisy %f", stable, noisy)
	}
	if SNR([]float64{5, 5, 5}) != 1e6 {
		t.Error("constant series should cap at 1e6")
	}
	if SNR(nil) != 0 || SNR([]float64{0, 0}) != 0 {
		t.Error("degenerate SNR")
	}
}

func TestChurn(t *testing.T) {
	blkA := netmodel.MustParseBlock("10.0.0.0/24") // stays in Kherson
	blkB := netmodel.MustParseBlock("10.0.1.0/24") // Kherson -> Kyiv
	blkC := netmodel.MustParseBlock("10.0.2.0/24") // Kherson -> US
	entry := func(b netmodel.BlockID, cc string, r netmodel.Region) geodb.Entry {
		return geodb.Entry{Prefix: netmodel.Prefix{Base: b.First(), Bits: 24}, Country: cc, Region: r, RadiusKM: 100}
	}
	before := geodb.NewSnapshot([]geodb.Entry{
		entry(blkA, "UA", netmodel.Kherson),
		entry(blkB, "UA", netmodel.Kherson),
		entry(blkC, "UA", netmodel.Kherson),
	})
	after := geodb.NewSnapshot([]geodb.Entry{
		entry(blkA, "UA", netmodel.Kherson),
		entry(blkB, "UA", netmodel.Kyiv),
		entry(blkC, "US", netmodel.RegionNone),
	})
	rep := Churn(before, after, []netmodel.BlockID{blkA, blkB, blkC})
	if got := rep.PerRegionChange[netmodel.Kherson]; math.Abs(got-(-2.0/3)) > 1e-9 {
		t.Errorf("Kherson change = %f, want -0.67", got)
	}
	if rep.MovedIntra != 256 {
		t.Errorf("MovedIntra = %d", rep.MovedIntra)
	}
	if rep.MovedAbroad["US"] != 256 {
		t.Errorf("MovedAbroad = %v", rep.MovedAbroad)
	}
	if rep.TotalMoved != 512 {
		t.Errorf("TotalMoved = %d", rep.TotalMoved)
	}
}

func TestDailyStartCountsAndDisjointDays(t *testing.T) {
	tl := makeTL(48)
	outages := []signals.Outage{{Start: 0, End: 3}, {Start: 13, End: 15}, {Start: 14, End: 20}}
	counts := DailyStartCounts(outages, tl)
	if counts[0] != 1 || counts[1] != 2 {
		t.Errorf("counts = %v", counts[:2])
	}

	d := &signals.Detection{Flags: make([]signals.Kind, 48)}
	d.Flags[2] = signals.SignalIPS
	d.Flags[30] = signals.SignalBGP
	ips := FlagDays(d, tl, signals.SignalIPS)
	bgp := FlagDays(d, tl, signals.SignalBGP)
	if !ips[0] || len(ips) != 1 {
		t.Errorf("ips days = %v", ips)
	}
	onlyA, onlyB := DisjointDays(ips, bgp)
	if onlyA != 1 || onlyB != 1 {
		t.Errorf("disjoint = %d/%d", onlyA, onlyB)
	}
}
