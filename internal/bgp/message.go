// Package bgp implements the routing substrate of the monitor: a BGP-4 wire
// codec (RFC 4271, with 4-octet AS numbers per RFC 6793), a route collector
// that accepts peer sessions over TCP and maintains a RIB, and a simulated
// speaker that announces/withdraws prefixes as scripted war events unfold.
//
// The BGP★ outage signal is derived from RIB snapshots: the number of routed
// /24 blocks per origin AS (and per region), exactly as the paper derives it
// from RouteViews dumps.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"countrymon/internal/netmodel"
)

// Message types (RFC 4271 §4.1).
const (
	typeOpen         = 1
	typeUpdate       = 2
	typeNotification = 3
	typeKeepalive    = 4
)

// Wire size limits.
const (
	headerLen  = 19
	maxMsgLen  = 4096
	markerLen  = 16
	bgpVersion = 4
)

// Capability codes used in OPEN.
const (
	capMultiprotocol = 1
	capFourOctetAS   = 65
)

// Origin attribute values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// Path attribute type codes.
const (
	attrOrigin  = 1
	attrASPath  = 2
	attrNextHop = 3
)

// AS_PATH segment types.
const (
	asSet      = 1
	asSequence = 2
)

// Errors surfaced by the codec.
var (
	ErrShortMessage = errors.New("bgp: short message")
	ErrBadMarker    = errors.New("bgp: bad marker")
	ErrMsgTooLong   = errors.New("bgp: message exceeds 4096 bytes")
	ErrBadType      = errors.New("bgp: unknown message type")
)

// Open is a BGP OPEN message. Four-octet AS numbers are always advertised
// via the RFC 6793 capability; ASNs above 65535 are sent as AS_TRANS in the
// two-octet field.
type Open struct {
	ASN      netmodel.ASN
	HoldTime uint16
	BGPID    netmodel.Addr
}

// Update is a BGP UPDATE message: withdrawn prefixes and/or announced
// prefixes sharing one set of path attributes.
type Update struct {
	Withdrawn []netmodel.Prefix
	Origin    uint8
	ASPath    []netmodel.ASN
	NextHop   netmodel.Addr
	NLRI      []netmodel.Prefix
}

// OriginASN returns the last AS in the path (the route's origin), or 0.
func (u *Update) OriginASN() netmodel.ASN {
	if len(u.ASPath) == 0 {
		return 0
	}
	return u.ASPath[len(u.ASPath)-1]
}

// Notification is a BGP NOTIFICATION message.
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code %d subcode %d", n.Code, n.Subcode)
}

// Keepalive is a BGP KEEPALIVE message.
type Keepalive struct{}

// asTrans is the 2-octet placeholder for 4-octet ASNs (RFC 6793).
const asTrans = 23456

func putHeader(b []byte, msgType uint8) {
	for i := 0; i < markerLen; i++ {
		b[i] = 0xff
	}
	binary.BigEndian.PutUint16(b[16:], uint16(len(b)))
	b[18] = msgType
}

// MarshalOpen encodes an OPEN message.
func MarshalOpen(o Open) []byte {
	// Capabilities: 4-octet AS (code 65, 4 bytes) inside one optional
	// parameter of type 2.
	caps := []byte{capFourOctetAS, 4, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(caps[2:], uint32(o.ASN))
	optParams := append([]byte{2, byte(len(caps))}, caps...)

	total := headerLen + 10 + len(optParams)
	b := make([]byte, total)
	p := b[headerLen:]
	p[0] = bgpVersion
	twoOctet := uint16(asTrans)
	if o.ASN <= 0xffff {
		twoOctet = uint16(o.ASN)
	}
	binary.BigEndian.PutUint16(p[1:], twoOctet)
	binary.BigEndian.PutUint16(p[3:], o.HoldTime)
	id := o.BGPID.Bytes()
	copy(p[5:9], id[:])
	p[9] = byte(len(optParams))
	copy(p[10:], optParams)
	putHeader(b, typeOpen)
	return b
}

func parseOpen(p []byte) (Open, error) {
	if len(p) < 10 {
		return Open{}, ErrShortMessage
	}
	if p[0] != bgpVersion {
		return Open{}, fmt.Errorf("bgp: unsupported version %d", p[0])
	}
	o := Open{
		ASN:      netmodel.ASN(binary.BigEndian.Uint16(p[1:])),
		HoldTime: binary.BigEndian.Uint16(p[3:]),
		BGPID:    netmodel.AddrFromBytes([4]byte(p[5:9])),
	}
	optLen := int(p[9])
	if len(p) < 10+optLen {
		return Open{}, ErrShortMessage
	}
	opts := p[10 : 10+optLen]
	for len(opts) >= 2 {
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return Open{}, ErrShortMessage
		}
		body := opts[2 : 2+plen]
		if ptype == 2 { // capabilities
			for len(body) >= 2 {
				code, clen := body[0], int(body[1])
				if len(body) < 2+clen {
					return Open{}, ErrShortMessage
				}
				if code == capFourOctetAS && clen == 4 {
					o.ASN = netmodel.ASN(binary.BigEndian.Uint32(body[2:6]))
				}
				body = body[2+clen:]
			}
		}
		opts = opts[2+plen:]
	}
	return o, nil
}

// MarshalKeepalive encodes a KEEPALIVE message.
func MarshalKeepalive() []byte {
	b := make([]byte, headerLen)
	putHeader(b, typeKeepalive)
	return b
}

// MarshalNotification encodes a NOTIFICATION message.
func MarshalNotification(n Notification) []byte {
	b := make([]byte, headerLen+2+len(n.Data))
	b[headerLen] = n.Code
	b[headerLen+1] = n.Subcode
	copy(b[headerLen+2:], n.Data)
	putHeader(b, typeNotification)
	return b
}

func prefixWireLen(p netmodel.Prefix) int { return 1 + (int(p.Bits)+7)/8 }

func putPrefix(b []byte, p netmodel.Prefix) int {
	b[0] = p.Bits
	nb := (int(p.Bits) + 7) / 8
	base := p.Base.Bytes()
	copy(b[1:1+nb], base[:nb])
	return 1 + nb
}

func getPrefix(b []byte) (netmodel.Prefix, int, error) {
	if len(b) < 1 {
		return netmodel.Prefix{}, 0, ErrShortMessage
	}
	bits := b[0]
	if bits > 32 {
		return netmodel.Prefix{}, 0, fmt.Errorf("bgp: prefix length %d", bits)
	}
	nb := (int(bits) + 7) / 8
	if len(b) < 1+nb {
		return netmodel.Prefix{}, 0, ErrShortMessage
	}
	var raw [4]byte
	copy(raw[:], b[1:1+nb])
	p, err := netmodel.NewPrefix(netmodel.AddrFromBytes(raw), bits)
	return p, 1 + nb, err
}

// MarshalUpdate encodes an UPDATE message with 4-octet AS_PATH encoding.
func MarshalUpdate(u Update) ([]byte, error) {
	var wd []byte
	for _, p := range u.Withdrawn {
		buf := make([]byte, prefixWireLen(p))
		putPrefix(buf, p)
		wd = append(wd, buf...)
	}

	var attrs []byte
	if len(u.NLRI) > 0 {
		var err error
		attrs, err = marshalPathAttrs(u.Origin, u.ASPath, u.NextHop)
		if err != nil {
			return nil, err
		}
	}

	var nlri []byte
	for _, p := range u.NLRI {
		buf := make([]byte, prefixWireLen(p))
		putPrefix(buf, p)
		nlri = append(nlri, buf...)
	}

	total := headerLen + 2 + len(wd) + 2 + len(attrs) + len(nlri)
	if total > maxMsgLen {
		return nil, ErrMsgTooLong
	}
	b := make([]byte, total)
	p := b[headerLen:]
	binary.BigEndian.PutUint16(p[0:], uint16(len(wd)))
	copy(p[2:], wd)
	off := 2 + len(wd)
	binary.BigEndian.PutUint16(p[off:], uint16(len(attrs)))
	copy(p[off+2:], attrs)
	copy(p[off+2+len(attrs):], nlri)
	putHeader(b, typeUpdate)
	return b, nil
}

func parseUpdate(p []byte) (Update, error) {
	var u Update
	if len(p) < 4 {
		return u, ErrShortMessage
	}
	wdLen := int(binary.BigEndian.Uint16(p[0:]))
	if len(p) < 2+wdLen+2 {
		return u, ErrShortMessage
	}
	wd := p[2 : 2+wdLen]
	for len(wd) > 0 {
		pre, n, err := getPrefix(wd)
		if err != nil {
			return u, err
		}
		u.Withdrawn = append(u.Withdrawn, pre)
		wd = wd[n:]
	}
	off := 2 + wdLen
	attrLen := int(binary.BigEndian.Uint16(p[off:]))
	if len(p) < off+2+attrLen {
		return u, ErrShortMessage
	}
	if err := parsePathAttrs(p[off+2:off+2+attrLen], &u.Origin, &u.ASPath, &u.NextHop); err != nil {
		return u, err
	}
	nlri := p[off+2+attrLen:]
	for len(nlri) > 0 {
		pre, n, err := getPrefix(nlri)
		if err != nil {
			return u, err
		}
		u.NLRI = append(u.NLRI, pre)
		nlri = nlri[n:]
	}
	if len(u.NLRI) > 0 && (len(u.ASPath) == 0 || u.NextHop == 0) {
		return u, errors.New("bgp: announcement missing mandatory attributes")
	}
	return u, nil
}

// marshalPathAttrs encodes the mandatory path attributes (ORIGIN, AS_PATH
// with 4-octet AS numbers, NEXT_HOP) as used by both UPDATE messages and
// TABLE_DUMP_V2 RIB entries.
func marshalPathAttrs(origin uint8, asPath []netmodel.ASN, nextHop netmodel.Addr) ([]byte, error) {
	var attrs []byte
	attrs = append(attrs, 0x40, attrOrigin, 1, origin)
	if len(asPath) > 255 {
		return nil, errors.New("bgp: AS path too long")
	}
	seg := make([]byte, 2+4*len(asPath))
	seg[0] = asSequence
	seg[1] = byte(len(asPath))
	for i, as := range asPath {
		binary.BigEndian.PutUint32(seg[2+4*i:], uint32(as))
	}
	if len(seg) > 255 {
		attrs = append(attrs, 0x50, attrASPath, byte(len(seg)>>8), byte(len(seg)))
	} else {
		attrs = append(attrs, 0x40, attrASPath, byte(len(seg)))
	}
	attrs = append(attrs, seg...)
	nh := nextHop.Bytes()
	attrs = append(attrs, 0x40, attrNextHop, 4)
	attrs = append(attrs, nh[:]...)
	return attrs, nil
}

// parsePathAttrs decodes a path-attribute sequence into the given fields.
func parsePathAttrs(attrs []byte, origin *uint8, asPath *[]netmodel.ASN, nextHop *netmodel.Addr) error {
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return ErrShortMessage
		}
		flags, code := attrs[0], attrs[1]
		var alen, hdr int
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return ErrShortMessage
			}
			alen, hdr = int(binary.BigEndian.Uint16(attrs[2:])), 4
		} else {
			alen, hdr = int(attrs[2]), 3
		}
		if len(attrs) < hdr+alen {
			return ErrShortMessage
		}
		body := attrs[hdr : hdr+alen]
		switch code {
		case attrOrigin:
			if alen != 1 {
				return errors.New("bgp: bad ORIGIN length")
			}
			*origin = body[0]
		case attrASPath:
			for len(body) > 0 {
				if len(body) < 2 {
					return ErrShortMessage
				}
				segType, count := body[0], int(body[1])
				need := 2 + 4*count
				if len(body) < need {
					return ErrShortMessage
				}
				if segType != asSequence && segType != asSet {
					return fmt.Errorf("bgp: AS_PATH segment type %d", segType)
				}
				for i := 0; i < count; i++ {
					*asPath = append(*asPath, netmodel.ASN(binary.BigEndian.Uint32(body[2+4*i:])))
				}
				body = body[need:]
			}
		case attrNextHop:
			if alen != 4 {
				return errors.New("bgp: bad NEXT_HOP length")
			}
			*nextHop = netmodel.AddrFromBytes([4]byte(body))
		}
		attrs = attrs[hdr+alen:]
	}
	return nil
}

// ParseMessage decodes one complete BGP message (header included) and
// returns *Open, *Update, *Notification or *Keepalive.
func ParseMessage(b []byte) (interface{}, error) {
	if len(b) < headerLen {
		return nil, ErrShortMessage
	}
	for i := 0; i < markerLen; i++ {
		if b[i] != 0xff {
			return nil, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:]))
	if length < headerLen || length > maxMsgLen || length > len(b) {
		return nil, ErrShortMessage
	}
	body := b[headerLen:length]
	switch b[18] {
	case typeOpen:
		o, err := parseOpen(body)
		if err != nil {
			return nil, err
		}
		return &o, nil
	case typeUpdate:
		u, err := parseUpdate(body)
		if err != nil {
			return nil, err
		}
		return &u, nil
	case typeNotification:
		if len(body) < 2 {
			return nil, ErrShortMessage
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: body[2:]}, nil
	case typeKeepalive:
		if length != headerLen {
			return nil, errors.New("bgp: keepalive with body")
		}
		return &Keepalive{}, nil
	}
	return nil, ErrBadType
}

// MessageLength peeks the total length of the message starting at b, which
// must contain at least the 19-byte header.
func MessageLength(b []byte) (int, error) {
	if len(b) < headerLen {
		return 0, ErrShortMessage
	}
	n := int(binary.BigEndian.Uint16(b[16:]))
	if n < headerLen || n > maxMsgLen {
		return 0, fmt.Errorf("bgp: bad message length %d", n)
	}
	return n, nil
}
