package bgp

import (
	"reflect"
	"testing"

	"countrymon/internal/netmodel"
)

func TestOpenRoundTrip(t *testing.T) {
	for _, asn := range []netmodel.ASN{25482, 211171, 215654, 65000} {
		o := Open{ASN: asn, HoldTime: 90, BGPID: netmodel.MustParseAddr("192.0.2.1")}
		b := MarshalOpen(o)
		msg, err := ParseMessage(b)
		if err != nil {
			t.Fatalf("ASN %v: %v", asn, err)
		}
		got, ok := msg.(*Open)
		if !ok {
			t.Fatalf("got %T", msg)
		}
		if got.ASN != asn {
			t.Errorf("ASN = %v, want %v (4-octet capability must carry large ASNs)", got.ASN, asn)
		}
		if got.HoldTime != 90 || got.BGPID != o.BGPID {
			t.Errorf("open mismatch: %+v", got)
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Withdrawn: []netmodel.Prefix{netmodel.MustParsePrefix("193.151.240.0/23")},
		Origin:    OriginIGP,
		ASPath:    []netmodel.ASN{64512, 20485, 211171},
		NextHop:   netmodel.MustParseAddr("10.0.0.1"),
		NLRI: []netmodel.Prefix{
			netmodel.MustParsePrefix("91.198.4.0/24"),
			netmodel.MustParsePrefix("176.8.0.0/19"),
			netmodel.MustParsePrefix("0.0.0.0/0"),
			netmodel.MustParsePrefix("10.1.2.3/32"),
		},
	}
	b, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ParseMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*Update)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Errorf("withdrawn = %v", got.Withdrawn)
	}
	if !reflect.DeepEqual(got.ASPath, u.ASPath) {
		t.Errorf("aspath = %v", got.ASPath)
	}
	if got.NextHop != u.NextHop || got.Origin != u.Origin {
		t.Errorf("attrs mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.NLRI, u.NLRI) {
		t.Errorf("nlri = %v, want %v", got.NLRI, u.NLRI)
	}
	if got.OriginASN() != 211171 {
		t.Errorf("OriginASN = %v", got.OriginASN())
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := Update{Withdrawn: []netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/24")}}
	b, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ParseMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Update)
	if len(got.NLRI) != 0 || len(got.Withdrawn) != 1 {
		t.Errorf("withdraw-only mismatch: %+v", got)
	}
}

func TestUpdateMissingMandatoryAttrs(t *testing.T) {
	// Hand-roll an update with NLRI but no attributes.
	body := []byte{0, 0, 0, 0, 24, 10, 0, 0}
	b := make([]byte, headerLen+len(body))
	copy(b[headerLen:], body)
	putHeader(b, typeUpdate)
	if _, err := ParseMessage(b); err == nil {
		t.Error("announcement without AS_PATH/NEXT_HOP accepted")
	}
}

func TestKeepaliveNotification(t *testing.T) {
	msg, err := ParseMessage(MarshalKeepalive())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*Keepalive); !ok {
		t.Fatalf("got %T", msg)
	}
	n := Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	msg, err = ParseMessage(MarshalNotification(n))
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Notification)
	if got.Code != 6 || got.Subcode != 2 || string(got.Data) != "bye" {
		t.Errorf("notification = %+v", got)
	}
	if got.Error() == "" {
		t.Error("empty error text")
	}
}

func TestParseMessageRejects(t *testing.T) {
	if _, err := ParseMessage([]byte{1, 2, 3}); err == nil {
		t.Error("short message accepted")
	}
	b := MarshalKeepalive()
	b[0] = 0 // break marker
	if _, err := ParseMessage(b); err == nil {
		t.Error("bad marker accepted")
	}
	b2 := MarshalKeepalive()
	b2[18] = 99
	if _, err := ParseMessage(b2); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestPrefixWireEncoding(t *testing.T) {
	// /19 should use 3 prefix bytes, /8 one, /0 zero.
	cases := map[string]int{
		"0.0.0.0/0":     1,
		"10.0.0.0/8":    2,
		"176.8.0.0/19":  4,
		"91.198.4.0/24": 4,
		"1.2.3.4/32":    5,
	}
	for s, wire := range cases {
		p := netmodel.MustParsePrefix(s)
		if got := prefixWireLen(p); got != wire {
			t.Errorf("prefixWireLen(%s) = %d, want %d", s, got, wire)
		}
		buf := make([]byte, wire)
		putPrefix(buf, p)
		back, n, err := getPrefix(buf)
		if err != nil || n != wire || back != p {
			t.Errorf("round trip %s: %v n=%d err=%v", s, back, n, err)
		}
	}
}

func TestGetPrefixRejects(t *testing.T) {
	if _, _, err := getPrefix([]byte{33}); err == nil {
		t.Error("prefix length 33 accepted")
	}
	if _, _, err := getPrefix([]byte{24, 1}); err == nil {
		t.Error("truncated prefix accepted")
	}
	if _, _, err := getPrefix(nil); err == nil {
		t.Error("empty prefix accepted")
	}
}

func TestLongASPathExtendedLength(t *testing.T) {
	path := make([]netmodel.ASN, 100) // 402-byte segment -> extended length
	for i := range path {
		path[i] = netmodel.ASN(64512 + i)
	}
	u := Update{
		Origin: OriginIGP, ASPath: path,
		NextHop: netmodel.MustParseAddr("10.0.0.1"),
		NLRI:    []netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/24")},
	}
	b, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ParseMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(*Update).ASPath; !reflect.DeepEqual(got, path) {
		t.Error("long AS path corrupted")
	}
}
