package bgp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"countrymon/internal/netmodel"
)

// MRT (RFC 6396) TABLE_DUMP_V2 reader/writer — the on-disk format of the
// RouteViews RIB dumps the paper consumes every two hours (§3.2). A dump is
// a PEER_INDEX_TABLE record followed by one RIB_IPV4_UNICAST record per
// prefix; AS numbers inside TABLE_DUMP_V2 path attributes are always four
// octets.

// MRT record types and subtypes used here.
const (
	mrtTypeTableDumpV2 = 13

	mrtSubtypePeerIndexTable = 1
	mrtSubtypeRIBIPv4Unicast = 2
)

// mrtHeaderLen is the fixed MRT record header size.
const mrtHeaderLen = 12

// ErrMRTFormat reports malformed MRT input.
var ErrMRTFormat = errors.New("bgp: malformed MRT data")

// MRTPeer describes one collector peer in the index table.
type MRTPeer struct {
	BGPID netmodel.Addr
	Addr  netmodel.Addr
	ASN   netmodel.ASN
}

// MRTDump is a decoded TABLE_DUMP_V2 snapshot.
type MRTDump struct {
	Timestamp time.Time
	Collector netmodel.Addr
	ViewName  string
	Peers     []MRTPeer
	Routes    []Route
}

func writeMRTRecord(w io.Writer, ts time.Time, subtype uint16, body []byte) error {
	var hdr [mrtHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(ts.Unix()))
	binary.BigEndian.PutUint16(hdr[4:], mrtTypeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// WriteMRT serializes the RIB as a TABLE_DUMP_V2 snapshot taken at ts, as a
// single-peer collector view (RouteViews dumps carry one entry per peer;
// the monitor's signal derivation only needs one).
func (r *RIB) WriteMRT(w io.Writer, ts time.Time, collector netmodel.Addr, peer MRTPeer, viewName string) error {
	bw := bufio.NewWriter(w)

	// PEER_INDEX_TABLE.
	var idx []byte
	cb := collector.Bytes()
	idx = append(idx, cb[:]...)
	idx = append(idx, byte(len(viewName)>>8), byte(len(viewName)))
	idx = append(idx, viewName...)
	idx = append(idx, 0, 1) // one peer
	// Peer type 0x02: IPv4 address, 4-octet AS.
	idx = append(idx, 0x02)
	pb := peer.BGPID.Bytes()
	idx = append(idx, pb[:]...)
	pa := peer.Addr.Bytes()
	idx = append(idx, pa[:]...)
	var asn [4]byte
	binary.BigEndian.PutUint32(asn[:], uint32(peer.ASN))
	idx = append(idx, asn[:]...)
	if err := writeMRTRecord(bw, ts, mrtSubtypePeerIndexTable, idx); err != nil {
		return err
	}

	// RIB_IPV4_UNICAST per route, sequence-numbered.
	for seq, rt := range r.Routes() {
		attrs, err := marshalPathAttrs(rt.Origin, rt.Path, rt.NextHop)
		if err != nil {
			return err
		}
		body := make([]byte, 4, 4+prefixWireLen(rt.Prefix)+2+8+len(attrs))
		binary.BigEndian.PutUint32(body, uint32(seq))
		pbuf := make([]byte, prefixWireLen(rt.Prefix))
		putPrefix(pbuf, rt.Prefix)
		body = append(body, pbuf...)
		body = append(body, 0, 1) // entry count: 1
		var entry [8]byte
		binary.BigEndian.PutUint16(entry[0:], 0) // peer index
		binary.BigEndian.PutUint32(entry[2:], uint32(ts.Unix()))
		binary.BigEndian.PutUint16(entry[6:], uint16(len(attrs)))
		body = append(body, entry[:]...)
		body = append(body, attrs...)
		if err := writeMRTRecord(bw, ts, mrtSubtypeRIBIPv4Unicast, body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMRT parses a TABLE_DUMP_V2 snapshot produced by WriteMRT (or any
// single-view IPv4-unicast dump with 4-octet-AS peers).
func ReadMRT(r io.Reader) (*MRTDump, error) {
	br := bufio.NewReader(r)
	dump := &MRTDump{}
	for {
		var hdr [mrtHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		ts := time.Unix(int64(binary.BigEndian.Uint32(hdr[0:])), 0).UTC()
		typ := binary.BigEndian.Uint16(hdr[4:])
		sub := binary.BigEndian.Uint16(hdr[6:])
		length := binary.BigEndian.Uint32(hdr[8:])
		if length > 1<<24 {
			return nil, fmt.Errorf("%w: record length %d", ErrMRTFormat, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, err
		}
		if typ != mrtTypeTableDumpV2 {
			continue // skip foreign record types
		}
		dump.Timestamp = ts
		switch sub {
		case mrtSubtypePeerIndexTable:
			if err := dump.parsePeerIndex(body); err != nil {
				return nil, err
			}
		case mrtSubtypeRIBIPv4Unicast:
			if err := dump.parseRIBEntry(body); err != nil {
				return nil, err
			}
		}
	}
	return dump, nil
}

func (d *MRTDump) parsePeerIndex(b []byte) error {
	if len(b) < 8 {
		return ErrMRTFormat
	}
	d.Collector = netmodel.AddrFromBytes([4]byte(b[0:4]))
	nameLen := int(binary.BigEndian.Uint16(b[4:]))
	if len(b) < 6+nameLen+2 {
		return ErrMRTFormat
	}
	d.ViewName = string(b[6 : 6+nameLen])
	off := 6 + nameLen
	peerCount := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < peerCount; i++ {
		if len(b) < off+1 {
			return ErrMRTFormat
		}
		ptype := b[off]
		off++
		if ptype&0x01 != 0 {
			return fmt.Errorf("%w: IPv6 peers unsupported", ErrMRTFormat)
		}
		addrLen := 4
		asLen := 2
		if ptype&0x02 != 0 {
			asLen = 4
		}
		need := 4 + addrLen + asLen
		if len(b) < off+need {
			return ErrMRTFormat
		}
		p := MRTPeer{
			BGPID: netmodel.AddrFromBytes([4]byte(b[off : off+4])),
			Addr:  netmodel.AddrFromBytes([4]byte(b[off+4 : off+8])),
		}
		if asLen == 4 {
			p.ASN = netmodel.ASN(binary.BigEndian.Uint32(b[off+8:]))
		} else {
			p.ASN = netmodel.ASN(binary.BigEndian.Uint16(b[off+8:]))
		}
		d.Peers = append(d.Peers, p)
		off += need
	}
	return nil
}

func (d *MRTDump) parseRIBEntry(b []byte) error {
	if len(b) < 5 {
		return ErrMRTFormat
	}
	// sequence number: b[0:4] (unused beyond ordering)
	prefix, n, err := getPrefix(b[4:])
	if err != nil {
		return err
	}
	off := 4 + n
	if len(b) < off+2 {
		return ErrMRTFormat
	}
	entries := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < entries; i++ {
		if len(b) < off+8 {
			return ErrMRTFormat
		}
		attrLen := int(binary.BigEndian.Uint16(b[off+6:]))
		off += 8
		if len(b) < off+attrLen {
			return ErrMRTFormat
		}
		rt := Route{Prefix: prefix}
		if err := parsePathAttrs(b[off:off+attrLen], &rt.Origin, &rt.Path, &rt.NextHop); err != nil {
			return err
		}
		off += attrLen
		if i == 0 { // first peer's view suffices for the monitor
			d.Routes = append(d.Routes, rt)
		}
	}
	return nil
}

// RIB reconstructs a RIB from the dump.
func (d *MRTDump) RIB() *RIB {
	r := NewRIB()
	for _, rt := range d.Routes {
		r.Announce(rt)
	}
	return r
}
