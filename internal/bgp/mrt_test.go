package bgp

import (
	"bytes"
	"testing"
	"time"

	"countrymon/internal/netmodel"
)

func sampleRIB() *RIB {
	rib := NewRIB()
	rib.Announce(Route{
		Prefix: netmodel.MustParsePrefix("193.151.240.0/23"),
		Path:   []netmodel.ASN{64512, 25482}, NextHop: netmodel.MustParseAddr("192.0.2.1"),
		Origin: OriginIGP,
	})
	rib.Announce(Route{
		Prefix: netmodel.MustParsePrefix("176.8.0.0/19"),
		Path:   []netmodel.ASN{64512, 20485, 15895}, NextHop: netmodel.MustParseAddr("192.0.2.1"),
		Origin: OriginIGP,
	})
	rib.Announce(Route{
		Prefix: netmodel.MustParsePrefix("91.198.4.0/24"),
		Path:   []netmodel.ASN{64512, 211171}, NextHop: netmodel.MustParseAddr("192.0.2.1"),
		Origin: OriginIncomplete,
	})
	return rib
}

func TestMRTRoundTrip(t *testing.T) {
	rib := sampleRIB()
	ts := time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC)
	peer := MRTPeer{BGPID: netmodel.MustParseAddr("192.0.2.1"), Addr: netmodel.MustParseAddr("192.0.2.1"), ASN: 64512}
	var buf bytes.Buffer
	if err := rib.WriteMRT(&buf, ts, netmodel.MustParseAddr("192.0.2.100"), peer, "countrymon"); err != nil {
		t.Fatal(err)
	}

	dump, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !dump.Timestamp.Equal(ts) {
		t.Errorf("timestamp = %v", dump.Timestamp)
	}
	if dump.ViewName != "countrymon" {
		t.Errorf("view = %q", dump.ViewName)
	}
	if len(dump.Peers) != 1 || dump.Peers[0].ASN != 64512 {
		t.Errorf("peers = %+v", dump.Peers)
	}
	if len(dump.Routes) != rib.Len() {
		t.Fatalf("routes = %d, want %d", len(dump.Routes), rib.Len())
	}

	back := dump.RIB()
	for _, rt := range rib.Routes() {
		got, ok := back.Lookup(rt.Prefix)
		if !ok {
			t.Fatalf("route %v lost", rt.Prefix)
		}
		if got.OriginASN() != rt.OriginASN() || got.NextHop != rt.NextHop || got.Origin != rt.Origin {
			t.Errorf("route %v mismatch: %+v vs %+v", rt.Prefix, got, rt)
		}
		if len(got.Path) != len(rt.Path) {
			t.Errorf("route %v path length %d vs %d", rt.Prefix, len(got.Path), len(rt.Path))
		}
	}
	// Snapshot semantics survive the dump.
	snap := back.Snapshot(map[netmodel.ASN]bool{20485: true})
	if snap.RoutedBlocks(15895) != 32 {
		t.Errorf("AS15895 blocks = %d", snap.RoutedBlocks(15895))
	}
	if !snap.Rerouted[netmodel.MustParseBlock("176.8.1.0/24")] {
		t.Error("rerouting flag lost through MRT")
	}
}

func TestMRTLargeASNs(t *testing.T) {
	// TABLE_DUMP_V2 carries 4-octet ASNs; 211171 and 215654 must survive.
	rib := NewRIB()
	rib.Announce(Route{
		Prefix: netmodel.MustParsePrefix("10.0.0.0/24"),
		Path:   []netmodel.ASN{215654, 211171}, NextHop: 1, Origin: OriginIGP,
	})
	var buf bytes.Buffer
	peer := MRTPeer{ASN: 215654}
	if err := rib.WriteMRT(&buf, time.Unix(0, 0), 0, peer, "v"); err != nil {
		t.Fatal(err)
	}
	dump, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Peers[0].ASN != 215654 {
		t.Errorf("peer ASN = %v", dump.Peers[0].ASN)
	}
	if got := dump.Routes[0].OriginASN(); got != 211171 {
		t.Errorf("origin = %v", got)
	}
}

func TestMRTEmptyRIB(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRIB().WriteMRT(&buf, time.Unix(0, 0), 0, MRTPeer{}, ""); err != nil {
		t.Fatal(err)
	}
	dump, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Routes) != 0 || len(dump.Peers) != 1 {
		t.Errorf("dump = %+v", dump)
	}
}

func TestReadMRTRejectsGarbage(t *testing.T) {
	if _, err := ReadMRT(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid header, truncated body.
	b := make([]byte, 12)
	b[5] = 13
	b[7] = 1
	b[11] = 50 // claims 50 bytes of body, none present
	if _, err := ReadMRT(bytes.NewReader(b)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestReadMRTSkipsForeignTypes(t *testing.T) {
	// A record of another MRT type must be skipped, then parsing resumes.
	var buf bytes.Buffer
	hdr := make([]byte, 12)
	hdr[5] = 16 // BGP4MP
	hdr[11] = 2
	buf.Write(hdr)
	buf.Write([]byte{0xaa, 0xbb})
	rib := sampleRIB()
	if err := rib.WriteMRT(&buf, time.Unix(100, 0), 0, MRTPeer{ASN: 1}, "v"); err != nil {
		t.Fatal(err)
	}
	dump, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Routes) != rib.Len() {
		t.Errorf("routes = %d", len(dump.Routes))
	}
}
