package bgp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"countrymon/internal/netmodel"
)

// randomUpdate generates structurally valid updates for round-trip checks.
func randomUpdate(rng *rand.Rand) Update {
	u := Update{}
	nWd := rng.Intn(4)
	for i := 0; i < nWd; i++ {
		u.Withdrawn = append(u.Withdrawn, randomPrefix(rng))
	}
	if rng.Intn(3) > 0 { // announcements present
		nPath := 1 + rng.Intn(6)
		for i := 0; i < nPath; i++ {
			u.ASPath = append(u.ASPath, netmodel.ASN(rng.Uint32()))
		}
		u.Origin = uint8(rng.Intn(3))
		u.NextHop = netmodel.Addr(rng.Uint32() | 1)
		nNLRI := 1 + rng.Intn(5)
		for i := 0; i < nNLRI; i++ {
			u.NLRI = append(u.NLRI, randomPrefix(rng))
		}
	}
	return u
}

func randomPrefix(rng *rand.Rand) netmodel.Prefix {
	bits := uint8(rng.Intn(25) + 8) // /8../32
	return netmodel.MustNewPrefix(netmodel.Addr(rng.Uint32()), bits)
}

func TestQuickUpdateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		u := randomUpdate(rng)
		b, err := MarshalUpdate(u)
		if err != nil {
			t.Fatalf("marshal %+v: %v", u, err)
		}
		msg, err := ParseMessage(b)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		got := msg.(*Update)
		if !reflect.DeepEqual(normalize(*got), normalize(u)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, u)
		}
	}
}

// normalize maps nil and empty slices together for comparison.
func normalize(u Update) Update {
	if len(u.Withdrawn) == 0 {
		u.Withdrawn = nil
	}
	if len(u.ASPath) == 0 {
		u.ASPath = nil
	}
	if len(u.NLRI) == 0 {
		u.NLRI = nil
	}
	if len(u.NLRI) == 0 {
		u.Origin, u.NextHop = 0, 0
	}
	return u
}

func TestQuickParseMessageNeverPanics(t *testing.T) {
	// Arbitrary bytes with a valid marker+length prefix must never panic,
	// only error.
	f := func(body []byte) bool {
		b := make([]byte, 0, headerLen+len(body))
		for i := 0; i < markerLen; i++ {
			b = append(b, 0xff)
		}
		total := headerLen + len(body)
		if total > maxMsgLen {
			total = maxMsgLen
		}
		b = append(b, byte(total>>8), byte(total), 2) // UPDATE
		b = append(b, body...)
		_, err := ParseMessage(b[:min(len(b), total)])
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMRTNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, err := ReadMRT(bytes.NewReader(data))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
