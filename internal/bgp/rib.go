package bgp

import (
	"sort"
	"sync"

	"countrymon/internal/netmodel"
)

// Route is one RIB entry.
type Route struct {
	Prefix  netmodel.Prefix
	Path    []netmodel.ASN
	NextHop netmodel.Addr
	Origin  uint8
}

// OriginASN returns the route's origin AS (last path element), or 0.
func (r Route) OriginASN() netmodel.ASN {
	if len(r.Path) == 0 {
		return 0
	}
	return r.Path[len(r.Path)-1]
}

// PassesThrough reports whether the AS path traverses asn (upstream
// detection; used for the occupation rerouting analysis, §5.2).
func (r Route) PassesThrough(asn netmodel.ASN) bool {
	for _, a := range r.Path {
		if a == asn {
			return true
		}
	}
	return false
}

// RIB is a routing information base keyed by exact prefix (best-path
// selection is out of scope: the collector keeps the most recent
// announcement, which matches how RouteViews table dumps are consumed).
// It is safe for concurrent use.
type RIB struct {
	mu     sync.RWMutex
	routes map[netmodel.Prefix]Route
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{routes: make(map[netmodel.Prefix]Route)}
}

// Apply folds an UPDATE into the RIB.
func (r *RIB) Apply(u *Update) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range u.Withdrawn {
		delete(r.routes, p)
	}
	for _, p := range u.NLRI {
		r.routes[p] = Route{
			Prefix:  p,
			Path:    append([]netmodel.ASN(nil), u.ASPath...),
			NextHop: u.NextHop,
			Origin:  u.Origin,
		}
	}
}

// Announce inserts a single route.
func (r *RIB) Announce(rt Route) {
	r.mu.Lock()
	r.routes[rt.Prefix] = rt
	r.mu.Unlock()
}

// Withdraw removes a prefix.
func (r *RIB) Withdraw(p netmodel.Prefix) {
	r.mu.Lock()
	delete(r.routes, p)
	r.mu.Unlock()
}

// Len returns the number of routes.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.routes)
}

// Lookup returns the route for the exact prefix.
func (r *RIB) Lookup(p netmodel.Prefix) (Route, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rt, ok := r.routes[p]
	return rt, ok
}

// Routes returns a copy of all routes, sorted by prefix.
func (r *RIB) Routes() []Route {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Route, 0, len(r.routes))
	for _, rt := range r.routes {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Base != out[j].Prefix.Base {
			return out[i].Prefix.Base < out[j].Prefix.Base
		}
		return out[i].Prefix.Bits < out[j].Prefix.Bits
	})
	return out
}

// Snapshot summarizes the RIB the way the BGP★ signal consumes it: the set
// of routed /24 blocks with their origin AS and whether their path crosses
// any of the given "suspect" upstreams (e.g. Russian ASes).
type Snapshot struct {
	BlockOrigin map[netmodel.BlockID]netmodel.ASN
	Rerouted    map[netmodel.BlockID]bool
	PerAS       map[netmodel.ASN]int // routed /24 count per origin AS
}

// Snapshot de-aggregates every route into /24 blocks. More-specific routes
// win when prefixes overlap.
func (r *RIB) Snapshot(suspectUpstreams map[netmodel.ASN]bool) *Snapshot {
	routes := r.Routes() // sorted: shorter prefixes of same base first
	// Sort by prefix length ascending so longer (more specific) prefixes are
	// applied last and win.
	sort.SliceStable(routes, func(i, j int) bool { return routes[i].Prefix.Bits < routes[j].Prefix.Bits })
	s := &Snapshot{
		BlockOrigin: make(map[netmodel.BlockID]netmodel.ASN),
		Rerouted:    make(map[netmodel.BlockID]bool),
		PerAS:       make(map[netmodel.ASN]int),
	}
	var scratch []netmodel.BlockID
	for _, rt := range routes {
		scratch = rt.Prefix.Blocks(scratch[:0])
		rer := false
		for as := range suspectUpstreams {
			if rt.PassesThrough(as) {
				rer = true
				break
			}
		}
		for _, b := range scratch {
			s.BlockOrigin[b] = rt.OriginASN()
			s.Rerouted[b] = rer
		}
	}
	for _, asn := range s.BlockOrigin {
		s.PerAS[asn]++
	}
	return s
}

// RoutedBlocks returns the number of routed /24s originated by asn.
func (s *Snapshot) RoutedBlocks(asn netmodel.ASN) int { return s.PerAS[asn] }

// BlockRouted reports whether the /24 is covered by any route.
func (s *Snapshot) BlockRouted(b netmodel.BlockID) bool {
	_, ok := s.BlockOrigin[b]
	return ok
}
