package bgp

import (
	"testing"

	"countrymon/internal/netmodel"
)

func TestRIBApplyAndSnapshot(t *testing.T) {
	rib := NewRIB()
	rib.Apply(&Update{
		Origin: OriginIGP, ASPath: []netmodel.ASN{64512, 25482},
		NextHop: netmodel.MustParseAddr("10.0.0.1"),
		NLRI:    []netmodel.Prefix{netmodel.MustParsePrefix("193.151.240.0/23")},
	})
	rib.Apply(&Update{
		Origin: OriginIGP, ASPath: []netmodel.ASN{64512, 20485, 15895},
		NextHop: netmodel.MustParseAddr("10.0.0.1"),
		NLRI:    []netmodel.Prefix{netmodel.MustParsePrefix("176.8.0.0/22")},
	})
	if rib.Len() != 2 {
		t.Fatalf("Len = %d", rib.Len())
	}
	snap := rib.Snapshot(map[netmodel.ASN]bool{20485: true})
	if got := snap.RoutedBlocks(25482); got != 2 {
		t.Errorf("AS25482 routed /24s = %d, want 2", got)
	}
	if got := snap.RoutedBlocks(15895); got != 4 {
		t.Errorf("AS15895 routed /24s = %d, want 4", got)
	}
	if !snap.BlockRouted(netmodel.MustParseBlock("193.151.241.0/24")) {
		t.Error("block not routed")
	}
	if snap.BlockRouted(netmodel.MustParseBlock("8.8.8.0/24")) {
		t.Error("foreign block routed")
	}
	// Rerouting flag: Kyivstar path goes through suspect 20485.
	if !snap.Rerouted[netmodel.MustParseBlock("176.8.1.0/24")] {
		t.Error("rerouted flag missing")
	}
	if snap.Rerouted[netmodel.MustParseBlock("193.151.240.0/24")] {
		t.Error("clean path flagged as rerouted")
	}
}

func TestRIBWithdraw(t *testing.T) {
	rib := NewRIB()
	p := netmodel.MustParsePrefix("10.0.0.0/24")
	rib.Announce(Route{Prefix: p, Path: []netmodel.ASN{1}, NextHop: 1})
	rib.Apply(&Update{Withdrawn: []netmodel.Prefix{p}})
	if rib.Len() != 0 {
		t.Fatal("withdraw did not remove route")
	}
	snap := rib.Snapshot(nil)
	if snap.RoutedBlocks(1) != 0 {
		t.Error("withdrawn AS still has blocks")
	}
}

func TestRIBMoreSpecificWins(t *testing.T) {
	rib := NewRIB()
	rib.Announce(Route{Prefix: netmodel.MustParsePrefix("10.0.0.0/23"), Path: []netmodel.ASN{100}, NextHop: 1})
	rib.Announce(Route{Prefix: netmodel.MustParsePrefix("10.0.1.0/24"), Path: []netmodel.ASN{200}, NextHop: 1})
	snap := rib.Snapshot(nil)
	if got := snap.BlockOrigin[netmodel.MustParseBlock("10.0.1.0/24")]; got != 200 {
		t.Errorf("more-specific origin = %v, want 200", got)
	}
	if got := snap.BlockOrigin[netmodel.MustParseBlock("10.0.0.0/24")]; got != 100 {
		t.Errorf("covering origin = %v, want 100", got)
	}
	if snap.RoutedBlocks(100) != 1 || snap.RoutedBlocks(200) != 1 {
		t.Errorf("per-AS counts = %d/%d", snap.RoutedBlocks(100), snap.RoutedBlocks(200))
	}
}

func TestRIBReplaceRoute(t *testing.T) {
	rib := NewRIB()
	p := netmodel.MustParsePrefix("10.0.0.0/24")
	rib.Announce(Route{Prefix: p, Path: []netmodel.ASN{1, 2}, NextHop: 1})
	rib.Announce(Route{Prefix: p, Path: []netmodel.ASN{3, 4}, NextHop: 2})
	rt, ok := rib.Lookup(p)
	if !ok || rt.OriginASN() != 4 {
		t.Fatalf("route not replaced: %+v ok=%v", rt, ok)
	}
	if rib.Len() != 1 {
		t.Error("duplicate routes kept")
	}
}

func TestRoutePassesThrough(t *testing.T) {
	r := Route{Path: []netmodel.ASN{64512, 20485, 25482}}
	if !r.PassesThrough(20485) || r.PassesThrough(9999) {
		t.Error("PassesThrough wrong")
	}
	var empty Route
	if empty.OriginASN() != 0 {
		t.Error("empty path origin should be 0")
	}
}
