package bgp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"countrymon/internal/netmodel"
)

// Conn frames BGP messages over a byte stream and runs the OPEN handshake.
// It deliberately implements only what a route collector needs: established
// sessions that exchange keepalives and updates.
type Conn struct {
	raw      net.Conn
	r        *bufio.Reader
	localAS  netmodel.ASN
	peerAS   netmodel.ASN
	holdTime time.Duration
}

// handshakeTimeout bounds the OPEN/KEEPALIVE exchange.
const handshakeTimeout = 10 * time.Second

// defaultHoldTime is offered in our OPEN.
const defaultHoldTime = 90 * time.Second

// NewConn wraps an established TCP connection and performs the BGP
// handshake: send OPEN, expect OPEN, exchange KEEPALIVEs.
func NewConn(raw net.Conn, localAS netmodel.ASN, bgpID netmodel.Addr) (*Conn, error) {
	c := &Conn{raw: raw, r: bufio.NewReader(raw), localAS: localAS}
	deadline := time.Now().Add(handshakeTimeout)
	if err := raw.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := raw.Write(MarshalOpen(Open{ASN: localAS, HoldTime: uint16(defaultHoldTime / time.Second), BGPID: bgpID})); err != nil {
		return nil, fmt.Errorf("bgp: send OPEN: %w", err)
	}
	msg, err := c.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("bgp: await OPEN: %w", err)
	}
	open, ok := msg.(*Open)
	if !ok {
		c.sendNotification(Notification{Code: 1, Subcode: 3}) // bad message type
		return nil, fmt.Errorf("bgp: expected OPEN, got %T", msg)
	}
	c.peerAS = open.ASN
	c.holdTime = time.Duration(open.HoldTime) * time.Second
	if c.holdTime == 0 || c.holdTime > defaultHoldTime {
		c.holdTime = defaultHoldTime
	}
	if _, err := raw.Write(MarshalKeepalive()); err != nil {
		return nil, err
	}
	msg, err = c.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("bgp: await KEEPALIVE: %w", err)
	}
	if _, ok := msg.(*Keepalive); !ok {
		return nil, fmt.Errorf("bgp: expected KEEPALIVE, got %T", msg)
	}
	if err := raw.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return c, nil
}

// PeerAS returns the remote AS learned from its OPEN.
func (c *Conn) PeerAS() netmodel.ASN { return c.peerAS }

// HoldTime returns the negotiated hold time.
func (c *Conn) HoldTime() time.Duration { return c.holdTime }

// ReadMessage reads and decodes the next message.
func (c *Conn) ReadMessage() (interface{}, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n, err := MessageLength(hdr[:])
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(c.r, buf[headerLen:]); err != nil {
		return nil, err
	}
	return ParseMessage(buf)
}

// SendUpdate transmits an UPDATE.
func (c *Conn) SendUpdate(u Update) error {
	b, err := MarshalUpdate(u)
	if err != nil {
		return err
	}
	_, err = c.raw.Write(b)
	return err
}

// SendKeepalive transmits a KEEPALIVE.
func (c *Conn) SendKeepalive() error {
	_, err := c.raw.Write(MarshalKeepalive())
	return err
}

func (c *Conn) sendNotification(n Notification) {
	c.raw.Write(MarshalNotification(n)) //nolint:errcheck // best effort before close
}

// Close terminates the session with a CEASE notification.
func (c *Conn) Close() error {
	c.sendNotification(Notification{Code: 6}) // cease
	return c.raw.Close()
}

// Collector accepts BGP sessions and folds every received UPDATE into a RIB,
// playing the role RouteViews plays for the paper.
type Collector struct {
	rib      *RIB
	ln       net.Listener
	localAS  netmodel.ASN
	bgpID    netmodel.Addr
	done     chan struct{}
	sessions chan netmodel.ASN // emits peer ASNs as sessions establish
}

// NewCollector starts a collector listening on addr (e.g. "127.0.0.1:0").
func NewCollector(addr string, localAS netmodel.ASN, bgpID netmodel.Addr) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Collector{
		rib: NewRIB(), ln: ln, localAS: localAS, bgpID: bgpID,
		done:     make(chan struct{}),
		sessions: make(chan netmodel.ASN, 64),
	}
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listen address.
func (c *Collector) Addr() net.Addr { return c.ln.Addr() }

// RIB returns the collector's table.
func (c *Collector) RIB() *RIB { return c.rib }

// Established emits the ASN of each peer whose session establishes.
func (c *Collector) Established() <-chan netmodel.ASN { return c.sessions }

// Close stops the collector.
func (c *Collector) Close() error {
	close(c.done)
	return c.ln.Close()
}

func (c *Collector) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
				continue
			}
		}
		go c.serve(conn)
	}
}

func (c *Collector) serve(raw net.Conn) {
	conn, err := NewConn(raw, c.localAS, c.bgpID)
	if err != nil {
		raw.Close()
		return
	}
	defer conn.Close()
	select {
	case c.sessions <- conn.PeerAS():
	default:
	}
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *Update:
			c.rib.Apply(m)
		case *Keepalive:
			conn.SendKeepalive() //nolint:errcheck // peer liveness best effort
		case *Notification:
			return
		}
	}
}

// Speaker is a simulated BGP peer: it dials a collector and announces or
// withdraws prefixes on behalf of an origin AS (optionally via an upstream
// path, which the rerouting analysis inspects).
type Speaker struct {
	conn *Conn
	asn  netmodel.ASN
}

// Dial connects a speaker to a collector.
func Dial(addr string, asn netmodel.ASN, bgpID netmodel.Addr) (*Speaker, error) {
	raw, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, err
	}
	conn, err := NewConn(raw, asn, bgpID)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return &Speaker{conn: conn, asn: asn}, nil
}

// Announce advertises prefixes originated by origin, reached via the given
// upstream path (the speaker's own AS is prepended automatically).
func (s *Speaker) Announce(origin netmodel.ASN, upstreams []netmodel.ASN, nextHop netmodel.Addr, prefixes ...netmodel.Prefix) error {
	path := make([]netmodel.ASN, 0, len(upstreams)+2)
	path = append(path, s.asn)
	path = append(path, upstreams...)
	if len(path) == 0 || path[len(path)-1] != origin {
		path = append(path, origin)
	}
	return s.conn.SendUpdate(Update{
		Origin:  OriginIGP,
		ASPath:  path,
		NextHop: nextHop,
		NLRI:    prefixes,
	})
}

// Withdraw retracts prefixes.
func (s *Speaker) Withdraw(prefixes ...netmodel.Prefix) error {
	return s.conn.SendUpdate(Update{Withdrawn: prefixes})
}

// Close terminates the session.
func (s *Speaker) Close() error { return s.conn.Close() }
