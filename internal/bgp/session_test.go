package bgp

import (
	"testing"
	"time"

	"countrymon/internal/netmodel"
)

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestCollectorSpeakerSession(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 65000, netmodel.MustParseAddr("192.0.2.100"))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	sp, err := Dial(col.Addr().String(), 25482, netmodel.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	select {
	case asn := <-col.Established():
		if asn != 25482 {
			t.Fatalf("established peer ASN = %v", asn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session did not establish")
	}

	prefixes := []netmodel.Prefix{
		netmodel.MustParsePrefix("193.151.240.0/23"),
		netmodel.MustParsePrefix("193.151.242.0/24"),
	}
	if err := sp.Announce(25482, nil, netmodel.MustParseAddr("192.0.2.1"), prefixes...); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.RIB().Len() == 2 }, "announcements in RIB")

	rt, ok := col.RIB().Lookup(prefixes[0])
	if !ok {
		t.Fatal("route missing")
	}
	if rt.OriginASN() != 25482 {
		t.Errorf("origin = %v", rt.OriginASN())
	}

	if err := sp.Withdraw(prefixes[0]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.RIB().Len() == 1 }, "withdrawal applied")
}

func TestSpeakerUpstreamPath(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 65000, netmodel.MustParseAddr("192.0.2.100"))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// A Kherson AS announced via a Russian upstream (the occupation-era
	// rerouting, §5.2): the collector must see the full path.
	sp, err := Dial(col.Addr().String(), 64512, netmodel.MustParseAddr("192.0.2.2"))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	const rostelecom = netmodel.ASN(12389)
	p := netmodel.MustParsePrefix("91.198.4.0/24")
	if err := sp.Announce(56404, []netmodel.ASN{rostelecom}, netmodel.MustParseAddr("192.0.2.2"), p); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.RIB().Len() == 1 }, "route")

	snap := col.RIB().Snapshot(map[netmodel.ASN]bool{rostelecom: true})
	b := netmodel.MustParseBlock("91.198.4.0/24")
	if snap.BlockOrigin[b] != 56404 {
		t.Errorf("origin = %v", snap.BlockOrigin[b])
	}
	if !snap.Rerouted[b] {
		t.Error("path through Russian upstream not flagged")
	}
}

func TestMultiplePeers(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 65000, netmodel.MustParseAddr("192.0.2.100"))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	var speakers []*Speaker
	for i := 0; i < 5; i++ {
		sp, err := Dial(col.Addr().String(), netmodel.ASN(64512+i), netmodel.MustParseAddr("192.0.2.1"))
		if err != nil {
			t.Fatal(err)
		}
		speakers = append(speakers, sp)
		p := netmodel.MustNewPrefix(netmodel.Addr(0x0a000000+uint32(i)<<8), 24)
		if err := sp.Announce(netmodel.ASN(64512+i), nil, netmodel.MustParseAddr("192.0.2.1"), p); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, sp := range speakers {
			sp.Close()
		}
	}()
	waitFor(t, func() bool { return col.RIB().Len() == 5 }, "all peers' routes")
	snap := col.RIB().Snapshot(nil)
	for i := 0; i < 5; i++ {
		if snap.RoutedBlocks(netmodel.ASN(64512+i)) != 1 {
			t.Errorf("peer %d blocks = %d", i, snap.RoutedBlocks(netmodel.ASN(64512+i)))
		}
	}
}

func TestKeepaliveExchange(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 65000, netmodel.MustParseAddr("192.0.2.100"))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	sp, err := Dial(col.Addr().String(), 64512, netmodel.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.conn.SendKeepalive(); err != nil {
		t.Fatal(err)
	}
	msg, err := sp.conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*Keepalive); !ok {
		t.Fatalf("expected keepalive echo, got %T", msg)
	}
}
