package campaign

import (
	"context"
	"testing"
	"time"
)

// BenchmarkCampaignTwoCountry is the coordinator's headline number: complete
// two-country campaigns — world build, fleet join, every round scanned
// through the shared vantages, signals folded — measured in country-rounds
// per second. Gated in CI against BENCH_baseline.json via the bare
// rounds_per_sec headline.
func BenchmarkCampaignTwoCountry(b *testing.B) {
	spec := &Spec{
		Countries: []CountrySpec{
			{Code: "UA", Name: "Ukraine"},
			{Code: "RO", Name: "Romania"},
		},
		Vantages: 3,
		Rounds:   24,
		Interval: 2 * time.Hour,
		Start:    time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		Rate:     2000,
		Seed:     9,
	}
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co, err := New(spec, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := co.Run(ctx); err != nil {
			b.Fatal(err)
		}
		if err := co.Close(); err != nil {
			b.Fatal(err)
		}
	}
	rounds := float64(b.N * spec.Rounds * len(spec.Countries))
	b.ReportMetric(rounds/b.Elapsed().Seconds(), "rounds_per_sec")
}
