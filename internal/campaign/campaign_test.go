package campaign

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	countrymon "countrymon"
	"countrymon/internal/par"
)

// testSpec is the standard two-country campaign: synthetic UA and RO models
// splitting the fleet budget evenly over three vantages.
func testSpec(t *testing.T, rounds int) *Spec {
	t.Helper()
	s := &Spec{
		Countries: []CountrySpec{
			{Code: "UA", Name: "Ukraine"},
			{Code: "RO", Name: "Romania"},
		},
		Vantages: 3,
		Rounds:   rounds,
		Interval: 2 * time.Hour,
		Start:    time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		Rate:     2000,
		Seed:     9,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func runCoordinator(t *testing.T, spec *Spec) *Coordinator {
	t.Helper()
	co, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return co
}

func storeBytes(t *testing.T, mon *countrymon.Monitor) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := mon.Store().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// soloCountry runs one country alone on its own three-vantage fleet with
// the coordinator's exact per-country parameters: the same world, the same
// transports, the same seed and — crucially — the budget share's scan rate
// (pacing advances virtual time, so the rate shapes the observations).
func soloCountry(t *testing.T, spec *Spec, code string) *countrymon.Monitor {
	t.Helper()
	var cs *CountrySpec
	for i := range spec.Countries {
		if spec.Countries[i].Code == code {
			cs = &spec.Countries[i]
		}
	}
	if cs == nil {
		t.Fatalf("country %s not in spec", code)
	}
	world, err := spec.World(cs)
	if err != nil {
		t.Fatal(err)
	}
	space := world.Space
	var targets []countrymon.Prefix
	for _, as := range space.ASes() {
		targets = append(targets, as.Prefixes...)
	}
	origins := make(map[countrymon.BlockID]countrymon.ASN)
	for _, blk := range space.Blocks() {
		origins[blk] = space.OriginOf(blk)
	}
	var vantages []countrymon.VantageSpec
	for i := 0; i < spec.Vantages; i++ {
		vn := "v" + strconv.Itoa(i)
		vantages = append(vantages, countrymon.VantageSpec{
			Name:      vn,
			Transport: countryTransport(code, vn, world, nil),
		})
	}
	mon, err := countrymon.New(countrymon.Options{
		Vantages:      vantages,
		Clock:         &vclock{now: spec.Start},
		Targets:       targets,
		Start:         spec.Start,
		Interval:      spec.Interval,
		Rounds:        spec.Rounds,
		Rate:          spec.CountryRate(code),
		Seed:          cs.Seed,
		Origins:       origins,
		Country:       code,
		StreamSignals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := space.Blocks()
	for mon.NextRound() {
		r := mon.Round()
		if world.Missing[r] {
			if err := mon.MarkMissing(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		at := world.TL.Time(r)
		for bi, blk := range blocks {
			mon.SetRouted(blk, r, world.BlockStateAt(bi, at).Routed, origins[blk])
		}
		if _, err := mon.ScanRound(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	return mon
}

// TestCampaignTwoCountryDeterminism is the coordinator's core guarantee:
// each country of a two-country campaign produces a store byte-identical to
// the same country run solo (same seeds, no fleet contention), and the
// coordinated run itself is byte-identical at any worker count.
func TestCampaignTwoCountryDeterminism(t *testing.T) {
	spec := testSpec(t, 48)
	co := runCoordinator(t, spec)

	got := map[string][]byte{}
	for _, c := range co.Countries() {
		got[c.Code] = storeBytes(t, c.Monitor)
	}

	// Solo equivalence, per country.
	for _, code := range spec.Codes() {
		solo := storeBytes(t, soloCountry(t, spec, code))
		if !bytes.Equal(got[code], solo) {
			t.Errorf("country %s: coordinated store differs from solo run (%d vs %d bytes)",
				code, len(got[code]), len(solo))
		}
	}

	// Worker invariance: the whole coordinated campaign, re-run under
	// pinned pool widths, must reproduce byte for byte.
	for _, workers := range []string{"1", "8"} {
		t.Setenv(par.EnvWorkers, workers)
		re := runCoordinator(t, testSpec(t, 48))
		for _, c := range re.Countries() {
			if !bytes.Equal(got[c.Code], storeBytes(t, c.Monitor)) {
				t.Errorf("country %s: store differs at %s=%s", c.Code, par.EnvWorkers, workers)
			}
		}
	}
}

// TestCampaignBudgetSplit pins the rate arithmetic the solo-equivalence
// test depends on: shares scale the fleet budget, and over-subscription is
// rejected at Join time.
func TestCampaignBudgetSplit(t *testing.T) {
	spec := testSpec(t, 8)
	if r := spec.CountryRate("UA"); r != 1000 {
		t.Errorf("UA rate = %d, want 1000", r)
	}
	over := testSpec(t, 8)
	over.Countries[0].Share = 0.8
	over.Countries[1].Share = 0.8
	if err := over.Validate(); err == nil {
		t.Error("shares summing to 1.6 validated")
	}
}

func TestCampaignSpecParse(t *testing.T) {
	spec, err := Parse([]byte(`{
		"countries": [
			{"code": "UA", "name": "Ukraine", "share": 0.6},
			{"code": "RO"}
		],
		"vantages": 4,
		"rounds": 24,
		"interval": "1h",
		"start": "2024-06-01T00:00:00Z",
		"rate": 4000,
		"seed": 11
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Vantages != 4 || spec.Rounds != 24 || spec.Interval != time.Hour {
		t.Errorf("parsed %d vantages, %d rounds, %v interval", spec.Vantages, spec.Rounds, spec.Interval)
	}
	// RO inherits the unclaimed share and a derived, non-zero seed.
	if got := spec.Countries[1].Share; got < 0.399 || got > 0.401 {
		t.Errorf("RO share = %v, want 0.4", got)
	}
	if spec.Countries[1].Seed == 0 {
		t.Error("RO seed not derived")
	}
	if r := spec.CountryRate("UA"); r != 2400 {
		t.Errorf("UA rate = %d, want 2400", r)
	}

	for name, doc := range map[string]string{
		"unknown field": `{"countries": [{"code": "UA"}], "bogus": 1}`,
		"bad code":      `{"countries": [{"code": "Ukraine"}]}`,
		"dup country":   `{"countries": [{"code": "UA"}, {"code": "UA"}]}`,
		"no countries":  `{"countries": []}`,
		"bad share":     `{"countries": [{"code": "UA", "share": 1.5}]}`,
	} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

// TestCampaignModelErrors pins the model-reference failure modes.
func TestCampaignModelErrors(t *testing.T) {
	spec := testSpec(t, 8)

	war := spec.Countries[1] // RO
	war.Model = "war"
	if _, err := spec.World(&war); err == nil {
		t.Error("war model accepted for RO")
	}
	missing := spec.Countries[0]
	missing.Model = "no-such-scenario"
	if _, err := spec.World(&missing); err == nil {
		t.Error("unknown scenario model accepted")
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (string, string, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("ETag"), resp.StatusCode
}

// TestCampaignAliasRouteParity proves the legacy unprefixed routes are true
// aliases of the default country's prefixed routes: byte-identical bodies
// AND identical ETags, because both spellings hit the same handler and the
// same response cache.
func TestCampaignAliasRouteParity(t *testing.T) {
	spec := testSpec(t, 24)
	co := runCoordinator(t, spec)
	for _, c := range co.Countries() {
		if err := c.Store.AdvanceTo(spec.Rounds); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(co.Router())
	defer srv.Close()

	def := co.Countries()[0]
	asn := strconv.FormatUint(uint64(def.World.Space.ASes()[0].ASN), 10)
	paths := []string{
		"/v1/entities",
		"/v1/entities?type=asn",
		"/v1/series?entity=asn/" + asn,
		"/v1/series?entity=country/UA&limit=8",
		"/v1/outages?entity=asn/" + asn,
		"/v1/outages?entity=country/UA",
	}
	for _, p := range paths {
		legacyBody, legacyTag, legacyCode := get(t, srv, p)
		aliasBody, aliasTag, aliasCode := get(t, srv, "/v1/countries/UA"+strings.TrimPrefix(p, "/v1"))
		if legacyCode != http.StatusOK || aliasCode != http.StatusOK {
			t.Errorf("%s: status %d / %d", p, legacyCode, aliasCode)
			continue
		}
		if legacyBody != aliasBody {
			t.Errorf("%s: legacy and prefixed bodies differ", p)
		}
		if legacyTag == "" || legacyTag != aliasTag {
			t.Errorf("%s: ETag %q vs %q", p, legacyTag, aliasTag)
		}
	}

	// The same series for the other country must be served from its own
	// store: RO's first AS differs from UA's.
	roASN := strconv.FormatUint(uint64(co.Country("RO").World.Space.ASes()[0].ASN), 10)
	roBody, _, roCode := get(t, srv, "/v1/countries/RO/series?entity=asn/"+roASN)
	if roCode != http.StatusOK {
		t.Fatalf("RO series status %d", roCode)
	}
	uaBody, _, _ := get(t, srv, "/v1/series?entity=asn/"+asn)
	if roBody == uaBody {
		t.Error("RO series identical to UA series")
	}

	// Listing and unknown-country handling.
	listing, _, code := get(t, srv, "/v1/countries")
	if code != http.StatusOK {
		t.Fatalf("/v1/countries status %d", code)
	}
	for _, want := range []string{`"default":"UA"`, `"code":"RO"`, `"count":2`} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %s: %s", want, listing)
		}
	}
	if _, _, code := get(t, srv, "/v1/countries/XX/series?entity=asn/1"); code != http.StatusNotFound {
		t.Errorf("unknown country status %d, want 404", code)
	}
	if body, _, code := get(t, srv, "/v1/countries/RO"); code != http.StatusOK || !strings.Contains(body, `"watermark":24`) {
		t.Errorf("RO descriptor: status %d body %s", code, body)
	}
}
