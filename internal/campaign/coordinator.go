package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	countrymon "countrymon"
	"countrymon/internal/fleet"
	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/scanner"
	"countrymon/internal/serve"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/simnet"
)

// vantageAddr is the simulated vantage point, outside both the war script's
// real prefixes and the 100.64.0.0/10 model pool (TEST-NET-3, like
// internal/scenario's).
var vantageAddr = netmodel.MustParseAddr("203.0.113.1")

// Options tunes a Coordinator beyond what the Spec carries.
type Options struct {
	// Registry and Bus attach shared observability; per-country metrics are
	// labeled with the country code.
	Registry *obs.Registry
	Bus      *obs.Bus
	// WrapTransport, when non-nil, wraps every per-scan transport the
	// coordinator builds — the chaos tests inject scripted vantage faults
	// here, keyed by (country, vantage).
	WrapTransport func(country, vantage string, t scanner.Transport) scanner.Transport
}

// Country is one running country of a coordinated campaign.
type Country struct {
	Code, Name string
	// Share and Seed are the country's resolved budget share and seed.
	Share float64
	Seed  uint64

	World   *sim.Scenario
	Monitor *countrymon.Monitor
	Store   *serve.Store
	Server  *serve.Server

	camp    *fleet.Campaign
	blocks  []netmodel.BlockID
	origins map[netmodel.BlockID]netmodel.ASN

	scannedC *obs.Counter
	missingC *obs.Counter
	lastG    *obs.Gauge
}

// Coordinator runs per-country Monitors over one shared vantage fleet. It
// is single-goroutine like the Monitor: rounds advance in lockstep, and
// within a round countries scan in spec order. That fixed interleave is
// what keeps every country's output byte-identical to its solo equivalent —
// fleet state (breakers, health) mutates in the same order every run — while
// still letting a vantage blackout observed during one country's scan donate
// that vantage's shards to every later scan, in-round and cross-country.
type Coordinator struct {
	spec      *Spec
	sup       *fleet.Supervisor
	countries []*Country
	router    *serve.Router
	round     int
}

// vclock is the campaign's virtual clock: fleet transports own per-scan
// time, so this only anchors the Monitors' round scheduling.
type vclock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *vclock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// New compiles a validated spec into a running coordinator: one shared
// fleet supervisor, and per country a joined fleet campaign, a Monitor, a
// serve Store fed round by round, and a Server mounted on the Router under
// the country's code (first country = default, owning the legacy routes).
func New(spec *Spec, opts Options) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	specs := make([]fleet.Spec, spec.Vantages)
	for i := range specs {
		name := "v" + strconv.Itoa(i)
		specs[i] = fleet.Spec{Name: name, Transport: unusedTransport(name)}
	}
	sup, err := fleet.NewShared(specs, fleet.Config{
		Scan: scanner.Config{
			Rate:    spec.Rate,
			Seed:    spec.Seed,
			Metrics: scanner.NewMetrics(opts.Registry),
			Events:  opts.Bus,
		},
		Quorum:   spec.Quorum,
		Registry: opts.Registry,
		Bus:      opts.Bus,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}

	co := &Coordinator{spec: spec, sup: sup, router: serve.NewRouter()}
	var rounds *obs.CounterVec
	var last *obs.GaugeVec
	if opts.Registry != nil {
		rounds = opts.Registry.CounterVec("campaign_rounds_total",
			"Coordinated campaign rounds handled, by country and outcome.", "country", "outcome")
		last = opts.Registry.GaugeVec("campaign_last_round",
			"Most recently handled round index, by country.", "country")
		opts.Registry.Gauge("campaign_countries",
			"Countries in the coordinated campaign.").Set(int64(len(spec.Countries)))
	}

	for i := range spec.Countries {
		cs := &spec.Countries[i]
		c, err := newCountry(spec, cs, sup, opts)
		if err != nil {
			return nil, err
		}
		if rounds != nil {
			c.scannedC = rounds.With(c.Code, "scanned")
			c.missingC = rounds.With(c.Code, "missing")
			c.lastG = last.With(c.Code)
		}
		if err := co.router.Add(c.Code, c.Name, c.Server); err != nil {
			return nil, err
		}
		co.countries = append(co.countries, c)
	}
	return co, nil
}

// newCountry resolves one country's world and wires its fleet campaign,
// monitor and serving store.
func newCountry(spec *Spec, cs *CountrySpec, sup *fleet.Supervisor, opts Options) (*Country, error) {
	world, err := spec.World(cs)
	if err != nil {
		return nil, err
	}
	space := world.Space

	var targets []netmodel.Prefix
	for _, as := range space.ASes() {
		targets = append(targets, as.Prefixes...)
	}
	blocks := space.Blocks()
	origins := make(map[netmodel.BlockID]netmodel.ASN, len(blocks))
	for _, blk := range blocks {
		origins[blk] = space.OriginOf(blk)
	}
	ts, err := scanner.NewTargetSet(targets, nil)
	if err != nil {
		return nil, fmt.Errorf("campaign: country %s: %w", cs.Code, err)
	}

	transports := make(map[string]fleet.TransportFunc, spec.Vantages)
	for i := 0; i < spec.Vantages; i++ {
		vn := "v" + strconv.Itoa(i)
		transports[vn] = countryTransport(cs.Code, vn, world, opts.WrapTransport)
	}
	camp, err := sup.Join(fleet.CampaignConfig{
		Name:       cs.Code,
		Targets:    ts,
		RateShare:  cs.Share,
		Seed:       cs.Seed,
		Transports: transports,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: country %s: %w", cs.Code, err)
	}

	monOpts := countrymon.Options{
		Fleet:    camp,
		Clock:    &vclock{now: spec.Start},
		Targets:  targets,
		Start:    spec.Start,
		Interval: spec.Interval,
		Rounds:   spec.Rounds,
		Seed:     cs.Seed,
		Origins:  origins,
		Country:  cs.Code,
		// Streaming signals are load-bearing here, not an optimization: the
		// coordinator feeds routedness per round with a serve store attached,
		// and only the streaming builder absorbs those edits incrementally.
		StreamSignals: true,
		Registry:      opts.Registry,
		Bus:           opts.Bus,
	}
	if spec.CheckpointRoot != "" {
		monOpts.CheckpointPath = filepath.Join(spec.CheckpointRoot, cs.Code+".ckpt")
	}
	mon, err := countrymon.New(monOpts)
	if err != nil {
		return nil, fmt.Errorf("campaign: country %s: %w", cs.Code, err)
	}

	store := serve.NewStore(mon.Timeline())
	mon.AttachServe(store)
	asCfg := signals.ASConfig()
	var members []serve.Source
	for _, as := range space.ASes() {
		src := mon.ServeASSource(as.ASN)
		members = append(members, src)
		code := strconv.FormatUint(uint64(as.ASN), 10)
		if _, err := store.Register("asn", code, src, serve.DetectWith(asCfg)); err != nil {
			return nil, fmt.Errorf("campaign: country %s: %w", cs.Code, err)
		}
	}
	if _, err := store.Register("country", cs.Code, serve.SumSource(members...), serve.DetectWith(asCfg)); err != nil {
		return nil, fmt.Errorf("campaign: country %s: %w", cs.Code, err)
	}
	srv := serve.NewServer(store)
	if opts.Registry != nil && opts.Bus != nil {
		srv.Observe(opts.Registry, opts.Bus)
	}

	return &Country{
		Code: cs.Code, Name: cs.Name,
		Share: cs.Share, Seed: cs.Seed,
		World: world, Monitor: mon, Store: store, Server: srv,
		camp: camp, blocks: blocks, origins: origins,
	}, nil
}

// countryTransport builds the per-scan transport factory for one (country,
// vantage): a fresh packet-level simnet over the country's world, optionally
// fault-wrapped. The simnet owns the scan's virtual time.
func countryTransport(country, vn string, world *sim.Scenario,
	wrap func(string, string, scanner.Transport) scanner.Transport) fleet.TransportFunc {
	return func(round int, at time.Time) (scanner.Transport, scanner.Clock, error) {
		net := simnet.New(vantageAddr, world.Responder(), at)
		var t scanner.Transport = net
		if wrap != nil {
			t = wrap(country, vn, t)
		}
		return t, net, nil
	}
}

// unusedTransport is the vantage-spec default factory. Every country joins
// with a full per-vantage override (each country is its own measurement
// world), so the default firing means a wiring bug, not a runtime condition.
func unusedTransport(name string) fleet.TransportFunc {
	return func(round int, at time.Time) (scanner.Transport, scanner.Clock, error) {
		return nil, nil, fmt.Errorf("campaign: vantage %s scanned without a per-country transport", name)
	}
}

// Router returns the multi-country serve router (countries mounted in spec
// order; the first is the default the legacy routes alias).
func (co *Coordinator) Router() *serve.Router { return co.router }

// Countries returns the running countries in spec order.
func (co *Coordinator) Countries() []*Country { return co.countries }

// Country returns the running country with the given code, or nil.
func (co *Coordinator) Country(code string) *Country {
	for _, c := range co.countries {
		if c.Code == code {
			return c
		}
	}
	return nil
}

// Supervisor returns the shared fleet supervisor.
func (co *Coordinator) Supervisor() *fleet.Supervisor { return co.sup }

// Round returns the next round to be handled.
func (co *Coordinator) Round() int { return co.round }

// NextRound reports whether rounds remain.
func (co *Coordinator) NextRound() bool { return co.round < co.spec.Rounds }

// StepRound handles one round for every country, in spec order on the
// calling goroutine. A country whose world scripts a vantage outage for the
// round is marked missing — without engaging the fleet, exactly like a solo
// Monitor — and the others scan normally.
func (co *Coordinator) StepRound(ctx context.Context) error {
	r := co.round
	for _, c := range co.countries {
		if err := c.step(ctx, r); err != nil {
			return fmt.Errorf("campaign: country %s round %d: %w", c.Code, r, err)
		}
	}
	co.round++
	return nil
}

// Run drives every remaining round to completion.
func (co *Coordinator) Run(ctx context.Context) error {
	for co.NextRound() {
		if err := co.StepRound(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every country's monitor resources.
func (co *Coordinator) Close() error {
	var first error
	for _, c := range co.countries {
		if err := c.Monitor.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// step advances one country by one round: feed ground-truth routedness,
// scan through the shared fleet (or mark the round missing), and bump the
// country's metrics.
func (c *Country) step(ctx context.Context, r int) error {
	if c.World.Missing[r] {
		if err := c.Monitor.MarkMissing(); err != nil {
			return err
		}
		c.missingC.Inc()
		c.lastG.Set(int64(r))
		return nil
	}
	at := c.World.TL.Time(r)
	for bi, blk := range c.blocks {
		c.Monitor.SetRouted(blk, r, c.World.BlockStateAt(bi, at).Routed, c.origins[blk])
	}
	if _, err := c.Monitor.Step(ctx, countrymon.RunConfig{}); err != nil {
		return err
	}
	c.scannedC.Inc()
	c.lastG.Set(int64(r))
	return nil
}

// FleetReport returns the country's per-campaign fleet accounting.
func (c *Country) FleetReport() fleet.CampaignReport { return c.camp.Report() }
