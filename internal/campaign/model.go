package campaign

import (
	"fmt"
	"os"
	"strings"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scenario"
	"countrymon/internal/sim"
)

// World resolves one country's ground-truth world from its model reference
// under the campaign timeline. Every path ends in the same place — a
// sim.CountryModel assembled into a *sim.Scenario — so nothing downstream
// knows whether the country is the bundled war script, a scenario file or a
// synthetic model.
func (s *Spec) World(c *CountrySpec) (*sim.Scenario, error) {
	switch {
	case c.Model == "":
		return syntheticModel(c, s).Build()
	case c.Model == "war":
		if c.Code != sim.DefaultCountry {
			return nil, fmt.Errorf("campaign: country %s: the war model is Ukraine (%s)", c.Code, sim.DefaultCountry)
		}
		model, err := sim.Ukraine(sim.Config{
			Seed:     c.Seed,
			Scale:    c.Scale,
			Interval: s.Interval,
			Start:    s.Start,
			End:      s.End(),
		})
		if err != nil {
			return nil, fmt.Errorf("campaign: country %s: %w", c.Code, err)
		}
		world, err := model.Build()
		if err != nil {
			return nil, fmt.Errorf("campaign: country %s: %w", c.Code, err)
		}
		if got := world.TL.NumRounds(); got != s.Rounds {
			return nil, fmt.Errorf("campaign: country %s: war model has %d rounds, campaign %d", c.Code, got, s.Rounds)
		}
		return world, nil
	default:
		return s.scenarioWorld(c)
	}
}

// scenarioWorld compiles a scenario-DSL model (embedded library name or
// *.json path) under the country's flag and checks it agrees with the
// campaign timeline: countries of one campaign advance in lockstep, so a
// scenario on a different cadence cannot join.
func (s *Spec) scenarioWorld(c *CountrySpec) (*sim.Scenario, error) {
	var (
		sc  *scenario.Spec
		err error
	)
	if strings.HasSuffix(c.Model, ".json") {
		var data []byte
		data, err = os.ReadFile(c.Model)
		if err == nil {
			sc, err = scenario.Parse(data)
		}
	} else {
		sc, err = scenario.Load(c.Model)
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: country %s: %w", c.Code, err)
	}
	switch {
	case sc.Country == "":
		sc.Country, sc.CountryName = c.Code, c.Name
	case sc.Country != c.Code:
		return nil, fmt.Errorf("campaign: country %s: scenario %s models %s", c.Code, sc.Name, sc.Country)
	}
	if !sc.Start.Equal(s.Start) || sc.Interval != s.Interval || sc.Rounds() != s.Rounds {
		return nil, fmt.Errorf("campaign: country %s: scenario %s timeline (%s, %v, %d rounds) differs from the campaign's (%s, %v, %d)",
			c.Code, sc.Name, sc.Start.Format(time.RFC3339), sc.Interval, sc.Rounds(),
			s.Start.Format(time.RFC3339), s.Interval, s.Rounds)
	}
	compiled, err := sc.Compile()
	if err != nil {
		return nil, fmt.Errorf("campaign: country %s: %w", c.Code, err)
	}
	return compiled.Sim, nil
}

// Synthetic model shape: a handful of ASes with one scripted full outage and
// one partial (IPS-only) dip, enough ground truth for the detection pipeline
// to have something to find without the cost of a war-scale world.
const (
	synASes       = 4
	synMinBlocks  = 3  // per AS, plus a hashed 0–2 extra
	synOutageFrom = 55 // percent of the campaign
	synOutageTo   = 65
	synDipFrom    = 30
	synDipTo      = 35
	synDipLoss    = 0.6
)

// synPoolBase is where synthetic address plans are carved: past the first
// 4096 /24s of 100.64.0.0/10, which internal/scenario's pool occupies.
var synPoolBase = netmodel.MustParseAddr("100.64.0.0").Block() + scenario.MaxBlocks

// syntheticModel builds a compact country as a pure function of the
// country's (code, seed) and the campaign timeline: same spec, same world,
// on any machine. Each code gets its own /24 slice of CGNAT space so two
// synthetic countries never share an address plan.
func syntheticModel(c *CountrySpec, s *Spec) sim.CountryModel {
	hash := func(salt uint64) uint64 { return mix64(mix64(c.Seed^salt) ^ codeBits(c.Code)) }
	regions := netmodel.Regions()

	spec := sim.Spec{
		Cfg: sim.Config{
			Seed:     c.Seed,
			Interval: s.Interval,
			Start:    s.Start,
			End:      s.End(),
		},
		Country:     c.Code,
		CountryName: c.Name,
	}

	// 64 slices of 256 /24s cover the rest of the /10; distinct codes map to
	// distinct slices unless they collide mod 48, which is harmless — each
	// country is its own measurement world with its own transports.
	slice := codeBits(c.Code) % 48
	next := synPoolBase + netmodel.BlockID(slice*256)

	roundAt := func(pct int) time.Time {
		return s.Start.Add(time.Duration(s.Rounds*pct/100) * s.Interval)
	}
	var outageAS, dipAS netmodel.ASN
	for i := 0; i < synASes; i++ {
		asn := netmodel.ASN(64512 + int(hash(0xa5)%960)*16 + i)
		region := regions[hash(uint64(0xb0+i))%uint64(len(regions))]
		blocks := synMinBlocks + int(hash(uint64(0xc0+i))%3)
		density := 100 + int(hash(uint64(0xd0+i))%120)
		respRate := 0.78 + 0.12*unit(hash(uint64(0xe0+i)))

		model := &netmodel.AS{
			ASN:  asn,
			Name: fmt.Sprintf("%s-net-%d", strings.ToLower(c.Code), i),
			HQ:   region,
		}
		for b := 0; b < blocks; b++ {
			blk := next
			next++
			model.Prefixes = append(model.Prefixes, netmodel.MustNewPrefix(blk.First(), 24))
			spec.Blocks = append(spec.Blocks, sim.BlockTraits{
				Block:      blk,
				ASN:        asn,
				HomeRegion: region,
				Density:    uint8(density),
				RespRate:   float32(respRate),
				DeclineTo:  1,
				Diurnal:    hash(uint64(0xf0+b))%100 < 30,
				MoveMonth:  -1,
			})
		}
		spec.ASes = append(spec.ASes, sim.ASTraits{AS: model, National: i == 0})
		switch i {
		case 1:
			outageAS = asn
		case 2:
			dipAS = asn
		}
	}

	spec.Events = []sim.Event{
		{
			Name: "synthetic-outage",
			From: roundAt(synOutageFrom), To: roundAt(synOutageTo),
			ASNs: []netmodel.ASN{outageAS},
			Kind: sim.EffectBGPDown,
		},
		{
			Name: "synthetic-dip",
			From: roundAt(synDipFrom), To: roundAt(synDipTo),
			ASNs: []netmodel.ASN{dipAS},
			Kind: sim.EffectIPSDrop, Magnitude: synDipLoss,
		},
	}
	return sim.CountryModel{Code: c.Code, Name: c.Name, Spec: spec}
}

// codeBits packs a two-letter code into an integer for hashing and slicing.
func codeBits(code string) uint64 {
	if len(code) != 2 {
		return 0
	}
	return uint64(code[0]-'A')*26 + uint64(code[1]-'A')
}

// mix64/unit are the same splitmix finalizer construction sim and scenario
// use for all stochastic-but-deterministic choices.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
