// Package campaign is the multi-country coordinator: one fleet.Supervisor's
// vantage pool shared by several per-country Monitors, driven round by round
// on a single goroutine so every country's output is as deterministic as a
// solo campaign's.
//
// A campaign.Spec names the countries, how the global scan-rate budget is
// split between them, and where each country's world comes from — the
// bundled Ukraine war model, a scenario-DSL file, or a compact synthetic
// model derived purely from (code, seed). New compiles the spec into joined
// fleet campaigns, Monitors and per-country serve Stores behind one
// serve.Router; Run interleaves the countries' rounds in spec order, so a
// vantage blackout hit during one country's scan is visible — breaker open,
// shards stolen — to every other country's scan of the same round.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Spec bounds, in the spirit of internal/scenario's: specs are operator
// configuration, not a general programming surface.
const (
	MaxCountries = 16
	MaxVantages  = 16
	MaxRounds    = 100000
)

// CountrySpec declares one monitored country.
type CountrySpec struct {
	// Code is the ISO 3166-1 alpha-2 code — the fleet campaign name, the
	// metrics label and the serve API path segment. Required, unique.
	Code string `json:"code"`
	// Name is the display name (defaults to the code).
	Name string `json:"name,omitempty"`
	// Share is this country's share of the fleet's global scan-rate budget,
	// in (0, 1]. Countries with share 0 split whatever the explicit shares
	// leave over, equally. The sum may not exceed 1.
	Share float64 `json:"share,omitempty"`
	// Seed makes the country's scans reproducible independently of the
	// campaign seed; 0 derives one from (campaign seed, code).
	Seed uint64 `json:"seed,omitempty"`
	// Model says where the country's world comes from:
	//
	//	""          compact synthetic model, a pure function of (code, seed)
	//	"war"       the bundled Ukraine war generator (code must be UA)
	//	"name"      a scenario from the embedded library
	//	"*.json"    a scenario-DSL file on disk
	//
	// Scenario-backed models must agree with the campaign timeline.
	Model string `json:"model,omitempty"`
	// Scale is the war model's address-space scale (see sim.Config.Scale);
	// ignored by the other models.
	Scale float64 `json:"scale,omitempty"`
}

// Spec is a parsed, validated multi-country campaign.
type Spec struct {
	Countries []CountrySpec
	// Vantages is the shared fleet's size (default 3).
	Vantages int
	// Rounds, Interval and Start define the shared timeline every country
	// runs on (defaults 96 rounds at 2h from 2024-01-01).
	Rounds   int
	Interval time.Duration
	Start    time.Time
	// Rate is the fleet's global probing budget in packets/second, divided
	// between countries by their shares (default 2000).
	Rate int
	// Seed is the campaign master seed.
	Seed uint64
	// Quorum is the fleet's k-of-n corroboration quorum (0 = fleet default).
	Quorum int
	// CheckpointRoot, when set, gives every country a checkpoint file
	// <root>/<code>.ckpt.
	CheckpointRoot string
}

// fileDoc is the JSON wire form of a Spec.
type fileDoc struct {
	Countries      []CountrySpec `json:"countries"`
	Vantages       int           `json:"vantages,omitempty"`
	Rounds         int           `json:"rounds,omitempty"`
	Interval       string        `json:"interval,omitempty"`
	Start          string        `json:"start,omitempty"`
	Rate           int           `json:"rate,omitempty"`
	Seed           uint64        `json:"seed,omitempty"`
	Quorum         int           `json:"quorum,omitempty"`
	CheckpointRoot string        `json:"checkpoint_root,omitempty"`
}

// Parse decodes and validates a campaign spec document. Unknown fields are
// rejected — a typoed knob must not silently configure nothing.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var doc fileDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("campaign: parse: %w", err)
	}
	s := &Spec{
		Countries:      doc.Countries,
		Vantages:       doc.Vantages,
		Rounds:         doc.Rounds,
		Rate:           doc.Rate,
		Seed:           doc.Seed,
		Quorum:         doc.Quorum,
		CheckpointRoot: doc.CheckpointRoot,
	}
	if doc.Interval != "" {
		d, err := time.ParseDuration(doc.Interval)
		if err != nil {
			return nil, fmt.Errorf("campaign: interval: %w", err)
		}
		s.Interval = d
	}
	if doc.Start != "" {
		at, err := time.Parse(time.RFC3339, doc.Start)
		if err != nil {
			return nil, fmt.Errorf("campaign: start: %w", err)
		}
		s.Start = at.UTC()
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and parses a campaign spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return Parse(data)
}

// Quick builds the no-config spec the CLI's -countries flag implies: the
// listed countries on synthetic models with equal budget shares.
func Quick(codes []string) (*Spec, error) {
	s := &Spec{}
	for _, c := range codes {
		s.Countries = append(s.Countries, CountrySpec{Code: strings.ToUpper(strings.TrimSpace(c))})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks bounds, fills defaults and normalizes shares and seeds so
// that every derived quantity (per-country rate, per-country seed) is
// readable off the validated spec — the solo-equivalence tests depend on
// that.
func (s *Spec) Validate() error {
	if len(s.Countries) == 0 {
		return fmt.Errorf("campaign: at least one country required")
	}
	if len(s.Countries) > MaxCountries {
		return fmt.Errorf("campaign: %d countries exceeds the limit of %d", len(s.Countries), MaxCountries)
	}
	if s.Vantages == 0 {
		s.Vantages = 3
	}
	if s.Vantages < 1 || s.Vantages > MaxVantages {
		return fmt.Errorf("campaign: vantages %d outside [1, %d]", s.Vantages, MaxVantages)
	}
	if s.Rounds == 0 {
		s.Rounds = 96
	}
	if s.Rounds < 1 || s.Rounds > MaxRounds {
		return fmt.Errorf("campaign: rounds %d outside [1, %d]", s.Rounds, MaxRounds)
	}
	if s.Interval == 0 {
		s.Interval = 2 * time.Hour
	}
	if s.Interval < time.Minute {
		return fmt.Errorf("campaign: interval %v below 1m", s.Interval)
	}
	if s.Start.IsZero() {
		s.Start = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if s.Rate == 0 {
		s.Rate = 2000
	}
	if s.Rate < 0 {
		return fmt.Errorf("campaign: negative rate")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}

	seen := make(map[string]bool, len(s.Countries))
	used, unshared := 0.0, 0
	for i := range s.Countries {
		c := &s.Countries[i]
		if !validCode(c.Code) {
			return fmt.Errorf("campaign: country %q is not an ISO alpha-2 code", c.Code)
		}
		if seen[c.Code] {
			return fmt.Errorf("campaign: duplicate country %s", c.Code)
		}
		seen[c.Code] = true
		if c.Name == "" {
			c.Name = c.Code
		}
		if c.Share < 0 || c.Share > 1 {
			return fmt.Errorf("campaign: country %s: share %v outside [0, 1]", c.Code, c.Share)
		}
		if c.Share == 0 {
			unshared++
		}
		used += c.Share
		if c.Seed == 0 {
			c.Seed = deriveSeed(s.Seed, c.Code)
		}
	}
	if used > 1+1e-9 {
		return fmt.Errorf("campaign: country shares sum to %.3f > 1", used)
	}
	if unshared > 0 {
		if used >= 1-1e-9 {
			return fmt.Errorf("campaign: no budget share left for the %d countries without one", unshared)
		}
		each := (1 - used) / float64(unshared)
		for i := range s.Countries {
			if s.Countries[i].Share == 0 {
				s.Countries[i].Share = each
			}
		}
	}
	return nil
}

// End returns the timestamp of the last round (timeline.New's End bound is
// inclusive of the final round's slot).
func (s *Spec) End() time.Time {
	return s.Start.Add(time.Duration(s.Rounds-1) * s.Interval)
}

// CountryRate is the per-country scan rate the fleet enforces for code:
// the global budget scaled by the country's share, rounded like
// fleet.Join does. Solo reference campaigns must use this rate to reproduce
// a coordinator country byte for byte (pacing advances virtual time, so the
// rate is observable in the data).
func (s *Spec) CountryRate(code string) int {
	for _, c := range s.Countries {
		if c.Code == code {
			return int(float64(s.Rate)*c.Share + 0.5)
		}
	}
	return 0
}

// Codes returns the country codes in spec order.
func (s *Spec) Codes() []string {
	out := make([]string, len(s.Countries))
	for i, c := range s.Countries {
		out[i] = c.Code
	}
	return out
}

// validCode reports whether s is an uppercase ISO 3166-1 alpha-2 code.
func validCode(s string) bool {
	return len(s) == 2 &&
		s[0] >= 'A' && s[0] <= 'Z' && s[1] >= 'A' && s[1] <= 'Z'
}

// deriveSeed gives a country a stable per-campaign seed: FNV-1a over the
// code, mixed with the master seed. Never zero (zero means "inherit" to the
// fleet).
func deriveSeed(master uint64, code string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(code); i++ {
		h = (h ^ uint64(code[i])) * 1099511628211
	}
	h ^= master
	if h == 0 {
		h = 1
	}
	return h
}
