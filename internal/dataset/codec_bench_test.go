package dataset

import (
	"bytes"
	"io"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

// benchStore builds a store of realistic shape: a year of 2-hour rounds over
// a few thousand blocks, a slice of them RTT-tracked, with varied resp rows
// so the RLE coder does real work.
func benchStore(b *testing.B) *Store {
	b.Helper()
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.AddDate(1, 0, 0), 2*time.Hour)
	blocks := make([]netmodel.BlockID, 2048)
	for i := range blocks {
		blocks[i] = netmodel.BlockID(i)
	}
	s := NewStore(tl, blocks)
	for bi := range blocks {
		for r := 0; r < tl.NumRounds(); r++ {
			s.SetRound(bi, r, (bi*31+r*7)%97, r%3 != 0)
		}
		if bi%16 == 0 {
			s.TrackRTT(bi)
			for r := 0; r < tl.NumRounds(); r++ {
				s.SetRTT(bi, r, uint16(20+(bi+r)%40))
			}
		}
	}
	return s
}

func BenchmarkStoreWriteTo(b *testing.B) {
	s := benchStore(b)
	var buf bytes.Buffer
	s.WriteTo(&buf)
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreReadFrom(b *testing.B) {
	s := benchStore(b)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
