package dataset

import (
	"errors"
	"fmt"
)

// Run-length coding for per-round responsive-count rows (PackBits-style).
// The paper cites the storage cost of the full FBS signal as a design
// constraint (§3.1: bi-hourly was partly chosen to bound storage); block
// rows are highly redundant — sparse blocks are constant zero, active
// blocks sit near a plateau — so runs dominate.
//
// Encoding: a control byte c, then
//
//	c < 128  → c+1 literal bytes follow
//	c ≥ 128  → one byte follows, repeated c-126 times (run of 2..129)
//
// Worst case overhead is 1 byte per 128 literals (< 0.8%).

const (
	maxLiteralChunk = 128
	minRun          = 2
	maxRun          = 129
)

// rleAppend compresses src onto dst.
func rleAppend(dst, src []byte) []byte {
	i := 0
	n := len(src)
	litStart := -1
	flushLits := func(end int) {
		for litStart < end {
			chunk := end - litStart
			if chunk > maxLiteralChunk {
				chunk = maxLiteralChunk
			}
			dst = append(dst, byte(chunk-1))
			dst = append(dst, src[litStart:litStart+chunk]...)
			litStart += chunk
		}
		litStart = -1
	}
	for i < n {
		// Measure the run at i.
		j := i + 1
		for j < n && src[j] == src[i] && j-i < maxRun {
			j++
		}
		if j-i >= minRun+1 || (j-i >= minRun && litStart < 0) {
			if litStart >= 0 {
				flushLits(i)
			}
			dst = append(dst, byte(j-i-minRun+128), src[i])
			i = j
			continue
		}
		if litStart < 0 {
			litStart = i
		}
		i++
	}
	if litStart >= 0 {
		flushLits(n)
	}
	return dst
}

// deltaRLEAppend compresses src onto dst as byte-wise wrapping deltas fed
// through the RLE above (the v4 column coding). Responsive-count rows are
// near-constant plateaus with occasional steps, so the delta transform turns
// them into almost-all-zero streams that collapse into maximal runs.
// scratch holds the transformed copy between calls (src is not modified).
func deltaRLEAppend(dst, src []byte, scratch *[]byte) []byte {
	if cap(*scratch) < len(src) {
		*scratch = make([]byte, len(src))
	}
	d := (*scratch)[:len(src)]
	var prev byte
	for i, v := range src {
		d[i] = v - prev
		prev = v
	}
	return rleAppend(dst, d)
}

// deltaRLEDecode is the inverse of deltaRLEAppend: RLE-decode into dst, then
// undo the delta transform with an in-place prefix sum. dst must be exactly
// the expected length.
func deltaRLEDecode(dst, src []byte) error {
	if err := rleDecode(dst, src); err != nil {
		return err
	}
	var prev byte
	for i := range dst {
		prev += dst[i]
		dst[i] = prev
	}
	return nil
}

var errRLECorrupt = errors.New("dataset: corrupt RLE stream")

// rleDecode decompresses src into dst, which must be exactly the expected
// length.
func rleDecode(dst, src []byte) error {
	di := 0
	i := 0
	for i < len(src) {
		c := src[i]
		i++
		if c < 128 {
			n := int(c) + 1
			if i+n > len(src) || di+n > len(dst) {
				return errRLECorrupt
			}
			copy(dst[di:], src[i:i+n])
			i += n
			di += n
		} else {
			if i >= len(src) {
				return errRLECorrupt
			}
			n := int(c) - 128 + minRun
			if di+n > len(dst) {
				return errRLECorrupt
			}
			v := src[i]
			i++
			for k := 0; k < n; k++ {
				dst[di+k] = v
			}
			di += n
		}
	}
	if di != len(dst) {
		return fmt.Errorf("%w: decoded %d of %d bytes", errRLECorrupt, di, len(dst))
	}
	return nil
}
