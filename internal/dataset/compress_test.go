package dataset

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func rleRoundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := rleAppend(nil, src)
	dst := make([]byte, len(src))
	if err := rleDecode(dst, enc); err != nil {
		t.Fatalf("decode: %v (src %v)", err, src)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip mismatch: %v -> %v -> %v", src, enc, dst)
	}
}

func TestRLEBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{1, 2, 3},
		bytes.Repeat([]byte{0}, 1000),
		bytes.Repeat([]byte{7}, 131), // longer than maxRun: split into two runs
		{1, 1, 2, 2, 2, 3, 3, 3, 3},
		append(bytes.Repeat([]byte{0}, 200), 1, 2, 3),
	}
	for _, c := range cases {
		rleRoundTrip(t, c)
	}
}

func TestRLECompressionRatio(t *testing.T) {
	// A sparse block's all-zero row must shrink dramatically.
	zero := make([]byte, 4357)
	enc := rleAppend(nil, zero)
	if len(enc) > 80 {
		t.Errorf("all-zero row encoded to %d bytes", len(enc))
	}
	// A plateau with jitter still compresses (runs at the plateau).
	rng := rand.New(rand.NewSource(2))
	row := make([]byte, 4357)
	for i := range row {
		row[i] = 60
		if rng.Intn(4) == 0 {
			row[i] = 61
		}
	}
	enc2 := rleAppend(nil, row)
	if len(enc2) >= len(row) {
		t.Logf("jittery plateau: %d -> %d bytes (no gain is acceptable)", len(row), len(enc2))
	}
	// Worst case bound: random bytes must not blow up beyond ~1%.
	rnd := make([]byte, 8192)
	rng.Read(rnd)
	enc3 := rleAppend(nil, rnd)
	if len(enc3) > len(rnd)+len(rnd)/64 {
		t.Errorf("worst-case expansion too large: %d -> %d", len(rnd), len(enc3))
	}
}

func TestQuickRLERoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		enc := rleAppend(nil, src)
		dst := make([]byte, len(src))
		if err := rleDecode(dst, enc); err != nil {
			return false
		}
		return bytes.Equal(dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	// Runs-heavy inputs (the realistic shape).
	g := func(vals []byte, lens []uint8) bool {
		var src []byte
		for i, v := range vals {
			n := 1
			if i < len(lens) {
				n = int(lens[i])%300 + 1
			}
			src = append(src, bytes.Repeat([]byte{v}, n)...)
		}
		enc := rleAppend(nil, src)
		dst := make([]byte, len(src))
		if err := rleDecode(dst, enc); err != nil {
			return false
		}
		return bytes.Equal(dst, src)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRLEDecodeRejectsCorrupt(t *testing.T) {
	dst := make([]byte, 10)
	if err := rleDecode(dst, []byte{200}); err == nil {
		t.Error("truncated run accepted")
	}
	if err := rleDecode(dst, []byte{5, 1, 2}); err == nil {
		t.Error("truncated literals accepted")
	}
	if err := rleDecode(dst, []byte{255, 7}); err == nil {
		t.Error("overflowing run accepted")
	}
	if err := rleDecode(dst, []byte{0, 1}); err == nil {
		t.Error("short decode accepted")
	}
}

func TestCompressedFileSmaller(t *testing.T) {
	// Compare the v2 on-disk size against the raw matrix size for a
	// realistic sparse store.
	s := testStore(t)
	tl := s.Timeline()
	for r := 0; r < tl.NumRounds(); r++ {
		s.SetRound(0, r, 60+(r%7)/5, true) // plateau with occasional bump
		// block 1 stays zero (sparse), block 2 diurnal-ish
		if (r/6)%2 == 0 {
			s.SetRound(2, r, 30, true)
		}
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := s.NumBlocks() * tl.NumRounds()
	if buf.Len() >= raw {
		t.Errorf("v2 file (%d bytes) not smaller than raw resp matrix (%d bytes)", buf.Len(), raw)
	}
	// And it still round-trips.
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tl.NumRounds(); r += 17 {
		if got.Resp(0, r) != s.Resp(0, r) || got.Resp(2, r) != s.Resp(2, r) {
			t.Fatal("compressed round trip mismatch")
		}
	}
}
