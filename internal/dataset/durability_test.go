package dataset

import (
	"bytes"
	"math"
	"testing"
)

func TestCoverageDefaultsFull(t *testing.T) {
	s := testStore(t)
	for _, r := range []int{0, 1, s.Timeline().NumRounds() - 1} {
		if got := s.Coverage(r); got != 1 {
			t.Errorf("Coverage(%d) = %v, want 1 by default", r, got)
		}
	}
}

func TestSetCoverageClampsAndRoundtrips(t *testing.T) {
	s := testStore(t)
	s.SetCoverage(2, 0.5)
	if got := s.Coverage(2); math.Abs(got-0.5) > 1e-4 {
		t.Errorf("Coverage(2) = %v, want ≈0.5", got)
	}
	s.SetCoverage(3, -1)
	if got := s.Coverage(3); got != 0 {
		t.Errorf("negative coverage stored as %v", got)
	}
	s.SetCoverage(4, 2)
	if got := s.Coverage(4); got != 1 {
		t.Errorf("overflowing coverage stored as %v", got)
	}
}

func TestDoneCursor(t *testing.T) {
	s := testStore(t)
	if s.NextUndone() != 0 {
		t.Fatalf("fresh store NextUndone = %d", s.NextUndone())
	}
	s.SetDone(0)
	s.SetDone(1)
	if s.NextUndone() != 2 {
		t.Errorf("NextUndone = %d after 2 done rounds", s.NextUndone())
	}
	// Missing rounds count as handled: a resume must not rescan them.
	s.SetMissing(2)
	if !s.Done(2) {
		t.Error("SetMissing must mark the round done")
	}
	if s.NextUndone() != 3 {
		t.Errorf("NextUndone = %d after a missing round", s.NextUndone())
	}
	// A gap earlier than the frontier wins.
	s2 := testStore(t)
	s2.SetDone(0)
	s2.SetDone(5)
	if s2.NextUndone() != 1 {
		t.Errorf("NextUndone = %d, want first gap", s2.NextUndone())
	}
	// Complete campaign.
	s3 := testStore(t)
	for r := 0; r < s3.Timeline().NumRounds(); r++ {
		s3.SetDone(r)
	}
	if s3.NextUndone() != s3.Timeline().NumRounds() {
		t.Errorf("complete campaign NextUndone = %d", s3.NextUndone())
	}
}

func TestEffectiveMissing(t *testing.T) {
	s := testStore(t)
	s.SetMissing(1)
	s.SetCoverage(2, 0.5)  // below the 0.8 gate
	s.SetCoverage(3, 0.95) // above it
	em := s.EffectiveMissing(0.8)
	want := map[int]bool{0: false, 1: true, 2: true, 3: false, 4: false}
	for r, w := range want {
		if em[r] != w {
			t.Errorf("EffectiveMissing[%d] = %v, want %v", r, em[r], w)
		}
	}
	// minCoverage 0 gates nothing but true outages.
	em0 := s.EffectiveMissing(0)
	if em0[2] || !em0[1] {
		t.Error("minCoverage=0 must only flag real outages")
	}
	// The returned mask is a copy, not the store's internal slice.
	em[0] = true
	if s.Missing(0) {
		t.Error("EffectiveMissing leaked internal state")
	}
	// Out-of-range thresholds clamp instead of exploding.
	_ = s.EffectiveMissing(-3)
	_ = s.EffectiveMissing(7)
}

func TestSaveLoadDurabilityRoundtrip(t *testing.T) {
	s := testStore(t)
	s.SetRound(0, 4, 17, true)
	s.SetMissing(1)
	s.SetDone(0)
	s.SetDone(4)
	s.SetCoverage(4, 0.25)

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done(0) || !got.Done(1) || !got.Done(4) || got.Done(2) {
		t.Error("done bits lost in roundtrip")
	}
	if got.NextUndone() != 2 {
		t.Errorf("loaded NextUndone = %d, want 2", got.NextUndone())
	}
	if !got.Missing(1) {
		t.Error("missing flag lost")
	}
	if c := got.Coverage(4); math.Abs(c-0.25) > 1e-4 {
		t.Errorf("coverage lost: %v", c)
	}
	if c := got.Coverage(0); c != 1 {
		t.Errorf("untouched coverage = %v, want 1", c)
	}
	if got.Resp(0, 4) != 17 || !got.Routed(0, 4) {
		t.Error("observation data lost")
	}
}

func TestWriteToIdenticalBytesForIdenticalStores(t *testing.T) {
	build := func() *bytes.Buffer {
		s := testStore(t)
		s.SetRound(2, 7, 3, true)
		s.SetMissing(9)
		s.SetCoverage(8, 0.4)
		s.SetDone(8)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(build().Bytes(), build().Bytes()) {
		t.Error("WriteTo is not deterministic — checkpoint/resume byte-equality depends on it")
	}
}
