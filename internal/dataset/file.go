package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

// Binary file format (little endian):
//
//	magic "CMDS" | version u32 | startUnixNano i64 | interval i64 | rounds u32
//	nblocks u32 | blockIDs [nblocks]u32
//	missing bitset [(rounds+63)/64]u64
//	v3+: done bitset [(rounds+63)/64]u64
//	v3+: npartial u32 | npartial × (round u32, coverage u16) — only rounds
//	     below full coverage are listed (normally none)
//	resp rows: nblocks × rounds u8
//	routed rows: nblocks × words u64
//	ntracked u32 | per tracked: blockIdx u32, rounds × u16 RTT ms

const (
	fileMagic = "CMDS"
	// Version 1 stores resp rows raw; version 2 run-length codes them
	// (rowLen u32 + RLE bytes), typically 5-20x smaller for real
	// campaigns; version 3 adds the done bitset and per-round coverage
	// used by checkpoint/resume and partial-round gating.
	fileVersion = 3
)

// WriteTo serializes the store.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &countingWriter{w: bw}
	write := func(v interface{}) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(fileMagic)); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint32(fileVersion),
		s.tl.Start().UnixNano(),
		int64(s.tl.Interval()),
		uint32(s.tl.NumRounds()),
		uint32(len(s.blocks)),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	ids := make([]uint32, len(s.blocks))
	for i, b := range s.blocks {
		ids[i] = uint32(b)
	}
	if err := write(ids); err != nil {
		return cw.n, err
	}
	miss := make([]uint64, (s.tl.NumRounds()+63)/64)
	for r, m := range s.missing {
		if m {
			miss[r/64] |= 1 << (r % 64)
		}
	}
	if err := write(miss); err != nil {
		return cw.n, err
	}
	done := make([]uint64, (s.tl.NumRounds()+63)/64)
	for r, d := range s.done {
		if d {
			done[r/64] |= 1 << (r % 64)
		}
	}
	if err := write(done); err != nil {
		return cw.n, err
	}
	var npartial uint32
	for _, c := range s.coverage {
		if c != coverageFull {
			npartial++
		}
	}
	if err := write(npartial); err != nil {
		return cw.n, err
	}
	for r, c := range s.coverage {
		if c != coverageFull {
			if err := write(uint32(r)); err != nil {
				return cw.n, err
			}
			if err := write(c); err != nil {
				return cw.n, err
			}
		}
	}
	var rle []byte
	for _, row := range s.resp {
		rle = rleAppend(rle[:0], row)
		if err := write(uint32(len(rle))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(rle); err != nil {
			return cw.n, err
		}
	}
	for _, row := range s.routed {
		if err := write(row); err != nil {
			return cw.n, err
		}
	}
	tracked := make([]int, 0, len(s.rtt))
	for bi := range s.rtt {
		tracked = append(tracked, bi)
	}
	sort.Ints(tracked)
	if err := write(uint32(len(tracked))); err != nil {
		return cw.n, err
	}
	for _, bi := range tracked {
		if err := write(uint32(bi)); err != nil {
			return cw.n, err
		}
		if err := write(s.rtt[bi]); err != nil {
			return cw.n, err
		}
	}
	return cw.n, bw.Flush()
}

// ReadFrom deserializes a store written by WriteTo.
func ReadFrom(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	read := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var version, rounds, nblocks uint32
	var startNano, interval int64
	for _, v := range []interface{}{&version, &startNano, &interval, &rounds, &nblocks} {
		if err := read(v); err != nil {
			return nil, err
		}
	}
	if version < 1 || version > fileVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	if rounds == 0 || rounds > 1<<22 || nblocks > 1<<22 {
		return nil, fmt.Errorf("dataset: implausible dimensions %d×%d", nblocks, rounds)
	}
	start := time.Unix(0, startNano).UTC()
	end := start.Add(time.Duration(int64(rounds)-1) * time.Duration(interval))
	tl := timeline.New(start, end, time.Duration(interval))
	if tl.NumRounds() != int(rounds) {
		return nil, fmt.Errorf("dataset: timeline reconstruction mismatch")
	}

	ids := make([]uint32, nblocks)
	if err := read(ids); err != nil {
		return nil, err
	}
	blocks := make([]netmodel.BlockID, nblocks)
	for i, id := range ids {
		blocks[i] = netmodel.BlockID(id)
	}
	s := NewStore(tl, blocks)
	if len(s.blocks) != int(nblocks) {
		return nil, fmt.Errorf("dataset: duplicate blocks in file")
	}

	miss := make([]uint64, (rounds+63)/64)
	if err := read(miss); err != nil {
		return nil, err
	}
	for r := 0; r < int(rounds); r++ {
		if miss[r/64]>>(r%64)&1 == 1 {
			s.missing[r] = true
		}
	}
	if version >= 3 {
		done := make([]uint64, (rounds+63)/64)
		if err := read(done); err != nil {
			return nil, err
		}
		for r := 0; r < int(rounds); r++ {
			s.done[r] = done[r/64]>>(r%64)&1 == 1
		}
		var npartial uint32
		if err := read(&npartial); err != nil {
			return nil, err
		}
		if npartial > rounds {
			return nil, fmt.Errorf("dataset: implausible partial-round count %d", npartial)
		}
		for i := 0; i < int(npartial); i++ {
			var r uint32
			var c uint16
			if err := read(&r); err != nil {
				return nil, err
			}
			if err := read(&c); err != nil {
				return nil, err
			}
			if r >= rounds {
				return nil, fmt.Errorf("dataset: partial round %d out of range", r)
			}
			s.coverage[r] = c
		}
	} else {
		// Legacy files predate progress tracking: treat them as complete
		// campaigns at full coverage (NewStore's default).
		for r := range s.done {
			s.done[r] = true
		}
	}
	for i := range s.resp {
		if version == 1 {
			if _, err := io.ReadFull(br, s.resp[i]); err != nil {
				return nil, err
			}
			continue
		}
		var rowLen uint32
		if err := read(&rowLen); err != nil {
			return nil, err
		}
		if rowLen > 2*rounds+64 {
			return nil, fmt.Errorf("dataset: implausible RLE row length %d", rowLen)
		}
		rle := make([]byte, rowLen)
		if _, err := io.ReadFull(br, rle); err != nil {
			return nil, err
		}
		if err := rleDecode(s.resp[i], rle); err != nil {
			return nil, err
		}
	}
	for i := range s.routed {
		if err := read(s.routed[i]); err != nil {
			return nil, err
		}
	}
	var ntracked uint32
	if err := read(&ntracked); err != nil {
		return nil, err
	}
	for i := 0; i < int(ntracked); i++ {
		var bi uint32
		if err := read(&bi); err != nil {
			return nil, err
		}
		if int(bi) >= len(s.blocks) {
			return nil, fmt.Errorf("dataset: tracked block index %d out of range", bi)
		}
		arr := make([]uint16, rounds)
		if err := read(arr); err != nil {
			return nil, err
		}
		s.rtt[int(bi)] = arr
	}
	return s, nil
}

// Save writes the store to a file.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a store from a file.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
