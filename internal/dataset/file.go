package dataset

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

// Binary file format (little endian):
//
//	magic "CMDS" | version u32 | startUnixNano i64 | interval i64 | rounds u32
//	nblocks u32 | blockIDs [nblocks]u32
//	missing bitset [(rounds+63)/64]u64
//	v3+: done bitset [(rounds+63)/64]u64
//	v3+: npartial u32 | npartial × (round u32, coverage u16) — only rounds
//	     below full coverage are listed (normally none)
//	resp rows, v2/v3: nblocks × (rowLen u32 + RLE bytes)
//	resp rows, v4:    column index [nblocks]u32 (encoded lengths), then the
//	                  concatenated delta+RLE blob in block order
//	routed rows: nblocks × words u64
//	ntracked u32 | per tracked: blockIdx u32, rounds × u16 RTT ms

const (
	fileMagic = "CMDS"
	// Version 1 stores resp rows raw; version 2 run-length codes them
	// (rowLen u32 + RLE bytes), typically 5-20x smaller for real
	// campaigns; version 3 adds the done bitset and per-round coverage
	// used by checkpoint/resume and partial-round gating; version 4 delta
	// codes rows before the RLE (plateau rows collapse into runs) and
	// fronts them with a column index so OpenLazy can materialize rows on
	// first touch instead of decoding the whole file at open.
	fileVersion = 4
)

// enc is a sticky-error little-endian encoder. It replaces the
// reflection-based binary.Write calls on the per-row path: every value and
// slice is packed into one reusable scratch buffer and written in a single
// call, so serializing a store performs O(1) allocations regardless of how
// many block rows it holds.
type enc struct {
	cw      *countingWriter
	scratch []byte
	err     error
}

// bytes returns the scratch buffer resized to n (only valid until the next
// codec call).
func (e *enc) bytes(n int) []byte {
	if cap(e.scratch) < n {
		e.scratch = make([]byte, n)
	}
	e.scratch = e.scratch[:n]
	return e.scratch
}

func (e *enc) raw(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.cw.Write(b)
}

func (e *enc) u16(v uint16) {
	if e.err != nil {
		return
	}
	b := e.bytes(2)
	binary.LittleEndian.PutUint16(b, v)
	_, e.err = e.cw.Write(b)
}

func (e *enc) u32(v uint32) {
	if e.err != nil {
		return
	}
	b := e.bytes(4)
	binary.LittleEndian.PutUint32(b, v)
	_, e.err = e.cw.Write(b)
}

func (e *enc) i64(v int64) {
	if e.err != nil {
		return
	}
	b := e.bytes(8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	_, e.err = e.cw.Write(b)
}

func (e *enc) u16s(vs []uint16) {
	if e.err != nil {
		return
	}
	b := e.bytes(2 * len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint16(b[2*i:], v)
	}
	_, e.err = e.cw.Write(b)
}

func (e *enc) u32s(vs []uint32) {
	if e.err != nil {
		return
	}
	b := e.bytes(4 * len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	_, e.err = e.cw.Write(b)
}

func (e *enc) u64s(vs []uint64) {
	if e.err != nil {
		return
	}
	b := e.bytes(8 * len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	_, e.err = e.cw.Write(b)
}

// WriteTo serializes the store.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &countingWriter{w: bw}
	e := &enc{cw: cw}

	e.raw([]byte(fileMagic))
	e.u32(fileVersion)
	e.i64(s.tl.Start().UnixNano())
	e.i64(int64(s.tl.Interval()))
	e.u32(uint32(s.tl.NumRounds()))
	e.u32(uint32(len(s.blocks)))

	ids := make([]uint32, len(s.blocks))
	for i, b := range s.blocks {
		ids[i] = uint32(b)
	}
	e.u32s(ids)

	miss := make([]uint64, (s.tl.NumRounds()+63)/64)
	for r, m := range s.missing {
		if m {
			miss[r/64] |= 1 << (r % 64)
		}
	}
	e.u64s(miss)
	done := make([]uint64, (s.tl.NumRounds()+63)/64)
	for r, d := range s.done {
		if d {
			done[r/64] |= 1 << (r % 64)
		}
	}
	e.u64s(done)
	var npartial uint32
	for _, c := range s.coverage {
		if c != coverageFull {
			npartial++
		}
	}
	e.u32(npartial)
	for r, c := range s.coverage {
		if c != coverageFull {
			e.u32(uint32(r))
			e.u16(c)
		}
	}
	// v4 resp section: the column index precedes the data, so the blob is
	// staged up front (two amortized allocations for the whole store).
	lens := make([]uint32, len(s.resp))
	var blob, scratch []byte
	for i := range s.resp {
		n := len(blob)
		blob = deltaRLEAppend(blob, s.respRow(i), &scratch)
		lens[i] = uint32(len(blob) - n)
	}
	e.u32s(lens)
	e.raw(blob)
	for _, row := range s.routed {
		e.u64s(row)
	}
	tracked := make([]int, 0, len(s.rtt))
	for bi := range s.rtt {
		tracked = append(tracked, bi)
	}
	sort.Ints(tracked)
	e.u32(uint32(len(tracked)))
	for _, bi := range tracked {
		e.u32(uint32(bi))
		e.u16s(s.rtt[bi])
	}
	if e.err != nil {
		return cw.n, e.err
	}
	return cw.n, bw.Flush()
}

// dec is the sticky-error counterpart of enc: fixed-width values are read
// through one reusable scratch buffer instead of per-call binary.Read
// reflection.
type dec struct {
	r       io.Reader
	scratch []byte
	err     error
}

// bytes reads exactly n bytes into the reusable scratch buffer (contents
// valid until the next codec call); returns nil after any error.
func (d *dec) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if cap(d.scratch) < n {
		d.scratch = make([]byte, n)
	}
	d.scratch = d.scratch[:n]
	if _, err := io.ReadFull(d.r, d.scratch); err != nil {
		d.err = err
		return nil
	}
	return d.scratch
}

func (d *dec) u16() uint16 {
	if b := d.bytes(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (d *dec) u32() uint32 {
	if b := d.bytes(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *dec) i64() int64 {
	if b := d.bytes(8); b != nil {
		return int64(binary.LittleEndian.Uint64(b))
	}
	return 0
}

func (d *dec) u32s(dst []uint32) {
	b := d.bytes(4 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
}

func (d *dec) u64s(dst []uint64) {
	b := d.bytes(8 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
}

func (d *dec) u16s(dst []uint16) {
	b := d.bytes(2 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
}

// ReadFrom deserializes a store written by WriteTo.
func ReadFrom(r io.Reader) (*Store, error) {
	return readFrom(r, nil)
}

// readFrom decodes any supported file version. With a non-nil lazyBuf, r
// must be a *bytes.Reader over lazyBuf and the file must be v4: resp
// columns are captured by reference into the buffer instead of decoded, and
// materialize on first touch (see Store.respRow).
func readFrom(r io.Reader, lazyBuf []byte) (*Store, error) {
	var br io.Reader
	if lazyBuf != nil {
		br = r // already in memory, and offset math must stay exact
	} else {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	d := &dec{r: br}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	version := d.u32()
	startNano := d.i64()
	interval := d.i64()
	rounds := d.u32()
	nblocks := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if version < 1 || version > fileVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	if rounds == 0 || rounds > 1<<22 || nblocks > 1<<22 {
		return nil, fmt.Errorf("dataset: implausible dimensions %d×%d", nblocks, rounds)
	}
	start := time.Unix(0, startNano).UTC()
	end := start.Add(time.Duration(int64(rounds)-1) * time.Duration(interval))
	tl := timeline.New(start, end, time.Duration(interval))
	if tl.NumRounds() != int(rounds) {
		return nil, fmt.Errorf("dataset: timeline reconstruction mismatch")
	}

	ids := make([]uint32, nblocks)
	d.u32s(ids)
	if d.err != nil {
		return nil, d.err
	}
	blocks := make([]netmodel.BlockID, nblocks)
	for i, id := range ids {
		blocks[i] = netmodel.BlockID(id)
	}
	var s *Store
	if lazyBuf != nil {
		if version != 4 {
			return nil, fmt.Errorf("dataset: lazy open requires v4, got v%d", version)
		}
		s = newStoreShell(tl, blocks)
	} else {
		s = NewStore(tl, blocks)
	}
	if len(s.blocks) != int(nblocks) {
		return nil, fmt.Errorf("dataset: duplicate blocks in file")
	}

	miss := make([]uint64, (rounds+63)/64)
	d.u64s(miss)
	if d.err != nil {
		return nil, d.err
	}
	for r := 0; r < int(rounds); r++ {
		if miss[r/64]>>(r%64)&1 == 1 {
			s.missing[r] = true
		}
	}
	if version >= 3 {
		done := make([]uint64, (rounds+63)/64)
		d.u64s(done)
		if d.err != nil {
			return nil, d.err
		}
		for r := 0; r < int(rounds); r++ {
			s.done[r] = done[r/64]>>(r%64)&1 == 1
		}
		npartial := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if npartial > rounds {
			return nil, fmt.Errorf("dataset: implausible partial-round count %d", npartial)
		}
		for i := 0; i < int(npartial); i++ {
			r := d.u32()
			c := d.u16()
			if d.err != nil {
				return nil, d.err
			}
			if r >= rounds {
				return nil, fmt.Errorf("dataset: partial round %d out of range", r)
			}
			s.coverage[r] = c
		}
	} else {
		// Legacy files predate progress tracking: treat them as complete
		// campaigns at full coverage (NewStore's default).
		for r := range s.done {
			s.done[r] = true
		}
	}
	switch {
	case version >= 4:
		lens := make([]uint32, nblocks)
		d.u32s(lens)
		if d.err != nil {
			return nil, d.err
		}
		offs := make([]uint32, nblocks+1)
		for i, l := range lens {
			if l > 2*rounds+64 {
				return nil, fmt.Errorf("dataset: implausible column length %d", l)
			}
			offs[i+1] = offs[i] + l
		}
		if lazyBuf != nil {
			bs := r.(*bytes.Reader)
			base := bs.Size() - int64(bs.Len())
			total := int64(offs[nblocks])
			if base+total > int64(len(lazyBuf)) {
				return nil, io.ErrUnexpectedEOF
			}
			s.lazyBlob = lazyBuf[base : base+total]
			s.lazyOffs = offs
			s.lazyOnce = make([]sync.Once, nblocks)
			if _, err := bs.Seek(total, io.SeekCurrent); err != nil {
				return nil, err
			}
		} else {
			for i := range s.resp {
				rle := d.bytes(int(lens[i]))
				if d.err != nil {
					return nil, d.err
				}
				if err := deltaRLEDecode(s.resp[i], rle); err != nil {
					return nil, err
				}
			}
		}
	case version == 1:
		for i := range s.resp {
			if _, err := io.ReadFull(br, s.resp[i]); err != nil {
				return nil, err
			}
		}
	default: // v2/v3: per-row length prefix + plain RLE
		for i := range s.resp {
			rowLen := d.u32()
			if d.err != nil {
				return nil, d.err
			}
			if rowLen > 2*rounds+64 {
				return nil, fmt.Errorf("dataset: implausible RLE row length %d", rowLen)
			}
			// The scratch buffer doubles as the per-row RLE staging area; it
			// is fully consumed by rleDecode before the next codec call
			// reuses it.
			rle := d.bytes(int(rowLen))
			if d.err != nil {
				return nil, d.err
			}
			if err := rleDecode(s.resp[i], rle); err != nil {
				return nil, err
			}
		}
	}
	for i := range s.routed {
		d.u64s(s.routed[i])
	}
	ntracked := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	for i := 0; i < int(ntracked); i++ {
		bi := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if int(bi) >= len(s.blocks) {
			return nil, fmt.Errorf("dataset: tracked block index %d out of range", bi)
		}
		arr := make([]uint16, rounds)
		d.u16s(arr)
		s.rtt[int(bi)] = arr
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// Save writes the store to a file.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveSync writes the store to a file and fsyncs it before closing, so the
// bytes are durable — not just in the page cache — when it returns. Use it
// for checkpoint temp files that are about to be renamed over live state: a
// rename is only crash-safe if the renamed content already hit the disk.
func (s *Store) SaveSync(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a store from a file.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

// OpenLazy reads a store file keeping v4 resp columns encoded: the header,
// bitsets and column index are parsed up front, and each block's row is
// delta+RLE decoded on first touch. Analyses that visit a subset of blocks
// (single-AS queries, regional slices) skip the decode cost of everything
// else. Pre-v4 files have no column index and fall back to an eager Load.
func OpenLazy(path string) (*Store, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) >= 8 && string(buf[:4]) == fileMagic &&
		binary.LittleEndian.Uint32(buf[4:8]) == 4 {
		return readFrom(bytes.NewReader(buf), buf)
	}
	return ReadFrom(bytes.NewReader(buf))
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
