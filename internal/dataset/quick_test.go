package dataset

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

// TestQuickFileRoundTrip fuzzes random stores through the binary format.
func TestQuickFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		rounds := 10 + rng.Intn(300)
		start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
		tl := timeline.New(start, start.Add(time.Duration(rounds-1)*2*time.Hour), 2*time.Hour)
		nBlocks := 1 + rng.Intn(20)
		blocks := make([]netmodel.BlockID, nBlocks)
		for i := range blocks {
			blocks[i] = netmodel.BlockID(rng.Uint32() >> 8)
		}
		s := NewStore(tl, blocks)
		for bi := 0; bi < s.NumBlocks(); bi++ {
			if rng.Intn(3) == 0 {
				s.TrackRTT(bi)
			}
			for r := 0; r < rounds; r++ {
				s.SetRound(bi, r, rng.Intn(300), rng.Intn(2) == 0)
				s.SetRTT(bi, r, uint16(rng.Intn(400)))
			}
		}
		for r := 0; r < rounds; r++ {
			if rng.Intn(13) == 0 {
				s.SetMissing(r)
			}
		}

		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumBlocks() != s.NumBlocks() {
			t.Fatalf("trial %d: blocks %d vs %d", trial, got.NumBlocks(), s.NumBlocks())
		}
		for bi := 0; bi < s.NumBlocks(); bi++ {
			for r := 0; r < rounds; r++ {
				if got.Resp(bi, r) != s.Resp(bi, r) || got.Routed(bi, r) != s.Routed(bi, r) {
					t.Fatalf("trial %d: data mismatch at %d/%d", trial, bi, r)
				}
				if got.RTT(bi, r) != s.RTT(bi, r) {
					t.Fatalf("trial %d: rtt mismatch at %d/%d", trial, bi, r)
				}
			}
		}
		for r := 0; r < rounds; r++ {
			if got.Missing(r) != s.Missing(r) {
				t.Fatalf("trial %d: missing mismatch at %d", trial, r)
			}
		}
	}
}

// TestQuickReadFromNeverPanics feeds arbitrary bytes to the reader.
func TestQuickReadFromNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, err := ReadFrom(bytes.NewReader(data))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
	// And with a valid magic prefix.
	g := func(data []byte) bool {
		buf := append([]byte("CMDS"), data...)
		_, err := ReadFrom(bytes.NewReader(buf))
		_ = err
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonthStatsInvariants checks aggregate invariants on random data.
func TestQuickMonthStatsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.AddDate(0, 3, 0), 2*time.Hour)
	s := NewStore(tl, []netmodel.BlockID{netmodel.MustParseBlock("10.0.0.0/24")})
	for trial := 0; trial < 100; trial++ {
		for r := 0; r < tl.NumRounds(); r++ {
			s.SetRound(0, r, rng.Intn(260), rng.Intn(2) == 0)
		}
		for m := 0; m < tl.NumMonths(); m++ {
			st := s.MonthStats(0, m)
			if st.MeanResp > float64(st.EverActive) {
				t.Fatalf("mean %.2f exceeds ever-active %d", st.MeanResp, st.EverActive)
			}
			if st.Availability < 0 || st.Availability > 1 {
				t.Fatalf("availability %f out of range", st.Availability)
			}
			if st.RoutedRounds > st.MeasuredRounds {
				t.Fatal("routed rounds exceed measured rounds")
			}
			if st.EverActive > RespCap {
				t.Fatalf("ever-active %d exceeds cap", st.EverActive)
			}
		}
	}
}
