package dataset

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// RoundLog is an append-only journal of per-round observations, the
// streaming counterpart of the checkpoint file: a full store snapshot costs
// O(campaign) per write, the log costs O(blocks) per round. A campaign
// appends each handled round as it lands; after a crash, replaying the log
// over the last checkpoint reconstructs every round the snapshot missed.
//
// Binary format (little endian):
//
//	magic "CMRL" | version u32 | rounds u32 | nblocks u32
//	records: round u32 | flags u8 (bit0 missing, bit1 done) | coverage u16
//	         elen u32 | delta+RLE resp column (nblocks bytes decoded)
//	         routed bitset [(nblocks+63)/64]u64 (bit b = block b routed)
//
// Each record is one Write followed by one fsync, so a crash leaves at most
// one truncated record at the tail — which replay tolerates silently.
const (
	roundLogMagic   = "CMRL"
	roundLogVersion = 1
)

const roundLogHeaderLen = 4 + 4 + 4 + 4

// RoundLog appends per-round records to a journal file. Not safe for
// concurrent use; the campaign loop owns it.
type RoundLog struct {
	f       *os.File
	rounds  int
	nblocks int
	col     []uint8 // per-round resp column scratch
	buf     []byte  // record staging buffer
	scratch []byte  // delta transform scratch
}

// OpenRoundLog opens (or creates) the journal at path for appending rounds
// of s. An existing log's header must match the store's dimensions.
func OpenRoundLog(path string, s *Store) (*RoundLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &RoundLog{
		f:       f,
		rounds:  s.tl.NumRounds(),
		nblocks: s.NumBlocks(),
		col:     make([]uint8, s.NumBlocks()),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		hdr := make([]byte, roundLogHeaderLen)
		copy(hdr, roundLogMagic)
		binary.LittleEndian.PutUint32(hdr[4:], roundLogVersion)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(l.rounds))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(l.nblocks))
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		hdr := make([]byte, roundLogHeaderLen)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("dataset: round log header: %w", err)
		}
		if err := checkRoundLogHeader(hdr, l.rounds, l.nblocks); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

func checkRoundLogHeader(hdr []byte, rounds, nblocks int) error {
	if string(hdr[:4]) != roundLogMagic {
		return fmt.Errorf("dataset: bad round log magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != roundLogVersion {
		return fmt.Errorf("dataset: unsupported round log version %d", v)
	}
	if r := binary.LittleEndian.Uint32(hdr[8:]); int(r) != rounds {
		return fmt.Errorf("dataset: round log rounds %d != store %d", r, rounds)
	}
	if n := binary.LittleEndian.Uint32(hdr[12:]); int(n) != nblocks {
		return fmt.Errorf("dataset: round log blocks %d != store %d", n, nblocks)
	}
	return nil
}

// Append journals round's state from s: resp column, routedness, missing,
// done and coverage. One durable write; safe to call again for the same
// round (replay keeps the last record).
func (l *RoundLog) Append(s *Store, round int) error {
	if round < 0 || round >= l.rounds {
		return fmt.Errorf("dataset: round log append %d out of range", round)
	}
	for bi := 0; bi < l.nblocks; bi++ {
		l.col[bi] = s.respRow(bi)[round]
	}
	b := l.buf[:0]
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(round))
	b = append(b, tmp[:4]...)
	var flags byte
	if s.missing[round] {
		flags |= 1
	}
	if s.done[round] {
		flags |= 2
	}
	b = append(b, flags)
	binary.LittleEndian.PutUint16(tmp[:2], s.coverage[round])
	b = append(b, tmp[:2]...)
	lenAt := len(b)
	b = append(b, 0, 0, 0, 0)
	b = deltaRLEAppend(b, l.col, &l.scratch)
	binary.LittleEndian.PutUint32(b[lenAt:], uint32(len(b)-lenAt-4))
	for base := 0; base < l.nblocks; base += 64 {
		limit := base + 64
		if limit > l.nblocks {
			limit = l.nblocks
		}
		var w uint64
		for bi := base; bi < limit; bi++ {
			if s.Routed(bi, round) {
				w |= 1 << (bi - base)
			}
		}
		var wb [8]byte
		binary.LittleEndian.PutUint64(wb[:], w)
		b = append(b, wb[:]...)
	}
	l.buf = b
	if _, err := l.f.Write(b); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the journal file.
func (l *RoundLog) Close() error { return l.f.Close() }

// ReplayRoundLog applies every complete record in the journal at path to s,
// returning the rounds applied in record order (a round journaled twice is
// applied twice; the later record wins). A truncated final record — the
// normal shape of a crash mid-append — is ignored silently; anything else
// malformed is an error.
func ReplayRoundLog(s *Store, path string) ([]int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) == 0 {
		return nil, nil // created but never written: an empty journal
	}
	if len(buf) < roundLogHeaderLen {
		return nil, fmt.Errorf("dataset: round log too short")
	}
	rounds := s.tl.NumRounds()
	nblocks := s.NumBlocks()
	if err := checkRoundLogHeader(buf[:roundLogHeaderLen], rounds, nblocks); err != nil {
		return nil, err
	}
	words := (nblocks + 63) / 64
	col := make([]uint8, nblocks)
	var applied []int
	pos := roundLogHeaderLen
	for pos < len(buf) {
		if pos+11 > len(buf) {
			break // truncated tail
		}
		round := int(binary.LittleEndian.Uint32(buf[pos:]))
		flags := buf[pos+4]
		cov := binary.LittleEndian.Uint16(buf[pos+5:])
		elen := int(binary.LittleEndian.Uint32(buf[pos+7:]))
		if elen > 2*nblocks+64 {
			return applied, fmt.Errorf("dataset: round log: implausible column length %d", elen)
		}
		end := pos + 11 + elen + 8*words
		if end > len(buf) {
			break // truncated tail
		}
		if round >= rounds {
			return applied, fmt.Errorf("dataset: round log: round %d out of range", round)
		}
		if err := deltaRLEDecode(col, buf[pos+11:pos+11+elen]); err != nil {
			return applied, fmt.Errorf("dataset: round log round %d: %w", round, err)
		}
		routed := buf[pos+11+elen : end]
		for bi := 0; bi < nblocks; bi++ {
			w := binary.LittleEndian.Uint64(routed[8*(bi/64):])
			s.SetRound(bi, round, int(col[bi]), w>>(bi%64)&1 == 1)
		}
		s.coverage[round] = cov
		s.missing[round] = flags&1 != 0
		s.done[round] = flags&2 != 0
		applied = append(applied, round)
		pos = end
	}
	return applied, nil
}
