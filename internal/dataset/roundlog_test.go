package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

func roundLogStore(t testing.TB) *Store {
	t.Helper()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.Add(49*2*time.Hour), 2*time.Hour)
	blocks := make([]netmodel.BlockID, 70) // two routed words per round
	for i := range blocks {
		blocks[i] = netmodel.BlockID(i)
	}
	return NewStore(tl, blocks)
}

// logRound writes one synthetic round into s and journals it.
func logRound(t *testing.T, l *RoundLog, s *Store, r, salt int) {
	t.Helper()
	for bi := 0; bi < s.NumBlocks(); bi++ {
		s.SetRound(bi, r, (bi*7+r+salt)%11, (bi+r+salt)%5 != 0)
	}
	if r%7 == 3 {
		s.SetCoverage(r, 0.6)
	}
	s.SetDone(r)
	if err := l.Append(s, r); err != nil {
		t.Fatalf("append %d: %v", r, err)
	}
}

func assertRoundEqual(t *testing.T, want, got *Store, r int) {
	t.Helper()
	for bi := 0; bi < want.NumBlocks(); bi++ {
		if got.Resp(bi, r) != want.Resp(bi, r) || got.Routed(bi, r) != want.Routed(bi, r) {
			t.Fatalf("round %d block %d: (%d,%v) vs (%d,%v)", r, bi,
				got.Resp(bi, r), got.Routed(bi, r), want.Resp(bi, r), want.Routed(bi, r))
		}
	}
	if got.Missing(r) != want.Missing(r) || got.Done(r) != want.Done(r) ||
		got.Coverage(r) != want.Coverage(r) {
		t.Fatalf("round %d: missing/done/coverage (%v,%v,%g) vs (%v,%v,%g)", r,
			got.Missing(r), got.Done(r), got.Coverage(r),
			want.Missing(r), want.Done(r), want.Coverage(r))
	}
}

func TestRoundLogAppendReplay(t *testing.T) {
	src := roundLogStore(t)
	path := filepath.Join(t.TempDir(), "rounds.cmrl")
	l, err := OpenRoundLog(path, src)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		logRound(t, l, src, r, 0)
	}
	// A vantage-outage round journals too.
	src.SetMissing(10)
	if err := l.Append(src, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	dst := roundLogStore(t)
	applied, err := ReplayRoundLog(dst, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 11 {
		t.Fatalf("applied %d rounds, want 11", len(applied))
	}
	for r := 0; r <= 10; r++ {
		assertRoundEqual(t, src, dst, r)
	}
	if dst.NextUndone() != 11 {
		t.Fatalf("NextUndone = %d, want 11", dst.NextUndone())
	}
}

func TestRoundLogReopenAppendsAndDuplicateWins(t *testing.T) {
	src := roundLogStore(t)
	path := filepath.Join(t.TempDir(), "rounds.cmrl")
	l, err := OpenRoundLog(path, src)
	if err != nil {
		t.Fatal(err)
	}
	logRound(t, l, src, 0, 0)
	logRound(t, l, src, 1, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the header is validated, appends continue at the tail. Round
	// 1 is re-journaled with different data — replay must keep the last.
	l, err = OpenRoundLog(path, src)
	if err != nil {
		t.Fatal(err)
	}
	logRound(t, l, src, 1, 99)
	logRound(t, l, src, 2, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	dst := roundLogStore(t)
	applied, err := ReplayRoundLog(dst, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 4 {
		t.Fatalf("applied %d records, want 4", len(applied))
	}
	for r := 0; r <= 2; r++ {
		assertRoundEqual(t, src, dst, r)
	}
}

// TestRoundLogDuplicateCoverageLastWins re-journals the same round with a
// different salvaged coverage each time: replay's last-wins rule must apply
// to coverage exactly as it does to block data, so a rescan that achieved a
// different coverage is what signal derivation gates on after recovery.
func TestRoundLogDuplicateCoverageLastWins(t *testing.T) {
	src := roundLogStore(t)
	path := filepath.Join(t.TempDir(), "rounds.cmrl")
	l, err := OpenRoundLog(path, src)
	if err != nil {
		t.Fatal(err)
	}
	journal := func(cov float64) {
		for bi := 0; bi < src.NumBlocks(); bi++ {
			src.SetRound(bi, 0, bi%11, true)
		}
		src.SetCoverage(0, cov)
		src.SetDone(0)
		if err := l.Append(src, 0); err != nil {
			t.Fatal(err)
		}
	}
	journal(1.0)
	journal(0.6)
	journal(0.35)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	dst := roundLogStore(t)
	applied, err := ReplayRoundLog(dst, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 3 || applied[0] != 0 || applied[1] != 0 || applied[2] != 0 {
		t.Fatalf("applied = %v, want [0 0 0]", applied)
	}
	// The last record's coverage landed, through the fixed-point encoding.
	last := 0.35
	want := float64(uint16(last*65535+0.5)) / 65535
	if got := dst.Coverage(0); got != want {
		t.Fatalf("Coverage(0) = %g, want %g", got, want)
	}
	// And it is the value the signal pipeline's gate sees.
	if !dst.EffectiveMissingAt(0, 0.5) {
		t.Fatal("round with replayed 0.35 coverage passes a 0.5 gate")
	}
	if dst.EffectiveMissingAt(0, 0.3) {
		t.Fatal("round with replayed 0.35 coverage fails a 0.3 gate")
	}
}

func TestRoundLogTruncatedTailTolerated(t *testing.T) {
	src := roundLogStore(t)
	path := filepath.Join(t.TempDir(), "rounds.cmrl")
	l, err := OpenRoundLog(path, src)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		logRound(t, l, src, r, 0)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial record at the tail; replay must
	// apply everything before it and stop silently.
	for _, cut := range []int{1, 9, 40} {
		trunc := filepath.Join(t.TempDir(), "trunc.cmrl")
		if err := os.WriteFile(trunc, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		dst := roundLogStore(t)
		applied, err := ReplayRoundLog(dst, trunc)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(applied) != 4 {
			t.Fatalf("cut %d: applied %d rounds, want 4", cut, len(applied))
		}
		for r := 0; r < 4; r++ {
			assertRoundEqual(t, src, dst, r)
		}
	}
}

func TestRoundLogValidation(t *testing.T) {
	src := roundLogStore(t)
	dir := t.TempDir()

	// Empty file: created but never written — an empty journal, not an error.
	empty := filepath.Join(dir, "empty.cmrl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if applied, err := ReplayRoundLog(src, empty); err != nil || len(applied) != 0 {
		t.Fatalf("empty journal: applied=%v err=%v", applied, err)
	}

	// Dimension mismatch is rejected at open and at replay.
	path := filepath.Join(dir, "rounds.cmrl")
	l, err := OpenRoundLog(path, src)
	if err != nil {
		t.Fatal(err)
	}
	logRound(t, l, src, 0, 0)
	if err := l.Append(src, src.Timeline().NumRounds()); err == nil {
		t.Fatal("out-of-range append accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	other := NewStore(src.Timeline(), src.Blocks()[:32])
	if _, err := OpenRoundLog(path, other); err == nil {
		t.Fatal("mismatched store accepted at open")
	}
	if _, err := ReplayRoundLog(other, path); err == nil {
		t.Fatal("mismatched store accepted at replay")
	}

	// Garbage header.
	bad := filepath.Join(dir, "bad.cmrl")
	if err := os.WriteFile(bad, bytes.Repeat([]byte{0xEE}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayRoundLog(src, bad); err == nil {
		t.Fatal("garbage journal accepted")
	}
}
