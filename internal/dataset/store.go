// Package dataset stores the measurement campaign's raw observations: for
// every /24 block and every probing round, the number of responsive IPs,
// BGP-routed state, and (for tracked blocks) round-trip times. Monthly
// aggregates — the ever-active count E(b) and long-term availability A used
// by block-eligibility rules — are derived on demand.
//
// Two ingestion paths fill a Store with identical semantics: the packet-level
// scanner (scanner.RoundData) and the fast statistical generator in
// internal/sim that makes three-year campaigns tractable on one core.
package dataset

import (
	"fmt"
	"sort"
	"sync"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/timeline"
)

// Store holds one campaign's observations. Create with NewStore, fill via
// SetRound/AddRoundData, then treat as read-only; aggregate methods are safe
// for concurrent readers afterwards.
type Store struct {
	tl     *timeline.Timeline
	blocks []netmodel.BlockID
	index  map[netmodel.BlockID]int

	// resp[b][r] is the number of responsive IPs of block b in round r,
	// capped at 255 (a /24 has at most 256 probe-able addresses and real
	// blocks never saturate; the cap is recorded by RespCap).
	resp [][]uint8
	// routed is a per-block bitset over rounds: bit r set = the block was
	// covered by a BGP route during round r.
	routed [][]uint64
	// missing[r] marks vantage-point outages (no data).
	missing []bool
	// coverage[r] is the probed-target fraction of round r in 1/65535
	// units. Full by default, so generated and legacy stores behave as
	// before; the packet pipeline lowers it for salvaged partial rounds.
	coverage []uint16
	// done[r] marks rounds the campaign has handled (scanned or marked
	// missing) — the resume cursor for checkpoint/restart.
	done []bool

	// rtt[b] is per-round mean RTT in milliseconds for tracked blocks
	// (nil for untracked blocks to bound memory).
	rtt map[int][]uint16

	// Lazy v4 state (OpenLazy): resp rows start nil and materialize from
	// the encoded blob on first touch. lazyOffs has nblocks+1 prefix
	// offsets into lazyBlob; lazyOnce makes materialization safe under
	// concurrent readers. Nil lazyOnce means an eager store.
	lazyBlob []byte
	lazyOffs []uint32
	lazyOnce []sync.Once
	lazyMu   sync.Mutex
	lazyErr  error
}

// RespCap is the saturation value of per-round responsive counts.
const RespCap = 255

// coverageFull is the fixed-point encoding of 100% round coverage.
const coverageFull = 0xFFFF

// NewStore allocates a store for the given blocks (sorted + deduplicated
// internally) over the timeline.
func NewStore(tl *timeline.Timeline, blocks []netmodel.BlockID) *Store {
	s := newStoreShell(tl, blocks)
	for i := range s.resp {
		s.resp[i] = make([]uint8, tl.NumRounds())
	}
	return s
}

// newStoreShell is NewStore without the resp-row allocations — the lazy
// open path fills those on first touch instead, which is the point of the
// v4 column index.
func newStoreShell(tl *timeline.Timeline, blocks []netmodel.BlockID) *Store {
	bs := append([]netmodel.BlockID(nil), blocks...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	out := bs[:0]
	for i, b := range bs {
		if i == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	s := &Store{
		tl:       tl,
		blocks:   out,
		index:    make(map[netmodel.BlockID]int, len(out)),
		resp:     make([][]uint8, len(out)),
		routed:   make([][]uint64, len(out)),
		missing:  make([]bool, tl.NumRounds()),
		coverage: make([]uint16, tl.NumRounds()),
		done:     make([]bool, tl.NumRounds()),
		rtt:      make(map[int][]uint16),
	}
	for r := range s.coverage {
		s.coverage[r] = coverageFull
	}
	words := (tl.NumRounds() + 63) / 64
	for i, b := range out {
		s.index[b] = i
		s.routed[i] = make([]uint64, words)
	}
	return s
}

// respRow returns block bi's materialized per-round series, delta+RLE
// decoding the v4 column on first touch for lazily opened stores. Safe for
// concurrent readers; a corrupt column yields a zero row and records the
// first error (see Err).
func (s *Store) respRow(bi int) []uint8 {
	if s.lazyOnce == nil {
		return s.resp[bi]
	}
	s.lazyOnce[bi].Do(func() {
		row := make([]uint8, s.tl.NumRounds())
		src := s.lazyBlob[s.lazyOffs[bi]:s.lazyOffs[bi+1]]
		if err := deltaRLEDecode(row, src); err != nil {
			s.lazyMu.Lock()
			if s.lazyErr == nil {
				s.lazyErr = fmt.Errorf("dataset: block %d: %w", bi, err)
			}
			s.lazyMu.Unlock()
		}
		s.resp[bi] = row
	})
	return s.resp[bi]
}

// Err returns the first lazy-decode error encountered, if any. Eagerly
// loaded stores surface decode errors at load time and always return nil.
func (s *Store) Err() error {
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	return s.lazyErr
}

// Timeline returns the campaign timeline.
func (s *Store) Timeline() *timeline.Timeline { return s.tl }

// Blocks returns the sorted block list (do not mutate).
func (s *Store) Blocks() []netmodel.BlockID { return s.blocks }

// NumBlocks returns the number of blocks.
func (s *Store) NumBlocks() int { return len(s.blocks) }

// BlockIndex returns the dense index of b, or -1.
func (s *Store) BlockIndex(b netmodel.BlockID) int {
	if i, ok := s.index[b]; ok {
		return i
	}
	return -1
}

// SetMissing marks round r as a vantage outage. The round counts as done:
// a resumed campaign does not rescan it.
func (s *Store) SetMissing(r int) {
	s.missing[r] = true
	s.done[r] = true
}

// Missing reports whether round r has no data.
func (s *Store) Missing(r int) bool { return s.missing[r] }

// MissingRounds returns the full missing-round mask (do not mutate).
func (s *Store) MissingRounds() []bool { return s.missing }

// SetCoverage records the fraction of targets actually probed in round r
// (clamped to [0, 1]); rounds default to full coverage.
func (s *Store) SetCoverage(r int, frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	s.coverage[r] = uint16(frac*coverageFull + 0.5)
}

// Coverage returns the probed-target fraction of round r.
func (s *Store) Coverage(r int) float64 {
	return float64(s.coverage[r]) / coverageFull
}

// SetDone marks round r as handled by the campaign (resume cursor).
func (s *Store) SetDone(r int) { s.done[r] = true }

// Done reports whether round r has been handled.
func (s *Store) Done(r int) bool { return s.done[r] }

// NextUndone returns the first round not yet handled, or NumRounds when
// the campaign is complete — where a resumed campaign picks up.
func (s *Store) NextUndone() int {
	for r, d := range s.done {
		if !d {
			return r
		}
	}
	return s.tl.NumRounds()
}

// EffectiveMissing returns a fresh mask of rounds with no usable data:
// vantage outages plus partial rounds that probed less than minCoverage of
// their targets. Signals treat such rounds like missing ones, so a salvaged
// sliver of a round cannot fabricate an IPS/FBS collapse (§3.1's
// missing-round handling).
func (s *Store) EffectiveMissing(minCoverage float64) []bool {
	out := make([]bool, len(s.missing))
	threshold := coverageThreshold(minCoverage)
	for r := range out {
		out[r] = s.missing[r] || s.coverage[r] < threshold
	}
	return out
}

// EffectiveMissingAt is EffectiveMissing for a single round — the same
// thresholding, so an incremental signals fold and a batch rebuild agree on
// every round's no-data state.
func (s *Store) EffectiveMissingAt(r int, minCoverage float64) bool {
	return s.missing[r] || s.coverage[r] < coverageThreshold(minCoverage)
}

func coverageThreshold(minCoverage float64) uint16 {
	if minCoverage < 0 {
		minCoverage = 0
	}
	if minCoverage > 1 {
		minCoverage = 1
	}
	return uint16(minCoverage * coverageFull)
}

// SetRound records one block's observation for a round. resp is clamped to
// RespCap.
func (s *Store) SetRound(blockIdx, round int, resp int, routed bool) {
	if resp > RespCap {
		resp = RespCap
	}
	if resp < 0 {
		resp = 0
	}
	s.respRow(blockIdx)[round] = uint8(resp)
	if routed {
		s.routed[blockIdx][round/64] |= 1 << (round % 64)
	} else {
		s.routed[blockIdx][round/64] &^= 1 << (round % 64)
	}
}

// TrackRTT enables RTT storage for a block.
func (s *Store) TrackRTT(blockIdx int) {
	if _, ok := s.rtt[blockIdx]; !ok {
		s.rtt[blockIdx] = make([]uint16, s.tl.NumRounds())
	}
}

// SetRTT records a tracked block's mean RTT (milliseconds) for a round.
// It is a no-op for untracked blocks.
func (s *Store) SetRTT(blockIdx, round int, ms uint16) {
	if arr, ok := s.rtt[blockIdx]; ok {
		arr[round] = ms
	}
}

// RTT returns a tracked block's RTT in ms at a round (0 if untracked or no
// responses).
func (s *Store) RTT(blockIdx, round int) uint16 {
	if arr, ok := s.rtt[blockIdx]; ok {
		return arr[round]
	}
	return 0
}

// RTTTracked reports whether RTTs are stored for the block.
func (s *Store) RTTTracked(blockIdx int) bool {
	_, ok := s.rtt[blockIdx]
	return ok
}

// Resp returns the responsive-IP count of block blockIdx in round r.
func (s *Store) Resp(blockIdx, round int) int { return int(s.respRow(blockIdx)[round]) }

// RespSeries returns the block's full per-round series (do not mutate).
func (s *Store) RespSeries(blockIdx int) []uint8 { return s.respRow(blockIdx) }

// Routed reports whether the block was BGP-routed in round r.
func (s *Store) Routed(blockIdx, round int) bool {
	return s.routed[blockIdx][round/64]>>(round%64)&1 == 1
}

// AddRoundData ingests a packet-level scan result for the given round.
// Blocks in rd that are not in the store are ignored. Routedness is not
// carried by scans; set it separately from BGP snapshots.
func (s *Store) AddRoundData(round int, rd *scanner.RoundData) {
	for i := range rd.Blocks {
		br := &rd.Blocks[i]
		bi := s.BlockIndex(br.Block)
		if bi < 0 {
			continue
		}
		resp := int(br.RespCount)
		if resp > RespCap {
			resp = RespCap
		}
		s.respRow(bi)[round] = uint8(resp)
		if br.RTTCount > 0 {
			if _, ok := s.rtt[bi]; ok {
				s.rtt[bi][round] = uint16(br.MeanRTT().Milliseconds())
			}
		}
	}
}

// MonthlyBlockStats summarizes one block's activity in one month.
type MonthlyBlockStats struct {
	// EverActive is E(b): the number of distinct IPs seen responsive at
	// least once during the month.
	EverActive int
	// MeanResp is the mean per-round responsive count over measured rounds.
	MeanResp float64
	// Availability is A: MeanResp / EverActive (0 if E(b)=0) — the
	// long-term probability that an ever-active address replies.
	Availability float64
	// MeasuredRounds is the number of non-missing rounds in the month.
	MeasuredRounds int
	// RoutedRounds is how many measured rounds the block was routed.
	RoutedRounds int
}

// MonthStats computes a block's monthly aggregate. Under the store's
// nested-responsiveness model the distinct ever-active count equals the
// maximum per-round count (see internal/sim: host k responds only when the
// block's count exceeds k), which also matches how the packet-level path
// populates counts.
func (s *Store) MonthStats(blockIdx, month int) MonthlyBlockStats {
	lo, hi := s.tl.MonthRounds(month)
	var st MonthlyBlockStats
	var sum int
	resp := s.respRow(blockIdx)
	for r := lo; r < hi; r++ {
		if s.missing[r] {
			continue
		}
		st.MeasuredRounds++
		c := int(resp[r])
		sum += c
		if c > st.EverActive {
			st.EverActive = c
		}
		if s.Routed(blockIdx, r) {
			st.RoutedRounds++
		}
	}
	if st.MeasuredRounds > 0 {
		st.MeanResp = float64(sum) / float64(st.MeasuredRounds)
	}
	if st.EverActive > 0 {
		st.Availability = st.MeanResp / float64(st.EverActive)
	}
	return st
}

// EligibleFBS reports full-block-scan eligibility for the month:
// E(b) ≥ minEver (the paper uses 3).
func (s *Store) EligibleFBS(blockIdx, month, minEver int) bool {
	return s.MonthStats(blockIdx, month).EverActive >= minEver
}

// EligibleTrinocular reports Trinocular eligibility for the month:
// E(b) ≥ 15 and A ≥ 0.1; indeterminate-belief blocks are those with A < 0.3.
func (s *Store) EligibleTrinocular(blockIdx, month int) (eligible, indeterminate bool) {
	st := s.MonthStats(blockIdx, month)
	eligible = st.EverActive >= 15 && st.Availability >= 0.1
	indeterminate = eligible && st.Availability < 0.3
	return eligible, indeterminate
}

// Validate does basic consistency checks, returning the first problem found.
func (s *Store) Validate() error {
	if len(s.blocks) != len(s.resp) || len(s.blocks) != len(s.routed) {
		return fmt.Errorf("dataset: column length mismatch")
	}
	for i := 1; i < len(s.blocks); i++ {
		if s.blocks[i-1] >= s.blocks[i] {
			return fmt.Errorf("dataset: blocks not sorted at %d", i)
		}
	}
	return nil
}
