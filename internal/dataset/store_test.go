package dataset

import (
	"bytes"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/timeline"
)

func testTimeline() *timeline.Timeline {
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	return timeline.New(start, start.AddDate(0, 2, 0), 2*time.Hour)
}

func testStore(t *testing.T) *Store {
	t.Helper()
	blocks := []netmodel.BlockID{
		netmodel.MustParseBlock("10.0.0.0/24"),
		netmodel.MustParseBlock("10.0.1.0/24"),
		netmodel.MustParseBlock("91.198.4.0/24"),
	}
	s := NewStore(testTimeline(), blocks)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreSetGet(t *testing.T) {
	s := testStore(t)
	s.SetRound(0, 5, 42, true)
	if got := s.Resp(0, 5); got != 42 {
		t.Errorf("Resp = %d", got)
	}
	if !s.Routed(0, 5) {
		t.Error("Routed = false")
	}
	if s.Routed(0, 6) || s.Resp(0, 6) != 0 {
		t.Error("untouched round dirty")
	}
	s.SetRound(0, 5, 0, false)
	if s.Routed(0, 5) {
		t.Error("routed bit not cleared")
	}
	// Clamping.
	s.SetRound(1, 0, 1000, true)
	if got := s.Resp(1, 0); got != RespCap {
		t.Errorf("clamped Resp = %d, want %d", got, RespCap)
	}
	s.SetRound(1, 1, -5, false)
	if got := s.Resp(1, 1); got != 0 {
		t.Errorf("negative Resp = %d", got)
	}
}

func TestStoreDedupsAndSorts(t *testing.T) {
	b := netmodel.MustParseBlock("10.0.0.0/24")
	c := netmodel.MustParseBlock("9.0.0.0/24")
	s := NewStore(testTimeline(), []netmodel.BlockID{b, c, b})
	if s.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d", s.NumBlocks())
	}
	if s.Blocks()[0] != c {
		t.Error("blocks not sorted")
	}
	if s.BlockIndex(b) != 1 || s.BlockIndex(netmodel.MustParseBlock("8.8.8.0/24")) != -1 {
		t.Error("BlockIndex wrong")
	}
}

func TestMonthStats(t *testing.T) {
	s := testStore(t)
	tl := s.Timeline()
	lo, hi := tl.MonthRounds(0)
	// Nested model: counts rise to a max of 20, mean lower.
	for r := lo; r < hi; r++ {
		c := 10
		if r == lo+3 {
			c = 20
		}
		s.SetRound(0, r, c, true)
	}
	st := s.MonthStats(0, 0)
	if st.EverActive != 20 {
		t.Errorf("EverActive = %d, want 20", st.EverActive)
	}
	if st.MeasuredRounds != hi-lo {
		t.Errorf("MeasuredRounds = %d", st.MeasuredRounds)
	}
	if st.RoutedRounds != hi-lo {
		t.Errorf("RoutedRounds = %d", st.RoutedRounds)
	}
	wantMean := (float64(10*(hi-lo-1)) + 20) / float64(hi-lo)
	if st.MeanResp < wantMean-0.01 || st.MeanResp > wantMean+0.01 {
		t.Errorf("MeanResp = %f, want %f", st.MeanResp, wantMean)
	}
	if st.Availability < 0.49 || st.Availability > 0.52 {
		t.Errorf("Availability = %f, want ≈0.5", st.Availability)
	}
}

func TestMonthStatsSkipsMissing(t *testing.T) {
	s := testStore(t)
	tl := s.Timeline()
	lo, hi := tl.MonthRounds(0)
	for r := lo; r < hi; r++ {
		s.SetRound(0, r, 50, true)
	}
	// Mark half the month missing with zero data (as a vantage outage
	// would leave).
	for r := lo; r < lo+(hi-lo)/2; r++ {
		s.SetRound(0, r, 0, false)
		s.SetMissing(r)
	}
	st := s.MonthStats(0, 0)
	if st.MeasuredRounds != hi-lo-(hi-lo)/2 {
		t.Errorf("MeasuredRounds = %d", st.MeasuredRounds)
	}
	if st.MeanResp != 50 {
		t.Errorf("MeanResp = %f, missing rounds polluted the mean", st.MeanResp)
	}
}

func TestEligibility(t *testing.T) {
	s := testStore(t)
	lo, hi := s.Timeline().MonthRounds(0)
	// Block 0: E=3 -> FBS eligible, not Trinocular.
	// Block 1: E=20, A=1.0 -> both, not indeterminate.
	// Block 2: E=20 but responsive in few rounds -> A<0.1 not eligible.
	for r := lo; r < hi; r++ {
		s.SetRound(0, r, 3, true)
		s.SetRound(1, r, 20, true)
		if r < lo+2 {
			s.SetRound(2, r, 20, true)
		}
	}
	if !s.EligibleFBS(0, 0, 3) {
		t.Error("block 0 should be FBS eligible")
	}
	if e, _ := s.EligibleTrinocular(0, 0); e {
		t.Error("block 0 should not be Trinocular eligible")
	}
	if e, ind := s.EligibleTrinocular(1, 0); !e || ind {
		t.Errorf("block 1: eligible=%v indeterminate=%v", e, ind)
	}
	if e, _ := s.EligibleTrinocular(2, 0); e {
		t.Error("block 2 availability too low for Trinocular")
	}
	// Indeterminate: E=20, A between 0.1 and 0.3.
	s2 := testStore(t)
	for r := lo; r < hi; r++ {
		c := 4 // mean 4/20 = 0.2
		if r == lo {
			c = 20
		}
		s2.SetRound(0, r, c, true)
	}
	if e, ind := s2.EligibleTrinocular(0, 0); !e || !ind {
		t.Errorf("want eligible+indeterminate, got %v/%v", e, ind)
	}
}

func TestAddRoundData(t *testing.T) {
	s := testStore(t)
	ts, err := scanner.NewTargetSet([]netmodel.Prefix{
		netmodel.MustParsePrefix("10.0.0.0/23"),
		netmodel.MustParsePrefix("203.0.113.0/24"), // not in store
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := &scanner.RoundData{Targets: ts, Blocks: make([]scanner.BlockResult, ts.NumBlocks())}
	for i, b := range ts.Blocks() {
		rd.Blocks[i].Block = b
		rd.Blocks[i].RespCount = uint16(10 * (i + 1))
		rd.Blocks[i].RTTSum = time.Duration(i+1) * 40 * time.Millisecond
		rd.Blocks[i].RTTCount = 1
	}
	s.TrackRTT(0)
	s.AddRoundData(7, rd)
	if got := s.Resp(0, 7); got != 10 {
		t.Errorf("block0 resp = %d", got)
	}
	if got := s.Resp(1, 7); got != 20 {
		t.Errorf("block1 resp = %d", got)
	}
	if got := s.RTT(0, 7); got != 40 {
		t.Errorf("block0 rtt = %d", got)
	}
	if s.RTTTracked(1) {
		t.Error("block1 should not be tracked")
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := testStore(t)
	tl := s.Timeline()
	s.TrackRTT(2)
	for r := 0; r < tl.NumRounds(); r++ {
		s.SetRound(0, r, r%7, r%3 != 0)
		s.SetRound(2, r, (r*13)%200, true)
		s.SetRTT(2, r, uint16(30+r%50))
	}
	s.SetMissing(5)
	s.SetMissing(100)

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks() != s.NumBlocks() || got.Timeline().NumRounds() != tl.NumRounds() {
		t.Fatalf("dimensions differ")
	}
	for r := 0; r < tl.NumRounds(); r++ {
		if got.Resp(0, r) != s.Resp(0, r) || got.Routed(0, r) != s.Routed(0, r) {
			t.Fatalf("round %d mismatch", r)
		}
		if got.RTT(2, r) != s.RTT(2, r) {
			t.Fatalf("rtt mismatch at %d", r)
		}
	}
	if !got.Missing(5) || !got.Missing(100) || got.Missing(6) {
		t.Error("missing mask corrupted")
	}
	if !got.RTTTracked(2) || got.RTTTracked(0) {
		t.Error("tracked set corrupted")
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOPE          "))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	s := testStore(t)
	s.SetRound(1, 3, 99, true)
	path := t.TempDir() + "/data.cmds"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Resp(1, 3) != 99 || !got.Routed(1, 3) {
		t.Error("loaded data mismatch")
	}
}
