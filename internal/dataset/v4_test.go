package dataset

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

// v4Store builds a small store with every kind of state the file format
// carries: varied resp rows, unrouted stretches, missing and partial and
// undone rounds, and a couple of RTT-tracked blocks.
func v4Store(t testing.TB) *Store {
	t.Helper()
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.Add(499*2*time.Hour), 2*time.Hour)
	blocks := make([]netmodel.BlockID, 70) // >64, so routed rows span two words
	for i := range blocks {
		blocks[i] = netmodel.BlockID(i * 3)
	}
	s := NewStore(tl, blocks)
	for bi := range blocks {
		for r := 0; r < tl.NumRounds(); r++ {
			s.SetRound(bi, r, (bi*31+r*7)%97, (bi+r)%13 != 0)
		}
	}
	s.SetMissing(17)
	s.SetMissing(230)
	s.SetCoverage(44, 0.5)
	s.SetCoverage(45, 0.91)
	for r := 0; r < 300; r++ {
		s.SetDone(r)
	}
	s.TrackRTT(3)
	s.TrackRTT(68)
	for r := 0; r < tl.NumRounds(); r++ {
		s.SetRTT(3, r, uint16(20+r%40))
		s.SetRTT(68, r, uint16(30+r%25))
	}
	return s
}

func assertStoresEqual(t *testing.T, want, got *Store) {
	t.Helper()
	if got.NumBlocks() != want.NumBlocks() || got.Timeline().NumRounds() != want.Timeline().NumRounds() {
		t.Fatalf("dims %d×%d vs %d×%d", got.NumBlocks(), got.Timeline().NumRounds(),
			want.NumBlocks(), want.Timeline().NumRounds())
	}
	rounds := want.Timeline().NumRounds()
	for bi := 0; bi < want.NumBlocks(); bi++ {
		if !bytes.Equal(got.RespSeries(bi), want.RespSeries(bi)) {
			t.Fatalf("block %d: resp rows differ", bi)
		}
		for r := 0; r < rounds; r++ {
			if got.Routed(bi, r) != want.Routed(bi, r) {
				t.Fatalf("block %d round %d: routed %v vs %v", bi, r, got.Routed(bi, r), want.Routed(bi, r))
			}
		}
		if got.RTTTracked(bi) != want.RTTTracked(bi) {
			t.Fatalf("block %d: rtt tracking differs", bi)
		}
		if want.RTTTracked(bi) {
			for r := 0; r < rounds; r++ {
				if got.RTT(bi, r) != want.RTT(bi, r) {
					t.Fatalf("block %d round %d: rtt %d vs %d", bi, r, got.RTT(bi, r), want.RTT(bi, r))
				}
			}
		}
	}
	for r := 0; r < rounds; r++ {
		if got.Missing(r) != want.Missing(r) || got.Done(r) != want.Done(r) ||
			got.Coverage(r) != want.Coverage(r) {
			t.Fatalf("round %d: missing/done/coverage differ", r)
		}
	}
}

func TestV4FileRoundTrip(t *testing.T) {
	s := v4Store(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != 4 {
		t.Fatalf("written version = %d, want 4", v)
	}
	got, err := ReadFrom(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, got)
}

// writeV3 encodes the store in the legacy v3 layout (per-row length prefix
// + plain RLE, no column index) so the decoder's backward-compat path stays
// covered now that WriteTo emits v4.
func writeV3(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteString(fileMagic)
	w(uint32(3))
	w(s.tl.Start().UnixNano())
	w(int64(s.tl.Interval()))
	w(uint32(s.tl.NumRounds()))
	w(uint32(len(s.blocks)))
	for _, b := range s.blocks {
		w(uint32(b))
	}
	words := (s.tl.NumRounds() + 63) / 64
	miss := make([]uint64, words)
	done := make([]uint64, words)
	for r := 0; r < s.tl.NumRounds(); r++ {
		if s.missing[r] {
			miss[r/64] |= 1 << (r % 64)
		}
		if s.done[r] {
			done[r/64] |= 1 << (r % 64)
		}
	}
	w(miss)
	w(done)
	var npartial uint32
	for _, c := range s.coverage {
		if c != coverageFull {
			npartial++
		}
	}
	w(npartial)
	for r, c := range s.coverage {
		if c != coverageFull {
			w(uint32(r))
			w(c)
		}
	}
	for bi := range s.blocks {
		rle := rleAppend(nil, s.respRow(bi))
		w(uint32(len(rle)))
		buf.Write(rle)
	}
	for _, row := range s.routed {
		w(row)
	}
	var tracked []uint32
	for bi := range s.blocks {
		if s.RTTTracked(bi) {
			tracked = append(tracked, uint32(bi))
		}
	}
	w(uint32(len(tracked)))
	for _, bi := range tracked {
		w(bi)
		w(s.rtt[int(bi)])
	}
	return buf.Bytes()
}

func TestV3FileStillReadable(t *testing.T) {
	s := v4Store(t)
	raw := writeV3(t, s)
	got, err := ReadFrom(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, got)

	// OpenLazy has no column index to work with pre-v4 and must fall back
	// to an eager load.
	path := filepath.Join(t.TempDir(), "v3.cmds")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, lazy)
}

func TestOpenLazyMatchesEager(t *testing.T) {
	s := v4Store(t)
	path := filepath.Join(t.TempDir(), "v4.cmds")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.lazyOnce == nil {
		t.Fatal("OpenLazy on a v4 file decoded eagerly")
	}
	// Touch rows out of order — materialization must be order-independent.
	for _, bi := range []int{69, 0, 35, 1} {
		if !bytes.Equal(lazy.RespSeries(bi), s.RespSeries(bi)) {
			t.Fatalf("block %d: lazy row differs", bi)
		}
	}
	assertStoresEqual(t, s, lazy)
	if err := lazy.Err(); err != nil {
		t.Fatalf("Err after full read: %v", err)
	}
}

// respSectionOffsets locates the v4 column index and blob inside a written
// file, mirroring the reader's offset math.
func respSectionOffsets(raw []byte, nblocks, rounds int) (lensStart, blobStart int) {
	words := (rounds + 63) / 64
	pos := 4 + 4 + 8 + 8 + 4 + 4 // magic, version, start, interval, rounds, nblocks
	pos += 4 * nblocks           // block IDs
	pos += 8 * words * 2         // missing + done bitsets
	npartial := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4 + 6*npartial
	return pos, pos + 4*nblocks
}

func TestOpenLazyCorruptColumnSurfacesError(t *testing.T) {
	s := v4Store(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	lensStart, blobStart := respSectionOffsets(raw, s.NumBlocks(), s.tl.NumRounds())
	colLen := int(binary.LittleEndian.Uint32(raw[lensStart:]))
	if colLen == 0 {
		t.Fatal("first column unexpectedly empty")
	}
	// An all-0xFF column can never decode to exactly `rounds` bytes: each
	// control/operand pair emits a 129-run, and a trailing control byte
	// without its operand is itself corrupt.
	for i := 0; i < colLen; i++ {
		raw[blobStart+i] = 0xFF
	}
	path := filepath.Join(t.TempDir(), "corrupt.cmds")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Eager open fails up front...
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("eager ReadFrom accepted a corrupt column")
	}
	// ...lazy open defers the failure to first touch of the bad column.
	lazy, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	if row := lazy.RespSeries(0); len(row) != s.tl.NumRounds() {
		t.Fatalf("corrupt row length %d", len(row))
	}
	if lazy.Err() == nil {
		t.Fatal("Err() nil after touching a corrupt column")
	}
	// Healthy columns still decode.
	if !bytes.Equal(lazy.RespSeries(1), s.RespSeries(1)) {
		t.Fatal("healthy column mis-decoded after a corrupt sibling")
	}
}

func TestOpenLazyTruncatedBlob(t *testing.T) {
	s := v4Store(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, blobStart := respSectionOffsets(raw, s.NumBlocks(), s.tl.NumRounds())
	path := filepath.Join(t.TempDir(), "trunc.cmds")
	if err := os.WriteFile(path, raw[:blobStart+10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLazy(path); err == nil {
		t.Fatal("OpenLazy accepted a file truncated inside the blob")
	}
}

func FuzzRLE(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5})
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{7}, 300))
	f.Add([]byte{0xFF, 0xFF, 0x80, 0x01, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round-trip: every byte string survives encode/decode exactly, and
		// the encoding respects the documented worst-case bound (1 control
		// byte per 128 literals).
		enc := rleAppend(nil, data)
		if max := len(data) + (len(data)+maxLiteralChunk-1)/maxLiteralChunk; len(enc) > max {
			t.Fatalf("encoded %d bytes to %d, worst-case bound %d", len(data), len(enc), max)
		}
		dec := make([]byte, len(data))
		if err := rleDecode(dec, enc); err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round-trip mismatch: %v → %v → %v", data, enc, dec)
		}
		// Adversarial: the same bytes treated as an encoded stream must
		// either fill the target exactly or be rejected — never panic,
		// never report success on a partial fill.
		dst := make([]byte, 257)
		if err := rleDecode(dst, data); err == nil && len(data) == 0 {
			t.Fatal("empty stream claimed to fill a 257-byte row")
		}
	})
}

func FuzzColumnV4(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 3, 3, 4, 4, 5})
	f.Add(bytes.Repeat([]byte{42}, 500))
	f.Add([]byte{0xFF, 0x00, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round-trip through the v4 column coding (delta transform + RLE),
		// bounding the encoding by the reader's plausibility limit.
		var scratch []byte
		enc := deltaRLEAppend(nil, data, &scratch)
		if len(enc) > 2*len(data)+64 {
			t.Fatalf("encoded %d bytes to %d, beyond the reader's 2n+64 limit", len(data), len(enc))
		}
		dec := make([]byte, len(data))
		if err := deltaRLEDecode(dec, enc); err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round-trip mismatch for %d bytes", len(data))
		}
		// Adversarial decode of arbitrary bytes must never panic and must
		// reject partial fills.
		dst := make([]byte, 100)
		_ = deltaRLEDecode(dst, data)
	})
}
