package experiments

import (
	"fmt"
	"time"

	"countrymon/internal/analysis"
	"countrymon/internal/netmodel"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/timeline"
)

func init() {
	register("A1", "Ablation: probe policy (full block vs Trinocular vs single IP)", ablationProbePolicy)
	register("A2", "Ablation: regional classification on/off for attribution", ablationRegionalOff)
	register("A3", "Ablation: eligibility threshold E(b) ≥ 3 vs ≥ 15", ablationEligibility)
	register("A4", "Ablation: probing interval (2h/6h/12h/24h)", ablationInterval)
	register("A5", "Ablation: ISP availability sensing on/off", ablationAvailabilitySensing)
	register("A6", "Ablation: moving-average window (3d/7d/14d)", ablationWindow)
}

// ablationProbePolicy compares how many scripted ground-truth disruptions
// each probing policy detects at AS level.
func ablationProbePolicy(e *Env) *Report {
	r := newReport("A1", "Probe policy")
	sc := e.Scenario()
	tl := e.Store().Timeline()
	trin := e.Trinocular()
	probe := sc.ProbeFunc()

	// Single-IP policy: one probe (the block's most reliable address) per
	// block per round; an AS's signal is its count of responding blocks.
	singleSeries := func(asn netmodel.ASN) *signals.EntitySeries {
		es := &signals.EntitySeries{
			Name: "single/" + asn.String(), TL: tl,
			BGP:           make([]float32, tl.NumRounds()),
			FBS:           make([]float32, tl.NumRounds()),
			IPS:           make([]float32, tl.NumRounds()),
			IPSValidMonth: make([]bool, tl.NumMonths()),
			Missing:       e.Store().MissingRounds(),
		}
		as := sc.Space.Lookup(asn)
		if as == nil {
			return es
		}
		for _, blk := range as.Blocks() {
			reps := sc.Representatives(blk, 1)
			if len(reps) == 0 {
				continue
			}
			for round := 0; round < tl.NumRounds(); round++ {
				if es.Missing[round] {
					continue
				}
				if probe(reps[0], tl.Time(round)) {
					es.FBS[round]++
				}
			}
		}
		copy(es.BGP, e.Signals().AS(asn).BGP)
		return es
	}

	trinSeries := func(asn netmodel.ASN) *signals.EntitySeries {
		es := singleSeries(asn) // reuse BGP/missing scaffolding
		for i := range es.FBS {
			es.FBS[i] = 0
		}
		if s := trin.PerAS[asn]; s != nil {
			copy(es.FBS, s)
		}
		return es
	}

	// Evaluate against scripted single-AS ground-truth events on Kherson's
	// Table-5 ASes (densest event coverage).
	cfg := signals.ASConfig()
	cfg.FBSRequiresIPSBelow = 0
	cfg.AvailabilitySensing = false
	count := func(det map[netmodel.ASN]*signals.Detection) (hit, total int) {
		for _, ev := range sc.Events() {
			if len(ev.ASNs) != 1 {
				continue
			}
			d := det[ev.ASNs[0]]
			if d == nil {
				continue
			}
			total++
			lo, hi := tl.Round(ev.From), tl.Round(ev.To)
			for _, o := range d.Outages {
				if o.Start < hi+1 && o.End > lo {
					hit++
					break
				}
			}
		}
		return hit, total
	}
	ours := map[netmodel.ASN]*signals.Detection{}
	single := map[netmodel.ASN]*signals.Detection{}
	trinD := map[netmodel.ASN]*signals.Detection{}
	for _, asn := range sim.KhersonASNs() {
		if sc.Space.Lookup(asn) == nil {
			continue
		}
		ours[asn] = e.OurAS(asn)
		single[asn] = signals.Detect(singleSeries(asn), cfg)
		trinD[asn] = signals.Detect(trinSeries(asn), cfg)
	}
	oh, ot := count(ours)
	sh, _ := count(single)
	th, _ := count(trinD)
	r.addf("ground-truth single-AS events on Kherson ASes: %d", ot)
	r.addf("detected — full block scans: %d, Trinocular: %d, single-IP: %d", oh, th, sh)
	r.metric("recall_full_block", frac(oh, ot))
	r.metric("recall_trinocular", frac(th, ot))
	r.metric("recall_single_ip", frac(sh, ot))
	return r
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ablationRegionalOff re-runs the Fig-10 correlation with IODA-style
// attribution (every block that ever located an address in the region
// contributes, unweighted) instead of the regional classification.
func ablationRegionalOff(e *Env) *Report {
	r := newReport("A2", "Regional classification on/off")
	st := e.Store()
	tl := st.Timeline()
	cl := e.Classifier()
	res := e.Classification()
	b := e.Signals()
	nfl := netmodel.NonFrontlineRegions()

	naiveRegion := func(region netmodel.Region) *signals.EntitySeries {
		es := &signals.EntitySeries{
			Name: "naive/" + region.String(), TL: tl,
			BGP:           make([]float32, tl.NumRounds()),
			FBS:           make([]float32, tl.NumRounds()),
			IPS:           make([]float32, tl.NumRounds()),
			IPSValidMonth: make([]bool, tl.NumMonths()),
			Missing:       st.MissingRounds(),
		}
		rr := res.Regions[region]
		for _, bc := range rr.Blocks { // all blocks with any presence
			bi := bc.Index
			resp := st.RespSeries(bi)
			for round := 0; round < tl.NumRounds(); round++ {
				if es.Missing[round] {
					continue
				}
				m := tl.MonthOfRound(round)
				es.IPS[round] += float32(resp[round])
				if st.Routed(bi, round) {
					es.BGP[round]++
				}
				if b.Eligible(bi, m) && resp[round] > 0 {
					es.FBS[round]++
				}
			}
		}
		for m := 0; m < tl.NumMonths(); m++ {
			es.IPSValidMonth[m] = true
		}
		return es
	}

	corrOf := func(series func(netmodel.Region) *signals.EntitySeries) float64 {
		var group [][]float64
		for _, region := range nfl {
			d := signals.Detect(series(region), signals.RegionConfig())
			group = append(group, analysis.OutageHoursPerDay(d, tl))
		}
		mean := analysis.MeanOf(group...)
		meanY, days := analysis.YearSlice(mean, tl, 2024)
		pow := dailyPowerHours(e, nfl, days)
		return analysis.Pearson(pow, meanY)
	}

	withClass := corrOf(func(region netmodel.Region) *signals.EntitySeries {
		return b.Region(res.Regions[region], cl)
	})
	without := corrOf(naiveRegion)
	r.addf("power correlation with regional classification: %.2f", withClass)
	r.addf("power correlation without (any-presence attribution): %.2f", without)
	r.metric("pearson_with_classification", withClass)
	r.metric("pearson_without_classification", without)
	return r
}

// ablationEligibility contrasts the E(b) ≥ 3 and E(b) ≥ 15 thresholds.
func ablationEligibility(e *Env) *Report {
	r := newReport("A3", "Eligibility threshold")
	st := e.Store()
	months := st.Timeline().NumMonths()
	var e3, e15 float64
	for bi := 0; bi < st.NumBlocks(); bi++ {
		for m := 0; m < months; m++ {
			s := st.MonthStats(bi, m)
			if s.EverActive >= 3 {
				e3++
			}
			if s.EverActive >= 15 {
				e15++
			}
		}
	}
	e3 /= float64(months)
	e15 /= float64(months)
	r.addf("mean monthly eligible blocks: E≥3 → %.0f, E≥15 → %.0f (%.0f%% retained)", e3, e15, 100*e15/e3)
	// ASes losing all eligible blocks under the stricter rule.
	lost := 0
	for _, asn := range e.TargetASNs() {
		has3, has15 := false, false
		for _, bi := range e.Signals().ASBlocks(asn) {
			for m := 0; m < months; m++ {
				s := st.MonthStats(bi, m)
				if s.EverActive >= 3 {
					has3 = true
				}
				if s.EverActive >= 15 {
					has15 = true
				}
			}
		}
		if has3 && !has15 {
			lost++
		}
	}
	r.addf("target ASes measurable only under E≥3: %d of %d", lost, len(e.TargetASNs()))
	r.metric("eligible_blocks_e3", e3)
	r.metric("eligible_blocks_e15", e15)
	r.metric("ases_lost_under_e15", float64(lost))
	return r
}

// ablationInterval rebuilds a compact scenario at several probing intervals
// and measures the scripted-event miss rate (§5.4's limitation analysis).
func ablationInterval(e *Env) *Report {
	r := newReport("A4", "Probing interval")
	base := e.Config()
	end := timeline.DefaultStart.AddDate(0, 6, 0)
	for _, interval := range []time.Duration{2 * time.Hour, 6 * time.Hour, 12 * time.Hour, 24 * time.Hour} {
		sc := sim.MustBuild(sim.Config{
			Seed: base.Seed, Scale: 0.02,
			Start: timeline.DefaultStart, End: end, Interval: interval,
		})
		tl := sc.TL
		covered, total := 0, 0
		for _, ev := range sc.Events() {
			if len(ev.ASNs) != 1 {
				continue
			}
			total++
			lo, hi := tl.Round(ev.From), tl.Round(ev.To)
			for round := lo; round <= hi && round < tl.NumRounds(); round++ {
				at := tl.Time(round)
				if !at.Before(ev.From) && at.Before(ev.To) && !sc.Missing[round] {
					covered++
					break
				}
			}
		}
		miss := 1 - frac(covered, total)
		r.addf("interval %5s: %3d/%3d events intersect a round (miss rate %.1f%%)", interval, covered, total, miss*100)
		r.metric("miss_rate_"+interval.String(), miss)
	}
	r.addf("paper: 2h misses ~29.5%% of Trinocular-visible outages; 1h ~9.5%%; 30min ~0.1%%")
	return r
}

// ablationAvailabilitySensing measures how many FBS outage events the
// Baltra-style filter removes.
func ablationAvailabilitySensing(e *Env) *Report {
	r := newReport("A5", "ISP availability sensing")
	on, off := 0, 0
	cfgOn := signals.ASConfig()
	cfgOff := cfgOn
	cfgOff.AvailabilitySensing = false
	cfgOff.FBSRequiresIPSBelow = 0
	// Dynamic-reallocation false positives live in the national ISPs'
	// pools, so measure the filter there (plus all target ASes ≥ 20 /24s).
	sc := e.Scenario()
	for _, as := range sc.Space.ASes() {
		tr := sc.ASTraitsOf(as.ASN)
		if tr == nil || (!tr.National && as.NumBlocks() < 20) {
			continue
		}
		es := e.Signals().AS(as.ASN)
		dOn := signals.Detect(es, cfgOn)
		dOff := signals.Detect(es, cfgOff)
		on += dOn.CountBySignal()[signals.SignalFBS]
		off += dOff.CountBySignal()[signals.SignalFBS]
	}
	r.addf("FBS outage events with sensing: %d; without: %d", on, off)
	removed := 0.0
	if off > 0 {
		removed = 1 - float64(on)/float64(off)
	}
	r.addf("filtered as dynamic reallocation: %.0f%%", removed*100)
	r.metric("fbs_events_with_sensing", float64(on))
	r.metric("fbs_events_without_sensing", float64(off))
	r.metric("filtered_fraction", removed)

	// Controlled demonstration: half the blocks vanish while responsive
	// addresses hold steady — pure reallocation. Sensing must erase it.
	tl2 := e.Store().Timeline()
	mk := func() *signals.EntitySeries {
		es := &signals.EntitySeries{
			Name: "synthetic", TL: tl2,
			BGP: make([]float32, tl2.NumRounds()), FBS: make([]float32, tl2.NumRounds()),
			IPS: make([]float32, tl2.NumRounds()), IPSValidMonth: make([]bool, tl2.NumMonths()),
			Missing: make([]bool, tl2.NumRounds()),
		}
		for i := range es.BGP {
			es.BGP[i], es.FBS[i], es.IPS[i] = 40, 36, 2000
			if i >= 500 && i < 560 {
				es.FBS[i] = 16
			}
		}
		for m := range es.IPSValidMonth {
			es.IPSValidMonth[m] = true
		}
		return es
	}
	synOn := signals.Detect(mk(), cfgOn).CountBySignal()[signals.SignalFBS]
	synOff := signals.Detect(mk(), cfgOff).CountBySignal()[signals.SignalFBS]
	r.addf("synthetic reallocation: events with sensing %d, without %d", synOn, synOff)
	r.metricVs("synthetic_fp_with_sensing", float64(synOn), 0)
	r.metric("synthetic_fp_without_sensing", float64(synOff))
	return r
}

// ablationWindow varies the moving-average span via resampled thresholds:
// the detection window is tied to RoundsPerWeek, so emulate other windows by
// re-running detection with scaled baselines.
func ablationWindow(e *Env) *Report {
	r := newReport("A6", "Moving-average window")
	tl := e.Store().Timeline()
	nfl := netmodel.NonFrontlineRegions()
	res := e.Classification()
	cl := e.Classifier()
	b := e.Signals()

	for _, days := range []int{3, 7, 14} {
		var group [][]float64
		cfg := signals.RegionConfig()
		cfg.WindowRounds = days * tl.RoundsPerDay()
		for _, region := range nfl {
			es := b.Region(res.Regions[region], cl)
			d := signals.Detect(es, cfg)
			group = append(group, analysis.OutageHoursPerDay(d, tl))
		}
		mean := analysis.MeanOf(group...)
		meanY, daysIdx := analysis.YearSlice(mean, tl, 2024)
		pow := dailyPowerHours(e, nfl, daysIdx)
		total := 0.0
		for _, v := range meanY {
			total += v
		}
		rr := analysis.Pearson(pow, meanY)
		r.addf("window %2dd: 2024 non-frontline outage hours %.0f, power r = %.2f", days, total, rr)
		r.metric(fmt.Sprintf("pearson_window_%dd", days), rr)
	}
	return r
}
