// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each experiment is a pure
// function of a shared Env — the fully materialized measurement pipeline:
// scenario → store → classification → signals → baselines — so individual
// experiments stay cheap and the expensive state is built once.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/ioda"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
	"countrymon/internal/power"
	"countrymon/internal/regional"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/trinocular"
)

// Env is the lazily materialized pipeline shared by all experiments.
type Env struct {
	cfg sim.Config

	scOnce sync.Once
	sc     *sim.Scenario

	storeOnce sync.Once
	store     *dataset.Store

	clOnce sync.Once
	cl     *regional.Classifier
	res    *regional.Result

	sigOnce sync.Once
	sig     *signals.Builder

	trinOnce sync.Once
	trin     *trinocular.Result
	trinInfo *trinocular.Runner

	iodaOnce sync.Once
	iodaP    *ioda.Platform

	targetOnce sync.Once
	targetSet  *regional.TargetSet
	targetASNs []netmodel.ASN

	// Detection caches have per-key once semantics: concurrent callers
	// asking for the same entity share one Detect run instead of racing to
	// compute it twice.
	ourAS     par.Cache[netmodel.ASN, *signals.Detection]
	iodaAS    par.Cache[netmodel.ASN, *signals.Detection]
	ourRegion par.Cache[netmodel.Region, *signals.Detection]
	iodaReg   par.Cache[netmodel.Region, *signals.Detection]

	powerOnce sync.Once
	powerRep  *power.Report
}

// New builds an Env for the given scenario configuration.
func New(cfg sim.Config) *Env {
	return &Env{cfg: cfg}
}

var (
	defaultOnce sync.Once
	defaultEnv  *Env
)

// Default returns the process-wide Env, sized by the COUNTRYMON_SCALE
// (default 0.12), COUNTRYMON_INTERVAL_HOURS (default 6) and COUNTRYMON_SEED
// (default 1) environment variables. Malformed values are reported on
// stderr and ignored.
func Default() *Env {
	defaultOnce.Do(func() {
		defaultEnv = New(ConfigFromEnv(os.Getenv, os.Stderr))
	})
	return defaultEnv
}

// ConfigFromEnv builds a scenario configuration from the COUNTRYMON_SCALE,
// COUNTRYMON_INTERVAL_HOURS and COUNTRYMON_SEED variables as reported by
// getenv. Unset variables fall back to defaults silently; set-but-malformed
// (or non-positive) values are reported to warn and then ignored, instead of
// silently running a differently-sized campaign than the caller asked for.
func ConfigFromEnv(getenv func(string) string, warn io.Writer) sim.Config {
	cfg := sim.Config{Seed: 1}
	if v := getenv("COUNTRYMON_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			cfg.Scale = f
		} else {
			fmt.Fprintf(warn, "countrymon: ignoring COUNTRYMON_SCALE=%q (want a positive float)\n", v)
		}
	}
	if v := getenv("COUNTRYMON_INTERVAL_HOURS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.Interval = time.Duration(n) * time.Hour
		} else {
			fmt.Fprintf(warn, "countrymon: ignoring COUNTRYMON_INTERVAL_HOURS=%q (want a positive integer)\n", v)
		}
	}
	if v := getenv("COUNTRYMON_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			cfg.Seed = n
		} else {
			fmt.Fprintf(warn, "countrymon: ignoring COUNTRYMON_SEED=%q (want an unsigned integer)\n", v)
		}
	}
	return cfg
}

// Config returns the scenario configuration.
func (e *Env) Config() sim.Config { return e.Scenario().Cfg }

// Scenario returns the ground-truth scenario.
func (e *Env) Scenario() *sim.Scenario {
	e.scOnce.Do(func() { e.sc = sim.MustBuild(e.cfg) })
	return e.sc
}

// Store returns the measurement store, with RTTs tracked for every block of
// the 34 Kherson ASes (Fig 12/13/14 need them).
func (e *Env) Store() *dataset.Store {
	e.storeOnce.Do(func() {
		sc := e.Scenario()
		var track []netmodel.BlockID
		for _, asn := range sim.KhersonASNs() {
			if as := sc.Space.Lookup(asn); as != nil {
				track = append(track, as.Blocks()...)
			}
		}
		e.store = sc.GenerateStore(track)
	})
	return e.store
}

// Classifier returns the regional classifier.
func (e *Env) Classifier() *regional.Classifier {
	e.clOnce.Do(func() {
		sc := e.Scenario()
		e.cl = regional.NewClassifier(sc.Space, sc.GeoDB(), e.Store())
		e.res = e.cl.ClassifyAll(regional.DefaultParams())
	})
	return e.cl
}

// Classification returns the default-parameter classification of all
// regions.
func (e *Env) Classification() *regional.Result {
	e.Classifier()
	return e.res
}

// Signals returns the signal builder.
func (e *Env) Signals() *signals.Builder {
	e.sigOnce.Do(func() { e.sig = signals.NewBuilder(e.Store(), e.Scenario().Space) })
	return e.sig
}

// Trinocular returns the baseline's campaign result.
func (e *Env) Trinocular() *trinocular.Result {
	e.trinOnce.Do(func() {
		sc := e.Scenario()
		e.trinInfo = trinocular.NewRunner(e.Store(), sc.Space, sc.Representatives, sc.ProbeFunc())
		e.trin = e.trinInfo.Run(sc.ProbeFunc())
	})
	return e.trin
}

// TrinocularRunner returns the runner (eligibility metadata).
func (e *Env) TrinocularRunner() *trinocular.Runner {
	e.Trinocular()
	return e.trinInfo
}

// IODA returns the baseline platform.
func (e *Env) IODA() *ioda.Platform {
	e.iodaOnce.Do(func() {
		e.iodaP = ioda.New(e.Store(), e.Scenario().Space, e.Trinocular(), e.Classification())
	})
	return e.iodaP
}

// TargetSet returns the measurement target set (Table 3's final row).
func (e *Env) TargetSet() *regional.TargetSet {
	e.targetOnce.Do(func() {
		e.targetSet = e.Classification().TargetSet(e.Classifier())
		for asn := range e.targetSet.ASes {
			e.targetASNs = append(e.targetASNs, asn)
		}
		sort.Slice(e.targetASNs, func(i, j int) bool { return e.targetASNs[i] < e.targetASNs[j] })
	})
	return e.targetSet
}

// TargetASNs returns the target-set ASes, sorted.
func (e *Env) TargetASNs() []netmodel.ASN {
	e.TargetSet()
	return e.targetASNs
}

// OurAS returns (and caches) our detection for an AS.
func (e *Env) OurAS(asn netmodel.ASN) *signals.Detection {
	return e.ourAS.Get(asn, func() *signals.Detection {
		return signals.Detect(e.Signals().AS(asn), signals.ASConfig())
	})
}

// IODAAS returns (and caches) IODA's detection for an AS (nil below the
// reporting floor).
func (e *Env) IODAAS(asn netmodel.ASN) *signals.Detection {
	return e.iodaAS.Get(asn, func() *signals.Detection {
		return e.IODA().DetectAS(asn)
	})
}

// OurRegion returns (and caches) our regional detection.
func (e *Env) OurRegion(r netmodel.Region) *signals.Detection {
	return e.ourRegion.Get(r, func() *signals.Detection {
		rr := e.Classification().Regions[r]
		return signals.Detect(e.Signals().Region(rr, e.Classifier()), signals.RegionConfig())
	})
}

// IODARegion returns (and caches) IODA's regional detection.
func (e *Env) IODARegion(r netmodel.Region) *signals.Detection {
	return e.iodaReg.Get(r, func() *signals.Detection {
		return e.IODA().DetectRegion(r)
	})
}

// Warm materializes the whole pipeline up front. After the store is built,
// the classifier, signal builder, Trinocular baseline and power report are
// independent of each other, so they run concurrently; the IODA platform and
// target set then assemble from those, and finally every per-AS/per-region
// detection both systems report on is filled in. Experiments after a Warm
// only read caches.
func (e *Env) Warm() {
	e.Store()
	par.Do(
		func() { e.Classifier() },
		func() { e.Signals() },
		func() { e.Trinocular() },
		func() { e.PowerReport() },
	)
	e.IODA()
	e.TargetSet()
	e.WarmDetections()
}

// WarmDetections fills the per-AS and per-region detection caches for both
// systems across the worker pool.
func (e *Env) WarmDetections() {
	asns := e.TargetASNs()
	par.ForEach(len(asns), func(i int) {
		e.OurAS(asns[i])
		e.IODAAS(asns[i])
	})
	regions := netmodel.Regions()
	par.ForEach(len(regions), func(i int) {
		e.OurRegion(regions[i])
		e.IODARegion(regions[i])
	})
}

// PowerReport returns the Ukrenergo-like dataset, exercising the export →
// parse path (the analysis must consume the report, not ground truth).
func (e *Env) PowerReport() *power.Report {
	e.powerOnce.Do(func() {
		var buf bytes.Buffer
		if err := e.Scenario().Power.WriteReport(&buf); err != nil {
			panic(err)
		}
		rep, err := power.ParseReport(&buf)
		if err != nil {
			panic(err)
		}
		e.powerRep = rep
	})
	return e.powerRep
}
