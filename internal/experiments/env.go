// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each experiment is a pure
// function of a shared Env — the fully materialized measurement pipeline:
// scenario → store → classification → signals → baselines — so individual
// experiments stay cheap and the expensive state is built once.
package experiments

import (
	"bytes"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/ioda"
	"countrymon/internal/netmodel"
	"countrymon/internal/power"
	"countrymon/internal/regional"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/trinocular"
)

// Env is the lazily materialized pipeline shared by all experiments.
type Env struct {
	cfg sim.Config

	scOnce sync.Once
	sc     *sim.Scenario

	storeOnce sync.Once
	store     *dataset.Store

	clOnce sync.Once
	cl     *regional.Classifier
	res    *regional.Result

	sigOnce sync.Once
	sig     *signals.Builder

	trinOnce sync.Once
	trin     *trinocular.Result
	trinInfo *trinocular.Runner

	iodaOnce sync.Once
	iodaP    *ioda.Platform

	targetOnce sync.Once
	targetSet  *regional.TargetSet
	targetASNs []netmodel.ASN

	mu        sync.Mutex
	ourAS     map[netmodel.ASN]*signals.Detection
	iodaAS    map[netmodel.ASN]*signals.Detection
	ourRegion map[netmodel.Region]*signals.Detection
	iodaReg   map[netmodel.Region]*signals.Detection

	powerOnce sync.Once
	powerRep  *power.Report
}

// New builds an Env for the given scenario configuration.
func New(cfg sim.Config) *Env {
	return &Env{
		cfg:       cfg,
		ourAS:     make(map[netmodel.ASN]*signals.Detection),
		iodaAS:    make(map[netmodel.ASN]*signals.Detection),
		ourRegion: make(map[netmodel.Region]*signals.Detection),
		iodaReg:   make(map[netmodel.Region]*signals.Detection),
	}
}

var (
	defaultOnce sync.Once
	defaultEnv  *Env
)

// Default returns the process-wide Env, sized by the COUNTRYMON_SCALE
// (default 0.12), COUNTRYMON_INTERVAL_HOURS (default 6) and COUNTRYMON_SEED
// (default 1) environment variables.
func Default() *Env {
	defaultOnce.Do(func() {
		cfg := sim.Config{Seed: 1}
		if v, err := strconv.ParseFloat(os.Getenv("COUNTRYMON_SCALE"), 64); err == nil && v > 0 {
			cfg.Scale = v
		}
		if v, err := strconv.Atoi(os.Getenv("COUNTRYMON_INTERVAL_HOURS")); err == nil && v > 0 {
			cfg.Interval = time.Duration(v) * time.Hour
		}
		if v, err := strconv.ParseUint(os.Getenv("COUNTRYMON_SEED"), 10, 64); err == nil {
			cfg.Seed = v
		}
		defaultEnv = New(cfg)
	})
	return defaultEnv
}

// Config returns the scenario configuration.
func (e *Env) Config() sim.Config { return e.Scenario().Cfg }

// Scenario returns the ground-truth scenario.
func (e *Env) Scenario() *sim.Scenario {
	e.scOnce.Do(func() { e.sc = sim.MustBuild(e.cfg) })
	return e.sc
}

// Store returns the measurement store, with RTTs tracked for every block of
// the 34 Kherson ASes (Fig 12/13/14 need them).
func (e *Env) Store() *dataset.Store {
	e.storeOnce.Do(func() {
		sc := e.Scenario()
		var track []netmodel.BlockID
		for _, asn := range sim.KhersonASNs() {
			if as := sc.Space.Lookup(asn); as != nil {
				track = append(track, as.Blocks()...)
			}
		}
		e.store = sc.GenerateStore(track)
	})
	return e.store
}

// Classifier returns the regional classifier.
func (e *Env) Classifier() *regional.Classifier {
	e.clOnce.Do(func() {
		sc := e.Scenario()
		e.cl = regional.NewClassifier(sc.Space, sc.GeoDB(), e.Store())
		e.res = e.cl.ClassifyAll(regional.DefaultParams())
	})
	return e.cl
}

// Classification returns the default-parameter classification of all
// regions.
func (e *Env) Classification() *regional.Result {
	e.Classifier()
	return e.res
}

// Signals returns the signal builder.
func (e *Env) Signals() *signals.Builder {
	e.sigOnce.Do(func() { e.sig = signals.NewBuilder(e.Store(), e.Scenario().Space) })
	return e.sig
}

// Trinocular returns the baseline's campaign result.
func (e *Env) Trinocular() *trinocular.Result {
	e.trinOnce.Do(func() {
		sc := e.Scenario()
		e.trinInfo = trinocular.NewRunner(e.Store(), sc.Space, sc.Representatives, sc.ProbeFunc())
		e.trin = e.trinInfo.Run(sc.ProbeFunc())
	})
	return e.trin
}

// TrinocularRunner returns the runner (eligibility metadata).
func (e *Env) TrinocularRunner() *trinocular.Runner {
	e.Trinocular()
	return e.trinInfo
}

// IODA returns the baseline platform.
func (e *Env) IODA() *ioda.Platform {
	e.iodaOnce.Do(func() {
		e.iodaP = ioda.New(e.Store(), e.Scenario().Space, e.Trinocular(), e.Classification())
	})
	return e.iodaP
}

// TargetSet returns the measurement target set (Table 3's final row).
func (e *Env) TargetSet() *regional.TargetSet {
	e.targetOnce.Do(func() {
		e.targetSet = e.Classification().TargetSet(e.Classifier())
		for asn := range e.targetSet.ASes {
			e.targetASNs = append(e.targetASNs, asn)
		}
		sort.Slice(e.targetASNs, func(i, j int) bool { return e.targetASNs[i] < e.targetASNs[j] })
	})
	return e.targetSet
}

// TargetASNs returns the target-set ASes, sorted.
func (e *Env) TargetASNs() []netmodel.ASN {
	e.TargetSet()
	return e.targetASNs
}

// OurAS returns (and caches) our detection for an AS.
func (e *Env) OurAS(asn netmodel.ASN) *signals.Detection {
	e.mu.Lock()
	d, ok := e.ourAS[asn]
	e.mu.Unlock()
	if ok {
		return d
	}
	d = signals.Detect(e.Signals().AS(asn), signals.ASConfig())
	e.mu.Lock()
	e.ourAS[asn] = d
	e.mu.Unlock()
	return d
}

// IODAAS returns (and caches) IODA's detection for an AS (nil below the
// reporting floor).
func (e *Env) IODAAS(asn netmodel.ASN) *signals.Detection {
	e.mu.Lock()
	d, ok := e.iodaAS[asn]
	e.mu.Unlock()
	if ok {
		return d
	}
	d = e.IODA().DetectAS(asn)
	e.mu.Lock()
	e.iodaAS[asn] = d
	e.mu.Unlock()
	return d
}

// OurRegion returns (and caches) our regional detection.
func (e *Env) OurRegion(r netmodel.Region) *signals.Detection {
	e.mu.Lock()
	d, ok := e.ourRegion[r]
	e.mu.Unlock()
	if ok {
		return d
	}
	rr := e.Classification().Regions[r]
	d = signals.Detect(e.Signals().Region(rr, e.Classifier()), signals.RegionConfig())
	e.mu.Lock()
	e.ourRegion[r] = d
	e.mu.Unlock()
	return d
}

// IODARegion returns (and caches) IODA's regional detection.
func (e *Env) IODARegion(r netmodel.Region) *signals.Detection {
	e.mu.Lock()
	d, ok := e.iodaReg[r]
	e.mu.Unlock()
	if ok {
		return d
	}
	d = e.IODA().DetectRegion(r)
	e.mu.Lock()
	e.iodaReg[r] = d
	e.mu.Unlock()
	return d
}

// PowerReport returns the Ukrenergo-like dataset, exercising the export →
// parse path (the analysis must consume the report, not ground truth).
func (e *Env) PowerReport() *power.Report {
	e.powerOnce.Do(func() {
		var buf bytes.Buffer
		if err := e.Scenario().Power.WriteReport(&buf); err != nil {
			panic(err)
		}
		rep, err := power.ParseReport(&buf)
		if err != nil {
			panic(err)
		}
		e.powerRep = rep
	})
	return e.powerRep
}
