package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/sim"
)

func TestConfigFromEnvDefaults(t *testing.T) {
	var warn strings.Builder
	cfg := ConfigFromEnv(func(string) string { return "" }, &warn)
	if cfg.Seed != 1 || cfg.Scale != 0 || cfg.Interval != 0 {
		t.Fatalf("unset env produced %+v, want zero-value config with seed 1", cfg)
	}
	if warn.Len() != 0 {
		t.Fatalf("unset env warned: %q", warn.String())
	}
}

func TestConfigFromEnvParsesValidValues(t *testing.T) {
	var warn strings.Builder
	env := map[string]string{
		"COUNTRYMON_SCALE":          "0.25",
		"COUNTRYMON_INTERVAL_HOURS": "2",
		"COUNTRYMON_SEED":           "42",
	}
	cfg := ConfigFromEnv(func(k string) string { return env[k] }, &warn)
	if cfg.Scale != 0.25 || cfg.Interval != 2*time.Hour || cfg.Seed != 42 {
		t.Fatalf("valid env produced %+v", cfg)
	}
	if warn.Len() != 0 {
		t.Fatalf("valid env warned: %q", warn.String())
	}
}

func TestConfigFromEnvWarnsOnMalformedValues(t *testing.T) {
	cases := []struct {
		key, val string
	}{
		{"COUNTRYMON_SCALE", "banana"},
		{"COUNTRYMON_SCALE", "-1"},
		{"COUNTRYMON_SCALE", "0"},
		{"COUNTRYMON_INTERVAL_HOURS", "2.5"},
		{"COUNTRYMON_INTERVAL_HOURS", "-6"},
		{"COUNTRYMON_SEED", "-3"},
		{"COUNTRYMON_SEED", "0x10"},
	}
	for _, tc := range cases {
		var warn strings.Builder
		cfg := ConfigFromEnv(func(k string) string {
			if k == tc.key {
				return tc.val
			}
			return ""
		}, &warn)
		if !strings.Contains(warn.String(), tc.key) || !strings.Contains(warn.String(), tc.val) {
			t.Errorf("%s=%q: warning %q does not name the variable and value", tc.key, tc.val, warn.String())
		}
		// The malformed value must be ignored, leaving the default.
		def := sim.Config{Seed: 1}
		if cfg != def {
			t.Errorf("%s=%q: config %+v, want defaults %+v", tc.key, tc.val, cfg, def)
		}
	}
}

// TestDetectionCachePerKeyOnce verifies the per-key once semantics of the
// Env detection caches: concurrent callers for the same entity must share a
// single Detect run (and thus observe pointer-identical results).
func TestDetectionCachePerKeyOnce(t *testing.T) {
	e := New(sim.Config{Seed: 1, Scale: 0.02})
	e.Store()
	asn := e.TargetASNs()[0]
	region := netmodel.Kherson

	const callers = 16
	asGot := make([]interface{}, callers)
	regGot := make([]interface{}, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for g := 0; g < callers; g++ {
		go func() {
			defer wg.Done()
			asGot[g] = e.OurAS(asn)
			regGot[g] = e.OurRegion(region)
		}()
	}
	wg.Wait()
	for g := 1; g < callers; g++ {
		if asGot[g] != asGot[0] {
			t.Fatalf("caller %d got a different OurAS detection pointer", g)
		}
		if regGot[g] != regGot[0] {
			t.Fatalf("caller %d got a different OurRegion detection pointer", g)
		}
	}
}

// TestWarmMatchesLazyEvaluation checks that the concurrent warm-up leaves
// the caches holding the same objects the lazy getters would build.
func TestWarmMatchesLazyEvaluation(t *testing.T) {
	e := New(sim.Config{Seed: 1, Scale: 0.02})
	e.Warm()
	if e.Store() == nil || e.Classifier() == nil || e.Signals() == nil ||
		e.Trinocular() == nil || e.IODA() == nil || e.PowerReport() == nil {
		t.Fatal("Warm left part of the pipeline unmaterialized")
	}
	lazy := New(sim.Config{Seed: 1, Scale: 0.02})
	for _, asn := range e.TargetASNs() {
		w, l := e.OurAS(asn), lazy.OurAS(asn)
		if w.TotalRounds() != l.TotalRounds() {
			t.Fatalf("AS%d: warmed detection has %d signal rounds, lazy %d", asn, w.TotalRounds(), l.TotalRounds())
		}
	}
	for _, r := range netmodel.Regions() {
		w, l := e.OurRegion(r), lazy.OurRegion(r)
		if w.TotalRounds() != l.TotalRounds() {
			t.Fatalf("%s: warmed detection has %d signal rounds, lazy %d", r, w.TotalRounds(), l.TotalRounds())
		}
	}
}
