package experiments

import (
	"strings"
	"sync"
	"testing"

	"countrymon/internal/sim"
)

var (
	envOnce sync.Once
	testEnv *Env
)

func smallEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv = New(sim.Config{Seed: 42, Scale: 0.05})
	})
	return testEnv
}

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	ex, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep := ex.Run(smallEnv(t))
	if rep == nil || len(rep.Lines) == 0 {
		t.Fatalf("%s produced no output", id)
	}
	if rep.ID != id {
		t.Fatalf("%s returned report ID %s", id, rep.ID)
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10",
		"F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18", "F19", "F20",
		"F21", "F22", "F23", "F24", "F25", "F26", "F27", "F28", "H1"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want ≥ %d", len(All()), len(want))
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in short mode")
	}
	for _, ex := range All() {
		rep := ex.Run(smallEnv(t))
		if rep == nil || len(rep.Lines) == 0 {
			t.Errorf("%s produced no output", ex.ID)
			continue
		}
		if !strings.Contains(rep.String(), ex.ID) {
			t.Errorf("%s render missing ID", ex.ID)
		}
	}
}

func TestTable5Accuracy(t *testing.T) {
	rep := runExp(t, "T5")
	if acc := rep.Metrics["classification_accuracy"]; acc < 0.9 {
		t.Errorf("Kherson classification accuracy = %.2f, want ≥ 0.9", acc)
	}
	if got := rep.Metrics["ceased_ases_detected"]; got < 5 {
		t.Errorf("ceased ASes detected = %.0f, want ≈7", got)
	}
}

func TestChurnShape(t *testing.T) {
	rep := runExp(t, "F1")
	if v := rep.Metrics["luhansk_change_pct"]; v > -35 {
		t.Errorf("Luhansk change = %.0f%%, want strongly negative", v)
	}
	if v := rep.Metrics["kherson_change_pct"]; v > -35 {
		t.Errorf("Kherson change = %.0f%%, want strongly negative", v)
	}
	if v := rep.Metrics["chernihiv_change_pct"]; v < 0 {
		t.Errorf("Chernihiv change = %.0f%%, want positive", v)
	}
}

func TestPowerCorrelationShape(t *testing.T) {
	ours := runExp(t, "F10")
	ioda := runExp(t, "F26")
	rOurs := ours.Metrics["pearson_nonfrontline"]
	rIODA := ioda.Metrics["ioda_pearson_nonfrontline"]
	if rOurs < 0.4 {
		t.Errorf("our non-frontline power correlation = %.2f, want strong (paper 0.725)", rOurs)
	}
	if rOurs <= rIODA {
		t.Errorf("regional classification must beat IODA: ours %.2f vs IODA %.2f", rOurs, rIODA)
	}
	if fl := ours.Metrics["pearson_frontline"]; fl >= rOurs {
		t.Errorf("frontline correlation %.2f should be below non-frontline %.2f", fl, rOurs)
	}
}

func TestCoverageShape(t *testing.T) {
	rep := runExp(t, "F15")
	ours := rep.Metrics["ases_with_outages_ours"]
	ioda := rep.Metrics["ases_with_outages_ioda"]
	if ours <= ioda {
		t.Errorf("our AS coverage (%f) must exceed IODA's (%f), as in Fig 15", ours, ioda)
	}
	if ours < 3*ioda {
		t.Logf("note: coverage ratio %.1f below the paper's ~5x (scale-dependent)", ours/ioda)
	}
}

func TestSignalSharesShape(t *testing.T) {
	rep := runExp(t, "F17")
	if rep.Metrics["ours_ips_outages"] <= rep.Metrics["ours_fbs_outages"] {
		t.Errorf("IPS▲ should dominate FBS■ outages (paper: 21,120 vs 2,063): %v", rep.Metrics)
	}
}

func TestStabilityShape(t *testing.T) {
	rep := runExp(t, "F27")
	if rep.Metrics["snr_ours"] <= rep.Metrics["snr_trinocular"] {
		t.Errorf("our signal should be more stable: ours %.1f vs trin %.1f",
			rep.Metrics["snr_ours"], rep.Metrics["snr_trinocular"])
	}
}

func TestStatusCaseStudies(t *testing.T) {
	f13 := runExp(t, "F13")
	if ips := f13.Metrics["ips_min_ratio"]; ips > 0.85 {
		t.Errorf("seizure IPS dip ratio = %.2f, want < 0.85", ips)
	}
	if bgp := f13.Metrics["bgp_min_ratio"]; bgp < 0.95 {
		t.Errorf("seizure must not move BGP: ratio %.2f", bgp)
	}
	f14 := runExp(t, "F14")
	if gap := f14.Metrics["kherson_block_gap_days"]; gap < 7 || gap > 14 {
		t.Errorf("liberation gap = %.1f days, want ≈10", gap)
	}
	if f14.Metrics["kyiv_block_stayed_up"] != 1 {
		t.Error("Kyiv block must stay up")
	}
	if ratio := f14.Metrics["recovery_day_night_ratio"]; ratio < 1.5 {
		t.Errorf("diurnal recovery ratio = %.1f, want > 1.5", ratio)
	}
}

func TestKhersonEvents(t *testing.T) {
	rep := runExp(t, "F11")
	if v := rep.Metrics["cable_cut_ases"]; v < 15 {
		t.Errorf("cable-cut affected ASes = %.0f, want ≈24", v)
	}
	if v := rep.Metrics["dam_window_ases"]; v < 2 {
		t.Errorf("dam-window affected ASes = %.0f, want ≥ 2", v)
	}
}

func TestSensitivityMonotone(t *testing.T) {
	rep := runExp(t, "F22")
	if rep.Metrics["count_strict_0.9"] > rep.Metrics["count_default_0.7"] ||
		rep.Metrics["count_default_0.7"] > rep.Metrics["count_relaxed_0.5"] {
		t.Errorf("regional AS counts not monotone: %v", rep.Metrics)
	}
}

func TestRIPEShape(t *testing.T) {
	rep := runExp(t, "F18")
	if v := rep.Metrics["recoded_prefix_frac"]; v < 0.06 || v > 0.2 {
		t.Errorf("recoded fraction = %.2f, want ≈0.12", v)
	}
	if v := rep.Metrics["recoded_to_ru_share"]; v < 0.15 || v > 0.5 {
		t.Errorf("RU share of recodes = %.2f, want ≈0.31", v)
	}
}

func TestChurnAttribution(t *testing.T) {
	rep := runExp(t, "H2")
	if rep.Metrics["national_isps_among_top4_intra_movers"] < 3 {
		t.Errorf("national ISPs should dominate intra-UA churn: %v", rep.Metrics)
	}
	if rep.Metrics["amazon_takeover_addrs"] == 0 {
		t.Error("no Amazon takeover modelled")
	}
	if v := rep.Metrics["kherson_stayed_frac"]; v > 0.45 {
		t.Errorf("Kherson retained fraction = %.2f, want well below half (paper 0.26)", v)
	}
}

func TestRadiusPrecision(t *testing.T) {
	rep := runExp(t, "H3")
	if rep.Metrics["regional_radius_2022_km"] >= rep.Metrics["regional_radius_2025_km"] {
		t.Error("regional radius should degrade over the war")
	}
	if rep.Metrics["regional_radius_2025_km"] >= rep.Metrics["nonregional_radius_km"] {
		t.Error("regional blocks must stay more precise than non-regional ones")
	}
}
