package experiments

import (
	"fmt"
	"sort"

	"countrymon/internal/analysis"
	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
	"countrymon/internal/regional"
	"countrymon/internal/ripe"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
)

func init() {
	register("F1", "IPv4 churn per oblast, measurement targets (Fig 1)", figure1)
	register("F2", "Example block's monthly regional share (Fig 2)", figure2)
	register("F3", "Regional / non-regional / temporal ASes per oblast (Fig 3)", figure3)
	register("F4", "Share of regional /24 blocks per oblast (Fig 4)", figure4)
	register("F5", "Kherson ASes by regional share and BGP visibility (Fig 5)", figure5)
	register("F6", "Responsive IPs per oblast (Fig 6)", figure6)
	register("F7", "Responsive /24 blocks 2022-03 vs 2025-02 (Fig 7)", figure7)
	register("F18", "UA-delegated address ranges over time (Fig 18)", figure18)
	register("F19", "IPv4 churn per oblast, all addresses (Fig 19)", figure19)
	register("F20", "IPv6 churn per oblast (Fig 20)", figure20)
	register("F21", "Dominant-share CDF for multi-local /24s (Fig 21)", figure21)
	register("F22", "Sensitivity of regional AS count to (M, T_perc) (Fig 22)", figure22)
	register("F23", "Sensitivity of regional /24 count to (M, T_perc) (Fig 23)", figure23)
}

func churnReport(e *Env, id, title string, includeLeased bool) *Report {
	r := newReport(id, title)
	sc := e.Scenario()
	before := sc.GeoSnapshot(-1)
	after := sc.GeoSnapshot(sc.TL.NumMonths() - 1)
	blocks := append([]netmodel.BlockID(nil), sc.Space.Blocks()...)
	if includeLeased {
		for _, as := range sc.LeasedASes() {
			blocks = append(blocks, as.Blocks()...)
		}
	}
	rep := analysis.Churn(before, after, blocks)

	type rc struct {
		region netmodel.Region
		change float64
	}
	var rows []rc
	for _, region := range netmodel.Regions() {
		rows = append(rows, rc{region, rep.PerRegionChange[region] * 100})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].change < rows[j].change })
	for _, row := range rows {
		fl := ""
		if row.region.Frontline() {
			fl = " [frontline]"
		}
		r.addf("%-16s %+7.1f%%%s", row.region, row.change, fl)
	}
	r.addf("moved within Ukraine: %d addrs; moved abroad: %v", rep.MovedIntra, rep.MovedAbroad)

	r.metricVs("luhansk_change_pct", rep.PerRegionChange[netmodel.Luhansk]*100, -67)
	r.metricVs("kherson_change_pct", rep.PerRegionChange[netmodel.Kherson]*100, -62)
	r.metricVs("donetsk_change_pct", rep.PerRegionChange[netmodel.Donetsk]*100, -56)
	r.metricVs("chernihiv_change_pct", rep.PerRegionChange[netmodel.Chernihiv]*100, +24)
	intraShare := 0.0
	if rep.TotalMoved > 0 {
		intraShare = float64(rep.MovedIntra) / float64(rep.TotalMoved)
	}
	r.metricVs("intra_ua_share_of_moves", intraShare, 2.24/3.73)
	return r
}

func figure1(e *Env) *Report { return churnReport(e, "F1", "IPv4 churn (targets)", false) }

func figure19(e *Env) *Report { return churnReport(e, "F19", "IPv4 churn (all)", true) }

func figure2(e *Env) *Report {
	r := newReport("F2", "Example block share series")
	cl := e.Classifier()
	res := e.Classification().Regions[netmodel.Kherson]
	// A Kyivstar block regional to Kherson, as in the paper's 176.8.28/24
	// example; fall back to any regional block.
	sc := e.Scenario()
	var pick regional.BlockClassification
	found := false
	for _, bc := range res.RegionalBlocks() {
		if sc.Space.OriginOf(bc.Block) == 15895 {
			pick, found = bc, true
			break
		}
	}
	if !found {
		blocks := res.RegionalBlocks()
		if len(blocks) == 0 {
			r.addf("no regional blocks in Kherson")
			return r
		}
		pick = blocks[0]
	}
	meets := 0
	for m := 0; m < cl.Months(); m++ {
		share := cl.BlockShare(pick.Index, m, netmodel.Kherson)
		marker := " "
		if share >= 0.7 {
			marker = "*"
			meets++
		}
		r.addf("%s  %-10s share=%.2f %s", marker, e.Store().Timeline().MonthLabel(m), share, bar(share, 40))
	}
	r.addf("block %v (%v): meets M=0.7 in %d/%d months", pick.Block, sc.Space.OriginOf(pick.Block), meets, cl.Months())
	r.metricVs("months_meeting_threshold_frac", float64(meets)/float64(cl.Months()), 0.7)
	return r
}

func figure3(e *Env) *Report {
	r := newReport("F3", "AS classes per oblast")
	res := e.Classification()
	totalReg, totalAll := 0, 0
	r.addf("%-16s %9s %13s %9s %7s", "oblast", "regional", "non-regional", "temporal", "total")
	for _, region := range netmodel.Regions() {
		rr := res.Regions[region]
		reg, non, tmp := rr.CountAS(regional.ASRegional), rr.CountAS(regional.ASNonRegional), rr.CountAS(regional.ASTemporal)
		r.addf("%-16s %9d %13d %9d %7d", region, reg, non, tmp, reg+non+tmp)
		totalReg += reg
		totalAll += reg + non + tmp
	}
	share := 0.0
	if totalAll > 0 {
		share = float64(totalReg) / float64(totalAll)
	}
	r.addf("mean regional share of present ASes: %.0f%%", share*100)
	r.metricVs("mean_regional_as_share", share, 0.34)
	kh := res.Regions[netmodel.Kherson]
	r.metricVs("kherson_regional", float64(kh.CountAS(regional.ASRegional)), 13)
	r.metric("kherson_non_regional", float64(kh.CountAS(regional.ASNonRegional)))
	r.metric("kherson_temporal", float64(kh.CountAS(regional.ASTemporal)))
	return r
}

func figure4(e *Env) *Report {
	r := newReport("F4", "Regional block share per oblast")
	res := e.Classification()
	var shares []float64
	r.addf("%-16s %9s %7s %7s", "oblast", "regional", "total", "share")
	for _, region := range netmodel.Regions() {
		rr := res.Regions[region]
		reg, total := 0, 0
		for _, bc := range rr.Blocks {
			total++
			if bc.Regional {
				reg++
			}
		}
		share := 0.0
		if total > 0 {
			share = float64(reg) / float64(total)
		}
		shares = append(shares, share)
		r.addf("%-16s %9d %7d %6.0f%%", region, reg, total, share*100)
	}
	mean := 0.0
	for _, s := range shares {
		mean += s
	}
	mean /= float64(len(shares))
	r.metricVs("mean_regional_block_share", mean, 0.50)
	return r
}

func figure5(e *Env) *Report {
	r := newReport("F5", "Kherson ASes: regional share and BGP visibility")
	sc := e.Scenario()
	cl := e.Classifier()
	st := e.Store()
	type row struct {
		asn   netmodel.ASN
		name  string
		share float64
		gaps  int
	}
	var rows []row
	for _, asn := range sim.KhersonASNs() {
		as := sc.Space.Lookup(asn)
		if as == nil {
			continue
		}
		sum, n := 0.0, 0
		gaps := 0
		for m := 0; m < cl.Months(); m++ {
			sum += cl.ASShare(asn, m, netmodel.Kherson)
			n++
			routed := false
			for _, blk := range as.Blocks() {
				if st.MonthStats(sc.Space.BlockIndex(blk), m).RoutedRounds > 0 {
					routed = true
					break
				}
			}
			if !routed {
				gaps++
			}
		}
		rows = append(rows, row{asn, as.Name, sum / float64(n), gaps})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].share > rows[j].share })
	regionalSet := make(map[netmodel.ASN]bool)
	for _, a := range sim.KhersonRegionalASNs() {
		regionalSet[a] = true
	}
	// The paper's visual: regional providers at the top, non-regional at
	// the bottom. Count inversions against ground truth.
	misordered := 0
	for i, rw := range rows {
		tag := "non-regional"
		if regionalSet[rw.asn] {
			tag = "regional"
			if i >= len(sim.KhersonRegionalASNs())+4 {
				misordered++
			}
		}
		r.addf("%-18s %-8s mean share=%.2f  BGP-gap months=%2d  %s", rw.name, rw.asn, rw.share, rw.gaps, tag)
	}
	r.metric("regional_below_top_group", float64(misordered))
	discontinued := 0
	for _, rw := range rows {
		if rw.gaps > 3 {
			discontinued++
		}
	}
	r.metricVs("ases_with_service_gaps", float64(discontinued), 7)
	return r
}

func figure6(e *Env) *Report {
	r := newReport("F6", "Responsive IPs per oblast (regional blocks)")
	res := e.Classification()
	st := e.Store()
	tl := st.Timeline()
	r.addf("%-16s %12s %12s %8s", "oblast", "regional IPs", "responsive", "share")
	var khShare, maxShare float64
	for _, region := range netmodel.Regions() {
		rr := res.Regions[region]
		var ips, resp float64
		for _, bc := range rr.RegionalBlocks() {
			for m := 0; m < tl.NumMonths(); m++ {
				if !bc.EvalMonths[m] {
					continue
				}
				ips += e.Classifier().BlockShare(bc.Index, m, region) * 256
				resp += st.MonthStats(bc.Index, m).MeanResp
			}
		}
		ips /= float64(tl.NumMonths())
		resp /= float64(tl.NumMonths())
		share := 0.0
		if ips > 0 {
			share = resp / ips
		}
		if region == netmodel.Kherson {
			khShare = share
		}
		if share > maxShare {
			maxShare = share
		}
		fl := ""
		if region.Frontline() {
			fl = " [frontline]"
		}
		r.addf("%-16s %12.0f %12.0f %7.1f%%%s", region, ips, resp, share*100, fl)
	}
	r.metric("kherson_responsive_share", khShare)
	r.metric("max_responsive_share", maxShare)
	r.addf("Kherson share %.1f%% (the paper reports the country's lowest, 3-11%%)", khShare*100)
	return r
}

func figure7(e *Env) *Report {
	r := newReport("F7", "Responsive blocks by oblast: first vs last month")
	res := e.Classification()
	st := e.Store()
	last := st.Timeline().NumMonths() - 1
	r.addf("%-16s %9s %9s %8s", "oblast", "2022-03", "2025-02", "change")
	var khFirst, khLast int
	allPresent := true
	for _, region := range netmodel.Regions() {
		rr := res.Regions[region]
		first, final := 0, 0
		for _, bc := range rr.RegionalBlocks() {
			if st.MonthStats(bc.Index, 0).EverActive >= signals.MinEverActive {
				first++
			}
			if st.MonthStats(bc.Index, last).EverActive >= signals.MinEverActive {
				final++
			}
		}
		change := 0.0
		if first > 0 {
			change = 100 * float64(final-first) / float64(first)
		}
		if region == netmodel.Kherson {
			khFirst, khLast = first, final
		}
		if final == 0 {
			allPresent = false
		}
		r.addf("%-16s %9d %9d %+7.0f%%", region, first, final, change)
	}
	r.metric("kherson_blocks_first", float64(khFirst))
	r.metric("kherson_blocks_last", float64(khLast))
	b := 0.0
	if allPresent {
		b = 1
	}
	r.metricVs("all_oblasts_measurable_2025", b, 1)
	return r
}

func figure18(e *Env) *Report {
	r := newReport("F18", "UA-delegated IPv4 ranges over time")
	sc := e.Scenario()
	years, addrs := sc.RIPEYearlySeries(2004, 2025)
	peak := uint64(0)
	for i, y := range years {
		r.addf("%d %12d addrs %s", y, addrs[i], bar(float64(addrs[i])/float64(maxU64(addrs)), 40))
		if addrs[i] > peak {
			peak = addrs[i]
		}
	}
	// Appendix B: 12% of prefixes recoded (1/3 to RU); ~7% net decline.
	base := sc.RIPEBase()
	final := sc.RIPESnapshot(sc.TL.NumMonths() - 1)
	d := ripe.DiffCountry(base, final, geodb.CountryUA)
	r.addf("recoded ranges: %d of %d (%.1f%%); to RU: %d", d.RecodedTotal(), len(base.CountryRecords(geodb.CountryUA)),
		100*float64(d.RecodedTotal())/float64(len(base.CountryRecords(geodb.CountryUA))), d.Recoded["RU"])
	recodedFrac := float64(d.RecodedTotal()) / float64(len(base.CountryRecords(geodb.CountryUA)))
	ruShare := 0.0
	if d.RecodedTotal() > 0 {
		ruShare = float64(d.Recoded["RU"]) / float64(d.RecodedTotal())
	}
	r.metricVs("recoded_prefix_frac", recodedFrac, 0.12)
	r.metricVs("recoded_to_ru_share", ruShare, 0.31)
	declineFrac := 1 - float64(final.CountryAddrCount(geodb.CountryUA))/float64(base.CountryAddrCount(geodb.CountryUA))
	r.metricVs("ua_addr_decline_frac", declineFrac, 0.07)
	return r
}

func figure20(e *Env) *Report {
	r := newReport("F20", "IPv6 churn per oblast")
	v6 := e.Scenario().IPv6ChurnByRegion()
	growing := 0
	for _, region := range netmodel.Regions() {
		r.addf("%-16s %+7.0f%%", region, v6[region])
		if v6[region] > 0 {
			growing++
		}
	}
	r.metric("oblasts_with_v6_growth", float64(growing))
	r.metricVs("rivne_growth_pct", v6[netmodel.Rivne], 150)
	return r
}

func figure21(e *Env) *Report {
	r := newReport("F21", "Dominant-share CDF of multi-local blocks")
	shares := e.Classifier().MultiLocalDominantShares()
	cdf := analysis.NewCDF(shares)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		r.addf("p%.0f dominant share = %.2f", q*100, cdf.Quantile(q))
	}
	r.addf("multi-local block-month observations: %d", len(shares))
	r.metric("median_dominant_share", cdf.Median())
	r.metric("multi_local_observations", float64(len(shares)))
	return r
}

func sensitivitySweep(e *Env, id, title string, blocks bool) *Report {
	r := newReport(id, title)
	cl := e.Classifier()
	params := regional.DefaultParams()
	header := "M:      "
	ms := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	for _, m := range ms {
		header += fmt.Sprintf("%8.1f", m)
	}
	r.addf("%s", header)
	// Every (T_perc, M) grid point is an independent classification of the
	// precomputed share tables: sweep the whole grid across the worker pool,
	// then assemble the report lines in grid order.
	tps := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	counts := par.Map(len(tps)*len(ms), func(i int) int {
		p := params
		p.TPerc, p.M = tps[i/len(ms)], ms[i%len(ms)]
		if blocks {
			seen := make(map[int]bool)
			for _, region := range netmodel.Regions() {
				for _, bc := range cl.Classify(region, p).RegionalBlocks() {
					seen[bc.Index] = true
				}
			}
			return len(seen)
		}
		return cl.ClassifyAll(p).NationalCounts()[regional.ASRegional]
	})
	var defaultCount, strictCount, relaxedCount int
	for ti, tp := range tps {
		line := fmt.Sprintf("Tp=%.1f: ", tp)
		for mi, m := range ms {
			count := counts[ti*len(ms)+mi]
			line += fmt.Sprintf("%8d", count)
			switch {
			case m == 0.7 && tp == 0.7:
				defaultCount = count
			case m == 0.9 && tp == 0.9:
				strictCount = count
			case m == 0.5 && tp == 0.5:
				relaxedCount = count
			}
		}
		r.addf("%s", line)
	}
	r.metric("count_default_0.7", float64(defaultCount))
	r.metric("count_strict_0.9", float64(strictCount))
	r.metric("count_relaxed_0.5", float64(relaxedCount))
	return r
}

func figure22(e *Env) *Report {
	return sensitivitySweep(e, "F22", "Regional AS count vs (M, T_perc)", false)
}

func figure23(e *Env) *Report {
	return sensitivitySweep(e, "F23", "Regional /24 count vs (M, T_perc)", true)
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(width))
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func maxU64(vals []uint64) uint64 {
	var m uint64 = 1
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}
