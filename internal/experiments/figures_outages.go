package experiments

import (
	"fmt"
	"strings"
	"time"

	"countrymon/internal/analysis"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
	"countrymon/internal/render"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
)

func init() {
	register("F8", "Regional outage timelines by signal (Fig 8)", figure8)
	register("F9", "Monthly outage hours: frontline vs non-frontline, ours vs IODA (Fig 9)", figure9)
	register("F10", "Power vs Internet outages 2024 with correlation (Fig 10)", figure10)
	register("F11", "Kherson three-event AS timeline (Fig 11)", figure11)
	register("F12", "Monthly RTTs of Kherson ASes (Fig 12)", figure12)
	register("F13", "Status seizure signal ratios (Fig 13)", figure13)
	register("F14", "Status per-block liberation outage (Fig 14)", figure14)
	register("F15", "AS outage coverage CDF vs IODA (Fig 15)", figure15)
	register("F16", "Outage starts per day, common ASes (Fig 16)", figure16)
	register("F17", "Signal shares of detected outages (Fig 17)", figure17)
	register("F24", "Outage severity threshold sweep (Fig 24)", figure24)
	register("F25", "IODA regional outage replication (Fig 25)", figure25)
	register("F26", "IODA power correlation replication (Fig 26)", figure26)
	register("F27", "Signal stability: FBS vs Trinocular SNR (Fig 27)", figure27)
	register("F28", "Full Kherson AS timeline (Fig 28)", figure28)
	register("H1", "Probing-interval outage miss rate (§5.4)", headline1)
}

func figure8(e *Env) *Report {
	r := newReport("F8", "Regional outages by signal")
	tl := e.Store().Timeline()
	missing := e.Store().MissingRounds()
	var flHours, nflHours float64
	var flN, nflN int
	var rows []render.LabeledDetection
	r.addf("%-16s %7s %7s %7s %8s %10s", "oblast", "BGP★", "FBS■", "IPS▲", "events", "hours")
	for _, region := range netmodel.Regions() {
		d := e.OurRegion(region)
		by := d.CountBySignal()
		hours := float64(d.TotalRounds()) * tl.Interval().Hours()
		fl := ""
		if region.Frontline() {
			fl = " [frontline]"
			flHours += hours
			flN++
		} else {
			nflHours += hours
			nflN++
		}
		r.addf("%-16s %7d %7d %7d %8d %10.0f%s", region,
			by[signals.SignalBGP], by[signals.SignalFBS], by[signals.SignalIPS], len(d.Outages), hours, fl)
		rows = append(rows, render.LabeledDetection{Label: region.String(), Detection: d, Missing: missing})
	}
	r.addf("%s", "")
	for _, line := range strings.Split(strings.TrimRight(render.Timeline(tl, rows, 96), "\n"), "\n") {
		r.addf("%s", line)
	}
	r.metric("frontline_mean_hours", flHours/float64(flN))
	r.metric("nonfrontline_mean_hours", nflHours/float64(nflN))
	r.addf("frontline mean %.0f h vs non-frontline mean %.0f h", flHours/float64(flN), nflHours/float64(nflN))
	if nflHours/float64(nflN) > 0 {
		r.metric("frontline_over_nonfrontline_ratio", (flHours/float64(flN))/(nflHours/float64(nflN)))
	}
	return r
}

func groupMonthlyHours(e *Env, regions []netmodel.Region, ioda bool) []float64 {
	tl := e.Store().Timeline()
	var acc []float64
	for _, region := range regions {
		var d *signals.Detection
		if ioda {
			d = e.IODARegion(region)
		} else {
			d = e.OurRegion(region)
		}
		monthly := analysis.OutageHoursPerMonth(d, tl)
		if acc == nil {
			acc = make([]float64, len(monthly))
		}
		analysis.SumSeries(acc, monthly)
	}
	for i := range acc {
		acc[i] /= float64(len(regions))
	}
	return acc
}

func figure9(e *Env) *Report {
	r := newReport("F9", "Monthly outage hours by group")
	tl := e.Store().Timeline()
	fl := groupMonthlyHours(e, netmodel.FrontlineRegions(), false)
	nfl := groupMonthlyHours(e, netmodel.NonFrontlineRegions(), false)
	flI := groupMonthlyHours(e, netmodel.FrontlineRegions(), true)
	nflI := groupMonthlyHours(e, netmodel.NonFrontlineRegions(), true)
	r.addf("%-9s %10s %14s %12s %16s", "month", "frontline", "non-frontline", "IODA front", "IODA non-front")
	for m := range fl {
		r.addf("%-9s %10.0f %14.0f %12.0f %16.0f", tl.MonthLabel(m), fl[m], nfl[m], flI[m], nflI[m])
	}
	sum := func(v []float64) float64 {
		t := 0.0
		for _, x := range v {
			t += x
		}
		return t
	}
	r.metric("ours_frontline_total_hours", sum(fl))
	r.metric("ours_nonfrontline_total_hours", sum(nfl))
	r.metric("ioda_frontline_total_hours", sum(flI))
	r.metric("ioda_nonfrontline_total_hours", sum(nflI))
	// The paper: IODA reports more downtime hours overall.
	if s := sum(fl) + sum(nfl); s > 0 {
		r.metric("ioda_over_ours_hours_ratio", (sum(flI)+sum(nflI))/s)
	}
	// Winter concentration for our non-frontline signal: share of hours in
	// Nov-Mar months.
	winter, total := 0.0, 0.0
	for m, v := range nfl {
		total += v
		mo := tl.MonthStart(m).Month()
		if mo >= time.November || mo <= time.March {
			winter += v
		}
	}
	if total > 0 {
		r.metric("nonfrontline_winter_share", winter/total)
	}
	return r
}

// dailyGroupHours computes the mean daily Internet-outage hours across a
// region group for a calendar year.
func dailyGroupHours(e *Env, regions []netmodel.Region, ioda bool, year int) ([]float64, []float64, []time.Time) {
	tl := e.Store().Timeline()
	var group [][]float64
	for _, region := range regions {
		var d *signals.Detection
		if ioda {
			d = e.IODARegion(region)
		} else {
			d = e.OurRegion(region)
		}
		daily := analysis.OutageHoursPerDay(d, tl)
		group = append(group, daily)
	}
	mean := analysis.MeanOf(group...)
	maxs := analysis.MaxOf(group...)
	meanY, days := analysis.YearSlice(mean, tl, year)
	maxY, _ := analysis.YearSlice(maxs, tl, year)
	return meanY, maxY, days
}

// dailyPowerHours extracts the mean reported power-outage hours for the
// group and days.
func dailyPowerHours(e *Env, regions []netmodel.Region, days []time.Time) []float64 {
	rep := e.PowerReport()
	out := make([]float64, len(days))
	for i, day := range days {
		sum := 0.0
		for _, region := range regions {
			sum += rep.HoursOn(day, region)
		}
		out[i] = sum / float64(len(regions))
	}
	return out
}

func figure10(e *Env) *Report {
	r := newReport("F10", "Power vs Internet outages, 2024")
	nfl := netmodel.NonFrontlineRegions()
	netHours, netMax, days := dailyGroupHours(e, nfl, false, 2024)
	powHours := dailyPowerHours(e, nfl, days)
	rNFL := analysis.Pearson(powHours, netHours)

	flHours, _, flDays := dailyGroupHours(e, netmodel.FrontlineRegions(), false, 2024)
	flPow := dailyPowerHours(e, netmodel.FrontlineRegions(), flDays)
	rFL := analysis.Pearson(flPow, flHours)

	var netTotal, powTotal, worst float64
	for i := range netHours {
		netTotal += netHours[i]
		powTotal += powHours[i]
		worst += netMax[i]
	}
	for i := 0; i < len(days); i += 14 {
		r.addf("%s power=%5.1fh net=%5.1fh %s", days[i].Format("2006-01-02"), powHours[i], netHours[i], bar(netHours[i]/24, 24))
	}
	r.addf("2024 non-frontline: power %.0f h, internet %.0f h, worst-case %.0f h", powTotal, netTotal, worst)
	r.metricVs("pearson_nonfrontline", rNFL, 0.725)
	r.metricVs("pearson_frontline", rFL, 0.298)
	r.metricVs("power_hours_2024", powTotal, 1951)
	r.metricVs("internet_hours_2024", netTotal, 686)
	r.metricVs("worst_case_hours_2024", worst, 2822)
	return r
}

// eventWindow describes one of §5.2's validation windows.
type eventWindow struct {
	name     string
	from, to time.Time
}

func khersonWindows() []eventWindow {
	return []eventWindow{
		{"Mykolaiv cable (2022-04-30)", time.Date(2022, 4, 29, 0, 0, 0, 0, time.UTC), time.Date(2022, 5, 5, 0, 0, 0, 0, time.UTC)},
		{"Occupation rerouting (2022)", time.Date(2022, 5, 30, 0, 0, 0, 0, time.UTC), time.Date(2022, 11, 11, 0, 0, 0, 0, time.UTC)},
		{"Kakhovka dam (2023-06-06)", time.Date(2023, 6, 4, 0, 0, 0, 0, time.UTC), time.Date(2023, 6, 20, 0, 0, 0, 0, time.UTC)},
	}
}

func figure11(e *Env) *Report {
	r := newReport("F11", "Kherson event windows per AS")
	sc := e.Scenario()
	tl := e.Store().Timeline()
	windows := khersonWindows()
	affected := make([]int, len(windows))
	for _, asn := range sim.KhersonASNs() {
		if sc.Space.Lookup(asn) == nil {
			continue
		}
		d := e.OurAS(asn)
		line := fmt.Sprintf("%-18s", asn)
		for wi, w := range windows {
			lo, hi := tl.Round(w.from), tl.Round(w.to)
			var mask signals.Kind
			for _, o := range d.Outages {
				if o.Start < hi && o.End > lo {
					mask |= o.Signals
				}
			}
			if mask != 0 {
				affected[wi]++
			}
			line += fmt.Sprintf("  %-16s", mask)
		}
		r.addf("%s", line)
	}
	for wi, w := range windows {
		r.addf("%s: %d ASes with outage signals", w.name, affected[wi])
	}
	r.metricVs("cable_cut_ases", float64(affected[0]), 24)
	r.metricVs("rerouting_window_ases", float64(affected[1]), 21)
	r.metric("dam_window_ases", float64(affected[2]))
	return r
}

// asMonthlyRTT averages a Kherson AS's tracked-block RTT per month.
func asMonthlyRTT(e *Env, asn netmodel.ASN, month int) float64 {
	sc := e.Scenario()
	st := e.Store()
	as := sc.Space.Lookup(asn)
	if as == nil {
		return 0
	}
	lo, hi := st.Timeline().MonthRounds(month)
	sum, n := 0.0, 0
	for _, blk := range as.Blocks() {
		bi := st.BlockIndex(blk)
		if bi < 0 || !st.RTTTracked(bi) {
			continue
		}
		if sc.BlockTraitsAt(sc.Space.BlockIndex(blk)).HomeRegion != netmodel.Kherson {
			continue
		}
		for round := lo; round < hi; round++ {
			if st.Missing(round) || st.Resp(bi, round) == 0 {
				continue
			}
			if ms := st.RTT(bi, round); ms > 0 {
				sum += float64(ms)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func figure12(e *Env) *Report {
	r := newReport("F12", "Kherson AS monthly RTTs")
	tl := e.Store().Timeline()
	pre := tl.MonthIndex(time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC))
	occ := tl.MonthIndex(time.Date(2022, 8, 1, 0, 0, 0, 0, time.UTC))
	post := tl.MonthIndex(time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC))

	rerouted := []netmodel.ASN{49465, 56404, 56359, 25482, 15458, 47598, 56446, 25256}
	leftBank := map[netmodel.ASN]bool{49465: true, 56359: true, 25256: true}
	var occDelta, postDeltaLeft, postDeltaRight float64
	var nOcc, nLeft, nRight int
	r.addf("%-10s %10s %10s %10s", "ASN", "pre (ms)", "occup.", "post-lib")
	for _, asn := range rerouted {
		p, o, q := asMonthlyRTT(e, asn, pre), asMonthlyRTT(e, asn, occ), asMonthlyRTT(e, asn, post)
		r.addf("%-10s %10.0f %10.0f %10.0f", asn, p, o, q)
		if p > 0 && o > 0 {
			occDelta += o - p
			nOcc++
		}
		if p > 0 && q > 0 {
			if leftBank[asn] {
				postDeltaLeft += q - p
				nLeft++
			} else {
				postDeltaRight += q - p
				nRight++
			}
		}
	}
	if nOcc > 0 {
		r.metricVs("occupation_rtt_delta_ms", occDelta/float64(nOcc), 75)
	}
	if nLeft > 0 {
		r.metric("leftbank_post_delta_ms", postDeltaLeft/float64(nLeft))
	}
	if nRight > 0 {
		r.metric("rightbank_post_delta_ms", postDeltaRight/float64(nRight))
	}
	return r
}

func figure13(e *Env) *Report {
	r := newReport("F13", "Status seizure: signal ratios around 2022-05-13")
	es := e.Signals().AS(25482)
	tl := es.TL
	window := tl.RoundsPerWeek()
	from := tl.Round(time.Date(2022, 5, 12, 0, 0, 0, 0, time.UTC))
	to := tl.Round(time.Date(2022, 5, 14, 23, 0, 0, 0, time.UTC))
	minIPS := 10.0
	var bgpMin, fbsMin float64 = 10, 10
	for round := from; round <= to; round++ {
		ratio := func(vals []float32) float64 {
			ma, ok := signals.MovingAverage(vals, es.Missing, round, window)
			if !ok || ma == 0 {
				return 1
			}
			return float64(vals[round]) / ma
		}
		rb, rf, ri := ratio(es.BGP), ratio(es.FBS), ratio(es.IPS)
		r.addf("%s  BGP=%.2f FBS=%.2f IPS=%.2f", tl.Time(round).Format("01-02 15:04"), rb, rf, ri)
		if ri < minIPS {
			minIPS = ri
		}
		if rb < bgpMin {
			bgpMin = rb
		}
		if rf < fbsMin {
			fbsMin = rf
		}
	}
	r.addf("min ratios over window: BGP=%.2f FBS=%.2f IPS=%.2f", bgpMin, fbsMin, minIPS)
	r.metric("ips_min_ratio", minIPS)
	r.metric("bgp_min_ratio", bgpMin)
	r.metric("fbs_min_ratio", fbsMin)
	return r
}

func figure14(e *Env) *Report {
	r := newReport("F14", "Status blocks through the liberation")
	sc := e.Scenario()
	st := e.Store()
	tl := st.Timeline()
	status := sc.Space.Lookup(25482)
	lo := tl.Round(time.Date(2022, 11, 8, 0, 0, 0, 0, time.UTC))
	hi := tl.Round(time.Date(2022, 12, 14, 0, 0, 0, 0, time.UTC))

	var gapDays []float64
	kyivStayedUp := true
	diurnalRatio := 0.0
	for _, blk := range status.Blocks() {
		bi := st.BlockIndex(blk)
		region := sc.BlockTraitsAt(sc.Space.BlockIndex(blk)).HomeRegion
		// Longest run of fully silent days (every measured round zero) —
		// the outright outage; diurnal recovery days break the run because
		// daylight rounds respond.
		gap, run := 0, 0
		var day, night float64
		var dayN, nightN int
		for d := tl.DayOfRound(lo); d <= tl.DayOfRound(hi-1); d++ {
			silent, measured := true, false
			for round := lo; round < hi; round++ {
				if tl.DayOfRound(round) != d || st.Missing(round) {
					continue
				}
				measured = true
				resp := st.Resp(bi, round)
				if resp > 0 {
					silent = false
				}
				hour := (tl.Time(round).Hour() + 2) % 24
				if hour >= 9 && hour < 20 {
					day += float64(resp)
					dayN++
				} else if hour < 6 || hour >= 23 {
					night += float64(resp)
					nightN++
				}
			}
			if measured && silent {
				run++
				if run > gap {
					gap = run
				}
			} else if measured {
				run = 0
			}
		}
		if region == netmodel.Kherson {
			gapDays = append(gapDays, float64(gap))
			if dayN > 0 && nightN > 0 && night > 0 {
				diurnalRatio = (day / float64(dayN)) / (night / float64(nightN))
			} else if dayN > 0 && day > 0 {
				diurnalRatio = 99
			}
		} else if gap > 2 {
			kyivStayedUp = false
		}
		r.addf("block %v (%s): longest silent run %d days", blk, region, gap)
	}
	meanGap := 0.0
	for _, g := range gapDays {
		meanGap += g
	}
	if len(gapDays) > 0 {
		meanGap /= float64(len(gapDays))
	}
	r.addf("Kherson blocks mean gap %.1f days; Kyiv block up: %v; day/night ratio in recovery %.1f", meanGap, kyivStayedUp, diurnalRatio)
	r.metricVs("kherson_block_gap_days", meanGap, 10)
	b := 0.0
	if kyivStayedUp {
		b = 1
	}
	r.metricVs("kyiv_block_stayed_up", b, 1)
	r.metric("recovery_day_night_ratio", diurnalRatio)
	return r
}

func figure15(e *Env) *Report {
	r := newReport("F15", "AS outage coverage vs IODA")
	sc := e.Scenario()
	oursASes, oursOutages := 0, 0
	iodaASes, iodaOutages := 0, 0
	for _, asn := range e.TargetASNs() {
		if d := e.OurAS(asn); len(d.Outages) > 0 {
			oursASes++
			oursOutages += len(d.Outages)
		}
		if d := e.IODAAS(asn); d != nil && len(d.Outages) > 0 {
			iodaASes++
			iodaOutages += len(d.Outages)
		}
	}
	r.addf("This Work | FBS: %d outages across %d ASes (of %d targets)", oursOutages, oursASes, len(e.TargetASNs()))
	r.addf("IODA | Trinocular: %d outages across %d ASes", iodaOutages, iodaASes)
	small := 0
	for _, asn := range e.TargetASNs() {
		if as := sc.Space.Lookup(asn); as != nil && as.NumBlocks() < 20 {
			if len(e.OurAS(asn).Outages) > 0 {
				small++
			}
		}
	}
	r.addf("small ASes (<20 /24s) with outages only we cover: %d", small)
	r.metric("ases_with_outages_ours", float64(oursASes))
	r.metric("ases_with_outages_ioda", float64(iodaASes))
	if iodaASes > 0 {
		r.metricVs("coverage_ratio", float64(oursASes)/float64(iodaASes), 1674.0/333)
	}
	r.metric("outages_ours", float64(oursOutages))
	r.metric("outages_ioda", float64(iodaOutages))
	return r
}

// commonASes returns target ASes that IODA also reports.
func commonASes(e *Env) []netmodel.ASN {
	var out []netmodel.ASN
	for _, asn := range e.TargetASNs() {
		if e.IODAAS(asn) != nil {
			out = append(out, asn)
		}
	}
	return out
}

func figure16(e *Env) *Report {
	r := newReport("F16", "Outage starts per day, common ASes")
	tl := e.Store().Timeline()
	common := commonASes(e)
	ours := make([]float64, tl.NumDays())
	ioda := make([]float64, tl.NumDays())
	for _, asn := range common {
		analysis.SumSeries(ours, analysis.DailyStartCounts(e.OurAS(asn).Outages, tl))
		analysis.SumSeries(ioda, analysis.DailyStartCounts(e.IODAAS(asn).Outages, tl))
	}
	rr := analysis.Pearson(ours, ioda)
	r.addf("common ASes: %d; Pearson r of daily outage starts = %.2f", len(common), rr)
	r.metricVs("pearson_common_daily_starts", rr, 0.85)
	r.metric("common_ases", float64(len(common)))
	return r
}

func figure17(e *Env) *Report {
	r := newReport("F17", "Signal shares of outages (common ASes)")
	common := commonASes(e)
	oursBy := map[signals.Kind]int{}
	iodaBy := map[signals.Kind]int{}
	for _, asn := range common {
		for k, v := range e.OurAS(asn).CountBySignal() {
			oursBy[k] += v
		}
		for k, v := range e.IODAAS(asn).CountBySignal() {
			iodaBy[k] += v
		}
	}
	r.addf("%-12s %10s %10s", "signal", "this work", "IODA")
	r.addf("%-12s %10d %10d", "BGP★", oursBy[signals.SignalBGP], iodaBy[signals.SignalBGP])
	r.addf("%-12s %10d %10d", "FBS■/TRIN■", oursBy[signals.SignalFBS], iodaBy[signals.SignalFBS])
	r.addf("%-12s %10d %10s", "IPS▲", oursBy[signals.SignalIPS], "n/a")
	r.metric("ours_fbs_outages", float64(oursBy[signals.SignalFBS]))
	r.metric("ours_ips_outages", float64(oursBy[signals.SignalIPS]))
	r.metric("ioda_trin_outages", float64(iodaBy[signals.SignalFBS]))
	if oursBy[signals.SignalFBS] > 0 {
		// Paper: IPS 21,120 vs FBS 2,063 — IPS dominates because FBS
		// requires full-block unresponsiveness.
		r.metricVs("ips_over_fbs_ratio", float64(oursBy[signals.SignalIPS])/float64(oursBy[signals.SignalFBS]), 21120.0/2063)
	}
	return r
}

func figure24(e *Env) *Report {
	r := newReport("F24", "Severity threshold sweep, 2024 non-frontline")
	nfl := netmodel.NonFrontlineRegions()
	cl := e.Classifier()
	res := e.Classification()
	b := e.Signals()
	tl := e.Store().Timeline()

	// Build each region's series once (sharded across the worker pool), then
	// sweep the detection thresholds in parallel: each threshold only reads
	// the shared series. Report lines assemble in threshold order.
	series := par.Map(len(nfl), func(i int) *signals.EntitySeries {
		return b.Region(res.Regions[nfl[i]], cl)
	})
	thresholds := []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
	type sweepPoint struct {
		total, r float64
	}
	points := par.Map(len(thresholds), func(ti int) sweepPoint {
		thr := thresholds[ti]
		cfg := signals.RegionConfig()
		cfg.BGPFrac, cfg.FBSFrac = thr, thr
		cfg.IPSFrac = thr - 0.05
		var group [][]float64
		for _, es := range series {
			d := signals.Detect(es, cfg)
			group = append(group, analysis.OutageHoursPerDay(d, tl))
		}
		mean := analysis.MeanOf(group...)
		meanY, days := analysis.YearSlice(mean, tl, 2024)
		pow := dailyPowerHours(e, nfl, days)
		total := 0.0
		for _, v := range meanY {
			total += v
		}
		return sweepPoint{total: total, r: analysis.Pearson(pow, meanY)}
	})
	var defaultR float64
	prevHours := -1.0
	monotone := true
	for ti, thr := range thresholds {
		pt := points[ti]
		r.addf("threshold %.2f: outage hours %.0f, Pearson r = %.2f", thr, pt.total, pt.r)
		if thr == 0.95 {
			defaultR = pt.r
		}
		if prevHours >= 0 && pt.total < prevHours-1 {
			monotone = false
		}
		prevHours = pt.total
	}
	r.metric("pearson_at_default", defaultR)
	mb := 0.0
	if monotone {
		mb = 1
	}
	r.metric("hours_monotone_in_threshold", mb)
	return r
}

func figure25(e *Env) *Report {
	r := newReport("F25", "IODA regional outages")
	tl := e.Store().Timeline()
	var bgpHours, trinHours float64
	var rows []render.LabeledDetection
	r.addf("%-16s %7s %7s %8s %10s", "oblast", "BGP★", "TRIN■", "events", "hours")
	for _, region := range netmodel.Regions() {
		d := e.IODARegion(region)
		by := d.CountBySignal()
		hours := float64(d.TotalRounds()) * tl.Interval().Hours()
		r.addf("%-16s %7d %7d %8d %10.0f", region, by[signals.SignalBGP], by[signals.SignalFBS], len(d.Outages), hours)
		bgpHours += float64(by[signals.SignalBGP])
		trinHours += float64(by[signals.SignalFBS])
		rows = append(rows, render.LabeledDetection{Label: region.String(), Detection: d, Missing: e.Store().MissingRounds()})
	}
	r.addf("%s", "")
	for _, line := range strings.Split(strings.TrimRight(render.Timeline(tl, rows, 96), "\n"), "\n") {
		r.addf("%s", line)
	}
	r.metric("bgp_events_total", bgpHours)
	r.metric("trin_events_total", trinHours)
	return r
}

func figure26(e *Env) *Report {
	r := newReport("F26", "IODA power correlation, 2024")
	nfl := netmodel.NonFrontlineRegions()
	netHours, _, days := dailyGroupHours(e, nfl, true, 2024)
	pow := dailyPowerHours(e, nfl, days)
	rNFL := analysis.Pearson(pow, netHours)
	flHours, _, flDays := dailyGroupHours(e, netmodel.FrontlineRegions(), true, 2024)
	flPow := dailyPowerHours(e, netmodel.FrontlineRegions(), flDays)
	rFL := analysis.Pearson(flPow, flHours)
	r.addf("IODA Pearson: non-frontline %.2f, frontline %.2f", rNFL, rFL)
	r.metricVs("ioda_pearson_nonfrontline", rNFL, 0.328)
	r.metricVs("ioda_pearson_frontline", rFL, 0.394)
	return r
}

func figure27(e *Env) *Report {
	r := newReport("F27", "Signal stability (FBS vs Trinocular)")
	tl := e.Store().Timeline()
	// The paper measures one calm day of bi-hourly samples (12 points). At
	// coarser experiment intervals a day yields too few samples for a
	// meaningful deviation, so use a calm week (same rounds-per-AS order
	// of magnitude) ending 2023-03-02.
	day := time.Date(2023, 3, 2, 0, 0, 0, 0, time.UTC)
	lo := tl.Round(day.Add(-6 * 24 * time.Hour))
	hi := tl.Round(day.Add(24 * time.Hour))
	if hi <= lo {
		hi = lo + 1
	}
	trin := e.Trinocular()
	b := e.Signals()

	var snrOurs, snrIODA []float64
	for asn, trinSeries := range trin.PerAS {
		ourSeries := b.AS(asn)
		var ours, theirs []float64
		zero := false
		for round := lo; round <= hi && round < tl.NumRounds(); round++ {
			if e.Store().Missing(round) {
				continue
			}
			if ourSeries.FBS[round] == 0 || trinSeries[round] == 0 {
				zero = true
			}
			ours = append(ours, float64(ourSeries.FBS[round]))
			theirs = append(theirs, float64(trinSeries[round]))
		}
		if zero || len(ours) < 6 {
			continue // the paper excludes ASes with signal loss
		}
		snrOurs = append(snrOurs, capSNR(analysis.SNR(ours)))
		snrIODA = append(snrIODA, capSNR(analysis.SNR(theirs)))
	}
	// Median across ASes; perfectly constant signals saturate the SNR
	// (capped at 1000), so the median (not the mean) carries the
	// comparison.
	mo := analysis.NewCDF(snrOurs).Median()
	mi := analysis.NewCDF(snrIODA).Median()
	r.addf("ASes compared: %d; median SNR ours=%.1f, Trinocular=%.1f", len(snrOurs), mo, mi)
	r.metricVs("snr_ours", mo, 99.7)
	r.metricVs("snr_trinocular", mi, 7.6)
	if mi > 0 {
		r.metric("snr_ratio", mo/mi)
	}
	return r
}

func figure28(e *Env) *Report {
	r := newReport("F28", "Full Kherson timeline summary")
	sc := e.Scenario()
	tl := e.Store().Timeline()
	validSignals := 0
	total := 0
	var rows []render.LabeledDetection
	for _, asn := range sim.KhersonASNs() {
		as := sc.Space.Lookup(asn)
		if as == nil {
			continue
		}
		total++
		d := e.OurAS(asn)
		rows = append(rows, render.LabeledDetection{
			Label: fmt.Sprintf("%s (%s)", as.Name, asn), Detection: d,
			Missing: e.Store().MissingRounds(),
		})
		hours := float64(d.TotalRounds()) * tl.Interval().Hours()
		// "Valid outage signals were recorded for 30 out of 34 ASes."
		responsive := false
		for _, bi := range e.Signals().ASBlocks(asn) {
			for m := 0; m < tl.NumMonths(); m++ {
				if e.Store().MonthStats(bi, m).EverActive > 0 {
					responsive = true
					break
				}
			}
		}
		if responsive {
			validSignals++
		}
		r.addf("%-10s %-18s outage events=%3d hours=%7.0f responsive=%v", asn, as.Name, len(d.Outages), hours, responsive)
	}
	r.addf("ASes with valid signals: %d / %d", validSignals, total)
	r.addf("%s", "")
	for _, line := range strings.Split(strings.TrimRight(render.Timeline(tl, rows, 96), "\n"), "\n") {
		r.addf("%s", line)
	}
	r.metricVs("ases_with_valid_signals_frac", float64(validSignals)/float64(total), 30.0/34)
	return r
}

func capSNR(v float64) float64 {
	if v > 1000 {
		return 1000
	}
	return v
}

// headline1 quantifies the bi-hourly limitation: how many scripted
// ground-truth disruptions are too short to intersect a probing round.
func headline1(e *Env) *Report {
	r := newReport("H1", "Probing-interval miss rate")
	sc := e.Scenario()
	tl := e.Store().Timeline()
	interval := tl.Interval()
	short, covered, totalEvents := 0, 0, 0
	detected := 0
	for _, ev := range sc.Events() {
		if len(ev.ASNs) != 1 {
			continue
		}
		totalEvents++
		dur := ev.To.Sub(ev.From)
		if dur < interval {
			short++
		}
		lo, hi := tl.Round(ev.From), tl.Round(ev.To)
		hit := false
		for round := lo; round <= hi && round < tl.NumRounds(); round++ {
			at := tl.Time(round)
			if !at.Before(ev.From) && at.Before(ev.To) && !sc.Missing[round] {
				hit = true
				break
			}
		}
		if hit {
			covered++
			d := e.OurAS(ev.ASNs[0])
			for _, o := range d.Outages {
				if o.Start < hi+1 && o.End > lo {
					detected++
					break
				}
			}
		}
	}
	missRate := 0.0
	if totalEvents > 0 {
		missRate = 1 - float64(covered)/float64(totalEvents)
	}
	recall := 0.0
	if covered > 0 {
		recall = float64(detected) / float64(covered)
	}
	r.addf("scripted single-AS events: %d; shorter than the %v interval: %d", totalEvents, interval, short)
	r.addf("events intersecting a probing round: %d (miss rate %.1f%%)", covered, missRate*100)
	r.addf("of covered events, detected by our AS signals: %.0f%%", recall*100)
	r.metricVs("interval_miss_rate", missRate, 0.295)
	r.metric("covered_event_recall", recall)
	return r
}
