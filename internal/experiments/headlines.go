package experiments

import (
	"net/netip"
	"sort"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/passive"
	"countrymon/internal/scanner6"
	"countrymon/internal/signals"
	"countrymon/internal/simnet"
)

func init() {
	register("H2", "Churn attribution: who moved the addresses (§4.1)", headline2)
	register("H3", "Geolocation precision: regional vs non-regional radius (§4.3)", headline3)
	register("H4", "Passive (CDN volume) vs active detection (Table 1)", headline4)
	register("H5", "IPv6 hitlist probing feasibility (§6 future work)", headline5)
}

// headline5 runs the IPv6 hitlist prober end to end at campaign start and
// end: adoption grows (Fig 20), responses aggregate per /48 site, and
// ICMPv6 errors reveal routers that IPv4 NAT would hide.
func headline5(e *Env) *Report {
	r := newReport("H5", "IPv6 probing feasibility")
	sc := e.Scenario()
	hl, err := sc.V6Hitlist()
	if err != nil {
		r.addf("hitlist: %v", err)
		return r
	}
	run := func(at time.Time) (*scanner6.RoundData, error) {
		wire := simnet.New6(netip.MustParseAddr("2001:db8::1"), sc.V6Responder(), at)
		p := scanner6.New(wire, scanner6.Config{Rate: 0, Seed: sc.Cfg.Seed, Epoch: 5, Clock: wire, Cooldown: time.Second})
		return p.Run(hl)
	}
	early, err := run(sc.TL.Start())
	if err != nil {
		r.addf("probe: %v", err)
		return r
	}
	late, err := run(sc.TL.End())
	if err != nil {
		r.addf("probe: %v", err)
		return r
	}
	es := float64(early.Stats.Valid) / float64(early.Stats.Sent)
	ls := float64(late.Stats.Valid) / float64(late.Stats.Sent)
	r.addf("hitlist: %d addresses across %d /48 sites", hl.Len(), len(early.Sites))
	r.addf("responsive share: %.1f%% (2022) → %.1f%% (2025)", es*100, ls*100)
	r.addf("routers revealed by ICMPv6 errors: %d (2025 round)", len(late.ErrorSources))
	r.metric("v6_share_2022", es)
	r.metric("v6_share_2025", ls)
	r.metric("v6_growth_ratio", ls/es)
	r.metric("routers_harvested", float64(len(late.ErrorSources)))
	return r
}

// headline4 contrasts the passive comparator with the active pipeline on
// the two Kherson validation events: both see the oblast-wide cable cut in
// region volume; only active full-block scans attribute anything at AS
// granularity (e.g. the Status seizure dip is a single provider's IPS▲).
func headline4(e *Env) *Report {
	r := newReport("H4", "Passive vs active")
	tl := e.Store().Timeline()
	rr := e.Classification().Regions[netmodel.Kherson]
	vol := passive.VolumeSeries(e.Store(), e.Classifier(), rr)
	d := passive.Detect(vol, tl, 0.5)

	covered := func(det *signals.Detection, at time.Time) bool {
		round := tl.Round(at)
		for _, o := range det.Outages {
			if o.Start <= round && round < o.End {
				return true
			}
		}
		return false
	}
	cable := time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC)
	passiveCable := covered(d, cable)
	activeCable := covered(e.OurRegion(netmodel.Kherson), cable)

	// The seizure: attributable only at AS level.
	seizure := time.Date(2022, 5, 13, 10, 30, 0, 0, time.UTC)
	activeSeizure := covered(e.OurAS(25482), seizure)

	r.addf("oblast-wide cable cut: passive=%v active=%v", passiveCable, activeCable)
	r.addf("Status seizure (single-AS IPS▲ dip): active AS-level=%v; passive has no AS dimension", activeSeizure)
	r.addf("passive outage events for Kherson (region volume only): %d", len(d.Outages))
	r.metricVs("passive_detects_cable_cut", b2f(passiveCable), 1)
	r.metricVs("active_detects_cable_cut", b2f(activeCable), 1)
	r.metricVs("active_attributes_seizure", b2f(activeSeizure), 1)
	return r
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// headline2 reproduces §4.1's attribution of the 3.7M moved addresses: the
// intra-Ukraine component is dominated by national ISPs' dynamic pools, the
// outbound component by reassignments to Amazon/the US, and of Kherson's
// initial addresses only ~26% remain.
func headline2(e *Env) *Report {
	r := newReport("H2", "Churn attribution by AS")
	sc := e.Scenario()
	before := sc.GeoSnapshot(-1)
	after := sc.GeoSnapshot(sc.TL.NumMonths() - 1)

	movedIntra := map[netmodel.ASN]int64{}
	movedAbroad := map[netmodel.ASN]int64{}
	var khStay, khIntra, khAbroad, khTotal int64
	amazonTakeover := int64(0)
	for bi, blk := range sc.Space.Blocks() {
		b := before.BlockShares(blk)
		a := after.BlockShares(blk)
		br, bn := b.DominantRegion()
		ar, _ := a.DominantRegion()
		asn := sc.Space.OriginOf(blk)
		if br.Valid() && ar.Valid() && br != ar {
			movedIntra[asn] += int64(bn)
		}
		if br.Valid() && !ar.Valid() && a.Located > 0 {
			movedAbroad[asn] += int64(bn)
		}
		if br == netmodel.Kherson {
			khTotal += int64(bn)
			switch {
			case ar == netmodel.Kherson:
				khStay += int64(bn)
			case ar.Valid():
				khIntra += int64(bn)
			default:
				khAbroad += int64(bn)
			}
		}
		if bt := sc.BlockTraitsAt(bi); bt.MoveASN == 16509 {
			amazonTakeover += 256
		}
	}

	type row struct {
		asn netmodel.ASN
		n   int64
	}
	top := func(m map[netmodel.ASN]int64, k int) []row {
		var rows []row
		for asn, n := range m {
			rows = append(rows, row{asn, n})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		if len(rows) > k {
			rows = rows[:k]
		}
		return rows
	}
	r.addf("top intra-Ukraine movers (the paper names Ukrtelecom, Kyivstar, Vodafone, Vega):")
	nationalTop := 0
	for i, rw := range top(movedIntra, 6) {
		name := ""
		if as := sc.Space.Lookup(rw.asn); as != nil {
			name = as.Name
		}
		tr := sc.ASTraitsOf(rw.asn)
		tag := ""
		if tr != nil && tr.National {
			tag = " [national]"
			if i < 4 {
				nationalTop++
			}
		}
		r.addf("  %-10s %-16s %8d addrs%s", rw.asn, name, rw.n, tag)
	}
	r.addf("top outbound movers:")
	for _, rw := range top(movedAbroad, 4) {
		name := ""
		if as := sc.Space.Lookup(rw.asn); as != nil {
			name = as.Name
		}
		r.addf("  %-10s %-16s %8d addrs", rw.asn, name, rw.n)
	}
	if khTotal > 0 {
		r.addf("Kherson fate: %.0f%% stayed, %.0f%% moved within Ukraine, %.0f%% abroad",
			100*float64(khStay)/float64(khTotal), 100*float64(khIntra)/float64(khTotal), 100*float64(khAbroad)/float64(khTotal))
		r.metricVs("kherson_stayed_frac", float64(khStay)/float64(khTotal), 0.26)
		r.metricVs("kherson_intra_frac", float64(khIntra)/float64(khTotal), 0.45)
		r.metricVs("kherson_abroad_frac", float64(khAbroad)/float64(khTotal), 0.29)
	}
	r.addf("addresses now announced by Amazon (AS16509): %d (paper: 519K at full scale)", amazonTakeover)
	r.metricVs("national_isps_among_top4_intra_movers", float64(nationalTop), 4)
	r.metric("amazon_takeover_addrs", float64(amazonTakeover))
	return r
}

// headline3 reproduces §4.3's precision finding: regional /24s geolocate
// with a ~50 km median radius in 2022 degrading to ~200 km by 2025, while
// non-regional blocks sit at a stable ~500 km.
func headline3(e *Env) *Report {
	r := newReport("H3", "Geolocation precision by class")
	sc := e.Scenario()
	cl := e.Classifier()
	res := e.Classification()

	regionalBlocks := make(map[int]bool)
	for _, rr := range res.Regions {
		for _, bc := range rr.RegionalBlocks() {
			regionalBlocks[bc.Index] = true
		}
	}
	medianAt := func(month int, regional bool) float64 {
		var vals []uint32
		for bi := range sc.Blocks() {
			if regionalBlocks[bi] != regional {
				continue
			}
			if v := cl.BlockRadius(bi, month); v > 0 {
				vals = append(vals, uint32(v))
			}
		}
		return medianU32(vals)
	}
	last := cl.Months() - 1
	reg2022 := medianAt(0, true)
	reg2025 := medianAt(last, true)
	non2022 := medianAt(0, false)
	non2025 := medianAt(last, false)
	r.addf("regional /24s: median radius %.0f km (2022) → %.0f km (2025)", reg2022, reg2025)
	r.addf("non-regional:  median radius %.0f km (2022) → %.0f km (2025)", non2022, non2025)
	r.metricVs("regional_radius_2022_km", reg2022, 50)
	r.metricVs("regional_radius_2025_km", reg2025, 200)
	r.metricVs("nonregional_radius_km", non2025, 500)
	return r
}

func medianU32(vals []uint32) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return float64(vals[len(vals)/2])
}
