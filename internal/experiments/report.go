package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one regenerated table or figure: human-readable lines plus the
// key metrics EXPERIMENTS.md records as paper-vs-measured.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Metrics holds named measured values.
	Metrics map[string]float64
	// PaperValues holds the corresponding numbers the paper reports, where
	// it states them (same keys as Metrics).
	PaperValues map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title,
		Metrics:     make(map[string]float64),
		PaperValues: make(map[string]float64),
	}
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) metric(name string, measured float64) {
	r.Metrics[name] = measured
}

func (r *Report) metricVs(name string, measured, paper float64) {
	r.Metrics[name] = measured
	r.PaperValues[name] = paper
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.Metrics) > 0 {
		b.WriteString("-- metrics --\n")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if p, ok := r.PaperValues[k]; ok {
				fmt.Fprintf(&b, "%-46s measured=%.4g paper=%.4g\n", k, r.Metrics[k], p)
			} else {
				fmt.Fprintf(&b, "%-46s measured=%.4g\n", k, r.Metrics[k])
			}
		}
	}
	return b.String()
}

// Experiment couples an identifier with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(e *Env) *Report
}

var registry []Experiment

func register(id, title string, run func(e *Env) *Report) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in registration order.
func All() []Experiment { return registry }

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, ex := range registry {
		if ex.ID == id {
			return ex, true
		}
	}
	return Experiment{}, false
}
