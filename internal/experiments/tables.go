package experiments

import (
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/regional"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/timeline"
)

func init() {
	register("T1", "Method comparison: full block scans vs Trinocular vs single-IP", table1)
	register("T2", "Static detection thresholds and their behaviour", table2)
	register("T3", "Regional / non-regional / temporal classification counts", table3)
	register("T4", "Block eligibility: FBS vs Trinocular", table4)
	register("T5", "Kherson AS inventory", table5)
}

// table1 reproduces Table 1's quantitative columns on the shared scenario:
// probing cost, eligibility and outage coverage per method.
func table1(e *Env) *Report {
	r := newReport("T1", "Method comparison")
	st := e.Store()
	tl := st.Timeline()
	months := tl.NumMonths()

	// FBS: 256 probes per block per round; eligibility E(b) ≥ 3.
	fbsEligible := 0
	responsive := 0
	for bi := 0; bi < st.NumBlocks(); bi++ {
		everResp, everElig := false, false
		for m := 0; m < months; m++ {
			s := st.MonthStats(bi, m)
			if s.EverActive > 0 {
				everResp = true
			}
			if s.EverActive >= signals.MinEverActive {
				everElig = true
			}
		}
		if everResp {
			responsive++
		}
		if everElig {
			fbsEligible++
		}
	}

	// Trinocular: adaptive probing cost measured from the baseline run.
	trin := e.Trinocular()
	runner := e.TrinocularRunner()
	rounds := 0
	for _, m := range st.MissingRounds() {
		if !m {
			rounds++
		}
	}
	trinProbesPerBlockRound := float64(trin.ProbesSent) / float64(rounds*max(1, runner.NumBlocks()))

	// Outage coverage: ASes with ≥1 detected outage, ours vs IODA.
	ours, theirs := 0, 0
	for _, asn := range e.TargetASNs() {
		if len(e.OurAS(asn).Outages) > 0 {
			ours++
		}
		if d := e.IODAAS(asn); d != nil && len(d.Outages) > 0 {
			theirs++
		}
	}

	mean := avgResponsiveIPs(e)
	r.addf("%-22s %10s %12s %14s %12s", "method", "probes//24", "interval", "eligible /24s", "AS coverage")
	r.addf("%-22s %10d %12s %14d %12d", "This Work (FBS)", 256, tl.Interval(), fbsEligible, ours)
	r.addf("%-22s %10.2f %12s %14d %12d", "Trinocular/IODA", trinProbesPerBlockRound, tl.Interval(), runner.NumBlocks(), theirs)
	r.addf("%-22s %10d %12s %14s %12s", "single-IP", 1, tl.Interval(), "n/a", "n/a")
	r.addf("responsive /24 blocks: %d of %d; mean responsive IPs per round: %.0f", responsive, st.NumBlocks(), mean)

	r.metric("fbs_eligible_blocks", float64(fbsEligible))
	r.metric("trinocular_eligible_blocks", float64(runner.NumBlocks()))
	r.metric("trin_probes_per_block_round", trinProbesPerBlockRound)
	r.metric("as_coverage_ours", float64(ours))
	r.metric("as_coverage_ioda", float64(theirs))
	return r
}

func avgResponsiveIPs(e *Env) float64 {
	st := e.Store()
	sum, n := 0.0, 0
	for round := 0; round < st.Timeline().NumRounds(); round += 29 {
		if st.Missing(round) {
			continue
		}
		total := 0
		for bi := 0; bi < st.NumBlocks(); bi++ {
			total += st.Resp(bi, round)
		}
		sum += float64(total)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// table2 prints the Table 2 thresholds and validates their behaviour on a
// controlled series: no false positives on a steady baseline, prompt
// detection of a step outage.
func table2(e *Env) *Report {
	r := newReport("T2", "Detection thresholds")
	asCfg, regCfg := signals.ASConfig(), signals.RegionConfig()
	r.addf("%-10s %6s %6s %6s %18s", "level", "BGP★", "FBS■", "IPS▲", "FBS gating (IPS <)")
	r.addf("%-10s %5.0f%% %5.0f%% %5.0f%% %17.0f%%", "AS", asCfg.BGPFrac*100, asCfg.FBSFrac*100, asCfg.IPSFrac*100, asCfg.FBSRequiresIPSBelow*100)
	r.addf("%-10s %5.0f%% %5.0f%% %5.0f%% %17.0f%%", "Regional", regCfg.BGPFrac*100, regCfg.FBSFrac*100, regCfg.IPSFrac*100, regCfg.FBSRequiresIPSBelow*100)

	// Controlled validation.
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.Add(1000*2*time.Hour), 2*time.Hour)
	mk := func() *signals.EntitySeries {
		es := &signals.EntitySeries{
			Name: "ctl", TL: tl,
			BGP: make([]float32, tl.NumRounds()), FBS: make([]float32, tl.NumRounds()),
			IPS: make([]float32, tl.NumRounds()), IPSValidMonth: make([]bool, tl.NumMonths()),
			Missing: make([]bool, tl.NumRounds()),
		}
		for i := range es.BGP {
			es.BGP[i], es.FBS[i], es.IPS[i] = 20, 18, 900
		}
		for m := range es.IPSValidMonth {
			es.IPSValidMonth[m] = true
		}
		return es
	}
	steady := signals.Detect(mk(), asCfg)
	es := mk()
	const stepAt = 600
	for i := stepAt; i < len(es.BGP); i++ {
		es.BGP[i], es.FBS[i], es.IPS[i] = 0, 0, 0
	}
	stepped := signals.Detect(es, asCfg)
	latency := -1
	for rr := stepAt; rr < len(stepped.Flags); rr++ {
		if stepped.Flags[rr] != 0 {
			latency = rr - stepAt
			break
		}
	}
	r.addf("steady baseline false-positive rounds: %d / %d", steady.TotalRounds(), tl.NumRounds())
	r.addf("step outage detection latency: %d rounds", latency)
	r.metric("false_positive_rounds", float64(steady.TotalRounds()))
	r.metric("step_detection_latency_rounds", float64(latency))
	return r
}

// table3 reproduces Table 3: classification counts for Ukraine and Kherson,
// plus the target-set row.
func table3(e *Env) *Report {
	r := newReport("T3", "Regional classification (Table 3)")
	cl := e.Classifier()
	res := e.Classification()

	classOf := func(asn netmodel.ASN) regional.ASClass { return res.NationalClass(asn) }
	national := map[regional.ASClass]*classAgg{}
	total := &classAgg{}
	for _, as := range e.Scenario().Space.ASes() {
		c := classOf(as.ASN)
		if c == regional.ASAbsent {
			continue
		}
		a := national[c]
		if a == nil {
			a = &classAgg{}
			national[c] = a
		}
		ips := cl.MeanHomeIPs(as.ASN)
		blocks := cl.MeanHomeBlocks(as.ASN)
		a.ases++
		a.ips += ips
		a.blocks += blocks
		total.ases++
		total.ips += ips
		total.blocks += blocks
	}

	kherson := map[regional.ASClass]*classAgg{}
	khTotal := &classAgg{}
	khRes := res.Regions[netmodel.Kherson]
	for asn, c := range khRes.AS {
		a := kherson[c]
		if a == nil {
			a = &classAgg{}
			kherson[c] = a
		}
		ips := cl.MeanRegionIPs(asn, netmodel.Kherson)
		blocks := cl.MeanRegionBlocks(asn, netmodel.Kherson)
		a.ases++
		a.ips += ips
		a.blocks += blocks
		khTotal.ases++
		khTotal.ips += ips
		khTotal.blocks += blocks
	}

	ts := e.TargetSet()
	r.addf("%-14s | %8s %10s %8s | %8s %10s %8s", "category", "UA ASes", "UA IPs", "UA /24s", "KH ASes", "KH IPs", "KH /24s")
	row := func(name string, n, k *classAgg) {
		if n == nil {
			n = &classAgg{}
		}
		if k == nil {
			k = &classAgg{}
		}
		r.addf("%-14s | %8d %10.0f %8.0f | %8d %10.0f %8.0f", name, n.ases, n.ips, n.blocks, k.ases, k.ips, k.blocks)
	}
	row("Total", total, khTotal)
	row("Regional", national[regional.ASRegional], kherson[regional.ASRegional])
	row("Non-Regional", national[regional.ASNonRegional], kherson[regional.ASNonRegional])
	row("Temporal", national[regional.ASTemporal], kherson[regional.ASTemporal])
	r.addf("Target set: %d ASes, %d regional /24s, %.0f IPs", len(ts.ASes), len(ts.Blocks), ts.IPs)

	scale := e.Config().Scale
	r.metricVs("total_ases", float64(total.ases), 2024*scale)
	r.metricVs("regional_ases", float64(nz(national[regional.ASRegional]).ases), 1428*scale)
	r.metricVs("kherson_regional_ases", float64(nz(kherson[regional.ASRegional]).ases), 13)
	r.metric("kherson_total_ases", float64(khTotal.ases))
	r.metric("kherson_temporal_ases", float64(nz(kherson[regional.ASTemporal]).ases))
	r.metric("target_ases", float64(len(ts.ASes)))
	r.metric("target_blocks", float64(len(ts.Blocks)))
	return r
}

// classAgg accumulates Table 3 cells.
type classAgg struct {
	ases   int
	ips    float64
	blocks float64
}

func nz(a *classAgg) *classAgg {
	if a == nil {
		return &classAgg{}
	}
	return a
}

// table4 reproduces Table 4: eligible blocks, FBS vs Trinocular, for
// regional vs non-regional blocks.
func table4(e *Env) *Report {
	r := newReport("T4", "Block eligibility: FBS vs Trinocular (Table 4)")
	st := e.Store()
	months := st.Timeline().NumMonths()
	ts := e.TargetSet()

	type counts struct{ all, responsive, fbs, trin, indet int }
	var reg, non counts
	for bi := 0; bi < st.NumBlocks(); bi++ {
		_, isRegional := ts.Blocks[bi]
		c := &non
		if isRegional {
			c = &reg
		}
		c.all++
		everResp, everFBS, everTrin, everInd := false, false, false, false
		for m := 0; m < months; m++ {
			s := st.MonthStats(bi, m)
			if s.EverActive > 0 {
				everResp = true
			}
			if s.EverActive >= signals.MinEverActive {
				everFBS = true
			}
			el, ind := st.EligibleTrinocular(bi, m)
			if el {
				everTrin = true
				if ind {
					everInd = true
				}
			}
		}
		if everResp {
			c.responsive++
		}
		if everFBS {
			c.fbs++
		}
		if everTrin {
			c.trin++
		}
		if everInd {
			c.indet++
		}
	}
	r.addf("%-26s %10s %14s", "category", "regional", "non-regional")
	r.addf("%-26s %10d %14d", "All blocks", reg.all, non.all)
	r.addf("%-26s %10d %14d", "Responsive", reg.responsive, non.responsive)
	r.addf("%-26s %10d %14d", "-> Full Block Scans E≥3", reg.fbs, non.fbs)
	r.addf("%-26s %10d %14d", "-> Trinocular E≥15,A≥0.1", reg.trin, non.trin)
	r.addf("%-26s %10d %14d", "   thereof indeterminate", reg.indet, non.indet)

	fbsShare, trinShare := 0.0, 0.0
	if reg.responsive > 0 {
		fbsShare = float64(reg.fbs) / float64(reg.responsive)
		trinShare = float64(reg.trin) / float64(reg.responsive)
	}
	r.metricVs("regional_fbs_share_of_responsive", fbsShare, 0.96)
	r.metricVs("regional_trin_share_of_responsive", trinShare, 0.84)
	r.metric("regional_indeterminate", float64(reg.indet))
	return r
}

// table5 reproduces Table 5: the Kherson AS inventory with classification,
// headquarters, IODA coverage and 2025 BGP presence, checked against the
// scripted ground truth.
func table5(e *Env) *Report {
	r := newReport("T5", "Kherson AS inventory (Table 5)")
	sc := e.Scenario()
	st := e.Store()
	res := e.Classification().Regions[netmodel.Kherson]
	platform := e.IODA()
	lastMonth := st.Timeline().NumMonths() - 1

	groundTruthRegional := make(map[netmodel.ASN]bool)
	for _, asn := range sim.KhersonRegionalASNs() {
		groundTruthRegional[asn] = true
	}

	correct, ceasedDetected, ceasedTruth := 0, 0, 0
	r.addf("%-10s %-18s %-16s %9s %6s %6s %8s", "ASN", "name", "HQ", "reg /24s", "class", "IODA", "BGP2025")
	for _, asn := range sim.KhersonASNs() {
		as := sc.Space.Lookup(asn)
		if as == nil {
			continue
		}
		regionalBlocks := 0
		for _, blk := range as.Blocks() {
			if _, ok := res.RegionalBlock(sc.Space.BlockIndex(blk)); ok {
				regionalBlocks++
			}
		}
		class := res.AS[asn]
		if (class == regional.ASRegional) == groundTruthRegional[asn] {
			correct++
		}
		// BGP presence in the final month.
		routed := false
		for _, blk := range as.Blocks() {
			if st.MonthStats(sc.Space.BlockIndex(blk), lastMonth).RoutedRounds > 0 {
				routed = true
				break
			}
		}
		tr := sc.ASTraitsOf(asn)
		truthCeased := tr != nil && !tr.Active(sc.TL.End())
		if truthCeased {
			ceasedTruth++
			if !routed {
				ceasedDetected++
			}
		}
		hq := "foreign"
		if as.HQ.Valid() {
			hq = as.HQ.String()
		}
		iodaCov := "no"
		if platform.Reported(asn) {
			iodaCov = "yes"
		}
		bgp := "yes"
		if !routed {
			bgp = "no"
		}
		r.addf("%-10s %-18s %-16s %9d %6.6s %6s %8s", asn, as.Name, hq, regionalBlocks, class.String(), iodaCov, bgp)
	}
	r.metricVs("classification_accuracy", float64(correct)/float64(len(sim.KhersonASNs())), 1.0)
	r.metricVs("ceased_ases_detected", float64(ceasedDetected), 7)
	r.metric("ceased_ases_ground_truth", float64(ceasedTruth))
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
