// Package faults wraps a scanner.Transport with deterministic fault
// injection, so the resilience of the measurement pipeline can be exercised
// in tests, benchmarks and the CLIs without a misbehaving network at hand.
//
// Two fault classes compose:
//
//   - Scripted windows: absolute time ranges during which the vantage point
//     is blacked out (sends fail, replies vanish), the receive path errors,
//     sends fail transiently, reads stall, or connectivity flaps with a
//     period. Windows model the paper's vantage-point outages (§3.1).
//   - Probabilistic noise: per-packet transient send errors, silent probe
//     drops and reply truncation, drawn from a seeded deterministic RNG so
//     a faulty run is exactly reproducible.
//
// Injected errors implement `Transient() bool`, which the scanner's retry
// and error-budget machinery keys on; the wrapper forwards the underlying
// clock, so it can stand in wherever the wrapped transport did.
package faults

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
)

// Kind is the behaviour of a scripted fault window.
type Kind uint8

const (
	// Blackout takes the vantage offline: sends fail transiently and the
	// receive path is silent (reads time out).
	Blackout Kind = iota
	// SendErrors fails every send transiently; the receive path still
	// delivers replies to probes that got out earlier.
	SendErrors
	// RecvErrors fails every read with a transient receive error.
	RecvErrors
	// Stall makes reads consume their whole wait budget and return
	// nothing, emulating a wedged receive path.
	Stall
	// Flap alternates Blackout on/off every Period within the window.
	Flap
)

var kindNames = map[Kind]string{
	Blackout: "blackout", SendErrors: "senderr-window", RecvErrors: "recverr",
	Stall: "stall", Flap: "flap",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", k)
}

// Window is one scripted fault interval [From, To).
type Window struct {
	From, To time.Time
	Kind     Kind
	// Period is the Flap on/off half-cycle (ignored for other kinds).
	Period time.Duration
}

// active reports whether the window's fault applies at t.
func (w Window) active(t time.Time) bool {
	if t.Before(w.From) || !t.Before(w.To) {
		return false
	}
	if w.Kind == Flap && w.Period > 0 {
		return (t.Sub(w.From)/w.Period)%2 == 0
	}
	return true
}

// Profile is a complete fault specification.
type Profile struct {
	// Seed drives the probabilistic faults deterministically.
	Seed uint64
	// SendErrorProb fails a send with a transient error.
	SendErrorProb float64
	// DropProb silently discards a probe (the send "succeeds").
	DropProb float64
	// TruncateProb truncates a delivered reply to half its length,
	// which the scanner must reject as invalid rather than crash on.
	TruncateProb float64
	// Windows are the scripted fault intervals.
	Windows []Window
}

// Counters tallies injected faults (for assertions and CLI reporting).
type Counters struct {
	SendErrors uint64 // failed sends (windows + probability)
	Drops      uint64 // silently discarded probes
	RecvErrors uint64 // injected read errors
	Truncated  uint64 // truncated replies
	Blackouts  uint64 // reads swallowed by blackout/stall windows
}

// Err is an injected fault error. It reports itself transient so the
// scanner's retry/budget machinery treats it like a real flaky network.
type Err struct{ Op string }

func (e *Err) Error() string   { return "faults: injected " + e.Op + " error" }
func (e *Err) Transient() bool { return true }

// Transport wraps an inner scanner.Transport with fault injection. It also
// implements scanner.Clock by delegation, so it can replace a clock-bearing
// transport (like simnet.Network) wholesale, and scanner.BatchTransport so
// batched engines keep per-packet fault semantics: every packet in a batch
// rolls the same dice, in the same order, as it would packet-at-a-time.
type Transport struct {
	inner scanner.Transport
	clock scanner.Clock
	prof  Profile

	batchOnce sync.Once
	batch     scanner.BatchTransport // batched view of inner, built lazily

	mu  sync.Mutex
	rng uint64
	cnt Counters

	// metrics shadows cnt onto a registry (see Observe); never nil.
	metrics *Metrics
}

// NewTransport wraps inner with the given profile. When clock is nil, the
// inner transport is used if it implements scanner.Clock, else the wall
// clock; fault windows are evaluated against this clock.
func NewTransport(inner scanner.Transport, clock scanner.Clock, prof Profile) *Transport {
	if clock == nil {
		if c, ok := inner.(scanner.Clock); ok {
			clock = c
		} else {
			clock = scanner.RealClock{}
		}
	}
	return &Transport{inner: inner, clock: clock, prof: prof,
		rng: splitmix(prof.Seed ^ 0xfa17), metrics: &Metrics{}}
}

// Inner returns the wrapped transport.
func (t *Transport) Inner() scanner.Transport { return t.inner }

// Close implements io.Closer by delegation (a no-op when the inner transport
// has nothing to close), so per-shard wrapped transports are released by
// scanner.ScanParallel like their inner transports would be.
func (t *Transport) Close() error {
	if c, ok := t.inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Counters returns a snapshot of the injected-fault tallies.
func (t *Transport) Counters() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cnt
}

// LocalAddr implements scanner.Transport.
func (t *Transport) LocalAddr() netmodel.Addr { return t.inner.LocalAddr() }

// Now implements scanner.Clock by delegation.
func (t *Transport) Now() time.Time { return t.clock.Now() }

// Sleep implements scanner.Clock by delegation.
func (t *Transport) Sleep(d time.Duration) { t.clock.Sleep(d) }

// windowAt returns the first active scripted window at time now.
func (t *Transport) windowAt(now time.Time) (Window, bool) {
	for _, w := range t.prof.Windows {
		if w.active(now) {
			return w, true
		}
	}
	return Window{}, false
}

// roll draws a deterministic Bernoulli sample.
func (t *Transport) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	t.rng = splitmix(t.rng)
	return float64(t.rng>>11)/(1<<53) < p
}

// WritePacket implements scanner.Transport with injected send faults.
func (t *Transport) WritePacket(b []byte) error {
	now := t.clock.Now()
	t.mu.Lock()
	if w, ok := t.windowAt(now); ok {
		switch w.Kind {
		// Stall is deliberately absent: a wedged receive path lets every
		// send "succeed", which is exactly what makes it poisonous — the
		// scan completes with full coverage and zero replies.
		case Blackout, SendErrors, Flap:
			t.cnt.SendErrors++
			t.metrics.SendErrors.Inc()
			t.mu.Unlock()
			return &Err{Op: "send"}
		}
	}
	if t.roll(t.prof.SendErrorProb) {
		t.cnt.SendErrors++
		t.metrics.SendErrors.Inc()
		t.mu.Unlock()
		return &Err{Op: "send"}
	}
	if t.roll(t.prof.DropProb) {
		t.cnt.Drops++
		t.metrics.Drops.Inc()
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	return t.inner.WritePacket(b)
}

// ReadPacket implements scanner.Transport with injected receive faults.
func (t *Transport) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	now := t.clock.Now()
	t.mu.Lock()
	if w, ok := t.windowAt(now); ok {
		switch w.Kind {
		case Blackout, Stall, Flap:
			// Silence: consume the wait so virtual clocks keep moving and
			// real callers don't spin.
			t.cnt.Blackouts++
			t.metrics.Blackouts.Inc()
			t.mu.Unlock()
			if wait > 0 {
				t.clock.Sleep(wait)
			}
			return nil, time.Time{}, scanner.ErrTimeout
		case RecvErrors:
			t.cnt.RecvErrors++
			t.metrics.RecvErrors.Inc()
			t.mu.Unlock()
			return nil, time.Time{}, &Err{Op: "recv"}
		}
	}
	t.mu.Unlock()
	pkt, at, err := t.inner.ReadPacket(wait)
	if err == nil && len(pkt) > 0 {
		t.mu.Lock()
		trunc := t.roll(t.prof.TruncateProb)
		if trunc {
			t.cnt.Truncated++
			t.metrics.Truncated.Inc()
		}
		t.mu.Unlock()
		if trunc {
			pkt = pkt[:len(pkt)/2]
		}
	}
	return pkt, at, err
}

// batchInner returns the batched view of the inner transport (built once).
func (t *Transport) batchInner() scanner.BatchTransport {
	t.batchOnce.Do(func() { t.batch = scanner.AsBatch(t.inner) })
	return t.batch
}

// WriteBatch implements scanner.BatchTransport by injecting faults per
// packet: the RNG roll order (send-error roll, then drop roll, per packet in
// batch order) is identical to packet-at-a-time operation, so a seeded fault
// profile reproduces exactly regardless of batching.
func (t *Transport) WriteBatch(pkts [][]byte) (int, error) {
	for i, b := range pkts {
		if err := t.WritePacket(b); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// ReadBatch implements scanner.BatchTransport. Scripted windows gate the
// whole call — during a blackout or stall nothing is delivered and the wait
// is consumed, matching the serial path — while reply truncation rolls once
// per delivered packet in delivery order, keeping the RNG stream aligned
// with packet-at-a-time reads.
func (t *Transport) ReadBatch(pkts [][]byte, ats []time.Time, wait time.Duration) (int, error) {
	now := t.clock.Now()
	t.mu.Lock()
	if w, ok := t.windowAt(now); ok {
		switch w.Kind {
		case Blackout, Stall, Flap:
			t.cnt.Blackouts++
			t.metrics.Blackouts.Inc()
			t.mu.Unlock()
			if wait > 0 {
				t.clock.Sleep(wait)
			}
			return 0, nil
		case RecvErrors:
			t.cnt.RecvErrors++
			t.metrics.RecvErrors.Inc()
			t.mu.Unlock()
			return 0, &Err{Op: "recv"}
		}
	}
	t.mu.Unlock()
	n, err := t.batchInner().ReadBatch(pkts, ats, wait)
	if n > 0 {
		t.mu.Lock()
		for i := 0; i < n; i++ {
			if len(pkts[i]) > 0 && t.roll(t.prof.TruncateProb) {
				t.cnt.Truncated++
				t.metrics.Truncated.Inc()
				pkts[i] = pkts[i][:len(pkts[i])/2]
			}
		}
		t.mu.Unlock()
	}
	return n, err
}

// ParseProfile parses a comma-separated fault specification. Offsets and
// durations are Go durations relative to base (the campaign start):
//
//	seed=7                  RNG seed for the probabilistic faults
//	senderr=0.01            transient send-error probability
//	drop=0.005              silent probe-drop probability
//	trunc=0.01              reply-truncation probability
//	blackout=24h+8h         vantage offline from base+24h for 8h
//	stall=100h+2h           reads wedge from base+100h for 2h
//	recverr=30m+10m         receive path errors from base+30m for 10m
//	senderrwin=1h+30m       sends fail from base+1h for 30m
//	flap=48h+12h/30m        connectivity flaps for 12h with 30m half-cycle
//
// Example: "seed=7,senderr=0.01,blackout=60h+4h".
//
// Windows of the same kind must not overlap (the first active window wins
// at runtime, so an overlap silently shadows part of the spec); overlapping
// specs are rejected.
func ParseProfile(spec string, base time.Time) (Profile, error) {
	p := Profile{Seed: 1}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	kinds := map[string]Kind{
		"blackout": Blackout, "stall": Stall, "recverr": RecvErrors,
		"senderrwin": SendErrors, "flap": Flap,
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return p, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("faults: bad seed %q", val)
			}
			p.Seed = n
		case "senderr", "drop", "trunc":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("faults: bad probability %q for %s", val, key)
			}
			switch key {
			case "senderr":
				p.SendErrorProb = f
			case "drop":
				p.DropProb = f
			case "trunc":
				p.TruncateProb = f
			}
		default:
			kind, ok := kinds[key]
			if !ok {
				return p, fmt.Errorf("faults: unknown fault %q", key)
			}
			w, err := parseWindow(val, base, kind)
			if err != nil {
				return p, err
			}
			p.Windows = append(p.Windows, w)
		}
	}
	sort.SliceStable(p.Windows, func(i, j int) bool { return p.Windows[i].From.Before(p.Windows[j].From) })
	// Overlapping windows of the same kind are almost always a typo in the
	// spec (the first active window wins at runtime, silently shadowing the
	// second), so reject them outright.
	for i := 1; i < len(p.Windows); i++ {
		for j := 0; j < i; j++ {
			a, b := p.Windows[j], p.Windows[i]
			if a.Kind == b.Kind && b.From.Before(a.To) && a.From.Before(b.To) {
				return p, fmt.Errorf("faults: overlapping %s windows [%s, %s) and [%s, %s)",
					a.Kind, a.From.Sub(base), a.To.Sub(base), b.From.Sub(base), b.To.Sub(base))
			}
		}
	}
	return p, nil
}

// parseWindow parses "offset+duration" or "offset+duration/period".
func parseWindow(val string, base time.Time, kind Kind) (Window, error) {
	var period time.Duration
	if kind == Flap {
		body, per, ok := strings.Cut(val, "/")
		if !ok {
			return Window{}, fmt.Errorf("faults: flap window %q needs offset+dur/period", val)
		}
		d, err := time.ParseDuration(strings.TrimSpace(per))
		if err != nil || d <= 0 {
			return Window{}, fmt.Errorf("faults: bad flap period %q", per)
		}
		period, val = d, body
	}
	offStr, durStr, ok := strings.Cut(val, "+")
	if !ok {
		return Window{}, fmt.Errorf("faults: window %q is not offset+duration", val)
	}
	off, err := time.ParseDuration(strings.TrimSpace(offStr))
	if err != nil {
		return Window{}, fmt.Errorf("faults: bad window offset %q", offStr)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(durStr))
	if err != nil || dur <= 0 {
		return Window{}, fmt.Errorf("faults: bad window duration %q", durStr)
	}
	from := base.Add(off)
	return Window{From: from, To: from.Add(dur), Kind: kind, Period: period}, nil
}

// splitmix is SplitMix64 for deterministic fault decisions.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
