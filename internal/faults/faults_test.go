package faults_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"countrymon/internal/faults"
	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/simnet"
)

func allUp(rtt time.Duration) simnet.Responder {
	return simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		return simnet.Reply{Kind: simnet.EchoReply, RTT: rtt}
	})
}

func scan(t *testing.T, tr scanner.Transport, clock scanner.Clock, cidr string) *scanner.RoundData {
	t.Helper()
	ts, err := scanner.NewTargetSet([]netmodel.Prefix{netmodel.MustParsePrefix(cidr)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := scanner.New(tr, scanner.Config{
		Rate: 0, Seed: 1, Epoch: 1, Clock: clock, Cooldown: 500 * time.Millisecond,
	})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

func TestInjectedErrorsAreTransient(t *testing.T) {
	if !scanner.IsTransient(&faults.Err{Op: "send"}) {
		t.Error("injected faults must classify as transient")
	}
	if scanner.IsTransient(errors.New("plain")) {
		t.Error("plain errors must not classify as transient")
	}
}

func TestBlackoutWindowSilencesRound(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), allUp(10*time.Millisecond), start)
	// Blackout covering the whole scan.
	tr := faults.NewTransport(net, nil, faults.Profile{
		Windows: []faults.Window{{From: start, To: start.Add(time.Hour), Kind: faults.Blackout}},
	})
	rd := scan(t, tr, tr, "10.0.0.0/24")
	if !rd.Partial {
		t.Error("blacked-out round must be partial")
	}
	if rd.Stats.Valid != 0 {
		t.Errorf("Valid = %d during blackout", rd.Stats.Valid)
	}
	if cov := rd.Coverage(); cov > 0.2 {
		t.Errorf("coverage %v during a full blackout (error budget should abort early)", cov)
	}
	if tr.Counters().SendErrors == 0 {
		t.Error("no injected send errors counted")
	}
}

func TestBlackoutEndsAndServiceRecovers(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), allUp(10*time.Millisecond), start)
	// Blackout already over by the time the scan runs.
	tr := faults.NewTransport(net, nil, faults.Profile{
		Windows: []faults.Window{{From: start.Add(-2 * time.Hour), To: start.Add(-time.Hour), Kind: faults.Blackout}},
	})
	rd := scan(t, tr, tr, "10.0.0.0/24")
	if rd.Partial || rd.Stats.Valid != 256 {
		t.Errorf("recovered transport: partial=%v valid=%d", rd.Partial, rd.Stats.Valid)
	}
}

func TestProbabilisticSendErrorsRecoveredByRetry(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), allUp(10*time.Millisecond), start)
	tr := faults.NewTransport(net, nil, faults.Profile{Seed: 3, SendErrorProb: 0.05})
	rd := scan(t, tr, tr, "10.1.0.0/23")
	// 512 sends at 5% error: the scanner's retries should recover them all.
	if rd.Stats.Valid != 512 {
		t.Errorf("Valid = %d, want 512 (retries should recover 5%% noise)", rd.Stats.Valid)
	}
	if rd.Stats.Retries == 0 {
		t.Error("no retries despite injected send errors")
	}
	if rd.Partial {
		t.Error("recovered round must not be partial")
	}
	c := tr.Counters()
	if c.SendErrors < 5 || c.SendErrors > 100 {
		t.Errorf("injected send errors = %d, want ≈26", c.SendErrors)
	}
}

func TestTruncatedRepliesRejectedNotCrashed(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), allUp(10*time.Millisecond), start)
	tr := faults.NewTransport(net, nil, faults.Profile{Seed: 4, TruncateProb: 0.5})
	rd := scan(t, tr, tr, "10.2.0.0/24")
	c := tr.Counters()
	if c.Truncated == 0 {
		t.Fatal("no replies truncated")
	}
	if rd.Stats.Valid+rd.Stats.Invalid != 256 {
		t.Errorf("valid %d + invalid %d != 256", rd.Stats.Valid, rd.Stats.Invalid)
	}
	if rd.Stats.Invalid == 0 {
		t.Error("truncated replies must be counted invalid")
	}
}

func TestRecvErrorWindowKillsReceivePath(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), allUp(10*time.Millisecond), start)
	tr := faults.NewTransport(net, nil, faults.Profile{
		Windows: []faults.Window{{From: start, To: start.Add(time.Hour), Kind: faults.RecvErrors}},
	})
	rd := scan(t, tr, tr, "10.3.0.0/24")
	if !rd.RecvDead {
		t.Error("persistent receive errors must flag RecvDead")
	}
	if rd.Stats.RecvErrors == 0 {
		t.Error("receive errors not surfaced in stats")
	}
}

func TestFlapAlternates(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	w := faults.Window{From: start, To: start.Add(time.Hour), Kind: faults.Flap, Period: 10 * time.Minute}
	p := faults.Profile{Windows: []faults.Window{w}}
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), allUp(time.Millisecond), start.Add(5*time.Minute))
	tr := faults.NewTransport(net, nil, p)
	if err := tr.WritePacket(probe(t, net)); err == nil {
		t.Error("flap on-phase should fail sends")
	}
	net2 := simnet.New(netmodel.MustParseAddr("198.51.100.1"), allUp(time.Millisecond), start.Add(15*time.Minute))
	tr2 := faults.NewTransport(net2, nil, p)
	if err := tr2.WritePacket(probe(t, net2)); err != nil {
		t.Errorf("flap off-phase should pass sends: %v", err)
	}
}

// probe builds one valid outgoing datagram for the transport under test.
func probe(t *testing.T, inner scanner.Transport) []byte {
	t.Helper()
	v := scanner.NewValidator(1, 1, time.Unix(0, 0))
	body := v.EncodeProbe(netmodel.MustParseAddr("10.0.0.1"), time.Unix(0, 0))
	return icmp.MarshalIPv4(icmp.IPv4Header{
		TTL: 64, Protocol: icmp.ProtoICMP,
		Src: inner.LocalAddr(), Dst: netmodel.MustParseAddr("10.0.0.1"),
	}, body)
}

func TestParseProfile(t *testing.T) {
	base := time.Date(2022, 3, 2, 22, 0, 0, 0, time.UTC)
	p, err := faults.ParseProfile("seed=9, senderr=0.01, drop=0.005, trunc=0.02, blackout=24h+8h, flap=48h+12h/30m", base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.SendErrorProb != 0.01 || p.DropProb != 0.005 || p.TruncateProb != 0.02 {
		t.Errorf("scalar fields wrong: %+v", p)
	}
	if len(p.Windows) != 2 {
		t.Fatalf("windows = %d", len(p.Windows))
	}
	b := p.Windows[0]
	if b.Kind != faults.Blackout || !b.From.Equal(base.Add(24*time.Hour)) || !b.To.Equal(base.Add(32*time.Hour)) {
		t.Errorf("blackout window wrong: %+v", b)
	}
	f := p.Windows[1]
	if f.Kind != faults.Flap || f.Period != 30*time.Minute {
		t.Errorf("flap window wrong: %+v", f)
	}

	if _, err := faults.ParseProfile("bogus=1", base); err == nil {
		t.Error("unknown clause accepted")
	}
	if _, err := faults.ParseProfile("senderr=2", base); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := faults.ParseProfile("blackout=oops", base); err == nil {
		t.Error("bad window accepted")
	}
	if _, err := faults.ParseProfile("flap=1h+2h", base); err == nil {
		t.Error("flap without period accepted")
	}
	if p, err := faults.ParseProfile("", base); err != nil || len(p.Windows) != 0 {
		t.Error("empty spec must parse to an empty profile")
	}
}

func TestParseProfileRejections(t *testing.T) {
	base := time.Date(2022, 3, 2, 22, 0, 0, 0, time.UTC)
	cases := []struct {
		name, spec, wantErr string
	}{
		{"clause without equals", "blackout", "not key=value"},
		{"bad seed", "seed=abc", "bad seed"},
		{"negative send probability", "senderr=-0.1", `bad probability "-0.1" for senderr`},
		{"negative drop probability", "drop=-1", `bad probability "-1" for drop`},
		{"truncation probability above one", "trunc=1.5", `bad probability "1.5" for trunc`},
		{"unparseable probability", "drop=lots", `bad probability "lots" for drop`},
		{"unknown fault kind", "meltdown=1h+2h", `unknown fault "meltdown"`},
		{"window missing duration", "blackout=1h", "not offset+duration"},
		{"window bad offset", "blackout=soon+2h", "bad window offset"},
		{"window bad duration", "blackout=1h+later", "bad window duration"},
		{"window zero duration", "blackout=1h+0s", "bad window duration"},
		{"window negative duration", "stall=1h+-30m", "bad window duration"},
		{"flap missing period", "flap=1h+2h", "needs offset+dur/period"},
		{"flap bad period", "flap=1h+2h/often", "bad flap period"},
		{"overlapping same-kind windows", "blackout=1h+4h,blackout=3h+2h", "overlapping blackout windows"},
		{"identical windows overlap", "stall=2h+1h,stall=2h+1h", "overlapping stall windows"},
		{"containment is overlap", "recverr=1h+10h,recverr=2h+1h", "overlapping recverr windows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := faults.ParseProfile(tc.spec, base)
			if err == nil {
				t.Fatalf("ParseProfile(%q) accepted, want error containing %q", tc.spec, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseProfile(%q) error %q, want substring %q", tc.spec, err, tc.wantErr)
			}
		})
	}

	// Overlap is only rejected within a kind: adjacent and cross-kind
	// windows coexist.
	for _, ok := range []string{
		"blackout=1h+2h,blackout=3h+2h", // back-to-back: [1h,3h) then [3h,5h)
		"blackout=1h+4h,stall=2h+1h",    // different kinds may overlap
	} {
		if _, err := faults.ParseProfile(ok, base); err != nil {
			t.Errorf("ParseProfile(%q) rejected: %v", ok, err)
		}
	}
}
