package faults

import "countrymon/internal/obs"

// Metrics mirrors Counters onto a live registry as
// faults_injected_total{kind}, so an operator watching /metrics can tell
// injected chaos apart from real network failure. Build with NewMetrics; on
// a nil registry every instrument is nil and inert.
type Metrics struct {
	SendErrors *obs.Counter
	Drops      *obs.Counter
	RecvErrors *obs.Counter
	Truncated  *obs.Counter
	Blackouts  *obs.Counter
}

// NewMetrics registers (idempotently) the fault instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	v := reg.CounterVec("faults_injected_total", "Injected faults by kind.", "kind")
	return &Metrics{
		SendErrors: v.With("senderr"),
		Drops:      v.With("drop"),
		RecvErrors: v.With("recverr"),
		Truncated:  v.With("truncated"),
		Blackouts:  v.With("blackout"),
	}
}

// Observe attaches m to the transport; every subsequent injected fault
// increments both the transport's Counters and m. Call before the transport
// is in use (it is not synchronized with in-flight I/O). A nil m detaches.
func (t *Transport) Observe(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	t.metrics = m
}
