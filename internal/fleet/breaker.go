package fleet

// BreakerState is a vantage circuit breaker's position.
type BreakerState uint8

const (
	// Closed: the vantage is healthy and receives primary shards.
	Closed BreakerState = iota
	// Open: the vantage tripped and is quarantined — no work until its
	// quarantine expires.
	Open
	// HalfOpen: the quarantine expired; the vantage gets a single trial
	// shard. Success closes the breaker, failure reopens it with a doubled
	// quarantine, so a flapping vantage is quarantined exponentially longer
	// each time it relapses.
	HalfOpen
)

var stateNames = [...]string{"closed", "open", "half_open"}

func (s BreakerState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// BreakerConfig tunes the per-vantage circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive heartbeat failures trip the
	// breaker (default 3).
	Threshold int
	// OpenRounds is the initial quarantine length in rounds (default 2);
	// every failed half-open trial doubles it, up to MaxOpenRounds
	// (default 16).
	OpenRounds    int
	MaxOpenRounds int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.OpenRounds <= 0 {
		c.OpenRounds = 2
	}
	if c.MaxOpenRounds <= 0 {
		c.MaxOpenRounds = 16
	}
	return c
}

// breaker is the closed → open → half-open state machine guarding one
// vantage. All transitions happen on the supervisor goroutine between scan
// waves, in fixed vantage order, so fleet rounds stay deterministic.
type breaker struct {
	cfg         BreakerConfig
	state       BreakerState
	consecFails int
	quarantine  int // current quarantine length (rounds), doubles on relapse
	trialAt     int // first round at which a half-open trial may run
}

func newBreaker(cfg BreakerConfig) breaker {
	cfg = cfg.withDefaults()
	return breaker{cfg: cfg, quarantine: cfg.OpenRounds}
}

// beginRound advances open → half-open when the quarantine has expired and
// returns the state the vantage enters the round with.
func (b *breaker) beginRound(round int) BreakerState {
	if b.state == Open && round >= b.trialAt {
		b.state = HalfOpen
	}
	return b.state
}

// success records a healthy heartbeat. A half-open trial success closes the
// breaker and resets the quarantine backoff. It reports whether the state
// changed.
func (b *breaker) success() bool {
	b.consecFails = 0
	if b.state == HalfOpen {
		b.state = Closed
		b.quarantine = b.cfg.OpenRounds
		return true
	}
	return false
}

// failure records a missed heartbeat during round. A closed breaker trips
// after Threshold consecutive failures; a half-open trial failure reopens
// immediately with a doubled quarantine. It reports whether the breaker
// (re)opened.
func (b *breaker) failure(round int) bool {
	b.consecFails++
	switch b.state {
	case HalfOpen:
		b.quarantine *= 2
		if b.quarantine > b.cfg.MaxOpenRounds {
			b.quarantine = b.cfg.MaxOpenRounds
		}
		b.state = Open
		b.trialAt = round + 1 + b.quarantine
		return true
	case Closed:
		if b.consecFails >= b.cfg.Threshold {
			b.state = Open
			b.trialAt = round + 1 + b.quarantine
			return true
		}
	}
	return false
}
