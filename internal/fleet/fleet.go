// Package fleet supervises a multi-vantage scanner fleet: N vantages scan a
// round's address-block shards concurrently, a per-vantage circuit breaker
// (closed → open → half-open, with exponential-backoff quarantine)
// translates missed heartbeats into quarantine, failed shards are
// deterministically reassigned ("stolen") to healthy vantages within the
// same round, and suspect block transitions are corroborated by re-probing
// from independent vantages before k-of-n fusion (internal/signals) lets a
// block go down.
//
// The point is the distinction the paper's operators had to make by hand:
// "our vantage is sick" (a self-outage, reported on the obs bus and never
// written into the measurement) versus "the target is dark" (a corroborated
// observation). A single stalled or blacked-out vantage therefore cannot
// fabricate a country-wide outage.
//
// One physical fleet can carry several campaigns (one per monitored
// country): vantage identity — breakers, health EWMAs, quarantine — is
// shared, while targets, rate budget, quorum, belief and the accounting of
// steals/degraded rounds/self-outages are per campaign (Join). A vantage
// blackout observed during country A's round quarantines the vantage for
// every campaign, and each campaign's report attributes only the steals and
// degraded rounds of its own rounds, so two monitors sharing the supervisor
// never double-count.
//
// Determinism: every scan runs over a fresh per-(vantage, round) transport
// from the vantage's factory, results are slotted by shard index, and all
// state mutation — breaker transitions, steals, fusion, belief updates —
// happens on the supervisor goroutine in fixed (shard, vantage) order
// between scan waves. Fleet round output is byte-identical regardless of
// COUNTRYMON_WORKERS.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/par"
	"countrymon/internal/scanner"
	"countrymon/internal/signals"
)

// TransportFunc builds a fresh transport (and clock) for one scan in round
// `round`, scheduled at `at`. It is called once per assigned shard and once
// per corroboration re-probe, possibly from concurrent goroutines, so it
// must be safe for concurrent use and must return independent transports.
// Transports implementing io.Closer are closed when their scan finishes.
type TransportFunc func(round int, at time.Time) (scanner.Transport, scanner.Clock, error)

// Spec describes one vantage.
type Spec struct {
	// Name identifies the vantage in events, metrics and reports.
	Name string
	// Transport is the vantage's default transport factory. Campaigns may
	// override it per vantage (CampaignConfig.Transports) when the same
	// physical vantage reaches different measurement worlds per country.
	Transport TransportFunc
}

// Config configures a Supervisor.
type Config struct {
	// Targets is the target set of the default campaign. Optional with
	// NewShared (campaigns then bring their own targets via Join); required
	// by New.
	Targets *scanner.TargetSet
	// Scan is the base per-scan configuration (rate, seed, batching,
	// metrics, events); Shard/Shards/Epoch/Clock are overridden per scan,
	// and Rate is scaled by each campaign's RateShare so the per-vantage
	// budget holds across campaigns.
	Scan scanner.Config
	// Shards is how many shards a round's primary scan splits into
	// (default: the number of vantages).
	Shards int
	// Quorum is k of the k-of-n corroboration: the coverage-weighted dark
	// votes needed before a suspect block transitions to down (default
	// min(2, vantages); the effective quorum never exceeds the vantages
	// that produced a verdict).
	Quorum int
	// MinShardCoverage is the heartbeat gate: a shard scan below this
	// coverage counts as a missed heartbeat and is rescanned elsewhere
	// (default 0.8).
	MinShardCoverage float64
	// Breaker tunes the per-vantage circuit breaker.
	Breaker BreakerConfig
	// HealthAlpha is the EWMA weight of the newest heartbeat in the
	// per-vantage health score (default 0.3).
	HealthAlpha float64

	// Registry and Bus attach the fleet's instruments and event stream.
	Registry *obs.Registry
	Bus      *obs.Bus
}

// RoundReport describes how one fleet round went.
type RoundReport struct {
	Round     int
	Healthy   int // vantages that entered the round closed
	Eligible  int // closed + half-open vantages
	Steals    int // shards reassigned mid-round
	Uncovered int // shards no vantage could scan
	// SelfOutage: no shard produced usable data — the fleet, not the
	// target, was dark. The round must be recorded missing.
	SelfOutage bool
	// Degraded: the round ran below quorum, left shards uncovered, or was
	// a self-outage.
	Degraded bool
	// Fusion tallies over this round's suspect blocks.
	Suspects, FusedAlive, FusedDown, FusedHeld int
}

// CampaignReport aggregates one campaign's rounds scanned so far.
type CampaignReport struct {
	// Quarantined lists vantages whose breaker this campaign observed open
	// (tripped during one of its rounds, or already open when one of its
	// rounds began), each once, in observation order.
	Quarantined                                []string
	DegradedRounds                             int
	SelfOutages                                int
	Steals                                     int
	Suspects, FusedAlive, FusedDown, FusedHeld int
}

// Degraded reports whether the campaign completed degraded: a vantage was
// quarantined or at least one round ran below quorum / with coverage holes.
func (r CampaignReport) Degraded() bool {
	return len(r.Quarantined) > 0 || r.DegradedRounds > 0 || r.SelfOutages > 0
}

// vantage is one fleet member's supervisor-side state, shared by every
// campaign on the fleet.
type vantage struct {
	spec     Spec
	br       breaker
	health   float64 // heartbeat EWMA in [0, 1]
	healthG  *obs.Gauge
	everOpen bool
}

// Supervisor runs the fleet. It is not safe for concurrent use; drive it
// (and every campaign joined to it) from one goroutine — the Monitor does,
// and the campaign coordinator interleaves countries deterministically on
// one goroutine.
type Supervisor struct {
	cfg      Config
	vantages []*vantage
	m        *metrics
	fuseM    *signals.FusionMetrics
	bus      *obs.Bus

	campaigns []*Campaign
	shareUsed float64
	def       *Campaign // back-compat campaign built from Config.Targets
}

// Campaign is one country's (or target set's) view of a shared fleet: its
// own targets, rate budget, quorum, fused belief and accounting, over the
// supervisor's shared vantages and breakers.
type Campaign struct {
	s          *Supervisor
	name       string
	targets    *scanner.TargetSet
	scan       scanner.Config // base Scan with Rate scaled by RateShare
	shards     int
	quorum     int
	minCov     float64
	transports []TransportFunc // per vantage index; nil entry = spec default

	// lastResp is the fused per-block belief of the most recent usable
	// round, the fallback prev when ScanRound's caller passes none.
	lastResp []int
	haveLast bool

	rep      CampaignReport
	openSeen []bool // per vantage: already listed in rep.Quarantined

	stealsC      *obs.Counter
	degradedC    *obs.Counter
	selfOutagesC *obs.Counter
}

// CampaignConfig configures one campaign joined to a shared supervisor.
type CampaignConfig struct {
	// Name labels the campaign in metrics, events and reports — the country
	// code in a multi-country fleet. Required and unique per supervisor.
	Name string
	// Targets is the campaign's target set. Required.
	Targets *scanner.TargetSet
	// RateShare is this campaign's share of the fleet's global scan-rate
	// budget, in (0, 1]; shares across campaigns may not exceed 1, which is
	// what enforces the per-vantage budget globally. 0 defaults to 1 (the
	// whole budget — a solo campaign).
	RateShare float64
	// Quorum, Shards and MinShardCoverage default to the supervisor's.
	Quorum           int
	Shards           int
	MinShardCoverage float64
	// Seed overrides the base scan seed when non-zero, so per-country scans
	// stay reproducible against their solo equivalents.
	Seed uint64
	// Transports overrides the transport factory of named vantages for this
	// campaign only (the same physical vantage observing another country's
	// network). Unknown vantage names are an error.
	Transports map[string]TransportFunc
}

// New validates the configuration and builds a supervisor with one default
// campaign over cfg.Targets (the single-country case).
func New(specs []Spec, cfg Config) (*Supervisor, error) {
	if cfg.Targets == nil {
		return nil, errors.New("fleet: Targets required")
	}
	s, err := NewShared(specs, cfg)
	if err != nil {
		return nil, err
	}
	def, err := s.Join(CampaignConfig{
		Name:    "default",
		Targets: cfg.Targets,
		Seed:    cfg.Scan.Seed,
	})
	if err != nil {
		return nil, err
	}
	s.def = def
	return s, nil
}

// NewShared builds a supervisor with no campaign attached: a shared fleet
// that countries join via Join. cfg.Targets is ignored.
func NewShared(specs []Spec, cfg Config) (*Supervisor, error) {
	if len(specs) == 0 {
		return nil, errors.New("fleet: at least one vantage required")
	}
	seen := make(map[string]bool, len(specs))
	for i := range specs {
		if specs[i].Transport == nil {
			return nil, fmt.Errorf("fleet: vantage %d has no transport factory", i)
		}
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("v%d", i)
		}
		if seen[specs[i].Name] {
			return nil, fmt.Errorf("fleet: duplicate vantage name %q", specs[i].Name)
		}
		seen[specs[i].Name] = true
	}
	if cfg.Shards <= 0 {
		cfg.Shards = len(specs)
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 2
		if len(specs) < 2 {
			cfg.Quorum = 1
		}
	}
	if cfg.MinShardCoverage <= 0 {
		cfg.MinShardCoverage = 0.8
	}
	if cfg.HealthAlpha <= 0 || cfg.HealthAlpha > 1 {
		cfg.HealthAlpha = 0.3
	}
	s := &Supervisor{
		cfg:   cfg,
		m:     newMetrics(cfg.Registry),
		fuseM: signals.NewFusionMetrics(cfg.Registry),
		bus:   cfg.Bus,
	}
	for _, sp := range specs {
		v := &vantage{spec: sp, br: newBreaker(cfg.Breaker), health: 1,
			healthG: s.m.health.With(sp.Name)}
		v.healthG.Set(1000)
		s.vantages = append(s.vantages, v)
	}
	return s, nil
}

// Join attaches a campaign to the fleet. Campaigns share the vantages and
// their breakers but keep independent targets, rate budgets, beliefs and
// reports. Join all campaigns before scanning; the set is fixed thereafter.
func (s *Supervisor) Join(cfg CampaignConfig) (*Campaign, error) {
	if cfg.Name == "" {
		return nil, errors.New("fleet: campaign name required")
	}
	for _, c := range s.campaigns {
		if c.name == cfg.Name {
			return nil, fmt.Errorf("fleet: duplicate campaign %q", cfg.Name)
		}
	}
	if cfg.Targets == nil {
		return nil, fmt.Errorf("fleet: campaign %q: Targets required", cfg.Name)
	}
	if cfg.RateShare == 0 {
		cfg.RateShare = 1
	}
	if cfg.RateShare < 0 || cfg.RateShare > 1 {
		return nil, fmt.Errorf("fleet: campaign %q: RateShare %v outside (0, 1]", cfg.Name, cfg.RateShare)
	}
	if s.shareUsed+cfg.RateShare > 1+1e-9 {
		return nil, fmt.Errorf("fleet: campaign %q: rate shares exceed the fleet budget (%.3f + %.3f > 1)",
			cfg.Name, s.shareUsed, cfg.RateShare)
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = s.cfg.Quorum
	}
	if cfg.Shards <= 0 {
		cfg.Shards = s.cfg.Shards
	}
	if cfg.MinShardCoverage <= 0 {
		cfg.MinShardCoverage = s.cfg.MinShardCoverage
	}
	scan := s.cfg.Scan
	if scan.Rate > 0 {
		scan.Rate = int(float64(scan.Rate)*cfg.RateShare + 0.5)
	}
	if cfg.Seed != 0 {
		scan.Seed = cfg.Seed
	}
	c := &Campaign{
		s:          s,
		name:       cfg.Name,
		targets:    cfg.Targets,
		scan:       scan,
		shards:     cfg.Shards,
		quorum:     cfg.Quorum,
		minCov:     cfg.MinShardCoverage,
		transports: make([]TransportFunc, len(s.vantages)),
		lastResp:   make([]int, cfg.Targets.NumBlocks()),
		openSeen:   make([]bool, len(s.vantages)),

		stealsC:      s.m.steals.With(cfg.Name),
		degradedC:    s.m.degraded.With(cfg.Name),
		selfOutagesC: s.m.selfOutages.With(cfg.Name),
	}
	for name, fn := range cfg.Transports {
		vi := -1
		for i, v := range s.vantages {
			if v.spec.Name == name {
				vi = i
				break
			}
		}
		if vi < 0 {
			return nil, fmt.Errorf("fleet: campaign %q: unknown vantage %q", cfg.Name, name)
		}
		c.transports[vi] = fn
	}
	s.shareUsed += cfg.RateShare
	s.campaigns = append(s.campaigns, c)
	return c, nil
}

// Vantages returns the vantage names in fleet order.
func (s *Supervisor) Vantages() []string {
	names := make([]string, len(s.vantages))
	for i, v := range s.vantages {
		names[i] = v.spec.Name
	}
	return names
}

// Default returns the campaign New built from Config.Targets (nil when the
// supervisor was built with NewShared).
func (s *Supervisor) Default() *Campaign { return s.def }

// Campaigns returns the joined campaigns in join order.
func (s *Supervisor) Campaigns() []*Campaign {
	return append([]*Campaign(nil), s.campaigns...)
}

// Report returns the fleet-level aggregation so far: per-campaign tallies
// summed (each round's steals and degradations are attributed to exactly
// one campaign, so the sum counts each once), and every vantage whose
// breaker ever opened listed once, in vantage order.
func (s *Supervisor) Report() CampaignReport {
	var out CampaignReport
	for _, v := range s.vantages {
		if v.everOpen {
			out.Quarantined = append(out.Quarantined, v.spec.Name)
		}
	}
	for _, c := range s.campaigns {
		out.DegradedRounds += c.rep.DegradedRounds
		out.SelfOutages += c.rep.SelfOutages
		out.Steals += c.rep.Steals
		out.Suspects += c.rep.Suspects
		out.FusedAlive += c.rep.FusedAlive
		out.FusedDown += c.rep.FusedDown
		out.FusedHeld += c.rep.FusedHeld
	}
	return out
}

// State returns a vantage's current breaker state (by fleet order index).
func (s *Supervisor) State(i int) BreakerState { return s.vantages[i].br.state }

// ScanRound scans the default campaign's round (see Campaign.ScanRound).
func (s *Supervisor) ScanRound(ctx context.Context, round int, at time.Time, prev PrevFunc) (*scanner.RoundData, *RoundReport, error) {
	if s.def == nil {
		return nil, nil, errors.New("fleet: no default campaign (built with NewShared); use Join")
	}
	return s.def.ScanRound(ctx, round, at, prev)
}

// Name returns the campaign's label.
func (c *Campaign) Name() string { return c.name }

// Report returns this campaign's aggregation so far.
func (c *Campaign) Report() CampaignReport {
	out := c.rep
	out.Quarantined = append([]string(nil), c.rep.Quarantined...)
	return out
}

// scanJob is one (shard, vantage) scan assignment within a round.
type scanJob struct {
	shard, vi int
}

type scanOut struct {
	rd  *scanner.RoundData
	err error
}

// PrevFunc supplies the last believed response count of a block (by target
// block index) for suspect detection; ok=false means no belief yet.
type PrevFunc func(blockIdx int) (resp int, ok bool)

// ScanRound scans round `round` (scheduled at `at`) across the fleet:
// assignment, failover, merge, corroboration and fusion. prev supplies the
// previous per-block belief (nil uses the campaign's internal belief).
//
// The returned RoundData is the merged, fusion-corrected round; it is nil
// only on a self-outage (rep.SelfOutage) or a hard error. Shards no vantage
// could scan leave a coverage hole (RoundData.Partial), which the caller
// gates like any salvaged round.
func (c *Campaign) ScanRound(ctx context.Context, round int, at time.Time, prev PrevFunc) (*scanner.RoundData, *RoundReport, error) {
	s := c.s
	rep := &RoundReport{Round: round}
	n := len(s.vantages)

	// Quarantine expiry: open breakers whose time is up go half-open. A
	// breaker another campaign's round already tripped is observed (and
	// attributed) here too.
	states := make([]BreakerState, n)
	for i, v := range s.vantages {
		before := v.br.state
		states[i] = v.br.beginRound(round)
		if states[i] != before {
			c.transition(v, i, round, states[i])
		}
		switch states[i] {
		case Closed:
			rep.Healthy++
			rep.Eligible++
		case Open:
			c.noteOpen(i)
		case HalfOpen:
			rep.Eligible++
		}
	}

	shards := c.shards
	jobs, unassigned := c.assign(states, round, shards)
	rep.Uncovered = unassigned

	// Scan waves with same-round failover: failed shards are stolen by the
	// next healthy vantage that has not tried them yet.
	results := make([]*scanner.RoundData, shards)
	owners := make([]int, shards)
	tried := make([][]bool, shards)
	for i := range tried {
		tried[i] = make([]bool, n)
	}
	for _, j := range jobs {
		tried[j.shard][j.vi] = true
	}
	okScans := make([]int, n)   // successful shard scans per vantage this round
	failScans := make([]int, n) // missed heartbeats per vantage this round
	for len(jobs) > 0 {
		outs := make([]scanOut, len(jobs))
		par.ForEach(len(jobs), func(i int) {
			outs[i] = c.scanShard(ctx, jobs[i].vi, jobs[i].shard, shards, round, at)
		})
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		var next []scanJob
		for i, j := range jobs { // jobs are in shard order: deterministic
			out := outs[i]
			v := s.vantages[j.vi]
			if out.err == nil && out.rd != nil && !out.rd.RecvDead &&
				out.rd.Coverage() >= c.minCov {
				results[j.shard] = out.rd
				owners[j.shard] = j.vi
				okScans[j.vi]++
				continue
			}
			failScans[j.vi]++
			if v.br.failure(round) {
				c.transition(v, j.vi, round, Open)
			}
			s.emit("shard_failed", func() map[string]any {
				f := map[string]any{"round": round, "shard": j.shard,
					"vantage": v.spec.Name, "campaign": c.name}
				if out.err != nil {
					f["error"] = out.err.Error()
				}
				return f
			})
			thief := s.thief(j, tried[j.shard])
			if thief < 0 {
				rep.Uncovered++
				continue
			}
			tried[j.shard][thief] = true
			next = append(next, scanJob{shard: j.shard, vi: thief})
			rep.Steals++
			c.stealsC.Inc()
			s.emit("shard_steal", func() map[string]any {
				return map[string]any{"round": round, "shard": j.shard, "campaign": c.name,
					"from": v.spec.Name, "to": s.vantages[thief].spec.Name}
			})
		}
		jobs = next
	}

	poisoned := make([]bool, n)
	if allNil(results) {
		rep.SelfOutage = true
		rep.Degraded = true
		c.selfOutagesC.Inc()
		c.degradedC.Inc()
		s.emit("fleet_self_outage", func() map[string]any {
			return map[string]any{"round": round, "eligible": rep.Eligible, "campaign": c.name}
		})
		c.settleRound(rep, okScans, failScans, poisoned, nil, round)
		return nil, rep, nil
	}

	merged := c.merge(results, shards)
	c.corroborate(ctx, round, at, prev, merged, results, owners, poisoned, rep)
	c.settleRound(rep, okScans, failScans, poisoned, merged, round)
	return merged, rep, nil
}

// assign distributes the round's shards over eligible vantages: round-robin
// in fixed vantage order with a rotating per-round offset, half-open
// vantages capped at one trial shard. Returns the jobs in shard order and
// how many shards found no vantage at all.
func (c *Campaign) assign(states []BreakerState, round, shards int) ([]scanJob, int) {
	n := len(c.s.vantages)
	jobs := make([]scanJob, 0, shards)
	unassigned := 0
	trialUsed := make([]bool, n)
	cursor := round % n
	for sh := 0; sh < shards; sh++ {
		vi := -1
		for try := 0; try < n; try++ {
			cand := (cursor + try) % n
			if states[cand] == Open || (states[cand] == HalfOpen && trialUsed[cand]) {
				continue
			}
			vi = cand
			break
		}
		if vi < 0 {
			unassigned++
			continue
		}
		if states[vi] == HalfOpen {
			trialUsed[vi] = true
		}
		cursor = vi + 1
		jobs = append(jobs, scanJob{shard: sh, vi: vi})
	}
	return jobs, unassigned
}

// thief picks the next closed vantage (after the failed owner, in fleet
// order) that has not yet tried this shard, or -1.
func (s *Supervisor) thief(j scanJob, tried []bool) int {
	n := len(s.vantages)
	for try := 1; try <= n; try++ {
		vi := (j.vi + try) % n
		if tried[vi] || s.vantages[vi].br.state != Closed {
			continue
		}
		return vi
	}
	return -1
}

// transport returns the factory this campaign uses for a vantage.
func (c *Campaign) transport(vi int) TransportFunc {
	if fn := c.transports[vi]; fn != nil {
		return fn
	}
	return c.s.vantages[vi].spec.Transport
}

// scanShard runs one vantage's scan of one shard over a fresh transport.
func (c *Campaign) scanShard(ctx context.Context, vi, shard, shards, round int, at time.Time) scanOut {
	tr, clk, err := c.transport(vi)(round, at)
	if err != nil {
		return scanOut{err: err}
	}
	if cl, ok := tr.(io.Closer); ok {
		defer cl.Close()
	}
	if clk == nil {
		if cl, ok := tr.(scanner.Clock); ok {
			clk = cl
		}
	}
	cfg := c.scan
	cfg.Shard, cfg.Shards = shard, shards
	cfg.Epoch = uint32(round + 1)
	cfg.Clock = clk
	rd, err := scanner.New(tr, cfg).RunContext(ctx, c.targets)
	return scanOut{rd: rd, err: err}
}

// merge folds the per-shard results (placeholding unscanned shards, so their
// targets count as a coverage hole) in shard order.
func (c *Campaign) merge(results []*scanner.RoundData, shards int) *scanner.RoundData {
	rds := make([]*scanner.RoundData, 0, shards)
	for sh, rd := range results {
		if rd == nil {
			rds = append(rds, &scanner.RoundData{
				Targets:      c.targets,
				ShardTargets: scanner.ShardLen(c.targets.Len(), sh, shards),
				Partial:      true,
			})
			continue
		}
		rds = append(rds, rd)
	}
	return scanner.MergeRounds(c.targets, rds)
}

// corroborate finds suspect blocks (believed alive, now reading depressed),
// re-probes them in full from every closed vantage, and fuses the verdicts
// per block: any full-block alive evidence overrides the dark reading, a
// coverage-weighted dark quorum confirms the transition, and anything short
// of either holds the previous belief. Vantages whose dark samples were
// overridden on enough blocks are "poisoned" — silently feeding darkness —
// and charged a missed heartbeat even though their scans looked complete.
func (c *Campaign) corroborate(ctx context.Context, round int, at time.Time, prev PrevFunc,
	merged *scanner.RoundData, results []*scanner.RoundData, owners []int,
	poisoned []bool, rep *RoundReport) {
	s := c.s

	prevOf := func(bi int) (int, bool) {
		if prev != nil {
			return prev(bi)
		}
		if !c.haveLast {
			return 0, false
		}
		return c.lastResp[bi], true
	}

	var suspects []int
	prevResp := make(map[int]int)
	for bi := range merged.Blocks {
		p, ok := prevOf(bi)
		if ok && p > 0 && int(merged.Blocks[bi].RespCount) < p {
			suspects = append(suspects, bi)
			prevResp[bi] = p
		}
	}
	rep.Suspects = len(suspects)
	if len(suspects) == 0 {
		return
	}

	// Per-vantage sample verdicts from the primary shards already scanned.
	n := len(s.vantages)
	sample := make([][]int, n) // per vantage: resp per suspect (by suspects index); nil = no data
	weight := make([]float64, n)
	probed := make([]int, n)
	due := make([]int, n)
	for sh, rd := range results {
		if rd == nil {
			continue
		}
		vi := owners[sh]
		if sample[vi] == nil {
			sample[vi] = make([]int, len(suspects))
		}
		for si, bi := range suspects {
			sample[vi][si] += int(rd.Blocks[bi].RespCount)
		}
		probed[vi] += rd.Probed
		due[vi] += rd.ShardTargets
	}
	for vi := range s.vantages {
		if due[vi] > 0 {
			weight[vi] = float64(probed[vi]) / float64(due[vi])
		}
	}

	// Full-block corroboration re-probes from every closed vantage.
	prefixes := make([]netmodel.Prefix, len(suspects))
	for i, bi := range suspects {
		blk := c.targets.Blocks()[bi]
		prefixes[i] = netmodel.Prefix{Base: blk.First(), Bits: 24}
	}
	suspectTS, err := scanner.NewTargetSet(prefixes, nil)
	if err != nil {
		return // cannot corroborate; fusion below works from samples alone
	}
	var corr []int
	for vi, v := range s.vantages {
		if v.br.state == Closed {
			corr = append(corr, vi)
		}
	}
	couts := make([]scanOut, len(corr))
	par.ForEach(len(corr), func(i int) {
		couts[i] = c.reprobe(ctx, corr[i], round, at, suspectTS)
	})

	// Fuse per suspect block, in block order.
	overridden := make([]int, n) // dark sample votes overridden per vantage
	darkVotes := make([]int, n)
	for si, bi := range suspects {
		var verdicts []signals.VantageVerdict
		for vi, v := range s.vantages {
			if sample[vi] == nil {
				continue
			}
			verdicts = append(verdicts, signals.VantageVerdict{
				Vantage: v.spec.Name, Resp: sample[vi][si], Weight: weight[vi],
			})
			if sample[vi][si] == 0 {
				darkVotes[vi]++
			}
		}
		for ci, vi := range corr {
			out := couts[ci]
			if out.err != nil || out.rd == nil || out.rd.RecvDead {
				continue
			}
			sbi := suspectTS.BlockIndex(c.targets.Blocks()[bi].First())
			if sbi < 0 {
				continue
			}
			verdicts = append(verdicts, signals.VantageVerdict{
				Vantage: s.vantages[vi].spec.Name,
				Resp:    int(out.rd.Blocks[sbi].RespCount),
				Weight:  out.rd.Coverage(),
				Full:    true,
			})
		}
		fused, outcome := signals.FuseBlock(prevResp[bi], int(merged.Blocks[bi].RespCount), verdicts, c.quorum)
		s.fuseM.Observe(outcome)
		switch outcome {
		case signals.FuseAlive:
			rep.FusedAlive++
			for vi := range s.vantages {
				if sample[vi] != nil && sample[vi][si] == 0 {
					overridden[vi]++
				}
			}
		case signals.FuseDown:
			rep.FusedDown++
		case signals.FuseHeld:
			rep.FusedHeld++
		}
		merged.Blocks[bi].RespCount = uint16(fused)
	}

	// Poisoned-heartbeat check: a vantage whose dark samples were overridden
	// on at least max(2, half the fused-alive blocks) fed silent darkness
	// this round; its scan "succeeded" but its heartbeat did not. Requiring
	// that every one of its dark votes was overridden keeps a vantage that
	// also saw genuine darkness (shared with the quorum) out of the net.
	if rep.FusedAlive > 0 {
		threshold := (rep.FusedAlive + 1) / 2
		if threshold < 2 {
			threshold = 2
		}
		for vi, v := range s.vantages {
			if overridden[vi] < threshold || overridden[vi] < darkVotes[vi] {
				continue
			}
			poisoned[vi] = true
			s.emit("vantage_poisoned", func() map[string]any {
				return map[string]any{"round": round, "vantage": v.spec.Name,
					"campaign": c.name, "overridden": overridden[vi]}
			})
		}
	}

	s.emit("fleet_fusion", func() map[string]any {
		return map[string]any{"round": round, "suspects": rep.Suspects, "campaign": c.name,
			"alive": rep.FusedAlive, "down": rep.FusedDown, "held": rep.FusedHeld}
	})
}

// reprobe runs one vantage's full scan of the suspect blocks.
func (c *Campaign) reprobe(ctx context.Context, vi, round int, at time.Time, ts *scanner.TargetSet) scanOut {
	tr, clk, err := c.transport(vi)(round, at)
	if err != nil {
		return scanOut{err: err}
	}
	if cl, ok := tr.(io.Closer); ok {
		defer cl.Close()
	}
	if clk == nil {
		if cl, ok := tr.(scanner.Clock); ok {
			clk = cl
		}
	}
	cfg := c.scan
	cfg.Shard, cfg.Shards = 0, 1
	cfg.Epoch = uint32(round + 1)
	cfg.Clock = clk
	rd, err := scanner.New(tr, cfg).RunContext(ctx, ts)
	return scanOut{rd: rd, err: err}
}

// settleRound applies end-of-round heartbeats (including deferred half-open
// trial verdicts and poisoning), updates health EWMAs and beliefs, and
// aggregates the campaign report. All in fixed vantage order.
func (c *Campaign) settleRound(rep *RoundReport, okScans, failScans []int, poisoned []bool, merged *scanner.RoundData, round int) {
	s := c.s
	for vi, v := range s.vantages {
		if okScans[vi] == 0 && failScans[vi] == 0 && !poisoned[vi] {
			continue // did not participate: no heartbeat either way
		}
		healthy := failScans[vi] == 0 && okScans[vi] > 0 && !poisoned[vi]
		switch {
		case healthy:
			// Deferred on purpose: a half-open trial only closes the breaker
			// after it survived the fusion poison check, so a stalled vantage
			// whose trial scan "completed" (all-dark) stays quarantined.
			if v.br.success() {
				c.transition(v, vi, round, Closed)
			}
		case poisoned[vi] && v.br.state != Open:
			// Shard-scan failures were charged at wave time; poisoning is the
			// one failure discovered only after fusion.
			if v.br.failure(round) {
				c.transition(v, vi, round, Open)
			}
		}
		outcome := 0.0
		if healthy {
			outcome = 1
		}
		v.health = (1-s.cfg.HealthAlpha)*v.health + s.cfg.HealthAlpha*outcome
		v.healthG.Set(int64(v.health*1000 + 0.5))
	}

	if rep.Healthy < c.quorum || rep.Uncovered > 0 {
		rep.Degraded = true
		if !rep.SelfOutage { // self-outage already counted the round
			c.degradedC.Inc()
		}
	}

	if merged != nil && !merged.RecvDead {
		for bi := range merged.Blocks {
			c.lastResp[bi] = int(merged.Blocks[bi].RespCount)
		}
		c.haveLast = true
	}

	c.rep.Steals += rep.Steals
	c.rep.Suspects += rep.Suspects
	c.rep.FusedAlive += rep.FusedAlive
	c.rep.FusedDown += rep.FusedDown
	c.rep.FusedHeld += rep.FusedHeld
	if rep.Degraded {
		c.rep.DegradedRounds++
	}
	if rep.SelfOutage {
		c.rep.SelfOutages++
	}
}

// noteOpen records a vantage in this campaign's quarantine list, once.
func (c *Campaign) noteOpen(vi int) {
	if c.openSeen[vi] {
		return
	}
	c.openSeen[vi] = true
	c.s.vantages[vi].everOpen = true
	c.rep.Quarantined = append(c.rep.Quarantined, c.s.vantages[vi].spec.Name)
}

// transition records a breaker state change on metrics, events and the
// quarantine report of the campaign whose round observed it.
func (c *Campaign) transition(v *vantage, vi, round int, to BreakerState) {
	c.s.m.transitions.With(to.String()).Inc()
	if to == Open {
		c.noteOpen(vi)
	}
	c.s.emit("breaker_transition", func() map[string]any {
		return map[string]any{"round": round, "vantage": v.spec.Name,
			"campaign": c.name, "to": to.String(), "quarantine": v.br.quarantine}
	})
}

// emit publishes one event when a bus is attached.
func (s *Supervisor) emit(kind string, fields func() map[string]any) {
	if s.bus == nil {
		return
	}
	s.bus.Publish(kind, fields())
}

func allNil(rds []*scanner.RoundData) bool {
	for _, rd := range rds {
		if rd != nil {
			return false
		}
	}
	return true
}
