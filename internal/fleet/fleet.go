// Package fleet supervises a multi-vantage scanner fleet: N vantages scan a
// round's address-block shards concurrently, a per-vantage circuit breaker
// (closed → open → half-open, with exponential-backoff quarantine)
// translates missed heartbeats into quarantine, failed shards are
// deterministically reassigned ("stolen") to healthy vantages within the
// same round, and suspect block transitions are corroborated by re-probing
// from independent vantages before k-of-n fusion (internal/signals) lets a
// block go down.
//
// The point is the distinction the paper's operators had to make by hand:
// "our vantage is sick" (a self-outage, reported on the obs bus and never
// written into the measurement) versus "the target is dark" (a corroborated
// observation). A single stalled or blacked-out vantage therefore cannot
// fabricate a country-wide outage.
//
// Determinism: every scan runs over a fresh per-(vantage, round) transport
// from the vantage's factory, results are slotted by shard index, and all
// state mutation — breaker transitions, steals, fusion, belief updates —
// happens on the supervisor goroutine in fixed (shard, vantage) order
// between scan waves. Fleet round output is byte-identical regardless of
// COUNTRYMON_WORKERS.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/par"
	"countrymon/internal/scanner"
	"countrymon/internal/signals"
)

// Spec describes one vantage.
type Spec struct {
	// Name identifies the vantage in events, metrics and reports.
	Name string
	// Transport builds a fresh transport (and clock) for one scan this
	// vantage runs in round `round`, scheduled at `at`. It is called once
	// per assigned shard and once per corroboration re-probe, possibly from
	// concurrent goroutines, so it must be safe for concurrent use and must
	// return independent transports. Transports implementing io.Closer are
	// closed when their scan finishes.
	Transport func(round int, at time.Time) (scanner.Transport, scanner.Clock, error)
}

// Config configures a Supervisor.
type Config struct {
	// Targets is the shared target set every vantage scans.
	Targets *scanner.TargetSet
	// Scan is the base per-scan configuration (rate, seed, batching,
	// metrics, events); Shard/Shards/Epoch/Clock are overridden per scan.
	Scan scanner.Config
	// Shards is how many shards a round's primary scan splits into
	// (default: the number of vantages).
	Shards int
	// Quorum is k of the k-of-n corroboration: the coverage-weighted dark
	// votes needed before a suspect block transitions to down (default
	// min(2, vantages); the effective quorum never exceeds the vantages
	// that produced a verdict).
	Quorum int
	// MinShardCoverage is the heartbeat gate: a shard scan below this
	// coverage counts as a missed heartbeat and is rescanned elsewhere
	// (default 0.8).
	MinShardCoverage float64
	// Breaker tunes the per-vantage circuit breaker.
	Breaker BreakerConfig
	// HealthAlpha is the EWMA weight of the newest heartbeat in the
	// per-vantage health score (default 0.3).
	HealthAlpha float64

	// Registry and Bus attach the fleet's instruments and event stream.
	Registry *obs.Registry
	Bus      *obs.Bus
}

// RoundReport describes how one fleet round went.
type RoundReport struct {
	Round     int
	Healthy   int // vantages that entered the round closed
	Eligible  int // closed + half-open vantages
	Steals    int // shards reassigned mid-round
	Uncovered int // shards no vantage could scan
	// SelfOutage: no shard produced usable data — the fleet, not the
	// target, was dark. The round must be recorded missing.
	SelfOutage bool
	// Degraded: the round ran below quorum, left shards uncovered, or was
	// a self-outage.
	Degraded bool
	// Fusion tallies over this round's suspect blocks.
	Suspects, FusedAlive, FusedDown, FusedHeld int
}

// CampaignReport aggregates across all rounds scanned so far.
type CampaignReport struct {
	// Quarantined lists vantages whose breaker ever opened, in vantage
	// order, each once.
	Quarantined                                []string
	DegradedRounds                             int
	SelfOutages                                int
	Steals                                     int
	Suspects, FusedAlive, FusedDown, FusedHeld int
}

// Degraded reports whether the campaign completed degraded: a vantage was
// quarantined or at least one round ran below quorum / with coverage holes.
func (r CampaignReport) Degraded() bool {
	return len(r.Quarantined) > 0 || r.DegradedRounds > 0 || r.SelfOutages > 0
}

// vantage is one fleet member's supervisor-side state.
type vantage struct {
	spec     Spec
	br       breaker
	health   float64 // heartbeat EWMA in [0, 1]
	healthG  *obs.Gauge
	everOpen bool
}

// Supervisor runs the fleet. It is not safe for concurrent use; drive it
// from one goroutine (the Monitor does).
type Supervisor struct {
	cfg      Config
	vantages []*vantage
	m        *metrics
	fuseM    *signals.FusionMetrics
	bus      *obs.Bus

	// lastResp is the fused per-block belief of the most recent usable
	// round, the fallback prev when ScanRound's caller passes none.
	lastResp []int
	haveLast bool

	rep CampaignReport
}

// New validates the configuration and builds a supervisor.
func New(specs []Spec, cfg Config) (*Supervisor, error) {
	if len(specs) == 0 {
		return nil, errors.New("fleet: at least one vantage required")
	}
	if cfg.Targets == nil {
		return nil, errors.New("fleet: Targets required")
	}
	seen := make(map[string]bool, len(specs))
	for i := range specs {
		if specs[i].Transport == nil {
			return nil, fmt.Errorf("fleet: vantage %d has no transport factory", i)
		}
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("v%d", i)
		}
		if seen[specs[i].Name] {
			return nil, fmt.Errorf("fleet: duplicate vantage name %q", specs[i].Name)
		}
		seen[specs[i].Name] = true
	}
	if cfg.Shards <= 0 {
		cfg.Shards = len(specs)
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 2
		if len(specs) < 2 {
			cfg.Quorum = 1
		}
	}
	if cfg.MinShardCoverage <= 0 {
		cfg.MinShardCoverage = 0.8
	}
	if cfg.HealthAlpha <= 0 || cfg.HealthAlpha > 1 {
		cfg.HealthAlpha = 0.3
	}
	s := &Supervisor{
		cfg:      cfg,
		m:        newMetrics(cfg.Registry),
		fuseM:    signals.NewFusionMetrics(cfg.Registry),
		bus:      cfg.Bus,
		lastResp: make([]int, cfg.Targets.NumBlocks()),
	}
	for _, sp := range specs {
		v := &vantage{spec: sp, br: newBreaker(cfg.Breaker), health: 1,
			healthG: s.m.health.With(sp.Name)}
		v.healthG.Set(1000)
		s.vantages = append(s.vantages, v)
	}
	return s, nil
}

// Vantages returns the vantage names in fleet order.
func (s *Supervisor) Vantages() []string {
	names := make([]string, len(s.vantages))
	for i, v := range s.vantages {
		names[i] = v.spec.Name
	}
	return names
}

// Report returns the campaign-level aggregation so far.
func (s *Supervisor) Report() CampaignReport {
	out := s.rep
	out.Quarantined = append([]string(nil), s.rep.Quarantined...)
	return out
}

// State returns a vantage's current breaker state (by fleet order index).
func (s *Supervisor) State(i int) BreakerState { return s.vantages[i].br.state }

// scanJob is one (shard, vantage) scan assignment within a round.
type scanJob struct {
	shard, vi int
}

type scanOut struct {
	rd  *scanner.RoundData
	err error
}

// PrevFunc supplies the last believed response count of a block (by target
// block index) for suspect detection; ok=false means no belief yet.
type PrevFunc func(blockIdx int) (resp int, ok bool)

// ScanRound scans round `round` (scheduled at `at`) across the fleet:
// assignment, failover, merge, corroboration and fusion. prev supplies the
// previous per-block belief (nil uses the supervisor's internal belief).
//
// The returned RoundData is the merged, fusion-corrected round; it is nil
// only on a self-outage (rep.SelfOutage) or a hard error. Shards no vantage
// could scan leave a coverage hole (RoundData.Partial), which the caller
// gates like any salvaged round.
func (s *Supervisor) ScanRound(ctx context.Context, round int, at time.Time, prev PrevFunc) (*scanner.RoundData, *RoundReport, error) {
	rep := &RoundReport{Round: round}
	n := len(s.vantages)

	// Quarantine expiry: open breakers whose time is up go half-open.
	states := make([]BreakerState, n)
	for i, v := range s.vantages {
		before := v.br.state
		states[i] = v.br.beginRound(round)
		if states[i] != before {
			s.transition(v, round, states[i])
		}
		switch states[i] {
		case Closed:
			rep.Healthy++
			rep.Eligible++
		case HalfOpen:
			rep.Eligible++
		}
	}

	shards := s.cfg.Shards
	jobs, unassigned := s.assign(states, round, shards)
	rep.Uncovered = unassigned

	// Scan waves with same-round failover: failed shards are stolen by the
	// next healthy vantage that has not tried them yet.
	results := make([]*scanner.RoundData, shards)
	owners := make([]int, shards)
	tried := make([][]bool, shards)
	for i := range tried {
		tried[i] = make([]bool, n)
	}
	for _, j := range jobs {
		tried[j.shard][j.vi] = true
	}
	okScans := make([]int, n)   // successful shard scans per vantage this round
	failScans := make([]int, n) // missed heartbeats per vantage this round
	for len(jobs) > 0 {
		outs := make([]scanOut, len(jobs))
		par.ForEach(len(jobs), func(i int) {
			outs[i] = s.scanShard(ctx, jobs[i].vi, jobs[i].shard, shards, round, at)
		})
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		var next []scanJob
		for i, j := range jobs { // jobs are in shard order: deterministic
			out := outs[i]
			v := s.vantages[j.vi]
			if out.err == nil && out.rd != nil && !out.rd.RecvDead &&
				out.rd.Coverage() >= s.cfg.MinShardCoverage {
				results[j.shard] = out.rd
				owners[j.shard] = j.vi
				okScans[j.vi]++
				continue
			}
			failScans[j.vi]++
			if v.br.failure(round) {
				s.transition(v, round, Open)
			}
			s.emit("shard_failed", func() map[string]any {
				f := map[string]any{"round": round, "shard": j.shard, "vantage": v.spec.Name}
				if out.err != nil {
					f["error"] = out.err.Error()
				}
				return f
			})
			thief := s.thief(j, tried[j.shard])
			if thief < 0 {
				rep.Uncovered++
				continue
			}
			tried[j.shard][thief] = true
			next = append(next, scanJob{shard: j.shard, vi: thief})
			rep.Steals++
			s.m.steals.Inc()
			s.emit("shard_steal", func() map[string]any {
				return map[string]any{"round": round, "shard": j.shard,
					"from": v.spec.Name, "to": s.vantages[thief].spec.Name}
			})
		}
		jobs = next
	}

	poisoned := make([]bool, n)
	if allNil(results) {
		rep.SelfOutage = true
		rep.Degraded = true
		s.m.selfOutages.Inc()
		s.m.degraded.Inc()
		s.emit("fleet_self_outage", func() map[string]any {
			return map[string]any{"round": round, "eligible": rep.Eligible}
		})
		s.settleRound(rep, okScans, failScans, poisoned, nil, round)
		return nil, rep, nil
	}

	merged := s.merge(results, shards)
	s.corroborate(ctx, round, at, prev, merged, results, owners, poisoned, rep)
	s.settleRound(rep, okScans, failScans, poisoned, merged, round)
	return merged, rep, nil
}

// assign distributes the round's shards over eligible vantages: round-robin
// in fixed vantage order with a rotating per-round offset, half-open
// vantages capped at one trial shard. Returns the jobs in shard order and
// how many shards found no vantage at all.
func (s *Supervisor) assign(states []BreakerState, round, shards int) ([]scanJob, int) {
	n := len(s.vantages)
	jobs := make([]scanJob, 0, shards)
	unassigned := 0
	trialUsed := make([]bool, n)
	cursor := round % n
	for sh := 0; sh < shards; sh++ {
		vi := -1
		for try := 0; try < n; try++ {
			c := (cursor + try) % n
			if states[c] == Open || (states[c] == HalfOpen && trialUsed[c]) {
				continue
			}
			vi = c
			break
		}
		if vi < 0 {
			unassigned++
			continue
		}
		if states[vi] == HalfOpen {
			trialUsed[vi] = true
		}
		cursor = vi + 1
		jobs = append(jobs, scanJob{shard: sh, vi: vi})
	}
	return jobs, unassigned
}

// thief picks the next closed vantage (after the failed owner, in fleet
// order) that has not yet tried this shard, or -1.
func (s *Supervisor) thief(j scanJob, tried []bool) int {
	n := len(s.vantages)
	for try := 1; try <= n; try++ {
		vi := (j.vi + try) % n
		if tried[vi] || s.vantages[vi].br.state != Closed {
			continue
		}
		return vi
	}
	return -1
}

// scanShard runs one vantage's scan of one shard over a fresh transport.
func (s *Supervisor) scanShard(ctx context.Context, vi, shard, shards, round int, at time.Time) scanOut {
	tr, clk, err := s.vantages[vi].spec.Transport(round, at)
	if err != nil {
		return scanOut{err: err}
	}
	if c, ok := tr.(io.Closer); ok {
		defer c.Close()
	}
	if clk == nil {
		if c, ok := tr.(scanner.Clock); ok {
			clk = c
		}
	}
	cfg := s.cfg.Scan
	cfg.Shard, cfg.Shards = shard, shards
	cfg.Epoch = uint32(round + 1)
	cfg.Clock = clk
	rd, err := scanner.New(tr, cfg).RunContext(ctx, s.cfg.Targets)
	return scanOut{rd: rd, err: err}
}

// merge folds the per-shard results (placeholding unscanned shards, so their
// targets count as a coverage hole) in shard order.
func (s *Supervisor) merge(results []*scanner.RoundData, shards int) *scanner.RoundData {
	rds := make([]*scanner.RoundData, 0, shards)
	for sh, rd := range results {
		if rd == nil {
			rds = append(rds, &scanner.RoundData{
				Targets:      s.cfg.Targets,
				ShardTargets: scanner.ShardLen(s.cfg.Targets.Len(), sh, shards),
				Partial:      true,
			})
			continue
		}
		rds = append(rds, rd)
	}
	return scanner.MergeRounds(s.cfg.Targets, rds)
}

// corroborate finds suspect blocks (believed alive, now reading depressed),
// re-probes them in full from every closed vantage, and fuses the verdicts
// per block: any full-block alive evidence overrides the dark reading, a
// coverage-weighted dark quorum confirms the transition, and anything short
// of either holds the previous belief. Vantages whose dark samples were
// overridden on enough blocks are "poisoned" — silently feeding darkness —
// and charged a missed heartbeat even though their scans looked complete.
func (s *Supervisor) corroborate(ctx context.Context, round int, at time.Time, prev PrevFunc,
	merged *scanner.RoundData, results []*scanner.RoundData, owners []int,
	poisoned []bool, rep *RoundReport) {

	prevOf := func(bi int) (int, bool) {
		if prev != nil {
			return prev(bi)
		}
		if !s.haveLast {
			return 0, false
		}
		return s.lastResp[bi], true
	}

	var suspects []int
	prevResp := make(map[int]int)
	for bi := range merged.Blocks {
		p, ok := prevOf(bi)
		if ok && p > 0 && int(merged.Blocks[bi].RespCount) < p {
			suspects = append(suspects, bi)
			prevResp[bi] = p
		}
	}
	rep.Suspects = len(suspects)
	if len(suspects) == 0 {
		return
	}

	// Per-vantage sample verdicts from the primary shards already scanned.
	n := len(s.vantages)
	sample := make([][]int, n) // per vantage: resp per suspect (by suspects index); nil = no data
	weight := make([]float64, n)
	probed := make([]int, n)
	due := make([]int, n)
	for sh, rd := range results {
		if rd == nil {
			continue
		}
		vi := owners[sh]
		if sample[vi] == nil {
			sample[vi] = make([]int, len(suspects))
		}
		for si, bi := range suspects {
			sample[vi][si] += int(rd.Blocks[bi].RespCount)
		}
		probed[vi] += rd.Probed
		due[vi] += rd.ShardTargets
	}
	for vi := range s.vantages {
		if due[vi] > 0 {
			weight[vi] = float64(probed[vi]) / float64(due[vi])
		}
	}

	// Full-block corroboration re-probes from every closed vantage.
	prefixes := make([]netmodel.Prefix, len(suspects))
	for i, bi := range suspects {
		blk := s.cfg.Targets.Blocks()[bi]
		prefixes[i] = netmodel.Prefix{Base: blk.First(), Bits: 24}
	}
	suspectTS, err := scanner.NewTargetSet(prefixes, nil)
	if err != nil {
		return // cannot corroborate; fusion below works from samples alone
	}
	var corr []int
	for vi, v := range s.vantages {
		if v.br.state == Closed {
			corr = append(corr, vi)
		}
	}
	couts := make([]scanOut, len(corr))
	par.ForEach(len(corr), func(i int) {
		couts[i] = s.reprobe(ctx, corr[i], round, at, suspectTS)
	})

	// Fuse per suspect block, in block order.
	overridden := make([]int, n) // dark sample votes overridden per vantage
	darkVotes := make([]int, n)
	for si, bi := range suspects {
		var verdicts []signals.VantageVerdict
		for vi, v := range s.vantages {
			if sample[vi] == nil {
				continue
			}
			verdicts = append(verdicts, signals.VantageVerdict{
				Vantage: v.spec.Name, Resp: sample[vi][si], Weight: weight[vi],
			})
			if sample[vi][si] == 0 {
				darkVotes[vi]++
			}
		}
		for ci, vi := range corr {
			out := couts[ci]
			if out.err != nil || out.rd == nil || out.rd.RecvDead {
				continue
			}
			sbi := suspectTS.BlockIndex(s.cfg.Targets.Blocks()[bi].First())
			if sbi < 0 {
				continue
			}
			verdicts = append(verdicts, signals.VantageVerdict{
				Vantage: s.vantages[vi].spec.Name,
				Resp:    int(out.rd.Blocks[sbi].RespCount),
				Weight:  out.rd.Coverage(),
				Full:    true,
			})
		}
		fused, outcome := signals.FuseBlock(prevResp[bi], int(merged.Blocks[bi].RespCount), verdicts, s.cfg.Quorum)
		s.fuseM.Observe(outcome)
		switch outcome {
		case signals.FuseAlive:
			rep.FusedAlive++
			for vi := range s.vantages {
				if sample[vi] != nil && sample[vi][si] == 0 {
					overridden[vi]++
				}
			}
		case signals.FuseDown:
			rep.FusedDown++
		case signals.FuseHeld:
			rep.FusedHeld++
		}
		merged.Blocks[bi].RespCount = uint16(fused)
	}

	// Poisoned-heartbeat check: a vantage whose dark samples were overridden
	// on at least max(2, half the fused-alive blocks) fed silent darkness
	// this round; its scan "succeeded" but its heartbeat did not. Requiring
	// that every one of its dark votes was overridden keeps a vantage that
	// also saw genuine darkness (shared with the quorum) out of the net.
	if rep.FusedAlive > 0 {
		threshold := (rep.FusedAlive + 1) / 2
		if threshold < 2 {
			threshold = 2
		}
		for vi, v := range s.vantages {
			if overridden[vi] < threshold || overridden[vi] < darkVotes[vi] {
				continue
			}
			poisoned[vi] = true
			s.emit("vantage_poisoned", func() map[string]any {
				return map[string]any{"round": round, "vantage": v.spec.Name,
					"overridden": overridden[vi]}
			})
		}
	}

	s.emit("fleet_fusion", func() map[string]any {
		return map[string]any{"round": round, "suspects": rep.Suspects,
			"alive": rep.FusedAlive, "down": rep.FusedDown, "held": rep.FusedHeld}
	})
}

// reprobe runs one vantage's full scan of the suspect blocks.
func (s *Supervisor) reprobe(ctx context.Context, vi, round int, at time.Time, ts *scanner.TargetSet) scanOut {
	tr, clk, err := s.vantages[vi].spec.Transport(round, at)
	if err != nil {
		return scanOut{err: err}
	}
	if c, ok := tr.(io.Closer); ok {
		defer c.Close()
	}
	if clk == nil {
		if c, ok := tr.(scanner.Clock); ok {
			clk = c
		}
	}
	cfg := s.cfg.Scan
	cfg.Shard, cfg.Shards = 0, 1
	cfg.Epoch = uint32(round + 1)
	cfg.Clock = clk
	rd, err := scanner.New(tr, cfg).RunContext(ctx, ts)
	return scanOut{rd: rd, err: err}
}

// settleRound applies end-of-round heartbeats (including deferred half-open
// trial verdicts and poisoning), updates health EWMAs and beliefs, and
// aggregates the campaign report. All in fixed vantage order.
func (s *Supervisor) settleRound(rep *RoundReport, okScans, failScans []int, poisoned []bool, merged *scanner.RoundData, round int) {
	for vi, v := range s.vantages {
		if okScans[vi] == 0 && failScans[vi] == 0 && !poisoned[vi] {
			continue // did not participate: no heartbeat either way
		}
		healthy := failScans[vi] == 0 && okScans[vi] > 0 && !poisoned[vi]
		switch {
		case healthy:
			// Deferred on purpose: a half-open trial only closes the breaker
			// after it survived the fusion poison check, so a stalled vantage
			// whose trial scan "completed" (all-dark) stays quarantined.
			if v.br.success() {
				s.transition(v, round, Closed)
			}
		case poisoned[vi] && v.br.state != Open:
			// Shard-scan failures were charged at wave time; poisoning is the
			// one failure discovered only after fusion.
			if v.br.failure(round) {
				s.transition(v, round, Open)
			}
		}
		outcome := 0.0
		if healthy {
			outcome = 1
		}
		v.health = (1-s.cfg.HealthAlpha)*v.health + s.cfg.HealthAlpha*outcome
		v.healthG.Set(int64(v.health*1000 + 0.5))
	}

	if rep.Healthy < s.cfg.Quorum || rep.Uncovered > 0 {
		rep.Degraded = true
		if !rep.SelfOutage { // self-outage already counted the round
			s.m.degraded.Inc()
		}
	}

	if merged != nil && !merged.RecvDead {
		for bi := range merged.Blocks {
			s.lastResp[bi] = int(merged.Blocks[bi].RespCount)
		}
		s.haveLast = true
	}

	s.rep.Steals += rep.Steals
	s.rep.Suspects += rep.Suspects
	s.rep.FusedAlive += rep.FusedAlive
	s.rep.FusedDown += rep.FusedDown
	s.rep.FusedHeld += rep.FusedHeld
	if rep.Degraded {
		s.rep.DegradedRounds++
	}
	if rep.SelfOutage {
		s.rep.SelfOutages++
	}
}

// transition records a breaker state change on metrics, events and the
// quarantine report.
func (s *Supervisor) transition(v *vantage, round int, to BreakerState) {
	s.m.transitions.With(to.String()).Inc()
	if to == Open && !v.everOpen {
		v.everOpen = true
		s.rep.Quarantined = append(s.rep.Quarantined, v.spec.Name)
	}
	s.emit("breaker_transition", func() map[string]any {
		return map[string]any{"round": round, "vantage": v.spec.Name,
			"to": to.String(), "quarantine": v.br.quarantine}
	})
}

// emit publishes one event when a bus is attached.
func (s *Supervisor) emit(kind string, fields func() map[string]any) {
	if s.bus == nil {
		return
	}
	s.bus.Publish(kind, fields())
}

func allNil(rds []*scanner.RoundData) bool {
	for _, rd := range rds {
		if rd != nil {
			return false
		}
	}
	return true
}
