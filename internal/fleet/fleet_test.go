package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/scanner"
	"countrymon/internal/simnet"
)

const density = 40 // ground truth: hosts 0..39 of every block answer

func testTargets(t *testing.T) *scanner.TargetSet {
	t.Helper()
	ts, err := scanner.NewTargetSet([]netmodel.Prefix{
		{Base: netmodel.MustParseAddr("198.51.100.0"), Bits: 23},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func aliveResponder() simnet.Responder {
	return simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		if dst.HostByte() < density {
			return simnet.Reply{Kind: simnet.EchoReply, RTT: 25 * time.Millisecond}
		}
		return simnet.Reply{Kind: simnet.NoReply}
	})
}

// deadResponder is the silent-poison vantage: probes go out, nothing comes
// back, the scan "completes" with full coverage and zero replies.
func deadResponder() simnet.Responder {
	return simnet.ResponderFunc(func(netmodel.Addr, time.Time) simnet.Reply {
		return simnet.Reply{Kind: simnet.NoReply}
	})
}

// outageAfter answers like aliveResponder until from, then goes dark: the
// genuine target outage every vantage agrees on.
func outageAfter(from time.Time) simnet.Responder {
	alive := aliveResponder()
	return simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		if !at.Before(from) {
			return simnet.Reply{Kind: simnet.NoReply}
		}
		return alive.Respond(dst, at)
	})
}

func simSpec(name string, resp simnet.Responder) Spec {
	local := netmodel.MustParseAddr("203.0.113.1")
	return Spec{Name: name, Transport: func(round int, at time.Time) (scanner.Transport, scanner.Clock, error) {
		n := simnet.New(local, resp, at)
		return n, n, nil
	}}
}

func errSpec(name string) Spec {
	return Spec{Name: name, Transport: func(int, time.Time) (scanner.Transport, scanner.Clock, error) {
		return nil, nil, errors.New("vantage unreachable")
	}}
}

func baseConfig(t *testing.T) Config {
	return Config{
		Targets: testTargets(t),
		Scan:    scanner.Config{Seed: 7, Rate: 200000, Cooldown: time.Second},
	}
}

// truthPrev supplies the established belief: every block answered with
// `density` hosts last round.
func truthPrev(int) (int, bool) { return density, true }

var campaignStart = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func roundAt(r int) time.Time { return campaignStart.Add(time.Duration(r) * 2 * time.Hour) }

func assertTruth(t *testing.T, rd *scanner.RoundData, round int) {
	t.Helper()
	if rd == nil {
		t.Fatalf("round %d: nil RoundData", round)
	}
	if rd.Coverage() < 1 {
		t.Fatalf("round %d: coverage %.3f, want 1", round, rd.Coverage())
	}
	for bi := range rd.Blocks {
		if got := int(rd.Blocks[bi].RespCount); got != density {
			t.Fatalf("round %d block %d: resp %d, want %d", round, bi, got, density)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 3, OpenRounds: 2, MaxOpenRounds: 8})
	if st := b.beginRound(0); st != Closed {
		t.Fatalf("initial state %v, want closed", st)
	}
	// Two failures stay closed, the third trips.
	if b.failure(0) || b.failure(0) {
		t.Fatal("breaker tripped before threshold")
	}
	if !b.failure(0) || b.state != Open {
		t.Fatalf("breaker did not trip at threshold (state %v)", b.state)
	}
	// Quarantined for OpenRounds: rounds 1, 2 stay open, round 3 trials.
	if st := b.beginRound(1); st != Open {
		t.Fatalf("round 1 state %v, want open", st)
	}
	if st := b.beginRound(2); st != Open {
		t.Fatalf("round 2 state %v, want open", st)
	}
	if st := b.beginRound(3); st != HalfOpen {
		t.Fatalf("round 3 state %v, want half_open", st)
	}
	// Failed trial doubles the quarantine: open through round 7, trial at 8.
	if !b.failure(3) || b.state != Open || b.quarantine != 4 {
		t.Fatalf("failed trial: state %v quarantine %d, want open 4", b.state, b.quarantine)
	}
	for r := 4; r <= 7; r++ {
		if st := b.beginRound(r); st != Open {
			t.Fatalf("round %d state %v, want open", r, st)
		}
	}
	if st := b.beginRound(8); st != HalfOpen {
		t.Fatalf("round 8 state %v, want half_open", st)
	}
	// Another failed trial hits the MaxOpenRounds cap.
	b.failure(8)
	if b.quarantine != 8 {
		t.Fatalf("quarantine %d, want capped 8", b.quarantine)
	}
	b.beginRound(17)
	if b.state != HalfOpen {
		t.Fatalf("state %v, want half_open at round 17", b.state)
	}
	// A successful trial closes and resets the backoff.
	if !b.success() || b.state != Closed || b.quarantine != 2 {
		t.Fatalf("trial success: state %v quarantine %d, want closed 2", b.state, b.quarantine)
	}
}

func TestHealthyRound(t *testing.T) {
	specs := []Spec{
		simSpec("v0", aliveResponder()),
		simSpec("v1", aliveResponder()),
		simSpec("v2", aliveResponder()),
	}
	s, err := New(specs, baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	rd, rep, err := s.ScanRound(context.Background(), 0, campaignStart, truthPrev)
	if err != nil {
		t.Fatal(err)
	}
	assertTruth(t, rd, 0)
	if rep.Healthy != 3 || rep.Eligible != 3 || rep.Steals != 0 || rep.Degraded {
		t.Fatalf("report %+v, want 3 healthy, no steals, not degraded", rep)
	}
	if rep.Suspects != 0 {
		t.Fatalf("healthy round produced %d suspects", rep.Suspects)
	}
	if s.Report().Degraded() {
		t.Fatal("healthy campaign reports degraded")
	}
}

func TestFailoverAndQuarantine(t *testing.T) {
	specs := []Spec{
		errSpec("v0"), // never comes up
		simSpec("v1", aliveResponder()),
		simSpec("v2", aliveResponder()),
	}
	cfg := baseConfig(t)
	cfg.Registry = obs.NewRegistry()
	s, err := New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		rd, rep, err := s.ScanRound(context.Background(), r, roundAt(r), truthPrev)
		if err != nil {
			t.Fatal(err)
		}
		// Every round still delivers the full truth: v0's shards are stolen
		// while it is closed and never assigned once it is quarantined.
		assertTruth(t, rd, r)
		if rep.SelfOutage || rep.Uncovered != 0 {
			t.Fatalf("round %d: %+v — coverage hole despite healthy thieves", r, rep)
		}
	}
	// Threshold 3: v0 fails its shard in rounds 0, 1, 2 and trips.
	if st := s.State(0); st != Open {
		t.Fatalf("v0 state %v, want open", st)
	}
	rep := s.Report()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "v0" {
		t.Fatalf("quarantined %v, want [v0]", rep.Quarantined)
	}
	if rep.Steals < 3 {
		t.Fatalf("steals %d, want >= 3 (one per failed round)", rep.Steals)
	}
	if !rep.Degraded() {
		t.Fatal("campaign with a quarantined vantage must report degraded")
	}
	var b strings.Builder
	cfg.Registry.WritePrometheus(&b)
	for _, want := range []string{
		`fleet_breaker_transitions_total{to="open"} 1`,
		`fleet_vantage_health{vantage="v0"}`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics missing %q in\n%s", want, b.String())
		}
	}
}

func TestStalledVantageCannotFakeAnOutage(t *testing.T) {
	// v0's receive path is wedged: its scans complete with full coverage and
	// zero replies. Without fusion this silently halves every block's count;
	// with it, corroboration restores the truth and the poisoned heartbeat
	// eventually quarantines v0.
	specs := []Spec{
		simSpec("v0", deadResponder()),
		simSpec("v1", aliveResponder()),
		simSpec("v2", aliveResponder()),
	}
	s, err := New(specs, baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		rd, rep, err := s.ScanRound(context.Background(), r, roundAt(r), truthPrev)
		if err != nil {
			t.Fatal(err)
		}
		// Zero false outages, ever: fusion restores every suspect block.
		assertTruth(t, rd, r)
		if rep.FusedDown != 0 {
			t.Fatalf("round %d: %d blocks fused down — false outage", r, rep.FusedDown)
		}
	}
	if st := s.State(0); st != Open {
		t.Fatalf("v0 state %v, want open (poisoned heartbeats must trip it)", st)
	}
	rep := s.Report()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "v0" {
		t.Fatalf("quarantined %v, want [v0]", rep.Quarantined)
	}
	if rep.FusedAlive == 0 {
		t.Fatal("no blocks were fused alive — the poison was never corrected")
	}
	if rep.FusedDown != 0 {
		t.Fatalf("campaign fused %d blocks down, want 0", rep.FusedDown)
	}
}

func TestGenuineOutageStillDetected(t *testing.T) {
	// All vantages are healthy and the target really goes dark in round 2:
	// the dark quorum must confirm the transition in that same round.
	outStart := roundAt(2)
	specs := []Spec{
		simSpec("v0", outageAfter(outStart)),
		simSpec("v1", outageAfter(outStart)),
		simSpec("v2", outageAfter(outStart)),
	}
	s, err := New(specs, baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	prev := density
	for r := 0; r < 4; r++ {
		rd, rep, err := s.ScanRound(context.Background(), r, roundAt(r),
			func(int) (int, bool) { return prev, true })
		if err != nil {
			t.Fatal(err)
		}
		if r < 2 {
			assertTruth(t, rd, r)
		} else {
			for bi := range rd.Blocks {
				if rd.Blocks[bi].RespCount != 0 {
					t.Fatalf("round %d block %d: resp %d, want 0 (real outage)",
						r, bi, rd.Blocks[bi].RespCount)
				}
			}
			if r == 2 && rep.FusedDown != rd.Targets.NumBlocks() {
				t.Fatalf("round 2 fused %d blocks down, want %d", rep.FusedDown, rd.Targets.NumBlocks())
			}
		}
		prev = int(rd.Blocks[0].RespCount)
	}
	// A corroborated target outage is not a fleet problem: nobody tripped.
	for i := range specs {
		if st := s.State(i); st != Closed {
			t.Fatalf("vantage %d state %v, want closed", i, st)
		}
	}
	if s.Report().Degraded() {
		t.Fatal("corroborated target outage must not mark the campaign degraded")
	}
}

func TestSelfOutage(t *testing.T) {
	specs := []Spec{errSpec("v0"), errSpec("v1"), errSpec("v2")}
	cfg := baseConfig(t)
	cfg.Breaker = BreakerConfig{Threshold: 3, OpenRounds: 2}
	s, err := New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, rep, err := s.ScanRound(context.Background(), 0, campaignStart, truthPrev)
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil || !rep.SelfOutage || !rep.Degraded {
		t.Fatalf("round 0: rd=%v rep=%+v, want nil data and self-outage", rd, rep)
	}
	// With every shard failing over every vantage, all three trip in round 0
	// and round 1 is a self-outage before a single scan is attempted.
	_, rep, err = s.ScanRound(context.Background(), 1, roundAt(1), truthPrev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SelfOutage || rep.Eligible != 0 {
		t.Fatalf("round 1: %+v, want eligible=0 self-outage", rep)
	}
	if got := s.Report().SelfOutages; got != 2 {
		t.Fatalf("SelfOutages = %d, want 2", got)
	}
}

// fleetTranscript runs a fixed degraded-fleet campaign and renders every
// round's full output as a string, for byte-identity comparisons.
func fleetTranscript(t *testing.T) string {
	t.Helper()
	specs := []Spec{
		simSpec("v0", deadResponder()),
		errSpec("v1"),
		simSpec("v2", aliveResponder()),
		simSpec("v3", aliveResponder()),
	}
	s, err := New(specs, baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for r := 0; r < 6; r++ {
		rd, rep, err := s.ScanRound(context.Background(), r, roundAt(r), truthPrev)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "round %d rep %+v\n", r, *rep)
		if rd == nil {
			fmt.Fprintf(&b, "  self-outage\n")
			continue
		}
		fmt.Fprintf(&b, "  probed %d/%d partial %v recvdead %v\n",
			rd.Probed, rd.ShardTargets, rd.Partial, rd.RecvDead)
		for bi := range rd.Blocks {
			fmt.Fprintf(&b, "  block %d resp %d\n", bi, rd.Blocks[bi].RespCount)
		}
	}
	fmt.Fprintf(&b, "campaign %+v\n", s.Report())
	return b.String()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Setenv("COUNTRYMON_WORKERS", "1")
	serial := fleetTranscript(t)
	t.Setenv("COUNTRYMON_WORKERS", "8")
	wide := fleetTranscript(t)
	if serial != wide {
		t.Fatalf("fleet output depends on COUNTRYMON_WORKERS:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", serial, wide)
	}
}

func TestSingleVantageMatchesDirectScan(t *testing.T) {
	// A one-vantage fleet with nothing to corroborate must reproduce a
	// direct scanner run bit for bit.
	cfg := baseConfig(t)
	s, err := New([]Spec{simSpec("v0", aliveResponder())}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, _, err := s.ScanRound(context.Background(), 0, campaignStart, truthPrev)
	if err != nil {
		t.Fatal(err)
	}

	net := simnet.New(netmodel.MustParseAddr("203.0.113.1"), aliveResponder(), campaignStart)
	direct := cfg.Scan
	direct.Epoch = 1
	direct.Clock = net
	want, err := scanner.New(net, direct).RunContext(context.Background(), cfg.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Blocks) != len(want.Blocks) {
		t.Fatalf("block count %d != %d", len(rd.Blocks), len(want.Blocks))
	}
	for bi := range want.Blocks {
		if rd.Blocks[bi].RespCount != want.Blocks[bi].RespCount {
			t.Fatalf("block %d: fleet %d direct %d", bi,
				rd.Blocks[bi].RespCount, want.Blocks[bi].RespCount)
		}
	}
	if rd.Probed != want.Probed || rd.ShardTargets != want.ShardTargets {
		t.Fatalf("probed/targets (%d/%d) != (%d/%d)",
			rd.Probed, rd.ShardTargets, want.Probed, want.ShardTargets)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("no vantages accepted")
	}
	if _, err := New([]Spec{{Name: "x"}}, Config{Targets: testTargets(t)}); err == nil {
		t.Error("missing transport factory accepted")
	}
	dup := []Spec{simSpec("a", aliveResponder()), simSpec("a", aliveResponder())}
	if _, err := New(dup, Config{Targets: testTargets(t)}); err == nil {
		t.Error("duplicate vantage names accepted")
	}
	if _, err := New([]Spec{simSpec("a", aliveResponder())}, Config{}); err == nil {
		t.Error("missing targets accepted")
	}
}
