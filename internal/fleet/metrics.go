package fleet

import "countrymon/internal/obs"

// metrics are the supervisor's instruments. All fields are nil — inert —
// without a registry. The per-round tallies carry a campaign label so two
// countries sharing the fleet never pool their accounting: each steal,
// degraded round and self-outage is attributed to the campaign whose round
// it happened in.
type metrics struct {
	health      *obs.GaugeVec   // fleet_vantage_health{vantage}, health EWMA in permille
	transitions *obs.CounterVec // fleet_breaker_transitions_total{to}
	steals      *obs.CounterVec // fleet_steals_total{campaign}
	degraded    *obs.CounterVec // fleet_rounds_degraded_total{campaign}
	selfOutages *obs.CounterVec // fleet_self_outages_total{campaign}
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		health: reg.GaugeVec("fleet_vantage_health",
			"Per-vantage heartbeat health EWMA, in permille.", "vantage"),
		transitions: reg.CounterVec("fleet_breaker_transitions_total",
			"Vantage circuit-breaker transitions, by target state.", "to"),
		steals: reg.CounterVec("fleet_steals_total",
			"Shards reassigned to a healthy vantage after their owner failed mid-round, by campaign.", "campaign"),
		degraded: reg.CounterVec("fleet_rounds_degraded_total",
			"Rounds that ran below quorum or left a shard uncovered, by campaign.", "campaign"),
		selfOutages: reg.CounterVec("fleet_self_outages_total",
			"Rounds with no usable vantage at all (self-outage, not target outage), by campaign.", "campaign"),
	}
}
