package fleet

import "countrymon/internal/obs"

// metrics are the supervisor's instruments. All fields are nil — inert —
// without a registry.
type metrics struct {
	health      *obs.GaugeVec // fleet_vantage_health{vantage}, health EWMA in permille
	transitions *obs.CounterVec
	steals      *obs.Counter
	degraded    *obs.Counter
	selfOutages *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		health: reg.GaugeVec("fleet_vantage_health",
			"Per-vantage heartbeat health EWMA, in permille.", "vantage"),
		transitions: reg.CounterVec("fleet_breaker_transitions_total",
			"Vantage circuit-breaker transitions, by target state.", "to"),
		steals: reg.Counter("fleet_steals_total",
			"Shards reassigned to a healthy vantage after their owner failed mid-round."),
		degraded: reg.Counter("fleet_rounds_degraded_total",
			"Rounds that ran below quorum or left a shard uncovered."),
		selfOutages: reg.Counter("fleet_self_outages_total",
			"Rounds with no usable vantage at all (self-outage, not target outage)."),
	}
}
