// Package geodb is the IPInfo-like geolocation substrate: monthly database
// snapshots mapping IPv4 prefixes to a country, a Ukrainian region (oblast)
// and a radius-of-confidence in kilometres (the IPInfo "radius" metric the
// paper uses to validate regional classification, §4.3).
//
// Snapshots are obtained "on the first day of each month" (§3.2); the
// simulation generates them from ground truth plus calibrated noise, and the
// classification pipeline consumes them exactly as it would consume the
// commercial database.
package geodb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"countrymon/internal/netmodel"
)

// CountryUA is Ukraine's ISO code as used in the database.
const CountryUA = "UA"

// Entry locates one prefix. Prefixes may be more specific than /24 (IP
// drift inside a block shows up as sub-/24 entries pointing elsewhere).
type Entry struct {
	Prefix   netmodel.Prefix
	Country  string          // ISO 3166-1 alpha-2
	Region   netmodel.Region // RegionNone when outside Ukraine
	RadiusKM uint32          // confidence radius, 5..5000 km
}

// Snapshot is one month's database. Entries must tile the covered space
// without overlaps (the builder enforces longest-prefix semantics by
// sorting; Lookup uses most-specific match).
type Snapshot struct {
	entries []Entry // sorted by (Base, Bits)
}

// NewSnapshot builds a snapshot from entries (copied and sorted).
func NewSnapshot(entries []Entry) *Snapshot {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Prefix.Base != es[j].Prefix.Base {
			return es[i].Prefix.Base < es[j].Prefix.Base
		}
		return es[i].Prefix.Bits < es[j].Prefix.Bits
	})
	return &Snapshot{entries: es}
}

// Len returns the number of entries.
func (s *Snapshot) Len() int { return len(s.entries) }

// Entries returns the sorted entries (do not mutate).
func (s *Snapshot) Entries() []Entry { return s.entries }

// Lookup returns the most specific entry containing addr.
func (s *Snapshot) Lookup(addr netmodel.Addr) (Entry, bool) {
	// Entries are sorted by base; candidates are those with Base <= addr.
	// Scan backwards from the insertion point for the longest match; tiling
	// means the first containing entry is the answer, but nested entries
	// (sub-/24 drift carved out of a larger range) make a short backward
	// scan necessary.
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Prefix.Base > addr })
	best := Entry{}
	found := false
	for j := i - 1; j >= 0; j-- {
		e := s.entries[j]
		if e.Prefix.Contains(addr) {
			if !found || e.Prefix.Bits > best.Prefix.Bits {
				best, found = e, true
			}
		}
		// Stop once entries can no longer contain addr: when the gap
		// exceeds the widest possible prefix (a /0 would always contain,
		// but our databases never go wider than /8).
		if addr-e.Prefix.Base > 1<<24 {
			break
		}
	}
	return best, found
}

// BlockShares returns, for one /24 block, how many of its 256 addresses the
// snapshot locates in each region of the home country, plus how many fall
// outside it (keyed by country code).
type BlockShares struct {
	PerRegion [netmodel.NumRegions + 1]uint16 // indexed by Region
	Abroad    map[string]uint16               // country -> count (excl. home)
	Located   uint16                          // total addresses covered
}

// Share returns the fraction of the block's 256 addresses in region r.
func (b *BlockShares) Share(r netmodel.Region) float64 {
	return float64(b.PerRegion[r]) / netmodel.BlockSize
}

// DominantRegion returns the region holding the most addresses (and that
// count); RegionNone if nothing is located in Ukraine.
func (b *BlockShares) DominantRegion() (netmodel.Region, uint16) {
	var best netmodel.Region
	var n uint16
	for r := netmodel.Region(1); int(r) <= netmodel.NumRegions; r++ {
		if b.PerRegion[r] > n {
			best, n = r, b.PerRegion[r]
		}
	}
	return best, n
}

// BlockShares computes the per-region address counts of a block with Ukraine
// as the home country (the original single-country pipeline).
func (s *Snapshot) BlockShares(block netmodel.BlockID) BlockShares {
	return s.BlockSharesFor(block, CountryUA)
}

// BlockSharesFor computes the per-region address counts of a block, counting
// regions only for entries located in the given home country.
func (s *Snapshot) BlockSharesFor(block netmodel.BlockID, country string) BlockShares {
	var out BlockShares
	// Walk the 256 addresses via entry ranges rather than per-IP lookups:
	// find all entries overlapping the block.
	bp := netmodel.Prefix{Base: block.First(), Bits: 24}
	i := sort.Search(len(s.entries), func(i int) bool {
		return s.entries[i].Prefix.Base >= bp.Base
	})
	// Include one covering entry that starts before the block, plus nested
	// wider entries; collect candidates then resolve per address.
	var cands []Entry
	for j := i - 1; j >= 0 && len(cands) < 8; j-- {
		if s.entries[j].Prefix.Overlaps(bp) {
			cands = append(cands, s.entries[j])
		}
		if bp.Base-s.entries[j].Prefix.Base > 1<<24 {
			break
		}
	}
	for j := i; j < len(s.entries) && s.entries[j].Prefix.Base <= bp.Base+255; j++ {
		if s.entries[j].Prefix.Overlaps(bp) {
			cands = append(cands, s.entries[j])
		}
	}
	if len(cands) == 0 {
		return out
	}
	// Resolve each address against the most specific candidate.
	for h := 0; h < netmodel.BlockSize; h++ {
		a := block.Addr(uint8(h))
		var best *Entry
		for k := range cands {
			e := &cands[k]
			if e.Prefix.Contains(a) && (best == nil || e.Prefix.Bits > best.Prefix.Bits) {
				best = e
			}
		}
		if best == nil {
			continue
		}
		out.Located++
		if best.Country == country && best.Region.Valid() {
			out.PerRegion[best.Region]++
		} else {
			if out.Abroad == nil {
				out.Abroad = make(map[string]uint16, 2)
			}
			out.Abroad[best.Country]++
		}
	}
	return out
}

// RegionIPCounts sums located addresses per region across the snapshot with
// Ukraine as the home country (Figs 1/19: "IPv4 address counts per oblast").
func (s *Snapshot) RegionIPCounts() map[netmodel.Region]int64 {
	return s.RegionIPCountsFor(CountryUA)
}

// RegionIPCountsFor sums located addresses per region across the snapshot
// for entries in the given home country.
func (s *Snapshot) RegionIPCountsFor(country string) map[netmodel.Region]int64 {
	out := make(map[netmodel.Region]int64, netmodel.NumRegions)
	for _, e := range s.entries {
		if e.Country == country && e.Region.Valid() {
			out[e.Region] += int64(e.Prefix.NumAddrs())
		}
	}
	return out
}

// CountryIPCounts sums located addresses per country.
func (s *Snapshot) CountryIPCounts() map[string]int64 {
	out := make(map[string]int64)
	for _, e := range s.entries {
		out[e.Country] += int64(e.Prefix.NumAddrs())
	}
	return out
}

// RadiusValues returns all radius values for entries matching the filter
// (nil filter = all), weighted per entry (not per IP), for median analysis.
func (s *Snapshot) RadiusValues(filter func(Entry) bool) []uint32 {
	var out []uint32
	for _, e := range s.entries {
		if filter == nil || filter(e) {
			out = append(out, e.RadiusKM)
		}
	}
	return out
}

// DB is a sequence of monthly snapshots aligned with the campaign's dense
// month indices.
type DB struct {
	snaps []*Snapshot
}

// NewDB wraps monthly snapshots (index = dense campaign month).
func NewDB(snaps []*Snapshot) *DB { return &DB{snaps: snaps} }

// Months returns the number of snapshots.
func (db *DB) Months() int { return len(db.snaps) }

// Month returns the snapshot for dense month m (nil if out of range).
func (db *DB) Month(m int) *Snapshot {
	if m < 0 || m >= len(db.snaps) {
		return nil
	}
	return db.snaps[m]
}

// --- Serialization (IPInfo-like CSV) ---

// WriteTo writes the snapshot as "prefix,country,region,radius_km" lines.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintln(bw, "prefix,country,region,radius_km")
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, e := range s.entries {
		region := ""
		if e.Region.Valid() {
			region = e.Region.String()
		}
		k, err := fmt.Fprintf(bw, "%s,%s,%s,%d\n", e.Prefix, e.Country, region, e.RadiusKM)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadSnapshot parses the CSV produced by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var entries []Entry
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "prefix,") {
				continue
			}
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("geodb: bad line %q", line)
		}
		p, err := netmodel.ParsePrefix(parts[0])
		if err != nil {
			return nil, err
		}
		var region netmodel.Region
		if parts[2] != "" {
			var ok bool
			region, ok = netmodel.RegionByName(parts[2])
			if !ok {
				return nil, fmt.Errorf("geodb: unknown region %q", parts[2])
			}
		}
		rad, err := strconv.ParseUint(parts[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("geodb: bad radius %q", parts[3])
		}
		entries = append(entries, Entry{Prefix: p, Country: parts[1], Region: region, RadiusKM: uint32(rad)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewSnapshot(entries), nil
}
