package geodb

import (
	"bytes"
	"testing"

	"countrymon/internal/netmodel"
)

func sampleSnapshot() *Snapshot {
	return NewSnapshot([]Entry{
		{Prefix: netmodel.MustParsePrefix("91.198.4.0/24"), Country: "UA", Region: netmodel.Kherson, RadiusKM: 50},
		{Prefix: netmodel.MustParsePrefix("91.198.5.0/24"), Country: "UA", Region: netmodel.Kyiv, RadiusKM: 100},
		// Sub-/24 drift: 64 addresses of the Kherson block point to Kyiv.
		{Prefix: netmodel.MustParsePrefix("91.198.4.192/26"), Country: "UA", Region: netmodel.Kyiv, RadiusKM: 500},
		{Prefix: netmodel.MustParsePrefix("176.8.0.0/19"), Country: "UA", Region: netmodel.Kyiv, RadiusKM: 200},
		{Prefix: netmodel.MustParsePrefix("52.0.0.0/24"), Country: "US", RadiusKM: 1000},
	})
}

func TestLookupMostSpecific(t *testing.T) {
	s := sampleSnapshot()
	e, ok := s.Lookup(netmodel.MustParseAddr("91.198.4.10"))
	if !ok || e.Region != netmodel.Kherson {
		t.Errorf("lookup .10 = %+v ok=%v", e, ok)
	}
	e, ok = s.Lookup(netmodel.MustParseAddr("91.198.4.200"))
	if !ok || e.Region != netmodel.Kyiv || e.Prefix.Bits != 26 {
		t.Errorf("lookup drifted .200 = %+v ok=%v (want /26 Kyiv)", e, ok)
	}
	e, ok = s.Lookup(netmodel.MustParseAddr("176.8.17.3"))
	if !ok || e.Region != netmodel.Kyiv {
		t.Errorf("lookup /19 = %+v", e)
	}
	if _, ok := s.Lookup(netmodel.MustParseAddr("8.8.8.8")); ok {
		t.Error("uncovered address located")
	}
	e, ok = s.Lookup(netmodel.MustParseAddr("52.0.0.9"))
	if !ok || e.Country != "US" || e.Region.Valid() {
		t.Errorf("US lookup = %+v", e)
	}
}

func TestBlockShares(t *testing.T) {
	s := sampleSnapshot()
	bs := s.BlockShares(netmodel.MustParseBlock("91.198.4.0/24"))
	if bs.Located != 256 {
		t.Fatalf("Located = %d", bs.Located)
	}
	if bs.PerRegion[netmodel.Kherson] != 192 {
		t.Errorf("Kherson share = %d, want 192", bs.PerRegion[netmodel.Kherson])
	}
	if bs.PerRegion[netmodel.Kyiv] != 64 {
		t.Errorf("Kyiv share = %d, want 64", bs.PerRegion[netmodel.Kyiv])
	}
	r, n := bs.DominantRegion()
	if r != netmodel.Kherson || n != 192 {
		t.Errorf("dominant = %v/%d", r, n)
	}
	if got := bs.Share(netmodel.Kherson); got != 0.75 {
		t.Errorf("Share = %f", got)
	}
	// Uncovered block.
	empty := s.BlockShares(netmodel.MustParseBlock("10.0.0.0/24"))
	if empty.Located != 0 {
		t.Errorf("uncovered block Located = %d", empty.Located)
	}
	// Abroad block.
	us := s.BlockShares(netmodel.MustParseBlock("52.0.0.0/24"))
	if us.Abroad["US"] != 256 {
		t.Errorf("US abroad = %d", us.Abroad["US"])
	}
}

func TestRegionIPCounts(t *testing.T) {
	s := sampleSnapshot()
	counts := s.RegionIPCounts()
	// /19 (8192) + /24 (256) + /26 (64) in Kyiv.
	if counts[netmodel.Kyiv] != 8192+256+64 {
		t.Errorf("Kyiv = %d", counts[netmodel.Kyiv])
	}
	if counts[netmodel.Kherson] != 256 {
		t.Errorf("Kherson = %d", counts[netmodel.Kherson])
	}
	cc := s.CountryIPCounts()
	if cc["US"] != 256 {
		t.Errorf("US = %d", cc["US"])
	}
}

func TestRadiusValues(t *testing.T) {
	s := sampleSnapshot()
	all := s.RadiusValues(nil)
	if len(all) != 5 {
		t.Fatalf("len = %d", len(all))
	}
	ua := s.RadiusValues(func(e Entry) bool { return e.Country == "UA" })
	if len(ua) != 4 {
		t.Errorf("UA radii = %d", len(ua))
	}
}

func TestSnapshotCSVRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), s.Len())
	}
	for i, e := range got.Entries() {
		if e != s.Entries()[i] {
			t.Errorf("entry %d = %+v, want %+v", i, e, s.Entries()[i])
		}
	}
}

func TestReadSnapshotRejects(t *testing.T) {
	bad := []string{
		"prefix,country,region,radius_km\n91.198.4.0/24,UA,Atlantis,50\n",
		"prefix,country,region,radius_km\nnot-a-prefix,UA,Kyiv,50\n",
		"prefix,country,region,radius_km\n91.198.4.0/24,UA,Kyiv\n",
		"prefix,country,region,radius_km\n91.198.4.0/24,UA,Kyiv,x\n",
	}
	for _, in := range bad {
		if _, err := ReadSnapshot(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestDB(t *testing.T) {
	db := NewDB([]*Snapshot{sampleSnapshot(), sampleSnapshot()})
	if db.Months() != 2 {
		t.Fatal("Months wrong")
	}
	if db.Month(0) == nil || db.Month(2) != nil || db.Month(-1) != nil {
		t.Error("Month bounds wrong")
	}
}
