package icmp

import (
	"testing"

	"countrymon/internal/netmodel"
)

// The batch send path re-encodes one probe per target per round; the append
// encoders must stay allocation-free once the reused buffer has warmed up.

func benchMessage(i int) Message {
	return Message{
		Type: TypeEchoRequest,
		ID:   uint16(i),
		Seq:  uint16(i >> 16),
		Payload: []byte{
			byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24), 1, 2, 3, 4,
		},
	}
}

func BenchmarkAppendMarshal(b *testing.B) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m := Message{Type: TypeEchoRequest, ID: 7, Seq: 9, Payload: payload}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ID, m.Seq = uint16(i), uint16(i>>16)
		buf = AppendMarshal(buf[:0], m)
	}
	if len(buf) != HeaderLen+len(payload) {
		b.Fatalf("encoded %d bytes", len(buf))
	}
}

func BenchmarkAppendMarshalIPv4(b *testing.B) {
	h := IPv4Header{
		TTL: 64, Protocol: ProtoICMP,
		Src: netmodel.MustParseAddr("198.51.100.1"),
		Dst: netmodel.MustParseAddr("91.198.4.7"),
	}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m := Message{Type: TypeEchoRequest, ID: 7, Seq: 9, Payload: payload}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ID, m.Seq, h.ID = uint16(i), uint16(i>>16), uint16(i)
		buf = AppendMarshalIPv4(buf[:0], h, m)
	}
	if len(buf) != IPv4HeaderLen+HeaderLen+len(payload) {
		b.Fatalf("encoded %d bytes", len(buf))
	}
}

// TestAppendEncodersZeroAlloc pins the 0 allocs/op claim independent of
// benchmark noise.
func TestAppendEncodersZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats the append-extension optimization")
	}
	h := IPv4Header{
		TTL: 64, Protocol: ProtoICMP,
		Src: netmodel.MustParseAddr("198.51.100.1"),
		Dst: netmodel.MustParseAddr("91.198.4.7"),
	}
	m := benchMessage(42)
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendMarshal(buf[:0], m)
	}); n != 0 {
		t.Errorf("AppendMarshal: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendMarshalIPv4(buf[:0], h, m)
	}); n != 0 {
		t.Errorf("AppendMarshalIPv4: %.1f allocs/op, want 0", n)
	}
}

// TestAppendMarshalIPv4MatchesTwoPass checks the one-pass datagram encoder
// against the composed AppendIPv4(AppendMarshal(...)) encoding byte for
// byte, including both checksums, and round-trips it through the parsers.
func TestAppendMarshalIPv4MatchesTwoPass(t *testing.T) {
	h := IPv4Header{
		TTL: 64, TOS: 3, ID: 0xBEEF, Protocol: ProtoICMP,
		Src: netmodel.MustParseAddr("198.51.100.1"),
		Dst: netmodel.MustParseAddr("91.198.4.7"),
	}
	for i := 0; i < 50; i++ {
		m := benchMessage(i * 2654435761)
		one := AppendMarshalIPv4(nil, h, m)
		two := AppendIPv4(nil, h, AppendMarshal(nil, m))
		if string(one) != string(two) {
			t.Fatalf("case %d: one-pass %x vs two-pass %x", i, one, two)
		}
		gotH, payload, err := ParseIPv4(one)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if gotH.Src != h.Src || gotH.Dst != h.Dst || gotH.TTL != h.TTL {
			t.Fatalf("case %d: header mismatch %+v", i, gotH)
		}
		gotM, err := Parse(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if gotM.ID != m.ID || gotM.Seq != m.Seq || string(gotM.Payload) != string(m.Payload) {
			t.Fatalf("case %d: message mismatch %+v", i, gotM)
		}
	}
}
