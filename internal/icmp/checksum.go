// Package icmp implements the IPv4 and ICMPv4 wire formats the scanner and
// the simulated network exchange: header marshaling, the Internet checksum,
// echo request/reply and destination-unreachable messages.
//
// Only the stdlib is used; packets are encoded to and decoded from []byte so
// the same code path runs over the in-memory simulated wire, a UDP tunnel, or
// (with privileges) a raw socket.
package icmp

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)&1 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether b (with its embedded checksum field) sums to
// the all-ones complement zero, i.e. the checksum is valid.
func VerifyChecksum(b []byte) bool {
	var sum uint32
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)&1 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum) == 0xffff
}
