package icmp

import (
	"bytes"
	"testing"

	"countrymon/internal/netmodel"
)

// Fuzz targets for the two parsers every inbound packet passes through. The
// scanner feeds them raw bytes off the wire (or from the fault injector's
// truncation path), so they must never panic and must uphold their
// re-marshal invariants on everything they accept.

// fuzzSeeds returns realistic packets: the probes and replies the scanner
// actually exchanges, plus truncated and corrupted variants.
func fuzzSeeds() [][]byte {
	src := netmodel.AddrFromBytes([4]byte{198, 51, 100, 1})
	dst := netmodel.AddrFromBytes([4]byte{91, 198, 4, 7})
	payload := []byte{0, 0, 0, 7, 0, 1, 226, 64} // epoch + ms, as probes carry
	req := EchoRequest(0xbeef, 0x0102, payload)
	probe := MarshalIPv4(IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: src, Dst: dst, ID: 42}, req)
	reqMsg, _ := Parse(req)
	reply := MarshalIPv4(IPv4Header{TTL: 55, Protocol: ProtoICMP, Src: dst, Dst: src}, EchoReplyFor(reqMsg))
	unreach := MarshalIPv4(IPv4Header{TTL: 55, Protocol: ProtoICMP, Src: dst, Dst: src},
		DestUnreachable(CodeHostUnreachable, probe))

	seeds := [][]byte{probe, reply, unreach, req, {}, {0x45}}
	seeds = append(seeds, probe[:len(probe)/2], reply[:IPv4HeaderLen], req[:HeaderLen-1])
	corrupt := bytes.Clone(reply)
	corrupt[10] ^= 0xff // break the header checksum
	seeds = append(seeds, corrupt)
	notV4 := bytes.Clone(probe)
	notV4[0] = 0x65
	seeds = append(seeds, notV4)
	return seeds
}

func FuzzParseIPv4(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := ParseIPv4(data)
		if err != nil {
			return
		}
		// Accepted packets satisfy the header's own framing claims.
		if int(h.Length) > len(data) {
			t.Fatalf("accepted total length %d beyond packet of %d bytes", h.Length, len(data))
		}
		if len(body) > len(data)-IPv4HeaderLen {
			t.Fatalf("body of %d bytes cannot fit a %d-byte packet", len(body), len(data))
		}
		// Re-marshaling the parsed view must parse identically (the encoder
		// always emits IHL 5, so options are dropped, not corrupted).
		out := MarshalIPv4(h, body)
		h2, body2, err := ParseIPv4(out)
		if err != nil {
			t.Fatalf("re-marshaled packet rejected: %v", err)
		}
		if h2.Src != h.Src || h2.Dst != h.Dst || h2.Protocol != h.Protocol || h2.TTL != h.TTL || h2.ID != h.ID {
			t.Fatalf("round-trip header mismatch: %+v vs %+v", h, h2)
		}
		if !bytes.Equal(body, body2) {
			t.Fatal("round-trip body mismatch")
		}
	})
}

func FuzzParseICMP(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// An accepted message re-marshals to the very same bytes: Parse
		// only admits checksum-valid messages and AppendMessage recomputes
		// the same checksum over the same fields.
		out := Marshal(m)
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted message does not round-trip:\nin:  %x\nout: %x", data, out)
		}
	})
}
