package icmp

import (
	"encoding/binary"
	"fmt"
)

// Type is the ICMPv4 message type.
type Type uint8

// ICMPv4 message types used by the monitor.
const (
	TypeEchoReply       Type = 0
	TypeDestUnreachable Type = 3
	TypeEchoRequest     Type = 8
	TypeTimeExceeded    Type = 11
)

// Destination-unreachable codes.
const (
	CodeNetUnreachable  uint8 = 0
	CodeHostUnreachable uint8 = 1
	CodeAdminProhibited uint8 = 13
)

// HeaderLen is the fixed ICMP header length.
const HeaderLen = 8

// Message is a decoded ICMPv4 message. For echo messages ID/Seq carry the
// identifier and sequence number; for error messages Payload carries the
// embedded original datagram.
type Message struct {
	Type    Type
	Code    uint8
	ID      uint16
	Seq     uint16
	Payload []byte
}

// Echo reports whether the message is an echo request or reply.
func (m *Message) Echo() bool {
	return m.Type == TypeEchoRequest || m.Type == TypeEchoReply
}

// Marshal encodes the message with a correct checksum.
func Marshal(m Message) []byte {
	return AppendMarshal(nil, m)
}

// AppendMessage appends the encoded message to dst and returns the extended
// slice (allocation-free with a reused buffer). It is AppendMarshal under
// its historical name.
func AppendMessage(dst []byte, m Message) []byte {
	return AppendMarshal(dst, m)
}

// AppendMarshal appends the encoded message to dst in one pass — header,
// payload and checksum written directly into the extended slice — and
// returns it. With a reused buffer the encode performs no allocations.
func AppendMarshal(dst []byte, m Message) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen+len(m.Payload))...)
	b := dst[off:]
	b[0] = byte(m.Type)
	b[1] = m.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[HeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return dst
}

// Parse decodes an ICMPv4 message and verifies its checksum. The returned
// payload aliases b.
func Parse(b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return Message{}, ErrShortPacket
	}
	if !VerifyChecksum(b) {
		return Message{}, ErrBadChecksum
	}
	m := Message{
		Type:    Type(b[0]),
		Code:    b[1],
		ID:      binary.BigEndian.Uint16(b[4:]),
		Seq:     binary.BigEndian.Uint16(b[6:]),
		Payload: b[HeaderLen:],
	}
	return m, nil
}

// EchoRequest builds an encoded echo request with the given identifier,
// sequence number and payload.
func EchoRequest(id, seq uint16, payload []byte) []byte {
	return Marshal(Message{Type: TypeEchoRequest, ID: id, Seq: seq, Payload: payload})
}

// EchoReplyFor builds the encoded echo reply answering the given request
// message, echoing ID, Seq and payload as RFC 792 requires.
func EchoReplyFor(req Message) []byte {
	return Marshal(Message{Type: TypeEchoReply, ID: req.ID, Seq: req.Seq, Payload: req.Payload})
}

// DestUnreachable builds an encoded destination-unreachable message quoting
// the original datagram (which should be the IP header + first 8 payload
// bytes, per RFC 792).
func DestUnreachable(code uint8, original []byte) []byte {
	quote := original
	if max := IPv4HeaderLen + 8; len(quote) > max {
		quote = quote[:max]
	}
	return Marshal(Message{Type: TypeDestUnreachable, Code: code, Payload: quote})
}

func (t Type) String() string {
	switch t {
	case TypeEchoReply:
		return "echo-reply"
	case TypeDestUnreachable:
		return "dest-unreachable"
	case TypeEchoRequest:
		return "echo-request"
	case TypeTimeExceeded:
		return "time-exceeded"
	}
	return fmt.Sprintf("type-%d", uint8(t))
}
