package icmp

import (
	"bytes"
	"testing"
	"testing/quick"

	"countrymon/internal/netmodel"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x01, 0x02, 0x03}
	cs := Checksum(b)
	// Appending the checksum as two bytes must verify.
	full := append(append([]byte{}, b...), 0, 0)
	// Insert checksum at a 2-byte aligned position to emulate a real header:
	// easier: verify property sum(b) + cs == 0xffff via VerifyChecksum over
	// b||cs when b has even length only; for odd, just check determinism.
	if cs != Checksum([]byte{0x01, 0x02, 0x03}) {
		t.Error("checksum not deterministic")
	}
	_ = full
}

func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		msg := make([]byte, len(data)+2)
		copy(msg, data)
		cs := Checksum(msg)
		msg[len(data)] = byte(cs >> 8)
		msg[len(data)+1] = byte(cs)
		return VerifyChecksum(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	payload := []byte("countrymon probe")
	pkt := EchoRequest(0xbeef, 42, payload)
	m, err := Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeEchoRequest || m.Code != 0 {
		t.Errorf("type/code = %v/%d", m.Type, m.Code)
	}
	if m.ID != 0xbeef || m.Seq != 42 {
		t.Errorf("id/seq = %#x/%d", m.ID, m.Seq)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Errorf("payload = %q", m.Payload)
	}
	if !m.Echo() {
		t.Error("Echo() = false")
	}

	reply := EchoReplyFor(m)
	rm, err := Parse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Type != TypeEchoReply || rm.ID != m.ID || rm.Seq != m.Seq || !bytes.Equal(rm.Payload, payload) {
		t.Errorf("reply mismatch: %+v", rm)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	pkt := EchoRequest(1, 2, []byte("x"))
	pkt[4] ^= 0xff // corrupt ID without fixing checksum
	if _, err := Parse(pkt); err == nil {
		t.Error("Parse accepted corrupted packet")
	}
	if _, err := Parse(pkt[:4]); err == nil {
		t.Error("Parse accepted short packet")
	}
}

func TestDestUnreachableQuotesOriginal(t *testing.T) {
	orig := MarshalIPv4(IPv4Header{
		TTL: 64, Protocol: ProtoICMP,
		Src: netmodel.MustParseAddr("10.0.0.1"),
		Dst: netmodel.MustParseAddr("10.0.0.2"),
	}, EchoRequest(7, 9, bytes.Repeat([]byte{0xaa}, 32)))
	du := DestUnreachable(CodeHostUnreachable, orig)
	m, err := Parse(du)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeDestUnreachable || m.Code != CodeHostUnreachable {
		t.Fatalf("got %v/%d", m.Type, m.Code)
	}
	if len(m.Payload) != IPv4HeaderLen+8 {
		t.Errorf("quote length = %d, want %d", len(m.Payload), IPv4HeaderLen+8)
	}
	// The quoted bytes are the start of the original datagram.
	if !bytes.Equal(m.Payload, orig[:IPv4HeaderLen+8]) {
		t.Error("quote does not match original")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	src := netmodel.MustParseAddr("185.66.1.9")
	dst := netmodel.MustParseAddr("91.198.4.200")
	payload := []byte("hello ukraine monitor")
	pkt := MarshalIPv4(IPv4Header{TOS: 0, ID: 0x1234, TTL: 57, Protocol: ProtoICMP, Src: src, Dst: dst}, payload)

	h, body, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != src || h.Dst != dst || h.TTL != 57 || h.Protocol != ProtoICMP || h.ID != 0x1234 {
		t.Errorf("header mismatch: %+v", h)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload = %q", body)
	}
	if int(h.Length) != len(pkt) {
		t.Errorf("length = %d, want %d", h.Length, len(pkt))
	}
}

func TestParseIPv4Errors(t *testing.T) {
	pkt := MarshalIPv4(IPv4Header{TTL: 1, Protocol: ProtoICMP}, nil)

	if _, _, err := ParseIPv4(pkt[:10]); err == nil {
		t.Error("short packet accepted")
	}

	bad := append([]byte{}, pkt...)
	bad[0] = 0x65 // version 6
	if _, _, err := ParseIPv4(bad); err == nil {
		t.Error("non-IPv4 version accepted")
	}

	bad2 := append([]byte{}, pkt...)
	bad2[8] = 99 // change TTL without fixing checksum
	if _, _, err := ParseIPv4(bad2); err == nil {
		t.Error("bad header checksum accepted")
	}
}

func TestIPv4ThenICMPEndToEnd(t *testing.T) {
	// Full datagram as it would cross the simulated wire.
	probe := EchoRequest(100, 200, []byte{1, 2, 3, 4})
	dg := MarshalIPv4(IPv4Header{TTL: 64, Protocol: ProtoICMP,
		Src: netmodel.MustParseAddr("192.0.2.1"), Dst: netmodel.MustParseAddr("91.198.4.7")}, probe)
	h, body, err := ParseIPv4(dg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Protocol != ProtoICMP {
		t.Fatal("wrong protocol")
	}
	m, err := Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 100 || m.Seq != 200 {
		t.Fatalf("probe identity lost: %+v", m)
	}
}

func TestTypeString(t *testing.T) {
	if TypeEchoReply.String() != "echo-reply" || Type(99).String() != "type-99" {
		t.Error("Type.String mismatch")
	}
}
