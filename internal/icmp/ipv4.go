package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"countrymon/internal/netmodel"
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 protocol numbers used by the monitor.
const (
	ProtoICMP = 1
)

// IPv4Header is a minimal IPv4 header (no options), sufficient for the
// scanner and the simulated network.
type IPv4Header struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netmodel.Addr
	Length   uint16 // total length incl. header; filled by Marshal if zero
}

var (
	ErrShortPacket = errors.New("icmp: short packet")
	ErrBadVersion  = errors.New("icmp: not an IPv4 packet")
	ErrBadChecksum = errors.New("icmp: bad checksum")
)

// MarshalIPv4 encodes the header followed by the payload into a fresh slice.
func MarshalIPv4(h IPv4Header, payload []byte) []byte {
	return AppendIPv4(nil, h, payload)
}

// AppendIPv4 appends the encoded datagram to dst and returns the extended
// slice; with a reused buffer the scanner's send path stays allocation-free.
func AppendIPv4(dst []byte, h IPv4Header, payload []byte) []byte {
	total := IPv4HeaderLen + len(payload)
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], h.ID)
	// flags+fragment offset zero: the monitor never fragments.
	for i := 6; i < 12; i++ {
		b[i] = 0
	}
	b[8] = h.TTL
	b[9] = h.Protocol
	src, dstA := h.Src.Bytes(), h.Dst.Bytes()
	copy(b[12:16], src[:])
	copy(b[16:20], dstA[:])
	cs := Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:], cs)
	copy(b[IPv4HeaderLen:], payload)
	return dst
}

// AppendMarshalIPv4 appends a complete IPv4+ICMP datagram to dst in a
// single pass: the ICMP message is encoded directly into its final position
// after the IPv4 header, so hot send loops skip the intermediate
// payload-buffer copy that AppendIPv4(dst, h, AppendMarshal(...)) pays.
// With a reused buffer the encode performs no allocations.
func AppendMarshalIPv4(dst []byte, h IPv4Header, m Message) []byte {
	total := IPv4HeaderLen + HeaderLen + len(m.Payload)
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]
	// ICMP region first: its checksum must cover the final bytes.
	ic := b[IPv4HeaderLen:]
	ic[0] = byte(m.Type)
	ic[1] = m.Code
	ic[2], ic[3] = 0, 0
	binary.BigEndian.PutUint16(ic[4:], m.ID)
	binary.BigEndian.PutUint16(ic[6:], m.Seq)
	copy(ic[HeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(ic[2:], Checksum(ic))
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], h.ID)
	// flags+fragment offset zero: the monitor never fragments.
	for i := 6; i < 12; i++ {
		b[i] = 0
	}
	b[8] = h.TTL
	b[9] = h.Protocol
	src, dstA := h.Src.Bytes(), h.Dst.Bytes()
	copy(b[12:16], src[:])
	copy(b[16:20], dstA[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
	return dst
}

// ParseIPv4 decodes an IPv4 packet, returning the header and its payload
// (aliasing b). The header checksum is verified.
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, ErrShortPacket
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4Header{}, nil, fmt.Errorf("%w: IHL %d", ErrShortPacket, ihl)
	}
	if !VerifyChecksum(b[:ihl]) {
		return IPv4Header{}, nil, ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ihl || total > len(b) {
		return IPv4Header{}, nil, fmt.Errorf("%w: total length %d", ErrShortPacket, total)
	}
	h := IPv4Header{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Protocol: b[9],
		Src:      netmodel.AddrFromBytes([4]byte(b[12:16])),
		Dst:      netmodel.AddrFromBytes([4]byte(b[16:20])),
		Length:   uint16(total),
	}
	return h, b[ihl:total], nil
}
