//go:build !race

package icmp

// raceEnabled reports whether the race detector instruments this build.
// Under -race the append-extension fast path still allocates, so the
// zero-alloc assertions only hold in uninstrumented builds.
const raceEnabled = false
