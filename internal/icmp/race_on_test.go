//go:build race

package icmp

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
