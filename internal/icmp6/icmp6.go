// Package icmp6 implements the IPv6 and ICMPv6 wire formats needed to
// extend the monitor to IPv6 — the paper's stated future-work direction
// (§6): Ukraine's IPv6 adoption grew through the war (Fig 20), and ICMPv6
// error messages reveal home routers that IPv4 NAT hides.
//
// The package provides the fixed IPv6 header codec, ICMPv6 messages with
// the pseudo-header checksum (RFC 4443), echo request/reply, and parsing of
// error messages down to the embedded original packet, which is how error
// sources (routers) are identified.
package icmp6

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol numbers.
const (
	NextHeaderICMPv6 = 58
)

// ICMPv6 message types (RFC 4443).
const (
	TypeDestUnreachable uint8 = 1
	TypePacketTooBig    uint8 = 2
	TypeTimeExceeded    uint8 = 3
	TypeParamProblem    uint8 = 4
	TypeEchoRequest     uint8 = 128
	TypeEchoReply       uint8 = 129
)

// IPv6HeaderLen is the fixed IPv6 header size.
const IPv6HeaderLen = 40

// HeaderLen is the fixed ICMPv6 header size.
const HeaderLen = 8

// Errors.
var (
	ErrShortPacket = errors.New("icmp6: short packet")
	ErrBadVersion  = errors.New("icmp6: not an IPv6 packet")
	ErrBadChecksum = errors.New("icmp6: bad checksum")
	ErrNotError    = errors.New("icmp6: not an error message")
)

// IPv6Header is a fixed IPv6 header (extension headers unsupported — the
// monitor never emits them).
type IPv6Header struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr // must be IPv6
}

// MarshalIPv6 encodes the header plus payload.
func MarshalIPv6(h IPv6Header, payload []byte) ([]byte, error) {
	if !h.Src.Is6() || !h.Dst.Is6() {
		return nil, errors.New("icmp6: addresses must be IPv6")
	}
	b := make([]byte, IPv6HeaderLen+len(payload))
	b[0] = 6<<4 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | uint8(h.FlowLabel>>16&0x0f)
	binary.BigEndian.PutUint16(b[2:], uint16(h.FlowLabel))
	binary.BigEndian.PutUint16(b[4:], uint16(len(payload)))
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	src := h.Src.As16()
	dst := h.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	copy(b[IPv6HeaderLen:], payload)
	return b, nil
}

// ParseIPv6 decodes an IPv6 packet, returning the header and payload
// (aliasing b).
func ParseIPv6(b []byte) (IPv6Header, []byte, error) {
	if len(b) < IPv6HeaderLen {
		return IPv6Header{}, nil, ErrShortPacket
	}
	if b[0]>>4 != 6 {
		return IPv6Header{}, nil, ErrBadVersion
	}
	h := IPv6Header{
		TrafficClass: b[0]<<4 | b[1]>>4,
		FlowLabel:    uint32(b[1]&0x0f)<<16 | uint32(binary.BigEndian.Uint16(b[2:])),
		NextHeader:   b[6],
		HopLimit:     b[7],
		Src:          netip.AddrFrom16([16]byte(b[8:24])),
		Dst:          netip.AddrFrom16([16]byte(b[24:40])),
	}
	plen := int(binary.BigEndian.Uint16(b[4:]))
	if len(b) < IPv6HeaderLen+plen {
		return IPv6Header{}, nil, fmt.Errorf("%w: payload length %d", ErrShortPacket, plen)
	}
	return h, b[IPv6HeaderLen : IPv6HeaderLen+plen], nil
}

// Checksum computes the ICMPv6 checksum over the message with the IPv6
// pseudo-header (RFC 4443 §2.3).
func Checksum(src, dst netip.Addr, msg []byte) uint16 {
	var sum uint32
	add16 := func(b []byte) {
		n := len(b) &^ 1
		for i := 0; i < n; i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
		if len(b)&1 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	s := src.As16()
	d := dst.As16()
	add16(s[:])
	add16(d[:])
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(msg)))
	add16(l[:])
	add16([]byte{0, 0, 0, NextHeaderICMPv6})
	add16(msg)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Message is a decoded ICMPv6 message.
type Message struct {
	Type    uint8
	Code    uint8
	ID      uint16 // echo messages
	Seq     uint16 // echo messages
	Payload []byte
}

// Echo reports whether the message is an echo request or reply.
func (m *Message) Echo() bool { return m.Type == TypeEchoRequest || m.Type == TypeEchoReply }

// IsError reports whether the message is an ICMPv6 error (types < 128).
func (m *Message) IsError() bool { return m.Type < 128 }

// Marshal encodes the message with the correct pseudo-header checksum for
// the given source and destination.
func Marshal(src, dst netip.Addr, m Message) []byte {
	b := make([]byte, HeaderLen+len(m.Payload))
	b[0] = m.Type
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[HeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(b[2:], Checksum(src, dst, b))
	return b
}

// Parse decodes an ICMPv6 message, verifying the checksum against the
// given addresses.
func Parse(src, dst netip.Addr, b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return Message{}, ErrShortPacket
	}
	cs := binary.BigEndian.Uint16(b[2:])
	cp := make([]byte, len(b))
	copy(cp, b)
	cp[2], cp[3] = 0, 0
	if Checksum(src, dst, cp) != cs {
		return Message{}, ErrBadChecksum
	}
	return Message{
		Type:    b[0],
		Code:    b[1],
		ID:      binary.BigEndian.Uint16(b[4:]),
		Seq:     binary.BigEndian.Uint16(b[6:]),
		Payload: b[HeaderLen:],
	}, nil
}

// EchoRequest builds an encoded echo request datagram payload.
func EchoRequest(src, dst netip.Addr, id, seq uint16, payload []byte) []byte {
	return Marshal(src, dst, Message{Type: TypeEchoRequest, ID: id, Seq: seq, Payload: payload})
}

// EchoReplyFor builds the reply to a parsed echo request, addressed back
// from dst to src.
func EchoReplyFor(src, dst netip.Addr, req Message) []byte {
	return Marshal(dst, src, Message{Type: TypeEchoReply, ID: req.ID, Seq: req.Seq, Payload: req.Payload})
}

// TimeExceeded builds an encoded time-exceeded error from an intermediate
// router, quoting as much of the original datagram as fits (RFC 4443: up to
// the minimum MTU).
func TimeExceeded(router, origSrc netip.Addr, original []byte) []byte {
	// Error messages carry 4 unused bytes (the Message ID/Seq slot) and
	// then as much of the original datagram as fits below the minimum MTU.
	quote := original
	if max := 1280 - IPv6HeaderLen - HeaderLen; len(quote) > max {
		quote = quote[:max]
	}
	payload := append(make([]byte, 0, len(quote)), quote...)
	return Marshal(router, origSrc, Message{Type: TypeTimeExceeded, Payload: payload})
}

// ErrorSource describes what an ICMPv6 error message reveals: the router
// that emitted it and the original destination the probe targeted. Routers
// revealed this way are not hidden behind NAT — the visibility gain the
// paper cites for IPv6 outage signals.
type ErrorSource struct {
	Router      netip.Addr // the device that sent the error
	OriginalSrc netip.Addr
	OriginalDst netip.Addr
	ErrType     uint8
	ErrCode     uint8
}

// RevealSource parses a received IPv6 datagram carrying an ICMPv6 error and
// extracts the emitting router plus the embedded original addressing.
func RevealSource(datagram []byte) (ErrorSource, error) {
	h, payload, err := ParseIPv6(datagram)
	if err != nil {
		return ErrorSource{}, err
	}
	if h.NextHeader != NextHeaderICMPv6 {
		return ErrorSource{}, ErrNotError
	}
	m, err := Parse(h.Src, h.Dst, payload)
	if err != nil {
		return ErrorSource{}, err
	}
	if !m.IsError() {
		return ErrorSource{}, ErrNotError
	}
	// The quoted original may be truncated below its stated payload
	// length, so read the embedded header's fields directly.
	q := m.Payload
	if len(q) < IPv6HeaderLen || q[0]>>4 != 6 {
		return ErrorSource{}, ErrShortPacket
	}
	return ErrorSource{
		Router:      h.Src,
		OriginalSrc: netip.AddrFrom16([16]byte(q[8:24])),
		OriginalDst: netip.AddrFrom16([16]byte(q[24:40])),
		ErrType:     m.Type,
		ErrCode:     m.Code,
	}, nil
}
