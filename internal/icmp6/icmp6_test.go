package icmp6

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcAddr = netip.MustParseAddr("2001:db8::1")
	dstAddr = netip.MustParseAddr("2a01:100::42")
	router  = netip.MustParseAddr("2a01:100::ffff")
)

func TestIPv6HeaderRoundTrip(t *testing.T) {
	h := IPv6Header{
		TrafficClass: 0xb8,
		FlowLabel:    0xabcde,
		NextHeader:   NextHeaderICMPv6,
		HopLimit:     64,
		Src:          srcAddr,
		Dst:          dstAddr,
	}
	payload := []byte("v6 payload")
	pkt, err := MarshalIPv6(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, body, err := ParseIPv6(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrafficClass != h.TrafficClass || got.FlowLabel != h.FlowLabel ||
		got.NextHeader != h.NextHeader || got.HopLimit != h.HopLimit {
		t.Errorf("header = %+v", got)
	}
	if got.Src != srcAddr || got.Dst != dstAddr {
		t.Errorf("addresses = %v -> %v", got.Src, got.Dst)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload = %q", body)
	}
}

func TestMarshalIPv6RejectsV4(t *testing.T) {
	if _, err := MarshalIPv6(IPv6Header{Src: netip.MustParseAddr("10.0.0.1"), Dst: dstAddr}, nil); err == nil {
		t.Error("IPv4 source accepted")
	}
}

func TestParseIPv6Rejects(t *testing.T) {
	if _, _, err := ParseIPv6([]byte{1, 2, 3}); err == nil {
		t.Error("short packet accepted")
	}
	pkt, _ := MarshalIPv6(IPv6Header{Src: srcAddr, Dst: dstAddr}, nil)
	pkt[0] = 0x45
	if _, _, err := ParseIPv6(pkt); err == nil {
		t.Error("IPv4 version accepted")
	}
}

func TestEchoRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	req := EchoRequest(srcAddr, dstAddr, 0xbeef, 7, payload)
	m, err := Parse(srcAddr, dstAddr, req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeEchoRequest || m.ID != 0xbeef || m.Seq != 7 {
		t.Errorf("message = %+v", m)
	}
	if !m.Echo() || m.IsError() {
		t.Error("classification wrong")
	}
	reply := EchoReplyFor(srcAddr, dstAddr, m)
	rm, err := Parse(dstAddr, srcAddr, reply)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Type != TypeEchoReply || rm.ID != m.ID || !bytes.Equal(rm.Payload, payload) {
		t.Errorf("reply = %+v", rm)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	req := EchoRequest(srcAddr, dstAddr, 1, 2, []byte{9})
	req[4] ^= 0xff
	if _, err := Parse(srcAddr, dstAddr, req); err == nil {
		t.Error("corrupted message accepted")
	}
	// Checksum binds the addresses (pseudo-header). Note a pure src/dst
	// swap cancels out (the one's-complement sum is commutative), so test
	// with a genuinely different address.
	req2 := EchoRequest(srcAddr, dstAddr, 1, 2, []byte{9})
	other := netip.MustParseAddr("2a01:100::43")
	if _, err := Parse(srcAddr, other, req2); err == nil {
		t.Error("pseudo-header addresses not bound into checksum")
	}
}

func TestRevealSource(t *testing.T) {
	// A probe from src to dst expires at a router; the router's error
	// reveals itself and the original addressing.
	probe := EchoRequest(srcAddr, dstAddr, 5, 6, bytes.Repeat([]byte{0xaa}, 24))
	origDatagram, err := MarshalIPv6(IPv6Header{
		NextHeader: NextHeaderICMPv6, HopLimit: 1, Src: srcAddr, Dst: dstAddr,
	}, probe)
	if err != nil {
		t.Fatal(err)
	}
	errMsg := TimeExceeded(router, srcAddr, origDatagram)
	errDatagram, err := MarshalIPv6(IPv6Header{
		NextHeader: NextHeaderICMPv6, HopLimit: 64, Src: router, Dst: srcAddr,
	}, errMsg)
	if err != nil {
		t.Fatal(err)
	}
	es, err := RevealSource(errDatagram)
	if err != nil {
		t.Fatal(err)
	}
	if es.Router != router {
		t.Errorf("router = %v", es.Router)
	}
	if es.OriginalSrc != srcAddr || es.OriginalDst != dstAddr {
		t.Errorf("original = %v -> %v", es.OriginalSrc, es.OriginalDst)
	}
	if es.ErrType != TypeTimeExceeded {
		t.Errorf("type = %d", es.ErrType)
	}
}

func TestRevealSourceRejectsEcho(t *testing.T) {
	reply := Marshal(dstAddr, srcAddr, Message{Type: TypeEchoReply})
	dg, _ := MarshalIPv6(IPv6Header{NextHeader: NextHeaderICMPv6, Src: dstAddr, Dst: srcAddr}, reply)
	if _, err := RevealSource(dg); err != ErrNotError {
		t.Errorf("err = %v, want ErrNotError", err)
	}
}

func TestRevealSourceTruncatedQuote(t *testing.T) {
	// An error quoting fewer than 40 bytes of the original is rejected.
	short := Marshal(router, srcAddr, Message{Type: TypeDestUnreachable, Payload: []byte{1, 2, 3}})
	dg, _ := MarshalIPv6(IPv6Header{NextHeader: NextHeaderICMPv6, Src: router, Dst: srcAddr}, short)
	if _, err := RevealSource(dg); err == nil {
		t.Error("truncated quote accepted")
	}
}

func TestQuickEchoRoundTrip(t *testing.T) {
	f := func(id, seq uint16, payload []byte) bool {
		req := EchoRequest(srcAddr, dstAddr, id, seq, payload)
		m, err := Parse(srcAddr, dstAddr, req)
		return err == nil && m.ID == id && m.Seq == seq && bytes.Equal(m.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, err := Parse(srcAddr, dstAddr, b)
		_ = err
		_, _, err = ParseIPv6(b)
		_ = err
		_, err = RevealSource(b)
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
