package ioda

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/serve"
	"countrymon/internal/signals"
)

// HTTP API in the shape of the real platform's v2 endpoints (the paper
// pulls its comparison data from the IODA API [25]):
//
//	GET /v2/outages/events?entityType=asn&entityCode=25482
//	GET /v2/outages/events?entityType=region&entityCode=Kherson
//	GET /v2/signals/raw?entityType=asn&entityCode=25482
//
// Responses follow the envelope {"type": ..., "data": [...]}.

// Event is one outage event as served by the API.
type Event struct {
	EntityType string `json:"entity_type"`
	EntityCode string `json:"entity_code"`
	Datasource string `json:"datasource"` // "bgp" or "active-probing"
	Start      int64  `json:"start"`      // unix seconds
	Duration   int64  `json:"duration"`   // seconds
	Ongoing    bool   `json:"ongoing"`
}

// SignalPoint is one raw signal sample.
type SignalPoint struct {
	Time int64   `json:"time"`
	BGP  float64 `json:"bgp"`
	TRIN float64 `json:"active_probing"`
}

type envelope struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
	Err  string          `json:"error,omitempty"`
}

// Server exposes a Platform over HTTP. It does not derive series per
// request: entities are materialized once, on first touch, into a fully
// sealed serve.Store (the campaign is finished history from the platform's
// point of view), detection is memoized there per entity, and rendered
// response bytes are memoized per query — every repeat request is a map
// lookup plus a write.
type Server struct {
	p   *Platform
	mux *http.ServeMux
	// tls is the shared timeline store; every round is sealed at build time.
	tls  *serve.Store
	memo *serve.ResponseCache
}

// NewServer builds the API server.
func NewServer(p *Platform) *Server {
	tls := serve.NewStore(p.store.Timeline())
	// A timeline always has at least one round, so sealing cannot fail.
	_ = tls.AdvanceTo(p.store.Timeline().NumRounds())
	s := &Server{p: p, mux: http.NewServeMux(), tls: tls, memo: serve.NewResponseCache(0)}
	s.mux.HandleFunc("/v2/outages/events", s.handleEvents)
	s.mux.HandleFunc("/v2/signals/raw", s.handleSignals)
	return s
}

// asEntity returns (registering on first touch) the timeline-store entity
// for an AS. Registration builds the platform series once; from then on the
// store's sealed columns are the only copy anyone reads.
func (s *Server) asEntity(asn netmodel.ASN) *serve.Entity {
	code := strconv.FormatUint(uint64(asn), 10)
	if e := s.tls.Entity(serve.EntityKey("asn", code)); e != nil {
		return e
	}
	src := serve.SeriesSource(s.p.ASSeries(asn))
	e, _ := s.tls.Register("asn", code, src, serve.DetectWith(Config()))
	return e
}

// regionEntity is asEntity for regions, with the platform's fixed-baseline
// detector instead of the sliding-window one.
func (s *Server) regionEntity(region netmodel.Region) *serve.Entity {
	code := region.String()
	if e := s.tls.Entity(serve.EntityKey("region", code)); e != nil {
		return e
	}
	src := serve.SeriesSource(s.p.RegionSeries(region))
	e, _ := s.tls.Register("region", code, src, detectRegionSeries)
	return e
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func renderEnvelope(typ string, data interface{}, errMsg string) []byte {
	var raw json.RawMessage
	if data != nil {
		raw, _ = json.Marshal(data)
	}
	body, _ := json.Marshal(envelope{Type: typ, Data: raw, Err: errMsg})
	return append(body, '\n')
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, typ string, data interface{}, errMsg string) {
	writeRaw(w, status, renderEnvelope(typ, data, errMsg))
}

// entity resolves entityType/entityCode query params.
func (s *Server) entity(q url.Values) (isAS bool, asn netmodel.ASN, region netmodel.Region, err error) {
	code := q.Get("entityCode")
	switch q.Get("entityType") {
	case "asn":
		v, perr := strconv.ParseUint(code, 10, 32)
		if perr != nil {
			return false, 0, 0, fmt.Errorf("bad ASN %q", code)
		}
		return true, netmodel.ASN(v), 0, nil
	case "region":
		r, ok := netmodel.RegionByName(code)
		if !ok {
			return false, 0, 0, fmt.Errorf("unknown region %q", code)
		}
		return false, 0, r, nil
	}
	return false, 0, 0, fmt.Errorf("entityType must be asn or region")
}

func datasourceOf(k signals.Kind) string {
	if k.Has(signals.SignalBGP) && !k.Has(signals.SignalFBS) {
		return "bgp"
	}
	return "active-probing"
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	memoKey := "events?" + r.URL.RawQuery
	if body := s.memo.Get(memoKey); body != nil {
		writeRaw(w, http.StatusOK, body)
		return
	}
	isAS, asn, region, err := s.entity(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, "outage.events", nil, err.Error())
		return
	}
	tl := s.p.store.Timeline()
	var det *signals.Detection
	code, etype := "", "region"
	if isAS {
		code, etype = asn.String(), "asn"
		if !s.p.Reported(asn) {
			// Below the reporting floor: empty result, as the real
			// platform returns for uncovered ASes.
			body := renderEnvelope("outage.events", []Event{}, "")
			s.memo.Put(memoKey, body)
			writeRaw(w, http.StatusOK, body)
			return
		}
		det = s.tls.Detection(s.asEntity(asn))
	} else {
		code = region.String()
		det = s.tls.Detection(s.regionEntity(region))
	}
	events := make([]Event, 0, len(det.Outages))
	for _, o := range det.Outages {
		events = append(events, Event{
			EntityType: etype,
			EntityCode: code,
			Datasource: datasourceOf(o.Signals),
			Start:      tl.Time(o.Start).Unix(),
			Duration:   int64(o.Duration(tl.Interval()) / time.Second),
			Ongoing:    o.Ongoing,
		})
	}
	body := renderEnvelope("outage.events", events, "")
	s.memo.Put(memoKey, body)
	writeRaw(w, http.StatusOK, body)
}

func (s *Server) handleSignals(w http.ResponseWriter, r *http.Request) {
	memoKey := "signals?" + r.URL.RawQuery
	if body := s.memo.Get(memoKey); body != nil {
		writeRaw(w, http.StatusOK, body)
		return
	}
	isAS, asn, region, err := s.entity(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, "signals.raw", nil, err.Error())
		return
	}
	var ent *serve.Entity
	if isAS {
		if !s.p.HasCoverage(asn) {
			body := renderEnvelope("signals.raw", []SignalPoint{}, "")
			s.memo.Put(memoKey, body)
			writeRaw(w, http.StatusOK, body)
			return
		}
		ent = s.asEntity(asn)
	} else {
		ent = s.regionEntity(region)
	}
	tl := s.p.store.Timeline()
	q := r.URL.Query()
	from, until := int64(0), int64(1<<62)
	if v, err := strconv.ParseInt(q.Get("from"), 10, 64); err == nil {
		from = v
	}
	if v, err := strconv.ParseInt(q.Get("until"), 10, 64); err == nil {
		until = v
	}
	var pts []SignalPoint
	for round := 0; round < tl.NumRounds(); round++ {
		if ent.Missing(round) {
			continue
		}
		t := tl.Time(round).Unix()
		if t < from || t > until {
			continue
		}
		pts = append(pts, SignalPoint{Time: t, BGP: float64(ent.BGP(round)), TRIN: float64(ent.FBS(round))})
	}
	body := renderEnvelope("signals.raw", pts, "")
	s.memo.Put(memoKey, body)
	writeRaw(w, http.StatusOK, body)
}

// Client consumes the API.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) get(path string, q url.Values, out interface{}) error {
	u := c.BaseURL + path + "?" + q.Encode()
	resp, err := c.HTTP.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return fmt.Errorf("ioda api: %w", err)
	}
	if env.Err != "" {
		return fmt.Errorf("ioda api: %s", env.Err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ioda api: status %d", resp.StatusCode)
	}
	return json.Unmarshal(env.Data, out)
}

// ASEvents fetches outage events for an AS.
func (c *Client) ASEvents(asn netmodel.ASN) ([]Event, error) {
	q := url.Values{"entityType": {"asn"}, "entityCode": {strconv.FormatUint(uint64(asn), 10)}}
	var events []Event
	err := c.get("/v2/outages/events", q, &events)
	return events, err
}

// RegionEvents fetches outage events for a region.
func (c *Client) RegionEvents(region netmodel.Region) ([]Event, error) {
	q := url.Values{"entityType": {"region"}, "entityCode": {region.String()}}
	var events []Event
	err := c.get("/v2/outages/events", q, &events)
	return events, err
}

// RawSignals fetches a raw signal series.
func (c *Client) RawSignals(entityType, code string, from, until int64) ([]SignalPoint, error) {
	q := url.Values{"entityType": {entityType}, "entityCode": {code}}
	if from > 0 {
		q.Set("from", strconv.FormatInt(from, 10))
	}
	if until > 0 {
		q.Set("until", strconv.FormatInt(until, 10))
	}
	var pts []SignalPoint
	err := c.get("/v2/signals/raw", q, &pts)
	return pts, err
}
