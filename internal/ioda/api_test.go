package ioda

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"countrymon/internal/netmodel"
)

func apiFixture(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	_, p := fixture(t)
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL)
}

func TestAPIASEvents(t *testing.T) {
	_, c := apiFixture(t)
	// A reported AS returns events (possibly empty but valid).
	events, err := c.ASEvents(6877)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.EntityType != "asn" || e.EntityCode != "AS6877" {
			t.Errorf("event entity = %s/%s", e.EntityType, e.EntityCode)
		}
		if e.Duration <= 0 {
			t.Errorf("non-positive duration: %+v", e)
		}
		if e.Datasource != "bgp" && e.Datasource != "active-probing" {
			t.Errorf("datasource = %q", e.Datasource)
		}
	}
	// Below the reporting floor: empty, not an error.
	small, err := c.ASEvents(25482)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 0 {
		t.Errorf("below-floor AS returned %d events", len(small))
	}
}

func TestAPIRegionEvents(t *testing.T) {
	_, c := apiFixture(t)
	events, err := c.RegionEvents(netmodel.Kherson)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.EntityCode != "Kherson" {
			t.Errorf("entity = %q", e.EntityCode)
		}
	}
}

func TestAPIRawSignals(t *testing.T) {
	sc, _ := fixture(t)
	_, c := apiFixture(t)
	pts, err := c.RawSignals("asn", "15895", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no signal points")
	}
	// Points must be time-ordered and non-negative.
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatal("signal points not ordered")
		}
	}
	// Time filtering.
	mid := sc.TL.Time(sc.TL.NumRounds() / 2)
	filtered, err := c.RawSignals("asn", "15895", mid.Unix(), mid.Add(10*24*time.Hour).Unix())
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) == 0 || len(filtered) >= len(pts) {
		t.Errorf("filtered = %d of %d", len(filtered), len(pts))
	}
	for _, p := range filtered {
		if p.Time < mid.Unix() {
			t.Fatal("from filter ignored")
		}
	}
}

func TestAPIErrors(t *testing.T) {
	_, c := apiFixture(t)
	if _, err := c.RawSignals("asn", "not-a-number", 0, 0); err == nil {
		t.Error("bad ASN accepted")
	}
	if _, err := c.RawSignals("region", "Atlantis", 0, 0); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := c.RawSignals("planet", "Earth", 0, 0); err == nil {
		t.Error("bad entity type accepted")
	}
}

// TestAPIMemoizedResponses checks the serving rework: repeat queries are
// answered from the response memo (byte-identical), the entity is
// materialized in the shared timeline store exactly once, and time-filtered
// variants memoize independently.
func TestAPIMemoizedResponses(t *testing.T) {
	srv, _ := apiFixture(t)
	fetch := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, path := range []string{
		"/v2/signals/raw?entityType=asn&entityCode=15895",
		"/v2/outages/events?entityType=region&entityCode=Kherson",
		"/v2/outages/events?entityType=asn&entityCode=25482", // below floor
	} {
		a, b := fetch(path), fetch(path)
		if a != b {
			t.Errorf("repeat GET %s served different bytes", path)
		}
		if a == "" {
			t.Errorf("GET %s served empty body", path)
		}
	}
}
