// Package ioda approximates the IODA platform the paper compares against
// (§5.4, Appendix G): outage detection from the Trinocular active-block
// signal (TRIN■) and BGP visibility, without the regional classification the
// paper introduces. Its two deliberate differences from internal/signals
// reproduce the paper's findings:
//
//   - ASes are mapped to every oblast where any of their addresses ever
//     geolocated, so a national provider's BGP outage bleeds into many
//     regions at once (Fig 25 vs Fig 8);
//   - only ASes with at least 20 /24 blocks are reported, hiding the small
//     regional providers that dominate Ukraine's provider landscape
//     (Fig 15: 333 vs 1,674 covered ASes).
package ioda

import (
	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/regional"
	"countrymon/internal/signals"
	"countrymon/internal/trinocular"
)

// MinASBlocks is IODA's AS reporting floor (feedback quoted in §5.4: no
// outages are reported for ASes with fewer than 20 /24s).
const MinASBlocks = 20

// Config returns the platform's detection thresholds: 80% of the recent
// baseline is a (warning-level) outage; there is no IPS signal and no
// availability sensing.
func Config() signals.Config {
	return signals.Config{
		BGPFrac: 0.95, FBSFrac: 0.85,
		FBSRequiresIPSBelow: 0, AvailabilitySensing: false,
		MinBaseline: 0.5,
	}
}

// Platform is a configured IODA-like observer.
type Platform struct {
	store *dataset.Store
	space *netmodel.Space
	trin  *trinocular.Result

	// presence maps each AS to the regions where it ever had an address.
	presence map[netmodel.ASN][]netmodel.Region
	// blocksOf counts /24s per AS (reporting floor).
	blocksOf map[netmodel.ASN]int
}

// New builds the platform. The regional classification result is used only
// to learn *presence* (any class, including temporal) — the platform itself
// performs no regionality filtering, faithfully to the original.
func New(store *dataset.Store, space *netmodel.Space, trin *trinocular.Result, res *regional.Result) *Platform {
	p := &Platform{
		store:    store,
		space:    space,
		trin:     trin,
		presence: make(map[netmodel.ASN][]netmodel.Region),
		blocksOf: make(map[netmodel.ASN]int),
	}
	for _, as := range space.ASes() {
		p.blocksOf[as.ASN] = as.NumBlocks()
	}
	for _, region := range netmodel.Regions() {
		rr := res.Regions[region]
		for asn, class := range rr.AS {
			if class == regional.ASAbsent {
				continue
			}
			p.presence[asn] = append(p.presence[asn], region)
		}
	}
	return p
}

// Reported reports whether the platform publishes outages for the AS.
func (p *Platform) Reported(asn netmodel.ASN) bool {
	return p.blocksOf[asn] >= MinASBlocks && p.trin.PerAS[asn] != nil
}

// ReportedASes returns all ASes above the reporting floor with Trinocular
// coverage.
func (p *Platform) ReportedASes() []netmodel.ASN {
	var out []netmodel.ASN
	for asn := range p.trin.PerAS {
		if p.blocksOf[asn] >= MinASBlocks {
			out = append(out, asn)
		}
	}
	return out
}

// HasCoverage reports whether Trinocular tracks any block of the AS (for
// Fig 27's "includes data" comparison, distinct from Reported).
func (p *Platform) HasCoverage(asn netmodel.ASN) bool { return p.trin.PerAS[asn] != nil }

// ASSeries builds the platform's view of one AS: BGP routed /24s and the
// TRIN■ active-block signal; no IPS signal exists.
func (p *Platform) ASSeries(asn netmodel.ASN) *signals.EntitySeries {
	tl := p.store.Timeline()
	rounds := tl.NumRounds()
	es := &signals.EntitySeries{
		Name:          "IODA/" + asn.String(),
		TL:            tl,
		BGP:           make([]float32, rounds),
		FBS:           make([]float32, rounds),
		IPS:           make([]float32, rounds),
		IPSValidMonth: make([]bool, tl.NumMonths()), // IPS never valid
		Missing:       p.store.MissingRounds(),
	}
	if trin := p.trin.PerAS[asn]; trin != nil {
		copy(es.FBS, trin)
	}
	for bi, blk := range p.store.Blocks() {
		if p.space.OriginOf(blk) != asn {
			continue
		}
		for r := 0; r < rounds; r++ {
			if !es.Missing[r] && p.store.Routed(bi, r) {
				es.BGP[r]++
			}
		}
	}
	return es
}

// DetectAS runs the platform's outage detection for one AS. It returns nil
// when the AS is below the reporting floor.
func (p *Platform) DetectAS(asn netmodel.ASN) *signals.Detection {
	if !p.Reported(asn) {
		return nil
	}
	return signals.Detect(p.ASSeries(asn), Config())
}

// RegionSeries aggregates the *entire* signal of every AS with any presence
// in the region — the regional attribution the paper shows inflates IODA's
// per-oblast outages (App. G).
func (p *Platform) RegionSeries(region netmodel.Region) *signals.EntitySeries {
	tl := p.store.Timeline()
	rounds := tl.NumRounds()
	es := &signals.EntitySeries{
		Name:          "IODA/" + region.String(),
		TL:            tl,
		BGP:           make([]float32, rounds),
		FBS:           make([]float32, rounds),
		IPS:           make([]float32, rounds),
		IPSValidMonth: make([]bool, tl.NumMonths()),
		Missing:       p.store.MissingRounds(),
	}
	member := make(map[netmodel.ASN]bool)
	for asn, regions := range p.presence {
		for _, r := range regions {
			if r == region {
				member[asn] = true
			}
		}
	}
	for asn := range member {
		if trin := p.trin.PerAS[asn]; trin != nil {
			for r := 0; r < rounds; r++ {
				es.FBS[r] += trin[r]
			}
		}
	}
	for bi, blk := range p.store.Blocks() {
		if !member[p.space.OriginOf(blk)] {
			continue
		}
		for r := 0; r < rounds; r++ {
			if !es.Missing[r] && p.store.Routed(bi, r) {
				es.BGP[r]++
			}
		}
	}
	return es
}

// DetectRegion runs regional outage detection. Unlike our signals, the
// platform alerts against a *fixed historical baseline* (the first month's
// level) rather than a sliding weekly average: this is what produces the
// long-lasting BGP-signal outages Fig 25 shows at oblast level — regions
// whose aggregate slowly declines through churn and withdrawals never
// "reset" the baseline, so they stay in alert for months, inflating IODA's
// reported downtime hours (§5.1: up to 450 h/month ≈ 63% downtime).
func (p *Platform) DetectRegion(region netmodel.Region) *signals.Detection {
	return detectRegionSeries(p.RegionSeries(region))
}

// detectRegionSeries is the fixed-baseline detector over an already-built
// regional series — shared between DetectRegion and the API server's
// timeline-store entities, which feed it a sealed store view.
func detectRegionSeries(es *signals.EntitySeries) *signals.Detection {
	rounds := len(es.BGP)
	d := &signals.Detection{Flags: make([]signals.Kind, rounds)}

	// Fixed baseline: mean of the first month's measured rounds.
	tl := es.TL
	lo, hi := tl.MonthRounds(0)
	var bgpBase, fbsBase float64
	n := 0
	for r := lo; r < hi; r++ {
		if es.Missing[r] {
			continue
		}
		bgpBase += float64(es.BGP[r])
		fbsBase += float64(es.FBS[r])
		n++
	}
	if n == 0 {
		return d
	}
	bgpBase /= float64(n)
	fbsBase /= float64(n)

	cfg := Config()
	for r := 0; r < rounds; r++ {
		if es.Missing[r] {
			continue
		}
		var flags signals.Kind
		if bgpBase >= 2 && float64(es.BGP[r]) < cfg.BGPFrac*bgpBase {
			flags |= signals.SignalBGP
		}
		if fbsBase >= 2 && float64(es.FBS[r]) < cfg.FBSFrac*fbsBase {
			flags |= signals.SignalFBS
		}
		d.Flags[r] = flags
	}

	// Merge flagged runs into events (missing rounds bridge runs).
	inOutage := false
	var cur signals.Outage
	for r := 0; r < rounds; r++ {
		if es.Missing[r] {
			continue
		}
		if d.Flags[r] != 0 {
			if !inOutage {
				cur = signals.Outage{Start: r}
				inOutage = true
			}
			cur.Signals |= d.Flags[r]
			cur.End = r + 1
		} else if inOutage {
			d.Outages = append(d.Outages, cur)
			inOutage = false
		}
	}
	if inOutage {
		d.Outages = append(d.Outages, cur)
	}
	return d
}
