package ioda

import (
	"sync"
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/regional"
	"countrymon/internal/signals"
	"countrymon/internal/sim"
	"countrymon/internal/timeline"
	"countrymon/internal/trinocular"
)

var (
	once sync.Once
	fSc  *sim.Scenario
	fSt  *dataset.Store
	fP   *Platform
)

func fixture(t *testing.T) (*sim.Scenario, *Platform) {
	t.Helper()
	once.Do(func() {
		fSc = sim.MustBuild(sim.Config{Seed: 42, Scale: 0.04,
			End: timeline.DefaultStart.AddDate(0, 10, 0)})
		fSt = fSc.GenerateStore(nil)
		cl := regional.NewClassifier(fSc.Space, fSc.GeoDB(), fSt)
		res := cl.ClassifyAll(regional.DefaultParams())
		runner := trinocular.NewRunner(fSt, fSc.Space, fSc.Representatives, fSc.ProbeFunc())
		trin := runner.Run(fSc.ProbeFunc())
		fP = New(fSt, fSc.Space, trin, res)
	})
	return fSc, fP
}

func TestReportingFloorHidesSmallASes(t *testing.T) {
	sc, p := fixture(t)
	// Status (4 blocks) must be below the floor; Kyivstar far above.
	if p.Reported(25482) {
		t.Error("Status (4 /24s) should be hidden by the ≥20 blocks rule")
	}
	if !p.Reported(15895) {
		t.Error("Kyivstar should be reported")
	}
	if d := p.DetectAS(25482); d != nil {
		t.Error("DetectAS must return nil below the floor")
	}
	reported := p.ReportedASes()
	if len(reported) == 0 {
		t.Fatal("no reported ASes")
	}
	if len(reported) > sc.Space.NumASes()/2 {
		t.Errorf("reporting floor too permissive: %d of %d", len(reported), sc.Space.NumASes())
	}
}

func TestNationalBGPOutageBleedsAcrossRegions(t *testing.T) {
	// A cable-cut window that withdraws Volia (national, present in many
	// oblasts) should raise IODA's regional BGP signal in several regions
	// at once, even though the ground-truth event is Kherson-scoped for
	// the regional blocks.
	sc, p := fixture(t)
	cut := sc.TL.Round(time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC))
	affected := 0
	for _, region := range []netmodel.Region{netmodel.Kherson, netmodel.Kyiv, netmodel.Lviv, netmodel.Odessa} {
		d := p.DetectRegion(region)
		if d.Flags[cut].Has(signals.SignalBGP) || d.Flags[cut].Has(signals.SignalFBS) {
			affected++
		}
	}
	if affected < 2 {
		t.Errorf("national outage visible in only %d regions; IODA's attribution should bleed", affected)
	}
}

func TestASSeriesShape(t *testing.T) {
	sc, p := fixture(t)
	es := p.ASSeries(15895)
	if len(es.BGP) != sc.TL.NumRounds() {
		t.Fatal("series length wrong")
	}
	// The IPS signal must never be valid for IODA.
	for m, v := range es.IPSValidMonth {
		if v {
			t.Fatalf("IPS valid in month %d", m)
		}
	}
	// BGP counts routed /24s of the whole AS.
	mid := sc.TL.NumRounds() / 2
	for fSt.Missing(mid) {
		mid++
	}
	if es.BGP[mid] == 0 {
		t.Error("Kyivstar should have routed blocks mid-campaign")
	}
	if es.FBS[mid] == 0 {
		t.Error("Kyivstar should have Trinocular-up blocks mid-campaign")
	}
}

func TestIODADetectsLargeOutage(t *testing.T) {
	sc, p := fixture(t)
	// Volia is national (>20 blocks) and loses BGP during the cable cut
	// (its Kherson blocks) — but critically IODA should detect *some*
	// outage for a large AS over the window where ground truth scripted
	// one AS-wide event. Use Ukrtelecom 6877, a cable-cut AS.
	d := p.DetectAS(6877)
	if d == nil {
		t.Fatal("Ukrtelecom not reported")
	}
	cut := sc.TL.Round(time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC))
	found := false
	for _, o := range d.Outages {
		if o.Start <= cut && cut < o.End {
			found = true
		}
	}
	if !found {
		t.Error("IODA missed the cable-cut outage of a large AS")
	}
}

func TestCoverageVersusReporting(t *testing.T) {
	_, p := fixture(t)
	// Trinocular can *cover* a small AS without the platform *reporting*
	// it (Fig 27's 90%-coverage observation).
	covered, reported := 0, 0
	for _, as := range fSc.Space.ASes() {
		if p.HasCoverage(as.ASN) {
			covered++
			if p.Reported(as.ASN) {
				reported++
			}
		}
	}
	if covered == 0 {
		t.Fatal("no coverage at all")
	}
	if reported >= covered {
		t.Errorf("reported (%d) should be far below covered (%d)", reported, covered)
	}
}
