package netmodel

import (
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the conventional "AS<number>" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// AS describes an autonomous system in the model: its number, operator name,
// the prefixes delegated to it, and (for simulation ground truth) the region
// its headquarters are in.
type AS struct {
	ASN      ASN
	Name     string
	HQ       Region // RegionNone for foreign / unknown headquarters
	Foreign  bool   // headquartered outside Ukraine (e.g. NTT, aurologic)
	Prefixes []Prefix
}

// NumBlocks returns the number of /24 blocks across all the AS's prefixes.
func (a *AS) NumBlocks() int {
	n := 0
	for _, p := range a.Prefixes {
		n += p.NumBlocks()
	}
	return n
}

// Blocks de-aggregates all of the AS's prefixes into /24 blocks, sorted and
// de-duplicated.
func (a *AS) Blocks() []BlockID {
	var bs []BlockID
	for _, p := range a.Prefixes {
		bs = p.Blocks(bs)
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return dedupBlocks(bs)
}

func dedupBlocks(bs []BlockID) []BlockID {
	if len(bs) < 2 {
		return bs
	}
	out := bs[:1]
	for _, b := range bs[1:] {
		if b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// Space is the full modelled address space: the set of ASes with Ukrainian
// delegations plus the index structures everything else queries. A Space is
// immutable after Build and safe for concurrent readers.
type Space struct {
	ases    []*AS
	byASN   map[ASN]*AS
	blockAS map[BlockID]ASN // origin AS per /24 block
	blocks  []BlockID       // all blocks, sorted
}

// BuildSpace indexes the given ASes. Overlapping /24 ownership is an error:
// the model assigns each block to exactly one origin AS, as the paper does
// when grouping measurement data by AS.
func BuildSpace(ases []*AS) (*Space, error) {
	s := &Space{
		ases:    ases,
		byASN:   make(map[ASN]*AS, len(ases)),
		blockAS: make(map[BlockID]ASN),
	}
	for _, as := range ases {
		if as == nil {
			return nil, fmt.Errorf("netmodel: nil AS")
		}
		if _, dup := s.byASN[as.ASN]; dup {
			return nil, fmt.Errorf("netmodel: duplicate %v", as.ASN)
		}
		s.byASN[as.ASN] = as
		for _, b := range as.Blocks() {
			if owner, taken := s.blockAS[b]; taken {
				return nil, fmt.Errorf("netmodel: block %v claimed by both %v and %v", b, owner, as.ASN)
			}
			s.blockAS[b] = as.ASN
			s.blocks = append(s.blocks, b)
		}
	}
	sort.Slice(s.blocks, func(i, j int) bool { return s.blocks[i] < s.blocks[j] })
	return s, nil
}

// MustBuildSpace is BuildSpace that panics on error.
func MustBuildSpace(ases []*AS) *Space {
	s, err := BuildSpace(ases)
	if err != nil {
		panic(err)
	}
	return s
}

// ASes returns all ASes in input order. Callers must not mutate the slice.
func (s *Space) ASes() []*AS { return s.ases }

// NumASes returns the number of ASes in the space.
func (s *Space) NumASes() int { return len(s.ases) }

// Lookup returns the AS with the given number, or nil.
func (s *Space) Lookup(asn ASN) *AS { return s.byASN[asn] }

// OriginOf returns the AS originating the given /24 block, or 0 if the block
// is not part of the modelled space.
func (s *Space) OriginOf(b BlockID) ASN { return s.blockAS[b] }

// Blocks returns all /24 blocks in the space, sorted. Callers must not
// mutate the slice.
func (s *Space) Blocks() []BlockID { return s.blocks }

// NumBlocks returns the total number of /24 blocks.
func (s *Space) NumBlocks() int { return len(s.blocks) }

// NumAddrs returns the total number of addresses (blocks × 256).
func (s *Space) NumAddrs() int { return len(s.blocks) * BlockSize }

// BlockIndex returns the position of b in Blocks(), or -1. Dense per-block
// arrays throughout the system are indexed this way.
func (s *Space) BlockIndex(b BlockID) int {
	i := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i] >= b })
	if i < len(s.blocks) && s.blocks[i] == b {
		return i
	}
	return -1
}

// ContainsAddr reports whether the address falls in a modelled block.
func (s *Space) ContainsAddr(a Addr) bool {
	_, ok := s.blockAS[a.Block()]
	return ok
}
