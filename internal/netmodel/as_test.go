package netmodel

import "testing"

func twoASSpace(t *testing.T) *Space {
	t.Helper()
	s, err := BuildSpace([]*AS{
		{ASN: 25482, Name: "Status", HQ: Kherson, Prefixes: []Prefix{
			MustParsePrefix("193.151.240.0/23"),
			MustParsePrefix("193.151.242.0/24"),
			MustParsePrefix("193.151.243.0/24"),
		}},
		{ASN: 15895, Name: "Kyivstar", HQ: Kyiv, Prefixes: []Prefix{
			MustParsePrefix("176.8.0.0/19"),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceBasics(t *testing.T) {
	s := twoASSpace(t)
	if s.NumASes() != 2 {
		t.Fatalf("NumASes = %d", s.NumASes())
	}
	if got := s.NumBlocks(); got != 4+32 {
		t.Fatalf("NumBlocks = %d, want 36", got)
	}
	if got := s.NumAddrs(); got != 36*256 {
		t.Fatalf("NumAddrs = %d", got)
	}
	status := s.Lookup(25482)
	if status == nil || status.Name != "Status" {
		t.Fatalf("Lookup(25482) = %+v", status)
	}
	if s.Lookup(64512) != nil {
		t.Error("Lookup of unknown ASN should be nil")
	}
	if status.NumBlocks() != 4 {
		t.Errorf("Status NumBlocks = %d, want 4", status.NumBlocks())
	}
}

func TestSpaceOrigin(t *testing.T) {
	s := twoASSpace(t)
	if asn := s.OriginOf(MustParseBlock("193.151.241.0/24")); asn != 25482 {
		t.Errorf("OriginOf = %v, want AS25482", asn)
	}
	if asn := s.OriginOf(MustParseBlock("176.8.28.0/24")); asn != 15895 {
		t.Errorf("OriginOf = %v, want AS15895", asn)
	}
	if asn := s.OriginOf(MustParseBlock("8.8.8.0/24")); asn != 0 {
		t.Errorf("OriginOf foreign block = %v, want 0", asn)
	}
	if !s.ContainsAddr(MustParseAddr("176.8.0.1")) {
		t.Error("ContainsAddr false for modelled address")
	}
	if s.ContainsAddr(MustParseAddr("8.8.8.8")) {
		t.Error("ContainsAddr true for foreign address")
	}
}

func TestSpaceBlockIndex(t *testing.T) {
	s := twoASSpace(t)
	blocks := s.Blocks()
	for i, b := range blocks {
		if got := s.BlockIndex(b); got != i {
			t.Fatalf("BlockIndex(%v) = %d, want %d", b, got, i)
		}
	}
	if got := s.BlockIndex(MustParseBlock("8.8.8.0/24")); got != -1 {
		t.Errorf("BlockIndex(foreign) = %d, want -1", got)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1] >= blocks[i] {
			t.Fatalf("Blocks not strictly sorted at %d", i)
		}
	}
}

func TestBuildSpaceRejectsOverlap(t *testing.T) {
	_, err := BuildSpace([]*AS{
		{ASN: 1, Prefixes: []Prefix{MustParsePrefix("10.0.0.0/23")}},
		{ASN: 2, Prefixes: []Prefix{MustParsePrefix("10.0.1.0/24")}},
	})
	if err == nil {
		t.Fatal("BuildSpace accepted overlapping block ownership")
	}
}

func TestBuildSpaceRejectsDuplicateASN(t *testing.T) {
	_, err := BuildSpace([]*AS{
		{ASN: 1, Prefixes: []Prefix{MustParsePrefix("10.0.0.0/24")}},
		{ASN: 1, Prefixes: []Prefix{MustParsePrefix("10.0.1.0/24")}},
	})
	if err == nil {
		t.Fatal("BuildSpace accepted duplicate ASN")
	}
}

func TestASBlocksDedup(t *testing.T) {
	as := &AS{ASN: 9, Prefixes: []Prefix{
		MustParsePrefix("10.0.0.0/25"),
		MustParsePrefix("10.0.0.128/25"),
	}}
	if got := len(as.Blocks()); got != 1 {
		t.Fatalf("two /25s in one /24 should dedup to 1 block, got %d", got)
	}
}

func TestASNString(t *testing.T) {
	if ASN(25482).String() != "AS25482" {
		t.Errorf("ASN.String = %q", ASN(25482).String())
	}
}
