package netmodel

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. Using a plain uint32 keeps the
// hot scanning and simulation paths allocation-free.
type Addr uint32

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint32
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netmodel: invalid IPv4 address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netmodel: invalid IPv4 address %q: %v", s, err)
		}
		parts[i] = uint32(v)
	}
	return Addr(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for constants in tests and
// scenario scripts.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns dotted-quad notation.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xff), 10)
	return string(buf)
}

// Bytes returns the address in network byte order.
func (a Addr) Bytes() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// AddrFromBytes builds an Addr from network byte order.
func AddrFromBytes(b [4]byte) Addr {
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

// Block returns the /24 block containing the address.
func (a Addr) Block() BlockID { return BlockID(a >> 8) }

// HostByte returns the low octet of the address (its index within its /24).
func (a Addr) HostByte() uint8 { return uint8(a) }

// BlockID identifies a /24 address block: the top 24 bits of its addresses.
// BlockID(a.b.c.0/24) == a<<16 | b<<8 | c.
type BlockID uint32

// BlockSize is the number of addresses in a /24 block.
const BlockSize = 256

// First returns the network (.0) address of the block.
func (b BlockID) First() Addr { return Addr(b) << 8 }

// Addr returns the host-th address of the block.
func (b BlockID) Addr(host uint8) Addr { return Addr(b)<<8 | Addr(host) }

// Contains reports whether the address belongs to the block.
func (b BlockID) Contains(a Addr) bool { return a.Block() == b }

// String renders the block in CIDR notation, e.g. "176.8.28.0/24".
func (b BlockID) String() string { return b.First().String() + "/24" }

// ParseBlock parses "a.b.c.0/24" (or any address within the block followed by
// "/24") into a BlockID.
func ParseBlock(s string) (BlockID, error) {
	base, ok := strings.CutSuffix(s, "/24")
	if !ok {
		return 0, fmt.Errorf("netmodel: block %q: only /24 blocks are supported", s)
	}
	a, err := ParseAddr(base)
	if err != nil {
		return 0, err
	}
	return a.Block(), nil
}

// MustParseBlock is ParseBlock that panics on error.
func MustParseBlock(s string) BlockID {
	b, err := ParseBlock(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Prefix is an IPv4 CIDR prefix. Prefixes shorter than /24 are de-aggregated
// into /24 blocks for block-level analysis, mirroring how the paper counts
// "routed /24s".
type Prefix struct {
	Base Addr  // network address (low bits zero)
	Bits uint8 // prefix length, 0..32
}

var errBadPrefix = errors.New("netmodel: invalid prefix")

// NewPrefix returns the prefix base/bits with the host bits of base cleared.
func NewPrefix(base Addr, bits uint8) (Prefix, error) {
	if bits > 32 {
		return Prefix{}, errBadPrefix
	}
	return Prefix{Base: base & mask(bits), Bits: bits}, nil
}

// MustNewPrefix is NewPrefix that panics on error.
func MustNewPrefix(base Addr, bits uint8) Prefix {
	p, err := NewPrefix(base, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netmodel: prefix %q: missing /bits", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || bits > 32 {
		return Prefix{}, fmt.Errorf("netmodel: prefix %q: bad length", s)
	}
	return NewPrefix(a, uint8(bits))
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(bits uint8) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// Mask returns the netmask of the prefix.
func (p Prefix) Mask() Addr { return mask(p.Bits) }

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a&p.Mask() == p.Base }

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return uint64(1) << (32 - p.Bits) }

// NumBlocks returns the number of /24 blocks the prefix de-aggregates to.
// Prefixes longer than /24 count as one (partial) block.
func (p Prefix) NumBlocks() int {
	if p.Bits >= 24 {
		return 1
	}
	return 1 << (24 - p.Bits)
}

// Blocks de-aggregates the prefix into its /24 blocks, appending to dst and
// returning the extended slice. For prefixes longer than /24 the single
// containing block is appended.
func (p Prefix) Blocks(dst []BlockID) []BlockID {
	first := p.Base.Block()
	n := p.NumBlocks()
	for i := 0; i < n; i++ {
		dst = append(dst, first+BlockID(i))
	}
	return dst
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Base) || q.Contains(p.Base)
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(int(p.Bits))
}
