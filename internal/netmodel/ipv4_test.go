package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"176.8.28.1", 0xb0081c01, true},
		{"10.0.0.1", 0x0a000001, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, uint32(got), uint32(c.want))
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBytesRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		return AddrFromBytes(a.Bytes()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOfAddr(t *testing.T) {
	a := MustParseAddr("176.8.28.77")
	b := a.Block()
	if got := b.String(); got != "176.8.28.0/24" {
		t.Errorf("block = %s, want 176.8.28.0/24", got)
	}
	if !b.Contains(a) {
		t.Error("block does not contain its own address")
	}
	if b.Contains(MustParseAddr("176.8.29.1")) {
		t.Error("block contains foreign address")
	}
	if b.Addr(77) != a {
		t.Errorf("Addr(77) = %v, want %v", b.Addr(77), a)
	}
	if a.HostByte() != 77 {
		t.Errorf("HostByte = %d, want 77", a.HostByte())
	}
	if b.First() != MustParseAddr("176.8.28.0") {
		t.Errorf("First = %v", b.First())
	}
}

func TestParseBlock(t *testing.T) {
	b, err := ParseBlock("91.198.4.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if b != MustParseAddr("91.198.4.0").Block() {
		t.Errorf("unexpected block %v", b)
	}
	if _, err := ParseBlock("91.198.4.0/23"); err == nil {
		t.Error("ParseBlock accepted a /23")
	}
	if _, err := ParseBlock("91.198.4.0"); err == nil {
		t.Error("ParseBlock accepted a bare address")
	}
}

func TestPrefixBasics(t *testing.T) {
	p := MustParsePrefix("91.198.4.0/22")
	if p.NumAddrs() != 1024 {
		t.Errorf("NumAddrs = %d, want 1024", p.NumAddrs())
	}
	if p.NumBlocks() != 4 {
		t.Errorf("NumBlocks = %d, want 4", p.NumBlocks())
	}
	blocks := p.Blocks(nil)
	if len(blocks) != 4 {
		t.Fatalf("Blocks len = %d", len(blocks))
	}
	for i, want := range []string{"91.198.4.0/24", "91.198.5.0/24", "91.198.6.0/24", "91.198.7.0/24"} {
		if blocks[i].String() != want {
			t.Errorf("block[%d] = %s, want %s", i, blocks[i], want)
		}
	}
	if !p.Contains(MustParseAddr("91.198.7.255")) {
		t.Error("prefix should contain 91.198.7.255")
	}
	if p.Contains(MustParseAddr("91.198.8.0")) {
		t.Error("prefix should not contain 91.198.8.0")
	}
}

func TestPrefixHostBitsCleared(t *testing.T) {
	p, err := NewPrefix(MustParseAddr("10.1.2.3"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != MustParseAddr("10.1.0.0") {
		t.Errorf("Base = %v, want 10.1.0.0", p.Base)
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String = %s", p)
	}
}

func TestPrefixZeroAndFull(t *testing.T) {
	p := MustNewPrefix(0, 0)
	if !p.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("/0 must contain everything")
	}
	if p.NumAddrs() != 1<<32 {
		t.Errorf("/0 NumAddrs = %d", p.NumAddrs())
	}
	host := MustParsePrefix("10.0.0.1/32")
	if host.NumAddrs() != 1 || host.NumBlocks() != 1 {
		t.Errorf("/32 sizes wrong: %d addrs %d blocks", host.NumAddrs(), host.NumBlocks())
	}
	if _, err := NewPrefix(0, 33); err == nil {
		t.Error("NewPrefix accepted /33")
	}
}

func TestPrefixLongerThan24CountsOneBlock(t *testing.T) {
	p := MustParsePrefix("10.0.0.128/25")
	if got := p.NumBlocks(); got != 1 {
		t.Errorf("/25 NumBlocks = %d, want 1", got)
	}
	bs := p.Blocks(nil)
	if len(bs) != 1 || bs[0] != MustParseBlock("10.0.0.0/24") {
		t.Errorf("/25 Blocks = %v", bs)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/16")
	b := MustParsePrefix("10.0.4.0/24")
	c := MustParsePrefix("10.1.0.0/16")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixContainsConsistentWithBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		bits := uint8(rng.Intn(9) + 16) // /16../24
		base := Addr(rng.Uint32())
		p := MustNewPrefix(base, bits)
		for _, blk := range p.Blocks(nil) {
			if !p.Contains(blk.First()) {
				t.Fatalf("prefix %v does not contain its block %v", p, blk)
			}
		}
	}
}
