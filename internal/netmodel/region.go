// Package netmodel defines the shared address-space model used across the
// country monitor: IPv4 prefixes and /24 blocks, Ukraine's administrative
// regions (oblasts), and the autonomous-system / address-block entities that
// scanning, routing, geolocation and analysis code all agree on.
//
// The paper (§2.1) analyses 26 regions: 24 oblasts, the two cities with
// special status (Kyiv, Sevastopol) and the autonomous region of Crimea, with
// Kyiv city and Kyiv oblast merged into a single region.
package netmodel

import "fmt"

// Region identifies one of the 26 regions of Ukraine used in the analysis.
// The zero value RegionNone means "no region / outside Ukraine".
type Region uint8

// The 26 regions, in the alphabetical order the paper's figures use.
const (
	RegionNone Region = iota
	Cherkasy
	Chernihiv
	Chernivtsi
	Crimea
	Dnipropetrovsk
	Donetsk
	IvanoFrankivsk
	Kharkiv
	Kherson
	Khmelnytskyi
	Kirovohrad
	Kyiv
	Luhansk
	Lviv
	Mykolaiv
	Odessa
	Poltava
	Rivne
	Sevastopol
	Sumy
	Ternopil
	Transcarpathia
	Vinnytsia
	Volyn
	Zaporizhzhia
	Zhytomyr

	numRegions
)

// NumRegions is the number of analysed regions (26).
const NumRegions = int(numRegions) - 1

var regionNames = [...]string{
	RegionNone:     "None",
	Cherkasy:       "Cherkasy",
	Chernihiv:      "Chernihiv",
	Chernivtsi:     "Chernivtsi",
	Crimea:         "Crimea",
	Dnipropetrovsk: "Dnipropetrovsk",
	Donetsk:        "Donetsk",
	IvanoFrankivsk: "Ivano-Frankivsk",
	Kharkiv:        "Kharkiv",
	Kherson:        "Kherson",
	Khmelnytskyi:   "Khmelnytskyi",
	Kirovohrad:     "Kirovohrad",
	Kyiv:           "Kyiv",
	Luhansk:        "Luhansk",
	Lviv:           "Lviv",
	Mykolaiv:       "Mykolaiv",
	Odessa:         "Odessa",
	Poltava:        "Poltava",
	Rivne:          "Rivne",
	Sevastopol:     "Sevastopol",
	Sumy:           "Sumy",
	Ternopil:       "Ternopil",
	Transcarpathia: "Transcarpathia",
	Vinnytsia:      "Vinnytsia",
	Volyn:          "Volyn",
	Zaporizhzhia:   "Zaporizhzhia",
	Zhytomyr:       "Zhytomyr",
}

// String returns the region's English name as used in the paper's figures.
func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("Region(%d)", uint8(r))
}

// Valid reports whether r names one of the 26 analysed regions.
func (r Region) Valid() bool { return r > RegionNone && r < numRegions }

// Frontline reports whether the region is one of the seven frontline oblasts
// (§2.1): Chernihiv, Donetsk, Kharkiv, Kherson, Luhansk, Sumy, Zaporizhzhia.
func (r Region) Frontline() bool {
	switch r {
	case Chernihiv, Donetsk, Kharkiv, Kherson, Luhansk, Sumy, Zaporizhzhia:
		return true
	}
	return false
}

// OccupiedSince2014 reports whether the region has been occupied since 2014
// and is connected to the Russian power grid (Crimea, Sevastopol); these did
// not experience the winter power-driven outages (§5.1).
func (r Region) OccupiedSince2014() bool {
	return r == Crimea || r == Sevastopol
}

// Regions returns all 26 regions in figure order.
func Regions() []Region {
	rs := make([]Region, 0, NumRegions)
	for r := RegionNone + 1; r < numRegions; r++ {
		rs = append(rs, r)
	}
	return rs
}

// FrontlineRegions returns the seven frontline oblasts.
func FrontlineRegions() []Region {
	var rs []Region
	for _, r := range Regions() {
		if r.Frontline() {
			rs = append(rs, r)
		}
	}
	return rs
}

// NonFrontlineRegions returns the 19 non-frontline regions.
func NonFrontlineRegions() []Region {
	var rs []Region
	for _, r := range Regions() {
		if !r.Frontline() {
			rs = append(rs, r)
		}
	}
	return rs
}

// RegionByName resolves a region from its English name (as printed by
// String). It returns RegionNone, false for unknown names.
func RegionByName(name string) (Region, bool) {
	for r := RegionNone + 1; r < numRegions; r++ {
		if regionNames[r] == name {
			return r, true
		}
	}
	return RegionNone, false
}
