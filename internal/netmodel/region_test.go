package netmodel

import "testing"

func TestRegionCounts(t *testing.T) {
	if NumRegions != 26 {
		t.Fatalf("NumRegions = %d, want 26 (the paper's 24 oblasts + Crimea + Sevastopol, Kyiv merged)", NumRegions)
	}
	if got := len(Regions()); got != 26 {
		t.Fatalf("len(Regions()) = %d", got)
	}
	if got := len(FrontlineRegions()); got != 7 {
		t.Fatalf("frontline regions = %d, want 7", got)
	}
	if got := len(NonFrontlineRegions()); got != 19 {
		t.Fatalf("non-frontline regions = %d, want 19", got)
	}
}

func TestFrontlineSet(t *testing.T) {
	want := map[Region]bool{
		Chernihiv: true, Donetsk: true, Kharkiv: true, Kherson: true,
		Luhansk: true, Sumy: true, Zaporizhzhia: true,
	}
	for _, r := range Regions() {
		if r.Frontline() != want[r] {
			t.Errorf("%v.Frontline() = %v, want %v", r, r.Frontline(), want[r])
		}
	}
}

func TestRegionStringAndLookup(t *testing.T) {
	for _, r := range Regions() {
		if !r.Valid() {
			t.Errorf("%v not valid", r)
		}
		got, ok := RegionByName(r.String())
		if !ok || got != r {
			t.Errorf("RegionByName(%q) = %v,%v", r.String(), got, ok)
		}
	}
	if RegionNone.Valid() {
		t.Error("RegionNone must be invalid")
	}
	if _, ok := RegionByName("Atlantis"); ok {
		t.Error("unknown region resolved")
	}
	if s := Region(200).String(); s != "Region(200)" {
		t.Errorf("out-of-range String = %q", s)
	}
	if IvanoFrankivsk.String() != "Ivano-Frankivsk" {
		t.Errorf("hyphenated name wrong: %q", IvanoFrankivsk.String())
	}
}

func TestOccupiedSince2014(t *testing.T) {
	for _, r := range Regions() {
		want := r == Crimea || r == Sevastopol
		if r.OccupiedSince2014() != want {
			t.Errorf("%v.OccupiedSince2014() = %v", r, r.OccupiedSince2014())
		}
	}
}
