package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured campaign event: a round starting or ending, a
// checkpoint written, a retry taken, a detection firing. Seq is a
// bus-assigned monotone sequence number, so pollers can resume from the
// last event they saw.
type Event struct {
	Seq    uint64         `json:"seq"`
	Time   time.Time      `json:"time"`
	Kind   string         `json:"kind"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Bus is a bounded in-memory event stream: every published event lands in a
// ring of the most recent events (the authority pollers replay from) and is
// fanned out to live subscribers. A subscriber that cannot keep up has
// events dropped from its channel, never from the ring — slow consumers
// must re-sync via Since. Publish on a nil bus is a no-op.
type Bus struct {
	mu      sync.Mutex
	seq     uint64
	ring    []Event // capacity-bounded, oldest overwritten
	next    int
	filled  bool
	subs    map[uint64]chan Event
	nextSub uint64
	// drops counts events discarded from lagging subscribers' channels
	// (never from the ring). dropCounter, when set via CountDrops, mirrors
	// every drop into a registry metric.
	drops       atomic.Uint64
	dropCounter atomic.Pointer[Counter]
}

// DefaultBusCapacity is the ring size when NewBus is called with cap <= 0.
const DefaultBusCapacity = 1024

// NewBus builds a bus retaining the last `capacity` events.
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus{ring: make([]Event, capacity), subs: make(map[uint64]chan Event)}
}

// Publish stamps and emits one event, returning it (with Seq assigned). On
// a nil bus the event is still constructed and returned — un-sequenced —
// so callers can hand it to local hooks without a bus attached.
func (b *Bus) Publish(kind string, fields map[string]any) Event {
	ev := Event{Time: time.Now().UTC(), Kind: kind, Fields: fields}
	if b == nil {
		return ev
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	b.ring[b.next] = ev
	b.next = (b.next + 1) % len(b.ring)
	if b.next == 0 {
		b.filled = true
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // subscriber lagging: drop; the ring keeps the event
			b.drops.Add(1)
			b.dropCounter.Load().Inc()
		}
	}
	b.mu.Unlock()
	return ev
}

// Dropped returns the total number of per-subscriber drops: events a lagging
// subscriber's channel could not absorb. The events themselves are never
// lost — the ring retains them and SSE clients re-sync via Since — so this
// is a congestion signal, not a data-loss count.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.drops.Load()
}

// CountDrops mirrors every future subscriber drop into c (typically a
// `bus_dropped_events_total` counter registered by the serving layer).
func (b *Bus) CountDrops(c *Counter) {
	if b == nil {
		return
	}
	b.dropCounter.Store(c)
}

// Seq returns the sequence number of the most recent event.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Since returns the retained events with Seq > seq, oldest first. Events
// older than the ring window are gone; callers detect the gap when the
// first returned Seq exceeds seq+1.
func (b *Bus) Since(seq uint64) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	appendFrom := func(evs []Event) {
		for _, ev := range evs {
			if ev.Seq > seq {
				out = append(out, ev)
			}
		}
	}
	if b.filled {
		appendFrom(b.ring[b.next:])
	}
	appendFrom(b.ring[:b.next])
	return out
}

// Subscribe returns a channel of future events (buffered by buf, minimum 1)
// and a cancel function that must be called to release the subscription.
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if b == nil {
		return nil, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = ch
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}
