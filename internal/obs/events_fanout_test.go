package obs

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBusDropAccounting forces per-subscriber drops (a full channel that is
// never drained) and checks both the bus counter and the mirrored metric.
func TestBusDropAccounting(t *testing.T) {
	bus := NewBus(64)
	reg := NewRegistry()
	dropped := reg.Counter("bus_dropped_events_total", "test")
	bus.CountDrops(dropped)

	_, cancel := bus.Subscribe(2) // never drained
	defer cancel()
	for i := 0; i < 10; i++ {
		bus.Publish("tick", nil)
	}
	// 2 events fit the channel; 8 must have been dropped from it.
	if got := bus.Dropped(); got != 8 {
		t.Fatalf("Dropped() = %d, want 8", got)
	}
	if got := dropped.Value(); got != 8 {
		t.Fatalf("mirrored drop counter = %d, want 8", got)
	}
	// The ring kept everything: a replay sees all 10.
	if got := len(bus.Since(0)); got != 10 {
		t.Fatalf("Since(0) returned %d events, want 10", got)
	}
}

// TestBusDroppedNilSafe checks the nil-bus and nil-counter paths.
func TestBusDroppedNilSafe(t *testing.T) {
	var bus *Bus
	if bus.Dropped() != 0 {
		t.Fatal("nil bus Dropped() != 0")
	}
	bus.CountDrops(nil) // must not panic
	real := NewBus(4)
	real.CountDrops(nil)
	_, cancel := real.Subscribe(1)
	defer cancel()
	real.Publish("a", nil)
	real.Publish("b", nil) // drop with nil mirror counter: must not panic
	if real.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", real.Dropped())
	}
}

// sseClient reads one SSE stream, parsing "id:" lines into sequence numbers.
type sseClient struct {
	scanner *bufio.Scanner
}

func (c *sseClient) nextSeq(t *testing.T) uint64 {
	t.Helper()
	for c.scanner.Scan() {
		line := c.scanner.Text()
		if rest, ok := strings.CutPrefix(line, "id: "); ok {
			seq, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			return seq
		}
	}
	t.Fatalf("SSE stream ended early: %v", c.scanner.Err())
	return 0
}

// TestSSEBacklogReplayConcurrentPublish hammers the bus from several
// publishers while an SSE client connects mid-stream, and asserts the client
// observes a strictly gapless, ordered sequence — the subscribe-before-replay
// ordering plus the seq guard make the backlog/live handover seamless.
func TestSSEBacklogReplayConcurrentPublish(t *testing.T) {
	bus := NewBus(4096)
	// Pre-populate a backlog.
	for i := 0; i < 50; i++ {
		bus.Publish("pre", nil)
	}
	srv := httptest.NewServer(EventsHandler(bus))
	defer srv.Close()

	const publishers, perPublisher = 4, 100
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perPublisher; i++ {
				bus.Publish("live", nil)
			}
		}()
	}

	resp, err := http.Get(srv.URL + "?since=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	client := &sseClient{scanner: bufio.NewScanner(resp.Body)}

	// Read a few backlog events, then unleash the publishers while still
	// reading: replay and live delivery interleave underneath us.
	for want := uint64(1); want <= 10; want++ {
		if got := client.nextSeq(t); got != want {
			t.Fatalf("seq = %d, want %d", got, want)
		}
	}
	close(start)
	total := uint64(50 + publishers*perPublisher)
	for want := uint64(11); want <= total; want++ {
		if got := client.nextSeq(t); got != want {
			t.Fatalf("seq = %d, want %d (gap or reorder)", got, want)
		}
	}
	wg.Wait()
}

// TestSSESlowSubscriberGapReplay makes the per-subscriber channel overflow
// while the client is stalled, then checks the stream still delivers every
// event in order: the handler detects the sequence gap and re-syncs from the
// ring.
func TestSSESlowSubscriberGapReplay(t *testing.T) {
	bus := NewBus(4096)
	bus.Publish("pre", nil)
	srv := httptest.NewServer(EventsHandler(bus))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?since=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	client := &sseClient{scanner: bufio.NewScanner(resp.Body)}
	if got := client.nextSeq(t); got != 1 {
		t.Fatalf("first seq = %d, want 1", got)
	}

	// The handler is now parked in its live select. Flood well past the
	// 64-slot subscriber buffer; the kernel socket buffer absorbs whatever
	// the handler manages to write, but it cannot drain 500 events' worth
	// of channel sends synchronously, so drops are guaranteed.
	const flood = 500
	for i := 0; i < flood; i++ {
		bus.Publish("flood", map[string]any{"i": i})
	}
	waitDeadline := time.Now().Add(5 * time.Second)
	for bus.Dropped() == 0 {
		if time.Now().After(waitDeadline) {
			t.Skip("no drops provoked; socket drained faster than publish")
		}
		bus.Publish("flood", nil)
	}
	// Every event must still arrive, in order, via gap replay from the ring.
	last := uint64(1)
	for last < 1+flood {
		got := client.nextSeq(t)
		if got != last+1 {
			t.Fatalf("seq = %d, want %d (gap replay failed)", got, last+1)
		}
		last = got
	}
	if bus.Dropped() == 0 {
		t.Fatal("expected subscriber drops")
	}
}

// TestMetricsExposesDrops wires the drop mirror into a registry the way the
// serving layer does and checks the counter shows up in the /metrics text.
func TestMetricsExposesDrops(t *testing.T) {
	bus := NewBus(16)
	reg := NewRegistry()
	bus.CountDrops(reg.Counter("bus_dropped_events_total", "drops"))
	_, cancel := bus.Subscribe(1)
	defer cancel()
	bus.Publish("a", nil)
	bus.Publish("b", nil)

	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	want := fmt.Sprintf("bus_dropped_events_total %d", bus.Dropped())
	if bus.Dropped() == 0 || !strings.Contains(body, want) {
		t.Fatalf("metrics output missing %q:\n%s", want, body)
	}
}
