package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (counters and gauges as-is, histograms as summaries with window
// quantiles), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.snapshot(func(f *family, children []*child) {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.labels != nil:
			for _, ch := range children {
				if f.kind == kindGauge {
					fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(f.labels, ch.values), ch.g.Value())
				} else {
					fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(f.labels, ch.values), ch.c.Value())
				}
			}
		case f.kind == kindCounter:
			fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
		case f.kind == kindGauge:
			fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Value())
		case f.kind == kindSummary:
			s := f.hist.Snapshot()
			fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", f.name, promFloat(s.P50))
			fmt.Fprintf(w, "%s{quantile=\"0.95\"} %s\n", f.name, promFloat(s.P95))
			fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", f.name, promFloat(s.P99))
			fmt.Fprintf(w, "%s_sum %s\n", f.name, promFloat(s.Sum))
			fmt.Fprintf(w, "%s_count %d\n", f.name, s.Count)
		}
	})
}

func promLabels(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(values[i]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonSeries is one labeled sample in the JSON export: counter children
// carry `value`, gauge children carry `gauge`.
type jsonSeries struct {
	Labels map[string]string `json:"labels"`
	Value  *uint64           `json:"value,omitempty"`
	Gauge  *int64            `json:"gauge,omitempty"`
}

// jsonMetric is one metric family in the JSON export.
type jsonMetric struct {
	Type    string        `json:"type"`
	Help    string        `json:"help,omitempty"`
	Value   *uint64       `json:"value,omitempty"`
	Gauge   *int64        `json:"gauge,omitempty"`
	Summary *HistSnapshot `json:"summary,omitempty"`
	Series  []jsonSeries  `json:"series,omitempty"`
}

// WriteJSON writes the registry as a JSON object keyed by metric name.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]jsonMetric)
	if r != nil {
		r.snapshot(func(f *family, children []*child) {
			m := jsonMetric{Type: f.kind, Help: f.help}
			switch {
			case f.labels != nil:
				m.Series = make([]jsonSeries, 0, len(children))
				for _, ch := range children {
					labels := make(map[string]string, len(f.labels))
					for i, n := range f.labels {
						labels[n] = ch.values[i]
					}
					s := jsonSeries{Labels: labels}
					if f.kind == kindGauge {
						g := ch.g.Value()
						s.Gauge = &g
					} else {
						v := ch.c.Value()
						s.Value = &v
					}
					m.Series = append(m.Series, s)
				}
			case f.kind == kindCounter:
				v := f.counter.Value()
				m.Value = &v
			case f.kind == kindGauge:
				v := f.gauge.Value()
				m.Gauge = &v
			case f.kind == kindSummary:
				s := f.hist.Snapshot()
				m.Summary = &s
			}
			out[f.name] = m
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// MetricsHandler serves the registry: Prometheus text by default, JSON with
// ?format=json or an Accept: application/json header.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
			return
		}
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// EventsHandler serves the bus. The default response is a server-sent-event
// stream: the retained backlog after ?since=N (0 = everything retained),
// then live events until the client disconnects. With ?format=json it is a
// long-poll instead: events after ?since are returned immediately, or —
// when there are none — the request waits up to ?wait (a Go duration,
// default 0) for the next event.
func EventsHandler(bus *Bus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if bus == nil {
			http.Error(w, "no event bus attached", http.StatusServiceUnavailable)
			return
		}
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		if wantsJSON(r) {
			serveEventsJSON(w, r, bus, since)
			return
		}
		serveEventsSSE(w, r, bus, since)
	})
}

func serveEventsJSON(w http.ResponseWriter, r *http.Request, bus *Bus, since uint64) {
	evs := bus.Since(since)
	if len(evs) == 0 {
		if wait, err := time.ParseDuration(r.URL.Query().Get("wait")); err == nil && wait > 0 {
			ch, cancel := bus.Subscribe(1)
			defer cancel()
			select {
			case <-ch:
				evs = bus.Since(since)
			case <-time.After(wait):
			case <-r.Context().Done():
				return
			}
		}
	}
	if evs == nil {
		evs = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(evs)
}

func serveEventsSSE(w http.ResponseWriter, r *http.Request, bus *Bus, since uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported; use ?format=json", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Subscribe before replaying the backlog so no event can fall between
	// the two; the seq guard below drops the overlap. The buffer is small —
	// at 10k SSE clients per-subscriber memory dominates — because a client
	// that overruns it just re-syncs from the ring via the gap replay below.
	ch, cancel := bus.Subscribe(64)
	defer cancel()
	last := since
	writeEvent := func(ev Event) bool {
		if ev.Seq <= last {
			return true
		}
		last = ev.Seq
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		_, werr := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, data)
		flusher.Flush()
		return werr == nil
	}
	for _, ev := range bus.Since(since) {
		if !writeEvent(ev) {
			return
		}
	}
	// Drops from this subscriber's channel are only *detected* when a later
	// event arrives; if the bus goes quiet right after an overrun, the gap
	// would persist. The re-sync ticker bounds that: at worst one period
	// after quiescence the client is whole again.
	resync := time.NewTicker(sseResyncInterval)
	defer resync.Stop()
	for {
		select {
		case ev := <-ch:
			if ev.Seq > last+1 {
				// Events were dropped from this subscriber's channel (slow
				// consumer); re-sync from the authoritative ring. The replay
				// includes ev itself, and writeEvent skips anything at or
				// below last, so nothing is duplicated or lost (unless the
				// gap outran the ring window — then the stream resumes at
				// the oldest retained event, like any ?since replay).
				for _, missed := range bus.Since(last) {
					if !writeEvent(missed) {
						return
					}
				}
				continue
			}
			if !writeEvent(ev) {
				return
			}
		case <-resync.C:
			if bus.Seq() > last {
				for _, missed := range bus.Since(last) {
					if !writeEvent(missed) {
						return
					}
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// sseResyncInterval is how often an idle SSE stream checks the ring for
// events its subscriber channel dropped.
const sseResyncInterval = 250 * time.Millisecond

func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// Handler bundles the standalone observability server: /metrics, /events,
// and an index at / listing both. This is what the CLIs' -metrics flag
// serves; embedders with their own mux mount MetricsHandler and
// EventsHandler directly.
func Handler(reg *Registry, bus *Bus) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/events", EventsHandler(bus))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "countrymon observability")
		fmt.Fprintln(w, "")
		fmt.Fprintln(w, "  /metrics                 Prometheus text (add ?format=json for JSON)")
		fmt.Fprintln(w, "  /events                  live SSE stream (?since=N to replay)")
		fmt.Fprintln(w, "  /events?format=json      long-poll (?since=N&wait=30s)")
	})
	return mux
}
