// Package obs is the campaign's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, windowed histograms with
// p50/p95/p99, labeled families) and a structured event bus, exported over
// HTTP as Prometheus text, JSON and server-sent events.
//
// The paper's monitor ran unattended for three years and its operators had
// to distinguish vantage-side failure from real disruption (§3's "ongoing"
// flag, ISP-availability sensing); this package gives the reproduction the
// same live self-diagnosis. Every instrument is nil-safe — methods on a nil
// *Counter, *Gauge, *Histogram, *CounterVec or *Bus are no-ops — so hot
// paths carry their instrumentation unconditionally and pay only a nil
// check when no registry is attached (pinned by the package's
// no-allocation benchmark).
//
// Typical wiring:
//
//	reg := obs.NewRegistry()
//	bus := obs.NewBus(1024)
//	sent := reg.Counter("scanner_probes_sent_total", "Probes transmitted.")
//	...
//	http.ListenAndServe(":9090", obs.Handler(reg, bus))
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops, so disabled instrumentation costs one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultHistogramWindow is the observation window when Registry.Histogram
// is called with window <= 0.
const DefaultHistogramWindow = 512

// Histogram keeps the last `window` observations in a ring plus cumulative
// count and sum, and derives p50/p95/p99 over the window on demand — the
// classic windowed summary: recent enough to reflect the live campaign,
// bounded enough to never grow. All methods are nil-safe no-ops.
type Histogram struct {
	mu    sync.Mutex
	ring  []float64
	next  int
	count uint64
	sum   float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ring[h.next] = v
	h.next = (h.next + 1) % len(h.ring)
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveSince records the seconds elapsed since t0. Use as
// `defer h.ObserveSince(time.Now())` to time a function body.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// HistSnapshot is a histogram's exported state: cumulative count and sum
// plus window quantiles.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns the cumulative count/sum and the window's p50/p95/p99.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	n := int(h.count)
	if n > len(h.ring) {
		n = len(h.ring)
	}
	vals := make([]float64, n)
	copy(vals, h.ring[:n])
	snap := HistSnapshot{Count: h.count, Sum: h.sum}
	h.mu.Unlock()
	if n == 0 {
		return snap
	}
	sort.Float64s(vals)
	quant := func(p float64) float64 {
		i := int(p*float64(n-1) + 0.5)
		return vals[i]
	}
	snap.P50, snap.P95, snap.P99 = quant(0.50), quant(0.95), quant(0.99)
	return snap
}

// CounterVec is a labeled counter family. With resolves one label
// combination to its Counter; resolve once at setup and keep the pointer —
// a map lookup has no place on a per-packet path.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label values (created on first
// use). It returns nil — a valid, inert Counter receiver — on a nil vec or
// a label-arity mismatch.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.fam.labels) {
		return nil
	}
	key := strings.Join(values, "\x00")
	f := v.fam
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...), c: &Counter{}}
		f.children[key] = ch
		f.childOrder = append(f.childOrder, key)
	}
	return ch.c
}

// GaugeVec is a labeled gauge family: one instantaneous value per label
// combination (e.g. a health score per vantage). With resolves a label
// combination to its Gauge; resolve once at setup and keep the pointer.
type GaugeVec struct {
	fam *family
}

// With returns the gauge for the given label values (created on first use).
// It returns nil — a valid, inert Gauge receiver — on a nil vec or a
// label-arity mismatch.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || len(values) != len(v.fam.labels) {
		return nil
	}
	key := strings.Join(values, "\x00")
	f := v.fam
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...), g: &Gauge{}}
		f.children[key] = ch
		f.childOrder = append(f.childOrder, key)
	}
	return ch.g
}

// metric kinds, mirrored in the export formats.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindSummary = "summary"
)

// family is one registered metric name: a plain instrument or a labeled set
// of children.
type family struct {
	name, help string
	kind       string
	labels     []string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	mu         sync.Mutex // children map (label resolution is not hot)
	children   map[string]*child
	childOrder []string
}

// child is one label combination of a family; exactly one of c/g is set,
// matching the family's kind.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
}

// Registry holds named metric families in registration order. Registration
// is idempotent — re-registering a name with the same shape returns the
// existing instrument, so independent subsystems can share one registry —
// and panics on a shape conflict, which is a programming error. All
// registration methods are nil-safe and return nil instruments on a nil
// registry, giving every instrumented package a single code path.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the existing family for name (validating its shape) or
// inserts a fresh one built by mk.
func (r *Registry) register(name, kind string, labels []string, mk func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := mk()
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or returns) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, kindCounter, nil, func() *family {
		return &family{name: name, help: help, kind: kindCounter, counter: &Counter{}}
	})
	return f.counter
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, kindGauge, nil, func() *family {
		return &family{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}
	})
	return f.gauge
}

// Histogram registers (or returns) a windowed histogram (window <= 0 uses
// DefaultHistogramWindow).
func (r *Registry) Histogram(name, help string, window int) *Histogram {
	if r == nil {
		return nil
	}
	if window <= 0 {
		window = DefaultHistogramWindow
	}
	f := r.register(name, kindSummary, nil, func() *family {
		return &family{name: name, help: help, kind: kindSummary,
			hist: &Histogram{ring: make([]float64, window)}}
	})
	return f.hist
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	f := r.register(name, kindCounter, labels, func() *family {
		return &family{name: name, help: help, kind: kindCounter,
			labels: append([]string(nil), labels...), children: make(map[string]*child)}
	})
	return &CounterVec{fam: f}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	f := r.register(name, kindGauge, labels, func() *family {
		return &family{name: name, help: help, kind: kindGauge,
			labels: append([]string(nil), labels...), children: make(map[string]*child)}
	})
	return &GaugeVec{fam: f}
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// snapshot walks families in registration order under the registry lock,
// handing each to visit with its children (if labeled) resolved.
func (r *Registry) snapshot(visit func(f *family, children []*child)) {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, len(order))
	for i, name := range order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		var chs []*child
		if f.labels != nil {
			f.mu.Lock()
			chs = make([]*child, len(f.childOrder))
			for i, key := range f.childOrder {
				chs[i] = f.children[key]
			}
			f.mu.Unlock()
		}
		visit(f, chs)
	}
}
