package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Idempotent re-registration returns the same instrument.
	if reg.Counter("test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := reg.Gauge("test_round", "round")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestRegistryShapeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("test_x", "")
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "lat", 128)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 < 90 || s.P95 > 99 {
		t.Errorf("p95 = %v", s.P95)
	}
	if s.P99 < 95 || s.P99 > 100 {
		t.Errorf("p99 = %v", s.P99)
	}
}

func TestHistogramWindowSlides(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_win", "", 4)
	for i := 0; i < 100; i++ {
		h.Observe(1000) // old observations that must age out
	}
	for i := 0; i < 4; i++ {
		h.Observe(1)
	}
	s := h.Snapshot()
	if s.P99 != 1 {
		t.Fatalf("window did not slide: p99 = %v", s.P99)
	}
	if s.Count != 104 {
		t.Fatalf("cumulative count = %d", s.Count)
	}
}

func TestCounterVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("test_events_total", "", "kind")
	a := v.With("drop")
	a.Add(3)
	if v.With("drop") != a {
		t.Fatal("same labels resolved to a different counter")
	}
	v.With("stall").Inc()
	if a.Value() != 3 {
		t.Fatalf("drop = %d", a.Value())
	}
	if v.With("drop", "extra") != nil {
		t.Fatal("label-arity mismatch did not return nil")
	}
}

func TestGaugeVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("test_health", "", "vantage")
	a := v.With("v0")
	a.Set(750)
	if v.With("v0") != a {
		t.Fatal("same labels resolved to a different gauge")
	}
	v.With("v1").Set(-3)
	if a.Value() != 750 || v.With("v1").Value() != -3 {
		t.Fatalf("gauge children = %d, %d", a.Value(), v.With("v1").Value())
	}
	if v.With("v0", "extra") != nil {
		t.Fatal("label-arity mismatch did not return nil")
	}
	var nilVec *GaugeVec
	nilVec.With("x").Set(1) // must not panic

	var prom strings.Builder
	reg.WritePrometheus(&prom)
	for _, want := range []string{
		"# TYPE test_health gauge",
		`test_health{vantage="v0"} 750`,
		`test_health{vantage="v1"} -3`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus export missing %q\n%s", want, prom.String())
		}
	}

	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type   string `json:"type"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Gauge  *int64            `json:"gauge"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	m := out["test_health"]
	if m.Type != "gauge" || len(m.Series) != 2 {
		t.Fatalf("test_health = %+v", m)
	}
	if m.Series[0].Gauge == nil || *m.Series[0].Gauge != 750 || m.Series[0].Labels["vantage"] != "v0" {
		t.Fatalf("gauge series = %+v", m.Series)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		v *CounterVec
		b *Bus
		r *Registry
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	v.With("x").Inc()
	b.Publish("noop", nil)
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil ||
		r.Histogram("x", "", 0) != nil || r.CounterVec("x", "", "l") != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instrument recorded a value")
	}
}

// TestDisabledPathNoAllocs pins the tentpole's overhead contract: with no
// registry attached (nil instruments), the hot-path operations allocate
// nothing.
func TestDisabledPathNoAllocs(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	vec := (*Registry)(nil).CounterVec("x", "", "kind")
	child := vec.With("drop") // nil
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(64)
		g.Set(3)
		h.Observe(0.5)
		child.Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %v times per op", allocs)
	}
}

// BenchmarkDisabledCounter and BenchmarkEnabledCounter bracket the cost of
// one instrumentation point with and without a registry; bench-diff tracks
// them so the nil fast path stays free.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() == 0 {
		b.Fatal("counter did not count")
	}
}

func TestBusRingAndSince(t *testing.T) {
	bus := NewBus(4)
	for i := 0; i < 10; i++ {
		bus.Publish("tick", map[string]any{"i": i})
	}
	evs := bus.Since(0)
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
	if got := bus.Since(9); len(got) != 1 || got[0].Seq != 10 {
		t.Fatalf("Since(9) = %+v", got)
	}
	if bus.Seq() != 10 {
		t.Fatalf("Seq() = %d", bus.Seq())
	}
}

func TestBusSubscribe(t *testing.T) {
	bus := NewBus(16)
	ch, cancel := bus.Subscribe(8)
	defer cancel()
	bus.Publish("round_start", map[string]any{"round": 1})
	select {
	case ev := <-ch:
		if ev.Kind != "round_start" || ev.Fields["round"] != 1 {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber received nothing")
	}
	cancel()
	bus.Publish("after_cancel", nil)
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("cancelled subscriber received %+v", ev)
		}
	default:
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	bus := NewBus(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				bus.Publish("tick", nil)
			}
		}()
	}
	wg.Wait()
	if bus.Seq() != 800 {
		t.Fatalf("seq = %d, want 800", bus.Seq())
	}
}

func TestPrometheusExport(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_sent_total", "Probes transmitted.").Add(42)
	reg.Gauge("test_round", "Current round.").Set(7)
	reg.Histogram("test_dur_seconds", "Durations.", 16).Observe(0.25)
	reg.CounterVec("test_faults_total", "Faults.", "kind").With("drop").Add(3)

	srv := httptest.NewServer(MetricsHandler(reg))
	defer srv.Close()
	body := mustGet(t, srv.URL)
	for _, want := range []string{
		"# TYPE test_sent_total counter",
		"test_sent_total 42",
		"test_round 7",
		"# TYPE test_dur_seconds summary",
		`test_dur_seconds{quantile="0.5"} 0.25`,
		"test_dur_seconds_count 1",
		`test_faults_total{kind="drop"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus export missing %q\n%s", want, body)
		}
	}
}

func TestJSONExport(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_sent_total", "").Add(42)
	reg.CounterVec("test_faults_total", "", "kind").With("drop").Add(3)

	srv := httptest.NewServer(MetricsHandler(reg))
	defer srv.Close()
	body := mustGet(t, srv.URL+"?format=json")
	var out map[string]struct {
		Type   string  `json:"type"`
		Value  *uint64 `json:"value"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  uint64            `json:"value"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if m := out["test_sent_total"]; m.Value == nil || *m.Value != 42 {
		t.Fatalf("test_sent_total = %+v", m)
	}
	if m := out["test_faults_total"]; len(m.Series) != 1 || m.Series[0].Value != 3 ||
		m.Series[0].Labels["kind"] != "drop" {
		t.Fatalf("test_faults_total = %+v", m)
	}
}

func TestEventsJSONLongPoll(t *testing.T) {
	bus := NewBus(16)
	bus.Publish("a", nil)
	bus.Publish("b", nil)
	srv := httptest.NewServer(EventsHandler(bus))
	defer srv.Close()

	var evs []Event
	if err := json.Unmarshal([]byte(mustGet(t, srv.URL+"?format=json&since=1")), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != "b" {
		t.Fatalf("since=1 events = %+v", evs)
	}

	// Long-poll: publish concurrently while a ?wait request is pending.
	done := make(chan []Event, 1)
	go func() {
		var got []Event
		_ = json.Unmarshal([]byte(mustGet(t, srv.URL+"?format=json&since=2&wait=5s")), &got)
		done <- got
	}()
	time.Sleep(50 * time.Millisecond)
	bus.Publish("c", nil)
	select {
	case got := <-done:
		if len(got) != 1 || got[0].Kind != "c" {
			t.Fatalf("long-poll events = %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never returned")
	}
}

func TestEventsSSE(t *testing.T) {
	bus := NewBus(16)
	bus.Publish("round_start", map[string]any{"round": 0})
	bus.Publish("round_scanned", map[string]any{"round": 0})

	req := httptest.NewRequest("GET", "/events?since=0", nil)
	rec := httptest.NewRecorder()
	// The backlog is replayed synchronously before the live loop blocks on
	// the request context, so serving an already-cancelled request delivers
	// the retained events and returns — no concurrent body access.
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	EventsHandler(bus).ServeHTTP(rec, req.WithContext(ctx))
	body := rec.Body.String()
	if strings.Count(body, "data: ") != 2 {
		t.Fatalf("SSE backlog not delivered:\n%s", body)
	}
	if !strings.Contains(body, "event: round_start") || !strings.Contains(body, `"kind":"round_scanned"`) {
		t.Fatalf("SSE body:\n%s", body)
	}
}

func TestHandlerIndexAndNilBackends(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	if !strings.Contains(mustGet(t, srv.URL+"/"), "/metrics") {
		t.Error("index does not list endpoints")
	}
	for _, p := range []string{"/metrics", "/events"} {
		resp, err := srv.Client().Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Errorf("%s with nil backend: status %d, want 503", p, resp.StatusCode)
		}
	}
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
