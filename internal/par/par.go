// Package par is the deterministic worker-pool layer behind the analysis
// pipeline's hot paths (store generation, classification, signal building,
// the Trinocular baseline, experiment warm-up).
//
// Determinism contract: every helper assigns each index to exactly one
// worker and collects results by index, so as long as the per-index function
// is a pure function of its index (plus immutable shared state) and writes
// only state owned by that index, the outcome is identical at any worker
// count — including 1 — and across repeated runs. Scheduling only changes
// *when* an index is processed, never *what* it computes or where the result
// lands. Aggregations that are order-sensitive (floating-point sums) must
// happen in the ordered collection step, not inside workers.
//
// The pool width defaults to GOMAXPROCS and can be pinned with the
// COUNTRYMON_WORKERS environment variable (useful for the determinism tests
// and for single-core reference runs).
package par

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that pins the pool width.
const EnvWorkers = "COUNTRYMON_WORKERS"

var workersWarnOnce sync.Once

// Workers resolves the pool width: COUNTRYMON_WORKERS when set to a positive
// integer, otherwise GOMAXPROCS. A malformed value is reported on stderr
// once and then ignored rather than silently shrinking the pool.
func Workers() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
		workersWarnOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "countrymon: ignoring %s=%q (want a positive integer)\n", EnvWorkers, os.Getenv(EnvWorkers))
		})
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across Workers() goroutines and
// returns when all calls are done. fn must only write state owned by index i
// (see the package determinism contract).
func ForEach(n int, fn func(i int)) { ForEachN(Workers(), n, fn) }

// ForEachN is ForEach with an explicit worker count. workers ≤ 1 (or tiny n)
// runs inline, which is the sequential reference the determinism tests
// compare against.
func ForEachN(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Dynamic batched stealing: an atomic cursor hands out contiguous index
	// batches, balancing uneven per-index work (e.g. blocks with very
	// different event counts) while keeping cache locality within a batch.
	batch := n / (workers * 8)
	if batch < 1 {
		batch = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Map runs fn across [0, n) on the pool and returns the results in index
// order, so order-sensitive reductions can run over the returned slice.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// Do runs the given independent stage functions concurrently and waits for
// all of them (the experiment-environment warm-up fan-out).
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach with error propagation and cancellation: once the
// context is done or any fn returns an error, remaining indices are skipped.
// It returns the error with the lowest index among those observed (so
// error-free runs and single-error runs are deterministic), or ctx.Err().
func ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	var (
		mu      sync.Mutex
		bestIdx = -1
		bestErr error
		stopped atomic.Bool
	)
	record := func(i int, err error) {
		mu.Lock()
		if bestIdx < 0 || i < bestIdx {
			bestIdx, bestErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	ForEach(n, func(i int) {
		if stopped.Load() {
			return
		}
		if err := ctx.Err(); err != nil {
			stopped.Store(true)
			return
		}
		if err := fn(i); err != nil {
			record(i, err)
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	return bestErr
}

// Cache is a concurrency-safe memoization map with per-key once semantics:
// concurrent Get calls for the same key block until a single compute call
// finishes, so duplicated work between lookup and fill (the classic
// check-then-compute race) cannot happen. The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	v    V
}

// Get returns the cached value for key, computing it exactly once across all
// concurrent callers. compute must not call Get for the same key (it would
// deadlock on its own once).
func (c *Cache[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v = compute() })
	return e.v
}

// Len returns the number of cached keys (including any being computed).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
