package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			hits := make([]int32, n)
			ForEachN(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d processed %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestMapOrdersResults(t *testing.T) {
	got := Map(257, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Setenv(EnvWorkers, "1")
	seq := Map(500, func(i int) int { return i * 3 })
	t.Setenv(EnvWorkers, "8")
	parl := Map(500, func(i int) int { return i * 3 })
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("index %d differs across worker counts", i)
		}
	}
}

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if w := Workers(); w != 3 {
		t.Fatalf("Workers() = %d with %s=3", w, EnvWorkers)
	}
	t.Setenv(EnvWorkers, "banana")
	if w := Workers(); w < 1 {
		t.Fatalf("Workers() = %d with malformed env, want GOMAXPROCS fallback", w)
	}
}

func TestDoRunsAllStages(t *testing.T) {
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a stage")
	}
}

func TestForEachCtxPropagatesLowestError(t *testing.T) {
	errBoom := errors.New("boom")
	err := ForEachCtx(context.Background(), 100, func(i int) error {
		if i == 42 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	if err := ForEachCtx(context.Background(), 100, func(int) error { return nil }); err != nil {
		t.Fatalf("error-free run returned %v", err)
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	err := ForEachCtx(ctx, 1000, func(int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCacheComputesOncePerKey(t *testing.T) {
	var c Cache[int, int]
	var computes atomic.Int32
	const callers = 32
	var wg sync.WaitGroup
	wg.Add(callers)
	results := make([]int, callers)
	for g := 0; g < callers; g++ {
		go func() {
			defer wg.Done()
			results[g] = c.Get(7, func() int {
				computes.Add(1)
				return 99
			})
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key, want exactly 1", n)
	}
	for g, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d, want 99", g, v)
		}
	}
	if c.Get(8, func() int { return 1 }) != 1 || c.Len() != 2 {
		t.Fatalf("second key mis-cached; len = %d", c.Len())
	}
}
