// Package passive implements the passive measurement comparator of Table 1:
// a Cloudflare-style observer that watches client HTTP request volumes per
// region instead of probing. Passive observation has high temporal
// resolution and zero probing load, but requires a privileged position
// (clients must already talk to you), sees only user-driven traffic (diurnal
// and demand-shaped), and attributes at region granularity — it cannot name
// the AS or /24 behind a dip the way active full-block scans can.
//
// Volumes derive from the same ground truth as the scans: responsive users
// generate requests, modulated by a strong human diurnal cycle and demand
// noise. A small HTTP ingestion server is included so tests exercise a real
// collection path.
package passive

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/regional"
	"countrymon/internal/signals"
)

// humanDiurnal is the request-demand multiplier by local hour: deep night
// troughs, evening peak.
func humanDiurnal(localHour int) float64 {
	// Smooth curve peaking at 20:00 local, trough at 04:00.
	phase := float64(localHour-20) / 24 * 2 * math.Pi
	return 0.55 + 0.45*math.Cos(phase)
}

// VolumeSeries derives per-round request volumes for a region from the
// measurement store: responsive addresses in the region's blocks generate
// demand-modulated requests. Unlike the active signals, no regionality
// filtering is applied — a CDN sees whatever geolocates there.
func VolumeSeries(st *dataset.Store, cl *regional.Classifier, rr *regional.RegionResult) []float64 {
	tl := st.Timeline()
	out := make([]float64, tl.NumRounds())
	for _, bc := range rr.Blocks {
		resp := st.RespSeries(bc.Index)
		for r := 0; r < tl.NumRounds(); r++ {
			if st.Missing(r) {
				// A passive observer has no vantage outages; interpolate
				// with the block's previous value to keep the series
				// continuous.
				if r > 0 {
					out[r] = out[r-1]
				}
				continue
			}
			m := tl.MonthOfRound(r)
			share := cl.BlockShare(bc.Index, m, rr.Region)
			if share == 0 {
				continue
			}
			localHour := (tl.Time(r).Hour() + 2) % 24
			out[r] += float64(resp[r]) * share * humanDiurnal(localHour) * 7.3
		}
	}
	return out
}

// Detect runs volume-drop detection: requests below frac of the trailing
// week (computed diurnal-aware, comparing against the same local hour) flag
// an outage. It reuses the signals event machinery by mapping volume onto a
// single-signal series.
func Detect(vol []float64, tl interface {
	NumRounds() int
	NumMonths() int
	MonthOfRound(int) int
	RoundsPerDay() int
	RoundsPerWeek() int
}, frac float64) *signals.Detection {
	rounds := len(vol)
	d := &signals.Detection{Flags: make([]signals.Kind, rounds)}
	perDay := tl.RoundsPerDay()
	window := 7
	for r := 0; r < rounds; r++ {
		// Baseline: mean of the same time-of-day slot over the past week
		// (passive systems compare like-for-like hours to cancel the
		// diurnal cycle).
		sum, n := 0.0, 0
		for k := 1; k <= window; k++ {
			idx := r - k*perDay
			if idx < 0 {
				break
			}
			sum += vol[idx]
			n++
		}
		if n < window/2 || sum == 0 {
			continue
		}
		base := sum / float64(n)
		if base > 5 && vol[r] < frac*base {
			d.Flags[r] = signals.SignalIPS
		}
	}
	inOutage := false
	var cur signals.Outage
	for r := 0; r < rounds; r++ {
		if d.Flags[r] != 0 {
			if !inOutage {
				cur = signals.Outage{Start: r, Signals: signals.SignalIPS}
				inOutage = true
			}
			cur.End = r + 1
		} else if inOutage {
			d.Outages = append(d.Outages, cur)
			inOutage = false
		}
	}
	if inOutage {
		d.Outages = append(d.Outages, cur)
	}
	return d
}

// --- HTTP ingestion path ---

// LogEntry is one reported traffic sample.
type LogEntry struct {
	Region   string  `json:"region"`
	Requests float64 `json:"requests"`
	// Slot is the reporting interval index (the CDN's fine-grained clock).
	Slot int `json:"slot"`
}

// Collector aggregates request volumes reported over HTTP.
type Collector struct {
	mu   sync.Mutex
	vols map[netmodel.Region]map[int]float64
}

// NewCollector builds an empty collector.
func NewCollector() *Collector {
	return &Collector{vols: make(map[netmodel.Region]map[int]float64)}
}

// ServeHTTP accepts POSTed LogEntry batches at any path.
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST log batches", http.StatusMethodNotAllowed)
		return
	}
	var batch []LogEntry
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		http.Error(w, "bad JSON", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range batch {
		region, ok := netmodel.RegionByName(e.Region)
		if !ok || e.Requests < 0 || e.Slot < 0 {
			http.Error(w, "bad entry", http.StatusBadRequest)
			return
		}
		m := c.vols[region]
		if m == nil {
			m = make(map[int]float64)
			c.vols[region] = m
		}
		m[e.Slot] += e.Requests
	}
	w.WriteHeader(http.StatusOK)
}

// Volume returns the aggregated request count for a region and slot.
func (c *Collector) Volume(region netmodel.Region, slot int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vols[region][slot]
}

// Series returns the region's volume series over slots [0, n).
func (c *Collector) Series(region netmodel.Region, n int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, n)
	for slot, v := range c.vols[region] {
		if slot < n {
			out[slot] = v
		}
	}
	return out
}

// ReportInterval is the passive path's native resolution (Table 1: < 1 min;
// we aggregate to the minute).
const ReportInterval = time.Minute
