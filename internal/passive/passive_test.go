package passive

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/regional"
	"countrymon/internal/sim"
	"countrymon/internal/timeline"
)

var (
	once sync.Once
	fSc  *sim.Scenario
	fSt  *dataset.Store
	fCl  *regional.Classifier
	fRes *regional.Result
)

func fixture(t *testing.T) {
	t.Helper()
	once.Do(func() {
		fSc = sim.MustBuild(sim.Config{Seed: 42, Scale: 0.03,
			End: timeline.DefaultStart.AddDate(0, 9, 0)})
		fSt = fSc.GenerateStore(nil)
		fCl = regional.NewClassifier(fSc.Space, fSc.GeoDB(), fSt)
		fRes = fCl.ClassifyAll(regional.DefaultParams())
	})
}

func TestVolumeSeriesDiurnal(t *testing.T) {
	fixture(t)
	vol := VolumeSeries(fSt, fCl, fRes.Regions[netmodel.Kyiv])
	if len(vol) != fSt.Timeline().NumRounds() {
		t.Fatal("length mismatch")
	}
	// Evening volumes must exceed deep-night volumes on a calm day.
	tl := fSt.Timeline()
	day := time.Date(2022, 9, 20, 0, 0, 0, 0, time.UTC)
	evening := vol[tl.Round(day.Add(18*time.Hour))] // 20:00 local
	night := vol[tl.Round(day.Add(2*time.Hour))]    // 04:00 local
	if evening <= night {
		t.Errorf("no diurnal demand cycle: evening %.0f vs night %.0f", evening, night)
	}
	if evening == 0 {
		t.Fatal("no traffic at all")
	}
}

func TestPassiveDetectsCableCut(t *testing.T) {
	fixture(t)
	vol := VolumeSeries(fSt, fCl, fRes.Regions[netmodel.Kherson])
	d := Detect(vol, fSt.Timeline(), 0.5)
	cut := fSt.Timeline().Round(time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC))
	found := false
	for _, o := range d.Outages {
		if o.Start <= cut && cut < o.End {
			found = true
		}
	}
	if !found {
		t.Errorf("passive observer missed the oblast-wide cable cut (%d outages)", len(d.Outages))
	}
}

func TestPassiveCannotAttribute(t *testing.T) {
	// The structural limitation: passive events carry only a region and a
	// volume, never an AS or block — this test documents the API contract.
	fixture(t)
	vol := VolumeSeries(fSt, fCl, fRes.Regions[netmodel.Kherson])
	d := Detect(vol, fSt.Timeline(), 0.5)
	for _, o := range d.Outages {
		if o.Signals != 0 && o.Signals.Has(0x80) {
			t.Fatal("impossible")
		}
	}
	// Compare: the active pipeline distinguishes the seizure (one AS's IPS
	// dip) which is invisible in region-level volumes.
	seizure := fSt.Timeline().Round(time.Date(2022, 5, 13, 10, 30, 0, 0, time.UTC))
	for _, o := range d.Outages {
		if o.Start <= seizure && seizure < o.End {
			t.Log("note: passive flagged the seizure window at region level (volume coincidence)")
		}
	}
}

func TestCollectorHTTP(t *testing.T) {
	col := NewCollector()
	srv := httptest.NewServer(col)
	defer srv.Close()

	post := func(batch []LogEntry) *http.Response {
		b, _ := json.Marshal(batch)
		resp, err := http.Post(srv.URL+"/log", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	resp := post([]LogEntry{
		{Region: "Kherson", Requests: 120, Slot: 0},
		{Region: "Kherson", Requests: 30, Slot: 0},
		{Region: "Lviv", Requests: 500, Slot: 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := col.Volume(netmodel.Kherson, 0); got != 150 {
		t.Errorf("Kherson slot 0 = %f", got)
	}
	series := col.Series(netmodel.Lviv, 3)
	if series[1] != 500 || series[0] != 0 {
		t.Errorf("series = %v", series)
	}
	// Rejections.
	if resp := post([]LogEntry{{Region: "Atlantis", Requests: 1}}); resp.StatusCode != http.StatusBadRequest {
		t.Error("unknown region accepted")
	}
	if resp := post([]LogEntry{{Region: "Lviv", Requests: -5}}); resp.StatusCode != http.StatusBadRequest {
		t.Error("negative volume accepted")
	}
	if r2, _ := http.Get(srv.URL); r2.StatusCode != http.StatusMethodNotAllowed {
		t.Error("GET accepted")
	}
}

func TestDetectBaselineWarmup(t *testing.T) {
	// With no history, detection must stay silent instead of flagging the
	// warm-up period.
	tl := timeline.New(time.Unix(0, 0).UTC(), time.Unix(0, 0).UTC().Add(100*2*time.Hour), 2*time.Hour)
	vol := make([]float64, tl.NumRounds())
	for i := range vol {
		vol[i] = 100
	}
	d := Detect(vol, tl, 0.5)
	if len(d.Outages) != 0 {
		t.Errorf("flat series produced outages: %+v", d.Outages)
	}
}
