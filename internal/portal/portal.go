// Package portal implements the measurement campaign's public web presence
// and data-access policy (Appendix A / "Unique Full Block Dataset"):
//
//   - an information page describing the measurements, with contact details
//     and a self-service opt-out (the campaign received exactly one);
//   - opt-outs feed the scanner's exclusion list, ZMap-blocklist style;
//   - gated research access: block-level availability data for approved
//     tokens, and anonymized IP-level responsiveness (keyed one-way hashes)
//     "which avoids privacy risks while enabling meaningful analysis".
package portal

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
	"countrymon/internal/serve"
)

// Portal is the campaign's HTTP front end.
type Portal struct {
	store   *dataset.Store
	anonKey []byte

	mu      sync.RWMutex
	optOuts []netmodel.Prefix
	tokens  map[string]bool

	mux *http.ServeMux

	// Observability (see Observe): per-endpoint request counters and the
	// event bus opt-outs are announced on. All nil-safe.
	bus       *obs.Bus
	reqInfo   *obs.Counter
	reqOptOut *obs.Counter
	reqBlocks *obs.Counter
	reqResp   *obs.Counter
}

// New builds a portal over the campaign's dataset. anonKey keys the one-way
// address anonymization; tokens are the approved research-access tokens.
func New(store *dataset.Store, anonKey []byte, tokens ...string) *Portal {
	p := &Portal{
		store:   store,
		anonKey: append([]byte(nil), anonKey...),
		tokens:  make(map[string]bool, len(tokens)),
		mux:     http.NewServeMux(),
	}
	for _, t := range tokens {
		p.tokens[t] = true
	}
	p.mux.HandleFunc("/", p.handleInfo)
	p.mux.HandleFunc("/opt-out", p.handleOptOut)
	p.mux.HandleFunc("/data/blocks", p.withToken(p.handleBlocks))
	p.mux.HandleFunc("/data/responsiveness", p.withToken(p.handleResponsiveness))
	return p
}

// ServeHTTP implements http.Handler.
func (p *Portal) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// Observe mounts the observability endpoints — /metrics (Prometheus text or
// JSON) and /events (SSE or long-poll) — on the portal and starts counting
// requests per endpoint as portal_requests_total{endpoint}. Opt-outs are
// announced on bus. Call once, before serving; either argument may be nil
// (the corresponding endpoint then answers 503).
func (p *Portal) Observe(reg *obs.Registry, bus *obs.Bus) {
	v := reg.CounterVec("portal_requests_total",
		"Portal HTTP requests by endpoint.", "endpoint")
	p.bus = bus
	p.reqInfo = v.With("info")
	p.reqOptOut = v.With("opt-out")
	p.reqBlocks = v.With("blocks")
	p.reqResp = v.With("responsiveness")
	p.mux.Handle("/metrics", obs.MetricsHandler(reg))
	p.mux.Handle("/events", obs.EventsHandler(bus))
}

// OptOuts returns the exclusion list to feed scanner target sets.
func (p *Portal) OptOuts() []netmodel.Prefix {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]netmodel.Prefix(nil), p.optOuts...)
}

// AddToken approves a research-access token.
func (p *Portal) AddToken(token string) {
	p.mu.Lock()
	p.tokens[token] = true
	p.mu.Unlock()
}

func (p *Portal) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	p.reqInfo.Inc()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "countrymon measurement campaign")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "This host sends a single ICMP echo request to each address of the")
	fmt.Fprintln(w, "monitored ranges once per probing round, rate limited and randomized,")
	fmt.Fprintln(w, "to study Internet availability. No payload data is collected.")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "Opt out:  POST /opt-out  {\"prefix\": \"a.b.c.0/24\"}")
	fmt.Fprintln(w, "Research access to block-level data can be requested from the operators;")
	fmt.Fprintln(w, "IP-level responsiveness is only released in anonymized form.")
}

func (p *Portal) handleOptOut(w http.ResponseWriter, r *http.Request) {
	p.reqOptOut.Inc()
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON body {\"prefix\": ...}", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Prefix string `json:"prefix"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON", http.StatusBadRequest)
		return
	}
	pre, err := netmodel.ParsePrefix(req.Prefix)
	if err != nil {
		http.Error(w, "bad prefix", http.StatusBadRequest)
		return
	}
	if pre.Bits < 16 {
		// A single opt-out cannot blanket large swathes of address space.
		http.Error(w, "opt-out prefixes must be /16 or longer", http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	dup := false
	for _, existing := range p.optOuts {
		if existing == pre {
			dup = true
			break
		}
	}
	if !dup {
		p.optOuts = append(p.optOuts, pre)
	}
	p.mu.Unlock()
	if !dup && p.bus != nil {
		p.bus.Publish("opt_out", map[string]any{"prefix": pre.String()})
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "excluded %v from future probing rounds\n", pre)
}

func (p *Portal) withToken(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := r.URL.Query().Get("token")
		p.mu.RLock()
		ok := p.tokens[token]
		p.mu.RUnlock()
		if !ok {
			http.Error(w, "access to the dataset requires an approved token", http.StatusForbidden)
			return
		}
		h(w, r)
	}
}

// AttachServe mounts the production read path under the portal: the serve
// query API (series, outages, entities, live events) becomes reachable at
// /data/v1/... behind the same research-access token as the raw exports.
func (p *Portal) AttachServe(s *serve.Server) {
	strip := http.StripPrefix("/data", s)
	p.mux.Handle("/data/v1/", p.withToken(strip.ServeHTTP))
}

// Pagination bounds for the /data/blocks export.
const (
	// DefaultBlocksLimit is the page size when ?limit is absent. The
	// export previously returned every qualifying block in one response;
	// a full campaign month is tens of thousands of rows, so unbounded
	// responses invited accidental multi-hundred-MB transfers.
	DefaultBlocksLimit = 1000
	// MaxBlocksLimit clamps explicit ?limit values.
	MaxBlocksLimit = 10000
)

// BlockRecord is one row of the block-level availability export.
type BlockRecord struct {
	Block      string  `json:"block"`
	Month      string  `json:"month"`
	EverActive int     `json:"ever_active"`
	MeanResp   float64 `json:"mean_responsive"`
	RoutedPct  float64 `json:"routed_pct"`
}

func (p *Portal) handleBlocks(w http.ResponseWriter, r *http.Request) {
	p.reqBlocks.Inc()
	tl := p.store.Timeline()
	month := 0
	if v, err := strconv.Atoi(r.URL.Query().Get("month")); err == nil {
		month = v
	}
	if month < 0 || month >= tl.NumMonths() {
		http.Error(w, "month out of range", http.StatusBadRequest)
		return
	}
	limit := DefaultBlocksLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
			return
		}
		limit = min(n, MaxBlocksLimit)
	}
	offset := 0
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "offset must be a non-negative integer", http.StatusBadRequest)
			return
		}
		offset = n
	}
	// The response body stays a bare JSON array (clients predate the
	// pagination); the page bookkeeping travels in headers. Qualifying
	// blocks are indexed in stable store order, so walking offset +=
	// limit reconstructs the exact full export.
	total := 0
	recs := make([]BlockRecord, 0, min(limit, p.store.NumBlocks()))
	for bi, blk := range p.store.Blocks() {
		st := p.store.MonthStats(bi, month)
		if st.EverActive == 0 {
			continue
		}
		idx := total
		total++
		if idx < offset || len(recs) >= limit {
			continue
		}
		routed := 0.0
		if st.MeasuredRounds > 0 {
			routed = 100 * float64(st.RoutedRounds) / float64(st.MeasuredRounds)
		}
		recs = append(recs, BlockRecord{
			Block:      blk.String(),
			Month:      tl.MonthLabel(month),
			EverActive: st.EverActive,
			MeanResp:   st.MeanResp,
			RoutedPct:  routed,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Total", strconv.Itoa(total))
	w.Header().Set("X-Limit", strconv.Itoa(limit))
	w.Header().Set("X-Offset", strconv.Itoa(offset))
	_ = json.NewEncoder(w).Encode(recs)
}

// AnonAddr returns the keyed one-way pseudonym of an address. The mapping
// is stable within a portal instance (so longitudinal analysis works) but
// cannot be reversed without the key.
func (p *Portal) AnonAddr(a netmodel.Addr) string {
	mac := hmac.New(sha256.New, p.anonKey)
	b := a.Bytes()
	mac.Write(b[:])
	return hex.EncodeToString(mac.Sum(nil)[:12])
}

// RespRecord is one row of the anonymized IP-level export.
type RespRecord struct {
	AnonIP string `json:"anon_ip"`
	Month  string `json:"month"`
	// ActiveRank orders a block's addresses by responsiveness without
	// exposing which concrete address is which.
	ActiveRank int `json:"active_rank"`
}

func (p *Portal) handleResponsiveness(w http.ResponseWriter, r *http.Request) {
	p.reqResp.Inc()
	tl := p.store.Timeline()
	blk, err := netmodel.ParseBlock(r.URL.Query().Get("block"))
	if err != nil {
		http.Error(w, "block parameter must be a /24", http.StatusBadRequest)
		return
	}
	bi := p.store.BlockIndex(blk)
	if bi < 0 {
		http.Error(w, "block not in the dataset", http.StatusNotFound)
		return
	}
	month := 0
	if v, err := strconv.Atoi(r.URL.Query().Get("month")); err == nil {
		month = v
	}
	if month < 0 || month >= tl.NumMonths() {
		http.Error(w, "month out of range", http.StatusBadRequest)
		return
	}
	st := p.store.MonthStats(bi, month)
	recs := make([]RespRecord, 0, st.EverActive)
	for rank := 0; rank < st.EverActive; rank++ {
		// Under the nested observation model the month's ever-active set
		// is its top-ranked addresses; export them pseudonymously, sorted
		// by pseudonym so the export order leaks nothing either.
		recs = append(recs, RespRecord{
			AnonIP:     p.AnonAddr(blk.Addr(uint8(rank))),
			Month:      tl.MonthLabel(month),
			ActiveRank: rank,
		})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].AnonIP < recs[j].AnonIP })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(recs)
}
