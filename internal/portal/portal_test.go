package portal

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/serve"
	"countrymon/internal/timeline"
)

func testPortal(t *testing.T) (*Portal, *httptest.Server) {
	t.Helper()
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.AddDate(0, 2, 0), 2*time.Hour)
	store := dataset.NewStore(tl, []netmodel.BlockID{
		netmodel.MustParseBlock("91.198.4.0/24"),
		netmodel.MustParseBlock("91.198.5.0/24"),
	})
	for r := 0; r < tl.NumRounds(); r++ {
		store.SetRound(0, r, 25, true)
		store.SetRound(1, r, 0, r%2 == 0)
	}
	p := New(store, []byte("test-anon-key"), "researcher-token")
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func TestInfoPage(t *testing.T) {
	_, srv := testPortal(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "Opt out") {
		t.Error("info page missing opt-out instructions")
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestOptOutFlow(t *testing.T) {
	p, srv := testPortal(t)
	post := func(body string) *http.Response {
		resp, err := http.Post(srv.URL+"/opt-out", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(`{"prefix": "91.198.5.0/24"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("opt-out status = %d", resp.StatusCode)
	}
	// Duplicate is idempotent.
	post(`{"prefix": "91.198.5.0/24"}`)
	if got := len(p.OptOuts()); got != 1 {
		t.Fatalf("opt-outs = %d", got)
	}
	// The opt-out feeds the scanner's exclusion list.
	ts, err := scanner.NewTargetSet([]netmodel.Prefix{netmodel.MustParsePrefix("91.198.4.0/23")}, p.OptOuts())
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumBlocks() != 1 {
		t.Errorf("excluded block still targeted: %d blocks", ts.NumBlocks())
	}
	// Rejections.
	if resp := post(`{"prefix": "10.0.0.0/8"}`); resp.StatusCode != http.StatusBadRequest {
		t.Error("blanket /8 opt-out accepted")
	}
	if resp := post(`{"prefix": "garbage"}`); resp.StatusCode != http.StatusBadRequest {
		t.Error("garbage prefix accepted")
	}
	if resp, _ := http.Get(srv.URL + "/opt-out"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Error("GET opt-out allowed")
	}
}

func TestBlockDataRequiresToken(t *testing.T) {
	_, srv := testPortal(t)
	resp, _ := http.Get(srv.URL + "/data/blocks?month=0")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless access status = %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/data/blocks?month=0&token=researcher-token")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var recs []BlockRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 { // block 1 has no responses and is omitted
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Block != "91.198.4.0/24" || recs[0].EverActive != 25 {
		t.Errorf("record = %+v", recs[0])
	}
	if recs[0].RoutedPct != 100 {
		t.Errorf("routed pct = %f", recs[0].RoutedPct)
	}
	// Out-of-range month.
	resp, _ = http.Get(srv.URL + "/data/blocks?month=99&token=researcher-token")
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("bad month accepted")
	}
}

func TestAnonymizedResponsiveness(t *testing.T) {
	p, srv := testPortal(t)
	resp, err := http.Get(srv.URL + "/data/responsiveness?block=91.198.4.0/24&month=0&token=researcher-token")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []RespRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Fatalf("records = %d, want 25 ever-active", len(recs))
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		if len(rec.AnonIP) != 24 {
			t.Fatalf("pseudonym %q has wrong length", rec.AnonIP)
		}
		if strings.Contains(rec.AnonIP, ".") {
			t.Fatal("pseudonym leaks dotted quads")
		}
		if seen[rec.AnonIP] {
			t.Fatal("pseudonym collision")
		}
		seen[rec.AnonIP] = true
	}
	// Stable mapping within the portal.
	a := netmodel.MustParseAddr("91.198.4.1")
	if p.AnonAddr(a) != p.AnonAddr(a) {
		t.Error("pseudonyms not stable")
	}
	// Different keys give different pseudonyms.
	other := New(nil, []byte("other-key"))
	if p.AnonAddr(a) == other.AnonAddr(a) {
		t.Error("pseudonyms independent of key")
	}
	// Unknown block.
	r2, _ := http.Get(srv.URL + "/data/responsiveness?block=10.0.0.0/24&month=0&token=researcher-token")
	if r2.StatusCode != http.StatusNotFound {
		t.Error("unknown block accepted")
	}
}

func TestAddToken(t *testing.T) {
	p, srv := testPortal(t)
	resp, _ := http.Get(srv.URL + "/data/blocks?month=0&token=late-arrival")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatal("unapproved token accepted")
	}
	p.AddToken("late-arrival")
	resp, _ = http.Get(srv.URL + "/data/blocks?month=0&token=late-arrival")
	if resp.StatusCode != http.StatusOK {
		t.Error("approved token rejected")
	}
}

// paginatedPortal builds a portal over enough active blocks to need several
// /data/blocks pages.
func paginatedPortal(t *testing.T, blocks int) (*Portal, *httptest.Server) {
	t.Helper()
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.AddDate(0, 1, 0), 12*time.Hour)
	ids := make([]netmodel.BlockID, blocks)
	for i := range ids {
		ids[i] = netmodel.MustParseBlock(net4(i))
	}
	store := dataset.NewStore(tl, ids)
	for bi := 0; bi < blocks; bi++ {
		for r := 0; r < tl.NumRounds(); r++ {
			store.SetRound(bi, r, 1+bi%20, true)
		}
	}
	p := New(store, []byte("k"), "tok")
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func net4(i int) string {
	return "10." + strconv.Itoa(i/256) + "." + strconv.Itoa(i%256) + ".0/24"
}

func TestBlocksPagination(t *testing.T) {
	_, srv := paginatedPortal(t, 25)
	fetch := func(q string) ([]BlockRecord, *http.Response) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/data/blocks?month=0&token=tok" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d for %q", resp.StatusCode, q)
		}
		var recs []BlockRecord
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatal(err)
		}
		return recs, resp
	}

	full, resp := fetch("") // 25 < default cap: single page
	if len(full) != 25 || resp.Header.Get("X-Total") != "25" {
		t.Fatalf("full export: %d records, X-Total=%s", len(full), resp.Header.Get("X-Total"))
	}

	// Walking limit/offset pages reconstructs the full export exactly.
	var walked []BlockRecord
	for off := 0; ; off += 10 {
		page, resp := fetch("&limit=10&offset=" + strconv.Itoa(off))
		if resp.Header.Get("X-Limit") != "10" || resp.Header.Get("X-Offset") != strconv.Itoa(off) {
			t.Fatalf("page headers: limit=%s offset=%s", resp.Header.Get("X-Limit"), resp.Header.Get("X-Offset"))
		}
		walked = append(walked, page...)
		if len(page) < 10 {
			break
		}
	}
	if len(walked) != len(full) {
		t.Fatalf("walked %d records, full export has %d", len(walked), len(full))
	}
	for i := range full {
		if walked[i] != full[i] {
			t.Fatalf("record %d differs between paged and full export", i)
		}
	}

	// Rejections.
	for _, q := range []string{"&limit=0", "&limit=-3", "&limit=x", "&offset=-1", "&offset=x"} {
		resp, _ := http.Get(srv.URL + "/data/blocks?month=0&token=tok" + q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q accepted with status %d", q, resp.StatusCode)
		}
	}
}

func TestBlocksDefaultCap(t *testing.T) {
	_, srv := paginatedPortal(t, DefaultBlocksLimit+40)
	resp, err := http.Get(srv.URL + "/data/blocks?month=0&token=tok")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []BlockRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != DefaultBlocksLimit {
		t.Fatalf("uncapped response: %d records, want %d", len(recs), DefaultBlocksLimit)
	}
	if got := resp.Header.Get("X-Total"); got != strconv.Itoa(DefaultBlocksLimit+40) {
		t.Fatalf("X-Total = %s", got)
	}
}

func TestAttachServe(t *testing.T) {
	p, srv := testPortal(t)
	tls := serve.NewStore(p.store.Timeline())
	if _, err := tls.Register("block", "91.198.4.0", serve.BlockSource(p.store, 0, 0.8), nil); err != nil {
		t.Fatal(err)
	}
	if err := tls.AdvanceTo(p.store.Timeline().NumRounds()); err != nil {
		t.Fatal(err)
	}
	p.AttachServe(serve.NewServer(tls))

	// Token gate applies to the mounted API.
	resp, _ := http.Get(srv.URL + "/data/v1/series?entity=block/91.198.4.0")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless serve access status = %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/data/v1/series?entity=block/91.198.4.0&token=researcher-token")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("serve access status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Entity string    `json:"entity"`
		Count  int       `json:"count"`
		IPS    []float32 `json:"ips"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Entity != "block/91.198.4.0" || out.Count == 0 || out.IPS[0] != 25 {
		t.Fatalf("serve payload wrong: %+v", out)
	}
}
