package portal

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/timeline"
)

func testPortal(t *testing.T) (*Portal, *httptest.Server) {
	t.Helper()
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.AddDate(0, 2, 0), 2*time.Hour)
	store := dataset.NewStore(tl, []netmodel.BlockID{
		netmodel.MustParseBlock("91.198.4.0/24"),
		netmodel.MustParseBlock("91.198.5.0/24"),
	})
	for r := 0; r < tl.NumRounds(); r++ {
		store.SetRound(0, r, 25, true)
		store.SetRound(1, r, 0, r%2 == 0)
	}
	p := New(store, []byte("test-anon-key"), "researcher-token")
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func TestInfoPage(t *testing.T) {
	_, srv := testPortal(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "Opt out") {
		t.Error("info page missing opt-out instructions")
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestOptOutFlow(t *testing.T) {
	p, srv := testPortal(t)
	post := func(body string) *http.Response {
		resp, err := http.Post(srv.URL+"/opt-out", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(`{"prefix": "91.198.5.0/24"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("opt-out status = %d", resp.StatusCode)
	}
	// Duplicate is idempotent.
	post(`{"prefix": "91.198.5.0/24"}`)
	if got := len(p.OptOuts()); got != 1 {
		t.Fatalf("opt-outs = %d", got)
	}
	// The opt-out feeds the scanner's exclusion list.
	ts, err := scanner.NewTargetSet([]netmodel.Prefix{netmodel.MustParsePrefix("91.198.4.0/23")}, p.OptOuts())
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumBlocks() != 1 {
		t.Errorf("excluded block still targeted: %d blocks", ts.NumBlocks())
	}
	// Rejections.
	if resp := post(`{"prefix": "10.0.0.0/8"}`); resp.StatusCode != http.StatusBadRequest {
		t.Error("blanket /8 opt-out accepted")
	}
	if resp := post(`{"prefix": "garbage"}`); resp.StatusCode != http.StatusBadRequest {
		t.Error("garbage prefix accepted")
	}
	if resp, _ := http.Get(srv.URL + "/opt-out"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Error("GET opt-out allowed")
	}
}

func TestBlockDataRequiresToken(t *testing.T) {
	_, srv := testPortal(t)
	resp, _ := http.Get(srv.URL + "/data/blocks?month=0")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless access status = %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/data/blocks?month=0&token=researcher-token")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var recs []BlockRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 { // block 1 has no responses and is omitted
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Block != "91.198.4.0/24" || recs[0].EverActive != 25 {
		t.Errorf("record = %+v", recs[0])
	}
	if recs[0].RoutedPct != 100 {
		t.Errorf("routed pct = %f", recs[0].RoutedPct)
	}
	// Out-of-range month.
	resp, _ = http.Get(srv.URL + "/data/blocks?month=99&token=researcher-token")
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("bad month accepted")
	}
}

func TestAnonymizedResponsiveness(t *testing.T) {
	p, srv := testPortal(t)
	resp, err := http.Get(srv.URL + "/data/responsiveness?block=91.198.4.0/24&month=0&token=researcher-token")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []RespRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Fatalf("records = %d, want 25 ever-active", len(recs))
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		if len(rec.AnonIP) != 24 {
			t.Fatalf("pseudonym %q has wrong length", rec.AnonIP)
		}
		if strings.Contains(rec.AnonIP, ".") {
			t.Fatal("pseudonym leaks dotted quads")
		}
		if seen[rec.AnonIP] {
			t.Fatal("pseudonym collision")
		}
		seen[rec.AnonIP] = true
	}
	// Stable mapping within the portal.
	a := netmodel.MustParseAddr("91.198.4.1")
	if p.AnonAddr(a) != p.AnonAddr(a) {
		t.Error("pseudonyms not stable")
	}
	// Different keys give different pseudonyms.
	other := New(nil, []byte("other-key"))
	if p.AnonAddr(a) == other.AnonAddr(a) {
		t.Error("pseudonyms independent of key")
	}
	// Unknown block.
	r2, _ := http.Get(srv.URL + "/data/responsiveness?block=10.0.0.0/24&month=0&token=researcher-token")
	if r2.StatusCode != http.StatusNotFound {
		t.Error("unknown block accepted")
	}
}

func TestAddToken(t *testing.T) {
	p, srv := testPortal(t)
	resp, _ := http.Get(srv.URL + "/data/blocks?month=0&token=late-arrival")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatal("unapproved token accepted")
	}
	p.AddToken("late-arrival")
	resp, _ = http.Get(srv.URL + "/data/blocks?month=0&token=late-arrival")
	if resp.StatusCode != http.StatusOK {
		t.Error("approved token rejected")
	}
}
