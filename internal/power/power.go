// Package power models Ukraine's electricity situation: a ground-truth
// schedule of power-outage hours per region per day over the whole campaign,
// a generator that reproduces the structure the paper reports (rolling
// winter-2022/23 outages, thirteen large-scale strikes on the grid in 2024,
// ≈1,951 outage hours in 2024), and an exportable "Energy Map" dataset in the
// shape of the Ukrenergo data the paper correlates against (coverage
// 2023-01-01 through 2025-01-20 only).
//
// The simulation consumes the *ground truth* (electricity drives IPS▲ dips
// in non-frontline regions); the analysis consumes the *exported dataset* —
// so the Fig-10 correlation is emergent rather than asserted.
package power

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"countrymon/internal/netmodel"
)

// Schedule is the per-region, per-day power-outage ground truth. Hours are
// average hours without electricity on that day (0..24).
type Schedule struct {
	start time.Time // UTC midnight of day 0
	hours [][]float32
	seed  uint64
}

// ReportStart is the first day covered by the exported Ukrenergo-like
// dataset (the real Energy Map data begins 2023-01-01).
var ReportStart = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

// ReportEnd is the last day covered (2025-01-20).
var ReportEnd = time.Date(2025, 1, 20, 0, 0, 0, 0, time.UTC)

// Attacks2024 are the thirteen documented large-scale attacks on the power
// grid in 2024 the analysis marks (Fig 10).
func Attacks2024() []time.Time {
	mk := func(m time.Month, d int) time.Time { return time.Date(2024, m, d, 0, 0, 0, 0, time.UTC) }
	return []time.Time{
		mk(time.March, 22), mk(time.March, 29),
		mk(time.April, 11), mk(time.April, 27),
		mk(time.May, 8),
		mk(time.June, 1), mk(time.June, 20),
		mk(time.July, 8),
		mk(time.August, 26),
		mk(time.November, 17), mk(time.November, 28),
		mk(time.December, 13), mk(time.December, 25),
	}
}

// Config controls schedule generation.
type Config struct {
	Start time.Time // campaign start (truncated to day)
	End   time.Time // campaign end
	Seed  uint64
}

// Generate builds the ground-truth schedule.
func Generate(cfg Config) *Schedule {
	start := cfg.Start.UTC().Truncate(24 * time.Hour)
	days := int(cfg.End.UTC().Sub(start)/(24*time.Hour)) + 1
	s := &Schedule{start: start, seed: cfg.Seed}
	s.hours = make([][]float32, days)
	attacks := Attacks2024()
	for d := 0; d < days; d++ {
		day := start.Add(time.Duration(d) * 24 * time.Hour)
		row := make([]float32, netmodel.NumRegions+1)
		for _, r := range netmodel.Regions() {
			row[r] = float32(outageHours(day, r, attacks, cfg.Seed))
		}
		s.hours[d] = row
	}
	return s
}

// outageHours is the generator's core: average hours without electricity for
// one region on one day.
func outageHours(day time.Time, r netmodel.Region, attacks []time.Time, seed uint64) float64 {
	if r.OccupiedSince2014() {
		// Crimea and Sevastopol are on the Russian grid (§5.1) and did not
		// share the Ukrainian grid's outages.
		return 0
	}
	h := 0.0
	y, m, _ := day.Date()

	// Rolling blackouts after the autumn 2022 strikes, easing by March 2023.
	winter2223start := time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	winter2223end := time.Date(2023, 3, 10, 0, 0, 0, 0, time.UTC)
	if !day.Before(winter2223start) && day.Before(winter2223end) {
		ramp := math.Min(1, float64(day.Sub(winter2223start))/(30*24*float64(time.Hour)))
		ease := math.Min(1, float64(winter2223end.Sub(day))/(45*24*float64(time.Hour)))
		h += (3 + 5*ramp) * ease
	}

	// Summer 2024 sustained deficit (mid-May through August).
	if y == 2024 {
		switch {
		case m >= time.June && m <= time.July:
			h += 12
		case m == time.May && day.Day() >= 13:
			h += 8
		case m == time.August:
			h += 8
		case m == time.November:
			h += 3
		case m == time.December:
			h += 4.5
		}
	}

	// Strike impulses: each attack adds outage hours decaying over ~3 weeks.
	for _, a := range attacks {
		dt := day.Sub(a)
		if dt >= 0 && dt < 21*24*time.Hour {
			decay := 1 - float64(dt)/(21*24*float64(time.Hour))
			h += 8 * decay
		}
	}

	if h <= 0 {
		return 0
	}
	// Regional jitter: grids are regional, outages do not hit all oblasts
	// equally (§5.1).
	jit := hash3(seed, uint64(r), uint64(day.Unix()))
	factor := 0.55 + 0.9*float64(jit%1000)/999.0 // 0.55 .. 1.45
	h *= factor
	// A fraction of region-days escape entirely.
	if jit>>32%5 == 0 {
		h *= 0.15
	}
	if h > 22 {
		h = 22
	}
	return h
}

// Start returns UTC midnight of day 0.
func (s *Schedule) Start() time.Time { return s.start }

// Days returns the number of covered days.
func (s *Schedule) Days() int { return len(s.hours) }

// DayIndex maps a time to a day index (clamped).
func (s *Schedule) DayIndex(at time.Time) int {
	d := int(at.UTC().Sub(s.start) / (24 * time.Hour))
	if d < 0 {
		return 0
	}
	if d >= len(s.hours) {
		return len(s.hours) - 1
	}
	return d
}

// Hours returns the outage hours for a region on a day index.
func (s *Schedule) Hours(day int, r netmodel.Region) float64 {
	if day < 0 || day >= len(s.hours) {
		return 0
	}
	return float64(s.hours[day][r])
}

// HoursAt returns the outage hours for a region on the day containing at.
func (s *Schedule) HoursAt(at time.Time, r netmodel.Region) float64 {
	return s.Hours(s.DayIndex(at), r)
}

// Out reports whether the power is out in region r at time at. The day's
// outage hours are laid out as rotating windows whose start varies by region
// and day (modeling rolling blackout queues).
func (s *Schedule) Out(r netmodel.Region, at time.Time) bool {
	out, _ := s.OutSince(r, at)
	return out
}

// OutSince reports whether the power is out in region r at time at, and if
// so for how many hours the current outage window has been running. The
// duration matters because providers bridge the first hours of an outage
// with batteries and generators (§5.1: Kyivstar sustains mobile service for
// up to four hours without electricity).
func (s *Schedule) OutSince(r netmodel.Region, at time.Time) (bool, float64) {
	d := s.DayIndex(at)
	h := s.Hours(d, r)
	if h <= 0 {
		return false, 0
	}
	if h >= 24 {
		return true, 24
	}
	startHour := int(hash3(s.seed^0xab12, uint64(r), uint64(d)) % 24)
	hour := at.UTC().Hour()
	off := (hour - startHour + 24) % 24
	if float64(off) < h {
		return true, float64(off) + float64(at.Minute())/60
	}
	return false, 0
}

// DailyMean returns the mean outage hours across the given regions per day.
func (s *Schedule) DailyMean(regions []netmodel.Region) []float64 {
	out := make([]float64, len(s.hours))
	for d := range s.hours {
		sum := 0.0
		for _, r := range regions {
			sum += float64(s.hours[d][r])
		}
		out[d] = sum / float64(len(regions))
	}
	return out
}

// TotalHoursYear sums the daily mean over all non-frontline... no: over all
// regions' mean for days of the given calendar year (the "hours without
// electricity" headline metric; the paper cites 1,951 h for 2024).
func (s *Schedule) TotalHoursYear(year int, regions []netmodel.Region) float64 {
	daily := s.DailyMean(regions)
	total := 0.0
	for d, v := range daily {
		if s.start.Add(time.Duration(d)*24*time.Hour).Year() == year {
			total += v
		}
	}
	return total
}

// --- Exported "Energy Map" dataset ---

// WriteReport exports the schedule in the CSV-like Energy Map shape,
// restricted to the real dataset's coverage window: date, region, hours.
func (s *Schedule) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "date,region,outage_hours"); err != nil {
		return err
	}
	for d := 0; d < len(s.hours); d++ {
		day := s.start.Add(time.Duration(d) * 24 * time.Hour)
		if day.Before(ReportStart) || day.After(ReportEnd) {
			continue
		}
		for _, r := range netmodel.Regions() {
			h := s.Hours(d, r)
			if h == 0 {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%s,%s,%.2f\n", day.Format("2006-01-02"), r, h); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Report is the parsed Energy Map dataset the analysis consumes.
type Report struct {
	start time.Time
	days  int
	hours map[int][]float64 // day -> per-region hours
}

// ParseReport reads the CSV produced by WriteReport.
func ParseReport(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep := &Report{start: ReportStart, hours: make(map[int][]float64)}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "date,") {
				continue
			}
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("power: bad report line %q", line)
		}
		day, err := time.Parse("2006-01-02", parts[0])
		if err != nil {
			return nil, fmt.Errorf("power: bad date %q: %v", parts[0], err)
		}
		region, ok := netmodel.RegionByName(parts[1])
		if !ok {
			return nil, fmt.Errorf("power: unknown region %q", parts[1])
		}
		h, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || h < 0 || h > 24 {
			return nil, fmt.Errorf("power: bad hours %q", parts[2])
		}
		d := int(day.Sub(rep.start) / (24 * time.Hour))
		row := rep.hours[d]
		if row == nil {
			row = make([]float64, netmodel.NumRegions+1)
			rep.hours[d] = row
		}
		row[region] = h
		if d+1 > rep.days {
			rep.days = d + 1
		}
	}
	return rep, sc.Err()
}

// Start returns the report's day-0 date.
func (r *Report) Start() time.Time { return r.start }

// Days returns the number of days the report spans.
func (r *Report) Days() int { return r.days }

// Hours returns the reported outage hours for a region on report day d.
func (r *Report) Hours(d int, region netmodel.Region) float64 {
	if row, ok := r.hours[d]; ok {
		return row[region]
	}
	return 0
}

// HoursOn returns reported hours for a region on a calendar day.
func (r *Report) HoursOn(day time.Time, region netmodel.Region) float64 {
	return r.Hours(int(day.UTC().Truncate(24*time.Hour).Sub(r.start)/(24*time.Hour)), region)
}

// hash3 mixes three values into a 64-bit hash (SplitMix64 composition).
func hash3(a, b, c uint64) uint64 {
	x := a
	for _, v := range [...]uint64{b, c} {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = mix64(x)
	}
	return x
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
