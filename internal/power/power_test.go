package power

import (
	"bytes"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/timeline"
)

func testSchedule() *Schedule {
	return Generate(Config{Start: timeline.DefaultStart, End: timeline.DefaultEnd, Seed: 1})
}

func TestScheduleShape(t *testing.T) {
	s := testSchedule()
	if s.Days() < 1085 {
		t.Fatalf("Days = %d", s.Days())
	}
	// 2024 total for non-frontline regions should be near the reported
	// 1,951 hours (the generator is calibrated, shape matters).
	total := s.TotalHoursYear(2024, netmodel.NonFrontlineRegions())
	if total < 1400 || total > 2600 {
		t.Errorf("2024 total hours = %.0f, want ≈1951", total)
	}
	// 2023 mid-year should be far quieter than 2024.
	t23 := s.TotalHoursYear(2023, netmodel.NonFrontlineRegions())
	if t23 >= total {
		t.Errorf("2023 (%.0f h) not quieter than 2024 (%.0f h)", t23, total)
	}
}

func TestCrimeaOnRussianGrid(t *testing.T) {
	s := testSchedule()
	for d := 0; d < s.Days(); d += 13 {
		if s.Hours(d, netmodel.Crimea) != 0 || s.Hours(d, netmodel.Sevastopol) != 0 {
			t.Fatalf("Crimea/Sevastopol should have no Ukrainian-grid outages (day %d)", d)
		}
	}
}

func TestWinter2223Outages(t *testing.T) {
	s := testSchedule()
	winterDay := s.DayIndex(time.Date(2022, 12, 15, 0, 0, 0, 0, time.UTC))
	calmDay := s.DayIndex(time.Date(2023, 7, 15, 0, 0, 0, 0, time.UTC))
	winterSum, calmSum := 0.0, 0.0
	for _, r := range netmodel.NonFrontlineRegions() {
		winterSum += s.Hours(winterDay, r)
		calmSum += s.Hours(calmDay, r)
	}
	if winterSum < 10 {
		t.Errorf("winter 2022/23 outages too small: %f", winterSum)
	}
	if calmSum > winterSum/4 {
		t.Errorf("summer 2023 not calm: %f vs winter %f", calmSum, winterSum)
	}
}

func TestStrikeImpulse(t *testing.T) {
	s := testSchedule()
	// Just after the March 22 2024 attack outages must exceed just before.
	before := s.DayIndex(time.Date(2024, 3, 15, 0, 0, 0, 0, time.UTC))
	after := s.DayIndex(time.Date(2024, 3, 24, 0, 0, 0, 0, time.UTC))
	b, a := 0.0, 0.0
	for _, r := range netmodel.NonFrontlineRegions() {
		b += s.Hours(before, r)
		a += s.Hours(after, r)
	}
	if a <= b {
		t.Errorf("attack did not raise outages: before=%.1f after=%.1f", b, a)
	}
}

func TestOutWindowConsistency(t *testing.T) {
	s := testSchedule()
	day := time.Date(2024, 6, 15, 0, 0, 0, 0, time.UTC)
	for _, r := range netmodel.NonFrontlineRegions() {
		want := s.HoursAt(day, r)
		outHours := 0
		for h := 0; h < 24; h++ {
			if s.Out(r, day.Add(time.Duration(h)*time.Hour)) {
				outHours++
			}
		}
		// The hourly window must integrate to the daily hours ±1 h.
		if diff := float64(outHours) - want; diff < -1.01 || diff > 1.01 {
			t.Errorf("%v: window %d h vs daily %.1f h", r, outHours, want)
		}
	}
}

func TestOutDeterministic(t *testing.T) {
	s1 := testSchedule()
	s2 := testSchedule()
	at := time.Date(2022, 12, 1, 18, 0, 0, 0, time.UTC)
	for _, r := range netmodel.Regions() {
		if s1.Out(r, at) != s2.Out(r, at) {
			t.Fatal("schedule not deterministic")
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	s := testSchedule()
	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ParseReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Days() == 0 {
		t.Fatal("empty report")
	}
	// Coverage window: nothing before 2023-01-01 or after 2025-01-20.
	day22 := time.Date(2022, 12, 15, 0, 0, 0, 0, time.UTC)
	if got := rep.HoursOn(day22, netmodel.Lviv); got != 0 {
		t.Errorf("report leaked pre-2023 data: %f", got)
	}
	// A summer 2024 day must match the schedule (within rounding).
	day24 := time.Date(2024, 6, 20, 0, 0, 0, 0, time.UTC)
	for _, r := range []netmodel.Region{netmodel.Lviv, netmodel.Odessa, netmodel.Kyiv} {
		want := s.HoursAt(day24, r)
		got := rep.HoursOn(day24, r)
		if diff := got - want; diff < -0.011 || diff > 0.011 {
			t.Errorf("%v on %v: report %.2f vs schedule %.2f", r, day24, got, want)
		}
	}
}

func TestParseReportRejects(t *testing.T) {
	bad := []string{
		"date,region,outage_hours\n2024-01-01,Atlantis,5\n",
		"date,region,outage_hours\n2024-13-01,Lviv,5\n",
		"date,region,outage_hours\n2024-01-01,Lviv,99\n",
		"date,region,outage_hours\n2024-01-01,Lviv\n",
	}
	for _, in := range bad {
		if _, err := ParseReport(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestAttacks2024(t *testing.T) {
	as := Attacks2024()
	if len(as) != 13 {
		t.Fatalf("attacks = %d, want 13 (Fig 10 marks 13 documented strikes)", len(as))
	}
	for _, a := range as {
		if a.Year() != 2024 {
			t.Errorf("attack %v outside 2024", a)
		}
	}
}
