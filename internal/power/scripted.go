package power

import (
	"time"

	"countrymon/internal/netmodel"
)

// Strike scripts one power-grid disruption for Scripted schedules: Hours
// outage hours on each of Days consecutive days starting at Day, in Regions
// (every region when empty). Overlapping strikes accumulate, capped at 24
// hours per day.
type Strike struct {
	Day     int
	Days    int
	Hours   float64
	Regions []netmodel.Region
}

// Scripted builds a schedule directly from scripted strikes, without any of
// Generate's war history (winter 2022/23 rolling blackouts, the 2024 deficit,
// the documented attack impulses). Custom scenarios use it so their power
// ground truth contains exactly what they script — including nothing at all:
// with no strikes the grid is permanently up. The seed only varies where in
// the day each outage window rotates to (see OutSince); the hours themselves
// are exact.
func Scripted(start time.Time, days int, strikes []Strike, seed uint64) *Schedule {
	if days < 1 {
		days = 1
	}
	s := &Schedule{start: start.UTC().Truncate(24 * time.Hour), seed: seed}
	s.hours = make([][]float32, days)
	for d := range s.hours {
		s.hours[d] = make([]float32, netmodel.NumRegions+1)
	}
	for _, k := range strikes {
		span := k.Days
		if span < 1 {
			span = 1
		}
		h := k.Hours
		if h < 0 {
			h = 0
		}
		regions := k.Regions
		if len(regions) == 0 {
			regions = netmodel.Regions()
		}
		for d := k.Day; d < k.Day+span; d++ {
			if d < 0 || d >= days {
				continue
			}
			for _, r := range regions {
				sum := float64(s.hours[d][r]) + h
				if sum > 24 {
					sum = 24
				}
				s.hours[d][r] = float32(sum)
			}
		}
	}
	return s
}
