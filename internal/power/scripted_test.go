package power

import (
	"testing"
	"time"

	"countrymon/internal/netmodel"
)

func TestScriptedExactHours(t *testing.T) {
	start := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	s := Scripted(start, 30, []Strike{
		{Day: 5, Days: 3, Hours: 10, Regions: []netmodel.Region{netmodel.Poltava}},
		{Day: 6, Days: 1, Hours: 20, Regions: []netmodel.Region{netmodel.Poltava}},
		{Day: 28, Days: 5, Hours: 6, Regions: []netmodel.Region{netmodel.Cherkasy}},
	}, 7)

	if got := s.Days(); got != 30 {
		t.Fatalf("Days = %d, want 30", got)
	}
	if got := s.Hours(5, netmodel.Poltava); got != 10 {
		t.Errorf("day 5 Poltava = %g, want 10", got)
	}
	// Overlapping strikes accumulate, capped at 24.
	if got := s.Hours(6, netmodel.Poltava); got != 24 {
		t.Errorf("day 6 Poltava = %g, want 24 (10+20 capped)", got)
	}
	if got := s.Hours(7, netmodel.Poltava); got != 10 {
		t.Errorf("day 7 Poltava = %g, want 10", got)
	}
	// Unscripted region/day is clean.
	if got := s.Hours(5, netmodel.Cherkasy); got != 0 {
		t.Errorf("day 5 Cherkasy = %g, want 0", got)
	}
	// A strike running past the schedule end is clipped, not an error.
	if got := s.Hours(29, netmodel.Cherkasy); got != 6 {
		t.Errorf("day 29 Cherkasy = %g, want 6", got)
	}

	// With no strikes the grid never goes out.
	flat := Scripted(start, 30, nil, 7)
	for d := 0; d < 30; d++ {
		for _, r := range netmodel.Regions() {
			if flat.Hours(d, r) != 0 {
				t.Fatalf("flat schedule has outage hours on day %d region %v", d, r)
			}
			if out, _ := flat.OutSince(r, start.Add(time.Duration(d*24+13)*time.Hour)); out {
				t.Fatalf("flat schedule reports power out on day %d region %v", d, r)
			}
		}
	}
}

func TestScriptedOutSinceWindows(t *testing.T) {
	start := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	s := Scripted(start, 10, []Strike{
		{Day: 2, Days: 1, Hours: 8, Regions: []netmodel.Region{netmodel.Vinnytsia}},
	}, 99)
	// Over day 2, exactly 8 of 24 hourly samples must be inside the outage
	// window, and the since-duration must grow within the window.
	day := start.Add(2 * 24 * time.Hour)
	outHours := 0
	for h := 0; h < 24; h++ {
		if out, since := s.OutSince(netmodel.Vinnytsia, day.Add(time.Duration(h)*time.Hour)); out {
			outHours++
			if since < 0 || since >= 8.01 {
				t.Fatalf("hour %d: since = %g out of range", h, since)
			}
		}
	}
	if outHours != 8 {
		t.Fatalf("outage covers %d hourly samples, want 8", outHours)
	}
	// Empty Regions means all regions.
	all := Scripted(start, 3, []Strike{{Day: 1, Days: 1, Hours: 4}}, 1)
	for _, r := range netmodel.Regions() {
		if got := all.Hours(1, r); got != 4 {
			t.Fatalf("region %v = %g, want 4", r, got)
		}
	}
}
