// Package regional implements the paper's first core contribution (§4): the
// classification of ASes and /24 address blocks as regional, non-regional or
// temporal per oblast, based on long-term geolocation trends.
//
// An entity e (AS or /24 block) is regional for region R when its share of
// addresses located in R meets threshold M in at least T_perc of its routed
// months:
//
//	e ∈ E_reg  ⇔  Σ_t 1(s_t(e) ≥ M) ≥ ⌈T_perc · T_routed⌉
//
// with s_t(e) = n_t(e)/N_t(e), n_t the entity's addresses geolocated to R in
// month t and N_t its maximum (256 for blocks; the AS's home-country
// addresses for ASes — Ukrainian addresses in the paper). The paper selects
// M = T_perc = 0.7. The classifier is parameterized by the home country so
// the same machinery serves any country model.
package regional

import (
	"math"
	"sort"

	"countrymon/internal/dataset"
	"countrymon/internal/geodb"
	"countrymon/internal/netmodel"
	"countrymon/internal/par"
)

// Params are the classification thresholds.
type Params struct {
	// M is the per-month share threshold.
	M float64
	// TPerc is the fraction of routed months that must meet M.
	TPerc float64
	// TemporalIPs: a non-regional AS whose presence in the region never
	// reaches this many addresses in any month (one /24 = 256) ...
	TemporalIPs int
	// TemporalShare: ... and whose share never exceeds this, is temporal —
	// geolocation noise rather than a measurement target.
	TemporalShare float64
}

// DefaultParams returns the paper's chosen thresholds.
func DefaultParams() Params {
	return Params{M: 0.7, TPerc: 0.7, TemporalIPs: 256, TemporalShare: 0.10}
}

// ASClass is an AS's classification for one region.
type ASClass uint8

const (
	// ASAbsent means the AS never had an address geolocated to the region.
	ASAbsent ASClass = iota
	// ASTemporal marks noise-level presence (§4.2).
	ASTemporal
	// ASNonRegional marks substantial but not dominant presence.
	ASNonRegional
	// ASRegional marks sustained dominant presence.
	ASRegional
)

func (c ASClass) String() string {
	switch c {
	case ASTemporal:
		return "temporal"
	case ASNonRegional:
		return "non-regional"
	case ASRegional:
		return "regional"
	}
	return "absent"
}

// Classifier precomputes per-block monthly geolocation shares so that
// classifications for all 26 regions and arbitrary parameter sweeps (Figs
// 22/23) are cheap.
type Classifier struct {
	space   *netmodel.Space
	store   *dataset.Store
	months  int
	country string

	// shares[bi][m] is the block's address distribution in month m.
	shares [][]geodb.BlockShares
	// radius[bi][m] is the dominant geolocation entry's confidence radius.
	radius [][]uint16
	// blockRouted[bi][m] reports BGP coverage during month m.
	blockRouted [][]bool
	// homeIPs[asn][m] is the AS's home-country-located address count (the
	// N_t(e) denominator for AS shares).
	homeIPs map[netmodel.ASN][]int32
}

// NewClassifier builds the share tables from the monthly geolocation
// database and the measurement store (for routed months), with Ukraine as
// the home country (the paper's single-country pipeline).
func NewClassifier(space *netmodel.Space, db *geodb.DB, store *dataset.Store) *Classifier {
	return NewClassifierCountry(space, db, store, geodb.CountryUA)
}

// NewClassifierCountry is NewClassifier for an arbitrary home country: shares
// and AS denominators count only addresses the database locates in that
// country.
func NewClassifierCountry(space *netmodel.Space, db *geodb.DB, store *dataset.Store, country string) *Classifier {
	months := db.Months()
	c := &Classifier{
		space:       space,
		store:       store,
		months:      months,
		country:     country,
		shares:      make([][]geodb.BlockShares, space.NumBlocks()),
		radius:      make([][]uint16, space.NumBlocks()),
		blockRouted: make([][]bool, space.NumBlocks()),
		homeIPs:     make(map[netmodel.ASN][]int32),
	}
	// Per-block share tables are independent: shard them across the worker
	// pool. Each goroutine writes only its own rows.
	par.ForEach(space.NumBlocks(), func(bi int) {
		blk := space.Blocks()[bi]
		c.shares[bi] = make([]geodb.BlockShares, months)
		c.radius[bi] = make([]uint16, months)
		c.blockRouted[bi] = make([]bool, months)
		si := store.BlockIndex(blk)
		for m := 0; m < months; m++ {
			snap := db.Month(m)
			bs := snap.BlockSharesFor(blk, c.country)
			c.shares[bi][m] = bs
			if e, ok := snap.Lookup(blk.Addr(128)); ok {
				c.radius[bi][m] = uint16(min32(e.RadiusKM, 65535))
			}
			if si >= 0 {
				st := store.MonthStats(si, m)
				c.blockRouted[bi][m] = st.RoutedRounds > 0
			}
		}
	})

	// AS denominators: group blocks per origin AS sequentially (map writes),
	// then sum each AS's monthly home-country addresses in parallel.
	// Integer addition is order-independent, so the result is identical to
	// the sequential accumulation.
	asBlocks := make(map[netmodel.ASN][]int32)
	asns := make([]netmodel.ASN, 0, 64)
	for bi, blk := range space.Blocks() {
		asn := space.OriginOf(blk)
		if _, ok := asBlocks[asn]; !ok {
			asns = append(asns, asn)
			c.homeIPs[asn] = make([]int32, months)
		}
		asBlocks[asn] = append(asBlocks[asn], int32(bi))
	}
	par.ForEach(len(asns), func(ai int) {
		asn := asns[ai]
		home := c.homeIPs[asn]
		for _, bi := range asBlocks[asn] {
			for m := 0; m < months; m++ {
				bs := &c.shares[bi][m]
				for r := netmodel.Region(1); int(r) <= netmodel.NumRegions; r++ {
					home[m] += int32(bs.PerRegion[r])
				}
			}
		}
	})
	return c
}

// Country returns the classifier's home country code.
func (c *Classifier) Country() string { return c.country }

func min32(a uint32, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Months returns the number of classified months.
func (c *Classifier) Months() int { return c.months }

// BlockShare returns block bi's share of addresses in region r during month
// m (0..1).
func (c *Classifier) BlockShare(bi, m int, r netmodel.Region) float64 {
	return c.shares[bi][m].Share(r)
}

// BlockShares returns the raw per-region counts for block bi in month m.
func (c *Classifier) BlockShares(bi, m int) *geodb.BlockShares { return &c.shares[bi][m] }

// BlockRadius returns the block's geolocation confidence radius in month m.
func (c *Classifier) BlockRadius(bi, m int) uint16 { return c.radius[bi][m] }

// ASShare returns the AS's share of its home-country addresses located in
// region r during month m.
func (c *Classifier) ASShare(asn netmodel.ASN, m int, r netmodel.Region) float64 {
	n := 0
	for bi, blk := range c.space.Blocks() {
		if c.space.OriginOf(blk) != asn {
			continue
		}
		n += int(c.shares[bi][m].PerRegion[r])
	}
	total := c.homeIPs[asn]
	if total == nil || total[m] == 0 {
		return 0
	}
	return float64(n) / float64(total[m])
}

// MeanHomeIPs returns the AS's mean monthly count of home-country-located
// addresses (Table 3's "IPS" column denominator).
func (c *Classifier) MeanHomeIPs(asn netmodel.ASN) float64 {
	home := c.homeIPs[asn]
	if home == nil {
		return 0
	}
	sum := 0.0
	for _, v := range home {
		sum += float64(v)
	}
	return sum / float64(len(home))
}

// MeanRegionIPs returns the AS's mean monthly addresses located in the
// region.
func (c *Classifier) MeanRegionIPs(asn netmodel.ASN, region netmodel.Region) float64 {
	sum := 0.0
	for bi, blk := range c.space.Blocks() {
		if c.space.OriginOf(blk) != asn {
			continue
		}
		for m := 0; m < c.months; m++ {
			sum += float64(c.shares[bi][m].PerRegion[region])
		}
	}
	return sum / float64(c.months)
}

// MeanHomeBlocks returns the AS's mean monthly count of /24s with at least
// one home-country-located address.
func (c *Classifier) MeanHomeBlocks(asn netmodel.ASN) float64 {
	sum := 0
	for bi, blk := range c.space.Blocks() {
		if c.space.OriginOf(blk) != asn {
			continue
		}
		for m := 0; m < c.months; m++ {
			bs := &c.shares[bi][m]
			for r := netmodel.Region(1); int(r) <= netmodel.NumRegions; r++ {
				if bs.PerRegion[r] > 0 {
					sum++
					break
				}
			}
		}
	}
	return float64(sum) / float64(c.months)
}

// MeanRegionBlocks returns the AS's mean monthly count of /24s with at
// least one address located in the region.
func (c *Classifier) MeanRegionBlocks(asn netmodel.ASN, region netmodel.Region) float64 {
	sum := 0
	for bi, blk := range c.space.Blocks() {
		if c.space.OriginOf(blk) != asn {
			continue
		}
		for m := 0; m < c.months; m++ {
			if c.shares[bi][m].PerRegion[region] > 0 {
				sum++
			}
		}
	}
	return float64(sum) / float64(c.months)
}

// BlockClassification is one block's verdict for a region.
type BlockClassification struct {
	Index    int // dense block index in the Space
	Block    netmodel.BlockID
	Regional bool
	// EvalMonths marks the months in which the block meets the share
	// threshold; regional blocks are evaluated only in those months (§4.2).
	EvalMonths []bool
	// MeanShare is the average share across eval months (the weight the
	// regional signals apply).
	MeanShare float64
}

// RegionResult is the classification outcome for one region.
type RegionResult struct {
	Region netmodel.Region
	Params Params
	// AS maps every AS that ever had an address in the region to its class.
	AS map[netmodel.ASN]ASClass
	// Blocks holds the verdict for every block that ever located addresses
	// in the region.
	Blocks []BlockClassification
	// regionalIdx maps dense block index → position in Blocks for regional
	// blocks.
	regionalIdx map[int]int
}

// RegionalBlocks returns the classifications of regional blocks only.
func (r *RegionResult) RegionalBlocks() []BlockClassification {
	out := make([]BlockClassification, 0, len(r.regionalIdx))
	for _, bc := range r.Blocks {
		if bc.Regional {
			out = append(out, bc)
		}
	}
	return out
}

// RegionalBlock returns the classification of block index bi if regional.
func (r *RegionResult) RegionalBlock(bi int) (BlockClassification, bool) {
	if p, ok := r.regionalIdx[bi]; ok {
		return r.Blocks[p], true
	}
	return BlockClassification{}, false
}

// CountAS returns how many ASes hold the given class.
func (r *RegionResult) CountAS(class ASClass) int {
	n := 0
	for _, c := range r.AS {
		if c == class {
			n++
		}
	}
	return n
}

// Classify runs the region's classification.
func (c *Classifier) Classify(region netmodel.Region, p Params) *RegionResult {
	res := &RegionResult{
		Region:      region,
		Params:      p,
		AS:          make(map[netmodel.ASN]ASClass),
		regionalIdx: make(map[int]int),
	}

	// Block-level classification.
	for bi, blk := range c.space.Blocks() {
		present := false
		routedMonths := 0
		meet := 0
		evalMonths := make([]bool, c.months)
		shareSum, shareN := 0.0, 0
		for m := 0; m < c.months; m++ {
			share := c.shares[bi][m].Share(region)
			if c.shares[bi][m].PerRegion[region] > 0 {
				present = true
			}
			if !c.blockRouted[bi][m] {
				continue
			}
			routedMonths++
			if share >= p.M {
				meet++
				evalMonths[m] = true
				shareSum += share
				shareN++
			}
		}
		if !present {
			continue
		}
		need := int(math.Ceil(p.TPerc * float64(routedMonths)))
		regionalBlk := routedMonths > 0 && meet >= need && need > 0
		bc := BlockClassification{Index: bi, Block: blk, Regional: regionalBlk, EvalMonths: evalMonths}
		if shareN > 0 {
			bc.MeanShare = shareSum / float64(shareN)
		}
		if regionalBlk {
			res.regionalIdx[bi] = len(res.Blocks)
		}
		res.Blocks = append(res.Blocks, bc)
	}

	// AS-level classification over the same months.
	type asAgg struct {
		inRegion    []int32 // addresses in region per month
		routed      []bool
		maxIPs      int32
		maxShare    float64
		meet, total int
	}
	aggs := make(map[netmodel.ASN]*asAgg)
	for bi, blk := range c.space.Blocks() {
		asn := c.space.OriginOf(blk)
		a := aggs[asn]
		if a == nil {
			a = &asAgg{inRegion: make([]int32, c.months), routed: make([]bool, c.months)}
			aggs[asn] = a
		}
		for m := 0; m < c.months; m++ {
			a.inRegion[m] += int32(c.shares[bi][m].PerRegion[region])
			if c.blockRouted[bi][m] {
				a.routed[m] = true
			}
		}
	}
	for asn, a := range aggs {
		home := c.homeIPs[asn]
		present := false
		for m := 0; m < c.months; m++ {
			n := a.inRegion[m]
			if n == 0 {
				continue
			}
			present = true
			if n > a.maxIPs {
				a.maxIPs = n
			}
			var share float64
			if home[m] > 0 {
				share = float64(n) / float64(home[m])
			}
			if share > a.maxShare {
				a.maxShare = share
			}
			if !a.routed[m] {
				continue
			}
			a.total++
			if share >= p.M {
				a.meet++
			}
		}
		if !present {
			continue
		}
		need := int(math.Ceil(p.TPerc * float64(a.total)))
		switch {
		case a.total > 0 && need > 0 && a.meet >= need:
			res.AS[asn] = ASRegional
		case int(a.maxIPs) < p.TemporalIPs && a.maxShare < p.TemporalShare:
			res.AS[asn] = ASTemporal
		default:
			res.AS[asn] = ASNonRegional
		}
	}
	return res
}

// Result aggregates classifications across all 26 regions.
type Result struct {
	Params  Params
	Regions map[netmodel.Region]*RegionResult
}

// ClassifyAll classifies every region. Regions are independent reads of the
// precomputed share tables, so they shard across the worker pool.
func (c *Classifier) ClassifyAll(p Params) *Result {
	regions := netmodel.Regions()
	results := par.Map(len(regions), func(i int) *RegionResult {
		return c.Classify(regions[i], p)
	})
	res := &Result{Params: p, Regions: make(map[netmodel.Region]*RegionResult, len(regions))}
	for i, r := range regions {
		res.Regions[r] = results[i]
	}
	return res
}

// NationalClass is an AS's country-level classification (Table 3): regional
// if regional in ≥1 oblast; else non-regional if it has substantial presence
// anywhere; else temporal.
func (r *Result) NationalClass(asn netmodel.ASN) ASClass {
	best := ASAbsent
	for _, rr := range r.Regions {
		if c, ok := rr.AS[asn]; ok && c > best {
			best = c
		}
	}
	return best
}

// NationalCounts tallies Table 3's first column block: ASes per national
// class.
func (r *Result) NationalCounts() map[ASClass]int {
	seen := make(map[netmodel.ASN]ASClass)
	for _, rr := range r.Regions {
		for asn, c := range rr.AS {
			if c > seen[asn] {
				seen[asn] = c
			}
		}
	}
	out := make(map[ASClass]int)
	for _, c := range seen {
		out[c]++
	}
	return out
}

// TargetSet is Table 3's final row: ASes (regional or non-regional) owning
// at least one regional block, with the regional blocks and their address
// mass.
type TargetSet struct {
	ASes   map[netmodel.ASN]bool
	Blocks map[int]netmodel.Region // dense block index → region it is regional for
	IPs    float64                 // mean monthly addresses in regional blocks
}

// TargetSet computes the measurement target set across all regions.
func (r *Result) TargetSet(c *Classifier) *TargetSet {
	ts := &TargetSet{ASes: make(map[netmodel.ASN]bool), Blocks: make(map[int]netmodel.Region)}
	var ipSum float64
	for region, rr := range r.Regions {
		for _, bc := range rr.Blocks {
			if !bc.Regional {
				continue
			}
			if _, taken := ts.Blocks[bc.Index]; !taken {
				ts.Blocks[bc.Index] = region
				ts.ASes[c.space.OriginOf(bc.Block)] = true
				// Mean monthly address mass in the region.
				sum, n := 0.0, 0
				for m := 0; m < c.months; m++ {
					sum += float64(c.shares[bc.Index][m].PerRegion[region])
					n++
				}
				if n > 0 {
					ipSum += sum / float64(n)
				}
			}
		}
	}
	ts.IPs = ipSum
	return ts
}

// MultiLocalDominantShares returns, for blocks pointing at more than one
// region in a month, the dominant region's share (Fig 21's CDF input).
func (c *Classifier) MultiLocalDominantShares() []float64 {
	var out []float64
	for bi := range c.shares {
		for m := 0; m < c.months; m++ {
			bs := &c.shares[bi][m]
			regions := 0
			for r := netmodel.Region(1); int(r) <= netmodel.NumRegions; r++ {
				if bs.PerRegion[r] > 0 {
					regions++
				}
			}
			if regions < 2 {
				continue
			}
			_, n := bs.DominantRegion()
			if bs.Located > 0 {
				out = append(out, float64(n)/float64(bs.Located))
			}
		}
	}
	sort.Float64s(out)
	return out
}
