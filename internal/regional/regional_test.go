package regional

import (
	"sync"
	"testing"

	"countrymon/internal/dataset"
	"countrymon/internal/netmodel"
	"countrymon/internal/sim"
)

var (
	once sync.Once
	tSc  *sim.Scenario
	tSt  *dataset.Store
	tCl  *Classifier
	tRes *Result
)

func fixture(t *testing.T) (*sim.Scenario, *dataset.Store, *Classifier, *Result) {
	t.Helper()
	once.Do(func() {
		tSc = sim.MustBuild(sim.Config{Seed: 42, Scale: 0.05})
		tSt = tSc.GenerateStore(nil)
		tCl = NewClassifier(tSc.Space, tSc.GeoDB(), tSt)
		tRes = tCl.ClassifyAll(DefaultParams())
	})
	return tSc, tSt, tCl, tRes
}

func TestKhersonASClassification(t *testing.T) {
	_, _, _, res := fixture(t)
	kh := res.Regions[netmodel.Kherson]
	if kh == nil {
		t.Fatal("no Kherson result")
	}
	for _, asn := range sim.KhersonRegionalASNs() {
		if got := kh.AS[asn]; got != ASRegional {
			t.Errorf("%v should be regional for Kherson, got %v", asn, got)
		}
	}
	// National ISPs with Kherson blocks must not be regional for Kherson.
	for _, asn := range []netmodel.ASN{25229, 15895, 6877, 6849} {
		if got := kh.AS[asn]; got == ASRegional {
			t.Errorf("national %v misclassified regional for Kherson", asn)
		} else if got == ASAbsent {
			t.Errorf("national %v absent from Kherson", asn)
		}
	}
	// Temporal presence exists (geolocation noise drifting into Kherson).
	if kh.CountAS(ASTemporal) == 0 {
		t.Error("no temporal ASes detected in Kherson")
	}
}

func TestStatusBlocksSplitKyivKherson(t *testing.T) {
	sc, _, _, res := fixture(t)
	status := sc.Space.Lookup(25482)
	kh := res.Regions[netmodel.Kherson]
	kyiv := res.Regions[netmodel.Kyiv]
	khRegional, kyivRegional := 0, 0
	for _, blk := range status.Blocks() {
		bi := sc.Space.BlockIndex(blk)
		if _, ok := kh.RegionalBlock(bi); ok {
			khRegional++
		}
		if _, ok := kyiv.RegionalBlock(bi); ok {
			kyivRegional++
		}
	}
	if khRegional != 3 {
		t.Errorf("Status regional blocks in Kherson = %d, want 3", khRegional)
	}
	if kyivRegional != 1 {
		t.Errorf("Status regional blocks in Kyiv = %d, want 1 (the documented fourth block)", kyivRegional)
	}
}

func TestNationalASesNotRegionalViaDynamicPools(t *testing.T) {
	sc, _, _, res := fixture(t)
	// A national ISP must not be regional anywhere: its pools span regions.
	for _, asn := range []netmodel.ASN{15895, 6849, 21497} {
		if sc.Space.Lookup(asn) == nil {
			continue
		}
		if got := res.NationalClass(asn); got == ASRegional {
			t.Errorf("national ISP %v classified regional", asn)
		}
	}
	// But regional providers elsewhere are regional nationally.
	counts := res.NationalCounts()
	if counts[ASRegional] == 0 {
		t.Fatal("no regional ASes nationally")
	}
	if counts[ASRegional] < counts[ASNonRegional] {
		t.Errorf("regional (%d) should outnumber non-regional (%d), as in Table 3",
			counts[ASRegional], counts[ASNonRegional])
	}
}

func TestParameterMonotonicity(t *testing.T) {
	_, _, cl, _ := fixture(t)
	strict := cl.Classify(netmodel.Kherson, Params{M: 0.9, TPerc: 0.9, TemporalIPs: 256, TemporalShare: 0.10})
	def := cl.Classify(netmodel.Kherson, DefaultParams())
	relaxed := cl.Classify(netmodel.Kherson, Params{M: 0.5, TPerc: 0.5, TemporalIPs: 256, TemporalShare: 0.10})
	s, d, r := strict.CountAS(ASRegional), def.CountAS(ASRegional), relaxed.CountAS(ASRegional)
	if !(s <= d && d <= r) {
		t.Errorf("regional AS counts not monotone in thresholds: strict=%d default=%d relaxed=%d", s, d, r)
	}
	sb, db, rb := len(strict.RegionalBlocks()), len(def.RegionalBlocks()), len(relaxed.RegionalBlocks())
	if !(sb <= db && db <= rb) {
		t.Errorf("regional block counts not monotone: %d/%d/%d", sb, db, rb)
	}
}

func TestDynamicBlocksNotRegional(t *testing.T) {
	sc, _, _, res := fixture(t)
	misclassified, dynamic := 0, 0
	for bi := range sc.Blocks() {
		bt := sc.BlockTraitsAt(bi)
		if !bt.Dynamic {
			continue
		}
		dynamic++
		for _, rr := range res.Regions {
			if _, ok := rr.RegionalBlock(bi); ok {
				misclassified++
				break
			}
		}
	}
	if dynamic == 0 {
		t.Fatal("no dynamic blocks in scenario")
	}
	if frac := float64(misclassified) / float64(dynamic); frac > 0.1 {
		t.Errorf("%.0f%% of dynamic pool blocks classified regional; regionality should filter them", frac*100)
	}
}

func TestRegionalRadiusPrecision(t *testing.T) {
	// §4.3: regional blocks show better geolocation precision than
	// non-regional ones.
	sc, _, cl, res := fixture(t)
	var regSum, regN, nonSum, nonN float64
	for bi := range sc.Blocks() {
		isRegional := false
		for _, rr := range res.Regions {
			if _, ok := rr.RegionalBlock(bi); ok {
				isRegional = true
				break
			}
		}
		r := float64(cl.BlockRadius(bi, 6))
		if r == 0 {
			continue
		}
		if isRegional {
			regSum += r
			regN++
		} else {
			nonSum += r
			nonN++
		}
	}
	if regN == 0 || nonN == 0 {
		t.Fatal("empty radius samples")
	}
	if regSum/regN >= nonSum/nonN {
		t.Errorf("regional mean radius %.0f km should beat non-regional %.0f km", regSum/regN, nonSum/nonN)
	}
}

func TestTargetSet(t *testing.T) {
	sc, _, cl, res := fixture(t)
	ts := res.TargetSet(cl)
	if len(ts.ASes) == 0 || len(ts.Blocks) == 0 {
		t.Fatal("empty target set")
	}
	// Every Kherson ground-truth regional AS must be in the target set.
	for _, asn := range sim.KhersonRegionalASNs() {
		if !ts.ASes[asn] {
			t.Errorf("%v missing from target set", asn)
		}
	}
	// A block is assigned to exactly one region.
	for bi, region := range ts.Blocks {
		if !region.Valid() {
			t.Errorf("block %d assigned to invalid region", bi)
		}
	}
	if ts.IPs <= 0 {
		t.Error("target set IP mass is zero")
	}
	_ = sc
}

func TestMultiLocalDominantShares(t *testing.T) {
	_, _, cl, _ := fixture(t)
	shares := cl.MultiLocalDominantShares()
	if len(shares) == 0 {
		t.Fatal("no multi-local blocks found (drift noise missing)")
	}
	// CDF input must be sorted and within (0, 1].
	for i, s := range shares {
		if s <= 0 || s > 1 {
			t.Fatalf("share %f out of range", s)
		}
		if i > 0 && shares[i-1] > s {
			t.Fatal("shares not sorted")
		}
	}
	// Fig 21: a dominant majority usually exists.
	median := shares[len(shares)/2]
	if median < 0.5 {
		t.Errorf("median dominant share %.2f, want > 0.5", median)
	}
}

func TestBlockShareSeries(t *testing.T) {
	// Fig 2 style: a Kherson regional block's share must be ≥ M for ≥70%
	// of months.
	sc, _, cl, res := fixture(t)
	kh := res.Regions[netmodel.Kherson]
	blocks := kh.RegionalBlocks()
	if len(blocks) == 0 {
		t.Fatal("no regional blocks in Kherson")
	}
	bc := blocks[0]
	meets := 0
	for m := 0; m < cl.Months(); m++ {
		if cl.BlockShare(bc.Index, m, netmodel.Kherson) >= 0.7 {
			meets++
		}
	}
	if float64(meets) < 0.5*float64(cl.Months()) {
		t.Errorf("regional block meets threshold only %d/%d months", meets, cl.Months())
	}
	if bc.MeanShare < 0.7 {
		t.Errorf("MeanShare = %.2f", bc.MeanShare)
	}
	_ = sc
}
