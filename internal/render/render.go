// Package render draws the paper's timeline figures as text: per-entity
// outage strips (Figs 8, 11, 25, 28), sparkline series (Figs 9, 13, 16) and
// heat rows (Figs 10, 12, 26). Output is plain UTF-8 suitable for terminals
// and logs; the experiments and the countrymon CLI use it to make the
// reproduced figures legible rather than just tabulated.
package render

import (
	"fmt"
	"strings"
	"time"

	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

// Strip renders one entity's outage timeline compressed to `width` columns.
// Each column covers NumRounds/width rounds and shows the dominant state:
//
//	'█' BGP★ outage  '▓' FBS■ outage  '░' IPS▲ outage  '·' up  ' ' missing
func Strip(d *signals.Detection, missing []bool, width int) string {
	rounds := len(d.Flags)
	if width <= 0 || rounds == 0 {
		return ""
	}
	if width > rounds {
		width = rounds
	}
	var b strings.Builder
	for col := 0; col < width; col++ {
		lo := col * rounds / width
		hi := (col + 1) * rounds / width
		if hi == lo {
			hi = lo + 1
		}
		var bgp, fbs, ips, up, miss int
		for r := lo; r < hi; r++ {
			switch {
			case missing != nil && missing[r]:
				miss++
			case d.Flags[r].Has(signals.SignalBGP):
				bgp++
			case d.Flags[r].Has(signals.SignalFBS):
				fbs++
			case d.Flags[r].Has(signals.SignalIPS):
				ips++
			default:
				up++
			}
		}
		switch {
		case bgp > 0:
			b.WriteRune('█')
		case fbs > 0:
			b.WriteRune('▓')
		case ips > 0:
			b.WriteRune('░')
		case miss > up:
			b.WriteRune(' ')
		default:
			b.WriteRune('·')
		}
	}
	return b.String()
}

// StripLegend explains the Strip glyphs.
func StripLegend() string {
	return "█ BGP★  ▓ FBS■  ░ IPS▲  · up  (blank) missing"
}

// Timeline renders labelled strips for several entities over a shared
// timeline, with a year axis.
func Timeline(tl *timeline.Timeline, rows []LabeledDetection, width int) string {
	var b strings.Builder
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s %s\n", labelW, r.Label, Strip(r.Detection, r.Missing, width))
	}
	fmt.Fprintf(&b, "%-*s %s\n", labelW, "", axis(tl, width))
	fmt.Fprintf(&b, "%-*s %s\n", labelW, "", StripLegend())
	return b.String()
}

// LabeledDetection pairs a detection with its display label.
type LabeledDetection struct {
	Label     string
	Detection *signals.Detection
	Missing   []bool
}

// axis marks year boundaries along the compressed width.
func axis(tl *timeline.Timeline, width int) string {
	out := []rune(strings.Repeat("-", width))
	labels := map[int]string{}
	rounds := tl.NumRounds()
	startYear := tl.Start().Year()
	endYear := tl.End().Year()
	for y := startYear + 1; y <= endYear; y++ {
		r := tl.Round(time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC))
		col := r * width / rounds
		if col >= 0 && col < width {
			out[col] = '|'
			labels[col] = fmt.Sprintf("%d", y)
		}
	}
	line := string(out)
	// Lay labels under their tick marks where they fit.
	lab := []rune(strings.Repeat(" ", width))
	for col, text := range labels {
		for i, ch := range text {
			if col+i < width {
				lab[col+i] = ch
			}
		}
	}
	return line + "\n" + strings.TrimRight(string(lab), " ")
}

// Sparkline renders a numeric series as eight-level bars.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if width > len(vals) {
		width = len(vals)
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for col := 0; col < width; col++ {
		lo := col * len(vals) / width
		hi := (col + 1) * len(vals) / width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += vals[i]
		}
		v := sum / float64(hi-lo)
		if max == 0 {
			b.WriteRune(levels[0])
			continue
		}
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// HeatRow renders values 0..maxVal as a shaded row (Fig 10's day grid).
func HeatRow(vals []float64, maxVal float64) string {
	shades := []rune(" ░▒▓█")
	var b strings.Builder
	for _, v := range vals {
		if maxVal <= 0 {
			b.WriteRune(shades[0])
			continue
		}
		idx := int(v / maxVal * float64(len(shades)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(shades) {
			idx = len(shades) - 1
		}
		b.WriteRune(shades[idx])
	}
	return b.String()
}
