package render

import (
	"strings"
	"testing"
	"time"

	"countrymon/internal/signals"
	"countrymon/internal/timeline"
)

func testDetection(rounds int) (*signals.Detection, []bool) {
	d := &signals.Detection{Flags: make([]signals.Kind, rounds)}
	missing := make([]bool, rounds)
	for r := 100; r < 120; r++ {
		d.Flags[r] = signals.SignalBGP
	}
	for r := 200; r < 210; r++ {
		d.Flags[r] = signals.SignalIPS
	}
	for r := 300; r < 305; r++ {
		missing[r] = true
	}
	return d, missing
}

func TestStrip(t *testing.T) {
	d, missing := testDetection(400)
	s := Strip(d, missing, 400) // 1:1 mapping
	runes := []rune(s)
	if len(runes) != 400 {
		t.Fatalf("width = %d", len(runes))
	}
	if runes[100] != '█' {
		t.Errorf("BGP round rendered as %q", runes[100])
	}
	if runes[200] != '░' {
		t.Errorf("IPS round rendered as %q", runes[200])
	}
	if runes[302] != ' ' {
		t.Errorf("missing round rendered as %q", runes[302])
	}
	if runes[0] != '·' {
		t.Errorf("up round rendered as %q", runes[0])
	}
}

func TestStripCompression(t *testing.T) {
	d, missing := testDetection(400)
	s := Strip(d, missing, 40)
	runes := []rune(s)
	if len(runes) != 40 {
		t.Fatalf("width = %d", len(runes))
	}
	// The BGP outage at rounds 100-120 lands at columns ~10-11.
	if runes[10] != '█' {
		t.Errorf("compressed BGP column = %q (strip %s)", runes[10], s)
	}
	// Degenerate widths.
	if Strip(d, missing, 0) != "" {
		t.Error("zero width should render empty")
	}
	if got := len([]rune(Strip(d, missing, 10000))); got != 400 {
		t.Errorf("width clamps to rounds, got %d", got)
	}
}

func TestTimeline(t *testing.T) {
	start := time.Date(2022, 3, 2, 22, 0, 0, 0, time.UTC)
	tl := timeline.New(start, start.AddDate(2, 0, 0), 6*time.Hour)
	d := &signals.Detection{Flags: make([]signals.Kind, tl.NumRounds())}
	out := Timeline(tl, []LabeledDetection{
		{Label: "Kherson", Detection: d},
		{Label: "Lviv", Detection: d},
	}, 80)
	if !strings.Contains(out, "Kherson") || !strings.Contains(out, "Lviv") {
		t.Error("labels missing")
	}
	if !strings.Contains(out, "2023") || !strings.Contains(out, "2024") {
		t.Errorf("year axis missing:\n%s", out)
	}
	if !strings.Contains(out, "BGP★") {
		t.Error("legend missing")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline = %s", s)
	}
	// Monotone non-decreasing input gives monotone glyph levels.
	prev := -1
	levels := "▁▂▃▄▅▆▇█"
	for _, r := range runes {
		idx := strings.IndexRune(levels, r)
		if idx < prev {
			t.Fatalf("sparkline not monotone: %s", s)
		}
		prev = idx
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty input should render empty")
	}
	if got := Sparkline([]float64{0, 0, 0}, 3); got != "▁▁▁" {
		t.Errorf("all-zero sparkline = %q", got)
	}
}

func TestHeatRow(t *testing.T) {
	row := HeatRow([]float64{0, 6, 12, 18, 24}, 24)
	if []rune(row)[0] != ' ' || []rune(row)[4] != '█' {
		t.Errorf("heat row = %q", row)
	}
	if got := HeatRow([]float64{5}, 0); got != " " {
		t.Errorf("zero-max heat = %q", got)
	}
}
