package ripe

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"countrymon/internal/netmodel"
)

// TestQuickPrefixExpansion: for arbitrary (start, count), the expanded
// prefixes must exactly tile [start, start+count) without overlaps.
func TestQuickPrefixExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		start := netmodel.Addr(rng.Uint32())
		count := uint64(rng.Intn(1<<14) + 1)
		if uint64(start)+count > 1<<32 {
			continue
		}
		r := Record{Start: start, Count: count}
		ps := r.Prefixes(nil)
		var total uint64
		cursor := uint64(start)
		for _, p := range ps {
			if uint64(p.Base) != cursor {
				t.Fatalf("trial %d: gap or overlap at %v (cursor %d)", trial, p, cursor)
			}
			if !p.Contains(p.Base) {
				t.Fatalf("trial %d: malformed prefix %v", trial, p)
			}
			total += p.NumAddrs()
			cursor += p.NumAddrs()
		}
		if total != count {
			t.Fatalf("trial %d: covered %d of %d addrs", trial, total, count)
		}
	}
}

// TestQuickParseNeverPanics feeds arbitrary text to the parser.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(lines []string) bool {
		in := strings.Join(lines, "\n")
		_, err := Parse(strings.NewReader(in))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWriteParseRoundTrip fuzzes random files through the text format.
func TestQuickWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ccs := []string{"UA", "RU", "PL", "CZ", "DE", "US"}
	for trial := 0; trial < 60; trial++ {
		f := &File{}
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			f.Records = append(f.Records, Record{
				Registry: "ripencc",
				CC:       ccs[rng.Intn(len(ccs))],
				Type:     "ipv4",
				Start:    netmodel.Addr(rng.Uint32() &^ 0xff),
				Count:    uint64(1) << uint(rng.Intn(12)+4),
				Date:     time.Date(1995+rng.Intn(30), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC),
				Status:   []string{StatusAllocated, StatusAssigned}[rng.Intn(2)],
			})
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != len(f.Records) {
			t.Fatalf("trial %d: %d vs %d records", trial, len(got.Records), len(f.Records))
		}
		for i := range got.Records {
			if got.Records[i] != f.Records[i] {
				t.Fatalf("trial %d: record %d: %+v vs %+v", trial, i, got.Records[i], f.Records[i])
			}
		}
		// Diff of a file against itself is all-kept.
		for _, cc := range ccs {
			d := DiffCountry(f, got, cc)
			if d.Withdrawn != 0 || d.Added != 0 || d.RecodedTotal() != 0 {
				t.Fatalf("trial %d: self-diff not clean for %s: %+v", trial, cc, d)
			}
		}
	}
}
