// Package ripe reads and writes RIR delegation files in the RIPE NCC
// "delegated" format the paper uses to build its target list (§3.2):
//
//	ripencc|UA|ipv4|91.198.4.0|256|20060912|allocated
//
// It also provides snapshot diffing for the churn analysis of Appendix B
// (country-code changes, withdrawn and newly allocated ranges) and CIDR
// expansion of the count-based ranges into prefixes for the scanner.
package ripe

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"time"

	"countrymon/internal/netmodel"
)

// Status values used in delegation files.
const (
	StatusAllocated = "allocated"
	StatusAssigned  = "assigned"
)

// Record is one delegation line.
type Record struct {
	Registry string // "ripencc"
	CC       string // ISO country code
	Type     string // "ipv4" (others preserved but unused)
	Start    netmodel.Addr
	Count    uint64 // number of addresses (not necessarily a power of two)
	Date     time.Time
	Status   string
}

// Prefixes expands the record's address range into CIDR prefixes, appending
// to dst.
func (r Record) Prefixes(dst []netmodel.Prefix) []netmodel.Prefix {
	start := uint64(r.Start)
	count := r.Count
	for count > 0 {
		// Largest power-of-two chunk aligned at start and ≤ count.
		maxAlign := uint64(1) << bits.TrailingZeros64(start|1<<32)
		chunk := maxAlign
		if chunk > count {
			chunk = 1 << (63 - bits.LeadingZeros64(count))
		}
		bitsLen := uint8(32 - bits.TrailingZeros64(chunk))
		p, _ := netmodel.NewPrefix(netmodel.Addr(start), bitsLen)
		dst = append(dst, p)
		start += chunk
		count -= chunk
	}
	return dst
}

// Key identifies a delegation range independent of its metadata.
type Key struct {
	Start netmodel.Addr
	Count uint64
}

// Key returns the record's range identity.
func (r Record) Key() Key { return Key{Start: r.Start, Count: r.Count} }

// File is a parsed delegation snapshot.
type File struct {
	Records []Record
}

// Parse reads a delegated-format file.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	f := &File{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		// Version line: "2|ripencc|...". Summary line: "...|summary".
		if len(fields) > 0 && fields[len(fields)-1] == "summary" {
			continue
		}
		if len(fields) >= 2 && fields[0] != "" && fields[0][0] >= '0' && fields[0][0] <= '9' {
			continue // version header
		}
		if len(fields) < 7 {
			return nil, fmt.Errorf("ripe: line %d: %d fields", lineNo, len(fields))
		}
		if fields[2] != "ipv4" {
			continue // ipv6/asn records are out of scope
		}
		start, err := netmodel.ParseAddr(fields[3])
		if err != nil {
			return nil, fmt.Errorf("ripe: line %d: %v", lineNo, err)
		}
		count, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil || count == 0 {
			return nil, fmt.Errorf("ripe: line %d: bad count %q", lineNo, fields[4])
		}
		var date time.Time
		if fields[5] != "" {
			date, err = time.Parse("20060102", fields[5])
			if err != nil {
				return nil, fmt.Errorf("ripe: line %d: bad date %q", lineNo, fields[5])
			}
		}
		f.Records = append(f.Records, Record{
			Registry: fields[0], CC: fields[1], Type: fields[2],
			Start: start, Count: count, Date: date, Status: fields[6],
		})
	}
	return f, sc.Err()
}

// WriteTo writes the file in delegated format, including a version header.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "2|ripencc|%s|%d|%d|19830705|00000000|+0200\n",
		time.Now().UTC().Format("20060102"), len(f.Records), len(f.Records))
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, r := range f.Records {
		date := ""
		if !r.Date.IsZero() {
			date = r.Date.Format("20060102")
		}
		k, err := fmt.Fprintf(bw, "%s|%s|%s|%s|%d|%s|%s\n",
			r.Registry, r.CC, r.Type, r.Start, r.Count, date, r.Status)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// CountryRecords returns the records delegated to cc, sorted by start.
func (f *File) CountryRecords(cc string) []Record {
	var out []Record
	for _, r := range f.Records {
		if r.CC == cc {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// CountryPrefixes expands a country's delegations into prefixes — the
// scanner's target input.
func (f *File) CountryPrefixes(cc string) []netmodel.Prefix {
	var ps []netmodel.Prefix
	for _, r := range f.CountryRecords(cc) {
		ps = r.Prefixes(ps)
	}
	return ps
}

// CountryAddrCount sums the delegated address count for cc.
func (f *File) CountryAddrCount(cc string) uint64 {
	var n uint64
	for _, r := range f.Records {
		if r.CC == cc {
			n += r.Count
		}
	}
	return n
}

// Diff compares two snapshots for a country of interest (Appendix B).
type Diff struct {
	Kept      int            // ranges still delegated to the country
	Recoded   map[string]int // ranges now under a different CC, by new CC
	Withdrawn int            // ranges gone entirely
	Added     int            // ranges new in the second snapshot
}

// DiffCountry computes the delegation churn for cc between two snapshots.
func DiffCountry(oldF, newF *File, cc string) Diff {
	d := Diff{Recoded: make(map[string]int)}
	newByKey := make(map[Key]Record)
	for _, r := range newF.Records {
		newByKey[r.Key()] = r
	}
	oldKeys := make(map[Key]bool)
	for _, r := range oldF.Records {
		if r.CC != cc {
			continue
		}
		oldKeys[r.Key()] = true
		nr, ok := newByKey[r.Key()]
		switch {
		case !ok:
			d.Withdrawn++
		case nr.CC == cc:
			d.Kept++
		default:
			d.Recoded[nr.CC]++
		}
	}
	for _, r := range newF.Records {
		if r.CC == cc && !oldKeys[r.Key()] {
			d.Added++
		}
	}
	return d
}

// RecodedTotal returns the number of re-registered ranges across all
// destination country codes.
func (d Diff) RecodedTotal() int {
	n := 0
	for _, v := range d.Recoded {
		n += v
	}
	return n
}

// AddrSeries returns, per snapshot, the total addresses delegated to cc —
// Fig 18's series.
func AddrSeries(snaps []*File, cc string) []uint64 {
	out := make([]uint64, len(snaps))
	for i, f := range snaps {
		out[i] = f.CountryAddrCount(cc)
	}
	return out
}
