package ripe

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"countrymon/internal/netmodel"
)

const sampleFile = `# RIPE delegated file (test)
2|ripencc|20211214|4|4|19830705|00000000|+0200
ripencc|UA|ipv4|91.198.4.0|256|20060912|allocated
ripencc|UA|ipv4|176.8.0.0|8192|20110421|allocated
ripencc|UA|ipv4|193.151.240.0|1024|19990101|assigned
ripencc|CZ|ipv4|185.66.0.0|512|20150101|allocated
ripencc|UA|ipv6|2a00:1f00::|32||allocated
ripencc|UA|asn|25482|1|20020101|allocated
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 4 {
		t.Fatalf("records = %d, want 4 (ipv4 only)", len(f.Records))
	}
	r := f.Records[0]
	if r.CC != "UA" || r.Start != netmodel.MustParseAddr("91.198.4.0") || r.Count != 256 {
		t.Errorf("record 0 = %+v", r)
	}
	if r.Date != time.Date(2006, 9, 12, 0, 0, 0, 0, time.UTC) {
		t.Errorf("date = %v", r.Date)
	}
	if got := f.CountryAddrCount("UA"); got != 256+8192+1024 {
		t.Errorf("UA addr count = %d", got)
	}
	if got := len(f.CountryRecords("CZ")); got != 1 {
		t.Errorf("CZ records = %d", got)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"ripencc|UA|ipv4|91.198.4.0|256\n",                      // too few fields
		"ripencc|UA|ipv4|999.0.0.0|256|20060912|allocated\n",    // bad address
		"ripencc|UA|ipv4|91.198.4.0|0|20060912|allocated\n",     // zero count
		"ripencc|UA|ipv4|91.198.4.0|256|2006-09-12|allocated\n", // bad date
		"ripencc|UA|ipv4|91.198.4.0|notanumber|20060912|allocated\n",
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(f.Records) {
		t.Fatalf("round trip records = %d", len(got.Records))
	}
	for i := range got.Records {
		if got.Records[i] != f.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], f.Records[i])
		}
	}
}

func TestRecordPrefixes(t *testing.T) {
	cases := []struct {
		start string
		count uint64
		want  []string
	}{
		{"91.198.4.0", 256, []string{"91.198.4.0/24"}},
		{"91.198.4.0", 1024, []string{"91.198.4.0/22"}},
		// Non-power-of-two count: 768 = 512 + 256.
		{"91.198.4.0", 768, []string{"91.198.4.0/23", "91.198.6.0/24"}},
		// Alignment constraint: starting at .1.0 a /23 is not aligned.
		{"10.0.1.0", 512, []string{"10.0.1.0/24", "10.0.2.0/24"}},
	}
	for _, c := range cases {
		r := Record{Start: netmodel.MustParseAddr(c.start), Count: c.count}
		ps := r.Prefixes(nil)
		if len(ps) != len(c.want) {
			t.Errorf("%s/%d: got %v, want %v", c.start, c.count, ps, c.want)
			continue
		}
		total := uint64(0)
		for i, p := range ps {
			if p.String() != c.want[i] {
				t.Errorf("%s/%d: prefix %d = %v, want %s", c.start, c.count, i, p, c.want[i])
			}
			total += p.NumAddrs()
		}
		if total != c.count {
			t.Errorf("%s/%d: prefixes cover %d addrs", c.start, c.count, total)
		}
	}
}

func TestCountryPrefixes(t *testing.T) {
	f, _ := Parse(strings.NewReader(sampleFile))
	ps := f.CountryPrefixes("UA")
	var blocks int
	for _, p := range ps {
		blocks += p.NumBlocks()
	}
	if blocks != 1+32+4 {
		t.Errorf("UA /24 blocks = %d, want 37", blocks)
	}
}

func TestDiffCountry(t *testing.T) {
	oldF, _ := Parse(strings.NewReader(sampleFile))
	newSample := `2|ripencc|20250101|4|4|19830705|00000000|+0200
ripencc|UA|ipv4|91.198.4.0|256|20060912|allocated
ripencc|RU|ipv4|176.8.0.0|8192|20110421|allocated
ripencc|CZ|ipv4|185.66.0.0|512|20150101|allocated
ripencc|UA|ipv4|45.155.0.0|512|20240101|allocated
`
	newF, err := Parse(strings.NewReader(newSample))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffCountry(oldF, newF, "UA")
	if d.Kept != 1 {
		t.Errorf("Kept = %d", d.Kept)
	}
	if d.Recoded["RU"] != 1 || d.RecodedTotal() != 1 {
		t.Errorf("Recoded = %+v", d.Recoded)
	}
	if d.Withdrawn != 1 { // 193.151.240.0 gone
		t.Errorf("Withdrawn = %d", d.Withdrawn)
	}
	if d.Added != 1 { // 45.155.0.0 new
		t.Errorf("Added = %d", d.Added)
	}
}

func TestAddrSeries(t *testing.T) {
	f1, _ := Parse(strings.NewReader(sampleFile))
	f2, _ := Parse(strings.NewReader("ripencc|UA|ipv4|91.198.4.0|256|20060912|allocated\n"))
	s := AddrSeries([]*File{f1, f2}, "UA")
	if s[0] != 9472 || s[1] != 256 {
		t.Errorf("series = %v", s)
	}
}
