package scanner

import (
	"errors"
	"time"
)

// DefaultBatch is the number of packets handed to the transport per
// WriteBatch/ReadBatch call. 64 matches the token bucket's default burst, so
// a batch is exactly one burst of probes.
const DefaultBatch = 64

// BatchTransport extends Transport with batched I/O, amortizing per-packet
// overhead (locks, syscalls) across a whole burst, in the spirit of ZMap's
// sendmmsg batching.
type BatchTransport interface {
	Transport

	// WriteBatch transmits pkts in order and returns how many were sent.
	// When n < len(pkts), err explains why pkts[n] could not be sent (it is
	// never nil in that case), so the caller can retry or abandon that
	// packet and resubmit the tail. Implementations must not retain the
	// buffers after returning.
	WriteBatch(pkts [][]byte) (n int, err error)

	// ReadBatch fills pkts[i] (reusing each slot's backing storage via
	// append(pkts[i][:0], ...)) and ats[i] with inbound datagrams and their
	// receive times. The first packet may be waited for up to `wait`
	// (0 = poll); packets after the first are taken only if immediately
	// available. It returns how many slots were filled: (0, nil) means the
	// wait elapsed with nothing to read — a timeout is not an error — while
	// a non-nil err reports a receive failure after n good packets.
	ReadBatch(pkts [][]byte, ats []time.Time, wait time.Duration) (n int, err error)
}

// AsBatch returns tr's batched view: the transport itself when it already
// implements BatchTransport, else a shim that loops the packet-at-a-time
// calls. The shim keeps per-packet semantics (call order, error identity)
// exactly as the serial engine saw them, so plain test transports behave
// identically under the batched engine.
func AsBatch(tr Transport) BatchTransport {
	if bt, ok := tr.(BatchTransport); ok {
		return bt
	}
	return &batchShim{Transport: tr}
}

type batchShim struct {
	Transport
}

func (s *batchShim) WriteBatch(pkts [][]byte) (int, error) {
	for i, p := range pkts {
		if err := s.Transport.WritePacket(p); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

func (s *batchShim) ReadBatch(pkts [][]byte, ats []time.Time, wait time.Duration) (int, error) {
	count := 0
	for count < len(pkts) {
		pkt, at, err := s.Transport.ReadPacket(wait)
		wait = 0
		if err != nil {
			if errors.Is(err, ErrTimeout) {
				return count, nil
			}
			return count, err
		}
		pkts[count] = append(pkts[count][:0], pkt...)
		ats[count] = at
		count++
	}
	return count, nil
}
