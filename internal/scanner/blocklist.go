package scanner

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"countrymon/internal/netmodel"
)

// ParseBlocklist reads a ZMap-style exclusion file: one CIDR per line,
// with '#' comments and blank lines ignored. Bare addresses count as /32.
//
//	# ranges that asked to be excluded
//	91.198.5.0/24   # opt-out 2022-06-01
//	10.0.0.1
func ParseBlocklist(r io.Reader) ([]netmodel.Prefix, error) {
	sc := bufio.NewScanner(r)
	var out []netmodel.Prefix
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !strings.ContainsRune(line, '/') {
			line += "/32"
		}
		p, err := netmodel.ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("blocklist line %d: %w", lineNo, err)
		}
		out = append(out, p)
	}
	return out, sc.Err()
}
