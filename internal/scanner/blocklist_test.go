package scanner_test

import (
	"strings"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
)

func TestParseBlocklist(t *testing.T) {
	in := `
# opt-outs
91.198.5.0/24   # requested 2022-06-01
10.0.0.1

  192.0.2.0/28
`
	ps, err := scanner.ParseBlocklist(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("prefixes = %d", len(ps))
	}
	if ps[0] != netmodel.MustParsePrefix("91.198.5.0/24") {
		t.Errorf("p0 = %v", ps[0])
	}
	if ps[1] != netmodel.MustParsePrefix("10.0.0.1/32") {
		t.Errorf("bare address = %v", ps[1])
	}
	if ps[2].Bits != 28 {
		t.Errorf("p2 = %v", ps[2])
	}
}

func TestParseBlocklistRejects(t *testing.T) {
	if _, err := scanner.ParseBlocklist(strings.NewReader("not-an-address\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := scanner.ParseBlocklist(strings.NewReader("10.0.0.0/33\n")); err == nil {
		t.Error("bad mask accepted")
	}
	ps, err := scanner.ParseBlocklist(strings.NewReader("# only comments\n\n"))
	if err != nil || len(ps) != 0 {
		t.Errorf("comment-only file: %v %v", ps, err)
	}
}

// lossyTransport drops the first probe to every address, so only
// retransmissions get through.
type lossyTransport struct {
	inner scanner.Transport
	seen  map[netmodel.Addr]bool
}

func (l *lossyTransport) LocalAddr() netmodel.Addr { return l.inner.LocalAddr() }
func (l *lossyTransport) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	return l.inner.ReadPacket(wait)
}
func (l *lossyTransport) WritePacket(b []byte) error {
	// Destination address lives at bytes 16..20 of the IPv4 header.
	dst := netmodel.AddrFromBytes([4]byte(b[16:20]))
	if !l.seen[dst] {
		l.seen[dst] = true
		return nil // drop first attempt silently
	}
	return l.inner.WritePacket(b)
}
