package scanner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
)

// The scan engine assembles probes into batches, paces each batch with one
// rate-limiter release, and hands it to the transport's WriteBatch, while
// replies come back through ReadBatch into reusable buffers. Two drivers
// share this state: runSerial interleaves batch sends with opportunistic
// drains on one goroutine (fully deterministic on a virtual clock), and
// runPipelined splits sending and receiving onto two goroutines so the
// receive path no longer steals send throughput on real transports.

// roundRun is the mutable state of one scan round, split into sender-owned
// and receiver-owned halves so the pipelined engine needs no locks on the
// hot path; finalize merges the halves into RoundData in a fixed order, so
// the result is independent of goroutine scheduling.
type roundRun struct {
	cfg     Config
	tr      BatchTransport
	targets *TargetSet
	val     *Validator
	rl      *RateLimiter
	rng     uint64 // deterministic jitter source for retry backoff
	maxFail int    // error budget in addresses

	// Sender-owned state.
	send      Stats // Sent, SendErrors, Retries
	probed    int
	failed    int
	sendErr   error // last abandoned-probe error
	sendAbort bool  // error budget exhausted

	// pub tracks the sender counters already published to the metrics
	// registry, so each batch adds only its delta (one atomic add per batch,
	// not per packet) while /metrics stays live mid-round.
	pub      Stats
	pubSlept time.Duration

	// Receiver-owned state.
	recv     Stats // Received, Valid, Duplicates, Invalid, NonEcho, RecvErrors
	blocks   []BlockResult
	recvDead bool
	recvErr  error

	// abort is the first cancellation (context or Stop) observed; in
	// pipelined mode both halves may race to set it.
	mu    sync.Mutex
	abort error
}

func (r *roundRun) setAbort(err error) {
	r.mu.Lock()
	if r.abort == nil {
		r.abort = err
	}
	r.mu.Unlock()
}

func (r *roundRun) abortState() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.abort
}

// runSerial drives the round on one goroutine: replies are drained without
// waiting between batches and stragglers are collected in the cooldown.
func (r *roundRun) runSerial(s *Scanner, ctx context.Context, cur *Cursor) {
	rb := newRecvBufs(r.cfg.Batch)
	r.sendBatches(s, ctx, cur, func() { r.drainPending(rb) })
	if r.abortState() == nil {
		r.cooldown(s, ctx, rb)
	}
}

// runPipelined overlaps sending and receiving. The receiver polls with
// wait 0 on virtual clocks — a blocking read would advance virtual time
// underneath the sender's pacing — and blocks briefly on the wall clock.
// Determinism on virtual clocks is preserved because the clock advances
// only through the sender, replies are processed in delivery order by the
// single receiver, and the halves merge in a fixed order.
func (r *roundRun) runPipelined(s *Scanner, ctx context.Context, cur *Cursor) {
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		r.sendBatches(s, ctx, cur, nil)
	}()

	rb := newRecvBufs(r.cfg.Batch)
	var poll time.Duration
	if _, wall := r.cfg.Clock.(RealClock); wall {
		poll = time.Millisecond
	}
	running := true
	for running && !r.recvDead {
		select {
		case <-senderDone:
			running = false
		default:
		}
		if err := s.interrupted(ctx); err != nil {
			r.setAbort(err)
			break
		}
		n, err := r.tr.ReadBatch(rb.pkts, rb.ats, poll)
		for i := 0; i < n; i++ {
			r.processReply(rb.pkts[i], rb.ats[i])
		}
		if err != nil {
			if !r.recvFailure(err) {
				break
			}
			continue
		}
		if n == 0 && poll == 0 {
			runtime.Gosched()
		}
	}
	<-senderDone
	if r.abortState() == nil && !r.recvDead {
		r.cooldown(s, ctx, rb)
	}
}

// addrSend tracks one address's in-flight probes within a batch.
type addrSend struct {
	left int  // probes not yet resolved
	ok   bool // at least one probe transmitted
}

// sendBatches walks the shard cursor, packing whole addresses into batches
// (all ProbesPerAddr probes of an address share a batch, so per-address
// outcomes — probed, failed, error budget — resolve as the batch is
// written). drain, when non-nil, runs between batches: the serial engine's
// opportunistic reply collection.
func (r *roundRun) sendBatches(s *Scanner, ctx context.Context, cur *Cursor, drain func()) {
	nb := r.cfg.Batch
	ppa := r.cfg.ProbesPerAddr
	bufs := make([][]byte, nb)
	for i := range bufs {
		bufs[i] = make([]byte, 0, 128)
	}
	pkts := make([][]byte, 0, nb)
	dsts := make([]netmodel.Addr, 0, nb)
	pktAddr := make([]int, 0, nb)
	addrs := make([]addrSend, 0, nb)
	src := r.tr.LocalAddr()
	var seq uint64 // monotone probe counter, baked into the IPv4 ID field

	done := false
	for !done {
		if err := s.interrupted(ctx); err != nil {
			r.setAbort(err)
			return
		}
		pkts, dsts, pktAddr, addrs = pkts[:0], dsts[:0], pktAddr[:0], addrs[:0]
		for len(pkts)+ppa <= nb {
			idx, ok := cur.Next()
			if !ok {
				done = true
				break
			}
			a := len(addrs)
			addrs = append(addrs, addrSend{left: ppa})
			dst := r.targets.Addr(idx)
			for p := 0; p < ppa; p++ {
				dsts = append(dsts, dst)
				pktAddr = append(pktAddr, a)
				pkts = append(pkts, nil)
			}
		}
		if len(pkts) == 0 {
			break
		}
		// Pay the whole batch's pacing debt up front, then stamp every
		// probe at the single post-wait instant: embedded timestamps match
		// the actual send time, so RTTs stay exact.
		r.rl.WaitN(len(pkts))
		now := r.cfg.Clock.Now()
		for i := range pkts {
			bufs[i] = r.encodeProbe(bufs[i][:0], src, dsts[i], now, uint16(seq)+uint16(i))
			pkts[i] = bufs[i]
		}
		r.cfg.Metrics.BatchFill.Observe(float64(len(pkts)) / float64(nb))
		ok := r.writeBatch(s, ctx, pkts, dsts, pktAddr, addrs, seq, src)
		r.publishSend()
		if !ok {
			return
		}
		seq += uint64(len(pkts))
		if drain != nil {
			drain()
		}
	}
}

// publishSend adds the growth of the sender-owned counters since the last
// publish to the metrics registry. Called once per batch by the sender only.
func (r *roundRun) publishSend() {
	m := r.cfg.Metrics
	m.ProbesSent.Add(r.send.Sent - r.pub.Sent)
	m.SendErrors.Add(r.send.SendErrors - r.pub.SendErrors)
	m.Retries.Add(r.send.Retries - r.pub.Retries)
	r.pub.Sent, r.pub.SendErrors, r.pub.Retries = r.send.Sent, r.send.SendErrors, r.send.Retries
	if slept := r.rl.Slept(); slept > r.pubSlept {
		m.RateSleepNs.Add(uint64(slept - r.pubSlept))
		r.pubSlept = slept
	}
}

// encodeProbe appends the full IPv4+ICMP probe datagram for dst to buf in
// one pass (no intermediate payload buffer).
func (r *roundRun) encodeProbe(buf []byte, src, dst netmodel.Addr, now time.Time, id uint16) []byte {
	return r.val.AppendProbeIPv4(buf, icmp.IPv4Header{
		TTL: r.cfg.TTL, Protocol: icmp.ProtoICMP, Src: src, Dst: dst, ID: id,
	}, now)
}

// writeBatch transmits one assembled batch with the serial engine's exact
// per-probe semantics: transient failures retry with exponential backoff
// and deterministic jitter (the unsent tail is re-stamped after the sleep
// so timestamps track the real send instant), probes that exhaust their
// retries or fail hard are abandoned and counted, and every address
// resolves as its last probe leaves the batch — including an error-budget
// abort mid-batch. Returns false when the round must stop sending.
func (r *roundRun) writeBatch(s *Scanner, ctx context.Context, pkts [][]byte, dsts []netmodel.Addr, pktAddr []int, addrs []addrSend, base uint64, src netmodel.Addr) bool {
	overBudget := false
	finish := func(j int, sentOK bool) {
		st := &addrs[pktAddr[j]]
		st.left--
		if sentOK {
			r.send.Sent++
			st.ok = true
		}
		if st.left == 0 {
			if st.ok {
				r.probed++
			} else {
				r.failed++
				if r.failed > r.maxFail {
					overBudget = true
				}
			}
		}
	}

	i := 0
	attempt := 0
	backoff := r.cfg.RetryBackoff
	for i < len(pkts) {
		n, err := r.tr.WriteBatch(pkts[i:])
		for j := i; j < i+n; j++ {
			finish(j, true)
		}
		i += n
		if overBudget {
			// Error budget exhausted: salvage the round as partial rather
			// than losing everything measured so far.
			r.sendAbort = true
			return false
		}
		if err == nil {
			if i < len(pkts) {
				// Contract violation: a short write must carry an error.
				err = errors.New("scanner: batch transport made no progress")
			} else {
				break
			}
		}
		if n > 0 {
			// The previously failing probe got through; the one now at the
			// head starts its own retry budget.
			attempt, backoff = 0, r.cfg.RetryBackoff
		}
		if attempt < r.cfg.Retries && IsTransient(err) {
			r.send.Retries++
			attempt++
			if r.cfg.Events != nil {
				r.cfg.Events.Publish("retry", map[string]any{
					"shard": r.cfg.Shard, "attempt": attempt,
					"backoff_ms": backoff.Milliseconds(), "error": err.Error(),
				})
			}
			r.rng = splitmix(r.rng)
			r.cfg.Clock.Sleep(backoff/2 + time.Duration(r.rng%uint64(backoff)))
			if backoff < time.Second {
				backoff *= 2
			}
			if ierr := s.interrupted(ctx); ierr != nil {
				r.setAbort(ierr)
				return false
			}
			now := r.cfg.Clock.Now()
			for j := i; j < len(pkts); j++ {
				pkts[j] = r.encodeProbe(pkts[j][:0], src, dsts[j], now, uint16(base)+uint16(j))
			}
			continue
		}
		// Retry budget exhausted or hard error: abandon this probe.
		r.send.SendErrors++
		r.sendErr = err
		finish(i, false)
		i++
		if overBudget {
			r.sendAbort = true
			return false
		}
		attempt, backoff = 0, r.cfg.RetryBackoff
	}
	return true
}

// recvBufs is the receiver's reusable buffer ring: ReadBatch refills the
// same backing arrays every call, keeping the receive path allocation-free.
type recvBufs struct {
	pkts [][]byte
	ats  []time.Time
}

func newRecvBufs(n int) *recvBufs {
	rb := &recvBufs{pkts: make([][]byte, n), ats: make([]time.Time, n)}
	for i := range rb.pkts {
		rb.pkts[i] = make([]byte, 0, 512)
	}
	return rb
}

// drainOnce reads and processes one batch. It returns false when the caller
// should stop reading: nothing was due within the wait, or the receive path
// was declared dead.
func (r *roundRun) drainOnce(rb *recvBufs, wait time.Duration) bool {
	if r.recvDead {
		return false
	}
	n, err := r.tr.ReadBatch(rb.pkts, rb.ats, wait)
	for i := 0; i < n; i++ {
		r.processReply(rb.pkts[i], rb.ats[i])
	}
	if err != nil {
		return r.recvFailure(err)
	}
	return n > 0
}

// drainPending drains all immediately available replies (no waiting).
func (r *roundRun) drainPending(rb *recvBufs) {
	for r.drainOnce(rb, 0) {
	}
}

// cooldown collects stragglers until the cooldown window closes, the first
// idle timeout, cancellation, or receive-path death.
func (r *roundRun) cooldown(s *Scanner, ctx context.Context, rb *recvBufs) {
	deadline := r.cfg.Clock.Now().Add(r.cfg.Cooldown)
	for {
		if err := s.interrupted(ctx); err != nil {
			r.setAbort(err)
			return
		}
		left := deadline.Sub(r.cfg.Clock.Now())
		if left <= 0 {
			return
		}
		if !r.drainOnce(rb, left) {
			return
		}
	}
}

// recvFailure records a hard receive error, reporting false once the
// receive path must be declared dead: transient errors are tolerated up to
// MaxRecvErrors, non-transient ones kill the path immediately. Either way
// the error is counted, so a dead receive path is never misreported as 0
// responsive IPs.
func (r *roundRun) recvFailure(err error) bool {
	r.recv.RecvErrors++
	r.cfg.Metrics.RecvErrors.Inc()
	r.recvErr = err
	if !IsTransient(err) || r.recv.RecvErrors > uint64(r.cfg.MaxRecvErrors) {
		r.recvDead = true
		return false
	}
	return true
}

// processReply parses, validates and aggregates one inbound packet
// (receiver-owned state only).
func (r *roundRun) processReply(pkt []byte, at time.Time) {
	mt := r.cfg.Metrics
	h, body, err := icmp.ParseIPv4(pkt)
	if err != nil || h.Protocol != icmp.ProtoICMP {
		r.recv.Invalid++
		mt.RepliesInvalid.Inc()
		return
	}
	m, err := icmp.Parse(body)
	if err != nil {
		r.recv.Invalid++
		mt.RepliesInvalid.Inc()
		return
	}
	if m.Type != icmp.TypeEchoReply {
		r.recv.NonEcho++
		mt.RepliesNonEcho.Inc()
		return
	}
	reply, ok := r.val.DecodeReply(h.Src, m, at)
	if !ok {
		r.recv.Invalid++
		mt.RepliesInvalid.Inc()
		return
	}
	r.recv.Received++
	bi := r.targets.BlockIndex(reply.From)
	if bi < 0 {
		r.recv.Invalid++
		mt.RepliesInvalid.Inc()
		return
	}
	br := &r.blocks[bi]
	host := reply.From.HostByte()
	if br.Responded(host) {
		r.recv.Duplicates++
		mt.RepliesDuplicate.Inc()
		return
	}
	br.RespMask[host/64] |= 1 << (host % 64)
	br.RespCount++
	br.RTTSum += reply.RTT
	br.RTTCount++
	r.recv.Valid++
	mt.RepliesValid.Inc()
}

// finalize merges the sender- and receiver-owned halves into rd in a fixed
// order. Both goroutines have finished by the time it runs.
func (r *roundRun) finalize(rd *RoundData) {
	st := r.send
	st.Received = r.recv.Received
	st.Valid = r.recv.Valid
	st.Duplicates = r.recv.Duplicates
	st.Invalid = r.recv.Invalid
	st.NonEcho = r.recv.NonEcho
	st.RecvErrors = r.recv.RecvErrors
	rd.Stats = st
	rd.Probed = r.probed
	rd.RecvDead = r.recvDead
	if r.recvDead || r.sendAbort || r.abortState() != nil || r.probed < rd.ShardTargets {
		rd.Partial = true
	}
	rd.Err = r.sendErr
	if r.recvErr != nil {
		rd.Err = r.recvErr
	}
}
