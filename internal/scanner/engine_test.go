package scanner_test

import (
	"reflect"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/simnet"
)

// hideBatch wraps a Transport so the engine sees a non-batch transport and
// must go through the AsBatch shim.
type hideBatch struct {
	tr scanner.Transport
}

func (h *hideBatch) WritePacket(b []byte) error { return h.tr.WritePacket(b) }
func (h *hideBatch) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	return h.tr.ReadPacket(wait)
}
func (h *hideBatch) LocalAddr() netmodel.Addr { return h.tr.LocalAddr() }

// scanResult is the engine-observable outcome of a round; every engine
// variant (serial, pipelined, any batch size, shimmed transport) must agree
// on all of it, Elapsed included (virtual time is deterministic).
type scanResult struct {
	Blocks []scanner.BlockResult
	Stats  scanner.Stats
	Probed int
}

func runEngine(t *testing.T, mutate func(*scanner.Config), hide bool) scanResult {
	t.Helper()
	ts := newTargets(t, "91.198.4.0/23")
	start := time.Date(2022, 3, 2, 22, 0, 0, 0, time.UTC)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(40*time.Millisecond), start)
	var tr scanner.Transport = net
	if hide {
		tr = &hideBatch{tr: net}
	}
	cfg := scanner.Config{Rate: 100000, Seed: 42, Epoch: 7, Clock: net, Cooldown: time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	rd, err := scanner.New(tr, cfg).Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.Valid != 256 {
		t.Fatalf("Valid = %d, want 256", rd.Stats.Valid)
	}
	return scanResult{Blocks: rd.Blocks, Stats: rd.Stats, Probed: rd.Probed}
}

// TestPipelinedMatchesSerial pins the tentpole determinism property: the
// two-goroutine pipelined engine must produce results identical to the
// single-goroutine serial engine on the virtual-time transport.
func TestPipelinedMatchesSerial(t *testing.T) {
	serial := runEngine(t, nil, false)
	piped := runEngine(t, func(c *scanner.Config) { c.Pipelined = true }, false)
	if !reflect.DeepEqual(serial, piped) {
		t.Fatalf("pipelined result differs from serial:\nserial: %+v\npiped:  %+v", serial.Stats, piped.Stats)
	}
}

// TestBatchShimMatchesNative: a transport without batch methods (driven
// through the AsBatch shim) must behave exactly like the native batched
// implementation.
func TestBatchShimMatchesNative(t *testing.T) {
	native := runEngine(t, nil, false)
	shimmed := runEngine(t, nil, true)
	if !reflect.DeepEqual(native, shimmed) {
		t.Fatalf("shimmed result differs from native batch:\nnative: %+v\nshim:   %+v", native.Stats, shimmed.Stats)
	}
}

// TestBatchSizesEquivalent: the batch size is an I/O granularity knob, not a
// semantic one — every size (including the packet-at-a-time degenerate case)
// must produce the same round. Rate 0 keeps all probes stamped at one virtual
// instant, so even the ms-truncated RTT sums must agree exactly; under rate
// limiting, batch size shifts individual send instants (pacing in WaitN-sized
// releases), which is an intended pacing difference, not a result difference.
func TestBatchSizesEquivalent(t *testing.T) {
	ref := runEngine(t, func(c *scanner.Config) { c.Rate = -1; c.Batch = 1 }, false)
	for _, n := range []int{2, 7, 64, 256, 1024} {
		got := runEngine(t, func(c *scanner.Config) { c.Rate = -1; c.Batch = n }, false)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("batch=%d differs from batch=1", n)
		}
	}
}

func TestMergeRounds(t *testing.T) {
	ts := newTargets(t, "91.198.4.0/23")
	a := &scanner.RoundData{
		Targets:      ts,
		Blocks:       make([]scanner.BlockResult, ts.NumBlocks()),
		ShardTargets: 300,
		Probed:       300,
		Stats:        scanner.Stats{Sent: 300, Valid: 10, Elapsed: 5 * time.Second},
	}
	b := &scanner.RoundData{
		Targets:      ts,
		Blocks:       make([]scanner.BlockResult, ts.NumBlocks()),
		ShardTargets: 212,
		Probed:       200,
		Partial:      true,
		Stats:        scanner.Stats{Sent: 212, Valid: 4, SendErrors: 12, Elapsed: 7 * time.Second},
	}
	for i := range a.Blocks {
		a.Blocks[i].Block = ts.Blocks()[i]
		b.Blocks[i].Block = ts.Blocks()[i]
	}
	a.Blocks[0].RespMask[0] = 0x0f
	a.Blocks[0].RespCount = 4
	a.Blocks[0].RTTSum = 40 * time.Millisecond
	a.Blocks[0].RTTCount = 4
	b.Blocks[0].RespMask[0] = 0xf0
	b.Blocks[0].RespCount = 4
	b.Blocks[0].RTTSum = 60 * time.Millisecond
	b.Blocks[0].RTTCount = 4

	m := scanner.MergeRounds(ts, []*scanner.RoundData{a, b})
	if m.ShardTargets != 512 || m.Probed != 500 || !m.Partial {
		t.Fatalf("merged scalars wrong: %+v", m)
	}
	if m.Stats.Sent != 512 || m.Stats.Valid != 14 || m.Stats.SendErrors != 12 {
		t.Fatalf("merged stats wrong: %+v", m.Stats)
	}
	if m.Stats.Elapsed != 7*time.Second {
		t.Fatalf("Elapsed should be the max shard, got %v", m.Stats.Elapsed)
	}
	blk := &m.Blocks[0]
	if blk.RespMask[0] != 0xff || blk.RespCount != 8 || blk.RTTCount != 8 || blk.RTTSum != 100*time.Millisecond {
		t.Fatalf("merged block wrong: %+v", blk)
	}
}

// TestScanParallelMatchesSerial: sharding one round across in-process shards
// and merging must reproduce the serial scan's blocks and aggregate counts.
func TestScanParallelMatchesSerial(t *testing.T) {
	ts := newTargets(t, "91.198.4.0/23")
	start := time.Date(2022, 3, 2, 22, 0, 0, 0, time.UTC)
	local := netmodel.MustParseAddr("198.51.100.1")

	net := simnet.New(local, respondEvens(40*time.Millisecond), start)
	serial, err := scanner.New(net, scanner.Config{
		Rate: 100000, Seed: 42, Epoch: 7, Clock: net, Cooldown: time.Second,
	}).Run(ts)
	if err != nil {
		t.Fatal(err)
	}

	merged, err := scanner.ScanParallel(t.Context(), ts, 8, scanner.Config{
		Rate: 100000, Seed: 42, Epoch: 7, Cooldown: time.Second,
	}, func(shard, shards int) (scanner.Transport, scanner.Clock, error) {
		n := simnet.New(local, respondEvens(40*time.Millisecond), start)
		return n, n, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Response sets are identical to the serial scan. (RTT sums are not
	// compared: per-shard pacing legitimately shifts send instants by
	// sub-millisecond offsets, which the ms-granular probe timestamps round
	// differently — the responding-host ground truth must still agree.)
	for i := range serial.Blocks {
		sb, mb := &serial.Blocks[i], &merged.Blocks[i]
		if sb.RespMask != mb.RespMask || sb.RespCount != mb.RespCount || sb.RTTCount != mb.RTTCount {
			t.Fatalf("block %v: merged responses differ from serial", sb.Block)
		}
	}
	if merged.ShardTargets != serial.ShardTargets || merged.Probed != serial.Probed {
		t.Fatalf("coverage: %d/%d merged vs %d/%d serial",
			merged.Probed, merged.ShardTargets, serial.Probed, serial.ShardTargets)
	}
	ms, ss := merged.Stats, serial.Stats
	if ms.Sent != ss.Sent || ms.Valid != ss.Valid || ms.Duplicates != ss.Duplicates ||
		ms.Invalid != ss.Invalid || ms.NonEcho != ss.NonEcho {
		t.Fatalf("merged stats %+v differ from serial %+v", ms, ss)
	}
	if merged.Partial {
		t.Fatal("merged round should not be partial")
	}
}
