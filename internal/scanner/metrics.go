package scanner

import "countrymon/internal/obs"

// Metrics holds the scanner's hot-path instruments, resolved once at setup so
// the engine never does a registry or label lookup per packet. Build it with
// NewMetrics; on a nil registry every field is nil and every operation is an
// inert nil-check (pinned by the obs package's no-allocation test).
type Metrics struct {
	ProbesSent *obs.Counter // scanner_probes_sent_total
	SendErrors *obs.Counter // scanner_send_errors_total (abandoned probes)
	Retries    *obs.Counter // scanner_retries_total (individual re-sends)
	RecvErrors *obs.Counter // scanner_recv_errors_total (hard read failures)

	// Replies by validation result, children of scanner_replies_total{result}.
	RepliesValid     *obs.Counter
	RepliesDuplicate *obs.Counter
	RepliesInvalid   *obs.Counter
	RepliesNonEcho   *obs.Counter

	BatchFill   *obs.Histogram // scanner_batch_fill_ratio
	RateSleepNs *obs.Counter   // scanner_rate_sleep_ns_total
}

// NewMetrics registers the scanner's instruments on reg (idempotently, so
// every shard of a parallel scan shares the same counters) and returns the
// resolved handles. A nil registry yields a Metrics whose instruments are all
// nil — valid and inert.
func NewMetrics(reg *obs.Registry) *Metrics {
	replies := reg.CounterVec("scanner_replies_total",
		"Inbound packets by validation result.", "result")
	return &Metrics{
		ProbesSent: reg.Counter("scanner_probes_sent_total",
			"Probes transmitted (per packet, after batching and retries)."),
		SendErrors: reg.Counter("scanner_send_errors_total",
			"Probes abandoned after the retry budget."),
		Retries: reg.Counter("scanner_retries_total",
			"Individual probe re-send attempts after transient errors."),
		RecvErrors: reg.Counter("scanner_recv_errors_total",
			"Hard (non-timeout) receive failures."),
		RepliesValid:     replies.With("valid"),
		RepliesDuplicate: replies.With("duplicate"),
		RepliesInvalid:   replies.With("invalid"),
		RepliesNonEcho:   replies.With("nonecho"),
		BatchFill: reg.Histogram("scanner_batch_fill_ratio",
			"Fraction of each send batch actually filled with probes.", 0),
		RateSleepNs: reg.Counter("scanner_rate_sleep_ns_total",
			"Nanoseconds the sender slept for rate-limiter pacing."),
	}
}
