package scanner

import (
	"context"
	"io"
	"time"

	"countrymon/internal/par"
)

// ShardFactory builds the transport (and clock) one shard of a parallel scan
// runs against. Each shard gets its own transport so per-shard state (virtual
// clocks, fault injection RNGs, sockets) never races; transports that also
// implement io.Closer are closed when their shard finishes.
type ShardFactory func(shard, shards int) (Transport, Clock, error)

// ScanParallel runs one scan round split across `shards` in-process shards,
// fanning them over the par worker pool (COUNTRYMON_WORKERS caps the
// concurrency) and merging the per-shard RoundData deterministically. Each
// shard walks its slice of the shared ZMap-style permutation (IterateShard),
// so the union of shards covers every address exactly once and the merged
// result is identical to a single serial scan of the same target set —
// regardless of worker count, because the merge happens in fixed shard order
// after all shards complete.
//
// cfg.Shard/cfg.Shards are overridden per shard; cfg.Clock is overridden by
// the factory's clock when non-nil. The first factory error (by shard order)
// aborts the round; per-shard scan errors are merged like serial rounds
// (first by shard order wins) and returned alongside the merged data.
func ScanParallel(ctx context.Context, targets *TargetSet, shards int, cfg Config, factory ShardFactory) (*RoundData, error) {
	if shards < 1 {
		shards = 1
	}
	type shardOut struct {
		rd  *RoundData
		err error
	}
	outs := make([]shardOut, shards)
	par.ForEach(shards, func(i int) {
		tr, clk, err := factory(i, shards)
		if err != nil {
			outs[i] = shardOut{err: err}
			return
		}
		if c, ok := tr.(io.Closer); ok {
			defer c.Close()
		}
		scfg := cfg
		scfg.Shard, scfg.Shards = i, shards
		if clk != nil {
			scfg.Clock = clk
		}
		rd, err := New(tr, scfg).RunContext(ctx, targets)
		outs[i] = shardOut{rd: rd, err: err}
		if cfg.Events != nil && rd != nil {
			cfg.Events.Publish("shard_done", map[string]any{
				"shard": i, "shards": shards, "sent": rd.Stats.Sent,
				"valid": rd.Stats.Valid, "partial": rd.Partial,
			})
		}
	})

	rds := make([]*RoundData, 0, shards)
	var firstErr error
	for _, o := range outs {
		if o.rd == nil {
			// Factory failure (or a scan that produced no data): without
			// this shard the round has a coverage hole, so fail it.
			return nil, o.err
		}
		rds = append(rds, o.rd)
		if firstErr == nil && o.err != nil {
			firstErr = o.err
		}
	}
	merged := MergeRounds(targets, rds)
	if cfg.Events != nil {
		cfg.Events.Publish("shards_merged", map[string]any{
			"shards": shards, "sent": merged.Stats.Sent,
			"valid": merged.Stats.Valid, "coverage": merged.Coverage(),
		})
	}
	return merged, firstErr
}

// MergeRounds combines per-shard RoundData (shards of one round over the
// same target set) into a single round view. Shards probe disjoint address
// sets, so block masks OR together and counters add; everything is folded in
// slice order, making the result independent of how the shards were
// scheduled.
func MergeRounds(targets *TargetSet, rds []*RoundData) *RoundData {
	out := &RoundData{
		Targets: targets,
		Blocks:  make([]BlockResult, targets.NumBlocks()),
	}
	for i := range out.Blocks {
		out.Blocks[i].Block = targets.Blocks()[i]
	}
	for _, rd := range rds {
		out.ShardTargets += rd.ShardTargets
		out.Probed += rd.Probed
		out.Partial = out.Partial || rd.Partial
		out.RecvDead = out.RecvDead || rd.RecvDead
		if out.Err == nil {
			out.Err = rd.Err
		}
		addStats(&out.Stats, &rd.Stats)
		for bi := range rd.Blocks {
			src := &rd.Blocks[bi]
			dst := &out.Blocks[bi]
			for w := range src.RespMask {
				dst.RespMask[w] |= src.RespMask[w]
			}
			dst.RespCount += src.RespCount
			dst.RTTSum += src.RTTSum
			dst.RTTCount += src.RTTCount
		}
	}
	return out
}

// addStats folds b into a: counters add, Elapsed is the slowest shard (the
// round's wall-clock is bounded by its slowest shard, not their sum).
func addStats(a, b *Stats) {
	a.Sent += b.Sent
	a.Received += b.Received
	a.Valid += b.Valid
	a.Duplicates += b.Duplicates
	a.Invalid += b.Invalid
	a.NonEcho += b.NonEcho
	a.SendErrors += b.SendErrors
	a.Retries += b.Retries
	a.RecvErrors += b.RecvErrors
	if b.Elapsed > a.Elapsed {
		a.Elapsed = time.Duration(b.Elapsed)
	}
}
