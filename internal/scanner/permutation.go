// Package scanner implements a ZMap-style single-packet ICMP scanner: it
// iterates a target address space in a pseudorandom order derived from a
// cyclic multiplicative group (so probes to the same /24 are spread across
// the whole scan, as the paper's ethics appendix requires), rate-limits
// transmission with a token bucket, stamps each probe so replies can be
// validated statelessly, and aggregates per-/24-block results.
//
// The scanner is transport-agnostic: the same code path runs over the
// in-memory simulated wire (internal/simnet), a UDP tunnel for integration
// tests, or a raw socket where privileges allow.
package scanner

import (
	"errors"
	"fmt"
	"math/bits"
)

// Permutation enumerates 0..N-1 in a pseudorandom order using iteration over
// the multiplicative group modulo a prime p > N (the ZMap construction, §4.1
// of Durumeric et al. 2013). Values ≥ N produced by the group walk are
// skipped, so every index appears exactly once per cycle.
type Permutation struct {
	n     uint64 // domain size
	p     uint64 // prime > n
	g     uint64 // generator of (Z/pZ)*
	first uint64 // starting element, in [1, p-1]
}

// NewPermutation builds a permutation of 0..n-1 seeded deterministically.
// Different seeds give different probe orders; the same seed reproduces a
// scan exactly.
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	if n == 0 {
		return nil, errors.New("scanner: empty permutation domain")
	}
	if n >= 1<<62 {
		return nil, fmt.Errorf("scanner: domain %d too large", n)
	}
	p := primeAbove(n)
	g, err := findGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	// Choose a starting point in [1, p-1] from the seed.
	first := splitmix(seed^0x9e3779b97f4a7c15)%(p-1) + 1
	return &Permutation{n: n, p: p, g: g, first: first}, nil
}

// Len returns the domain size.
func (pm *Permutation) Len() uint64 { return pm.n }

// Cursor is an iteration position within a permutation cycle.
type Cursor struct {
	pm      *Permutation
	cur     uint64
	emitted uint64
	stride  int // elements skipped after each emission (sharding)
}

// Iterate returns a cursor positioned at the start of the cycle.
func (pm *Permutation) Iterate() *Cursor {
	return &Cursor{pm: pm, cur: pm.first}
}

// IterateShard returns a cursor that emits only the indices of shard
// `shard` out of `shards` total, ZMap-style: the group walk is shared, and
// each shard takes every shards-th emitted element starting at its offset.
func (pm *Permutation) IterateShard(shard, shards int) (*Cursor, error) {
	if shards <= 0 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("scanner: invalid shard %d/%d", shard, shards)
	}
	c := &Cursor{pm: pm, cur: pm.first}
	// Advance to this shard's first element.
	for i := 0; i < shard; i++ {
		if _, ok := c.next(); !ok {
			break
		}
	}
	c.stride = shards - 1
	return c, nil
}

// Next returns the next index in the permuted order, or ok=false when the
// cycle (or this shard's part of it) is exhausted.
func (c *Cursor) Next() (uint64, bool) {
	v, ok := c.next()
	if !ok {
		return 0, false
	}
	for i := 0; i < c.stride; i++ {
		if _, more := c.next(); !more {
			break
		}
	}
	return v, true
}

func (c *Cursor) next() (uint64, bool) {
	pm := c.pm
	if c.emitted >= pm.n {
		return 0, false
	}
	for {
		v := c.cur
		c.cur = mulmod(c.cur, pm.g, pm.p)
		if v-1 < pm.n { // v in [1, p-1]; emit v-1 if < n
			c.emitted++
			return v - 1, true
		}
		if c.cur == pm.first {
			// Walked the full group without emitting n values: impossible
			// unless state was corrupted.
			return 0, false
		}
	}
}

// primeAbove returns the smallest prime strictly greater than n.
func primeAbove(n uint64) uint64 {
	p := n + 1
	if p < 3 {
		return 3
	}
	if p%2 == 0 {
		p++
	}
	for !isPrime(p) {
		p += 2
	}
	return p
}

// isPrime is a deterministic Miller-Rabin test valid for all 64-bit inputs
// using the standard witness set.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, sp := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%sp == 0 {
			return n == sp
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powmod(a%n, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// findGenerator picks a generator of (Z/pZ)* by factoring p-1 and testing
// random candidates derived from the seed.
func findGenerator(p uint64, seed uint64) (uint64, error) {
	if p == 2 {
		return 1, nil
	}
	factors := primeFactors(p - 1)
	s := seed
	for tries := 0; tries < 4096; tries++ {
		s = splitmix(s)
		g := s%(p-2) + 2 // in [2, p-1]
		ok := true
		for _, q := range factors {
			if powmod(g, (p-1)/q, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("scanner: no generator found for p=%d", p)
}

// primeFactors returns the distinct prime factors of n by trial division;
// n-1 for our primes is small enough (≤ a few billion) for this to be fast,
// and it runs once per scan.
func primeFactors(n uint64) []uint64 {
	var fs []uint64
	for _, q := range []uint64{2, 3} {
		if n%q == 0 {
			fs = append(fs, q)
			for n%q == 0 {
				n /= q
			}
		}
	}
	for q := uint64(5); q*q <= n; q += 2 {
		if n%q == 0 {
			fs = append(fs, q)
			for n%q == 0 {
				n /= q
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

func mulmod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a < 1<<32 && b < 1<<32 {
		return a * b % m
	}
	hi, lo := bits.Mul64(a, b)
	// hi < m because a, b < m, so Rem64 cannot panic.
	return bits.Rem64(hi, lo, m)
}

func powmod(base, exp, m uint64) uint64 {
	var res uint64 = 1
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			res = mulmod(res, base, m)
		}
		base = mulmod(base, base, m)
		exp >>= 1
	}
	return res
}

// splitmix is SplitMix64, used for deterministic seed-derived values.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
