package scanner

import (
	"testing"
	"testing/quick"
)

func TestPermutationIsPermutation(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 10, 255, 256, 257, 1000, 65536} {
		pm, err := NewPermutation(n, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make([]bool, n)
		c := pm.Iterate()
		count := uint64(0)
		for {
			v, ok := c.Next()
			if !ok {
				break
			}
			if v >= n {
				t.Fatalf("n=%d: out-of-range value %d", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
			count++
		}
		if count != n {
			t.Fatalf("n=%d: emitted %d values", n, count)
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	const n = 4096
	collect := func(seed uint64) []uint64 {
		pm, err := NewPermutation(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		c := pm.Iterate()
		for {
			v, ok := c.Next()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	a, b := collect(1), collect(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > n/16 {
		t.Errorf("seeds 1 and 2 agree on %d/%d positions", same, n)
	}
	// Same seed must reproduce exactly.
	c := collect(1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed produced different order")
		}
	}
}

func TestPermutationScattersBlocks(t *testing.T) {
	// Consecutive emissions should rarely hit the same /24 (i.e. the same
	// 256-bucket), which is the ethics rationale for the permutation.
	const n = 256 * 64
	pm, err := NewPermutation(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	c := pm.Iterate()
	prev, adjacentSameBlock := uint64(0), 0
	first := true
	for {
		v, ok := c.Next()
		if !ok {
			break
		}
		if !first && v/256 == prev/256 {
			adjacentSameBlock++
		}
		prev, first = v, false
	}
	if adjacentSameBlock > n/32 {
		t.Errorf("%d/%d consecutive probes hit the same /24", adjacentSameBlock, n)
	}
}

func TestShardsPartition(t *testing.T) {
	const n = 10007
	pm, err := NewPermutation(n, 9)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	seen := make([]int, n)
	total := 0
	for s := 0; s < shards; s++ {
		c, err := pm.IterateShard(s, shards)
		if err != nil {
			t.Fatal(err)
		}
		for {
			v, ok := c.Next()
			if !ok {
				break
			}
			seen[v]++
			total++
		}
	}
	if total != n {
		t.Fatalf("shards emitted %d values, want %d", total, n)
	}
	for v, k := range seen {
		if k != 1 {
			t.Fatalf("value %d emitted %d times", v, k)
		}
	}
}

func TestShardValidation(t *testing.T) {
	pm, _ := NewPermutation(100, 1)
	if _, err := pm.IterateShard(2, 2); err == nil {
		t.Error("shard index == shards accepted")
	}
	if _, err := pm.IterateShard(-1, 2); err == nil {
		t.Error("negative shard accepted")
	}
	if _, err := pm.IterateShard(0, 0); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestNewPermutationRejects(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 4294967311, 1000003}
	composites := []uint64{0, 1, 4, 9, 4294967310, 1000001}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
}

func TestPrimeAbove(t *testing.T) {
	cases := map[uint64]uint64{0: 3, 1: 3, 2: 3, 3: 5, 4: 5, 10: 11, 4294967296: 4294967311}
	for n, want := range cases {
		if got := primeAbove(n); got != want {
			t.Errorf("primeAbove(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMulmodMatchesBigWhenSmall(t *testing.T) {
	f := func(a, b uint32, m uint32) bool {
		if m == 0 {
			m = 1
		}
		return mulmod(uint64(a), uint64(b), uint64(m)) == uint64(a)*uint64(b)%uint64(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulmodLargeOperands(t *testing.T) {
	// Known case with operands > 2^32 where naive multiply would overflow.
	const p = uint64(18446744073709551557) // largest 64-bit prime
	a, b := p-1, p-1
	// (p-1)^2 mod p == 1
	if got := mulmod(a, b, p); got != 1 {
		t.Errorf("mulmod((p-1)^2 mod p) = %d, want 1", got)
	}
}

func TestPowmod(t *testing.T) {
	// Fermat: a^(p-1) == 1 mod p.
	const p = 1000003
	for _, a := range []uint64{2, 3, 999999} {
		if got := powmod(a, p-1, p); got != 1 {
			t.Errorf("powmod(%d, p-1, p) = %d", a, got)
		}
	}
}
