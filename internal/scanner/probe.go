package scanner

import (
	"encoding/binary"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
)

// Probe validation, ZMap-style: the scanner keeps no per-probe state.
// Instead the ICMP identifier and sequence number are a keyed hash of the
// destination address, and the 8-byte echo payload carries the scan epoch
// and the transmit timestamp (milliseconds since the scan started). A reply
// is accepted only if its id/seq match the hash of the replying address and
// its epoch matches the current scan, which rejects spoofed, stale and
// misdirected replies and lets RTT be computed without a send-time table.

// probePayloadLen is the echo payload size: 4 bytes epoch + 4 bytes send
// time (ms since scan start).
const probePayloadLen = 8

// Validator derives and checks probe identities for one scan.
type Validator struct {
	key   uint64
	epoch uint32
	start time.Time
}

// NewValidator creates a validator with a per-campaign secret key and a
// per-round epoch.
func NewValidator(key uint64, epoch uint32, start time.Time) *Validator {
	return &Validator{key: key, epoch: epoch, start: start}
}

// idSeq computes the keyed 32-bit identity for a target address.
func (v *Validator) idSeq(dst netmodel.Addr) (id, seq uint16) {
	h := splitmix(v.key ^ uint64(dst)<<1 ^ uint64(v.epoch)<<33)
	return uint16(h >> 16), uint16(h)
}

// EncodeProbe builds the ICMP echo request for dst at the given send time.
func (v *Validator) EncodeProbe(dst netmodel.Addr, at time.Time) []byte {
	return v.AppendProbe(nil, dst, at)
}

// AppendProbe appends the encoded echo request to buf (allocation-free with
// a reused buffer).
func (v *Validator) AppendProbe(buf []byte, dst netmodel.Addr, at time.Time) []byte {
	id, seq := v.idSeq(dst)
	var payload [probePayloadLen]byte
	binary.BigEndian.PutUint32(payload[0:], v.epoch)
	ms := at.Sub(v.start).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	binary.BigEndian.PutUint32(payload[4:], uint32(ms))
	return icmp.AppendMessage(buf, icmp.Message{Type: icmp.TypeEchoRequest, ID: id, Seq: seq, Payload: payload[:]})
}

// AppendProbeIPv4 appends the complete IPv4+ICMP probe datagram for h.Dst
// to buf in a single pass (icmp.AppendMarshalIPv4), skipping the
// intermediate ICMP-payload buffer of AppendProbe + AppendIPv4. The probe
// identity is derived from h.Dst; h.Protocol should be icmp.ProtoICMP.
func (v *Validator) AppendProbeIPv4(buf []byte, h icmp.IPv4Header, at time.Time) []byte {
	id, seq := v.idSeq(h.Dst)
	var payload [probePayloadLen]byte
	binary.BigEndian.PutUint32(payload[0:], v.epoch)
	ms := at.Sub(v.start).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	binary.BigEndian.PutUint32(payload[4:], uint32(ms))
	return icmp.AppendMarshalIPv4(buf, h, icmp.Message{
		Type: icmp.TypeEchoRequest, ID: id, Seq: seq, Payload: payload[:],
	})
}

// ProbeReply is a validated echo reply.
type ProbeReply struct {
	From netmodel.Addr
	RTT  time.Duration
}

// DecodeReply validates an ICMP message received from `from` at `at`. It
// returns ok=false for anything that is not a well-formed echo reply to one
// of this scan's probes.
func (v *Validator) DecodeReply(from netmodel.Addr, m icmp.Message, at time.Time) (ProbeReply, bool) {
	if m.Type != icmp.TypeEchoReply || m.Code != 0 {
		return ProbeReply{}, false
	}
	id, seq := v.idSeq(from)
	if m.ID != id || m.Seq != seq {
		return ProbeReply{}, false
	}
	if len(m.Payload) < probePayloadLen {
		return ProbeReply{}, false
	}
	if binary.BigEndian.Uint32(m.Payload[0:]) != v.epoch {
		return ProbeReply{}, false
	}
	sentMS := binary.BigEndian.Uint32(m.Payload[4:])
	rtt := at.Sub(v.start) - time.Duration(sentMS)*time.Millisecond
	if rtt < 0 {
		rtt = 0
	}
	return ProbeReply{From: from, RTT: rtt}, true
}
