package scanner

import (
	"testing"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
)

func TestProbeRoundTrip(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewValidator(0xdeadbeef, 7, start)
	dst := netmodel.MustParseAddr("91.198.4.9")

	sent := start.Add(123 * time.Millisecond)
	pkt := v.EncodeProbe(dst, sent)
	m, err := icmp.Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	reply, err2 := icmp.Parse(icmp.EchoReplyFor(m))
	if err2 != nil {
		t.Fatal(err2)
	}
	recv := sent.Add(45 * time.Millisecond)
	pr, ok := v.DecodeReply(dst, reply, recv)
	if !ok {
		t.Fatal("valid reply rejected")
	}
	if pr.From != dst {
		t.Errorf("From = %v", pr.From)
	}
	if pr.RTT != 45*time.Millisecond {
		t.Errorf("RTT = %v, want 45ms", pr.RTT)
	}
}

func TestProbeRejectsWrongSource(t *testing.T) {
	start := time.Unix(0, 0)
	v := NewValidator(1, 1, start)
	dst := netmodel.MustParseAddr("10.0.0.1")
	other := netmodel.MustParseAddr("10.0.0.2")
	pkt := v.EncodeProbe(dst, start)
	m, _ := icmp.Parse(pkt)
	reply, _ := icmp.Parse(icmp.EchoReplyFor(m))
	if _, ok := v.DecodeReply(other, reply, start); ok {
		t.Error("reply from wrong address accepted (spoofing not detected)")
	}
}

func TestProbeRejectsWrongEpoch(t *testing.T) {
	start := time.Unix(0, 0)
	v1 := NewValidator(1, 1, start)
	v2 := NewValidator(1, 2, start)
	dst := netmodel.MustParseAddr("10.0.0.1")
	pkt := v1.EncodeProbe(dst, start)
	m, _ := icmp.Parse(pkt)
	reply, _ := icmp.Parse(icmp.EchoReplyFor(m))
	if _, ok := v2.DecodeReply(dst, reply, start); ok {
		t.Error("stale-epoch reply accepted")
	}
}

func TestProbeRejectsEchoRequest(t *testing.T) {
	start := time.Unix(0, 0)
	v := NewValidator(1, 1, start)
	dst := netmodel.MustParseAddr("10.0.0.1")
	m, _ := icmp.Parse(v.EncodeProbe(dst, start))
	if _, ok := v.DecodeReply(dst, m, start); ok {
		t.Error("echo *request* accepted as reply")
	}
}

func TestProbeRejectsShortPayload(t *testing.T) {
	start := time.Unix(0, 0)
	v := NewValidator(1, 1, start)
	dst := netmodel.MustParseAddr("10.0.0.1")
	id, seq := v.idSeq(dst)
	reply, _ := icmp.Parse(icmp.Marshal(icmp.Message{Type: icmp.TypeEchoReply, ID: id, Seq: seq, Payload: []byte{1, 2}}))
	if _, ok := v.DecodeReply(dst, reply, start); ok {
		t.Error("short-payload reply accepted")
	}
}

func TestProbeNegativeRTTClamped(t *testing.T) {
	start := time.Unix(0, 0)
	v := NewValidator(1, 1, start)
	dst := netmodel.MustParseAddr("10.0.0.1")
	pkt := v.EncodeProbe(dst, start.Add(500*time.Millisecond))
	m, _ := icmp.Parse(pkt)
	reply, _ := icmp.Parse(icmp.EchoReplyFor(m))
	// Receive "before" send (clock skew); RTT must clamp to 0, not go negative.
	pr, ok := v.DecodeReply(dst, reply, start.Add(100*time.Millisecond))
	if !ok {
		t.Fatal("reply rejected")
	}
	if pr.RTT != 0 {
		t.Errorf("RTT = %v, want 0", pr.RTT)
	}
}

func TestIDSeqDispersion(t *testing.T) {
	v := NewValidator(99, 1, time.Unix(0, 0))
	seen := make(map[uint32]bool)
	collisions := 0
	for i := 0; i < 10000; i++ {
		id, seq := v.idSeq(netmodel.Addr(i))
		k := uint32(id)<<16 | uint32(seq)
		if seen[k] {
			collisions++
		}
		seen[k] = true
	}
	if collisions > 2 {
		t.Errorf("%d id/seq collisions in 10k addresses", collisions)
	}
}
