package scanner

import (
	"time"
)

// Clock abstracts time so scans over the simulated network can run in
// virtual time (deterministic, faster than real time) while real transports
// use the wall clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// RateLimiter is a token bucket limiting transmissions to a fixed packet
// rate, as ZMap's --rate does. The paper's campaign used 8,000 pps (App. A).
type RateLimiter struct {
	clock    Clock
	interval time.Duration // time per token
	burst    int64
	tokens   int64
	last     time.Time
	slept    time.Duration // cumulative pacing sleep (single-caller state)
}

// DefaultRate is the campaign's probing rate in packets per second.
const DefaultRate = 8000

// NewRateLimiter builds a limiter for `rate` packets per second with the
// given burst allowance (minimum 1). A rate ≤ 0 disables limiting.
func NewRateLimiter(clock Clock, rate int, burst int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	rl := &RateLimiter{clock: clock, burst: int64(burst), tokens: int64(burst)}
	if rate > 0 {
		rl.interval = time.Second / time.Duration(rate)
		if rl.interval <= 0 {
			rl.interval = time.Nanosecond
		}
	}
	rl.last = clock.Now()
	return rl
}

// Wait blocks (via the clock) until one packet may be sent.
func (rl *RateLimiter) Wait() {
	if rl.interval == 0 {
		return
	}
	now := rl.clock.Now()
	rl.refill(now)
	for rl.tokens <= 0 {
		need := time.Duration(1-rl.tokens) * rl.interval
		rl.clock.Sleep(need)
		rl.slept += need
		now = rl.clock.Now()
		rl.refill(now)
	}
	rl.tokens--
}

// WaitN blocks until n packets may be sent, paying the whole batch's pacing
// debt in one sleep. The bucket may go negative while the sleep refills it,
// so WaitN(1) called k times and one WaitN(k) release sends at the same
// aggregate rate; callers stamp all n probes at the single post-wait instant.
func (rl *RateLimiter) WaitN(n int) {
	if rl.interval == 0 || n <= 0 {
		return
	}
	rl.refill(rl.clock.Now())
	rl.tokens -= int64(n)
	if rl.tokens < 0 {
		d := time.Duration(-rl.tokens) * rl.interval
		rl.clock.Sleep(d)
		rl.slept += d
		rl.refill(rl.clock.Now())
	}
}

// Slept returns the cumulative time this limiter has spent sleeping for
// pacing — the scanner's scanner_rate_sleep_ns_total source. Like Wait/WaitN
// it is single-caller (sender-goroutine) state.
func (rl *RateLimiter) Slept() time.Duration { return rl.slept }

func (rl *RateLimiter) refill(now time.Time) {
	elapsed := now.Sub(rl.last)
	if elapsed <= 0 {
		return
	}
	n := int64(elapsed / rl.interval)
	if n > 0 {
		rl.tokens += n
		if rl.tokens > rl.burst {
			rl.tokens = rl.burst
		}
		rl.last = rl.last.Add(time.Duration(n) * rl.interval)
	}
}
