package scanner

import (
	"testing"
	"time"
)

// fakeClock is a manual virtual clock for limiter tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time        { return c.now }
func (c *fakeClock) Sleep(d time.Duration) { c.now = c.now.Add(d) }

func TestRateLimiterPacing(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	rl := NewRateLimiter(clock, 1000, 1) // 1ms per packet, burst 1
	start := clock.Now()
	for i := 0; i < 100; i++ {
		rl.Wait()
	}
	elapsed := clock.Now().Sub(start)
	// First packet free (burst 1), the other 99 need 1ms each.
	if elapsed < 98*time.Millisecond || elapsed > 101*time.Millisecond {
		t.Errorf("100 packets took %v of virtual time, want ≈99ms", elapsed)
	}
}

func TestRateLimiterWaitN(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	rl := NewRateLimiter(clock, 1000, 1) // 1ms per token, burst 1
	rl.WaitN(64)                         // 1 token banked, 63 owed
	if got := clock.now.Sub(time.Unix(0, 0)); got != 63*time.Millisecond {
		t.Fatalf("WaitN(64) advanced %v, want 63ms", got)
	}
	rl.WaitN(64) // fully in debt now: 64 more tokens
	if got := clock.now.Sub(time.Unix(0, 0)); got != 127*time.Millisecond {
		t.Fatalf("second WaitN(64) advanced to %v, want 127ms", got)
	}
}

func TestRateLimiterBurst(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	rl := NewRateLimiter(clock, 1000, 64)
	start := clock.Now()
	for i := 0; i < 64; i++ {
		rl.Wait()
	}
	if got := clock.Now().Sub(start); got != 0 {
		t.Errorf("burst of 64 consumed %v of virtual time, want 0", got)
	}
	rl.Wait() // 65th must wait
	if got := clock.Now().Sub(start); got == 0 {
		t.Error("post-burst packet did not wait")
	}
}

func TestRateLimiterRefillAfterIdle(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	rl := NewRateLimiter(clock, 1000, 10)
	for i := 0; i < 10; i++ {
		rl.Wait()
	}
	// Idle long enough to refill well past the burst cap.
	clock.Sleep(time.Second)
	start := clock.Now()
	for i := 0; i < 10; i++ {
		rl.Wait()
	}
	if got := clock.Now().Sub(start); got != 0 {
		t.Errorf("refilled burst consumed %v, want 0 (cap respected but full)", got)
	}
	// Burst cap: an 11th immediate packet must wait.
	rl.Wait()
	if got := clock.Now().Sub(start); got == 0 {
		t.Error("token bucket exceeded burst cap after idle")
	}
}

func TestRateLimiterUnlimited(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	rl := NewRateLimiter(clock, 0, 1)
	start := clock.Now()
	for i := 0; i < 10000; i++ {
		rl.Wait()
	}
	if got := clock.Now().Sub(start); got != 0 {
		t.Errorf("unlimited limiter consumed %v", got)
	}
}

func TestRateLimiterAggregateRate(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	const rate = 8000
	rl := NewRateLimiter(clock, rate, 64)
	const packets = 40000
	start := clock.Now()
	for i := 0; i < packets; i++ {
		rl.Wait()
	}
	elapsed := clock.Now().Sub(start).Seconds()
	got := float64(packets) / elapsed
	if got < rate*0.98 || got > rate*1.05 {
		t.Errorf("aggregate rate %.0f pps, want ≈%d", got, rate)
	}
}
