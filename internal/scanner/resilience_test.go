package scanner_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/simnet"
)

// transientErr is a retryable transport failure.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// flakySender fails the first sendFails write attempts to each address with
// a transient error, then forwards to the inner transport.
type flakySender struct {
	inner     scanner.Transport
	sendFails int
	tries     map[netmodel.Addr]int
}

func (f *flakySender) LocalAddr() netmodel.Addr { return f.inner.LocalAddr() }
func (f *flakySender) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	return f.inner.ReadPacket(wait)
}
func (f *flakySender) WritePacket(b []byte) error {
	dst := netmodel.AddrFromBytes([4]byte(b[16:20]))
	if f.tries[dst] < f.sendFails {
		f.tries[dst]++
		return &transientErr{"injected send failure"}
	}
	return f.inner.WritePacket(b)
}

// deadSender fails every write with a transient error; reads pass through.
type deadSender struct{ inner scanner.Transport }

func (d *deadSender) LocalAddr() netmodel.Addr { return d.inner.LocalAddr() }
func (d *deadSender) WritePacket([]byte) error { return &transientErr{"injected send failure"} }
func (d *deadSender) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	return d.inner.ReadPacket(wait)
}

// deadReceiver answers sends normally but fails every read with err.
type deadReceiver struct {
	inner scanner.Transport
	err   error
}

func (d *deadReceiver) LocalAddr() netmodel.Addr { return d.inner.LocalAddr() }
func (d *deadReceiver) WritePacket(b []byte) error {
	return d.inner.WritePacket(b)
}
func (d *deadReceiver) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	// Keep virtual time moving so the cooldown terminates.
	if wait > 0 {
		if c, ok := d.inner.(scanner.Clock); ok {
			c.Sleep(wait)
		}
	}
	return nil, time.Time{}, d.err
}

func TestRetryRecoversTransientSendErrors(t *testing.T) {
	ts := newTargets(t, "10.8.0.0/24")
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	flaky := &flakySender{inner: net, sendFails: 2, tries: make(map[netmodel.Addr]int)}
	sc := scanner.New(flaky, scanner.Config{
		Rate: 0, Seed: 9, Epoch: 1, Clock: net, Cooldown: 500 * time.Millisecond,
	})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Partial {
		t.Error("round with recovered sends must not be partial")
	}
	if rd.Stats.Valid != 128 {
		t.Errorf("Valid = %d, want 128", rd.Stats.Valid)
	}
	if rd.Stats.Retries != 2*256 {
		t.Errorf("Retries = %d, want %d", rd.Stats.Retries, 2*256)
	}
	if rd.Stats.SendErrors != 0 {
		t.Errorf("SendErrors = %d, want 0 (all recovered)", rd.Stats.SendErrors)
	}
	if got := rd.Coverage(); got != 1 {
		t.Errorf("Coverage = %v, want 1", got)
	}
}

func TestErrorBudgetSalvagesPartialRound(t *testing.T) {
	ts := newTargets(t, "10.9.0.0/23") // 512 targets
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	sc := scanner.New(&deadSender{inner: net}, scanner.Config{
		Rate: 0, Seed: 10, Epoch: 1, Clock: net,
		Cooldown: 100 * time.Millisecond, ErrorBudget: 0.05,
	})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatalf("budget exhaustion must salvage, not error: %v", err)
	}
	if !rd.Partial {
		t.Error("round not marked partial")
	}
	if rd.Stats.SendErrors == 0 {
		t.Error("send errors not counted")
	}
	// Budget is 5% of 512 = 25 failed addresses before the abort.
	if rd.Stats.SendErrors > 30 {
		t.Errorf("round not abandoned at the budget: %d send errors", rd.Stats.SendErrors)
	}
	if cov := rd.Coverage(); cov != 0 {
		t.Errorf("Coverage = %v, want 0 (nothing got through)", cov)
	}
	if rd.Err == nil {
		t.Error("last transport error not surfaced")
	}
}

func TestHardSendErrorsSkippedNotFatal(t *testing.T) {
	// Non-transient write errors skip the address (no retries) and count
	// toward the budget instead of aborting the whole round.
	ts := newTargets(t, "10.10.0.0/24")
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	hard := errors.New("hard send failure")
	n := 0
	tr := &funcTransport{
		inner: net,
		write: func(inner scanner.Transport, b []byte) error {
			n++
			if n%8 == 0 {
				return hard
			}
			return inner.WritePacket(b)
		},
	}
	sc := scanner.New(tr, scanner.Config{
		Rate: 0, Seed: 11, Epoch: 1, Clock: net, Cooldown: 500 * time.Millisecond,
		ErrorBudget: 0.5,
	})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatalf("hard send errors within budget must not abort: %v", err)
	}
	if !rd.Partial {
		t.Error("skipped addresses must mark the round partial")
	}
	if rd.Stats.SendErrors != 32 {
		t.Errorf("SendErrors = %d, want 32", rd.Stats.SendErrors)
	}
	if rd.Stats.Retries != 0 {
		t.Errorf("hard errors must not be retried; Retries = %d", rd.Stats.Retries)
	}
	if rd.Probed != 256-32 {
		t.Errorf("Probed = %d, want %d", rd.Probed, 256-32)
	}
}

// funcTransport lets a test intercept writes.
type funcTransport struct {
	inner scanner.Transport
	write func(inner scanner.Transport, b []byte) error
}

func (f *funcTransport) LocalAddr() netmodel.Addr { return f.inner.LocalAddr() }
func (f *funcTransport) WritePacket(b []byte) error {
	return f.write(f.inner, b)
}
func (f *funcTransport) ReadPacket(wait time.Duration) ([]byte, time.Time, error) {
	return f.inner.ReadPacket(wait)
}

func TestDeadReceivePathSurfaces(t *testing.T) {
	ts := newTargets(t, "10.11.0.0/24")
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	dead := &deadReceiver{inner: net, err: &transientErr{"injected recv failure"}}
	sc := scanner.New(dead, scanner.Config{
		Rate: 0, Seed: 12, Epoch: 1, Clock: net,
		Cooldown: 500 * time.Millisecond, MaxRecvErrors: 8,
	})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.RecvDead || !rd.Partial {
		t.Errorf("dead receive path not flagged: RecvDead=%v Partial=%v", rd.RecvDead, rd.Partial)
	}
	if rd.Stats.RecvErrors == 0 {
		t.Error("receive errors not counted")
	}
	if rd.Err == nil {
		t.Error("receive error not surfaced in RoundData.Err")
	}
	if rd.Stats.Valid != 0 {
		t.Errorf("Valid = %d through a dead receive path", rd.Stats.Valid)
	}
}

func TestNonTransientRecvErrorKillsImmediately(t *testing.T) {
	ts := newTargets(t, "10.12.0.0/24")
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	dead := &deadReceiver{inner: net, err: errors.New("use of closed connection")}
	sc := scanner.New(dead, scanner.Config{
		Rate: 0, Seed: 13, Epoch: 1, Clock: net, Cooldown: 500 * time.Millisecond,
	})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.RecvDead {
		t.Error("non-transient receive error must kill the path")
	}
	if rd.Stats.RecvErrors != 1 {
		t.Errorf("RecvErrors = %d, want 1 (immediate death)", rd.Stats.RecvErrors)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ts := newTargets(t, "10.13.0.0/22") // 1024 targets
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the round must return immediately
	sc := scanner.New(net, scanner.Config{Rate: 0, Seed: 14, Epoch: 1, Clock: net})
	rd, err := sc.RunContext(ctx, ts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rd == nil || !rd.Partial {
		t.Fatal("canceled round must still return partial data")
	}
	if rd.Probed != 0 {
		t.Errorf("Probed = %d before first send of a canceled round", rd.Probed)
	}
}

func TestStopAbortsWedgedTransport(t *testing.T) {
	// A transport that always fails sends with transient errors would retry
	// forever round after round; Stop must cut it short.
	ts := newTargets(t, "10.14.0.0/20") // 4096 targets
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	sc := scanner.New(&deadSender{inner: net}, scanner.Config{
		Rate: 0, Seed: 15, Epoch: 1, Clock: net, ErrorBudget: 1,
	})
	done := make(chan struct{})
	var rd *scanner.RoundData
	var err error
	go func() {
		rd, err = sc.Run(ts)
		close(done)
	}()
	sc.Stop()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not abort the round")
	}
	if !errors.Is(err, scanner.ErrStopped) {
		t.Errorf("err = %v, want ErrStopped", err)
	}
	if rd == nil || !rd.Partial {
		t.Error("stopped round must return partial data")
	}
}

func TestShardCoverageDenominator(t *testing.T) {
	ts := newTargets(t, "10.15.0.0/23") // 512 targets
	var total int
	for shard := 0; shard < 3; shard++ {
		net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
		sc := scanner.New(net, scanner.Config{
			Rate: 0, Seed: 16, Epoch: 1, Clock: net, Cooldown: 200 * time.Millisecond,
			Shard: shard, Shards: 3,
		})
		rd, err := sc.Run(ts)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Partial {
			t.Errorf("shard %d: clean scan marked partial", shard)
		}
		if rd.Coverage() != 1 {
			t.Errorf("shard %d: coverage %v (probed %d of %d)", shard, rd.Coverage(), rd.Probed, rd.ShardTargets)
		}
		total += rd.ShardTargets
	}
	if total != 512 {
		t.Errorf("shard targets sum to %d, want 512", total)
	}
}
