package scanner

import (
	"errors"
	"fmt"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
)

// ErrTimeout is returned by Transport.ReadPacket when no packet arrived
// within the wait budget.
var ErrTimeout = errors.New("scanner: read timeout")

// Transport carries raw IPv4 datagrams between the scanner and the network
// (simulated or real).
type Transport interface {
	// WritePacket transmits one IPv4 datagram. Implementations must not
	// retain b after returning (the scanner reuses the buffer).
	WritePacket(b []byte) error
	// ReadPacket returns the next inbound IPv4 datagram and its receive
	// time, waiting at most `wait` (0 = poll). It returns ErrTimeout when
	// nothing arrived in time.
	ReadPacket(wait time.Duration) (pkt []byte, at time.Time, err error)
	// LocalAddr is the vantage point's source address.
	LocalAddr() netmodel.Addr
}

// Config controls one scan round.
type Config struct {
	Rate     int           // packets/second; 0 = unlimited. Default 8000.
	Burst    int           // token bucket burst; default 64
	TTL      uint8         // outgoing TTL; default 64
	Cooldown time.Duration // how long to wait for stragglers; default 8s
	Seed     uint64        // permutation + validation seed
	Epoch    uint32        // scan round identifier baked into probes
	// ProbesPerAddr retransmits each probe (ZMap's -P); duplicate replies
	// are deduplicated per host. The campaign used 1 (App. A).
	ProbesPerAddr int
	Clock         Clock // defaults to RealClock
	Shard         int   // this vantage's shard (default 0)
	Shards        int   // total shards (default 1)
}

func (c Config) withDefaults() Config {
	if c.Rate == 0 {
		c.Rate = DefaultRate
	}
	if c.Burst == 0 {
		c.Burst = 64
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	if c.Cooldown == 0 {
		c.Cooldown = 8 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.ProbesPerAddr == 0 {
		c.ProbesPerAddr = 1
	}
	return c
}

// Stats summarizes one scan round.
type Stats struct {
	Sent       uint64
	Received   uint64 // validated echo replies (incl. duplicates)
	Valid      uint64 // unique validated echo replies
	Duplicates uint64
	Invalid    uint64 // failed validation (wrong id/seq/epoch, malformed)
	NonEcho    uint64 // ICMP errors (unreachable, time exceeded, ...)
	Elapsed    time.Duration
}

// BlockResult accumulates one /24 block's responses in a round.
type BlockResult struct {
	Block     netmodel.BlockID
	RespMask  [4]uint64 // bit per host that replied
	RespCount uint16
	RTTSum    time.Duration
	RTTCount  uint32
}

// Responded reports whether host h replied.
func (b *BlockResult) Responded(h uint8) bool {
	return b.RespMask[h/64]>>(h%64)&1 == 1
}

// MeanRTT returns the block's mean round-trip time (0 if no replies).
func (b *BlockResult) MeanRTT() time.Duration {
	if b.RTTCount == 0 {
		return 0
	}
	return b.RTTSum / time.Duration(b.RTTCount)
}

// RoundData is the outcome of scanning a target set once.
type RoundData struct {
	Targets *TargetSet
	Blocks  []BlockResult // aligned with Targets.Blocks()
	Stats   Stats
}

// Scanner performs full-block ICMP scans over a transport.
type Scanner struct {
	cfg Config
	tr  Transport
}

// New builds a scanner.
func New(tr Transport, cfg Config) *Scanner {
	return &Scanner{cfg: cfg.withDefaults(), tr: tr}
}

// Run scans the target set once: every address is probed exactly once in
// permuted order, replies are validated and aggregated per /24 block.
func (s *Scanner) Run(targets *TargetSet) (*RoundData, error) {
	cfg := s.cfg
	pm, err := NewPermutation(targets.Len(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	cur, err := pm.IterateShard(cfg.Shard, cfg.Shards)
	if err != nil {
		return nil, err
	}

	start := cfg.Clock.Now()
	val := NewValidator(cfg.Seed^0xc0ffee, cfg.Epoch, start)
	rl := NewRateLimiter(cfg.Clock, cfg.Rate, cfg.Burst)

	rd := &RoundData{
		Targets: targets,
		Blocks:  make([]BlockResult, targets.NumBlocks()),
	}
	for i := range rd.Blocks {
		rd.Blocks[i].Block = targets.Blocks()[i]
	}

	src := s.tr.LocalAddr()
	// Reusable buffers keep the send path allocation-free. Transports must
	// not retain the datagram after WritePacket returns.
	probeBuf := make([]byte, 0, 64)
	dgBuf := make([]byte, 0, 128)
	for {
		idx, ok := cur.Next()
		if !ok {
			break
		}
		dst := targets.Addr(idx)
		for attempt := 0; attempt < cfg.ProbesPerAddr; attempt++ {
			rl.Wait()
			now := cfg.Clock.Now()
			probeBuf = val.AppendProbe(probeBuf[:0], dst, now)
			dgBuf = icmp.AppendIPv4(dgBuf[:0], icmp.IPv4Header{
				TTL: cfg.TTL, Protocol: icmp.ProtoICMP, Src: src, Dst: dst,
				ID: uint16(rd.Stats.Sent),
			}, probeBuf)
			if err := s.tr.WritePacket(dgBuf); err != nil {
				return nil, fmt.Errorf("scanner: send to %v: %w", dst, err)
			}
			rd.Stats.Sent++
		}
		// Opportunistically drain replies between sends.
		s.drain(rd, val, 0)
	}

	// Cooldown: collect stragglers.
	deadline := cfg.Clock.Now().Add(cfg.Cooldown)
	for {
		left := deadline.Sub(cfg.Clock.Now())
		if left <= 0 {
			break
		}
		if !s.readOne(rd, val, left) {
			break
		}
	}
	rd.Stats.Elapsed = cfg.Clock.Now().Sub(start)
	return rd, nil
}

// drain reads all immediately available packets.
func (s *Scanner) drain(rd *RoundData, val *Validator, wait time.Duration) {
	for s.readOne(rd, val, wait) {
		wait = 0
	}
}

// readOne reads and processes a single packet; it returns false on timeout.
func (s *Scanner) readOne(rd *RoundData, val *Validator, wait time.Duration) bool {
	pkt, at, err := s.tr.ReadPacket(wait)
	if err != nil {
		return false
	}
	h, body, err := icmp.ParseIPv4(pkt)
	if err != nil || h.Protocol != icmp.ProtoICMP {
		rd.Stats.Invalid++
		return true
	}
	m, err := icmp.Parse(body)
	if err != nil {
		rd.Stats.Invalid++
		return true
	}
	if m.Type != icmp.TypeEchoReply {
		rd.Stats.NonEcho++
		return true
	}
	reply, ok := val.DecodeReply(h.Src, m, at)
	if !ok {
		rd.Stats.Invalid++
		return true
	}
	rd.Stats.Received++
	bi := rd.Targets.BlockIndex(reply.From)
	if bi < 0 {
		rd.Stats.Invalid++
		return true
	}
	br := &rd.Blocks[bi]
	host := reply.From.HostByte()
	if br.Responded(host) {
		rd.Stats.Duplicates++
		return true
	}
	br.RespMask[host/64] |= 1 << (host % 64)
	br.RespCount++
	br.RTTSum += reply.RTT
	br.RTTCount++
	rd.Stats.Valid++
	return true
}
