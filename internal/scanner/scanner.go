package scanner

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"countrymon/internal/icmp"
	"countrymon/internal/netmodel"
)

// ErrTimeout is returned by Transport.ReadPacket when no packet arrived
// within the wait budget.
var ErrTimeout = errors.New("scanner: read timeout")

// ErrStopped is returned by RunContext when Stop was called mid-round.
var ErrStopped = errors.New("scanner: stopped")

// IsTransient reports whether a transport error is worth retrying: the
// error (or one it wraps) advertises itself via a `Transient() bool`
// method, as the fault-injection layer and flaky real transports do.
// Timeouts are not transient sends; they never reach the send path.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Transport carries raw IPv4 datagrams between the scanner and the network
// (simulated or real).
type Transport interface {
	// WritePacket transmits one IPv4 datagram. Implementations must not
	// retain b after returning (the scanner reuses the buffer).
	WritePacket(b []byte) error
	// ReadPacket returns the next inbound IPv4 datagram and its receive
	// time, waiting at most `wait` (0 = poll). It returns ErrTimeout when
	// nothing arrived in time.
	ReadPacket(wait time.Duration) (pkt []byte, at time.Time, err error)
	// LocalAddr is the vantage point's source address.
	LocalAddr() netmodel.Addr
}

// Config controls one scan round.
type Config struct {
	Rate     int           // packets/second; 0 = unlimited. Default 8000.
	Burst    int           // token bucket burst; default 64
	TTL      uint8         // outgoing TTL; default 64
	Cooldown time.Duration // how long to wait for stragglers; default 8s
	Seed     uint64        // permutation + validation seed
	Epoch    uint32        // scan round identifier baked into probes
	// ProbesPerAddr retransmits each probe (ZMap's -P); duplicate replies
	// are deduplicated per host. The campaign used 1 (App. A).
	ProbesPerAddr int
	Clock         Clock // defaults to RealClock
	Shard         int   // this vantage's shard (default 0)
	Shards        int   // total shards (default 1)

	// Retries is the number of extra send attempts after a transient
	// transport error (default 3; negative disables retrying). Each retry
	// re-encodes the probe so its embedded timestamp stays accurate.
	Retries int
	// RetryBackoff is the delay before the first retry, doubled per
	// attempt with ±50% deterministic jitter (default 2ms).
	RetryBackoff time.Duration
	// ErrorBudget is the fraction of this shard's targets that may fail
	// to send (after retries) before the round is abandoned early and
	// returned partial instead of erroring out (default 0.10; ≥1 never
	// abandons). Failed addresses are skipped, not fatal.
	ErrorBudget float64
	// MaxRecvErrors is how many hard (non-timeout, transient) receive
	// errors are tolerated before the receive path is declared dead and
	// the round marked partial (default 32; negative = fail on the first
	// hard receive error). Non-transient receive errors kill the receive
	// path immediately.
	MaxRecvErrors int
}

func (c Config) withDefaults() Config {
	if c.Rate == 0 {
		c.Rate = DefaultRate
	}
	if c.Burst == 0 {
		c.Burst = 64
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	if c.Cooldown == 0 {
		c.Cooldown = 8 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.ProbesPerAddr == 0 {
		c.ProbesPerAddr = 1
	}
	if c.Retries == 0 {
		c.Retries = 3
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.ErrorBudget == 0 {
		c.ErrorBudget = 0.10
	} else if c.ErrorBudget < 0 {
		c.ErrorBudget = 0
	}
	if c.MaxRecvErrors == 0 {
		c.MaxRecvErrors = 32
	} else if c.MaxRecvErrors < 0 {
		c.MaxRecvErrors = 0
	}
	return c
}

// Stats summarizes one scan round.
type Stats struct {
	Sent       uint64
	Received   uint64 // validated echo replies (incl. duplicates)
	Valid      uint64 // unique validated echo replies
	Duplicates uint64
	Invalid    uint64 // failed validation (wrong id/seq/epoch, malformed)
	NonEcho    uint64 // ICMP errors (unreachable, time exceeded, ...)
	// SendErrors counts probes abandoned after the retry budget; Retries
	// counts individual re-send attempts; RecvErrors counts hard
	// (non-timeout) receive failures.
	SendErrors uint64
	Retries    uint64
	RecvErrors uint64
	Elapsed    time.Duration
}

// BlockResult accumulates one /24 block's responses in a round.
type BlockResult struct {
	Block     netmodel.BlockID
	RespMask  [4]uint64 // bit per host that replied
	RespCount uint16
	RTTSum    time.Duration
	RTTCount  uint32
}

// Responded reports whether host h replied.
func (b *BlockResult) Responded(h uint8) bool {
	return b.RespMask[h/64]>>(h%64)&1 == 1
}

// MeanRTT returns the block's mean round-trip time (0 if no replies).
func (b *BlockResult) MeanRTT() time.Duration {
	if b.RTTCount == 0 {
		return 0
	}
	return b.RTTSum / time.Duration(b.RTTCount)
}

// RoundData is the outcome of scanning a target set once.
type RoundData struct {
	Targets *TargetSet
	Blocks  []BlockResult // aligned with Targets.Blocks()

	// ShardTargets is how many addresses this shard was due to probe;
	// Probed is how many actually had at least one probe transmitted.
	ShardTargets int
	Probed       int
	// Partial marks a salvaged round: the error budget ran out, the
	// receive path died, or the round was stopped, so part of the target
	// set was never probed. Callers should gate such rounds on Coverage
	// rather than treat them as full observations.
	Partial bool
	// RecvDead marks rounds whose receive path failed hard: reply counts
	// are unreliable even for probed addresses.
	RecvDead bool
	// Err records the last hard transport error observed (the round is
	// still returned; salvage what was measured).
	Err error

	Stats Stats
}

// Coverage returns the fraction of this shard's targets that were probed.
func (rd *RoundData) Coverage() float64 {
	if rd.ShardTargets == 0 {
		return 0
	}
	return float64(rd.Probed) / float64(rd.ShardTargets)
}

// Scanner performs full-block ICMP scans over a transport.
type Scanner struct {
	cfg     Config
	tr      Transport
	stopped atomic.Bool
}

// New builds a scanner.
func New(tr Transport, cfg Config) *Scanner {
	return &Scanner{cfg: cfg.withDefaults(), tr: tr}
}

// Stop aborts the in-flight round at the next send or read boundary. It is
// safe to call from another goroutine; the round returns partial data and
// ErrStopped.
func (s *Scanner) Stop() { s.stopped.Store(true) }

// interrupted reports why the round should abort, or nil.
func (s *Scanner) interrupted(ctx context.Context) error {
	if s.stopped.Load() {
		return ErrStopped
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Run scans the target set once: every address is probed exactly once in
// permuted order, replies are validated and aggregated per /24 block.
func (s *Scanner) Run(targets *TargetSet) (*RoundData, error) {
	return s.RunContext(context.Background(), targets)
}

// RunContext is Run with cancellation: the round aborts at the next probe
// or read boundary when ctx is done (or Stop is called), returning the
// partial results gathered so far alongside the context error. Transient
// send errors are retried with exponential backoff; addresses that still
// fail are skipped and counted, and once more than ErrorBudget of the
// shard's targets have failed the rest of the round is abandoned and the
// result marked Partial — a degraded round is data, not an error.
func (s *Scanner) RunContext(ctx context.Context, targets *TargetSet) (*RoundData, error) {
	cfg := s.cfg
	pm, err := NewPermutation(targets.Len(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	cur, err := pm.IterateShard(cfg.Shard, cfg.Shards)
	if err != nil {
		return nil, err
	}

	start := cfg.Clock.Now()
	val := NewValidator(cfg.Seed^0xc0ffee, cfg.Epoch, start)
	rl := NewRateLimiter(cfg.Clock, cfg.Rate, cfg.Burst)

	rd := &RoundData{
		Targets:      targets,
		Blocks:       make([]BlockResult, targets.NumBlocks()),
		ShardTargets: shardLen(targets.Len(), cfg.Shard, cfg.Shards),
	}
	for i := range rd.Blocks {
		rd.Blocks[i].Block = targets.Blocks()[i]
	}
	maxFail := int(cfg.ErrorBudget * float64(rd.ShardTargets))

	src := s.tr.LocalAddr()
	// Reusable buffers keep the send path allocation-free. Transports must
	// not retain the datagram after WritePacket returns.
	probeBuf := make([]byte, 0, 64)
	dgBuf := make([]byte, 0, 128)
	// Deterministic jitter source for retry backoff.
	rng := splitmix(cfg.Seed ^ uint64(cfg.Epoch)<<32 ^ 0xfa17)

	var abortErr error
	failed := 0
	for {
		if abortErr = s.interrupted(ctx); abortErr != nil {
			rd.Partial = true
			break
		}
		idx, ok := cur.Next()
		if !ok {
			break
		}
		dst := targets.Addr(idx)
		sent := false
		for attempt := 0; attempt < cfg.ProbesPerAddr; attempt++ {
			rl.Wait()
			if err := s.sendProbe(ctx, rd, val, &rng, &probeBuf, &dgBuf, src, dst); err != nil {
				rd.Stats.SendErrors++
				rd.Err = err
			} else {
				sent = true
			}
		}
		if sent {
			rd.Probed++
		} else {
			failed++
			if failed > maxFail {
				// Error budget exhausted: salvage the round as partial
				// rather than losing everything measured so far.
				rd.Partial = true
				break
			}
		}
		// Opportunistically drain replies between sends.
		s.drain(rd, val, 0)
	}

	// Cooldown: collect stragglers (skipped once the round was aborted by
	// cancellation, but kept for budget-exhausted rounds so the replies to
	// probes already sent still count).
	if abortErr == nil {
		deadline := cfg.Clock.Now().Add(cfg.Cooldown)
		for {
			if abortErr = s.interrupted(ctx); abortErr != nil {
				rd.Partial = true
				break
			}
			left := deadline.Sub(cfg.Clock.Now())
			if left <= 0 {
				break
			}
			if !s.readOne(rd, val, left) {
				break
			}
		}
	}
	if rd.Probed < rd.ShardTargets {
		rd.Partial = true
	}
	rd.Stats.Elapsed = cfg.Clock.Now().Sub(start)
	return rd, abortErr
}

// sendProbe transmits one probe, retrying transient transport errors with
// exponential backoff and deterministic jitter. The probe is re-encoded on
// every attempt so the embedded send timestamp stays accurate for RTT.
func (s *Scanner) sendProbe(ctx context.Context, rd *RoundData, val *Validator, rng *uint64, probeBuf, dgBuf *[]byte, src, dst netmodel.Addr) error {
	cfg := s.cfg
	backoff := cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		now := cfg.Clock.Now()
		*probeBuf = val.AppendProbe((*probeBuf)[:0], dst, now)
		*dgBuf = icmp.AppendIPv4((*dgBuf)[:0], icmp.IPv4Header{
			TTL: cfg.TTL, Protocol: icmp.ProtoICMP, Src: src, Dst: dst,
			ID: uint16(rd.Stats.Sent),
		}, *probeBuf)
		err := s.tr.WritePacket(*dgBuf)
		if err == nil {
			rd.Stats.Sent++
			return nil
		}
		if attempt >= cfg.Retries || !IsTransient(err) {
			return err
		}
		rd.Stats.Retries++
		*rng = splitmix(*rng)
		cfg.Clock.Sleep(backoff/2 + time.Duration(*rng%uint64(backoff)))
		if backoff < time.Second {
			backoff *= 2
		}
		if ierr := s.interrupted(ctx); ierr != nil {
			return ierr
		}
	}
}

// shardLen is how many of the n permuted indices shard receives: every
// shards-th emitted element starting at offset shard.
func shardLen(n uint64, shard, shards int) int {
	if uint64(shard) >= n {
		return 0
	}
	return int((n - uint64(shard) + uint64(shards) - 1) / uint64(shards))
}

// drain reads all immediately available packets.
func (s *Scanner) drain(rd *RoundData, val *Validator, wait time.Duration) {
	for s.readOne(rd, val, wait) {
		wait = 0
	}
}

// readOne reads and processes a single packet. It returns false when the
// caller should stop reading: on ErrTimeout (the expected idle outcome) or
// once the receive path is declared dead. Hard receive errors are counted
// in Stats.RecvErrors rather than swallowed, so a dead receive path is
// never misreported as 0 responsive IPs: transient errors are tolerated up
// to MaxRecvErrors, non-transient ones kill the path immediately, and
// either way the round is marked Partial/RecvDead.
func (s *Scanner) readOne(rd *RoundData, val *Validator, wait time.Duration) bool {
	if rd.RecvDead {
		return false
	}
	pkt, at, err := s.tr.ReadPacket(wait)
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			return false
		}
		rd.Stats.RecvErrors++
		rd.Err = err
		if !IsTransient(err) || rd.Stats.RecvErrors > uint64(s.cfg.MaxRecvErrors) {
			rd.RecvDead = true
			rd.Partial = true
			return false
		}
		return true
	}
	h, body, err := icmp.ParseIPv4(pkt)
	if err != nil || h.Protocol != icmp.ProtoICMP {
		rd.Stats.Invalid++
		return true
	}
	m, err := icmp.Parse(body)
	if err != nil {
		rd.Stats.Invalid++
		return true
	}
	if m.Type != icmp.TypeEchoReply {
		rd.Stats.NonEcho++
		return true
	}
	reply, ok := val.DecodeReply(h.Src, m, at)
	if !ok {
		rd.Stats.Invalid++
		return true
	}
	rd.Stats.Received++
	bi := rd.Targets.BlockIndex(reply.From)
	if bi < 0 {
		rd.Stats.Invalid++
		return true
	}
	br := &rd.Blocks[bi]
	host := reply.From.HostByte()
	if br.Responded(host) {
		rd.Stats.Duplicates++
		return true
	}
	br.RespMask[host/64] |= 1 << (host % 64)
	br.RespCount++
	br.RTTSum += reply.RTT
	br.RTTCount++
	rd.Stats.Valid++
	return true
}
