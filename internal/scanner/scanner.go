package scanner

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/obs"
)

// ErrTimeout is returned by Transport.ReadPacket when no packet arrived
// within the wait budget.
var ErrTimeout = errors.New("scanner: read timeout")

// ErrStopped is returned by RunContext when Stop was called mid-round.
var ErrStopped = errors.New("scanner: stopped")

// IsTransient reports whether a transport error is worth retrying: the
// error (or one it wraps) advertises itself via a `Transient() bool`
// method, as the fault-injection layer and flaky real transports do.
// Timeouts are not transient sends; they never reach the send path.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Transport carries raw IPv4 datagrams between the scanner and the network
// (simulated or real).
type Transport interface {
	// WritePacket transmits one IPv4 datagram. Implementations must not
	// retain b after returning (the scanner reuses the buffer).
	WritePacket(b []byte) error
	// ReadPacket returns the next inbound IPv4 datagram and its receive
	// time, waiting at most `wait` (0 = poll). It returns ErrTimeout when
	// nothing arrived in time.
	ReadPacket(wait time.Duration) (pkt []byte, at time.Time, err error)
	// LocalAddr is the vantage point's source address.
	LocalAddr() netmodel.Addr
}

// Config controls one scan round.
type Config struct {
	Rate     int           // packets/second; 0 = unlimited. Default 8000.
	Burst    int           // token bucket burst; default 64
	TTL      uint8         // outgoing TTL; default 64
	Cooldown time.Duration // how long to wait for stragglers; default 8s
	Seed     uint64        // permutation + validation seed
	Epoch    uint32        // scan round identifier baked into probes
	// ProbesPerAddr retransmits each probe (ZMap's -P); duplicate replies
	// are deduplicated per host. The campaign used 1 (App. A).
	ProbesPerAddr int
	Clock         Clock // defaults to RealClock
	Shard         int   // this vantage's shard (default 0)
	Shards        int   // total shards (default 1)

	// Retries is the number of extra send attempts after a transient
	// transport error (default 3; negative disables retrying). Each retry
	// re-encodes the probe so its embedded timestamp stays accurate.
	Retries int
	// RetryBackoff is the delay before the first retry, doubled per
	// attempt with ±50% deterministic jitter (default 2ms).
	RetryBackoff time.Duration
	// ErrorBudget is the fraction of this shard's targets that may fail
	// to send (after retries) before the round is abandoned early and
	// returned partial instead of erroring out (default 0.10; ≥1 never
	// abandons). Failed addresses are skipped, not fatal.
	ErrorBudget float64
	// MaxRecvErrors is how many hard (non-timeout, transient) receive
	// errors are tolerated before the receive path is declared dead and
	// the round marked partial (default 32; negative = fail on the first
	// hard receive error). Non-transient receive errors kill the receive
	// path immediately.
	MaxRecvErrors int

	// Batch is how many packets are passed per WriteBatch/ReadBatch call
	// (default DefaultBatch; 1 degenerates to packet-at-a-time I/O). It is
	// raised to ProbesPerAddr when smaller, so all of an address's probes
	// share a batch and the address resolves as the batch is written.
	Batch int
	// Pipelined runs the sender and a dedicated receiver as separate
	// goroutines, so draining replies no longer steals send throughput.
	// On a virtual clock the receiver only polls (reads with wait > 0
	// would advance virtual time and distort pacing), which keeps the
	// round deterministic; the mode pays off on real transports, where
	// receiver blocking overlaps with send syscalls.
	Pipelined bool

	// Metrics, when built over a live registry (see NewMetrics), receives
	// the round's hot-path instrumentation: probes sent, batch fill, rate
	// sleep, reply validation results. Nil (or NewMetrics(nil)) disables it
	// at the cost of a nil check per instrumentation point.
	Metrics *Metrics
	// Events, when non-nil, receives structured events (retry taken, shard
	// merged) from the engine. Nil publishes nothing.
	Events *obs.Bus
}

func (c Config) withDefaults() Config {
	if c.Rate == 0 {
		c.Rate = DefaultRate
	}
	if c.Burst == 0 {
		c.Burst = 64
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	if c.Cooldown == 0 {
		c.Cooldown = 8 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.ProbesPerAddr == 0 {
		c.ProbesPerAddr = 1
	}
	if c.Retries == 0 {
		c.Retries = 3
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.ErrorBudget == 0 {
		c.ErrorBudget = 0.10
	} else if c.ErrorBudget < 0 {
		c.ErrorBudget = 0
	}
	if c.MaxRecvErrors == 0 {
		c.MaxRecvErrors = 32
	} else if c.MaxRecvErrors < 0 {
		c.MaxRecvErrors = 0
	}
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.Batch < c.ProbesPerAddr {
		c.Batch = c.ProbesPerAddr
	}
	if c.Metrics == nil {
		c.Metrics = &Metrics{} // all-nil instruments: inert
	}
	return c
}

// Stats summarizes one scan round.
type Stats struct {
	Sent       uint64
	Received   uint64 // validated echo replies (incl. duplicates)
	Valid      uint64 // unique validated echo replies
	Duplicates uint64
	Invalid    uint64 // failed validation (wrong id/seq/epoch, malformed)
	NonEcho    uint64 // ICMP errors (unreachable, time exceeded, ...)
	// SendErrors counts probes abandoned after the retry budget; Retries
	// counts individual re-send attempts; RecvErrors counts hard
	// (non-timeout) receive failures.
	SendErrors uint64
	Retries    uint64
	RecvErrors uint64
	Elapsed    time.Duration
}

// Add folds b into s: counters add and Elapsed accumulates, so a campaign
// total is the sum of its rounds. (Shard merging within one round instead
// takes the max Elapsed; see MergeRounds.)
func (s *Stats) Add(b Stats) {
	s.Sent += b.Sent
	s.Received += b.Received
	s.Valid += b.Valid
	s.Duplicates += b.Duplicates
	s.Invalid += b.Invalid
	s.NonEcho += b.NonEcho
	s.SendErrors += b.SendErrors
	s.Retries += b.Retries
	s.RecvErrors += b.RecvErrors
	s.Elapsed += b.Elapsed
}

// BlockResult accumulates one /24 block's responses in a round.
type BlockResult struct {
	Block     netmodel.BlockID
	RespMask  [4]uint64 // bit per host that replied
	RespCount uint16
	RTTSum    time.Duration
	RTTCount  uint32
}

// Responded reports whether host h replied.
func (b *BlockResult) Responded(h uint8) bool {
	return b.RespMask[h/64]>>(h%64)&1 == 1
}

// MeanRTT returns the block's mean round-trip time (0 if no replies).
func (b *BlockResult) MeanRTT() time.Duration {
	if b.RTTCount == 0 {
		return 0
	}
	return b.RTTSum / time.Duration(b.RTTCount)
}

// RoundData is the outcome of scanning a target set once.
type RoundData struct {
	Targets *TargetSet
	Blocks  []BlockResult // aligned with Targets.Blocks()

	// ShardTargets is how many addresses this shard was due to probe;
	// Probed is how many actually had at least one probe transmitted.
	ShardTargets int
	Probed       int
	// Partial marks a salvaged round: the error budget ran out, the
	// receive path died, or the round was stopped, so part of the target
	// set was never probed. Callers should gate such rounds on Coverage
	// rather than treat them as full observations.
	Partial bool
	// RecvDead marks rounds whose receive path failed hard: reply counts
	// are unreliable even for probed addresses.
	RecvDead bool
	// Err records the last hard transport error observed (the round is
	// still returned; salvage what was measured).
	Err error

	Stats Stats
}

// Coverage returns the fraction of this shard's targets that were probed.
func (rd *RoundData) Coverage() float64 {
	if rd.ShardTargets == 0 {
		return 0
	}
	return float64(rd.Probed) / float64(rd.ShardTargets)
}

// Scanner performs full-block ICMP scans over a transport.
type Scanner struct {
	cfg     Config
	tr      Transport
	stopped atomic.Bool
}

// New builds a scanner.
func New(tr Transport, cfg Config) *Scanner {
	return &Scanner{cfg: cfg.withDefaults(), tr: tr}
}

// Stop aborts the in-flight round at the next send or read boundary. It is
// safe to call from another goroutine; the round returns partial data and
// ErrStopped.
func (s *Scanner) Stop() { s.stopped.Store(true) }

// interrupted reports why the round should abort, or nil.
func (s *Scanner) interrupted(ctx context.Context) error {
	if s.stopped.Load() {
		return ErrStopped
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Run scans the target set once: every address is probed exactly once in
// permuted order, replies are validated and aggregated per /24 block.
func (s *Scanner) Run(targets *TargetSet) (*RoundData, error) {
	return s.RunContext(context.Background(), targets)
}

// RunContext is Run with cancellation: the round aborts at the next probe
// or read boundary when ctx is done (or Stop is called), returning the
// partial results gathered so far alongside the context error. Transient
// send errors are retried with exponential backoff; addresses that still
// fail are skipped and counted, and once more than ErrorBudget of the
// shard's targets have failed the rest of the round is abandoned and the
// result marked Partial — a degraded round is data, not an error.
func (s *Scanner) RunContext(ctx context.Context, targets *TargetSet) (*RoundData, error) {
	cfg := s.cfg
	pm, err := NewPermutation(targets.Len(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	cur, err := pm.IterateShard(cfg.Shard, cfg.Shards)
	if err != nil {
		return nil, err
	}

	start := cfg.Clock.Now()
	rd := &RoundData{
		Targets:      targets,
		Blocks:       make([]BlockResult, targets.NumBlocks()),
		ShardTargets: ShardLen(targets.Len(), cfg.Shard, cfg.Shards),
	}
	for i := range rd.Blocks {
		rd.Blocks[i].Block = targets.Blocks()[i]
	}

	r := &roundRun{
		cfg:     cfg,
		tr:      AsBatch(s.tr),
		targets: targets,
		val:     NewValidator(cfg.Seed^0xc0ffee, cfg.Epoch, start),
		rl:      NewRateLimiter(cfg.Clock, cfg.Rate, cfg.Burst),
		rng:     splitmix(cfg.Seed ^ uint64(cfg.Epoch)<<32 ^ 0xfa17),
		maxFail: int(cfg.ErrorBudget * float64(rd.ShardTargets)),
		blocks:  rd.Blocks,
	}
	if cfg.Pipelined {
		r.runPipelined(s, ctx, cur)
	} else {
		r.runSerial(s, ctx, cur)
	}
	r.finalize(rd)
	rd.Stats.Elapsed = cfg.Clock.Now().Sub(start)
	return rd, r.abortState()
}

// ShardLen is how many of the n permuted indices shard receives: every
// shards-th emitted element starting at offset shard. Fleet supervisors use
// it to account for the coverage hole an unscanned shard leaves behind.
func ShardLen(n uint64, shard, shards int) int {
	if uint64(shard) >= n {
		return 0
	}
	return int((n - uint64(shard) + uint64(shards) - 1) / uint64(shards))
}
