package scanner_test

import (
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner"
	"countrymon/internal/simnet"
)

// respondEvens answers echo requests for even host bytes with a fixed RTT.
func respondEvens(rtt time.Duration) simnet.Responder {
	return simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		if dst.HostByte()%2 == 0 {
			return simnet.Reply{Kind: simnet.EchoReply, RTT: rtt}
		}
		return simnet.Reply{Kind: simnet.NoReply}
	})
}

func newTargets(t *testing.T, cidrs ...string) *scanner.TargetSet {
	t.Helper()
	var ps []netmodel.Prefix
	for _, c := range cidrs {
		ps = append(ps, netmodel.MustParsePrefix(c))
	}
	ts, err := scanner.NewTargetSet(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestScanOverSimnet(t *testing.T) {
	ts := newTargets(t, "91.198.4.0/23") // 2 blocks, 512 targets
	start := time.Date(2022, 3, 2, 22, 0, 0, 0, time.UTC)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(40*time.Millisecond), start)
	sc := scanner.New(net, scanner.Config{
		Rate: 100000, Seed: 1, Epoch: 1, Clock: net, Cooldown: time.Second,
	})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.Sent != 512 {
		t.Errorf("Sent = %d, want 512", rd.Stats.Sent)
	}
	if rd.Stats.Valid != 256 {
		t.Errorf("Valid = %d, want 256 (every even host)", rd.Stats.Valid)
	}
	if rd.Stats.Duplicates != 0 || rd.Stats.Invalid != 0 {
		t.Errorf("dups=%d invalid=%d", rd.Stats.Duplicates, rd.Stats.Invalid)
	}
	for i := range rd.Blocks {
		br := &rd.Blocks[i]
		if br.RespCount != 128 {
			t.Errorf("block %v: RespCount = %d, want 128", br.Block, br.RespCount)
		}
		for h := 0; h < 256; h++ {
			want := h%2 == 0
			if br.Responded(uint8(h)) != want {
				t.Fatalf("block %v host %d: responded=%v want %v", br.Block, h, !want, want)
			}
		}
		rtt := br.MeanRTT()
		if rtt < 39*time.Millisecond || rtt > 41*time.Millisecond {
			t.Errorf("block %v mean RTT = %v, want ≈40ms", br.Block, rtt)
		}
	}
	if net.Pending() != 0 {
		t.Errorf("%d replies never delivered", net.Pending())
	}
}

func TestScanMeasuredRTTPerRegionDiffers(t *testing.T) {
	// Two blocks with different simulated RTTs must yield different means.
	blockA := netmodel.MustParseBlock("10.0.0.0/24")
	resp := simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		rtt := 30 * time.Millisecond
		if dst.Block() == blockA {
			rtt = 120 * time.Millisecond
		}
		return simnet.Reply{Kind: simnet.EchoReply, RTT: rtt}
	})
	ts := newTargets(t, "10.0.0.0/24", "10.0.1.0/24")
	start := time.Unix(0, 0)
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), resp, start)
	sc := scanner.New(net, scanner.Config{Rate: 50000, Seed: 3, Epoch: 2, Clock: net, Cooldown: time.Second})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	var rttA, rttB time.Duration
	for i := range rd.Blocks {
		if rd.Blocks[i].Block == blockA {
			rttA = rd.Blocks[i].MeanRTT()
		} else {
			rttB = rd.Blocks[i].MeanRTT()
		}
	}
	if rttA < 115*time.Millisecond || rttA > 125*time.Millisecond {
		t.Errorf("rttA = %v, want ≈120ms", rttA)
	}
	if rttB < 25*time.Millisecond || rttB > 35*time.Millisecond {
		t.Errorf("rttB = %v, want ≈30ms", rttB)
	}
}

func TestScanSilentSpace(t *testing.T) {
	resp := simnet.ResponderFunc(func(netmodel.Addr, time.Time) simnet.Reply {
		return simnet.Reply{Kind: simnet.NoReply}
	})
	ts := newTargets(t, "10.1.0.0/24")
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), resp, time.Unix(0, 0))
	sc := scanner.New(net, scanner.Config{Rate: 0, Seed: 4, Clock: net, Cooldown: 100 * time.Millisecond})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.Valid != 0 || rd.Blocks[0].RespCount != 0 {
		t.Errorf("silent space produced replies: %+v", rd.Stats)
	}
}

func TestScanNonEchoCounted(t *testing.T) {
	resp := simnet.ResponderFunc(func(dst netmodel.Addr, at time.Time) simnet.Reply {
		return simnet.Reply{Kind: simnet.HostUnreachable, RTT: 5 * time.Millisecond}
	})
	ts := newTargets(t, "10.2.0.0/24")
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), resp, time.Unix(0, 0))
	sc := scanner.New(net, scanner.Config{Rate: 0, Seed: 5, Clock: net, Cooldown: time.Second})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.NonEcho != 256 {
		t.Errorf("NonEcho = %d, want 256", rd.Stats.NonEcho)
	}
	if rd.Stats.Valid != 0 {
		t.Errorf("unreachables must not count as responsive; Valid = %d", rd.Stats.Valid)
	}
}

func TestScanVirtualDuration(t *testing.T) {
	// 256 targets at 1000 pps should take ≈0.26s of virtual time (plus
	// cooldown), regardless of wall-clock speed.
	ts := newTargets(t, "10.3.0.0/24")
	net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
	sc := scanner.New(net, scanner.Config{Rate: 1000, Burst: 1, Seed: 6, Clock: net, Cooldown: 500 * time.Millisecond})
	rd, err := sc.Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.Elapsed < 255*time.Millisecond || rd.Stats.Elapsed > 900*time.Millisecond {
		t.Errorf("virtual elapsed = %v, want ≈0.26s+cooldown", rd.Stats.Elapsed)
	}
}

func TestTargetSetExclusion(t *testing.T) {
	ps := []netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/22")}
	ex := []netmodel.Prefix{netmodel.MustParsePrefix("10.0.1.0/24")}
	ts, err := scanner.NewTargetSet(ps, ex)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", ts.NumBlocks())
	}
	if ts.BlockIndex(netmodel.MustParseAddr("10.0.1.5")) != -1 {
		t.Error("excluded block still indexed")
	}
	if ts.Len() != 3*256 {
		t.Errorf("Len = %d", ts.Len())
	}
}

func TestTargetSetDedup(t *testing.T) {
	ps := []netmodel.Prefix{
		netmodel.MustParsePrefix("10.0.0.0/24"),
		netmodel.MustParsePrefix("10.0.0.0/25"),
	}
	ts, err := scanner.NewTargetSet(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumBlocks() != 1 {
		t.Errorf("NumBlocks = %d, want 1", ts.NumBlocks())
	}
}

func TestTargetSetErrors(t *testing.T) {
	if _, err := scanner.NewTargetSet(nil, nil); err == nil {
		t.Error("empty target set accepted")
	}
	ps := []netmodel.Prefix{netmodel.MustParsePrefix("10.0.0.0/24")}
	if _, err := scanner.NewTargetSet(ps, ps); err == nil {
		t.Error("fully-excluded target set accepted")
	}
}

func TestTargetSetAddrMapping(t *testing.T) {
	ts := newTargets(t, "10.0.0.0/23")
	if got := ts.Addr(0); got != netmodel.MustParseAddr("10.0.0.0") {
		t.Errorf("Addr(0) = %v", got)
	}
	if got := ts.Addr(257); got != netmodel.MustParseAddr("10.0.1.1") {
		t.Errorf("Addr(257) = %v", got)
	}
}

func TestProbesPerAddrRecoversLoss(t *testing.T) {
	// A transport that drops every address's first probe: with one probe
	// per address nothing answers; with two, everything live does.
	ts := newTargets(t, "10.7.0.0/24")
	run := func(probes int) uint64 {
		net := simnet.New(netmodel.MustParseAddr("198.51.100.1"), respondEvens(10*time.Millisecond), time.Unix(0, 0))
		lossy := &lossyTransport{inner: net, seen: make(map[netmodel.Addr]bool)}
		sc := scanner.New(lossy, scanner.Config{
			Rate: 0, Seed: 8, Epoch: 1, Clock: net,
			Cooldown: 500 * time.Millisecond, ProbesPerAddr: probes,
		})
		rd, err := sc.Run(ts)
		if err != nil {
			t.Fatal(err)
		}
		return rd.Stats.Valid
	}
	if got := run(1); got != 0 {
		t.Errorf("single probe through first-drop transport: valid = %d, want 0", got)
	}
	if got := run(2); got != 128 {
		t.Errorf("retransmission: valid = %d, want 128", got)
	}
}
