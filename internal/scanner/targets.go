package scanner

import (
	"errors"
	"sort"

	"countrymon/internal/netmodel"
)

// TargetSet is the set of addresses a scan probes: the /24 blocks obtained
// by de-aggregating the input prefixes (minus exclusions), each probed in
// full. The set provides a dense index space 0..Len()-1 that the permutation
// walks; index i maps to host i%256 of block i/256.
type TargetSet struct {
	blocks []netmodel.BlockID
	index  map[netmodel.BlockID]int
}

// NewTargetSet builds the target set from prefixes, excluding any /24 that
// overlaps one of the excluded prefixes (ZMap blacklist semantics).
func NewTargetSet(prefixes []netmodel.Prefix, exclude []netmodel.Prefix) (*TargetSet, error) {
	if len(prefixes) == 0 {
		return nil, errors.New("scanner: no target prefixes")
	}
	var blocks []netmodel.BlockID
	for _, p := range prefixes {
		blocks = p.Blocks(blocks)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	out := blocks[:0]
	var last netmodel.BlockID
	first := true
	for _, b := range blocks {
		if !first && b == last {
			continue
		}
		if blockExcluded(b, exclude) {
			continue
		}
		out = append(out, b)
		last, first = b, false
	}
	if len(out) == 0 {
		return nil, errors.New("scanner: all targets excluded")
	}
	ts := &TargetSet{blocks: out, index: make(map[netmodel.BlockID]int, len(out))}
	for i, b := range ts.blocks {
		ts.index[b] = i
	}
	return ts, nil
}

func blockExcluded(b netmodel.BlockID, exclude []netmodel.Prefix) bool {
	bp := netmodel.Prefix{Base: b.First(), Bits: 24}
	for _, e := range exclude {
		if e.Overlaps(bp) {
			return true
		}
	}
	return false
}

// Len returns the number of probe targets (blocks × 256).
func (t *TargetSet) Len() uint64 { return uint64(len(t.blocks)) * netmodel.BlockSize }

// NumBlocks returns the number of /24 blocks.
func (t *TargetSet) NumBlocks() int { return len(t.blocks) }

// Blocks returns the sorted block list. Callers must not mutate it.
func (t *TargetSet) Blocks() []netmodel.BlockID { return t.blocks }

// Addr maps a dense target index to its address.
func (t *TargetSet) Addr(i uint64) netmodel.Addr {
	return t.blocks[i/netmodel.BlockSize].Addr(uint8(i % netmodel.BlockSize))
}

// BlockIndex returns the dense block index of the block containing a, or -1
// if a is not a target.
func (t *TargetSet) BlockIndex(a netmodel.Addr) int {
	if i, ok := t.index[a.Block()]; ok {
		return i
	}
	return -1
}
