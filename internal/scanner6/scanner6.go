// Package scanner6 is the IPv6 counterpart of the full-block scanner — the
// paper's future-work direction (§6). The IPv6 space cannot be enumerated,
// so probing works from a *hitlist* of known-interesting addresses (from
// DNS, NTP pools, ICMPv6 error harvesting); the prober validates replies
// statelessly like the IPv4 scanner and aggregates responsiveness per /48
// site prefix, the v6 analogue of the /24 block.
package scanner6

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"countrymon/internal/icmp6"
	"countrymon/internal/scanner"
)

// SiteBits is the aggregation prefix length (a /48 is the common site
// assignment, playing the /24's role).
const SiteBits = 48

// Site returns the /48 prefix containing a.
func Site(a netip.Addr) netip.Prefix {
	p, _ := a.Prefix(SiteBits)
	return p
}

// Hitlist is a deduplicated, ordered set of probe targets.
type Hitlist struct {
	addrs []netip.Addr
}

// NewHitlist builds a hitlist (sorted + deduplicated, IPv6 only).
func NewHitlist(addrs []netip.Addr) (*Hitlist, error) {
	var v6 []netip.Addr
	for _, a := range addrs {
		if !a.Is6() || a.Is4In6() {
			return nil, fmt.Errorf("scanner6: %v is not an IPv6 address", a)
		}
		v6 = append(v6, a)
	}
	if len(v6) == 0 {
		return nil, errors.New("scanner6: empty hitlist")
	}
	sort.Slice(v6, func(i, j int) bool { return v6[i].Less(v6[j]) })
	out := v6[:1]
	for _, a := range v6[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return &Hitlist{addrs: out}, nil
}

// Len returns the number of targets.
func (h *Hitlist) Len() int { return len(h.addrs) }

// Addrs returns the targets (do not mutate).
func (h *Hitlist) Addrs() []netip.Addr { return h.addrs }

// Sites returns the distinct /48 sites covered.
func (h *Hitlist) Sites() []netip.Prefix {
	var out []netip.Prefix
	for _, a := range h.addrs {
		s := Site(a)
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// Transport carries raw IPv6 datagrams.
type Transport interface {
	// WritePacket transmits one IPv6 datagram; implementations must not
	// retain b.
	WritePacket(b []byte) error
	// ReadPacket returns the next inbound datagram, waiting at most wait.
	ReadPacket(wait time.Duration) (pkt []byte, at time.Time, err error)
	// LocalAddr is the vantage point's IPv6 source address.
	LocalAddr() netip.Addr
}

// Config controls one probe round.
type Config struct {
	Rate     int
	Seed     uint64
	Epoch    uint32
	HopLimit uint8
	Cooldown time.Duration
	Clock    scanner.Clock
}

func (c Config) withDefaults() Config {
	if c.Rate == 0 {
		c.Rate = scanner.DefaultRate
	}
	if c.HopLimit == 0 {
		c.HopLimit = 64
	}
	if c.Cooldown == 0 {
		c.Cooldown = 8 * time.Second
	}
	if c.Clock == nil {
		c.Clock = scanner.RealClock{}
	}
	return c
}

// SiteResult aggregates one /48 site's responsiveness.
type SiteResult struct {
	Site      netip.Prefix
	Targets   int
	Responses int
	RTTSum    time.Duration
}

// MeanRTT returns the site's mean RTT (0 without responses).
func (s *SiteResult) MeanRTT() time.Duration {
	if s.Responses == 0 {
		return 0
	}
	return s.RTTSum / time.Duration(s.Responses)
}

// RoundData is one completed hitlist round.
type RoundData struct {
	Sites []SiteResult
	Stats scanner.Stats
	// ErrorSources are routers revealed by ICMPv6 error messages — the
	// NAT-free visibility gain §6 cites.
	ErrorSources []icmp6.ErrorSource
}

// Prober runs hitlist rounds.
type Prober struct {
	cfg Config
	tr  Transport
}

// New builds a prober.
func New(tr Transport, cfg Config) *Prober {
	return &Prober{cfg: cfg.withDefaults(), tr: tr}
}

// idSeq derives the stateless validation identity for a target.
func idSeq(seed uint64, epoch uint32, dst netip.Addr) (uint16, uint16) {
	b := dst.As16()
	h := seed ^ uint64(epoch)<<32
	for i := 0; i < 16; i += 8 {
		h = (h ^ binary.BigEndian.Uint64(b[i:])) * 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	return uint16(h >> 16), uint16(h)
}

// Run probes every hitlist address once.
func (p *Prober) Run(hl *Hitlist) (*RoundData, error) {
	cfg := p.cfg
	src := p.tr.LocalAddr()
	start := cfg.Clock.Now()
	rl := scanner.NewRateLimiter(cfg.Clock, cfg.Rate, 64)

	sites := hl.Sites()
	siteIdx := make(map[netip.Prefix]int, len(sites))
	rd := &RoundData{Sites: make([]SiteResult, len(sites))}
	for i, s := range sites {
		rd.Sites[i].Site = s
		siteIdx[s] = i
	}
	for _, a := range hl.addrs {
		rd.Sites[siteIdx[Site(a)]].Targets++
	}

	var payload [8]byte
	for _, dst := range hl.addrs {
		rl.Wait()
		now := cfg.Clock.Now()
		id, seq := idSeq(cfg.Seed, cfg.Epoch, dst)
		binary.BigEndian.PutUint32(payload[0:], cfg.Epoch)
		ms := now.Sub(start).Milliseconds()
		if ms < 0 {
			ms = 0
		}
		binary.BigEndian.PutUint32(payload[4:], uint32(ms))
		msg := icmp6.EchoRequest(src, dst, id, seq, payload[:])
		dg, err := icmp6.MarshalIPv6(icmp6.IPv6Header{
			NextHeader: icmp6.NextHeaderICMPv6, HopLimit: cfg.HopLimit,
			Src: src, Dst: dst,
		}, msg)
		if err != nil {
			return nil, err
		}
		if err := p.tr.WritePacket(dg); err != nil {
			return nil, fmt.Errorf("scanner6: send to %v: %w", dst, err)
		}
		rd.Stats.Sent++
		p.drain(rd, src, start, 0, siteIdx)
	}
	deadline := cfg.Clock.Now().Add(cfg.Cooldown)
	for {
		left := deadline.Sub(cfg.Clock.Now())
		if left <= 0 {
			break
		}
		if !p.readOne(rd, src, start, left, siteIdx) {
			break
		}
	}
	rd.Stats.Elapsed = cfg.Clock.Now().Sub(start)
	return rd, nil
}

func (p *Prober) drain(rd *RoundData, src netip.Addr, start time.Time, wait time.Duration, siteIdx map[netip.Prefix]int) {
	for p.readOne(rd, src, start, wait, siteIdx) {
		wait = 0
	}
}

func (p *Prober) readOne(rd *RoundData, src netip.Addr, start time.Time, wait time.Duration, siteIdx map[netip.Prefix]int) bool {
	pkt, at, err := p.tr.ReadPacket(wait)
	if err != nil {
		return false
	}
	h, body, err := icmp6.ParseIPv6(pkt)
	if err != nil || h.NextHeader != icmp6.NextHeaderICMPv6 {
		rd.Stats.Invalid++
		return true
	}
	m, err := icmp6.Parse(h.Src, h.Dst, body)
	if err != nil {
		rd.Stats.Invalid++
		return true
	}
	if m.IsError() {
		// Harvest the emitting router (§6's visibility gain).
		if es, err := icmp6.RevealSource(pkt); err == nil {
			rd.ErrorSources = append(rd.ErrorSources, es)
		}
		rd.Stats.NonEcho++
		return true
	}
	if m.Type != icmp6.TypeEchoReply {
		rd.Stats.NonEcho++
		return true
	}
	id, seq := idSeq(p.cfg.Seed, p.cfg.Epoch, h.Src)
	if m.ID != id || m.Seq != seq || len(m.Payload) < 8 ||
		binary.BigEndian.Uint32(m.Payload[0:]) != p.cfg.Epoch {
		rd.Stats.Invalid++
		return true
	}
	rd.Stats.Received++
	si, ok := siteIdx[Site(h.Src)]
	if !ok {
		rd.Stats.Invalid++
		return true
	}
	sentMS := binary.BigEndian.Uint32(m.Payload[4:])
	rtt := at.Sub(start) - time.Duration(sentMS)*time.Millisecond
	if rtt < 0 {
		rtt = 0
	}
	rd.Sites[si].Responses++
	rd.Sites[si].RTTSum += rtt
	rd.Stats.Valid++
	return true
}
