package scanner6_test

import (
	"net/netip"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/scanner6"
	"countrymon/internal/sim"
	"countrymon/internal/simnet"
	"countrymon/internal/timeline"
)

func v6(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestHitlistBasics(t *testing.T) {
	hl, err := scanner6.NewHitlist([]netip.Addr{
		v6("2a0d:8480::2"), v6("2a0d:8480::1"), v6("2a0d:8480::1"), // dup
		v6("2a0d:8481::9"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hl.Len() != 3 {
		t.Fatalf("len = %d", hl.Len())
	}
	sites := hl.Sites()
	if len(sites) != 2 {
		t.Fatalf("sites = %v", sites)
	}
	if _, err := scanner6.NewHitlist(nil); err == nil {
		t.Error("empty hitlist accepted")
	}
	if _, err := scanner6.NewHitlist([]netip.Addr{netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Error("IPv4 address accepted")
	}
}

func TestSite(t *testing.T) {
	a := v6("2a0d:8480:7:abcd::42")
	s := scanner6.Site(a)
	if s.Bits() != 48 {
		t.Fatalf("bits = %d", s.Bits())
	}
	if !s.Contains(a) {
		t.Fatal("site does not contain its address")
	}
}

func TestProbeRoundOverSimnet6(t *testing.T) {
	sc := sim.MustBuild(sim.Config{Seed: 42, Scale: 0.02,
		End: timeline.DefaultStart.AddDate(0, 2, 0)})
	hl, err := sc.V6Hitlist()
	if err != nil {
		t.Fatal(err)
	}
	if hl.Len() < 100 {
		t.Fatalf("hitlist too small: %d", hl.Len())
	}
	start := timeline.DefaultStart
	wire := simnet.New6(v6("2001:db8::1"), sc.V6Responder(), start)
	p := scanner6.New(wire, scanner6.Config{Rate: 0, Seed: 7, Epoch: 1, Clock: wire, Cooldown: time.Second})
	rd, err := p.Run(hl)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.Sent != uint64(hl.Len()) {
		t.Errorf("sent = %d, want %d", rd.Stats.Sent, hl.Len())
	}
	if rd.Stats.Valid == 0 {
		t.Fatal("no valid replies")
	}
	if rd.Stats.Invalid != 0 {
		t.Errorf("invalid = %d", rd.Stats.Invalid)
	}
	// Response share should be in the adoption band (1%..95%).
	share := float64(rd.Stats.Valid) / float64(rd.Stats.Sent)
	if share < 0.05 || share > 0.9 {
		t.Errorf("responsive share = %.2f", share)
	}
	// Error harvesting reveals routers.
	if len(rd.ErrorSources) == 0 {
		t.Error("no routers harvested from ICMPv6 errors")
	}
	for _, es := range rd.ErrorSources {
		if !es.Router.IsValid() || es.OriginalDst == es.Router {
			t.Fatalf("bad error source %+v", es)
		}
	}
	// Per-site accounting adds up.
	totalTargets, totalResp := 0, 0
	for i := range rd.Sites {
		totalTargets += rd.Sites[i].Targets
		totalResp += rd.Sites[i].Responses
		if rd.Sites[i].Responses > rd.Sites[i].Targets {
			t.Fatalf("site %v: more responses than targets", rd.Sites[i].Site)
		}
	}
	if totalTargets != hl.Len() {
		t.Errorf("site targets = %d", totalTargets)
	}
	if uint64(totalResp) != rd.Stats.Valid {
		t.Errorf("site responses %d vs valid %d", totalResp, rd.Stats.Valid)
	}
}

func TestV6AdoptionGrows(t *testing.T) {
	sc := sim.MustBuild(sim.Config{Seed: 42, Scale: 0.02})
	hl, err := sc.V6Hitlist()
	if err != nil {
		t.Fatal(err)
	}
	run := func(at time.Time) float64 {
		wire := simnet.New6(v6("2001:db8::1"), sc.V6Responder(), at)
		p := scanner6.New(wire, scanner6.Config{Rate: 0, Seed: 9, Epoch: 2, Clock: wire, Cooldown: time.Second})
		rd, err := p.Run(hl)
		if err != nil {
			t.Fatal(err)
		}
		return float64(rd.Stats.Valid) / float64(rd.Stats.Sent)
	}
	early := run(sc.TL.Start())
	late := run(sc.TL.End())
	if late <= early {
		t.Errorf("IPv6 adoption should grow: early %.3f late %.3f (Fig 20)", early, late)
	}
	// Rivne is scripted with the strongest growth.
	_ = netmodel.Rivne
}

func TestRegionPrefixRoundTrip(t *testing.T) {
	for _, r := range netmodel.Regions() {
		p := sim.V6RegionPrefix(r)
		if p.Bits() != 40 {
			t.Fatalf("%v prefix bits = %d", r, p.Bits())
		}
		if !p.Contains(p.Addr()) {
			t.Fatal("prefix does not contain its base")
		}
	}
}
