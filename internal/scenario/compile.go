package scenario

import (
	"fmt"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/power"
	"countrymon/internal/sim"
)

// poolBase is the first /24 of the scenario address pool (100.64.0.0/10,
// CGNAT space — guaranteed disjoint from the war script's real prefixes).
// AS blocks are carved from it sequentially, so a scenario's address plan is
// a pure function of its AS list.
var poolBase = netmodel.MustParseAddr("100.64.0.0").Block()

// TruthWindow is one labeled ground-truth interval for one scored entity
// ("as:64500" or "region:Kyiv"). Benign windows are ambiguities that must
// not be flagged; the rest are outages that must be.
type TruthWindow struct {
	Entity   string
	Name     string
	From, To time.Time
	Benign   bool
}

// Compiled is a scenario ready to run: the assembled simulator plus the
// labels and vantage-degradation plan the scorecard harness consumes.
type Compiled struct {
	Spec *Spec
	Sim  *sim.Scenario
	// Truth holds every labeled window, benign and outage, per entity.
	Truth []TruthWindow
	// Degraded maps round → salvaged coverage fraction (0, 1) for rounds
	// inside a positive-coverage VantageWindow. Full-outage windows are in
	// Sim.Missing instead.
	Degraded map[int]float64
}

// ASEntity and RegionEntity name scorecard entities consistently everywhere
// (truth derivation, scoring, goldens).
func ASEntity(asn netmodel.ASN) string      { return fmt.Sprintf("as:%d", asn) }
func RegionEntity(r netmodel.Region) string { return "region:" + r.String() }

// Compile turns a validated Spec into a running world. Every stochastic
// choice (per-block trait assignment, event block subsets) is a pure hash of
// (seed, identifiers), so the same file always compiles to the same campaign.
func (s *Spec) Compile() (*Compiled, error) {
	spec := sim.Spec{
		Cfg: sim.Config{
			Seed:     s.Seed,
			Interval: s.Interval,
			Start:    s.Start,
			End:      s.End(),
		},
		Country:     s.Country,
		CountryName: s.CountryName,
	}

	// Carve the address plan and per-block traits.
	next := poolBase
	asBlocks := make(map[netmodel.ASN][]netmodel.BlockID, len(s.ASes))
	regionASes := make(map[netmodel.Region][]netmodel.ASN)
	for i := range s.ASes {
		as := &s.ASes[i]
		model := &netmodel.AS{ASN: as.ASN, Name: as.Name, HQ: as.Region}
		regionASes[as.Region] = append(regionASes[as.Region], as.ASN)
		for b := 0; b < as.Blocks; b++ {
			blk := next
			next++
			model.Prefixes = append(model.Prefixes, netmodel.MustNewPrefix(blk.First(), 24))
			asBlocks[as.ASN] = append(asBlocks[as.ASN], blk)
			spec.Blocks = append(spec.Blocks, s.blockTraits(as, blk))
		}
		spec.ASes = append(spec.ASes, sim.ASTraits{AS: model, National: as.National})
	}

	// Events: full-scope events pass their AS/region scope through; percent
	// events pin an explicit hash-chosen block subset (sim matches scope
	// dimensions as a union, so the subset must be the only dimension).
	for i := range s.Events {
		ev := &s.Events[i]
		out := sim.Event{
			Name: ev.Name, From: ev.From, To: ev.To, Kind: ev.Effect,
			Magnitude: ev.Magnitude, RTTDeltaMS: ev.RTTDeltaMS,
		}
		if ev.BlockPct >= 100 {
			out.ASNs = append([]netmodel.ASN(nil), ev.ASNs...)
			out.Regions = append([]netmodel.Region(nil), ev.Regions...)
		} else {
			nameSeed := nameHash(ev.Name)
			for _, asn := range scopeASNs(ev, regionASes) {
				for _, blk := range asBlocks[asn] {
					if hash3(s.Seed^0xe7e1, uint64(blk), nameSeed)%100 < uint64(ev.BlockPct) {
						out.Blocks = append(out.Blocks, blk)
					}
				}
			}
			if len(out.Blocks) == 0 {
				return nil, fmt.Errorf("scenario %s: event %q selects no blocks", s.Name, ev.Name)
			}
		}
		spec.Events = append(spec.Events, out)
	}

	if len(s.Strikes) > 0 {
		spec.Power = power.Scripted(s.Start, s.Days, s.Strikes, s.Seed^0x9041)
	}

	// Vantage plan: full-outage windows become the sim's missing mask,
	// degraded windows a round → coverage map for the harness.
	rounds := s.Rounds()
	degraded := make(map[int]float64)
	spec.Missing = make([]bool, rounds)
	for _, w := range s.Missing {
		for _, r := range windowRounds(w.From, w.To, s.Start, s.Interval, rounds) {
			if w.Coverage == 0 {
				spec.Missing[r] = true
			} else {
				degraded[r] = w.Coverage
			}
		}
	}

	world, err := sim.Assemble(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return &Compiled{
		Spec:     s,
		Sim:      world,
		Truth:    s.truthWindows(regionASes),
		Degraded: degraded,
	}, nil
}

// MustCompile is Compile that panics on error, for the embedded library.
func (s *Spec) MustCompile() *Compiled {
	c, err := s.Compile()
	if err != nil {
		panic(err)
	}
	return c
}

// blockTraits derives one block's behaviour from its AS profile. Each field
// draws from an independent salted hash so trait membership is uncorrelated.
func (s *Spec) blockTraits(as *ASSpec, blk netmodel.BlockID) sim.BlockTraits {
	field := func(salt uint64) uint64 { return hash3(s.Seed^0x5eca, uint64(blk), salt) }
	pick := func(salt uint64, pct int) bool { return field(salt)%100 < uint64(pct) }

	// Density jitters ±1/8 around the profile so blocks are not clones.
	density := as.Density
	if spread := as.Density / 8; spread > 0 {
		density += int(field(1)%uint64(2*spread+1)) - spread
	}
	if density < 1 {
		density = 1
	}
	if density > 255 {
		density = 255
	}
	rate := as.RespRate * (0.95 + 0.1*unitFloat(field(2)))
	if rate > 1 {
		rate = 1
	}

	t := sim.BlockTraits{
		Block:       blk,
		ASN:         as.ASN,
		HomeRegion:  as.Region,
		Density:     uint8(density),
		RespRate:    float32(rate),
		DeclineTo:   float32(as.DeclineTo),
		Diurnal:     pick(3, as.DiurnalPct),
		BackupHours: float32(as.BackupHours),
		MoveMonth:   -1,
	}
	t.GridSensitive = pick(4, as.GridSensitivePct)
	t.Dynamic = pick(5, as.DynamicPct)
	t.Static = as.Static && !t.Dynamic
	if as.DriftPct > 0 && pick(6, as.DriftPct) {
		t.DriftFrac = float32(as.DriftFrac)
		t.DriftRegion = as.DriftRegion
	}
	if as.MigratePct > 0 && pick(7, as.MigratePct) {
		t.MoveMonth = int16(as.MigrateMonth)
		t.MoveRegion = as.MigrateRegion
		t.MoveCountry = as.MigrateCountry
	}
	return t
}

// scopeASNs expands an event's scope to the ASes it touches: the listed
// ASNs plus every AS homed in a listed region.
func scopeASNs(ev *EventSpec, regionASes map[netmodel.Region][]netmodel.ASN) []netmodel.ASN {
	seen := make(map[netmodel.ASN]bool)
	var out []netmodel.ASN
	add := func(asn netmodel.ASN) {
		if !seen[asn] {
			seen[asn] = true
			out = append(out, asn)
		}
	}
	for _, asn := range ev.ASNs {
		add(asn)
	}
	for _, r := range ev.Regions {
		for _, asn := range regionASes[r] {
			add(asn)
		}
	}
	return out
}

// windowRounds lists the rounds whose probe time falls inside [from, to).
func windowRounds(from, to, start time.Time, interval time.Duration, rounds int) []int {
	fromR := int((from.Sub(start) + interval - 1) / interval)
	toR := int((to.Sub(start) + interval - 1) / interval)
	if fromR < 0 {
		fromR = 0
	}
	if toR > rounds {
		toR = rounds
	}
	var out []int
	for r := fromR; r < toR; r++ {
		out = append(out, r)
	}
	return out
}

// truthWindows derives the per-entity label set: every event labels the ASes
// it touches (and any regions it is explicitly scoped to); every power
// strike labels its regions and the ASes homed there.
func (s *Spec) truthWindows(regionASes map[netmodel.Region][]netmodel.ASN) []TruthWindow {
	var out []TruthWindow
	for i := range s.Events {
		ev := &s.Events[i]
		benign := ev.Label == LabelBenign
		for _, asn := range scopeASNs(ev, regionASes) {
			out = append(out, TruthWindow{
				Entity: ASEntity(asn), Name: ev.Name,
				From: ev.From, To: ev.To, Benign: benign,
			})
		}
		for _, r := range ev.Regions {
			out = append(out, TruthWindow{
				Entity: RegionEntity(r), Name: ev.Name,
				From: ev.From, To: ev.To, Benign: benign,
			})
		}
	}
	for _, k := range s.Strikes {
		from := s.Start.Add(time.Duration(k.Day) * 24 * time.Hour)
		to := from.Add(time.Duration(k.Days) * 24 * time.Hour)
		name := fmt.Sprintf("power-strike-d%d", k.Day)
		for _, r := range k.Regions {
			out = append(out, TruthWindow{
				Entity: RegionEntity(r), Name: name, From: from, To: to,
			})
			for _, asn := range regionASes[r] {
				out = append(out, TruthWindow{
					Entity: ASEntity(asn), Name: name, From: from, To: to,
				})
			}
		}
	}
	return out
}

// nameHash is FNV-1a over the event name, feeding block-subset selection.
func nameHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
