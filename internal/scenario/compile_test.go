package scenario

import (
	"testing"
	"time"

	"countrymon/internal/netmodel"
)

const compileDoc = `{
  "name": "c",
  "seed": 7,
  "start": "2023-03-01T00:00:00Z",
  "interval": "4h",
  "days": 40,
  "ases": [
    {"asn": 64500, "name": "A", "region": "Kyiv", "blocks": 4, "density": 50, "resp_rate": 0.8},
    {"asn": 64501, "name": "B", "region": "Lviv", "blocks": 3, "density": 50, "resp_rate": 0.8}
  ],
  "events": [
    {"name": "full", "at": "30d", "duration": "1d", "effect": "silent", "ases": [64500]},
    {"name": "partial", "at": "34d", "duration": "1d", "effect": "ips_drop", "magnitude": 0.5, "block_pct": 50, "regions": ["Lviv"]}
  ],
  "power": {"strikes": [{"day": 20, "days": 2, "hours": 10, "regions": ["Kyiv"]}]},
  "missing": [
    {"at": "10d", "duration": "8h", "coverage": 0},
    {"at": "12d", "duration": "8h", "coverage": 0.9}
  ],
  "score": {"ases": [64500, 64501]}
}`

func compileTestSpec(t *testing.T) *Compiled {
	t.Helper()
	spec, err := Parse([]byte(compileDoc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileAddressPlan(t *testing.T) {
	c := compileTestSpec(t)
	space := c.Sim.Space
	if space.NumBlocks() != 7 {
		t.Fatalf("blocks = %d, want 7", space.NumBlocks())
	}
	// Blocks carve sequentially from the pool: first AS owns the first four.
	blocks := space.Blocks()
	if blocks[0] != poolBase || blocks[6] != poolBase+6 {
		t.Fatalf("pool carving broken: %v..%v", blocks[0], blocks[6])
	}
	for i, blk := range blocks {
		want := netmodel.ASN(64500)
		if i >= 4 {
			want = 64501
		}
		if got := space.OriginOf(blk); got != want {
			t.Fatalf("block %v origin = %d, want %d", blk, got, want)
		}
	}
	if c.Sim.TL.NumRounds() != 240 {
		t.Fatalf("rounds = %d", c.Sim.TL.NumRounds())
	}
}

func TestCompileDeterminism(t *testing.T) {
	a := compileTestSpec(t)
	b := compileTestSpec(t)
	start := a.Spec.Start
	for bi := range a.Sim.Space.Blocks() {
		for _, at := range []time.Time{
			start.Add(30*24*time.Hour + 2*time.Hour),
			start.Add(34*24*time.Hour + 2*time.Hour),
			start.Add(20*24*time.Hour + 8*time.Hour),
		} {
			sa, sb := a.Sim.BlockStateAt(bi, at), b.Sim.BlockStateAt(bi, at)
			if sa != sb {
				t.Fatalf("block %d at %v: %+v vs %+v", bi, at, sa, sb)
			}
		}
	}
	// A different seed produces different trait draws somewhere.
	spec2, err := Parse([]byte(compileDoc))
	if err != nil {
		t.Fatal(err)
	}
	spec2.Seed = 8
	c2, err := spec2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	at := start.Add(34*24*time.Hour + 2*time.Hour)
	for bi := range a.Sim.Space.Blocks() {
		if a.Sim.BlockStateAt(bi, at) != c2.Sim.BlockStateAt(bi, at) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seed change left every block state identical")
	}
}

func TestCompileEffects(t *testing.T) {
	c := compileTestSpec(t)
	start := c.Spec.Start
	space := c.Sim.Space

	// The full-scope silent event kills every 64500 block.
	during := start.Add(30*24*time.Hour + 2*time.Hour)
	before := start.Add(29 * 24 * time.Hour)
	for bi, blk := range space.Blocks() {
		if space.OriginOf(blk) != 64500 {
			continue
		}
		if st := c.Sim.BlockStateAt(bi, during); st.Resp != 0 {
			t.Fatalf("block %v responds (%d) during silent event", blk, st.Resp)
		}
		if st := c.Sim.BlockStateAt(bi, before); st.Resp == 0 {
			t.Fatalf("block %v dead before the event", blk)
		}
	}

	// The 50% partial event hits a strict, non-empty subset of 64501 blocks.
	evs := c.Sim.Events()
	var partialBlocks []netmodel.BlockID
	for _, ev := range evs {
		if ev.Name == "partial" {
			if len(ev.ASNs) != 0 || len(ev.Regions) != 0 {
				t.Fatalf("partial event kept broad scope: %+v", ev)
			}
			partialBlocks = ev.Blocks
		}
	}
	if len(partialBlocks) == 0 || len(partialBlocks) >= 3 {
		t.Fatalf("partial subset = %d of 3 blocks", len(partialBlocks))
	}
	for _, blk := range partialBlocks {
		if space.OriginOf(blk) != 64501 {
			t.Fatalf("subset block %v outside scoped AS", blk)
		}
	}

	// Power strike shows up in the schedule, on the scripted region only.
	if got := c.Sim.Power.Hours(20, netmodel.Kyiv); got != 10 {
		t.Fatalf("strike hours = %g", got)
	}
	if got := c.Sim.Power.Hours(20, netmodel.Lviv); got != 0 {
		t.Fatalf("unscripted region has %g outage hours", got)
	}

	// Vantage plan: full-outage window in the missing mask, degraded window
	// in the coverage map, and the two never overlap.
	wantMissing := []int{60, 61} // 10d..10d8h at 4h rounds
	for _, r := range wantMissing {
		if !c.Sim.Missing[r] {
			t.Fatalf("round %d not missing", r)
		}
	}
	if c.Sim.Missing[62] {
		t.Fatal("missing window too wide")
	}
	if cov := c.Degraded[72]; cov != 0.9 { // 12d
		t.Fatalf("degraded[72] = %g", cov)
	}
	for r := range c.Degraded {
		if c.Sim.Missing[r] {
			t.Fatalf("round %d both missing and degraded", r)
		}
	}
}

func TestCompileTruthWindows(t *testing.T) {
	c := compileTestSpec(t)
	byEntity := map[string][]TruthWindow{}
	for _, w := range c.Truth {
		byEntity[w.Entity] = append(byEntity[w.Entity], w)
	}
	// 64500: the silent event plus the power strike on its home region.
	if got := len(byEntity[ASEntity(64500)]); got != 2 {
		t.Fatalf("as:64500 truth windows = %d, want 2", got)
	}
	// 64501: the region-scoped partial event.
	if got := len(byEntity[ASEntity(64501)]); got != 1 {
		t.Fatalf("as:64501 truth windows = %d, want 1", got)
	}
	// The region-scoped event also labels the region itself; the strike
	// labels its region.
	if got := len(byEntity[RegionEntity(netmodel.Lviv)]); got != 1 {
		t.Fatalf("region:Lviv truth windows = %d, want 1", got)
	}
	if got := len(byEntity[RegionEntity(netmodel.Kyiv)]); got != 1 {
		t.Fatalf("region:Kyiv truth windows = %d, want 1", got)
	}
	for _, w := range c.Truth {
		if w.Benign {
			t.Fatalf("unexpected benign window %+v", w)
		}
		if !w.From.Before(w.To) {
			t.Fatalf("empty truth window %+v", w)
		}
	}
}

func TestCompileLibrary(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("library has %d scenarios, want >= 5", len(names))
	}
	for _, name := range names {
		spec, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("%s: file name and scenario name disagree (%q)", name, spec.Name)
		}
		c, err := spec.Compile()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		outages := 0
		for _, w := range c.Truth {
			if !w.Benign {
				outages++
			}
		}
		if outages == 0 {
			t.Errorf("%s: no labeled outage windows — recall is vacuous", name)
		}
	}
}
