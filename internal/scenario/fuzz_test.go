package scenario

import (
	"testing"
)

// FuzzScenarioParse hammers the scenario parser with mutated documents. The
// invariant is the validation contract: Parse either rejects with an error or
// returns a Spec whose bounds hold — no panics, no out-of-range worlds, no
// cyclic or out-of-campaign events surviving into a Spec.
func FuzzScenarioParse(f *testing.F) {
	for _, name := range Names() {
		src, err := Source(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Add([]byte(minimalDoc))
	f.Add([]byte(`{"name": "x", "days": -1}`))
	f.Add([]byte(`{"name": "x", "start": "2023-03-01T00:00:00Z", "days": 10,
	  "ases": [{"asn": 1, "name": "a", "region": "Kyiv", "blocks": 1, "density": 1, "resp_rate": 0.5}],
	  "events": [{"name": "a", "after": "a.end", "duration": "1d", "effect": "silent", "ases": [1]}],
	  "score": {"ases": [1]}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		if spec.Name == "" || len(spec.Name) > MaxNameLen {
			t.Fatalf("accepted bad name %q", spec.Name)
		}
		if spec.Days < 1 || spec.Days > MaxDays {
			t.Fatalf("accepted days = %d", spec.Days)
		}
		if spec.Interval < MinInterval || spec.Interval > MaxInterval {
			t.Fatalf("accepted interval = %v", spec.Interval)
		}
		if len(spec.ASes) == 0 || len(spec.ASes) > MaxASes {
			t.Fatalf("accepted %d ases", len(spec.ASes))
		}
		total := 0
		for _, as := range spec.ASes {
			total += as.Blocks
			if as.Blocks < 1 || as.Density < 1 || as.Density > 255 ||
				as.RespRate <= 0 || as.RespRate > 1 || !as.Region.Valid() {
				t.Fatalf("accepted AS %+v", as)
			}
		}
		if total > MaxBlocks {
			t.Fatalf("accepted %d blocks", total)
		}
		end := spec.End()
		for _, ev := range spec.Events {
			if !ev.From.Before(ev.To) {
				t.Fatalf("accepted empty event window %+v", ev)
			}
			if ev.From.Before(spec.Start) || !ev.From.Before(end) {
				t.Fatalf("accepted out-of-campaign event %+v", ev)
			}
			if ev.BlockPct < 1 || ev.BlockPct > 100 {
				t.Fatalf("accepted block_pct %d", ev.BlockPct)
			}
		}
		for i, w := range spec.Missing {
			if !w.From.Before(w.To) || w.Coverage < 0 || w.Coverage >= 1 {
				t.Fatalf("accepted vantage window %+v", w)
			}
			for _, prev := range spec.Missing[:i] {
				if w.From.Before(prev.To) && prev.From.Before(w.To) {
					t.Fatalf("accepted overlapping vantage windows")
				}
			}
		}
		if len(spec.Score.ASes) == 0 && len(spec.Score.Regions) == 0 {
			t.Fatal("accepted empty score section")
		}
	})
}
