package scenario

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed library/*.json
var libraryFS embed.FS

// Names lists the embedded library scenarios, sorted.
func Names() []string {
	entries, err := libraryFS.ReadDir("library")
	if err != nil {
		panic(err) // embedded directory; cannot fail
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// Source returns the raw file of an embedded scenario.
func Source(name string) ([]byte, error) {
	data, err := libraryFS.ReadFile("library/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenario: no library scenario %q", name)
	}
	return data, nil
}

// Load parses an embedded library scenario by name.
func Load(name string) (*Spec, error) {
	data, err := Source(name)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}
