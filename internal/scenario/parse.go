package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/power"
	"countrymon/internal/sim"
)

// Wire format. Field names are snake_case; unknown fields are rejected so a
// typo in a scenario file fails loudly instead of silently scripting nothing.
type fileDoc struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Seed        uint64      `json:"seed"`
	Country     string      `json:"country"`
	CountryName string      `json:"country_name"`
	Start       string      `json:"start"`
	Interval    string      `json:"interval"`
	Days        int         `json:"days"`
	ASes        []asDoc     `json:"ases"`
	Events      []eventDoc  `json:"events"`
	Power       *powerDoc   `json:"power"`
	Missing     []windowDoc `json:"missing"`
	Score       scoreDoc    `json:"score"`
}

type asDoc struct {
	ASN              uint32      `json:"asn"`
	Name             string      `json:"name"`
	Region           string      `json:"region"`
	Blocks           int         `json:"blocks"`
	Density          int         `json:"density"`
	RespRate         float64     `json:"resp_rate"`
	DeclineTo        float64     `json:"decline_to"`
	DiurnalPct       int         `json:"diurnal_pct"`
	GridSensitivePct int         `json:"grid_sensitive_pct"`
	BackupHours      float64     `json:"backup_hours"`
	DynamicPct       int         `json:"dynamic_pct"`
	Static           bool        `json:"static"`
	National         bool        `json:"national"`
	Migrate          *migrateDoc `json:"migrate"`
	Drift            *driftDoc   `json:"drift"`
}

type migrateDoc struct {
	Month   int    `json:"month"`
	Region  string `json:"region"`
	Country string `json:"country"`
	Pct     int    `json:"pct"`
}

type driftDoc struct {
	Region string  `json:"region"`
	Frac   float64 `json:"frac"`
	Pct    int     `json:"pct"`
}

type eventDoc struct {
	Name       string   `json:"name"`
	At         string   `json:"at"`
	After      string   `json:"after"`
	Duration   string   `json:"duration"`
	Effect     string   `json:"effect"`
	Magnitude  float64  `json:"magnitude"`
	RTTDeltaMS int      `json:"rtt_delta_ms"`
	ASes       []uint32 `json:"ases"`
	Regions    []string `json:"regions"`
	BlockPct   int      `json:"block_pct"`
	Truth      string   `json:"truth"`
}

type powerDoc struct {
	Strikes []strikeDoc `json:"strikes"`
}

type strikeDoc struct {
	Day     int      `json:"day"`
	Days    int      `json:"days"`
	Hours   float64  `json:"hours"`
	Regions []string `json:"regions"`
}

type windowDoc struct {
	At       string  `json:"at"`
	Duration string  `json:"duration"`
	Coverage float64 `json:"coverage"`
}

type scoreDoc struct {
	ASes    []uint32 `json:"ases"`
	Regions []string `json:"regions"`
	Warmup  string   `json:"warmup"`
	Slack   string   `json:"slack"`
}

// parseDuration parses Go durations extended with a leading whole-day
// component: "36h", "3d", "3d12h30m". Negative and empty durations are
// rejected.
func parseDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	if i := strings.IndexByte(s, 'd'); i >= 0 && !strings.ContainsAny(s[:i], "hmnsu.") {
		days, err := strconv.Atoi(s[:i])
		if err != nil || days < 0 {
			return 0, fmt.Errorf("bad day count in duration %q", s)
		}
		var rest time.Duration
		if i+1 < len(s) {
			rest, err = time.ParseDuration(s[i+1:])
			if err != nil || rest < 0 {
				return 0, fmt.Errorf("bad duration %q", s)
			}
		}
		return time.Duration(days)*24*time.Hour + rest, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return d, nil
}

func parseRegion(name string) (netmodel.Region, error) {
	r, ok := netmodel.RegionByName(name)
	if !ok {
		return netmodel.RegionNone, fmt.Errorf("unknown region %q", name)
	}
	return r, nil
}

func parseRegions(names []string) ([]netmodel.Region, error) {
	out := make([]netmodel.Region, 0, len(names))
	seen := make(map[netmodel.Region]bool, len(names))
	for _, n := range names {
		r, err := parseRegion(n)
		if err != nil {
			return nil, err
		}
		if seen[r] {
			return nil, fmt.Errorf("duplicate region %q", n)
		}
		seen[r] = true
		out = append(out, r)
	}
	return out, nil
}

var effectNames = map[string]sim.EffectKind{
	"bgp_down":     sim.EffectBGPDown,
	"silent":       sim.EffectSilent,
	"ips_drop":     sim.EffectIPSDrop,
	"reroute":      sim.EffectReroute,
	"diurnal_only": sim.EffectDiurnalOnly,
}

// defaultLabel is the effect's natural truth label when the file does not
// say: reachability-destroying effects are outages, path-shape effects are
// benign.
func defaultLabel(k sim.EffectKind) Label {
	if k == sim.EffectReroute {
		return LabelBenign
	}
	return LabelOutage
}

// Parse decodes and validates a scenario file. Everything that can be wrong
// statically is wrong here: unknown fields, malformed durations, unresolvable
// or cyclic event anchors, out-of-bounds sizes, and overlapping same-effect
// events on intersecting scopes.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc fileDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}

	if doc.Name == "" || len(doc.Name) > MaxNameLen {
		return nil, fmt.Errorf("scenario: name must be 1..%d chars", MaxNameLen)
	}
	spec := &Spec{Name: doc.Name, Description: doc.Description, Seed: doc.Seed,
		Country: doc.Country, CountryName: doc.CountryName}
	if doc.Country != "" && !validCountryCode(doc.Country) {
		return nil, fmt.Errorf("scenario %s: country %q is not an ISO alpha-2 code", doc.Name, doc.Country)
	}

	start, err := time.Parse(time.RFC3339, doc.Start)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: bad start %q: %v", doc.Name, doc.Start, err)
	}
	spec.Start = start.UTC()
	if doc.Days < 1 || doc.Days > MaxDays {
		return nil, fmt.Errorf("scenario %s: days must be 1..%d", doc.Name, MaxDays)
	}
	spec.Days = doc.Days
	if doc.Interval == "" {
		doc.Interval = "4h"
	}
	iv, err := parseDuration(doc.Interval)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: interval: %v", doc.Name, err)
	}
	if iv < MinInterval || iv > MaxInterval || (24*time.Hour)%iv != 0 {
		return nil, fmt.Errorf("scenario %s: interval %v must divide a day and lie in [%v, %v]",
			doc.Name, iv, MinInterval, MaxInterval)
	}
	spec.Interval = iv
	end := spec.End()

	if err := parseASes(spec, doc.ASes); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", doc.Name, err)
	}
	if err := parseEvents(spec, doc.Events, end); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", doc.Name, err)
	}
	if doc.Power != nil {
		if err := parseStrikes(spec, doc.Power.Strikes); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", doc.Name, err)
		}
	}
	if err := parseMissing(spec, doc.Missing, end); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", doc.Name, err)
	}
	if err := parseScore(spec, doc.Score); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", doc.Name, err)
	}
	return spec, nil
}

func pctValid(p int) bool { return p >= 0 && p <= 100 }

// validCountryCode accepts two uppercase ASCII letters (ISO 3166-1 alpha-2).
func validCountryCode(s string) bool {
	return len(s) == 2 && s[0] >= 'A' && s[0] <= 'Z' && s[1] >= 'A' && s[1] <= 'Z'
}

func parseASes(spec *Spec, docs []asDoc) error {
	if len(docs) == 0 || len(docs) > MaxASes {
		return fmt.Errorf("ases must number 1..%d", MaxASes)
	}
	total := 0
	seen := make(map[netmodel.ASN]bool, len(docs))
	months := monthsUpperBound(spec)
	for i, d := range docs {
		if d.ASN == 0 {
			return fmt.Errorf("ases[%d]: asn must be non-zero", i)
		}
		asn := netmodel.ASN(d.ASN)
		if seen[asn] {
			return fmt.Errorf("ases[%d]: duplicate asn %d", i, d.ASN)
		}
		seen[asn] = true
		if d.Name == "" || len(d.Name) > MaxNameLen {
			return fmt.Errorf("ases[%d]: name must be 1..%d chars", i, MaxNameLen)
		}
		region, err := parseRegion(d.Region)
		if err != nil {
			return fmt.Errorf("ases[%d]: %v", i, err)
		}
		if d.Blocks < 1 || d.Blocks > 256 {
			return fmt.Errorf("ases[%d]: blocks must be 1..256", i)
		}
		total += d.Blocks
		if d.Density < 1 || d.Density > 255 {
			return fmt.Errorf("ases[%d]: density must be 1..255", i)
		}
		if d.RespRate <= 0 || d.RespRate > 1 {
			return fmt.Errorf("ases[%d]: resp_rate must be in (0, 1]", i)
		}
		if d.DeclineTo < 0 || d.DeclineTo > 1.5 {
			return fmt.Errorf("ases[%d]: decline_to must be in [0, 1.5]", i)
		}
		if !pctValid(d.DiurnalPct) || !pctValid(d.GridSensitivePct) || !pctValid(d.DynamicPct) {
			return fmt.Errorf("ases[%d]: percent fields must be 0..100", i)
		}
		if d.BackupHours < 0 || d.BackupHours > 24 {
			return fmt.Errorf("ases[%d]: backup_hours must be 0..24", i)
		}
		as := ASSpec{
			ASN: asn, Name: d.Name, Region: region, Blocks: d.Blocks,
			Density: d.Density, RespRate: d.RespRate, DeclineTo: d.DeclineTo,
			DiurnalPct: d.DiurnalPct, GridSensitivePct: d.GridSensitivePct,
			BackupHours: d.BackupHours, DynamicPct: d.DynamicPct,
			Static: d.Static, National: d.National,
		}
		if as.DeclineTo == 0 {
			as.DeclineTo = 1
		}
		if m := d.Migrate; m != nil {
			if !pctValid(m.Pct) || m.Pct == 0 {
				return fmt.Errorf("ases[%d]: migrate.pct must be 1..100", i)
			}
			if m.Month < 0 || m.Month >= months {
				return fmt.Errorf("ases[%d]: migrate.month %d outside campaign", i, m.Month)
			}
			if (m.Region == "") == (m.Country == "") {
				return fmt.Errorf("ases[%d]: migrate needs exactly one of region or country", i)
			}
			as.MigratePct, as.MigrateMonth, as.MigrateCountry = m.Pct, m.Month, m.Country
			if m.Region != "" {
				if as.MigrateRegion, err = parseRegion(m.Region); err != nil {
					return fmt.Errorf("ases[%d]: migrate: %v", i, err)
				}
			}
		}
		if dr := d.Drift; dr != nil {
			if !pctValid(dr.Pct) || dr.Pct == 0 {
				return fmt.Errorf("ases[%d]: drift.pct must be 1..100", i)
			}
			if dr.Frac <= 0 || dr.Frac > 0.5 {
				return fmt.Errorf("ases[%d]: drift.frac must be in (0, 0.5]", i)
			}
			if as.DriftRegion, err = parseRegion(dr.Region); err != nil {
				return fmt.Errorf("ases[%d]: drift: %v", i, err)
			}
			if as.DriftRegion == region {
				return fmt.Errorf("ases[%d]: drift region equals home region", i)
			}
			as.DriftPct, as.DriftFrac = dr.Pct, dr.Frac
		}
		spec.ASes = append(spec.ASes, as)
	}
	if total > MaxBlocks {
		return fmt.Errorf("total blocks %d exceeds %d", total, MaxBlocks)
	}
	return nil
}

// monthsUpperBound over-approximates the campaign's dense month count for
// migrate.month validation (exact counting needs the timeline; one spare
// month of slack is harmless in a bounds check).
func monthsUpperBound(spec *Spec) int {
	return spec.Days/28 + 2
}

// anchorRef is an unresolved "name.start" / "name.end+dur" event anchor.
type anchorRef struct {
	target string
	atEnd  bool
	offset time.Duration
}

func parseAnchor(s string) (anchorRef, error) {
	var ref anchorRef
	rest := s
	if i := strings.IndexByte(s, '+'); i >= 0 {
		off, err := parseDuration(s[i+1:])
		if err != nil {
			return ref, err
		}
		ref.offset = off
		rest = s[:i]
	}
	switch {
	case strings.HasSuffix(rest, ".start"):
		ref.target = strings.TrimSuffix(rest, ".start")
	case strings.HasSuffix(rest, ".end"):
		ref.target, ref.atEnd = strings.TrimSuffix(rest, ".end"), true
	default:
		return ref, fmt.Errorf("anchor %q must reference <event>.start or <event>.end", s)
	}
	if ref.target == "" {
		return ref, fmt.Errorf("anchor %q has no event name", s)
	}
	return ref, nil
}

func parseEvents(spec *Spec, docs []eventDoc, end time.Time) error {
	if len(docs) > MaxEvents {
		return fmt.Errorf("events must number at most %d", MaxEvents)
	}
	known := make(map[netmodel.ASN]netmodel.Region, len(spec.ASes))
	for _, as := range spec.ASes {
		known[as.ASN] = as.Region
	}

	byName := make(map[string]int, len(docs))
	events := make([]EventSpec, len(docs))
	anchors := make([]anchorRef, len(docs))
	durations := make([]time.Duration, len(docs))
	for i, d := range docs {
		if d.Name == "" || len(d.Name) > MaxNameLen {
			return fmt.Errorf("events[%d]: name must be 1..%d chars", i, MaxNameLen)
		}
		if _, dup := byName[d.Name]; dup {
			return fmt.Errorf("events[%d]: duplicate name %q", i, d.Name)
		}
		byName[d.Name] = i

		kind, ok := effectNames[d.Effect]
		if !ok {
			return fmt.Errorf("event %q: unknown effect %q", d.Name, d.Effect)
		}
		ev := EventSpec{Name: d.Name, Effect: kind, Magnitude: d.Magnitude,
			RTTDeltaMS: d.RTTDeltaMS, BlockPct: d.BlockPct, Label: defaultLabel(kind)}
		switch d.Truth {
		case "":
		case "outage":
			ev.Label = LabelOutage
		case "benign":
			ev.Label = LabelBenign
		default:
			return fmt.Errorf("event %q: truth must be \"outage\" or \"benign\"", d.Name)
		}
		switch kind {
		case sim.EffectIPSDrop:
			if ev.Magnitude <= 0 || ev.Magnitude > 1 {
				return fmt.Errorf("event %q: ips_drop needs magnitude in (0, 1]", d.Name)
			}
		case sim.EffectReroute:
			if ev.RTTDeltaMS < 0 || ev.RTTDeltaMS > MaxRTTDeltaMS {
				return fmt.Errorf("event %q: rtt_delta_ms must be 0..%d", d.Name, MaxRTTDeltaMS)
			}
		default:
			if ev.Magnitude != 0 {
				return fmt.Errorf("event %q: magnitude only applies to ips_drop", d.Name)
			}
		}
		if ev.BlockPct == 0 {
			ev.BlockPct = 100
		}
		if ev.BlockPct < 1 || ev.BlockPct > 100 {
			return fmt.Errorf("event %q: block_pct must be 1..100", d.Name)
		}
		if len(d.ASes) == 0 && len(d.Regions) == 0 {
			return fmt.Errorf("event %q: needs at least one of ases or regions", d.Name)
		}
		seenASN := make(map[netmodel.ASN]bool, len(d.ASes))
		for _, a := range d.ASes {
			asn := netmodel.ASN(a)
			if _, ok := known[asn]; !ok {
				return fmt.Errorf("event %q: unknown asn %d", d.Name, a)
			}
			if seenASN[asn] {
				return fmt.Errorf("event %q: duplicate asn %d", d.Name, a)
			}
			seenASN[asn] = true
			ev.ASNs = append(ev.ASNs, asn)
		}
		var err error
		if ev.Regions, err = parseRegions(d.Regions); err != nil {
			return fmt.Errorf("event %q: %v", d.Name, err)
		}

		if d.Duration == "" {
			return fmt.Errorf("event %q: duration is required", d.Name)
		}
		dur, err := parseDuration(d.Duration)
		if err != nil || dur <= 0 {
			return fmt.Errorf("event %q: bad duration %q", d.Name, d.Duration)
		}
		durations[i] = dur

		if (d.At == "") == (d.After == "") {
			return fmt.Errorf("event %q: needs exactly one of at or after", d.Name)
		}
		if d.At != "" {
			from, err := parseAt(d.At, spec.Start)
			if err != nil {
				return fmt.Errorf("event %q: at: %v", d.Name, err)
			}
			ev.From = from
		} else {
			ref, err := parseAnchor(d.After)
			if err != nil {
				return fmt.Errorf("event %q: after: %v", d.Name, err)
			}
			anchors[i] = ref
		}
		events[i] = ev
	}

	// Resolve "after" anchors, detecting reference cycles.
	const (
		unresolved = 0
		resolving  = 1
		resolved   = 2
	)
	state := make([]int, len(events))
	var resolve func(i int) error
	resolve = func(i int) error {
		switch state[i] {
		case resolved:
			return nil
		case resolving:
			return fmt.Errorf("event %q: anchor reference cycle", events[i].Name)
		}
		state[i] = resolving
		if events[i].From.IsZero() {
			ref := anchors[i]
			j, ok := byName[ref.target]
			if !ok {
				return fmt.Errorf("event %q: after references unknown event %q",
					events[i].Name, ref.target)
			}
			if j == i {
				return fmt.Errorf("event %q: anchor reference cycle", events[i].Name)
			}
			if err := resolve(j); err != nil {
				return err
			}
			base := events[j].From
			if ref.atEnd {
				base = events[j].To
			}
			events[i].From = base.Add(ref.offset)
		}
		events[i].To = events[i].From.Add(durations[i])
		state[i] = resolved
		return nil
	}
	for i := range events {
		if err := resolve(i); err != nil {
			return err
		}
	}
	for i := range events {
		if events[i].From.Before(spec.Start) || !events[i].From.Before(end) {
			return fmt.Errorf("event %q: starts outside the campaign", events[i].Name)
		}
	}

	// Reject same-effect events whose time windows overlap on intersecting
	// scopes: the compiled effects would stack (two ips_drops multiply, two
	// reroutes add) in ways scenario authors never mean. Scope intersection
	// is evaluated at AS granularity — a region scope covers every AS homed
	// there.
	scopeOf := func(ev *EventSpec) map[netmodel.ASN]bool {
		s := make(map[netmodel.ASN]bool, len(ev.ASNs))
		for _, a := range ev.ASNs {
			s[a] = true
		}
		for _, r := range ev.Regions {
			for asn, home := range known {
				if home == r {
					s[asn] = true
				}
			}
		}
		return s
	}
	scopes := make([]map[netmodel.ASN]bool, len(events))
	for i := range events {
		scopes[i] = scopeOf(&events[i])
	}
	for i := range events {
		for j := i + 1; j < len(events); j++ {
			if events[i].Effect != events[j].Effect {
				continue
			}
			if !events[i].From.Before(events[j].To) || !events[j].From.Before(events[i].To) {
				continue
			}
			for asn := range scopes[i] {
				if scopes[j][asn] {
					return fmt.Errorf("events %q and %q: same effect overlaps in time on AS %d",
						events[i].Name, events[j].Name, asn)
				}
			}
		}
	}
	spec.Events = events
	return nil
}

// parseAt resolves an event start: an offset duration from campaign start
// ("12d6h") or an absolute RFC3339 instant.
func parseAt(s string, start time.Time) (time.Time, error) {
	if d, err := parseDuration(s); err == nil {
		return start.Add(d), nil
	}
	at, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("%q is neither a duration offset nor RFC3339", s)
	}
	return at.UTC(), nil
}

func parseStrikes(spec *Spec, docs []strikeDoc) error {
	if len(docs) > MaxStrikes {
		return fmt.Errorf("power strikes must number at most %d", MaxStrikes)
	}
	for i, d := range docs {
		if d.Day < 0 || d.Day >= spec.Days {
			return fmt.Errorf("power.strikes[%d]: day %d outside campaign", i, d.Day)
		}
		days := d.Days
		if days == 0 {
			days = 1
		}
		if days < 1 || days > spec.Days {
			return fmt.Errorf("power.strikes[%d]: days must be 1..%d", i, spec.Days)
		}
		if d.Hours <= 0 || d.Hours > 24 {
			return fmt.Errorf("power.strikes[%d]: hours must be in (0, 24]", i)
		}
		regions, err := parseRegions(d.Regions)
		if err != nil {
			return fmt.Errorf("power.strikes[%d]: %v", i, err)
		}
		if len(regions) == 0 {
			return fmt.Errorf("power.strikes[%d]: regions are required", i)
		}
		spec.Strikes = append(spec.Strikes, power.Strike{
			Day: d.Day, Days: days, Hours: d.Hours, Regions: regions,
		})
	}
	return nil
}

func parseMissing(spec *Spec, docs []windowDoc, end time.Time) error {
	if len(docs) > MaxWindows {
		return fmt.Errorf("missing windows must number at most %d", MaxWindows)
	}
	for i, d := range docs {
		from, err := parseAt(d.At, spec.Start)
		if err != nil {
			return fmt.Errorf("missing[%d]: at: %v", i, err)
		}
		dur, err := parseDuration(d.Duration)
		if err != nil || dur <= 0 {
			return fmt.Errorf("missing[%d]: bad duration %q", i, d.Duration)
		}
		if d.Coverage < 0 || d.Coverage >= 1 {
			return fmt.Errorf("missing[%d]: coverage must be in [0, 1)", i)
		}
		w := VantageWindow{From: from, To: from.Add(dur), Coverage: d.Coverage}
		if w.From.Before(spec.Start) || !w.From.Before(end) {
			return fmt.Errorf("missing[%d]: window outside the campaign", i)
		}
		for _, prev := range spec.Missing {
			if w.From.Before(prev.To) && prev.From.Before(w.To) {
				return fmt.Errorf("missing[%d]: overlaps an earlier window", i)
			}
		}
		spec.Missing = append(spec.Missing, w)
	}
	return nil
}

func parseScore(spec *Spec, doc scoreDoc) error {
	known := make(map[netmodel.ASN]bool, len(spec.ASes))
	for _, as := range spec.ASes {
		known[as.ASN] = true
	}
	seen := make(map[netmodel.ASN]bool)
	for _, a := range doc.ASes {
		asn := netmodel.ASN(a)
		if !known[asn] {
			return fmt.Errorf("score: unknown asn %d", a)
		}
		if seen[asn] {
			return fmt.Errorf("score: duplicate asn %d", a)
		}
		seen[asn] = true
		spec.Score.ASes = append(spec.Score.ASes, asn)
	}
	var err error
	if spec.Score.Regions, err = parseRegions(doc.Regions); err != nil {
		return fmt.Errorf("score: %v", err)
	}
	if len(spec.Score.ASes) == 0 && len(spec.Score.Regions) == 0 {
		return fmt.Errorf("score: needs at least one AS or region")
	}
	spec.Score.Warmup = 14 * 24 * time.Hour
	if doc.Warmup != "" {
		if spec.Score.Warmup, err = parseDuration(doc.Warmup); err != nil {
			return fmt.Errorf("score: warmup: %v", err)
		}
	}
	if spec.Score.Warmup >= time.Duration(spec.Days)*24*time.Hour {
		return fmt.Errorf("score: warmup swallows the whole campaign")
	}
	spec.Score.Slack = 24 * time.Hour
	if doc.Slack != "" {
		if spec.Score.Slack, err = parseDuration(doc.Slack); err != nil {
			return fmt.Errorf("score: slack: %v", err)
		}
	}
	if spec.Score.Slack > MaxSlack {
		return fmt.Errorf("score: slack exceeds %v", MaxSlack)
	}
	return nil
}
