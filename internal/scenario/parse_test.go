package scenario

import (
	"strings"
	"testing"
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/sim"
)

// minimalDoc is a valid single-AS scenario that rejection tests mutate.
const minimalDoc = `{
  "name": "t",
  "seed": 1,
  "start": "2023-03-01T00:00:00Z",
  "interval": "4h",
  "days": 40,
  "ases": [
    {"asn": 64500, "name": "A", "region": "Kyiv", "blocks": 2, "density": 50, "resp_rate": 0.8}
  ],
  "events": [
    {"name": "e1", "at": "30d", "duration": "1d", "effect": "silent", "ases": [64500]}
  ],
  "score": {"ases": [64500]}
}`

func TestParseMinimal(t *testing.T) {
	spec, err := Parse([]byte(minimalDoc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "t" || spec.Days != 40 || spec.Interval != 4*time.Hour {
		t.Fatalf("header mismatch: %+v", spec)
	}
	if spec.Rounds() != 40*6 {
		t.Fatalf("rounds = %d, want 240", spec.Rounds())
	}
	as := spec.ASes[0]
	if as.Region != netmodel.Kyiv || as.DeclineTo != 1 {
		t.Fatalf("AS defaults: %+v", as)
	}
	ev := spec.Events[0]
	start := time.Date(2023, 3, 31, 0, 0, 0, 0, time.UTC)
	if !ev.From.Equal(start) || !ev.To.Equal(start.Add(24*time.Hour)) {
		t.Fatalf("event window [%v, %v)", ev.From, ev.To)
	}
	if ev.Label != LabelOutage || ev.BlockPct != 100 || ev.Effect != sim.EffectSilent {
		t.Fatalf("event defaults: %+v", ev)
	}
	if spec.Score.Warmup != 14*24*time.Hour || spec.Score.Slack != 24*time.Hour {
		t.Fatalf("score defaults: %+v", spec.Score)
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		bad  bool
	}{
		{in: "4h", want: 4 * time.Hour},
		{in: "3d", want: 72 * time.Hour},
		{in: "3d12h30m", want: 84*time.Hour + 30*time.Minute},
		{in: "0d6h", want: 6 * time.Hour},
		{in: "90m", want: 90 * time.Minute},
		{in: "", bad: true},
		{in: "d", bad: true},
		{in: "-1d", bad: true},
		{in: "-4h", bad: true},
		{in: "3d-4h", bad: true},
		{in: "1.5d", bad: true},  // fractional days: use hours
		{in: "12h3d", bad: true}, // days must lead
		{in: "bogus", bad: true},
	}
	for _, c := range cases {
		got, err := parseDuration(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("parseDuration(%q) accepted, got %v", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestParseEventAnchors(t *testing.T) {
	doc := `{
  "name": "anchors", "seed": 1, "start": "2023-03-01T00:00:00Z", "interval": "4h", "days": 40,
  "ases": [{"asn": 64500, "name": "A", "region": "Kyiv", "blocks": 1, "density": 50, "resp_rate": 0.8}],
  "events": [
    {"name": "tail", "after": "mid.end+12h", "duration": "1d", "effect": "reroute", "rtt_delta_ms": 10, "ases": [64500]},
    {"name": "mid", "after": "head.end", "duration": "2d", "effect": "ips_drop", "magnitude": 0.5, "ases": [64500]},
    {"name": "head", "at": "2023-03-21T00:00:00Z", "duration": "1d", "effect": "silent", "ases": [64500]}
  ],
  "score": {"ases": [64500]}
}`
	spec, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	head := time.Date(2023, 3, 21, 0, 0, 0, 0, time.UTC)
	byName := map[string]EventSpec{}
	for _, ev := range spec.Events {
		byName[ev.Name] = ev
	}
	if !byName["mid"].From.Equal(head.Add(24 * time.Hour)) {
		t.Fatalf("mid.From = %v", byName["mid"].From)
	}
	if !byName["tail"].From.Equal(head.Add((24 + 48 + 12) * time.Hour)) {
		t.Fatalf("tail.From = %v", byName["tail"].From)
	}
}

// TestParseRejections is the rejection surface FuzzScenarioParse leans on:
// each mutation must fail with a diagnostic, never a panic or silent accept.
func TestParseRejections(t *testing.T) {
	mutate := func(old, new string) string {
		s := strings.Replace(minimalDoc, old, new, 1)
		if s == minimalDoc {
			t.Fatalf("mutation %q not applied", new)
		}
		return s
	}
	cases := map[string]string{
		"unknown field":      mutate(`"seed": 1`, `"seed": 1, "surprise": true`),
		"trailing data":      minimalDoc + `{"name": "again"}`,
		"empty name":         mutate(`"name": "t"`, `"name": ""`),
		"bad start":          mutate(`"2023-03-01T00:00:00Z"`, `"yesterday"`),
		"zero days":          mutate(`"days": 40`, `"days": 0`),
		"days over cap":      mutate(`"days": 40`, `"days": 100000`),
		"interval no divide": mutate(`"interval": "4h"`, `"interval": "7h"`),
		"interval too small": mutate(`"interval": "4h"`, `"interval": "1m"`),
		"no ases": mutate(`"ases": [
    {"asn": 64500, "name": "A", "region": "Kyiv", "blocks": 2, "density": 50, "resp_rate": 0.8}
  ]`, `"ases": []`),
		"zero asn":       mutate(`"asn": 64500, "name": "A"`, `"asn": 0, "name": "A"`),
		"unknown region": mutate(`"region": "Kyiv"`, `"region": "Atlantis"`),
		"zero blocks":    mutate(`"blocks": 2`, `"blocks": 0`),
		"bad density":    mutate(`"density": 50`, `"density": 300`),
		"bad resp rate":  mutate(`"resp_rate": 0.8`, `"resp_rate": 1.5`),
		"unknown effect": mutate(`"effect": "silent"`, `"effect": "quantum"`),
		"bad truth": mutate(`"ases": [64500]}
  ]`, `"ases": [64500], "truth": "maybe"}
  ]`),
		"zero duration":     mutate(`"duration": "1d"`, `"duration": "0h"`),
		"negative duration": mutate(`"duration": "1d"`, `"duration": "-4h"`),
		"event no scope": mutate(`"effect": "silent", "ases": [64500]`,
			`"effect": "silent"`),
		"event unknown asn": mutate(`"effect": "silent", "ases": [64500]`,
			`"effect": "silent", "ases": [64999]`),
		"event past end":     mutate(`"at": "30d"`, `"at": "41d"`),
		"event before start": mutate(`"at": "30d"`, `"at": "2023-02-01T00:00:00Z"`),
		"bad block pct": mutate(`"ases": [64500]}
  ]`, `"ases": [64500], "block_pct": 150}
  ]`),
		"score unknown asn": mutate(`"score": {"ases": [64500]}`, `"score": {"ases": [64999]}`),
		"score empty":       mutate(`"score": {"ases": [64500]}`, `"score": {}`),
		"warmup too long":   mutate(`"score": {"ases": [64500]}`, `"score": {"ases": [64500], "warmup": "60d"}`),
		"slack too long":    mutate(`"score": {"ases": [64500]}`, `"score": {"ases": [64500], "slack": "30d"}`),
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseRejectsAnchorCycles(t *testing.T) {
	events := map[string]string{
		"self cycle": `[{"name": "a", "after": "a.end", "duration": "1d", "effect": "silent", "ases": [64500]}]`,
		"two cycle": `[
      {"name": "a", "after": "b.end", "duration": "1d", "effect": "silent", "ases": [64500]},
      {"name": "b", "after": "a.end", "duration": "1d", "effect": "ips_drop", "magnitude": 0.5, "ases": [64500]}
    ]`,
		"unknown anchor":       `[{"name": "a", "after": "ghost.start", "duration": "1d", "effect": "silent", "ases": [64500]}]`,
		"bad anchor form":      `[{"name": "a", "after": "a.middle", "duration": "1d", "effect": "silent", "ases": [64500]}]`,
		"both at and after":    `[{"name": "a", "at": "30d", "after": "a.end", "duration": "1d", "effect": "silent", "ases": [64500]}]`,
		"neither at nor after": `[{"name": "a", "duration": "1d", "effect": "silent", "ases": [64500]}]`,
		"duplicate names": `[
      {"name": "a", "at": "30d", "duration": "1d", "effect": "silent", "ases": [64500]},
      {"name": "a", "at": "35d", "duration": "1d", "effect": "silent", "ases": [64500]}
    ]`,
	}
	for name, evs := range events {
		doc := strings.Replace(minimalDoc,
			`[
    {"name": "e1", "at": "30d", "duration": "1d", "effect": "silent", "ases": [64500]}
  ]`, evs, 1)
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseRejectsOverlaps(t *testing.T) {
	// Same effect, overlapping time, intersecting scope — via region overlap.
	doc := `{
  "name": "overlap", "seed": 1, "start": "2023-03-01T00:00:00Z", "interval": "4h", "days": 40,
  "ases": [{"asn": 64500, "name": "A", "region": "Kyiv", "blocks": 1, "density": 50, "resp_rate": 0.8}],
  "events": [
    {"name": "a", "at": "30d", "duration": "2d", "effect": "silent", "ases": [64500]},
    {"name": "b", "at": "31d", "duration": "2d", "effect": "silent", "regions": ["Kyiv"]}
  ],
  "score": {"ases": [64500]}
}`
	if _, err := Parse([]byte(doc)); err == nil {
		t.Error("overlapping same-effect events accepted")
	}
	// Different effects may overlap (an outage during a reroute is a real shape).
	ok := strings.Replace(doc, `"effect": "silent", "regions": ["Kyiv"]`,
		`"effect": "reroute", "rtt_delta_ms": 20, "regions": ["Kyiv"]`, 1)
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("overlapping different-effect events rejected: %v", err)
	}
	// Same effect back-to-back (touching, not overlapping) is fine.
	ok = strings.Replace(doc, `"at": "31d"`, `"at": "32d"`, 1)
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("adjacent same-effect events rejected: %v", err)
	}

	// Overlapping vantage windows are rejected.
	doc = strings.Replace(minimalDoc, `"score"`,
		`"missing": [
    {"at": "10d", "duration": "2d", "coverage": 0},
    {"at": "11d", "duration": "1d", "coverage": 0.9}
  ],
  "score"`, 1)
	if _, err := Parse([]byte(doc)); err == nil {
		t.Error("overlapping vantage windows accepted")
	}
}
