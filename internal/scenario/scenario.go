// Package scenario is the declarative adversity layer on top of internal/sim:
// scenarios — address space, per-AS behaviour, scripted events, power strikes
// and vantage degradation — are data (seeded JSON files), compiled through
// sim.Assemble into the same ground-truth machinery the war script uses, and
// every scenario ships its own labels: which windows are genuine outages and
// which are ambiguities that must NOT be detected (reroutes, latency shifts,
// baseline drift, dynamic-pool churn).
//
// On top of the compiler sits the scorecard harness: it runs the real Monitor
// (packet-level simnet scans), the signals pipeline and the Trinocular
// baseline over a compiled scenario and scores each against the embedded
// ground truth — per-entity precision over rounds, recall over labeled
// windows, and detection latency. The library's scorecards are committed as
// goldens, so an engine change that degrades detection against any labeled
// adversity fails `make scenario-smoke`.
package scenario

import (
	"time"

	"countrymon/internal/netmodel"
	"countrymon/internal/power"
	"countrymon/internal/sim"
)

// Validation bounds. Scenario files are hand-authored test fixtures, not a
// general config surface: the caps keep a malformed or fuzzed file from
// requesting an absurd world, and parse errors past them are rejections, not
// clamps.
const (
	MaxDays       = 1200
	MaxASes       = 128
	MaxBlocks     = 4096
	MaxEvents     = 256
	MaxStrikes    = 64
	MaxWindows    = 64
	MinInterval   = 15 * time.Minute
	MaxInterval   = 24 * time.Hour
	MaxNameLen    = 64
	MaxSlack      = 7 * 24 * time.Hour
	MaxRTTDeltaMS = 2000
)

// Spec is a parsed, validated scenario: all names resolved, all event times
// absolute, all bounds checked. Compile turns it into a running world.
type Spec struct {
	Name        string
	Description string
	Seed        uint64
	// Country is the ISO code the scenario's address space geolocates to,
	// with CountryName its display name; empty means Ukraine
	// (sim.DefaultCountry). This is how a scenario file models a country
	// other than the war script's.
	Country     string
	CountryName string
	Start       time.Time
	Interval    time.Duration
	Days        int

	ASes    []ASSpec
	Events  []EventSpec
	Strikes []power.Strike
	Missing []VantageWindow
	Score   ScoreSpec
}

// ASSpec declares one AS: how many /24 blocks it announces (carved
// sequentially from the scenario pool), where it is homed, and the behaviour
// profile its blocks draw from. Percent fields select a per-block hash-chosen
// subset, so a profile of "30% dynamic" is deterministic per seed.
type ASSpec struct {
	ASN      netmodel.ASN
	Name     string
	Region   netmodel.Region
	Blocks   int
	Density  int
	RespRate float64
	// DeclineTo is the end-of-campaign activity multiplier (1 = flat).
	DeclineTo float64

	DiurnalPct       int
	GridSensitivePct int
	BackupHours      float64
	DynamicPct       int
	Static           bool
	National         bool

	// Migrate moves a hash-chosen MigratePct of the AS's blocks in campaign
	// month MigrateMonth: inside Ukraine to MigrateRegion, or abroad to
	// MigrateCountry.
	MigratePct     int
	MigrateMonth   int
	MigrateRegion  netmodel.Region
	MigrateCountry string

	// Drift gives DriftPct of blocks a persistent DriftFrac share of
	// addresses geolocating to DriftRegion.
	DriftPct    int
	DriftFrac   float64
	DriftRegion netmodel.Region
}

// Label classifies a scripted event for scoring.
type Label uint8

const (
	// LabelOutage windows must be detected: a flagged round inside one is a
	// true positive, a window with no flagged round is a miss.
	LabelOutage Label = iota
	// LabelBenign windows must NOT be detected: they script the ambiguities
	// (reroutes, latency shifts) that look like outages to naive detectors,
	// and any flagged round inside one is a false positive.
	LabelBenign
)

func (l Label) String() string {
	if l == LabelBenign {
		return "benign"
	}
	return "outage"
}

// EventSpec is one resolved scripted event.
type EventSpec struct {
	Name       string
	From, To   time.Time
	Effect     sim.EffectKind
	Magnitude  float64
	RTTDeltaMS int
	ASNs       []netmodel.ASN
	Regions    []netmodel.Region
	// BlockPct scopes the event to a hash-chosen subset of the matched
	// blocks (100 = all of them).
	BlockPct int
	Label    Label
}

// VantageWindow scripts vantage-side data loss: Coverage 0 is a full vantage
// outage (rounds recorded missing), a positive Coverage is a degraded window
// — rounds scan normally but are recorded as salvaged partial rounds with
// that coverage, exercising the signal pipeline's coverage gate.
type VantageWindow struct {
	From, To time.Time
	Coverage float64
}

// ScoreSpec says what the scorecard evaluates and how.
type ScoreSpec struct {
	ASes    []netmodel.ASN
	Regions []netmodel.Region
	// Warmup excludes the campaign's first rounds from scoring: the moving
	// average needs a baseline before flags mean anything.
	Warmup time.Duration
	// Slack is the grace tail after each outage window in which flags count
	// neither for nor against: detection runs merge trailing rounds while
	// the moving average adapts.
	Slack time.Duration
}

// End returns the campaign end bound (see sim.SpecEnd).
func (s *Spec) End() time.Time { return sim.SpecEnd(s.Start, s.Days, s.Interval) }

// Rounds returns the campaign's round count.
func (s *Spec) Rounds() int { return s.Days * int(24*time.Hour/s.Interval) }

// Deterministic hashing, same construction as internal/sim's: every
// stochastic compile decision is a pure function of (seed, identifiers).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hash2(a, b uint64) uint64 { return mix64(mix64(a) ^ b) }

func hash3(a, b, c uint64) uint64 { return mix64(hash2(a, b) ^ mix64(c)) }

func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }
