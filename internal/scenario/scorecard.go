package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	countrymon "countrymon"
	"countrymon/internal/netmodel"
	"countrymon/internal/signals"
	"countrymon/internal/simnet"
	"countrymon/internal/timeline"
	"countrymon/internal/trinocular"
)

// vantageAddr is the simulated vantage point, outside every scenario's
// 100.64.0.0/10 target pool (TEST-NET-3).
var vantageAddr = netmodel.MustParseAddr("203.0.113.1")

// EntityScore is one entity's detection quality against the scenario's
// ground truth.
type EntityScore struct {
	Entity string `json:"entity"`
	// Windows and Detected count labeled outage windows and how many had
	// at least one flagged round (inside the window or its slack tail).
	Windows  int `json:"windows"`
	Detected int `json:"detected"`
	// TruePosRounds are flagged rounds inside outage windows;
	// FalsePosRounds are flagged rounds in benign windows or unlabeled
	// time. Rounds in a slack tail count neither way.
	TruePosRounds  int     `json:"true_pos_rounds"`
	FalsePosRounds int     `json:"false_pos_rounds"`
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
	// MeanLatencyRounds is the mean rounds from outage onset to the first
	// flag, over detected windows (-1 when nothing was detected).
	MeanLatencyRounds float64 `json:"mean_latency_rounds"`
}

// Scorecard is the full detection report for one scenario: the signal
// pipeline and the Trinocular baseline scored entity by entity against the
// same embedded labels.
type Scorecard struct {
	Scenario      string `json:"scenario"`
	Rounds        int    `json:"rounds"`
	Blocks        int    `json:"blocks"`
	MissingRounds int    `json:"missing_rounds"`
	// DegradedRounds are salvaged partial rounds; whether they count is the
	// signal pipeline's coverage gate (signals.DefaultMinCoverage).
	DegradedRounds    int           `json:"degraded_rounds"`
	TrinocularTracked int           `json:"trinocular_tracked"`
	TrinocularProbes  uint64        `json:"trinocular_probes"`
	Signals           []EntityScore `json:"signals"`
	Trinocular        []EntityScore `json:"trinocular"`
}

// Encode renders the scorecard in its golden-file form: indented JSON with
// a trailing newline, floats rounded to 4 decimals at scoring time.
func (sc *Scorecard) Encode() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		panic(err) // static struct of plain fields; cannot fail
	}
	return buf.Bytes()
}

// RunScorecard drives the full detection stack over the compiled scenario —
// packet-level Monitor scans through simnet, the signals pipeline per scored
// entity, and the Trinocular baseline over the same store — and scores each
// against the embedded ground truth.
func (c *Compiled) RunScorecard() (*Scorecard, error) {
	spec := c.Spec
	world := c.Sim
	space := world.Space

	var targets []netmodel.Prefix
	origins := make(map[netmodel.BlockID]netmodel.ASN, space.NumBlocks())
	for _, as := range space.ASes() {
		targets = append(targets, as.Prefixes...)
	}
	for _, blk := range space.Blocks() {
		origins[blk] = space.OriginOf(blk)
	}

	mon, err := countrymon.New(countrymon.Options{
		Transport: simnet.New(vantageAddr, world.Responder(), spec.Start),
		Targets:   targets,
		Start:     spec.Start,
		Interval:  spec.Interval,
		Rounds:    spec.Rounds(),
		Seed:      spec.Seed,
		Origins:   origins,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	// The campaign: ground-truth routing is fed per round (the monitor's
	// BGP view), scripted vantage outages are marked missing, and degraded
	// windows are recorded as salvaged partial rounds.
	blocks := space.Blocks()
	for mon.NextRound() {
		r := mon.Round()
		if world.Missing[r] {
			if err := mon.MarkMissing(); err != nil {
				return nil, fmt.Errorf("scenario %s round %d: %w", spec.Name, r, err)
			}
			continue
		}
		at := world.TL.Time(r)
		for bi, blk := range blocks {
			mon.SetRouted(blk, r, world.BlockStateAt(bi, at).Routed, origins[blk])
		}
		if _, err := mon.ScanRound(); err != nil {
			return nil, fmt.Errorf("scenario %s round %d: %w", spec.Name, r, err)
		}
		if cov, ok := c.Degraded[r]; ok {
			mon.Store().SetCoverage(r, cov)
		}
	}

	card := &Scorecard{
		Scenario:       spec.Name,
		Rounds:         spec.Rounds(),
		Blocks:         space.NumBlocks(),
		DegradedRounds: len(c.Degraded),
	}
	for _, m := range mon.Store().MissingRounds() {
		if m {
			card.MissingRounds++
		}
	}

	// Scoring skips rounds without usable data under the same coverage
	// gate the signal pipeline applies, so weakening the gate changes the
	// scorecard — that is the regression tripwire.
	effMissing := mon.Store().EffectiveMissing(signals.DefaultMinCoverage)
	warmup := int(spec.Score.Warmup / spec.Interval)
	slack := int(spec.Score.Slack / spec.Interval)

	// Signal pipeline per scored entity.
	for _, asn := range spec.Score.ASes {
		det := mon.DetectAS(asn)
		card.Signals = append(card.Signals,
			c.scoreEntity(ASEntity(asn), det.Flags, effMissing, warmup, slack))
	}
	if len(spec.Score.Regions) > 0 {
		if err := mon.ClassifyRegions(world.GeoDB()); err != nil {
			return nil, fmt.Errorf("scenario %s: classify: %w", spec.Name, err)
		}
		for _, r := range spec.Score.Regions {
			det, err := mon.DetectRegion(r)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: region %v: %w", spec.Name, r, err)
			}
			card.Signals = append(card.Signals,
				c.scoreEntity(RegionEntity(r), det.Flags, effMissing, warmup, slack))
		}
	}

	// Trinocular baseline over the identical store and ground truth.
	probe := world.ProbeFunc()
	runner := trinocular.NewRunner(mon.Store(), space, world.Representatives, probe)
	res := runner.Run(probe)
	card.TrinocularTracked = runner.NumBlocks()
	card.TrinocularProbes = res.ProbesSent
	rounds := spec.Rounds()
	for _, asn := range spec.Score.ASes {
		det := signals.Detect(trinSeries(ASEntity(asn), world.TL, res.PerAS[asn], effMissing, rounds), trinConfig())
		card.Trinocular = append(card.Trinocular,
			c.scoreEntity(ASEntity(asn), det.Flags, effMissing, warmup, slack))
	}
	for _, r := range spec.Score.Regions {
		counts := make([]float32, rounds)
		for _, as := range spec.ASes {
			if as.Region != r {
				continue
			}
			for i, v := range res.PerAS[as.ASN] {
				counts[i] += v
			}
		}
		det := signals.Detect(trinSeries(RegionEntity(r), world.TL, counts, effMissing, rounds), trinConfig())
		card.Trinocular = append(card.Trinocular,
			c.scoreEntity(RegionEntity(r), det.Flags, effMissing, warmup, slack))
	}
	return card, nil
}

// trinConfig scores the Trinocular up-count series with the FBS-style ratio
// test alone: the baseline has no BGP feed and no monthly IPS census, so
// those signals stay disabled.
func trinConfig() signals.Config {
	return signals.Config{FBSFrac: 0.80, MinBaseline: 0.5}
}

// trinSeries wraps a Trinocular per-round up-count as an EntitySeries so the
// shared detector and scorer apply unchanged. A nil count series (no tracked
// blocks for the entity) scores as a flat zero — no baseline, no flags.
func trinSeries(name string, tl *timeline.Timeline, counts []float32, effMissing []bool, rounds int) *signals.EntitySeries {
	if counts == nil {
		counts = make([]float32, rounds)
	}
	return &signals.EntitySeries{
		Name: name, TL: tl,
		BGP: counts, FBS: counts, IPS: counts,
		IPSValidMonth: make([]bool, tl.NumMonths()),
		Missing:       effMissing,
	}
}

// roundLabel is the per-round ground-truth class during scoring.
type roundLabel uint8

const (
	labelNone roundLabel = iota
	labelBenign
	labelGrace
	labelOutage
)

// scoreEntity scores one detector's flag series for one entity against the
// scenario's truth windows. Outage rounds beat grace rounds beat benign
// rounds when windows overlap; warmup and effectively-missing rounds are
// excluded entirely.
func (c *Compiled) scoreEntity(entity string, flags []signals.Kind, effMissing []bool, warmup, slack int) EntityScore {
	spec := c.Spec
	rounds := len(flags)
	labels := make([]roundLabel, rounds)
	mark := func(from, to int, l roundLabel) {
		if from < 0 {
			from = 0
		}
		if to > rounds {
			to = rounds
		}
		for r := from; r < to; r++ {
			if labels[r] < l {
				labels[r] = l
			}
		}
	}
	type window struct{ from, to int }
	var outages []window
	for _, w := range c.Truth {
		if w.Entity != entity {
			continue
		}
		rs := windowRounds(w.From, w.To, spec.Start, spec.Interval, rounds)
		if len(rs) == 0 {
			continue
		}
		from, to := rs[0], rs[len(rs)-1]+1
		if w.Benign {
			mark(from, to, labelBenign)
			continue
		}
		outages = append(outages, window{from, to})
		mark(from, to, labelOutage)
		mark(to, to+slack, labelGrace)
	}

	score := EntityScore{Entity: entity, Windows: len(outages), MeanLatencyRounds: -1}
	scored := func(r int) bool { return r >= warmup && r < rounds && !effMissing[r] }
	for r := warmup; r < rounds; r++ {
		if !scored(r) || flags[r] == 0 {
			continue
		}
		switch labels[r] {
		case labelOutage:
			score.TruePosRounds++
		case labelGrace:
			// Detection-run tail while the baseline adapts: neutral.
		default:
			score.FalsePosRounds++
		}
	}

	latencySum := 0
	for _, w := range outages {
		for r := w.from; r < w.to+slack && r < rounds; r++ {
			if scored(r) && flags[r] != 0 {
				score.Detected++
				latencySum += r - w.from
				break
			}
		}
	}

	score.Precision = ratio(score.TruePosRounds, score.TruePosRounds+score.FalsePosRounds)
	score.Recall = ratio(score.Detected, score.Windows)
	if score.Detected > 0 {
		score.MeanLatencyRounds = round4(float64(latencySum) / float64(score.Detected))
	}
	return score
}

// ratio is n/d rounded to 4 decimals, with the empty-denominator convention
// "nothing to get wrong = perfect".
func ratio(n, d int) float64 {
	if d == 0 {
		return 1
	}
	return round4(float64(n) / float64(d))
}

func round4(x float64) float64 { return math.Round(x*10000) / 10000 }
