package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"countrymon/internal/signals"
)

func runScorecard(t *testing.T, name string) *Scorecard {
	t.Helper()
	spec, err := Load(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	card, err := c.RunScorecard()
	if err != nil {
		t.Fatal(err)
	}
	return card
}

// TestScorecardsMatchGoldens is the engine-regression tripwire: any change to
// the scanner, signal derivation, detection thresholds, coverage gating or
// the Trinocular baseline that shifts detection quality on a labeled
// adversity shows up as a byte diff against the committed scorecard.
func TestScorecardsMatchGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full detection stack over the scenario library")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			got := runScorecard(t, name).Encode()
			path := filepath.Join("testdata", name+".golden.json")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `make scorecards`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("scorecard diverged from %s\ngot:\n%s\nwant:\n%s\n(run `make scorecards` if the change is intended)",
					path, got, want)
			}
		})
	}
}

// TestScorecardWorkerDeterminism pins the byte-identity guarantee the goldens
// rest on: the scorecard must not depend on the worker-pool width.
func TestScorecardWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scenario campaign twice")
	}
	t.Setenv("COUNTRYMON_WORKERS", "1")
	one := runScorecard(t, "ixp-failover").Encode()
	t.Setenv("COUNTRYMON_WORKERS", "5")
	five := runScorecard(t, "ixp-failover").Encode()
	if !bytes.Equal(one, five) {
		t.Fatalf("scorecard depends on COUNTRYMON_WORKERS:\n1 worker:\n%s\n5 workers:\n%s", one, five)
	}
}

// TestScorecardScoring pins the scorer's conventions on a hand-built flag
// series: warmup exclusion, slack neutrality, benign false positives and
// latency accounting.
func TestScorecardScoring(t *testing.T) {
	spec, err := Parse([]byte(compileDoc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rounds := spec.Rounds()
	effMissing := make([]bool, rounds)
	warmup, slack := 6, 3

	// as:64500 truth: silent event rounds 180..186, power strike days
	// 20..22 → rounds 120..132.
	mk := func(set ...int) []signals.Kind {
		out := make([]signals.Kind, rounds)
		for _, r := range set {
			out[r] = signals.SignalFBS
		}
		return out
	}

	// Detection at outage onset (round 180) plus one flag in the slack tail
	// (neutral) and one unlabeled false positive at round 50.
	score := c.scoreEntity(ASEntity(64500), mk(50, 121, 180, 186+1), effMissing, warmup, slack)
	if score.Windows != 2 || score.Detected != 2 {
		t.Fatalf("windows/detected = %d/%d, want 2/2", score.Windows, score.Detected)
	}
	if score.TruePosRounds != 2 { // rounds 121 and 180
		t.Fatalf("TP rounds = %d, want 2", score.TruePosRounds)
	}
	if score.FalsePosRounds != 1 { // round 50 only; 187 is slack
		t.Fatalf("FP rounds = %d, want 1", score.FalsePosRounds)
	}
	if score.Recall != 1 || score.Precision != round4(2.0/3.0) {
		t.Fatalf("P/R = %g/%g", score.Precision, score.Recall)
	}
	// Latency: strike window detected at 121 (onset 120), event at onset.
	if score.MeanLatencyRounds != 0.5 {
		t.Fatalf("latency = %g", score.MeanLatencyRounds)
	}

	// Flags before warmup or on missing rounds never count.
	effMissing[50] = true
	score = c.scoreEntity(ASEntity(64500), mk(3, 50), effMissing, warmup, slack)
	if score.FalsePosRounds != 0 || score.Detected != 0 {
		t.Fatalf("warmup/missing flags counted: %+v", score)
	}
	if score.Recall != 0 || score.MeanLatencyRounds != -1 {
		t.Fatalf("undetected conventions: %+v", score)
	}
}
