package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"countrymon/internal/obs"
	"countrymon/internal/signals"
)

func benchStore(b *testing.B, entities, sealed int) *Store {
	b.Helper()
	st := NewStore(testTimeline())
	for i := 0; i < entities; i++ {
		if _, err := st.Register("asn", "as"+string(rune('a'+i%26))+string(rune('a'+i/26)), patternSource{i}, DetectWith(signals.ASConfig())); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.AdvanceTo(sealed); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkServeCachedQuery measures the hot read path: a query whose
// rendered bytes are already cached. This is the headline the bench gate
// tracks; the paired allocs_per_op must stay 0 (TestCachedQueryZeroAlloc
// enforces it hard, since the gate treats a 0 baseline as no-signal).
func BenchmarkServeCachedQuery(b *testing.B) {
	s := NewServer(benchStore(b, 50, 40))
	s.Observe(obs.NewRegistry(), obs.NewBus(16))
	req := httptest.NewRequest("GET", "/v1/series?entity=asn/asaa&limit=40", nil)
	w := &reusableWriter{h: make(http.Header)}
	s.handleSeries(w, req)
	if w.n == 0 {
		b.Fatal("warmup request served no bytes")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		s.handleSeries(w, req)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req_per_sec")
}

// BenchmarkServeRenderSeries measures the miss path: parse, window
// selection, columnar render, cache insert. The ratio against
// BenchmarkServeCachedQuery is what the response cache buys.
func BenchmarkServeRenderSeries(b *testing.B) {
	s := NewServer(benchStore(b, 50, 40))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _, _ := s.renderSeries("entity=asn/asaa&limit=40", s.store.Epoch())
		if e == nil {
			b.Fatal("render failed")
		}
	}
}

// BenchmarkServeAdvance measures publishing one round into a store with many
// registered entities — the per-round cost the Monitor pays on the campaign
// goroutine.
func BenchmarkServeAdvance(b *testing.B) {
	st := benchStore(b, 200, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Advance(40); err != nil { // idempotent re-publish
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds_per_sec_serve")
}
