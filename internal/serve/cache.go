package serve

import (
	"net/http"
	"sync"
)

// cacheEntry is one rendered response: the exact bytes written to the wire
// plus the preallocated header value slices assigned on every hit (direct
// map assignment of a shared []string does not allocate; Header.Set would
// build a fresh one-element slice per request).
type cacheEntry struct {
	body []byte
	// etag / contentType are 1-element slices assigned directly into the
	// response header map.
	etag        []string
	contentType []string
	// immutable entries cover only sealed rounds and are valid forever;
	// mutable entries are valid only while the store epoch matches.
	immutable bool
	epoch     uint64
}

// Cache-Control values for the two tiers. Immutable responses cover only
// rounds below the watermark at render time, so their bytes can never
// change; mutable responses include the live edge and must revalidate.
var (
	ccImmutable = []string{"public, max-age=31536000, immutable"}
	ccMutable   = []string{"no-cache"}
	ctJSON      = []string{"application/json"}
)

// respCache memoizes rendered responses per endpoint, keyed by the raw
// query string. Lookups on the hot path are a single string-keyed map read
// under RLock — allocation-free. The cache is bounded: inserts beyond cap
// evict in insertion order (misses re-render, correctness never depends on
// residency).
type respCache struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry
	keys    []string // insertion ring for eviction
	next    int
	cap     int
	hits    int64
	misses  int64
}

const defaultCacheCap = 4096

func newRespCache(capacity int) *respCache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	return &respCache{
		entries: make(map[string]*cacheEntry, capacity),
		keys:    make([]string, capacity),
		cap:     capacity,
	}
}

// get returns the cached entry for key if still valid at epoch. Immutable
// entries never expire; mutable entries are valid only for the epoch they
// were rendered at. Stale entries are left in place (overwritten by the
// next put for the key) so the read path stays lock-upgrade-free.
func (c *respCache) get(key string, epoch uint64) *cacheEntry {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e == nil || (!e.immutable && e.epoch != epoch) {
		return nil
	}
	return e
}

func (c *respCache) put(key string, e *cacheEntry) {
	c.mu.Lock()
	if _, exists := c.entries[key]; !exists {
		if old := c.keys[c.next]; old != "" {
			delete(c.entries, old)
		}
		// Copy the key: it usually aliases a request's URL buffer.
		key = string(append([]byte(nil), key...))
		c.keys[c.next] = key
		c.next = (c.next + 1) % c.cap
	}
	c.entries[key] = e
	c.mu.Unlock()
}

// len returns the number of resident entries.
func (c *respCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// ResponseCache is the exported face of the response-byte memo for sibling
// API layers (the IODA-shaped v2 API) whose content is immutable history:
// entries never expire, the cache is bounded by FIFO eviction, and lookups
// are allocation-free.
type ResponseCache struct{ c *respCache }

// NewResponseCache builds a bounded immutable-response memo (capacity <= 0
// selects the default).
func NewResponseCache(capacity int) *ResponseCache {
	return &ResponseCache{c: newRespCache(capacity)}
}

// Get returns the memoized body for key, or nil.
func (c *ResponseCache) Get(key string) []byte {
	e := c.c.get(key, 0)
	if e == nil {
		return nil
	}
	return e.body
}

// Put memoizes body under key. The caller must not mutate body afterwards.
func (c *ResponseCache) Put(key string, body []byte) {
	c.c.put(key, &cacheEntry{body: body, immutable: true})
}

// writeEntry emits a cached response, handling conditional revalidation.
// This is the allocation-free hot path: header values are preassigned
// slices, the body bytes are written as-is.
func writeEntry(w http.ResponseWriter, r *http.Request, e *cacheEntry) {
	h := w.Header()
	h["Etag"] = e.etag
	if e.immutable {
		h["Cache-Control"] = ccImmutable
	} else {
		h["Cache-Control"] = ccMutable
	}
	if inm := r.Header["If-None-Match"]; len(inm) > 0 && inm[0] == e.etag[0] {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = e.contentType
	w.Write(e.body)
}
