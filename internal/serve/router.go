package serve

import (
	"net/http"
	"strconv"
	"strings"
)

// Router is the multi-country front of the serve API. Each country gets its
// own Server (own Store, own response caches); the router owns the path
// namespace:
//
//	/v1/countries                  campaign listing (codes, names, watermarks)
//	/v1/countries/{cc}             one country's descriptor
//	/v1/countries/{cc}/series      that country's /v1/series (same query params)
//	/v1/countries/{cc}/outages     … and so on for outages/entities/events
//	/v1/*                          permanent alias for the default country
//	/metrics, /                    default country's handler
//
// The legacy unprefixed routes are not redirects: they dispatch into the
// default country's Server — the very same handler instance and response
// caches the prefixed path hits — so bodies, ETags and cache semantics are
// byte-identical between `/v1/series?q` and `/v1/countries/{default}/series?q`.
// (ETags hash only body bytes, never the request path, which is what makes
// the aliasing free.)
type Router struct {
	order   []string           // country codes in Add order
	servers map[string]*Server // code → country server
	names   map[string]string  // code → display name
	def     string             // default country code (first Add)
}

// NewRouter builds an empty router; Add at least one country before serving.
func NewRouter() *Router {
	return &Router{
		servers: make(map[string]*Server),
		names:   make(map[string]string),
	}
}

// Add registers a country's server under its ISO code. The first country
// added becomes the default — the one the legacy unprefixed /v1 routes
// alias. Codes are case-sensitive and must be unique.
func (rt *Router) Add(code, name string, s *Server) error {
	if code == "" || s == nil {
		return errEmptyAdd
	}
	if _, dup := rt.servers[code]; dup {
		return &dupCountryError{code}
	}
	rt.order = append(rt.order, code)
	rt.servers[code] = s
	rt.names[code] = name
	if rt.def == "" {
		rt.def = code
	}
	return nil
}

// Default returns the default country code (empty until the first Add).
func (rt *Router) Default() string { return rt.def }

// Countries returns the registered codes in Add order.
func (rt *Router) Countries() []string { return append([]string(nil), rt.order...) }

// Server returns the server for code, or nil.
func (rt *Router) Server(code string) *Server { return rt.servers[code] }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if path == "/v1/countries" || path == "/v1/countries/" {
		rt.handleCountries(w)
		return
	}
	if tail, ok := strings.CutPrefix(path, "/v1/countries/"); ok {
		cc, rest, slash := strings.Cut(tail, "/")
		s := rt.servers[cc]
		if s == nil {
			writeError(w, http.StatusNotFound, "unknown country "+cc)
			return
		}
		if !slash || rest == "" {
			rt.writeCountry(w, cc)
			return
		}
		// Dispatch into the country's server under the unprefixed name, so
		// both spellings share one handler and one response cache. The
		// request is shallow-copied: handlers read only URL and headers.
		r2 := new(http.Request)
		*r2 = *r
		u2 := *r.URL
		u2.Path = "/v1/" + rest
		r2.URL = &u2
		s.ServeHTTP(w, r2)
		return
	}
	if rt.def == "" {
		writeError(w, http.StatusServiceUnavailable, "no countries registered")
		return
	}
	// Legacy alias tier: everything else — /v1/series, /metrics, / — goes to
	// the default country's server untouched.
	rt.servers[rt.def].ServeHTTP(w, r)
}

// handleCountries renders the campaign listing. It is rendered fresh per
// request — the listing is tiny and changes with every watermark advance of
// any country, so caching would buy nothing.
func (rt *Router) handleCountries(w http.ResponseWriter) {
	b := append([]byte(nil), `{"default":`...)
	b = strconv.AppendQuote(b, rt.def)
	b = append(b, `,"countries":[`...)
	for i, cc := range rt.order {
		if i > 0 {
			b = append(b, ',')
		}
		b = rt.appendCountry(b, cc)
	}
	b = append(b, `],"count":`...)
	b = strconv.AppendInt(b, int64(len(rt.order)), 10)
	b = append(b, '}')
	w.Header()["Content-Type"] = ctJSON
	w.Write(b)
}

func (rt *Router) writeCountry(w http.ResponseWriter, cc string) {
	b := rt.appendCountry(nil, cc)
	w.Header()["Content-Type"] = ctJSON
	w.Write(b)
}

func (rt *Router) appendCountry(b []byte, cc string) []byte {
	st := rt.servers[cc].Store()
	b = append(b, `{"code":`...)
	b = strconv.AppendQuote(b, cc)
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, rt.names[cc])
	b = append(b, `,"watermark":`...)
	b = strconv.AppendInt(b, int64(st.Watermark()), 10)
	b = append(b, `,"entities":`...)
	b = strconv.AppendInt(b, int64(st.NumEntities()), 10)
	b = append(b, `,"default":`...)
	b = strconv.AppendBool(b, cc == rt.def)
	b = append(b, '}')
	return b
}

type routerError string

func (e routerError) Error() string { return string(e) }

const errEmptyAdd = routerError("serve: Add needs a country code and a server")

type dupCountryError struct{ code string }

func (e *dupCountryError) Error() string { return "serve: country " + e.code + " already registered" }
